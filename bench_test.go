// Package hierpart's root benchmark harness: one testing.B target per
// experiment table (E1–E10, F1, F2 — see EXPERIMENTS.md), plus
// micro-benchmarks of the pipeline phases. Run everything with
//
//	go test -bench=. -benchmem
//
// Each experiment bench regenerates its table at Quick scale per
// iteration; cmd/hgpbench prints the full-scale tables.
package hierpart

import (
	"math/rand"
	"testing"

	"hierpart/internal/baseline"
	"hierpart/internal/experiments"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/treedecomp"
)

func benchCfg() experiments.Config { return experiments.Config{Seed: 1, Quick: true} }

func BenchmarkE1TreeDPOptimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E1TreeDPOptimality(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE2CostForms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E2CostForms(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE3ViolationBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E3ViolationBound(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE4ApproxRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E4ApproxRatio(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE5VsBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E5VsBaselines(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE6StreamThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E6StreamThroughput(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE7TreeDistortion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E7TreeDistortion(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE8DPScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E8DPScaling(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE9CMSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E9CMSweep(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE10KBGPConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E10KBGPConsistency(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE11AblationDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E11AblationDP(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE12AblationTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E12AblationTrees(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE13AblationRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E13AblationRefinement(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE14EmbeddingCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E14EmbeddingCongestion(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE15DESStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E15DESStability(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE16AblationFlowRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E16AblationFlowRefine(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE17AblationStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E17AblationStrategy(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE18DynamicRepartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E18DynamicRepartition(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE19EpsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E19EpsSweep(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE20AblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E20AblationPruning(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE21AtScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.E21AtScale(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkF1BadSetSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.F1BadSetSplit(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkF2ActiveSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.F2ActiveSets(benchCfg()); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---- micro-benchmarks of the pipeline phases ----

func benchGraph(n int) *hierarchyGraph {
	rng := rand.New(rand.NewSource(1))
	g := gen.Community(rng, 4, n/4, 0.5, 0.02, 10, 1)
	gen.EqualDemands(g, 0.6*16.0/float64(n))
	return &hierarchyGraph{g: g, h: hierarchy.NUMASockets(4, 4)}
}

type hierarchyGraph struct {
	g *graph.Graph
	h *hierarchy.Hierarchy
}

func BenchmarkPhaseDecomposition(b *testing.B) {
	bg := benchGraph(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		treedecomp.Build(bg.g, treedecomp.Options{Trees: 1, Seed: int64(i)})
	}
}

func BenchmarkPhaseSignatureDP(b *testing.B) {
	bg := benchGraph(64)
	dec := treedecomp.Build(bg.g, treedecomp.Options{Trees: 1, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (hgpt.Solver{Eps: 0.5}).Solve(dec.Trees[0].T, bg.h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseEndToEnd(b *testing.B) {
	bg := benchGraph(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (hgp.Solver{Eps: 0.5, Trees: 2, Seed: int64(i)}).Solve(bg.g, bg.h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseCostLCA(b *testing.B) {
	bg := benchGraph(256)
	a := baseline.GreedyBFS(bg.g, bg.h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.CostLCA(bg.g, bg.h, a)
	}
}

func BenchmarkPhaseCostMirror(b *testing.B) {
	bg := benchGraph(256)
	a := baseline.GreedyBFS(bg.g, bg.h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.CostMirror(bg.g, bg.h, a)
	}
}

func BenchmarkPhaseRefineLocal(b *testing.B) {
	bg := benchGraph(128)
	rng := rand.New(rand.NewSource(2))
	start := baseline.Random(rng, bg.g, bg.h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.RefineLocal(bg.g, bg.h, start, 1.2, 1)
	}
}

func BenchmarkPhaseEndToEndWorkers1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkPhaseEndToEndWorkers2(b *testing.B) { benchWorkers(b, 2) }
func BenchmarkPhaseEndToEndWorkers4(b *testing.B) { benchWorkers(b, 4) }

func BenchmarkPhaseSignatureDPWorkers1(b *testing.B) { benchSigDPWorkers(b, 1) }
func BenchmarkPhaseSignatureDPWorkers2(b *testing.B) { benchSigDPWorkers(b, 2) }
func BenchmarkPhaseSignatureDPWorkers4(b *testing.B) { benchSigDPWorkers(b, 4) }
func BenchmarkPhaseSignatureDPWorkers8(b *testing.B) { benchSigDPWorkers(b, 8) }

// benchSigDPWorkers measures the single-tree signature DP under the
// node-level scheduler (sibling subtrees concurrent, large
// cross-products sharded) on the E8-style workload.
func benchSigDPWorkers(b *testing.B, workers int) {
	bg := benchGraph(64)
	dec := treedecomp.Build(bg.g, treedecomp.Options{Trees: 1, Seed: 1, Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (hgpt.Solver{Eps: 0.5, Workers: workers}).Solve(dec.Trees[0].T, bg.h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseDecompositionWorkers1(b *testing.B) { benchDecompWorkers(b, 1) }
func BenchmarkPhaseDecompositionWorkers2(b *testing.B) { benchDecompWorkers(b, 2) }
func BenchmarkPhaseDecompositionWorkers4(b *testing.B) { benchDecompWorkers(b, 4) }
func BenchmarkPhaseDecompositionWorkers8(b *testing.B) { benchDecompWorkers(b, 8) }

// benchDecompWorkers measures the decomposition build with per-tree
// sub-seeded RNGs on a worker pool (the distribution is identical at
// every worker count).
func benchDecompWorkers(b *testing.B, workers int) {
	bg := benchGraph(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		treedecomp.Build(bg.g, treedecomp.Options{Trees: 8, Seed: 1, Workers: workers})
	}
}

// benchWorkers measures the per-tree parallelism of the pipeline (the
// tree DPs are independent; results are deterministic regardless).
func benchWorkers(b *testing.B, workers int) {
	bg := benchGraph(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (hgp.Solver{Eps: 0.5, Trees: 4, Seed: 1, Workers: workers}).Solve(bg.g, bg.h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseMultilevel(b *testing.B) {
	bg := benchGraph(256)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baseline.Multilevel(rng, bg.g, bg.h)
	}
}
