// Replanner walks a stream-processing workload through drift epochs and
// re-plans its placement each time, comparing three policies a stream
// warehouse operator could adopt:
//
//   - stay put: never re-plan (free, but the placement decays and the
//     machine drifts out of capacity),
//   - scratch: re-solve and apply blindly (best cost, heavy migration),
//   - dynamic: re-solve, then relabel hierarchy subtrees by Hungarian
//     matching so the scratch-quality placement lands as close to the
//     old one as the hierarchy's symmetries allow.
//
// Run with: go run ./examples/replanner
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hierpart/internal/dynamic"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	h := hierarchy.NUMASockets(4, 4)
	topo := stream.FanInAggregation(rng, 6, 3, 0.3, 0.55, 40)

	solver := hgp.Solver{Eps: 0.5, Trees: 3, Seed: 7}
	g := topo.CommGraph()
	quantize(g)
	base, err := solver.Solve(g, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 0: %d operators placed, cost %.0f\n\n", g.N(), base.Cost)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\tstay-put cost\tstay-put overload\tdynamic cost\tmoved demand\tmoved tasks")
	cur := base.Assignment
	for epoch := 1; epoch <= 6; epoch++ {
		topo = stream.Drift(rng, topo, 0.25)
		g = topo.CommGraph()
		quantize(g)

		res, err := dynamic.Replace(g, h, cur, dynamic.Options{
			Solver: hgp.Solver{Eps: 0.5, Trees: 3, Seed: int64(100 + epoch)},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.2f\t%.0f\t%.2f\t%d\n",
			epoch,
			metrics.CostLCA(g, h, base.Assignment),
			metrics.MaxViolation(g, h, base.Assignment),
			res.Cost, res.MovedDemand, res.MovedTasks)
		cur = res.Assignment
	}
	tw.Flush()

	fmt.Println("\nStay-put looks cheap on paper but its overload column shows cores")
	fmt.Println("drifting past capacity; the dynamic policy re-plans every epoch at")
	fmt.Println("scratch quality while Hungarian subtree matching keeps most tasks")
	fmt.Println("where they already run.")
}

// quantize rounds demands up to 1/16 steps, as capacity estimators do —
// it also keeps the solver's subset-sum state space small.
func quantize(g *graph.Graph) {
	for v := 0; v < g.N(); v++ {
		d := g.Demand(v)
		steps := int(d*16 + 1 - 1e-9)
		g.SetDemand(v, float64(steps)/16)
	}
}
