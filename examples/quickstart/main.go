// Quickstart: partition a small task graph across a two-socket machine.
//
// It walks the full public surface in ~40 lines: build a weighted task
// graph with CPU demands, describe the machine as a hierarchy with cost
// multipliers, run the SPAA'14 algorithm, and inspect cost, placement,
// and capacity violations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func main() {
	// A tiny ETL job: two chatty pairs (ingest→parse, join→sink) and a
	// weak link between them.
	g := graph.New(4)
	names := []string{"ingest", "parse", "join", "sink"}
	for v := range names {
		g.SetDemand(v, 0.75) // each task needs 3/4 of a core: no two share one
	}
	g.AddEdge(0, 1, 100) // ingest → parse: hot
	g.AddEdge(2, 3, 100) // join → sink: hot
	g.AddEdge(1, 2, 1)   // parse → join: trickle

	// A machine with 2 sockets × 2 cores. Crossing sockets costs 20 per
	// unit of traffic, crossing cores on one socket costs 4, co-located
	// tasks communicate for free.
	h := hierarchy.NUMASockets(2, 2)
	fmt.Println("machine:", h)

	res, err := hgp.Solver{Eps: 0.5, Trees: 4, Seed: 1}.Solve(g, h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("communication cost: %.0f\n", res.Cost)
	for v, leaf := range res.Assignment {
		fmt.Printf("  %-7s → core %d (socket %d)\n", names[v], leaf, h.AncestorAt(leaf, 1))
	}
	fmt.Printf("imbalance: %.2f, worst violation: %.2f\n",
		metrics.Imbalance(g, h, res.Assignment),
		metrics.MaxViolation(g, h, res.Assignment))

	// The hot pairs must share a socket (cores of one socket each);
	// the trickle edge crosses sockets:
	// expected cost = 100·4 + 100·4 + 1·20 = 820.
	if s0, s1 := h.AncestorAt(res.Assignment[0], 1), h.AncestorAt(res.Assignment[1], 1); s0 == s1 {
		fmt.Println("ok: ingest and parse share a socket")
	}
}
