// Datacenter places a microservice communication graph onto a
// rack/host/core hierarchy (height 3), where crossing a rack costs 100×
// more than crossing cores inside a host. The workload is a planted
// community graph: four chatty service groups with light east-west
// traffic between groups — the structure a good hierarchical partitioner
// must discover and align with the racks.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hierpart/internal/baseline"
	"hierpart/internal/gen"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 4 service groups of 8 services; heavy intra-group RPC (weight 10),
	// sparse light cross-group calls (weight 1).
	g := gen.Community(rng, 4, 8, 0.6, 0.03, 10, 1)
	gen.EqualDemands(g, 0.5) // two services per core at most

	// 2 racks × 4 hosts × 4 cores = 32 cores; cm = [1000, 100, 10, 0].
	h := hierarchy.Datacenter(2, 4, 4)
	fmt.Printf("services: %d, machine: %v\n\n", g.N(), h)

	res, err := hgp.Solver{Eps: 0.5, Trees: 4, Seed: 5}.Solve(g, h)
	if err != nil {
		log.Fatal(err)
	}

	placements := []struct {
		name string
		a    metrics.Assignment
	}{
		{"hgp (SPAA'14)", res.Assignment},
		{"dual recursive", baseline.DualRecursive(rng, g, h)},
		{"multilevel", baseline.Multilevel(rng, g, h)},
		{"kBGP oblivious", baseline.KBGPOblivious(rng, g, h)},
		{"greedy BFS", baseline.GreedyBFS(g, h)},
		{"random", baseline.Random(rng, g, h)},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tcost\tvs hgp\tcross-rack weight\timbalance")
	base := res.Cost
	for _, p := range placements {
		cost := metrics.CostLCA(g, h, p.a)
		var crossRack float64
		for _, e := range g.Edges() {
			if h.AncestorAt(p.a[e.U], 1) != h.AncestorAt(p.a[e.V], 1) {
				crossRack += e.Weight
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.2f×\t%.0f\t%.2f\n",
			p.name, cost, cost/base, crossRack, metrics.Imbalance(g, h, p.a))
	}
	tw.Flush()

	fmt.Println("\nper-level capacity violation of the HGP placement (1.0 = at capacity):")
	labels := []string{"cluster", "rack", "host", "core"}
	for j, v := range res.Violation {
		fmt.Printf("  %-8s %.3f (Theorem 5 bound %.1f)\n", labels[j], v, 1.5*float64(1+j))
	}
}
