// Streamplacement reproduces the paper's §1 motivation: pinning the
// operators of a data-stream-processing job (a TidalRace/Storm-style
// ingest→parse→aggregate pipeline) onto the cores of a multi-socket
// server so that hot channels stay inside sockets.
//
// It places the same topology with five policies — the SPAA'14
// algorithm, SCOTCH-style dual recursive bipartitioning, METIS-style
// multilevel, round-robin (an OS-like spread), and random — and reports
// the sustainable input-rate multiplier λ and the average per-message
// cost of each.
//
// Run with: go run ./examples/streamplacement
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hierpart/internal/baseline"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 8 ingest→parse lanes feeding 4 aggregators and a sink, with
	// demands that make the job occupy most of a 4-socket × 4-core box.
	// The hot per-lane src→parse channels are exactly what pinning wins
	// on; the parse→agg shuffle is unavoidable cross-traffic.
	topo := stream.FanInAggregation(rng, 8, 4, 0.35, 0.6, 60)
	g := topo.CommGraph()
	h := hierarchy.NUMASockets(4, 4)
	model := stream.Model{OverheadPerMsg: 2e-3}
	fmt.Printf("topology: fan-in aggregation with %d operators, machine %v\n\n", topo.N(), h)

	res, err := hgp.Solver{Eps: 0.5, Trees: 4, Seed: 3}.Solve(g, h)
	if err != nil {
		log.Fatal(err)
	}

	rr := metrics.NewAssignment(topo.N())
	for v := range rr {
		rr[v] = v % h.Leaves()
	}

	placements := []struct {
		name string
		a    metrics.Assignment
	}{
		{"hgp (SPAA'14)", res.Assignment},
		{"hgp + local refine", baseline.RefineLocal(g, h, res.Assignment, 1.2, 3)},
		{"dual recursive (SCOTCH-style)", baseline.DualRecursive(rng, g, h)},
		{"multilevel (METIS-style)", baseline.Multilevel(rng, g, h)},
		{"round robin (OS-like)", rr},
		{"random", baseline.Random(rng, g, h)},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tλ sustained\tavg msg cost\tHGP objective")
	for _, p := range placements {
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t%.0f\n",
			p.name,
			model.Throughput(topo, h, p.a),
			stream.AvgMsgCost(topo, h, p.a),
			metrics.CostLCA(g, h, p.a))
	}
	tw.Flush()

	fmt.Println("\nThe HGP objective is exactly the quantity the placement minimizes, and it")
	fmt.Println("wins the per-message cost (latency proxy) by a wide margin. λ charges")
	fmt.Println("per-message CPU overhead by hierarchy distance: communication-light but")
	fmt.Println("better-balanced placements (dual recursive) can sustain a higher λ, while")
	fmt.Println("hierarchy-oblivious spreading (round robin, random) loses on both axes.")
}
