// Numa shows where hierarchy awareness starts to matter: the same task
// graph is placed on a two-level NUMA machine while the cross-socket
// penalty sweeps from flat (same as intra-socket) to steep. Classical
// balanced k-way partitioning ignores which parts land on which cores;
// the hierarchical partitioner pays attention — and the gap between them
// grows with the penalty (experiment E9's story as a runnable demo).
//
// Run with: go run ./examples/numa
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"hierpart/internal/baseline"
	"hierpart/internal/gen"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g := gen.Community(rng, 4, 8, 0.5, 0.03, 10, 1)
	gen.EqualDemands(g, 0.25)

	fmt.Println("32 tasks in 4 chatty groups on 4 sockets × 4 cores;")
	fmt.Println("sweeping the cross-socket cost multiplier (intra-socket fixed at 1):")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cross-socket ×\thgp cost\tkBGP-oblivious\tkBGP + refine\toblivious / hgp")
	for _, steep := range []float64{1, 2, 5, 10, 25, 100} {
		h := hierarchy.MustNew([]int{4, 4}, []float64{steep, 1, 0})
		res, err := hgp.Solver{Eps: 0.5, Trees: 4, Seed: 9}.Solve(g, h)
		if err != nil {
			log.Fatal(err)
		}
		obl := baseline.KBGPOblivious(rng, g, h)
		oblRef := baseline.RefineLocal(g, h, obl, 1.1, 3)
		oblCost := metrics.CostLCA(g, h, obl)
		fmt.Fprintf(tw, "%.0f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			steep, res.Cost, oblCost, metrics.CostLCA(g, h, oblRef), oblCost/res.Cost)
	}
	tw.Flush()

	fmt.Println("\nWith a flat penalty every balanced partition is equally good; as the")
	fmt.Println("penalty steepens, WHICH socket each part lands on dominates the cost —")
	fmt.Println("the regime the hierarchical formulation (and this paper) is about.")
}
