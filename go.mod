module hierpart

go 1.22
