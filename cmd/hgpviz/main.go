// Command hgpviz renders an instance (and optionally its placement) as
// Graphviz DOT: either the task graph with vertices clustered by the
// hierarchy node they are placed under, or one of the decomposition
// trees the embedding produces.
//
// Usage:
//
//	hgpviz -in instance.json [-mode graph|tree|mirror] [-level 1]
//	       [-assign placement.json] [-set 0,1,2] [-seed 1] > out.dot
//
// Mode mirror reproduces the concept of the paper's Figures 1–2: it
// builds a decomposition tree, computes the canonical mirror set N(S)
// and minimum cut CUT_T(S) of the vertex set given by -set, and renders
// the tree with the mirror shaded and the cut edges dashed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/instio"
	"hierpart/internal/metrics"
	"hierpart/internal/treedecomp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgpviz:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "instance JSON file; '-' for stdin")
	mode := flag.String("mode", "graph", "what to render: graph (placement clusters), tree (decomposition tree), or mirror (a set's mirror and cut, as in the paper's figures)")
	level := flag.Int("level", 1, "hierarchy level used to cluster vertices in graph mode")
	assignFile := flag.String("assign", "", "placement JSON (from cmd/hgp); empty = solve here")
	setSpec := flag.String("set", "", "comma-separated graph vertices forming the set S for mirror mode")
	seed := flag.Int64("seed", 1, "seed for solving / tree building")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, h, err := instio.ReadInstance(r)
	if err != nil {
		return err
	}

	switch *mode {
	case "graph":
		a, err := loadOrSolve(g, h, *assignFile, *seed)
		if err != nil {
			return err
		}
		if *level < 0 || *level > h.Height() {
			return fmt.Errorf("level %d out of [0,%d]", *level, h.Height())
		}
		return writePlacementDOT(os.Stdout, g, h, a, *level)
	case "tree":
		dec := treedecomp.Build(g, treedecomp.Options{Trees: 1, Seed: *seed})
		return writeTreeDOT(os.Stdout, dec.Trees[0])
	case "mirror":
		set, err := parseSet(*setSpec, g.N())
		if err != nil {
			return err
		}
		dec := treedecomp.Build(g, treedecomp.Options{Trees: 1, Seed: *seed})
		return writeMirrorDOT(os.Stdout, dec.Trees[0], set)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func loadOrSolve(g *graph.Graph, h *hierarchy.Hierarchy, assignFile string, seed int64) (metrics.Assignment, error) {
	if assignFile == "" {
		res, err := hgp.Solver{Seed: seed}.Solve(g, h)
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	f, err := os.Open(assignFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc struct {
		Assignment metrics.Assignment `json:"assignment"`
	}
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, err
	}
	if err := doc.Assignment.Validate(g, h); err != nil {
		return nil, err
	}
	return doc.Assignment, nil
}

// writePlacementDOT clusters vertices by their Level-(level) hierarchy
// node; cross-cluster edges are drawn bold with their cost multiplier.
func writePlacementDOT(w *os.File, g *graph.Graph, h *hierarchy.Hierarchy, a metrics.Assignment, level int) error {
	fmt.Fprintln(w, "graph placement {")
	fmt.Fprintln(w, "  node [shape=circle];")
	groups := map[int][]int{}
	for v := 0; v < g.N(); v++ {
		node := h.AncestorAt(a[v], level)
		groups[node] = append(groups[node], v)
	}
	for node := 0; node < h.NumNodes(level); node++ {
		vs := groups[node]
		if len(vs) == 0 {
			continue
		}
		fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=\"L%d node %d\";\n", node, level, node)
		for _, v := range vs {
			fmt.Fprintf(w, "    %d [label=\"%d\\nd=%.2g\\ncore %d\"];\n", v, v, g.Demand(v), a[v])
		}
		fmt.Fprintln(w, "  }")
	}
	for _, e := range g.Edges() {
		cm := h.CM(h.LCALevel(a[e.U], a[e.V]))
		style := ""
		if h.AncestorAt(a[e.U], level) != h.AncestorAt(a[e.V], level) {
			style = ", style=bold, color=red"
		}
		fmt.Fprintf(w, "  %d -- %d [label=\"w=%.3g cm=%.3g\"%s];\n", e.U, e.V, e.Weight, cm, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// writeTreeDOT renders a decomposition tree; leaves carry the graph
// vertex they map to and edges their boundary weight.
func writeTreeDOT(w *os.File, dt *treedecomp.DecompTree) error {
	fmt.Fprintln(w, "digraph decomposition {")
	fmt.Fprintln(w, "  node [shape=box];")
	for v := 0; v < dt.T.N(); v++ {
		if dt.T.IsLeaf(v) {
			fmt.Fprintf(w, "  t%d [label=\"v%d\\nd=%.2g\", shape=ellipse];\n", v, dt.T.Label(v), dt.T.Demand(v))
		} else {
			fmt.Fprintf(w, "  t%d [label=\"cluster\"];\n", v)
		}
		if v != dt.T.Root() {
			wgt := dt.T.EdgeWeight(v)
			lbl := fmt.Sprintf("%.3g", wgt)
			if math.IsInf(wgt, 1) {
				lbl = "inf"
			}
			fmt.Fprintf(w, "  t%d -> t%d [label=\"%s\"];\n", dt.T.Parent(v), v, lbl)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// parseSet parses "0,3,7" into a vertex set, validating the range.
func parseSet(spec string, n int) (map[int]bool, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("mirror mode needs -set (comma-separated vertices)")
	}
	out := map[int]bool{}
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("bad vertex %q in -set (graph has %d vertices)", part, n)
		}
		out[v] = true
	}
	return out, nil
}

// writeMirrorDOT renders a decomposition tree with the canonical mirror
// N(S) shaded (the paper's Figure 2 structure) and CUT_T(S) dashed.
func writeMirrorDOT(w *os.File, dt *treedecomp.DecompTree, set map[int]bool) error {
	leafSet := map[int]bool{}
	for v := range set {
		leafSet[dt.LeafOf[v]] = true
	}
	res := dt.T.CutLeafSetOf(leafSet)
	cut := map[int]bool{}
	for _, c := range res.CutEdges {
		cut[c] = true
	}
	fmt.Fprintln(w, "digraph mirror {")
	fmt.Fprintf(w, "  label=\"w(CUT_T(S)) = %.4g, |N(S)| = %d\";\n", res.Weight, res.MirrorSize)
	fmt.Fprintln(w, "  node [shape=box];")
	for v := 0; v < dt.T.N(); v++ {
		attrs := ""
		if res.InMirror[v] {
			attrs = ", style=filled, fillcolor=lightblue"
		}
		if dt.T.IsLeaf(v) {
			member := ""
			if leafSet[v] {
				member = " ∈ S"
			}
			fmt.Fprintf(w, "  t%d [label=\"v%d%s\", shape=ellipse%s];\n", v, dt.T.Label(v), member, attrs)
		} else {
			fmt.Fprintf(w, "  t%d [label=\"\"%s];\n", v, attrs)
		}
		if v != dt.T.Root() {
			style := ""
			if cut[v] {
				style = ", style=dashed, color=red"
			}
			wgt := dt.T.EdgeWeight(v)
			lbl := fmt.Sprintf("%.3g", wgt)
			if math.IsInf(wgt, 1) {
				lbl = "inf"
			}
			fmt.Fprintf(w, "  t%d -> t%d [label=\"%s\"%s];\n", dt.T.Parent(v), v, lbl, style)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
