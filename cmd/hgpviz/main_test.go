package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/treedecomp"
)

// captureTo writes through a temp file because the DOT writers take
// *os.File (they stream straight to stdout in the CLI).
func captureTo(t *testing.T, fn func(f *os.File) error) string {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestWritePlacementDOT(t *testing.T) {
	g := graph.New(4)
	gen.EqualDemands(g, 0.5)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 3, 3)
	g.AddEdge(1, 2, 1)
	h := hierarchy.NUMASockets(2, 2)
	a := metrics.Assignment{0, 1, 2, 3}
	out := captureTo(t, func(f *os.File) error {
		return writePlacementDOT(f, g, h, a, 1)
	})
	for _, frag := range []string{"cluster_0", "cluster_1", "style=bold", "cm=20"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("placement DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteTreeDOT(t *testing.T) {
	g := gen.Grid(2, 3, 1)
	dec := treedecomp.Build(g, treedecomp.Options{Trees: 1, Seed: 1})
	out := captureTo(t, func(f *os.File) error {
		return writeTreeDOT(f, dec.Trees[0])
	})
	for _, frag := range []string{"digraph decomposition", "v0", "cluster"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("tree DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestLoadOrSolve(t *testing.T) {
	g := gen.Grid(2, 2, 1)
	gen.EqualDemands(g, 0.5)
	h := hierarchy.FlatKWay(4)
	a, err := loadOrSolve(g, h, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g, h); err != nil {
		t.Fatal(err)
	}
	// From file.
	p := filepath.Join(t.TempDir(), "a.json")
	if err := os.WriteFile(p, []byte(`{"assignment":[0,1,2,3],"cost":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	a2, err := loadOrSolve(g, h, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a2[3] != 3 {
		t.Fatalf("a2 = %v", a2)
	}
	// Invalid file contents.
	if err := os.WriteFile(p, []byte(`{"assignment":[9,9,9,9]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrSolve(g, h, p, 1); err == nil {
		t.Fatal("out-of-range placement must fail validation")
	}
}

func TestParseSet(t *testing.T) {
	s, err := parseSet("0, 2,3", 5)
	if err != nil || len(s) != 3 || !s[2] {
		t.Fatalf("parseSet: %v %v", s, err)
	}
	for _, bad := range []string{"", "x", "9", "-1"} {
		if _, err := parseSet(bad, 5); err == nil {
			t.Fatalf("parseSet(%q) should fail", bad)
		}
	}
}

func TestWriteMirrorDOT(t *testing.T) {
	g := gen.Grid(2, 3, 1)
	dec := treedecomp.Build(g, treedecomp.Options{Trees: 1, Seed: 2})
	out := captureTo(t, func(f *os.File) error {
		return writeMirrorDOT(f, dec.Trees[0], map[int]bool{0: true, 1: true})
	})
	for _, frag := range []string{"digraph mirror", "CUT_T(S)", "∈ S", "lightblue", "dashed"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("mirror DOT missing %q:\n%s", frag, out)
		}
	}
}
