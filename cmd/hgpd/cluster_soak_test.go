package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The cluster failover soak: three real hgpd processes sharing one
// -peers list, primed so every cache key has exactly one build
// cluster-wide, driven through all three endpoints by a real hgpload
// process, then one daemon SIGKILLed mid-load. The survivors must keep
// the SLO (success >= 99%, every non-200 machine-readably tagged),
// re-owning the dead peer's keys via local fallback, and the killed
// daemon must rejoin warm from its -state-dir and be seen healthy by
// the survivors again. Peer-fetch-served responses are checked
// bit-identical to locally solved ones along the way.
//
// HGP_SOAK_SECONDS scales each load phase, HGP_SOAK_RACE=1 builds the
// binaries with the race detector, HGP_SOAK_ARTIFACTS names a
// directory to save the hgpload JSON reports into (CI uploads them).
func TestClusterFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test spawns real processes; skipped with -short")
	}
	phase := 3 * time.Second
	if v := os.Getenv("HGP_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("HGP_SOAK_SECONDS=%q: want a positive integer", v)
		}
		phase = time.Duration(secs) * time.Second
	}

	bin := t.TempDir()
	hgpd := buildBinary(t, bin, "hgpd")
	hgpload := buildBinary(t, bin, "hgpload")

	// Cluster peers must know each other's addresses before any daemon
	// starts, so ports are reserved up front instead of using :0.
	ports := freePorts(t, 3)
	peers := make([]string, 3)
	addrs := make([]string, 3)
	stateDirs := make([]string, 3)
	for i, p := range ports {
		addrs[i] = "127.0.0.1:" + strconv.Itoa(p)
		peers[i] = "http://" + addrs[i]
		stateDirs[i] = t.TempDir()
	}
	peerList := strings.Join(peers, ",")

	startNode := func(i int) *daemon {
		return startDaemonArgs(t, hgpd,
			"-addr", addrs[i],
			"-state-dir", stateDirs[i],
			"-snapshot-interval", "50ms",
			"-concurrency", "2",
			"-queue", "16",
			"-timeout", "5s",
			"-drain-wait", "20s",
			"-peers", peerList,
			"-self", peers[i],
			// Tight peer budgets: a dead owner must cost a request well
			// under its deadline (250ms/attempt, one retry), and the
			// breaker must recover within the soak (1s cooldown).
			"-peer-timeout", "250ms",
			"-peer-retries", "1",
			"-peer-breaker-cooldown", "1s",
			// The soak runs the cluster authenticated, as production
			// should: every peer fetch/push/health exchange carries the
			// shared secret end-to-end through real binaries.
			"-peer-secret", "cluster-soak-secret",
		)
	}
	nodes := make([]*daemon, 3)
	for i := range nodes {
		nodes[i] = startNode(i)
	}
	bases := []string{nodes[0].base, nodes[1].base, nodes[2].base}
	waitClusterHealthy(t, bases)

	// Prime phase: seeds 1..4 posted to every daemon (node 0 first),
	// seeds 5..8 to node 0 only. Waiting for pushes to settle between
	// posts makes "exactly one build per key cluster-wide" exact, and
	// leaves nodes 1 and 2 four keys they have never seen — guaranteed
	// peer-fetch material for the steady phase.
	const sharedSeeds, extraSeeds = 4, 4
	for seed := int64(1); seed <= sharedSeeds; seed++ {
		var want map[string]any
		for i, node := range nodes {
			rec := postJSON(t, node.base+"/v1/partition", loadBody(seed))
			if rec.status != http.StatusOK {
				t.Fatalf("prime seed %d on node %d: %d (%s)", seed, i, rec.status, rec.body)
			}
			got := stableResponse(t, rec.body)
			if want == nil {
				want = got
			} else if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: node %d response differs from node 0:\n%v\nvs\n%v", seed, i, got, want)
			}
			waitPushesSettled(t, node.base)
		}
	}
	for seed := int64(sharedSeeds + 1); seed <= sharedSeeds+extraSeeds; seed++ {
		rec := postJSON(t, nodes[0].base+"/v1/partition", loadBody(seed))
		if rec.status != http.StatusOK {
			t.Fatalf("prime seed %d: %d (%s)", seed, rec.status, rec.body)
		}
		waitPushesSettled(t, nodes[0].base)
	}

	// Exactly one decomposition build per key across the whole cluster:
	// non-owners either fetched the entry off the owner or pushed their
	// own build to it, never rebuilt.
	var builds int64
	for _, base := range bases {
		st := waitStat(t, base, 5*time.Second, func(soakStats) bool { return true })
		builds += st.counter("decomp_builds_total")
	}
	if want := int64(sharedSeeds + extraSeeds); builds != want {
		t.Fatalf("cluster-wide decomp builds = %d, want exactly %d (one per key)", builds, want)
	}

	// Steady phase: closed-loop load through all three endpoints with
	// the SLO gates armed. Nodes 1 and 2 meet seeds 5..8 for the first
	// time here, so peer fetch hits must show up in the report.
	steady := startLoad(t, hgpload, bases[0], phase, []string{
		"-endpoints", strings.Join(bases, ","),
		"-seeds", strconv.Itoa(sharedSeeds + extraSeeds),
		"-strict", "-slo-success", "0.99",
	})
	sumSteady := steady.wait(t)
	saveArtifact(t, "cluster-steady.json", steady.stdout.Bytes())
	if sumSteady.OK == 0 {
		t.Fatal("steady phase produced no successes; the soak is vacuous")
	}
	if sumSteady.PeerFetchHits == 0 {
		t.Fatal("steady phase saw no peer fetch hits; the cluster is not sharing entries")
	}
	if sumSteady.Errors != 0 || sumSteady.Unexpected != 0 {
		t.Fatalf("steady phase: %d errors, %d unexpected", sumSteady.Errors, sumSteady.Unexpected)
	}

	// Failover phase: zipf multi-tenant load (mostly-fresh keys, so
	// survivors must route around the corpse for every key it owns),
	// node 0 SIGKILLed mid-load. Closed-loop with 8 workers never
	// overflows the 2+16 waiting room, so the only threat to the 99%
	// SLO is the failure handling itself.
	failover := startLoad(t, hgpload, bases[0], phase, []string{
		"-endpoints", strings.Join(bases, ","),
		"-workload", "zipf", "-tenants", "12",
		"-strict", "-slo-success", "0.99",
	})
	time.Sleep(phase / 3)
	if err := nodes[0].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].cmd.Wait() // SIGKILL: nonzero exit expected
	sumFail := failover.wait(t)
	saveArtifact(t, "cluster-failover.json", failover.stdout.Bytes())
	if sumFail.OK == 0 {
		t.Fatal("failover phase produced no successes")
	}
	if sumFail.Failovers == 0 {
		t.Fatal("failover phase recorded no endpoint failovers; was the node really killed mid-load?")
	}

	// Survivors must have demoted the dead peer by now (health poll or
	// breaker — either way it is out of the routing set).
	for _, base := range bases[1:] {
		waitStat(t, base, 15*time.Second, func(st soakStats) bool {
			return !peerHealthyOn(st, peers[0])
		})
	}

	// Rejoin: restart node 0 on its state dir. It must come back warm —
	// snapshot entries loaded, zero rebuilds, first repeat request a
	// cache hit — and the survivors must see it healthy again. The
	// repeat uses a fresh eps: eps is part of the RESULT key but not the
	// decomposition key, so the result caches miss cluster-wide and the
	// request must ride the snapshot-warmed local decomposition cache
	// (a plain repeat would be answered by a peer's result cache, which
	// proves failover, not warmth).
	nodes[0] = startNode(0)
	st := waitStat(t, nodes[0].base, 10*time.Second, func(soakStats) bool { return true })
	if st.gauge("snapshot_warm_entries") < 1 {
		t.Fatalf("restarted node loaded %d warm entries, want >= 1", st.gauge("snapshot_warm_entries"))
	}
	rec := postJSON(t, nodes[0].base+"/v1/partition", loadBodyEps(1, 0.25))
	if rec.status != http.StatusOK {
		t.Fatalf("repeat request after rejoin: %d (%s)", rec.status, rec.body)
	}
	var pr struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.Unmarshal(rec.body, &pr); err != nil || !pr.CacheHit {
		t.Fatalf("first repeat request after rejoin must be a warm cache hit: %s", rec.body)
	}
	st = waitStat(t, nodes[0].base, 5*time.Second, func(soakStats) bool { return true })
	if got := st.counter("decomp_builds_total"); got != 0 {
		t.Fatalf("restarted node rebuilt %d decompositions, want 0 (snapshot should carry them)", got)
	}
	for _, base := range bases[1:] {
		waitStat(t, base, 15*time.Second, func(st soakStats) bool {
			return peerHealthyOn(st, peers[0])
		})
	}

	// Graceful exit for the whole cluster: SIGTERM drains, exit code 0.
	for i, node := range []*daemon{nodes[0], nodes[1], nodes[2]} {
		if err := node.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func(n *daemon) { done <- n.cmd.Wait() }(node)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("node %d graceful shutdown exit: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGTERM", i)
		}
	}
}

// loadBodyEps is loadBody with an explicit eps, for steering a request
// past the result caches (eps fragments the result key) while keeping
// its decomposition identity.
func loadBodyEps(seed int64, eps float64) []byte {
	var m map[string]any
	if err := json.Unmarshal(loadBody(seed), &m); err != nil {
		panic(err)
	}
	m["eps"] = eps
	raw, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return raw
}

// freePorts reserves n distinct TCP ports by binding :0 and releasing
// them. The gap between release and the daemon's bind is a textbook
// race, but the test owns the machine's ephemeral range in practice.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		ln.Close()
	}
	return ports
}

// waitClusterHealthy blocks until every daemon reports every peer
// healthy. Pushes to a peer still marked unroutable (a poller may race
// a neighbor's startup) are silently dropped, which would break the
// exactly-one-build accounting the prime phase asserts.
func waitClusterHealthy(t *testing.T, bases []string) {
	t.Helper()
	for _, base := range bases {
		waitStat(t, base, 15*time.Second, func(st soakStats) bool {
			if !st.Cluster.Enabled || len(st.Cluster.Peers) == 0 {
				return false
			}
			for _, p := range st.Cluster.Peers {
				if !p.Healthy {
					return false
				}
			}
			return true
		})
	}
}

// waitPushesSettled waits for the daemon's in-flight owner-ward pushes
// to drain. The peer_push_inflight gauge is incremented synchronously
// with the serving request, so polling it to zero after a response is
// a race-free barrier.
func waitPushesSettled(t *testing.T, base string) {
	t.Helper()
	waitStat(t, base, 10*time.Second, func(st soakStats) bool {
		return st.gauge("peer_push_inflight") == 0
	})
}

func peerHealthyOn(st soakStats, peer string) bool {
	for _, p := range st.Cluster.Peers {
		if p.Peer == peer {
			return p.Healthy
		}
	}
	return false
}

// stableResponse strips the volatile fields from a partition response —
// timings and cache/peer provenance flags legitimately differ between
// a local solve and a peer-fetch-served answer — leaving the solver
// output, which must be bit-identical cluster-wide.
func stableResponse(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal response: %v\n%s", err, raw)
	}
	for _, k := range []string{
		"elapsed_ms", "decompose_ms", "solve_ms",
		"cache_hit", "result_cache_hit", "peer_fetch_hit", "canon_hit",
		"degradation",
	} {
		delete(m, k)
	}
	return m
}

// saveArtifact writes a load report into HGP_SOAK_ARTIFACTS for CI to
// upload; a no-op when the variable is unset.
func saveArtifact(t *testing.T, name string, raw []byte) {
	t.Helper()
	dir := os.Getenv("HGP_SOAK_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, name), bytes.TrimSpace(raw), 0o644); err != nil {
		t.Logf("artifacts: %v", err)
	}
}

// The replication soak: three real hgpd processes at -replication 2,
// membership sourced from a shared -peers-file, exercising all four
// healing layers end to end through real binaries:
//
//  1. node loss with zero cold rebuilds — every key has a second
//     replica, so killing the cluster's builder mid-load leaves the
//     survivors serving entirely from caches and replica fetches;
//  2. hinted handoff — builds pushed while a replica is dead are
//     staged and replayed to it after rejoin;
//  3. anti-entropy — a replica restarted with a blanked state dir
//     repairs itself from its peers without rebuilding;
//  4. dynamic membership — a fourth node joins via peers-file rewrite
//     plus SIGHUP under strict-SLO load.
//
// Same knobs as TestClusterFailoverSoak: HGP_SOAK_SECONDS scales the
// load phases, HGP_SOAK_RACE=1 races the binaries, HGP_SOAK_ARTIFACTS
// collects the hgpload reports for CI's jq gates.
func TestClusterReplicationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test spawns real processes; skipped with -short")
	}
	phase := 3 * time.Second
	if v := os.Getenv("HGP_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("HGP_SOAK_SECONDS=%q: want a positive integer", v)
		}
		phase = time.Duration(secs) * time.Second
	}

	bin := t.TempDir()
	hgpd := buildBinary(t, bin, "hgpd")
	hgpload := buildBinary(t, bin, "hgpload")

	// Four ports reserved up front: the fourth node joins mid-test, but
	// its address must be known to write into the peers file.
	ports := freePorts(t, 4)
	peers := make([]string, 4)
	addrs := make([]string, 4)
	stateDirs := make([]string, 4)
	for i, p := range ports {
		addrs[i] = "127.0.0.1:" + strconv.Itoa(p)
		peers[i] = "http://" + addrs[i]
		stateDirs[i] = t.TempDir()
	}
	peersFile := filepath.Join(t.TempDir(), "peers.txt")
	writePeers := func(n int) {
		t.Helper()
		if err := os.WriteFile(peersFile, []byte(strings.Join(peers[:n], "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(3)

	startNode := func(i int) *daemon {
		return startDaemonArgs(t, hgpd,
			"-addr", addrs[i],
			"-state-dir", stateDirs[i],
			"-snapshot-interval", "50ms",
			"-concurrency", "2",
			"-queue", "16",
			"-timeout", "5s",
			"-drain-wait", "20s",
			"-peers-file", peersFile,
			"-self", peers[i],
			"-replication", "2",
			// Tight healing intervals so handoff and repair converge
			// within the soak instead of on production timescales.
			"-hint-replay-interval", "500ms",
			"-repair-interval", "2s",
			"-peer-timeout", "250ms",
			"-peer-retries", "1",
			"-peer-breaker-cooldown", "1s",
			"-peer-secret", "replication-soak-secret",
		)
	}
	nodes := make([]*daemon, 4)
	for i := 0; i < 3; i++ {
		nodes[i] = startNode(i)
	}
	bases := []string{nodes[0].base, nodes[1].base, nodes[2].base}
	waitClusterHealthy(t, bases)

	// Prime: six seeds, all through node 0. Every key is replicated to
	// its top-2 HRW owners, so each lives on at least one of nodes 1/2.
	const seeds = 6
	for seed := int64(1); seed <= seeds; seed++ {
		rec := postJSON(t, nodes[0].base+"/v1/partition", loadBody(seed))
		if rec.status != http.StatusOK {
			t.Fatalf("prime seed %d: %d (%s)", seed, rec.status, rec.body)
		}
		waitPushesSettled(t, nodes[0].base)
	}
	survivorBuilds := func() int64 {
		var b int64
		for _, base := range bases[1:] {
			st := waitStat(t, base, 5*time.Second, func(soakStats) bool { return true })
			b += st.counter("decomp_builds_total")
		}
		return b
	}
	before := survivorBuilds()
	if before != 0 {
		t.Fatalf("survivors built %d decompositions during the prime, want 0 (all builds on node 0)", before)
	}

	// Phase 1: strict-SLO load across all three endpoints, node 0 (the
	// holder of every build) SIGKILLed a third of the way in. The
	// survivors must serve every key from replicas — zero rebuilds.
	failover := startLoad(t, hgpload, bases[0], phase, []string{
		"-endpoints", strings.Join(bases, ","),
		"-seeds", strconv.Itoa(seeds),
		"-failover-cooldown", "500ms",
		"-strict", "-slo-success", "0.99",
	})
	time.Sleep(phase / 3)
	if err := nodes[0].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].cmd.Wait() // SIGKILL: nonzero exit expected
	sumFail := failover.wait(t)
	saveArtifact(t, "replicated-failover.json", failover.stdout.Bytes())
	if sumFail.OK == 0 {
		t.Fatal("failover phase produced no successes; the soak is vacuous")
	}
	if sumFail.Failovers == 0 {
		t.Fatal("failover phase recorded no endpoint failovers; was the node really killed mid-load?")
	}
	if after := survivorBuilds(); after != before {
		t.Fatalf("survivors rebuilt %d decompositions after the kill, want 0 (replication must cover the loss)", after-before)
	}
	buildsReport, _ := json.Marshal(map[string]int64{
		"survivor_builds_before_kill": before,
		"survivor_builds_after_kill":  survivorBuilds(),
	})
	saveArtifact(t, "replicated-builds.json", buildsReport)
	for _, base := range bases[1:] {
		waitStat(t, base, 15*time.Second, func(st soakStats) bool {
			return !peerHealthyOn(st, peers[0])
		})
	}

	// Phase 2: hinted handoff. With node 0 still dead, fresh builds on
	// node 1 whose replica sets include node 0 cannot push — the pushes
	// must stage as hints instead of being dropped.
	for seed := int64(101); seed <= 100+seeds; seed++ {
		rec := postJSON(t, nodes[1].base+"/v1/partition", loadBody(seed))
		if rec.status != http.StatusOK {
			t.Fatalf("hint seed %d: %d (%s)", seed, rec.status, rec.body)
		}
		waitPushesSettled(t, nodes[1].base)
	}
	waitStat(t, nodes[1].base, 10*time.Second, func(st soakStats) bool {
		return st.counter("hints_staged_total") >= 1
	})

	// Rejoin node 0: gossip restores it, the drainer replays the staged
	// hints, and the queue empties.
	nodes[0] = startNode(0)
	waitClusterHealthy(t, bases)
	waitStat(t, nodes[1].base, 20*time.Second, func(st soakStats) bool {
		return st.counter("hints_replayed_total") >= 1 && st.gauge("hints_queued") == 0
	})
	// The handed-off entries (plus the replicas it already held via its
	// snapshots) mean node 0 serves the hint-phase seeds without a
	// single build.
	for seed := int64(101); seed <= 100+seeds; seed++ {
		rec := postJSON(t, nodes[0].base+"/v1/partition", loadBody(seed))
		if rec.status != http.StatusOK {
			t.Fatalf("post-replay seed %d on node 0: %d (%s)", seed, rec.status, rec.body)
		}
	}
	st := waitStat(t, nodes[0].base, 5*time.Second, func(soakStats) bool { return true })
	if got := st.counter("decomp_builds_total"); got != 0 {
		t.Fatalf("rejoined node built %d decompositions, want 0 (handoff + replicas must cover it)", got)
	}

	// Phase 3: anti-entropy. Node 1 leaves gracefully, loses its entire
	// state dir, and rejoins blank. The repair sweep must converge it
	// from its peers — pulled entries, zero rebuilds.
	if err := nodes[1].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].cmd.Wait(); err != nil {
		t.Fatalf("node 1 graceful shutdown exit: %v", err)
	}
	if err := os.RemoveAll(stateDirs[1]); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(stateDirs[1], 0o755); err != nil {
		t.Fatal(err)
	}
	nodes[1] = startNode(1)
	waitClusterHealthy(t, bases)
	st = waitStat(t, nodes[1].base, 30*time.Second, func(st soakStats) bool {
		return st.counter("repair_pulled_total") >= 1
	})
	if got := st.counter("decomp_builds_total"); got != 0 {
		t.Fatalf("blanked replica built %d decompositions, want 0 (repair must pull, not rebuild)", got)
	}

	// Phase 4: dynamic membership under load. A fourth node joins: the
	// peers file grows, the newcomer boots from it, and the incumbents
	// SIGHUP-reload mid-load without denting the SLO.
	sighup := startLoad(t, hgpload, bases[0], phase, []string{
		"-endpoints", strings.Join(bases, ","),
		"-seeds", strconv.Itoa(seeds),
		"-strict", "-slo-success", "0.99",
	})
	time.Sleep(phase / 3)
	writePeers(4)
	nodes[3] = startNode(3)
	for i := 0; i < 3; i++ {
		if err := nodes[i].cmd.Process.Signal(syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
	}
	sumHup := sighup.wait(t)
	saveArtifact(t, "replicated-sighup.json", sighup.stdout.Bytes())
	if sumHup.OK == 0 {
		t.Fatal("SIGHUP phase produced no successes")
	}
	if sumHup.Errors != 0 || sumHup.Unexpected != 0 {
		t.Fatalf("SIGHUP phase: %d errors, %d unexpected", sumHup.Errors, sumHup.Unexpected)
	}
	all := append(append([]string(nil), bases...), nodes[3].base)
	for i := 0; i < 3; i++ {
		waitStat(t, bases[i], 15*time.Second, func(st soakStats) bool {
			return st.counter("membership_reloads_total") >= 1 && st.gauge("cluster_peers") == 4
		})
	}
	waitClusterHealthy(t, all)

	// Graceful exit for all four members.
	for i, node := range nodes {
		if err := node.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func(n *daemon) { done <- n.cmd.Wait() }(node)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("node %d graceful shutdown exit: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGTERM", i)
		}
	}
}
