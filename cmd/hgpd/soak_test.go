package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The kill-restart soak: a real hgpd process driven at 4× solve
// capacity by a real hgpload process, SIGKILLed mid-load, restarted on
// the same -state-dir, and verified to (a) come back with a warm cache —
// the first repeat request is a hit and decomp_builds_total stays 0 —
// and (b) survive a second overload phase with every response either a
// success or a machine-readably-tagged shed, bounded p99, and no solve
// slots stuck afterwards. HGP_SOAK_SECONDS scales each load phase
// (default 3; CI uses longer), HGP_SOAK_RACE=1 builds the binaries with
// the race detector.
func TestKillRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test spawns real processes; skipped with -short")
	}
	phase := 3 * time.Second
	if v := os.Getenv("HGP_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("HGP_SOAK_SECONDS=%q: want a positive integer", v)
		}
		phase = time.Duration(secs) * time.Second
	}

	bin := t.TempDir()
	hgpd := buildBinary(t, bin, "hgpd")
	hgpload := buildBinary(t, bin, "hgpload")
	stateDir := t.TempDir()

	// Phase 1: daemon under 4× closed-loop load (8 workers vs. 2 solve
	// slots), killed without warning partway through.
	d1 := startDaemon(t, hgpd, stateDir)
	load1 := startLoad(t, hgpload, d1.base, phase, nil)

	// Kill only after at least one solve finished AND its decomposition
	// reached disk — otherwise there is nothing to recover.
	waitStat(t, d1.base, 10*time.Second, func(st soakStats) bool {
		return st.counter("partition_ok_total") >= 1 && st.gauge("snapshot_entries") >= 1
	})
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d1.cmd.Wait() // SIGKILL: nonzero exit expected
	sum1 := load1.wait(t)
	// The generator saw transport errors when the daemon died; every
	// response it did get must still be classifiable (no untagged 5xx).
	if sum1.Unexpected != 0 {
		t.Fatalf("phase 1: %d unexpected responses (accepted-then-dropped?)", sum1.Unexpected)
	}
	if sum1.OK == 0 {
		t.Fatal("phase 1 produced no successful solves; the soak is vacuous")
	}

	// Restart on the same state dir: warm-cache recovery.
	d2 := startDaemon(t, hgpd, stateDir)
	st := waitStat(t, d2.base, 10*time.Second, func(soakStats) bool { return true })
	if st.gauge("snapshot_warm_entries") < 1 {
		t.Fatalf("restarted daemon loaded %d warm entries, want >= 1", st.gauge("snapshot_warm_entries"))
	}
	if got := st.counter("decomp_builds_total"); got != 0 {
		t.Fatalf("decomp_builds_total = %d before any request, want 0", got)
	}
	// First repeat request (seed 1 = hgpload's first body) must be a hit.
	rec := postJSON(t, d2.base+"/v1/partition", loadBody(1))
	if rec.status != http.StatusOK {
		t.Fatalf("repeat request after restart = %d (%s)", rec.status, rec.body)
	}
	var pr struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.Unmarshal(rec.body, &pr); err != nil || !pr.CacheHit {
		t.Fatalf("first repeat request after restart must be a cache hit: %s", rec.body)
	}
	st = waitStat(t, d2.base, 5*time.Second, func(soakStats) bool { return true })
	if got := st.counter("decomp_builds_total"); got != 0 {
		t.Fatalf("decomp_builds_total = %d after warm hit, want 0 (embedding re-ran)", got)
	}

	// Phase 2: overload the restarted daemon with SLO gates on — every
	// response must be a 200 or a tagged shed, p99 bounded.
	sum2 := startLoad(t, hgpload, d2.base, phase, []string{
		"-strict", "-slo-p99", "30s", "-slo-success", "0.05",
	}).wait(t)
	if sum2.Unexpected != 0 || sum2.Errors != 0 {
		t.Fatalf("phase 2: %d unexpected, %d transport errors", sum2.Unexpected, sum2.Errors)
	}

	// No stuck slots or waiters after the storm.
	st = waitStat(t, d2.base, 10*time.Second, func(st soakStats) bool {
		return st.Queue.InUse == 0 && st.Queue.Waiting == 0 && st.Queue.Depth == 0
	})

	// Graceful exit: SIGTERM drains and flushes, exit code 0.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	out := filepath.Join(dir, name)
	args := []string{"build"}
	if os.Getenv("HGP_SOAK_RACE") == "1" {
		args = append(args, "-race")
	}
	args = append(args, "-o", out, "hierpart/cmd/"+name)
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	if raw, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, raw)
	}
	return out
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/hgpd → repo root
}

type daemon struct {
	cmd  *exec.Cmd
	base string
}

var listenRE = regexp.MustCompile(`listening on (\S+:\d+)`)

// startDaemon launches hgpd on an ephemeral port with a small solve
// ceiling and a tight flusher interval, and parses the resolved address
// from its log output.
func startDaemon(t *testing.T, bin, stateDir string) *daemon {
	t.Helper()
	return startDaemonArgs(t, bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-snapshot-interval", "50ms",
		"-adaptive",
		"-concurrency", "2",
		"-queue", "4",
		"-timeout", "5s",
		"-drain-wait", "20s",
	)
}

// startDaemonArgs launches hgpd with the given flags (which must
// include -addr), parses the resolved listen address from its log
// output, and waits for the daemon to report healthy.
func startDaemonArgs(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		base := "http://" + addr
		waitHealthy(t, base)
		return &daemon{cmd: cmd, base: base}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon never logged its listen address")
		return nil
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never became healthy: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// loadSummary mirrors hgpload's JSON report (the fields the soaks need).
type loadSummary struct {
	Requests      int `json:"requests"`
	OK            int `json:"ok"`
	Errors        int `json:"errors"`
	Unexpected    int `json:"unexpected"`
	PeerFetchHits int `json:"peer_fetch_hits"`
	Failovers     int `json:"failovers"`
}

type loadRun struct {
	cmd    *exec.Cmd
	stdout *bytes.Buffer
	stderr *bytes.Buffer
}

// startLoad launches hgpload at 4× the daemon's solve capacity.
func startLoad(t *testing.T, bin, base string, dur time.Duration, extra []string) *loadRun {
	t.Helper()
	args := []string{
		"-addr", base,
		"-mode", "closed",
		"-workers", "8", // 4× the daemon's -concurrency 2
		"-duration", dur.String(),
		"-seeds", "4",
		"-timeout-ms", "2000",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return &loadRun{cmd: cmd, stdout: &stdout, stderr: &stderr}
}

func (lr *loadRun) wait(t *testing.T) loadSummary {
	t.Helper()
	if err := lr.cmd.Wait(); err != nil {
		t.Fatalf("hgpload: %v\nstderr: %s\nstdout: %s", err, lr.stderr, lr.stdout)
	}
	var sum loadSummary
	if err := json.Unmarshal(lr.stdout.Bytes(), &sum); err != nil {
		t.Fatalf("parsing hgpload summary: %v\n%s", err, lr.stdout)
	}
	return sum
}

// soakStats is the slice of /v1/stats the soak asserts on.
type soakStats struct {
	Queue struct {
		Depth   int64 `json:"depth"`
		InUse   int   `json:"in_use"`
		Waiting int   `json:"waiting"`
	} `json:"queue"`
	Metrics struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	} `json:"metrics"`
	Cluster struct {
		Enabled bool `json:"enabled"`
		Peers   []struct {
			Peer    string `json:"peer"`
			Self    bool   `json:"self"`
			Healthy bool   `json:"healthy"`
		} `json:"peers"`
		FetchHits int64 `json:"fetch_hits"`
	} `json:"cluster"`
}

func (st soakStats) counter(name string) int64 { return st.Metrics.Counters[name] }
func (st soakStats) gauge(name string) int64   { return st.Metrics.Gauges[name] }

// waitStat polls /v1/stats until ok(st) holds, failing after the wait.
func waitStat(t *testing.T, base string, wait time.Duration, ok func(soakStats) bool) soakStats {
	t.Helper()
	deadline := time.Now().Add(wait)
	var last soakStats
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(raw, &last); err == nil && ok(last) {
				return last
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition never held; last = %+v", last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// loadBody reproduces hgpload's request body for the given seed, so the
// soak can replay the generator's first instance and assert a warm hit.
func loadBody(seed int64) []byte {
	body := map[string]any{
		"hierarchy":  map[string]any{"deg": []int{2, 4}, "cm": []float64{8, 2, 0}},
		"n":          8,
		"demands":    []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		"seed":       seed,
		"trees":      2,
		"timeout_ms": 2000,
	}
	var edges [][3]float64
	for b := 0; b < 8; b += 4 {
		for i := b; i < b+4; i++ {
			for j := i + 1; j < b+4; j++ {
				edges = append(edges, [3]float64{float64(i), float64(j), 10})
			}
		}
	}
	edges = append(edges, [3]float64{0, 4, 1})
	body["edges"] = edges
	raw, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return raw
}

type httpResult struct {
	status int
	body   []byte
}

func postJSON(t *testing.T, url string, body []byte) httpResult {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return httpResult{status: resp.StatusCode, body: raw}
}

// Flag validation: nonsense values must be rejected at startup, before
// any listener is opened.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative concurrency", []string{"-concurrency", "-1"}},
		{"queue below -1", []string{"-queue", "-2"}},
		{"cache below -1", []string{"-cache", "-2"}},
		{"zero timeout", []string{"-timeout", "0s"}},
		{"negative max-timeout", []string{"-max-timeout", "-1s"}},
		{"max-timeout below timeout", []string{"-timeout", "1m", "-max-timeout", "1s"}},
		{"negative workers", []string{"-workers", "-3"}},
		{"zero max-states", []string{"-max-states", "0"}},
		{"zero max-vertices", []string{"-max-vertices", "0"}},
		{"zero max-edges", []string{"-max-edges", "0"}},
		{"zero drain-wait", []string{"-drain-wait", "0s"}},
		{"zero snapshot-interval", []string{"-snapshot-interval", "0s"}},
		{"negative max-heap-bytes", []string{"-max-heap-bytes", "-1"}},
		{"state-dir without cache", []string{"-state-dir", "/tmp/x", "-cache", "-1"}},
		{"peers without self", []string{"-peers", "http://a:1,http://b:2"}},
		{"self without peers", []string{"-self", "http://a:1"}},
		{"self not in peers", []string{"-peers", "http://a:1,http://b:2", "-self", "http://c:3"}},
		{"peers without cache", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-cache", "-1"}},
		{"zero peer-timeout", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-peer-timeout", "0s"}},
		{"negative peer-retries", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-peer-retries", "-1"}},
		{"zero peer-breaker-cooldown", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-peer-breaker-cooldown", "0s"}},
		{"replication below 1", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-replication", "0"}},
		{"negative hint-queue", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-hint-queue", "-1"}},
		{"zero hint-replay-interval", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-hint-replay-interval", "0s"}},
		{"negative repair-interval", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-repair-interval", "-1s"}},
		{"peers and peers-file together", []string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1", "-peers-file", "/tmp/does-not-matter"}},
	}
	if testing.Short() {
		t.Skip("spawns the built binary; skipped with -short")
	}
	bin := buildBinary(t, t.TempDir(), "hgpd")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("args %v: err = %v (output %s), want exit code 2", tc.args, err, out)
			}
			if !strings.Contains(string(out), "must") && !strings.Contains(string(out), "requires") {
				t.Fatalf("args %v: error message %q lacks guidance", tc.args, out)
			}
		})
	}
}
