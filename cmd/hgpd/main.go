// Command hgpd is the long-running hierarchical-graph-partitioning
// daemon: it serves POST /v1/partition (solve an instance under a
// deadline), GET /v1/healthz, GET /v1/stats (JSON or Prometheus text),
// and /debug/pprof/*, amortizing decomposition builds across requests
// with an LRU cache and shedding load with 429 when the admission queue
// fills. With -state-dir the cache is durable across restarts; with
// -adaptive the solve ceiling follows observed latency AIMD-style; with
// -max-heap-bytes a memory-pressure breaker degrades service before the
// kernel OOM-kills the process. See API.md for the wire format and
// DESIGN.md for the serving architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"hierpart/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the resolved address is logged)")
		concurrency = flag.Int("concurrency", 0, "max simultaneous solves (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "waiting room beyond -concurrency before shedding 429 (-1 = none)")
		cacheSize   = flag.Int("cache", 128, "decomposition LRU entries (-1 = disable caching)")
		resultCache = flag.Int("result-cache", 256, "full-result LRU entries: repeat requests skip decomposition and DP (-1 = disable)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "upper bound on any per-request deadline")
		workers     = flag.Int("workers", 0, "per-solve worker budget (0 = GOMAXPROCS)")
		serialPort  = flag.Bool("serial-portfolio", false, "run pruned tree portfolios one tree at a time instead of racing them under a shared incumbent bound (results identical; escape hatch / A-B knob)")
		maxStates   = flag.Int("max-states", 50_000_000, "per-request DP state budget ceiling")
		maxVertices = flag.Int("max-vertices", 100_000, "reject graphs with more vertices than this (413)")
		maxEdges    = flag.Int("max-edges", 2_000_000, "reject graphs with more edges than this (413)")
		noDegrade   = flag.Bool("no-degrade", false, "disable the anytime degradation ladder daemon-wide (missed deadlines become 504s)")
		maxSessions = flag.Int("max-sessions", 64, "graph-session LRU entries (/v1/graphs incremental repartitioning); least recently used sessions are evicted (-1 = disable sessions)")
		drainWait   = flag.Duration("drain-wait", time.Minute, "how long shutdown waits for in-flight solves")

		stateDir     = flag.String("state-dir", "", "directory for durable cache snapshots (empty = memory-only cache)")
		snapInterval = flag.Duration("snapshot-interval", 2*time.Second, "how often the background flusher snapshots staged cache entries")
		adaptive     = flag.Bool("adaptive", false, "AIMD concurrency limiter: move the solve ceiling with observed latency vs. deadline headroom")
		maxHeap      = flag.Int64("max-heap-bytes", 0, "memory-pressure breaker threshold on the live heap (0 = disabled)")
		canonFlag    = flag.Bool("canon", false, "canonical-form graph fingerprinting: key caches by a label-invariant fingerprint so isomorphic (relabelled) submissions share entries; responses carry canon_hit")

		peersFlag    = flag.String("peers", "", "cluster mode: comma-separated base URLs of EVERY member of the shard group, including this daemon's own (see -self); each cache key is homed on its top-R rendezvous-hash owners (see -replication), non-replicas fetch from them and push local builds back")
		peersFile    = flag.String("peers-file", "", "cluster mode: read the peer list from this file instead of -peers (whitespace/comma separated, # comments); SIGHUP — or an observed mtime change — re-reads it and reloads membership without a restart")
		selfFlag     = flag.String("self", "", "this daemon's own entry in the peer list (the base URL peers reach it at); required with -peers/-peers-file")
		replication  = flag.Int("replication", 1, "replicas per cache key: each key lives on its top-R rendezvous-hash peers (clamped to the cluster size); 1 = single ownership")
		peerTimeout  = flag.Duration("peer-timeout", 2*time.Second, "per-attempt timeout for peer fetches and pushes")
		peerRetries  = flag.Int("peer-retries", 2, "retries after a failed peer fetch attempt (attempts = retries+1, jittered exponential backoff between them)")
		peerCooldown = flag.Duration("peer-breaker-cooldown", 2*time.Second, "how long a peer's fetch breaker fast-fails after opening (3 consecutive failures) before a half-open probe")
		peerSecret   = flag.String("peer-secret", "", "cluster shared secret: every /v1/peer/* request must carry it (X-Hgpd-Peer-Secret; wrong or missing = 403) and outgoing peer traffic attaches it; all peers must share one value; falls back to the HGPD_PEER_SECRET env var (keeps the secret off the process list); empty = unauthenticated, safe ONLY on a network unreachable by untrusted clients")
		hintQueue    = flag.Int("hint-queue", 512, "hinted-handoff queue entries: pushes to a dead replica are staged (durably under -state-dir) and replayed when it returns (0 = disable handoff)")
		hintReplay   = flag.Duration("hint-replay-interval", 2*time.Second, "how often the handoff drainer persists and replays staged hints")
		repairEvery  = flag.Duration("repair-interval", 30*time.Second, "how often the anti-entropy sweep exchanges key digests with peers and pulls entries this daemon's replicas are missing (0 = disable repair)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hgpd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	peers := splitPeers(*peersFlag)
	secret := *peerSecret
	if secret == "" {
		secret = os.Getenv("HGPD_PEER_SECRET")
	}
	if err := validateFlags(*concurrency, *queue, *cacheSize, *resultCache, *timeout, *maxTimeout,
		*workers, *maxStates, *maxVertices, *maxEdges, *drainWait,
		*stateDir, *snapInterval, *maxHeap, *maxSessions); err != nil {
		fmt.Fprintf(os.Stderr, "hgpd: %v\n", err)
		os.Exit(2)
	}
	if *peersFile != "" {
		if len(peers) != 0 {
			fmt.Fprintln(os.Stderr, "hgpd: -peers and -peers-file must not both be set; pick one peer-list source")
			os.Exit(2)
		}
		filePeers, err := readPeersFile(*peersFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hgpd: -peers-file: %v\n", err)
			os.Exit(2)
		}
		peers = filePeers
	}
	if err := validateClusterFlags(peers, *selfFlag, *cacheSize, *peerTimeout, *peerRetries, *peerCooldown,
		*replication, *hintQueue, *hintReplay, *repairEvery); err != nil {
		fmt.Fprintf(os.Stderr, "hgpd: %v\n", err)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:      *concurrency,
		MaxQueue:           *queue,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		CacheEntries:       *cacheSize,
		ResultCacheEntries: *resultCache,
		SolverWorkers:      *workers,
		SerialPortfolio:    *serialPort,
		MaxStates:          *maxStates,
		MaxVertices:        *maxVertices,
		MaxEdges:           *maxEdges,
		DisableDegradation: *noDegrade,
		MaxSessions:        *maxSessions,
		StateDir:           *stateDir,
		SnapshotInterval:   *snapInterval,
		Adaptive:           *adaptive,
		MaxHeapBytes:       *maxHeap,
		Canon:              *canonFlag,

		Peers:               peers,
		Self:                *selfFlag,
		Replication:         *replication,
		PeerTimeout:         *peerTimeout,
		PeerRetries:         *peerRetries,
		PeerBreakerCooldown: *peerCooldown,
		PeerSecret:          secret,
		HintQueueEntries:    disableOnZero(*hintQueue),
		HintReplayInterval:  *hintReplay,
		RepairInterval:      disableOnZeroDur(*repairEvery),
	})
	if err != nil {
		log.Fatalf("hgpd: %v", err)
	}
	if len(peers) > 0 && secret == "" {
		log.Printf("hgpd: WARNING: cluster mode without -peer-secret (or HGPD_PEER_SECRET): /v1/peer/* is unauthenticated, and any client that can reach %s can read or poison the shared caches — run unauthenticated only on a network unreachable by untrusted clients", *addr)
	}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works:
	// the resolved address is logged before serving begins, and tests or
	// supervisors can parse it instead of racing a port guess.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hgpd: listen: %v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("hgpd listening on %s", ln.Addr())

	if *peersFile != "" {
		// Dynamic membership: SIGHUP re-reads the peers file on demand,
		// and an mtime poll catches edits when nobody signals (config
		// management that writes files but not signals). Both paths
		// funnel through one goroutine so reloads are serialized.
		hupCh := make(chan os.Signal, 1)
		signal.Notify(hupCh, syscall.SIGHUP)
		go watchPeersFile(*peersFile, hupCh, srv.ReloadPeers)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining (up to %v)", sig, *drainWait)
	case err := <-errCh:
		log.Fatalf("hgpd: %v", err)
	}

	// Graceful shutdown: flip healthz to draining and refuse new solves,
	// wait for in-flight ones (then flush cache snapshots), then close
	// listeners.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("hgpd: %v (abandoning in-flight solves)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("hgpd: http shutdown: %v", err)
	}
	log.Printf("hgpd stopped")
}

// validateFlags rejects nonsensical flag values at startup with a clear
// error instead of letting withDefaults silently reinterpret them.
// -queue and -cache keep their documented -1 = disabled convention;
// everything else must be non-negative, and duration/size flags that
// something divides by or sleeps on must be strictly positive.
func validateFlags(concurrency, queue, cacheSize, resultCache int, timeout, maxTimeout time.Duration,
	workers, maxStates, maxVertices, maxEdges int, drainWait time.Duration,
	stateDir string, snapInterval time.Duration, maxHeap int64, maxSessions int) error {
	switch {
	case concurrency < 0:
		return fmt.Errorf("-concurrency %d: must be >= 0 (0 = GOMAXPROCS)", concurrency)
	case queue < -1:
		return fmt.Errorf("-queue %d: must be >= -1 (-1 = no waiting room)", queue)
	case cacheSize < -1:
		return fmt.Errorf("-cache %d: must be >= -1 (-1 = disable caching)", cacheSize)
	case resultCache < -1:
		return fmt.Errorf("-result-cache %d: must be >= -1 (-1 = disable)", resultCache)
	case timeout <= 0:
		return fmt.Errorf("-timeout %v: must be > 0", timeout)
	case maxTimeout <= 0:
		return fmt.Errorf("-max-timeout %v: must be > 0", maxTimeout)
	case maxTimeout < timeout:
		return fmt.Errorf("-max-timeout %v: must be >= -timeout (%v)", maxTimeout, timeout)
	case workers < 0:
		return fmt.Errorf("-workers %d: must be >= 0 (0 = GOMAXPROCS)", workers)
	case maxStates <= 0:
		return fmt.Errorf("-max-states %d: must be > 0", maxStates)
	case maxVertices <= 0:
		return fmt.Errorf("-max-vertices %d: must be > 0", maxVertices)
	case maxEdges <= 0:
		return fmt.Errorf("-max-edges %d: must be > 0", maxEdges)
	case drainWait <= 0:
		return fmt.Errorf("-drain-wait %v: must be > 0", drainWait)
	case snapInterval <= 0:
		return fmt.Errorf("-snapshot-interval %v: must be > 0", snapInterval)
	case maxHeap < 0:
		return fmt.Errorf("-max-heap-bytes %d: must be >= 0 (0 = breaker disabled)", maxHeap)
	case stateDir != "" && cacheSize == -1:
		return fmt.Errorf("-state-dir requires caching: -cache must not be -1")
	case maxSessions < -1:
		return fmt.Errorf("-max-sessions %d: must be >= -1 (-1 = disable sessions)", maxSessions)
	}
	return nil
}

// splitPeers parses the -peers value: comma-separated, whitespace
// around entries tolerated, empty segments dropped. An empty flag
// yields nil (cluster mode off).
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// readPeersFile parses a -peers-file: peer base URLs separated by
// whitespace, newlines, or commas, with #-to-end-of-line comments.
func readPeersFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var peers []string
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, p := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == '\r'
		}) {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("%s: no peers listed", path)
	}
	return peers, nil
}

// peersFilePollInterval is how often the membership watcher checks the
// peers file's mtime between signals.
const peersFilePollInterval = 2 * time.Second

// watchPeersFile reloads cluster membership from path whenever SIGHUP
// arrives or the file's mtime changes. A reload that fails to read or
// validate is logged and the previous membership stays in force — a
// half-written file must never take the cluster down.
func watchPeersFile(path string, hup <-chan os.Signal, reload func([]string) error) {
	var lastMod time.Time
	if st, err := os.Stat(path); err == nil {
		lastMod = st.ModTime()
	}
	tick := time.NewTicker(peersFilePollInterval)
	defer tick.Stop()
	for {
		select {
		case <-hup:
			log.Printf("hgpd: SIGHUP: reloading peer list from %s", path)
		case <-tick.C:
			st, err := os.Stat(path)
			if err != nil || st.ModTime().Equal(lastMod) {
				continue
			}
			lastMod = st.ModTime()
			log.Printf("hgpd: %s changed; reloading peer list", path)
		}
		if st, err := os.Stat(path); err == nil {
			lastMod = st.ModTime()
		}
		peers, err := readPeersFile(path)
		if err != nil {
			log.Printf("hgpd: peers reload rejected: %v (keeping current membership)", err)
			continue
		}
		if err := reload(peers); err != nil {
			log.Printf("hgpd: peers reload rejected: %v (keeping current membership)", err)
			continue
		}
		log.Printf("hgpd: cluster membership now %d peers", len(peers))
	}
}

// disableOnZero maps a flag's "0 = off" convention to the Config's
// "negative = off, zero = default" convention.
func disableOnZero(v int) int {
	if v == 0 {
		return -1
	}
	return v
}

func disableOnZeroDur(v time.Duration) time.Duration {
	if v == 0 {
		return -1
	}
	return v
}

// validateClusterFlags checks the cluster flag group's internal
// consistency. server.New re-validates (tests construct Config
// directly), but catching operator typos here yields a flag-named
// message and exit code 2 instead of a runtime error.
func validateClusterFlags(peers []string, self string, cacheSize int, peerTimeout time.Duration, peerRetries int, peerCooldown time.Duration,
	replication, hintQueue int, hintReplay, repairEvery time.Duration) error {
	if len(peers) == 0 {
		if self != "" {
			return fmt.Errorf("-self %q: requires -peers or -peers-file", self)
		}
		return nil
	}
	switch {
	case self == "":
		return fmt.Errorf("the peer list requires -self: name this daemon's own entry in it")
	case !slices.Contains(peers, self):
		return fmt.Errorf("-self %q: must appear in the peer list %v", self, peers)
	case cacheSize == -1:
		return fmt.Errorf("cluster mode requires caching: -cache must not be -1")
	case peerTimeout <= 0:
		return fmt.Errorf("-peer-timeout %v: must be > 0", peerTimeout)
	case peerRetries < 0:
		return fmt.Errorf("-peer-retries %d: must be >= 0", peerRetries)
	case peerCooldown <= 0:
		return fmt.Errorf("-peer-breaker-cooldown %v: must be > 0", peerCooldown)
	case replication < 1:
		// R greater than the cluster size is fine (the ring clamps it);
		// R below 1 cannot mean anything.
		return fmt.Errorf("-replication %d: must be >= 1 (values above the cluster size are clamped)", replication)
	case hintQueue < 0:
		return fmt.Errorf("-hint-queue %d: must be >= 0 (0 = disable handoff)", hintQueue)
	case hintReplay <= 0:
		return fmt.Errorf("-hint-replay-interval %v: must be > 0", hintReplay)
	case repairEvery < 0:
		return fmt.Errorf("-repair-interval %v: must be >= 0 (0 = disable repair)", repairEvery)
	}
	return nil
}
