// Command hgpd is the long-running hierarchical-graph-partitioning
// daemon: it serves POST /v1/partition (solve an instance under a
// deadline), GET /v1/healthz, GET /v1/stats (JSON or Prometheus text),
// and /debug/pprof/*, amortizing decomposition builds across requests
// with an LRU cache and shedding load with 429 when the admission queue
// fills. With -state-dir the cache is durable across restarts; with
// -adaptive the solve ceiling follows observed latency AIMD-style; with
// -max-heap-bytes a memory-pressure breaker degrades service before the
// kernel OOM-kills the process. See API.md for the wire format and
// DESIGN.md for the serving architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"hierpart/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the resolved address is logged)")
		concurrency = flag.Int("concurrency", 0, "max simultaneous solves (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "waiting room beyond -concurrency before shedding 429 (-1 = none)")
		cacheSize   = flag.Int("cache", 128, "decomposition LRU entries (-1 = disable caching)")
		resultCache = flag.Int("result-cache", 256, "full-result LRU entries: repeat requests skip decomposition and DP (-1 = disable)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "upper bound on any per-request deadline")
		workers     = flag.Int("workers", 0, "per-solve worker budget (0 = GOMAXPROCS)")
		serialPort  = flag.Bool("serial-portfolio", false, "run pruned tree portfolios one tree at a time instead of racing them under a shared incumbent bound (results identical; escape hatch / A-B knob)")
		maxStates   = flag.Int("max-states", 50_000_000, "per-request DP state budget ceiling")
		maxVertices = flag.Int("max-vertices", 100_000, "reject graphs with more vertices than this (413)")
		maxEdges    = flag.Int("max-edges", 2_000_000, "reject graphs with more edges than this (413)")
		noDegrade   = flag.Bool("no-degrade", false, "disable the anytime degradation ladder daemon-wide (missed deadlines become 504s)")
		drainWait   = flag.Duration("drain-wait", time.Minute, "how long shutdown waits for in-flight solves")

		stateDir     = flag.String("state-dir", "", "directory for durable cache snapshots (empty = memory-only cache)")
		snapInterval = flag.Duration("snapshot-interval", 2*time.Second, "how often the background flusher snapshots staged cache entries")
		adaptive     = flag.Bool("adaptive", false, "AIMD concurrency limiter: move the solve ceiling with observed latency vs. deadline headroom")
		maxHeap      = flag.Int64("max-heap-bytes", 0, "memory-pressure breaker threshold on the live heap (0 = disabled)")
		canonFlag    = flag.Bool("canon", false, "canonical-form graph fingerprinting: key caches by a label-invariant fingerprint so isomorphic (relabelled) submissions share entries; responses carry canon_hit")

		peersFlag    = flag.String("peers", "", "cluster mode: comma-separated base URLs of EVERY member of the shard group, including this daemon's own (see -self); each cache key gets one owner by rendezvous hashing, non-owners fetch from the owner and push local builds back")
		selfFlag     = flag.String("self", "", "this daemon's own entry in -peers (the base URL peers reach it at); required with -peers")
		peerTimeout  = flag.Duration("peer-timeout", 2*time.Second, "per-attempt timeout for peer fetches and pushes")
		peerRetries  = flag.Int("peer-retries", 2, "retries after a failed peer fetch attempt (attempts = retries+1, jittered exponential backoff between them)")
		peerCooldown = flag.Duration("peer-breaker-cooldown", 2*time.Second, "how long a peer's fetch breaker fast-fails after opening (3 consecutive failures) before a half-open probe")
		peerSecret   = flag.String("peer-secret", "", "cluster shared secret: every /v1/peer/* request must carry it (X-Hgpd-Peer-Secret; wrong or missing = 403) and outgoing peer traffic attaches it; all peers must share one value; falls back to the HGPD_PEER_SECRET env var (keeps the secret off the process list); empty = unauthenticated, safe ONLY on a network unreachable by untrusted clients")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hgpd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	peers := splitPeers(*peersFlag)
	secret := *peerSecret
	if secret == "" {
		secret = os.Getenv("HGPD_PEER_SECRET")
	}
	if err := validateFlags(*concurrency, *queue, *cacheSize, *resultCache, *timeout, *maxTimeout,
		*workers, *maxStates, *maxVertices, *maxEdges, *drainWait,
		*stateDir, *snapInterval, *maxHeap); err != nil {
		fmt.Fprintf(os.Stderr, "hgpd: %v\n", err)
		os.Exit(2)
	}
	if err := validateClusterFlags(peers, *selfFlag, *cacheSize, *peerTimeout, *peerRetries, *peerCooldown); err != nil {
		fmt.Fprintf(os.Stderr, "hgpd: %v\n", err)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:      *concurrency,
		MaxQueue:           *queue,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		CacheEntries:       *cacheSize,
		ResultCacheEntries: *resultCache,
		SolverWorkers:      *workers,
		SerialPortfolio:    *serialPort,
		MaxStates:          *maxStates,
		MaxVertices:        *maxVertices,
		MaxEdges:           *maxEdges,
		DisableDegradation: *noDegrade,
		StateDir:           *stateDir,
		SnapshotInterval:   *snapInterval,
		Adaptive:           *adaptive,
		MaxHeapBytes:       *maxHeap,
		Canon:              *canonFlag,

		Peers:               peers,
		Self:                *selfFlag,
		PeerTimeout:         *peerTimeout,
		PeerRetries:         *peerRetries,
		PeerBreakerCooldown: *peerCooldown,
		PeerSecret:          secret,
	})
	if err != nil {
		log.Fatalf("hgpd: %v", err)
	}
	if len(peers) > 0 && secret == "" {
		log.Printf("hgpd: WARNING: cluster mode without -peer-secret (or HGPD_PEER_SECRET): /v1/peer/* is unauthenticated, and any client that can reach %s can read or poison the shared caches — run unauthenticated only on a network unreachable by untrusted clients", *addr)
	}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works:
	// the resolved address is logged before serving begins, and tests or
	// supervisors can parse it instead of racing a port guess.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hgpd: listen: %v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("hgpd listening on %s", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining (up to %v)", sig, *drainWait)
	case err := <-errCh:
		log.Fatalf("hgpd: %v", err)
	}

	// Graceful shutdown: flip healthz to draining and refuse new solves,
	// wait for in-flight ones (then flush cache snapshots), then close
	// listeners.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("hgpd: %v (abandoning in-flight solves)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("hgpd: http shutdown: %v", err)
	}
	log.Printf("hgpd stopped")
}

// validateFlags rejects nonsensical flag values at startup with a clear
// error instead of letting withDefaults silently reinterpret them.
// -queue and -cache keep their documented -1 = disabled convention;
// everything else must be non-negative, and duration/size flags that
// something divides by or sleeps on must be strictly positive.
func validateFlags(concurrency, queue, cacheSize, resultCache int, timeout, maxTimeout time.Duration,
	workers, maxStates, maxVertices, maxEdges int, drainWait time.Duration,
	stateDir string, snapInterval time.Duration, maxHeap int64) error {
	switch {
	case concurrency < 0:
		return fmt.Errorf("-concurrency %d: must be >= 0 (0 = GOMAXPROCS)", concurrency)
	case queue < -1:
		return fmt.Errorf("-queue %d: must be >= -1 (-1 = no waiting room)", queue)
	case cacheSize < -1:
		return fmt.Errorf("-cache %d: must be >= -1 (-1 = disable caching)", cacheSize)
	case resultCache < -1:
		return fmt.Errorf("-result-cache %d: must be >= -1 (-1 = disable)", resultCache)
	case timeout <= 0:
		return fmt.Errorf("-timeout %v: must be > 0", timeout)
	case maxTimeout <= 0:
		return fmt.Errorf("-max-timeout %v: must be > 0", maxTimeout)
	case maxTimeout < timeout:
		return fmt.Errorf("-max-timeout %v: must be >= -timeout (%v)", maxTimeout, timeout)
	case workers < 0:
		return fmt.Errorf("-workers %d: must be >= 0 (0 = GOMAXPROCS)", workers)
	case maxStates <= 0:
		return fmt.Errorf("-max-states %d: must be > 0", maxStates)
	case maxVertices <= 0:
		return fmt.Errorf("-max-vertices %d: must be > 0", maxVertices)
	case maxEdges <= 0:
		return fmt.Errorf("-max-edges %d: must be > 0", maxEdges)
	case drainWait <= 0:
		return fmt.Errorf("-drain-wait %v: must be > 0", drainWait)
	case snapInterval <= 0:
		return fmt.Errorf("-snapshot-interval %v: must be > 0", snapInterval)
	case maxHeap < 0:
		return fmt.Errorf("-max-heap-bytes %d: must be >= 0 (0 = breaker disabled)", maxHeap)
	case stateDir != "" && cacheSize == -1:
		return fmt.Errorf("-state-dir requires caching: -cache must not be -1")
	}
	return nil
}

// splitPeers parses the -peers value: comma-separated, whitespace
// around entries tolerated, empty segments dropped. An empty flag
// yields nil (cluster mode off).
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// validateClusterFlags checks the cluster flag group's internal
// consistency. server.New re-validates (tests construct Config
// directly), but catching operator typos here yields a flag-named
// message and exit code 2 instead of a runtime error.
func validateClusterFlags(peers []string, self string, cacheSize int, peerTimeout time.Duration, peerRetries int, peerCooldown time.Duration) error {
	if len(peers) == 0 {
		if self != "" {
			return fmt.Errorf("-self %q: requires -peers", self)
		}
		return nil
	}
	switch {
	case self == "":
		return fmt.Errorf("-peers requires -self: name this daemon's own entry in the peer list")
	case !slices.Contains(peers, self):
		return fmt.Errorf("-self %q: must appear in -peers %v", self, peers)
	case cacheSize == -1:
		return fmt.Errorf("-peers requires caching: -cache must not be -1")
	case peerTimeout <= 0:
		return fmt.Errorf("-peer-timeout %v: must be > 0", peerTimeout)
	case peerRetries < 0:
		return fmt.Errorf("-peer-retries %d: must be >= 0", peerRetries)
	case peerCooldown <= 0:
		return fmt.Errorf("-peer-breaker-cooldown %v: must be > 0", peerCooldown)
	}
	return nil
}
