// Command hgpd is the long-running hierarchical-graph-partitioning
// daemon: it serves POST /v1/partition (solve an instance under a
// deadline), GET /v1/healthz, GET /v1/stats (JSON or Prometheus text),
// and /debug/pprof/*, amortizing decomposition builds across requests
// with an LRU cache and shedding load with 429 when the admission queue
// fills. See API.md for the wire format and DESIGN.md for the serving
// architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hierpart/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		concurrency = flag.Int("concurrency", 0, "max simultaneous solves (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "waiting room beyond -concurrency before shedding 429 (-1 = none)")
		cacheSize   = flag.Int("cache", 128, "decomposition LRU entries (-1 = disable caching)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "upper bound on any per-request deadline")
		workers     = flag.Int("workers", 0, "per-solve worker budget (0 = GOMAXPROCS)")
		maxStates   = flag.Int("max-states", 50_000_000, "per-request DP state budget ceiling")
		maxVertices = flag.Int("max-vertices", 100_000, "reject graphs with more vertices than this (413)")
		maxEdges    = flag.Int("max-edges", 2_000_000, "reject graphs with more edges than this (413)")
		noDegrade   = flag.Bool("no-degrade", false, "disable the anytime degradation ladder daemon-wide (missed deadlines become 504s)")
		drainWait   = flag.Duration("drain-wait", time.Minute, "how long shutdown waits for in-flight solves")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hgpd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		MaxConcurrent:      *concurrency,
		MaxQueue:           *queue,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		CacheEntries:       *cacheSize,
		SolverWorkers:      *workers,
		MaxStates:          *maxStates,
		MaxVertices:        *maxVertices,
		MaxEdges:           *maxEdges,
		DisableDegradation: *noDegrade,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("hgpd listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining (up to %v)", sig, *drainWait)
	case err := <-errCh:
		log.Fatalf("hgpd: %v", err)
	}

	// Graceful shutdown: flip healthz to draining and refuse new solves,
	// wait for in-flight ones, then close listeners.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("hgpd: %v (abandoning in-flight solves)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("hgpd: http shutdown: %v", err)
	}
	log.Printf("hgpd stopped")
}
