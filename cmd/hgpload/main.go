// Command hgpload is a load generator for hgpd: it drives POST
// /v1/partition in closed-loop (a fixed worker pool, each worker
// issuing its next request when the previous one returns) or open-loop
// (a fixed arrival rate, independent of response times — the shape that
// actually exposes queueing collapse) mode, classifies every response,
// and prints a JSON summary with latency percentiles and the fraction of
// 200s the daemon answered from its full-solve result cache.
//
// Three workload shapes are available: -workload seeds (the default;
// one fixed two-clique instance under rotating decomposition seeds),
// -workload zipf (a zipf-distributed multi-tenant population, each
// tenant resubmitting its own streaming-topology instance under fresh
// vertex relabellings — the shape canonical fingerprinting exists for;
// pair it with a daemon running -canon and watch canon_hit_ratio), and
// -workload delta (the incremental repartitioning shape: each tenant
// registers its instance as a graph session once, then the load is
// PATCH-a-delta-then-solve against /v1/graphs — the summary splits
// incremental from cold solves, reports the mean dirty-table fraction,
// and prints separate delta-vs-cold latency percentiles).
//
// With -endpoints a,b,c it drives a whole hgpd cluster: requests
// rotate across the endpoints, transport errors fail over to the next
// one (counting the request once, by its final outcome), and the
// summary adds per-endpoint latency percentiles plus peer_fetch_hits —
// the 200s a daemon answered from an entry fetched off the owning
// peer.
//
// With -strict and/or the -slo-* flags it doubles as an assertion
// harness: transport errors, unexpected statuses (5xx without a
// machine-readable shed_reason), a p99 over budget, or a success rate
// under target exit non-zero, so CI and soak tests can gate on it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hierpart/internal/graph"
	"hierpart/internal/stream"
)

// loadRequest is the POST /v1/partition body hgpload sends: the
// two-clique synthetic instance (8 vertices, strong intra-clique edges,
// one weak bridge) with a rotating decomposition seed so the daemon
// sees a mix of cache hits and misses.
func loadRequest(seed int64, trees, timeoutMS int) []byte {
	type hierarchySpec struct {
		Deg []int     `json:"deg"`
		CM  []float64 `json:"cm"`
	}
	body := map[string]any{
		"hierarchy":  hierarchySpec{Deg: []int{2, 4}, CM: []float64{8, 2, 0}},
		"n":          8,
		"demands":    []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		"seed":       seed,
		"trees":      trees,
		"timeout_ms": timeoutMS,
	}
	var edges [][3]float64
	for b := 0; b < 8; b += 4 {
		for i := b; i < b+4; i++ {
			for j := i + 1; j < b+4; j++ {
				edges = append(edges, [3]float64{float64(i), float64(j), 10})
			}
		}
	}
	edges = append(edges, [3]float64{0, 4, 1})
	body["edges"] = edges
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return buf
}

// identityFraction is the share of zipf-workload requests that resubmit
// a tenant's instance with its ORIGINAL labelling instead of a fresh
// random relabelling. It keeps the canon-off baseline's hit ratio
// nonzero (identical bytes hit the label-sensitive keys), so the E25
// on/off comparison measures the fingerprint's lift, not division by
// zero.
const identityFraction = 0.1

// zipfWorkload models the multi-tenant resubmission pattern ROADMAP
// item 4 describes: a zipf-distributed tenant population, each tenant
// owning one topology-family instance (rotating through the
// internal/stream families), autoscaling resubmitting that instance
// under fresh vertex labellings. Without canonicalization almost every
// such request misses the label-sensitive caches; with -canon on the
// daemon they collapse onto shared canonical entries.
type zipfWorkload struct {
	mu      sync.Mutex
	rng     *rand.Rand
	zipf    *rand.Zipf
	tenants []tenantInstance
	trees   int
	timeout int
}

// tenantInstance is one tenant's base instance in array form, ready to
// relabel and marshal.
type tenantInstance struct {
	n       int
	demands []float64
	edges   [][3]float64
}

func newZipfWorkload(tenants int, s float64, trees, timeoutMS int) *zipfWorkload {
	rng := rand.New(rand.NewSource(1))
	w := &zipfWorkload{
		rng:     rng,
		zipf:    rand.NewZipf(rng, s, 1, uint64(tenants-1)),
		trees:   trees,
		timeout: timeoutMS,
	}
	for t := 0; t < tenants; t++ {
		// Per-tenant generator stream: every tenant owns a distinct
		// instance (distinct random stage demands and rates) of one of
		// the four streaming topology families.
		trng := rand.New(rand.NewSource(int64(t) + 1000))
		var g *graph.Graph
		switch t % 4 {
		case 0:
			g = stream.Pipeline(trng, 4, 3, 0.1, 0.4, 64).CommGraph()
		case 1:
			g = stream.Diamond(trng, 3, 0.1, 0.4, 64).CommGraph()
		case 2:
			g = stream.FanInAggregation(trng, 4, 2, 0.1, 0.4, 60).CommGraph()
		default:
			g = stream.WordCount(trng, 3, 3, 0.1, 0.4, 64).CommGraph()
		}
		ti := tenantInstance{n: g.N(), demands: make([]float64, g.N())}
		for v := 0; v < g.N(); v++ {
			ti.demands[v] = g.Demand(v)
		}
		for _, e := range g.Edges() {
			ti.edges = append(ti.edges, [3]float64{float64(e.U), float64(e.V), e.Weight})
		}
		w.tenants = append(w.tenants, ti)
	}
	return w
}

// body draws a tenant from the zipf distribution and marshals that
// tenant's instance — relabelled through a fresh random permutation,
// except for the identityFraction of requests that reuse the base
// labelling.
func (w *zipfWorkload) body() []byte {
	w.mu.Lock()
	ti := w.tenants[int(w.zipf.Uint64())]
	var perm []int
	if w.rng.Float64() >= identityFraction {
		perm = w.rng.Perm(ti.n)
	}
	w.mu.Unlock()

	demands := ti.demands
	edges := ti.edges
	if perm != nil {
		demands = make([]float64, ti.n)
		for v, d := range ti.demands {
			demands[perm[v]] = d
		}
		edges = make([][3]float64, len(ti.edges))
		for i, e := range ti.edges {
			edges[i] = [3]float64{float64(perm[int(e[0])]), float64(perm[int(e[1])]), e[2]}
		}
	}
	body := map[string]any{
		"hierarchy":  map[string]any{"deg": []int{2, 4}, "cm": []float64{8, 2, 0}},
		"n":          ti.n,
		"demands":    demands,
		"edges":      edges,
		"seed":       1, // fixed: isomorphic submissions must share solver identity
		"trees":      w.trees,
		"timeout_ms": w.timeout,
	}
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return buf
}

// sample is one completed request, as recorded by a worker. A request
// that failed over between endpoints is still ONE sample — classified
// by its final outcome, with failovers counting the abandoned
// attempts — so SLO math stays per-request, not per-attempt.
type sample struct {
	status    int
	shed      string
	latency   time.Duration
	err       bool
	resultHit bool     // 200 served from the daemon's full-solve result cache
	canonHit  bool     // 200 answered through the canonical-fingerprint key
	peerFetch bool     // 200 built from an entry fetched off a cluster peer
	endpoint  string   // base URL that produced the final outcome
	failovers int      // endpoints abandoned (transport error) before this outcome
	abandoned []string // base URLs of those abandoned attempts, in order

	// Delta-workload fields (session solves against /v1/graphs).
	session     bool    // sample is a session solve
	incremental bool    // solve took the repair + warm-table path
	stored      bool    // solve replayed the stored previous response
	dirtyFrac   float64 // dirty_table_frac of an incremental solve
}

// deltaWorkload drives the incremental repartitioning surface: every
// tenant owns one registered graph session; each shot draws a tenant
// from the zipf distribution, usually PATCHes one random edge reweight
// (probability -patch-prob), then solves the session. Solves are the
// recorded samples; patch outcomes only steer the session version.
type deltaWorkload struct {
	mu   sync.Mutex
	rng  *rand.Rand
	zipf *rand.Zipf

	client    *http.Client
	base      string
	timeout   int
	patchProb float64
	sessions  []*deltaSession
}

// deltaSession is one tenant's registered session. Its mutex serializes
// this client's patch+solve pairs (the daemon serializes per-session
// anyway; holding the pair together keeps the version bookkeeping
// simple and conflict-free within one hgpload process).
type deltaSession struct {
	mu      sync.Mutex
	id      string
	version int64
	edges   [][3]float64
}

// newDeltaWorkload registers one session per tenant (same streaming
// topology families as the zipf workload) against base. Registration
// happens before load starts; a daemon that cannot register sessions is
// a startup error, not a sample.
func newDeltaWorkload(base string, client *http.Client, tenants int, s float64, trees, timeoutMS int, patchProb float64) (*deltaWorkload, error) {
	rng := rand.New(rand.NewSource(1))
	w := &deltaWorkload{
		rng:       rng,
		zipf:      rand.NewZipf(rng, s, 1, uint64(tenants-1)),
		client:    client,
		base:      strings.TrimRight(base, "/"),
		timeout:   timeoutMS,
		patchProb: patchProb,
	}
	for t := 0; t < tenants; t++ {
		trng := rand.New(rand.NewSource(int64(t) + 1000))
		var g *graph.Graph
		switch t % 4 {
		case 0:
			g = stream.Pipeline(trng, 4, 3, 0.1, 0.4, 64).CommGraph()
		case 1:
			g = stream.Diamond(trng, 3, 0.1, 0.4, 64).CommGraph()
		case 2:
			g = stream.FanInAggregation(trng, 4, 2, 0.1, 0.4, 60).CommGraph()
		default:
			g = stream.WordCount(trng, 3, 3, 0.1, 0.4, 64).CommGraph()
		}
		demands := make([]float64, g.N())
		for v := 0; v < g.N(); v++ {
			demands[v] = g.Demand(v)
		}
		var edges [][3]float64
		for _, e := range g.Edges() {
			edges = append(edges, [3]float64{float64(e.U), float64(e.V), e.Weight})
		}
		body, err := json.Marshal(map[string]any{
			"hierarchy": map[string]any{"deg": []int{2, 4}, "cm": []float64{8, 2, 0}},
			"n":         g.N(),
			"demands":   demands,
			"edges":     edges,
			"seed":      1,
			"trees":     trees,
		})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(w.base+"/v1/graphs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("registering tenant %d: %w", t, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("registering tenant %d: status %d: %s", t, resp.StatusCode, raw)
		}
		var view struct {
			ID      string `json:"id"`
			Version int64  `json:"version"`
		}
		if err := json.Unmarshal(raw, &view); err != nil || view.ID == "" {
			return nil, fmt.Errorf("registering tenant %d: bad response %q", t, raw)
		}
		w.sessions = append(w.sessions, &deltaSession{id: view.ID, version: view.Version, edges: edges})
	}
	return w, nil
}

// shoot performs one patch-then-solve round against a zipf-drawn
// tenant's session and records the solve. Return value: backoff for a
// closed-loop worker, as with the one-shot shoot.
func (w *deltaWorkload) shoot(record func(sample)) time.Duration {
	w.mu.Lock()
	sess := w.sessions[int(w.zipf.Uint64())]
	doPatch := w.rng.Float64() < w.patchProb
	ei := w.rng.Intn(len(sess.edges))
	weight := 1 + 9*w.rng.Float64()
	w.mu.Unlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if doPatch {
		e := sess.edges[ei]
		body, _ := json.Marshal(map[string]any{
			"version": sess.version,
			"deltas": []map[string]any{{
				"op": "reweight_edge", "u": int(e[0]), "v": int(e[1]), "weight": weight,
			}},
		})
		req, _ := http.NewRequest(http.MethodPatch, w.base+"/v1/graphs/"+sess.id, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client.Do(req)
		if err != nil {
			record(sample{err: true, session: true, endpoint: w.base})
			return 50 * time.Millisecond
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var view struct {
				Version int64 `json:"version"`
			}
			if json.Unmarshal(raw, &view) == nil {
				sess.version = view.Version
			}
		}
		// Non-200 patches (conflict from another client, shed) fall
		// through: the solve below still measures the daemon.
	}

	t0 := time.Now()
	body, _ := json.Marshal(map[string]any{"timeout_ms": w.timeout})
	resp, err := w.client.Post(w.base+"/v1/graphs/"+sess.id+"/partition", "application/json", bytes.NewReader(body))
	if err != nil {
		record(sample{err: true, session: true, latency: time.Since(t0), endpoint: w.base})
		return 50 * time.Millisecond
	}
	var envelope struct {
		ShedReason     string  `json:"shed_reason"`
		Incremental    bool    `json:"incremental"`
		Stored         bool    `json:"stored"`
		DirtyTableFrac float64 `json:"dirty_table_frac"`
		Version        int64   `json:"version"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_ = json.Unmarshal(raw, &envelope)
	if envelope.Version > sess.version {
		sess.version = envelope.Version
	}
	record(sample{
		status: resp.StatusCode, shed: envelope.ShedReason,
		latency: time.Since(t0), endpoint: w.base,
		session: true, incremental: envelope.Incremental,
		stored: envelope.Stored, dirtyFrac: envelope.DirtyTableFrac,
	})
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		return 50 * time.Millisecond
	}
	return 0
}

// endpointPool rotates load across the -endpoints list and implements
// client-side failover: a transport error cools the endpoint for
// coolDown (-failover-cooldown), and order() pushes cooled endpoints
// to the back so workers prefer live daemons while still probing dead
// ones once the cooldown lapses (a restarted daemon rejoins the
// rotation by itself).
type endpointPool struct {
	bases    []string // as given, for reporting
	urls     []string // bases + "/v1/partition"
	coolDown time.Duration

	mu        sync.Mutex
	coolUntil []time.Time
	rr        int
}

func newEndpointPool(bases []string, coolDown time.Duration) *endpointPool {
	p := &endpointPool{
		bases:     bases,
		urls:      make([]string, len(bases)),
		coolDown:  coolDown,
		coolUntil: make([]time.Time, len(bases)),
	}
	for i, b := range bases {
		p.urls[i] = strings.TrimRight(b, "/") + "/v1/partition"
	}
	return p
}

// order returns every endpoint index in preference order for one
// request: round-robin from a moving start, with cooled endpoints
// moved to the back (they are last-resort retry targets, not skipped —
// when everything is down the request must still fail against a real
// connection attempt).
func (p *endpointPool) order() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	warm := make([]int, 0, len(p.urls))
	var cold []int
	for k := 0; k < len(p.urls); k++ {
		i := (p.rr + k) % len(p.urls)
		if now.Before(p.coolUntil[i]) {
			cold = append(cold, i)
		} else {
			warm = append(warm, i)
		}
	}
	p.rr = (p.rr + 1) % len(p.urls)
	return append(warm, cold...)
}

func (p *endpointPool) cool(i int) {
	p.mu.Lock()
	p.coolUntil[i] = time.Now().Add(p.coolDown)
	p.mu.Unlock()
}

// Summary is the JSON report printed on stdout.
type Summary struct {
	Mode            string             `json:"mode"`
	DurationSeconds float64            `json:"duration_seconds"`
	Requests        int                `json:"requests"`
	OK              int                `json:"ok"` // HTTP 200
	Errors          int                `json:"errors"`
	Unexpected      int                `json:"unexpected"` // 5xx without shed_reason, or unknown status
	Statuses        map[string]int     `json:"statuses"`
	ShedReasons     map[string]int     `json:"shed_reasons"`
	Throughput      float64            `json:"throughput_rps"` // 200s per second
	LatencyMS       map[string]float64 `json:"latency_ms"`     // over 200s: p50/p90/p99/max
	// ResultCacheHits counts 200s the daemon answered from its full-solve
	// result cache (result_cache_hit in the response); the ratio is over
	// all 200s, so with rotating seeds it converges to (seeds-1)/seeds
	// once every distinct instance has been solved once.
	ResultCacheHits     int     `json:"result_cache_hits"`
	ResultCacheHitRatio float64 `json:"result_cache_hit_ratio"`
	// CanonHits counts 200s served through a canonical-fingerprint cache
	// key (canon_hit in the response): the daemon recognized the instance
	// as isomorphic to one it had already processed. Always zero unless
	// the daemon runs with -canon.
	CanonHits     int     `json:"canon_hits"`
	CanonHitRatio float64 `json:"canon_hit_ratio"`
	// PeerFetchHits counts 200s a daemon answered from an entry it
	// fetched off the owning cluster peer (peer_fetch_hit in the
	// response). Always zero unless the daemons run with -peers.
	PeerFetchHits     int     `json:"peer_fetch_hits"`
	PeerFetchHitRatio float64 `json:"peer_fetch_hit_ratio"`
	// Delta-workload accounting (zero unless -workload delta): the
	// incremental/cold/stored split over session solves, the mean
	// dirty-table fraction of incremental solves (the share of DP
	// tables actually recomputed), and separate latency percentiles for
	// incremental ("delta") vs cold session solves — the load-side view
	// of the speedup the E26 experiment measures.
	IncrementalSolves int                `json:"incremental_solves,omitempty"`
	ColdSolves        int                `json:"cold_solves,omitempty"`
	StoredReplays     int                `json:"stored_replays,omitempty"`
	DirtyTableFrac    float64            `json:"dirty_table_frac,omitempty"`
	DeltaLatencyMS    map[string]float64 `json:"delta_latency_ms,omitempty"`
	ColdLatencyMS     map[string]float64 `json:"cold_latency_ms,omitempty"`
	// Failovers counts endpoint attempts abandoned on transport error
	// before the request's recorded outcome (multi-endpoint mode).
	Failovers int `json:"failovers"`
	// Endpoints breaks requests down per base URL in multi-endpoint
	// mode (-endpoints with more than one entry); omitted otherwise.
	Endpoints map[string]*EndpointSummary `json:"endpoints,omitempty"`
}

// EndpointSummary is the per-endpoint slice of the report: how one
// daemon behaved under its share of the load.
type EndpointSummary struct {
	Requests    int                `json:"requests"`
	OK          int                `json:"ok"`
	Errors      int                `json:"errors"`
	ShedReasons map[string]int     `json:"shed_reasons,omitempty"`
	LatencyMS   map[string]float64 `json:"latency_ms"` // over 200s: p50/p90/p99/max
	// Failovers counts attempts ABANDONED at this endpoint (transport
	// error, request completed elsewhere or not at all): the endpoint's
	// contribution to cluster-level failover, attributed to the daemon
	// that dropped the connection rather than the one that recovered it.
	Failovers int `json:"failovers"`
	// Retries counts requests this endpoint ANSWERED after at least one
	// other endpoint was abandoned first — the recovery side of the
	// failover ledger. Summed over endpoints, Retries is the number of
	// requests saved by failover.
	Retries int `json:"retries"`
}

// latencyStats computes the p50/p90/p99/max map over 200-latencies,
// sorting its argument in place. Empty input yields an empty map.
func latencyStats(lat []time.Duration) map[string]float64 {
	out := map[string]float64{}
	if len(lat) == 0 {
		return out
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Microseconds()) / 1000
	}
	out["p50"] = pct(0.50)
	out["p90"] = pct(0.90)
	out["p99"] = pct(0.99)
	out["max"] = float64(lat[len(lat)-1].Microseconds()) / 1000
	return out
}

func main() {
	var (
		target    = flag.String("addr", "http://127.0.0.1:8080", "hgpd base URL (single-endpoint mode; see -endpoints)")
		endpoints = flag.String("endpoints", "", "comma-separated hgpd base URLs to spread load across (cluster mode); overrides -addr. A transport error fails the request over to the next endpoint (cooling the dead one for -failover-cooldown) and the request is counted ONCE, by its final outcome")
		failCool  = flag.Duration("failover-cooldown", time.Second, "how long a transport error keeps an endpoint at the back of the rotation before workers probe it again (multi-endpoint mode)")
		mode      = flag.String("mode", "closed", `"closed" (worker pool) or "open" (fixed arrival rate)`)
		workers   = flag.Int("workers", 4, "closed-loop worker count")
		rate      = flag.Float64("rate", 20, "open-loop arrivals per second")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		seeds     = flag.Int("seeds", 4, "rotate this many decomposition seeds (cache hit/miss mix; seeds workload only)")
		trees     = flag.Int("trees", 2, "trees per request")
		timeoutMS = flag.Int("timeout-ms", 2000, "per-request deadline sent to the daemon")
		workload  = flag.String("workload", "seeds", `"seeds" (one instance, rotating decomposition seeds), "zipf" (multi-tenant: zipf-distributed tenants resubmitting relabelled instances), or "delta" (multi-tenant graph sessions: PATCH one edge delta then solve incrementally via /v1/graphs)`)
		tenants   = flag.Int("tenants", 16, "zipf/delta workload: tenant population size")
		zipfS     = flag.Float64("zipf-s", 1.3, "zipf/delta workload: skew exponent (must be > 1; larger = hotter head tenants)")
		patchProb = flag.Float64("patch-prob", 0.8, "delta workload: probability a session solve is preceded by a one-edge PATCH (the rest re-solve the unchanged version and measure stored replays)")
		strict    = flag.Bool("strict", false, "exit 1 on any transport error or unexpected status")
		sloP99    = flag.Duration("slo-p99", 0, "exit 1 when the p99 latency of 200s exceeds this (0 = no assertion)")
		sloOK     = flag.Float64("slo-success", 0, "exit 1 when the fraction of requests answered 200 is below this")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*mode != "closed" && *mode != "open") || *workers < 1 || *rate <= 0 ||
		*duration <= 0 || *seeds < 1 || *timeoutMS < 0 || *failCool <= 0 ||
		(*workload != "seeds" && *workload != "zipf" && *workload != "delta") ||
		*tenants < 2 || *zipfS <= 1 || *patchProb < 0 || *patchProb > 1 {
		fmt.Fprintln(os.Stderr, "usage: hgpload [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *workload == "delta" && *endpoints != "" {
		fmt.Fprintln(os.Stderr, "hgpload: -workload delta drives one daemon's session store; -endpoints is not supported")
		os.Exit(2)
	}

	// bodyFor yields the next request body. The seeds workload
	// pre-marshals one body per decomposition seed and round-robins;
	// the zipf workload synthesizes a (usually relabelled) tenant
	// instance per call.
	var bodyFor func(seq int) []byte
	if *workload == "zipf" {
		zw := newZipfWorkload(*tenants, *zipfS, *trees, *timeoutMS)
		bodyFor = func(int) []byte { return zw.body() }
	} else {
		bodies := make([][]byte, *seeds)
		for i := range bodies {
			bodies[i] = loadRequest(int64(i+1), *trees, *timeoutMS)
		}
		bodyFor = func(seq int) []byte { return bodies[seq%len(bodies)] }
	}
	client := &http.Client{Timeout: time.Duration(*timeoutMS)*time.Millisecond + 10*time.Second}
	bases := []string{*target}
	if *endpoints != "" {
		bases = nil
		for _, b := range strings.Split(*endpoints, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, b)
			}
		}
		if len(bases) == 0 {
			fmt.Fprintln(os.Stderr, "hgpload: -endpoints: no usable URLs")
			os.Exit(2)
		}
	}
	pool := newEndpointPool(bases, *failCool)

	var (
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	// shoot issues one request, failing over across endpoints on
	// transport errors. Its return value is the backoff a closed-loop
	// worker should honor before its next shot: the daemon's Retry-After
	// on a shed (capped), a short pause after every endpoint failed (so
	// a dead cluster is polled, not hammered), zero otherwise.
	shoot := func(seq int) time.Duration {
		body := bodyFor(seq)
		order := pool.order()
		t0 := time.Now()
		var abandoned []string
		for attempt, idx := range order {
			resp, err := client.Post(pool.urls[idx], "application/json", bytes.NewReader(body))
			if err != nil {
				pool.cool(idx)
				if attempt < len(order)-1 {
					abandoned = append(abandoned, pool.bases[idx])
					continue // fail over; counted via the final sample's failovers
				}
				record(sample{err: true, latency: time.Since(t0),
					endpoint: pool.bases[idx], failovers: attempt, abandoned: abandoned})
				return 50 * time.Millisecond
			}
			var envelope struct {
				ShedReason     string `json:"shed_reason"`
				ResultCacheHit bool   `json:"result_cache_hit"`
				CanonHit       bool   `json:"canon_hit"`
				PeerFetchHit   bool   `json:"peer_fetch_hit"`
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(raw, &envelope)
			record(sample{status: resp.StatusCode, shed: envelope.ShedReason,
				latency: time.Since(t0), resultHit: envelope.ResultCacheHit,
				canonHit: envelope.CanonHit, peerFetch: envelope.PeerFetchHit,
				endpoint: pool.bases[idx], failovers: attempt, abandoned: abandoned})
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				backoff := 50 * time.Millisecond
				if ra := resp.Header.Get("Retry-After"); ra != "" {
					if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
						backoff = time.Duration(secs) * time.Second
					}
				}
				if backoff > 2*time.Second {
					backoff = 2 * time.Second
				}
				return backoff
			}
			return 0
		}
		return 0 // unreachable: order() is never empty
	}
	if *workload == "delta" {
		dw, err := newDeltaWorkload(bases[0], client, *tenants, *zipfS, *trees, *timeoutMS, *patchProb)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hgpload: delta workload: %v\n", err)
			os.Exit(1)
		}
		shoot = func(int) time.Duration { return dw.shoot(record) }
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		var seq int64
		var seqMu sync.Mutex
		next := func() int {
			seqMu.Lock()
			defer seqMu.Unlock()
			seq++
			return int(seq)
		}
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					remaining := time.Until(deadline)
					if remaining <= 0 {
						return
					}
					if backoff := shoot(next()); backoff > 0 {
						if backoff > remaining {
							backoff = remaining
						}
						time.Sleep(backoff)
					}
				}
			}()
		}
	case "open":
		interval := time.Duration(float64(time.Second) / *rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		seq := 0
		for now := range ticker.C {
			if now.After(deadline) {
				break
			}
			seq++
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				shoot(n)
			}(seq)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := Summary{
		Mode:            *mode,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(samples),
		Statuses:        map[string]int{},
		ShedReasons:     map[string]int{},
		LatencyMS:       map[string]float64{},
	}
	perEndpoint := map[string]*EndpointSummary{}
	epLat := map[string][]time.Duration{}
	epFor := func(base string) *EndpointSummary {
		es := perEndpoint[base]
		if es == nil {
			es = &EndpointSummary{ShedReasons: map[string]int{}}
			perEndpoint[base] = es
		}
		return es
	}
	var okLat, deltaLat, coldLat []time.Duration
	dirtySum := 0.0
	for _, s := range samples {
		sum.Failovers += s.failovers
		// Per-endpoint failover ledger: each abandoned attempt debits
		// the endpoint that dropped the connection; a request that then
		// completed anywhere credits its final endpoint with the retry.
		for _, base := range s.abandoned {
			epFor(base).Failovers++
		}
		es := epFor(s.endpoint)
		es.Requests++
		if s.failovers > 0 && !s.err {
			es.Retries++
		}
		if s.err {
			sum.Errors++
			es.Errors++
			continue
		}
		sum.Statuses[fmt.Sprint(s.status)]++
		if s.shed != "" {
			sum.ShedReasons[s.shed]++
			es.ShedReasons[s.shed]++
		}
		switch {
		case s.status == http.StatusOK:
			sum.OK++
			es.OK++
			if s.resultHit {
				sum.ResultCacheHits++
			}
			if s.canonHit {
				sum.CanonHits++
			}
			if s.peerFetch {
				sum.PeerFetchHits++
			}
			if s.session {
				switch {
				case s.stored:
					sum.StoredReplays++
				case s.incremental:
					sum.IncrementalSolves++
					dirtySum += s.dirtyFrac
					deltaLat = append(deltaLat, s.latency)
				default:
					sum.ColdSolves++
					coldLat = append(coldLat, s.latency)
				}
			}
			okLat = append(okLat, s.latency)
			epLat[s.endpoint] = append(epLat[s.endpoint], s.latency)
		case s.status == http.StatusTooManyRequests, s.status == http.StatusGatewayTimeout:
			// Sheds and deadline misses: expected under overload.
		case s.status == http.StatusServiceUnavailable && s.shed != "":
			// Tagged 503 (breaker_open, draining): a deliberate shed.
		default:
			sum.Unexpected++
		}
	}
	sum.LatencyMS = latencyStats(okLat)
	if sum.IncrementalSolves > 0 {
		sum.DirtyTableFrac = dirtySum / float64(sum.IncrementalSolves)
		sum.DeltaLatencyMS = latencyStats(deltaLat)
	}
	if sum.ColdSolves > 0 {
		sum.ColdLatencyMS = latencyStats(coldLat)
	}
	if sum.OK > 0 {
		sum.Throughput = float64(sum.OK) / elapsed.Seconds()
		sum.ResultCacheHitRatio = float64(sum.ResultCacheHits) / float64(sum.OK)
		sum.CanonHitRatio = float64(sum.CanonHits) / float64(sum.OK)
		sum.PeerFetchHitRatio = float64(sum.PeerFetchHits) / float64(sum.OK)
	}
	if len(bases) > 1 {
		for base, es := range perEndpoint {
			es.LatencyMS = latencyStats(epLat[base])
		}
		sum.Endpoints = perEndpoint
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)

	// SLO gate.
	failed := false
	if *strict && (sum.Errors > 0 || sum.Unexpected > 0) {
		fmt.Fprintf(os.Stderr, "hgpload: strict: %d transport errors, %d unexpected responses\n",
			sum.Errors, sum.Unexpected)
		failed = true
	}
	if *sloP99 > 0 {
		p99 := time.Duration(sum.LatencyMS["p99"] * float64(time.Millisecond))
		if len(okLat) == 0 || p99 > *sloP99 {
			fmt.Fprintf(os.Stderr, "hgpload: SLO: p99 %v exceeds budget %v (or no successes)\n", p99, *sloP99)
			failed = true
		}
	}
	if *sloOK > 0 {
		got := 0.0
		if sum.Requests > 0 {
			got = float64(sum.OK) / float64(sum.Requests)
		}
		if got < *sloOK {
			fmt.Fprintf(os.Stderr, "hgpload: SLO: success rate %.3f below target %.3f\n", got, *sloOK)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
