// Command hgpload is a load generator for hgpd: it drives POST
// /v1/partition in closed-loop (a fixed worker pool, each worker
// issuing its next request when the previous one returns) or open-loop
// (a fixed arrival rate, independent of response times — the shape that
// actually exposes queueing collapse) mode, classifies every response,
// and prints a JSON summary with latency percentiles and the fraction of
// 200s the daemon answered from its full-solve result cache.
//
// With -strict and/or the -slo-* flags it doubles as an assertion
// harness: transport errors, unexpected statuses (5xx without a
// machine-readable shed_reason), a p99 over budget, or a success rate
// under target exit non-zero, so CI and soak tests can gate on it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// loadRequest is the POST /v1/partition body hgpload sends: the
// two-clique synthetic instance (8 vertices, strong intra-clique edges,
// one weak bridge) with a rotating decomposition seed so the daemon
// sees a mix of cache hits and misses.
func loadRequest(seed int64, trees, timeoutMS int) []byte {
	type hierarchySpec struct {
		Deg []int     `json:"deg"`
		CM  []float64 `json:"cm"`
	}
	body := map[string]any{
		"hierarchy":  hierarchySpec{Deg: []int{2, 4}, CM: []float64{8, 2, 0}},
		"n":          8,
		"demands":    []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		"seed":       seed,
		"trees":      trees,
		"timeout_ms": timeoutMS,
	}
	var edges [][3]float64
	for b := 0; b < 8; b += 4 {
		for i := b; i < b+4; i++ {
			for j := i + 1; j < b+4; j++ {
				edges = append(edges, [3]float64{float64(i), float64(j), 10})
			}
		}
	}
	edges = append(edges, [3]float64{0, 4, 1})
	body["edges"] = edges
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return buf
}

// sample is one completed request, as recorded by a worker.
type sample struct {
	status    int
	shed      string
	latency   time.Duration
	err       bool
	resultHit bool // 200 served from the daemon's full-solve result cache
}

// Summary is the JSON report printed on stdout.
type Summary struct {
	Mode            string             `json:"mode"`
	DurationSeconds float64            `json:"duration_seconds"`
	Requests        int                `json:"requests"`
	OK              int                `json:"ok"` // HTTP 200
	Errors          int                `json:"errors"`
	Unexpected      int                `json:"unexpected"` // 5xx without shed_reason, or unknown status
	Statuses        map[string]int     `json:"statuses"`
	ShedReasons     map[string]int     `json:"shed_reasons"`
	Throughput      float64            `json:"throughput_rps"` // 200s per second
	LatencyMS       map[string]float64 `json:"latency_ms"`     // over 200s: p50/p90/p99/max
	// ResultCacheHits counts 200s the daemon answered from its full-solve
	// result cache (result_cache_hit in the response); the ratio is over
	// all 200s, so with rotating seeds it converges to (seeds-1)/seeds
	// once every distinct instance has been solved once.
	ResultCacheHits     int     `json:"result_cache_hits"`
	ResultCacheHitRatio float64 `json:"result_cache_hit_ratio"`
}

func main() {
	var (
		target    = flag.String("addr", "http://127.0.0.1:8080", "hgpd base URL")
		mode      = flag.String("mode", "closed", `"closed" (worker pool) or "open" (fixed arrival rate)`)
		workers   = flag.Int("workers", 4, "closed-loop worker count")
		rate      = flag.Float64("rate", 20, "open-loop arrivals per second")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		seeds     = flag.Int("seeds", 4, "rotate this many decomposition seeds (cache hit/miss mix)")
		trees     = flag.Int("trees", 2, "trees per request")
		timeoutMS = flag.Int("timeout-ms", 2000, "per-request deadline sent to the daemon")
		strict    = flag.Bool("strict", false, "exit 1 on any transport error or unexpected status")
		sloP99    = flag.Duration("slo-p99", 0, "exit 1 when the p99 latency of 200s exceeds this (0 = no assertion)")
		sloOK     = flag.Float64("slo-success", 0, "exit 1 when the fraction of requests answered 200 is below this")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*mode != "closed" && *mode != "open") || *workers < 1 || *rate <= 0 ||
		*duration <= 0 || *seeds < 1 || *timeoutMS < 0 {
		fmt.Fprintln(os.Stderr, "usage: hgpload [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// Pre-marshal one body per seed; workers round-robin through them.
	bodies := make([][]byte, *seeds)
	for i := range bodies {
		bodies[i] = loadRequest(int64(i+1), *trees, *timeoutMS)
	}
	client := &http.Client{Timeout: time.Duration(*timeoutMS)*time.Millisecond + 10*time.Second}
	url := *target + "/v1/partition"

	var (
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	// shoot issues one request. Its return value is the backoff a
	// closed-loop worker should honor before its next shot: the daemon's
	// Retry-After on a shed (capped), a short pause after a transport
	// error (so a dead daemon is polled, not hammered), zero otherwise.
	shoot := func(seq int) time.Duration {
		body := bodies[seq%len(bodies)]
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			record(sample{err: true, latency: time.Since(t0)})
			return 50 * time.Millisecond
		}
		var envelope struct {
			ShedReason     string `json:"shed_reason"`
			ResultCacheHit bool   `json:"result_cache_hit"`
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		_ = json.Unmarshal(raw, &envelope)
		record(sample{status: resp.StatusCode, shed: envelope.ShedReason,
			latency: time.Since(t0), resultHit: envelope.ResultCacheHit})
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			backoff := 50 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					backoff = time.Duration(secs) * time.Second
				}
			}
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			return backoff
		}
		return 0
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	switch *mode {
	case "closed":
		var seq int64
		var seqMu sync.Mutex
		next := func() int {
			seqMu.Lock()
			defer seqMu.Unlock()
			seq++
			return int(seq)
		}
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					remaining := time.Until(deadline)
					if remaining <= 0 {
						return
					}
					if backoff := shoot(next()); backoff > 0 {
						if backoff > remaining {
							backoff = remaining
						}
						time.Sleep(backoff)
					}
				}
			}()
		}
	case "open":
		interval := time.Duration(float64(time.Second) / *rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		seq := 0
		for now := range ticker.C {
			if now.After(deadline) {
				break
			}
			seq++
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				shoot(n)
			}(seq)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := Summary{
		Mode:            *mode,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(samples),
		Statuses:        map[string]int{},
		ShedReasons:     map[string]int{},
		LatencyMS:       map[string]float64{},
	}
	var okLat []time.Duration
	for _, s := range samples {
		if s.err {
			sum.Errors++
			continue
		}
		sum.Statuses[fmt.Sprint(s.status)]++
		if s.shed != "" {
			sum.ShedReasons[s.shed]++
		}
		switch {
		case s.status == http.StatusOK:
			sum.OK++
			if s.resultHit {
				sum.ResultCacheHits++
			}
			okLat = append(okLat, s.latency)
		case s.status == http.StatusTooManyRequests, s.status == http.StatusGatewayTimeout:
			// Sheds and deadline misses: expected under overload.
		case s.status == http.StatusServiceUnavailable && s.shed != "":
			// Tagged 503 (breaker_open, draining): a deliberate shed.
		default:
			sum.Unexpected++
		}
	}
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(okLat)-1))
			return float64(okLat[idx].Microseconds()) / 1000
		}
		sum.LatencyMS["p50"] = pct(0.50)
		sum.LatencyMS["p90"] = pct(0.90)
		sum.LatencyMS["p99"] = pct(0.99)
		sum.LatencyMS["max"] = float64(okLat[len(okLat)-1].Microseconds()) / 1000
		sum.Throughput = float64(sum.OK) / elapsed.Seconds()
	}
	if sum.OK > 0 {
		sum.ResultCacheHitRatio = float64(sum.ResultCacheHits) / float64(sum.OK)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)

	// SLO gate.
	failed := false
	if *strict && (sum.Errors > 0 || sum.Unexpected > 0) {
		fmt.Fprintf(os.Stderr, "hgpload: strict: %d transport errors, %d unexpected responses\n",
			sum.Errors, sum.Unexpected)
		failed = true
	}
	if *sloP99 > 0 {
		p99 := time.Duration(sum.LatencyMS["p99"] * float64(time.Millisecond))
		if len(okLat) == 0 || p99 > *sloP99 {
			fmt.Fprintf(os.Stderr, "hgpload: SLO: p99 %v exceeds budget %v (or no successes)\n", p99, *sloP99)
			failed = true
		}
	}
	if *sloOK > 0 {
		got := 0.0
		if sum.Requests > 0 {
			got = float64(sum.OK) / float64(sum.Requests)
		}
		if got < *sloOK {
			fmt.Fprintf(os.Stderr, "hgpload: SLO: success rate %.3f below target %.3f\n", got, *sloOK)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
