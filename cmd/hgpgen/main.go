// Command hgpgen generates problem instances for cmd/hgp and the
// benchmark harness, bundling a synthetic task graph with a resource
// hierarchy into the JSON instance format.
//
// Usage:
//
//	hgpgen -family community -n 32 -hier numa -seed 1 > instance.json
//
// Families: grid, torus, er, ba, community, tree, wordcount, fanin,
// pipeline, diamond, jointree.
// Hierarchies: flat8, numa (4 sockets × 4 cores), server (4×8×2),
// datacenter (4 racks × 4 hosts × 4 cores).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/instio"
	"hierpart/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgpgen:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "community", "graph family (grid, torus, er, ba, community, tree, wordcount, fanin, pipeline, diamond, jointree)")
	n := flag.Int("n", 32, "approximate vertex/operator count")
	hier := flag.String("hier", "numa", "hierarchy preset (flat8, numa, server, datacenter)")
	seed := flag.Int64("seed", 1, "random seed")
	demand := flag.Float64("demand", 0, "uniform demand per vertex; 0 = auto (60% of capacity)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	h, err := pickHierarchy(*hier)
	if err != nil {
		return err
	}
	g, err := pickGraph(rng, *family, *n)
	if err != nil {
		return err
	}
	if g.TotalDemand() == 0 {
		d := *demand
		if d == 0 {
			d = 0.6 * float64(h.Leaves()) / float64(g.N())
			if d > 1 {
				d = 1
			}
		}
		gen.EqualDemands(g, d)
	}
	return instio.WriteInstance(os.Stdout, g, h)
}

func pickHierarchy(name string) (*hierarchy.Hierarchy, error) {
	switch name {
	case "flat8":
		return hierarchy.FlatKWay(8), nil
	case "numa":
		return hierarchy.NUMASockets(4, 4), nil
	case "server":
		return hierarchy.NUMAServer(), nil
	case "datacenter":
		return hierarchy.Datacenter(4, 4, 4), nil
	default:
		return nil, fmt.Errorf("unknown hierarchy preset %q", name)
	}
}

func pickGraph(rng *rand.Rand, family string, n int) (*graph.Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("need -n ≥ 4")
	}
	switch family {
	case "grid":
		return gen.Grid(n/4, 4, 1), nil
	case "torus":
		return gen.Torus(n/4, 4, 1), nil
	case "er":
		return gen.ErdosRenyi(rng, n, 0.15, 5), nil
	case "ba":
		return gen.BarabasiAlbert(rng, n, 2, 5), nil
	case "community":
		return gen.Community(rng, 4, n/4, 0.5, 0.02, 10, 1), nil
	case "tree":
		t := gen.RandomTree(rng, n, 5, 0, 0)
		g := graph.New(t.N())
		for v := 1; v < t.N(); v++ {
			g.AddEdge(v, t.Parent(v), t.EdgeWeight(v))
		}
		return g, nil
	case "wordcount":
		return stream.WordCount(rng, n/3, n/2, 0.2, 0.5, 50).CommGraph(), nil
	case "fanin":
		return stream.FanInAggregation(rng, n/3, n/6, 0.2, 0.5, 40).CommGraph(), nil
	case "pipeline":
		return stream.Pipeline(rng, 4, n/4, 0.2, 0.5, 40).CommGraph(), nil
	case "diamond":
		return stream.Diamond(rng, n/4, 0.2, 0.5, 40).CommGraph(), nil
	case "jointree":
		p := 2
		for p*2 <= n/2 {
			p *= 2
		}
		return stream.JoinTree(rng, p, 0.2, 0.5, 40).CommGraph(), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
