package main

import (
	"math/rand"
	"testing"
)

func TestPickHierarchy(t *testing.T) {
	for name, leaves := range map[string]int{
		"flat8": 8, "numa": 16, "server": 64, "datacenter": 64,
	} {
		h, err := pickHierarchy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.Leaves() != leaves {
			t.Fatalf("%s: %d leaves, want %d", name, h.Leaves(), leaves)
		}
	}
	if _, err := pickHierarchy("bogus"); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestPickGraphFamilies(t *testing.T) {
	families := []string{"grid", "torus", "er", "ba", "community", "tree",
		"wordcount", "fanin", "pipeline", "diamond", "jointree"}
	for _, fam := range families {
		rng := rand.New(rand.NewSource(3))
		g, err := pickGraph(rng, fam, 24)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() < 4 {
			t.Fatalf("%s: only %d vertices", fam, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := pickGraph(rng, "bogus", 24); err == nil {
		t.Fatal("unknown family must error")
	}
	if _, err := pickGraph(rng, "grid", 2); err == nil {
		t.Fatal("tiny n must error")
	}
}
