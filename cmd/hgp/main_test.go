package main

import (
	"math/rand"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/hierarchy"
)

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.ErdosRenyi(rng, 12, 0.3, 4)
	gen.EqualDemands(g, 0.3)
	h := hierarchy.NUMASockets(2, 2)
	for _, algo := range []string{"hgp", "dual", "multilevel", "kbgp", "greedy", "random"} {
		a, err := solve(algo, g, h, 0.5, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := a.Validate(g, h); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if _, err := solve("nope", g, h, 0.5, 2, 1); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}
