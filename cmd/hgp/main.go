// Command hgp partitions a task graph across a resource hierarchy.
//
// It reads an instance (graph + hierarchy) in the JSON format of
// internal/instio, runs the selected algorithm, and writes the placement
// as JSON to stdout along with a cost report on stderr.
//
// Usage:
//
//	hgp -in instance.json [-algo hgp|dual|multilevel|kbgp|greedy|random]
//	    [-eps 0.5] [-trees 4] [-seed 1] [-refine]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hierpart/internal/baseline"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/instio"
	"hierpart/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hgp:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "instance JSON file (see instio.Instance); '-' for stdin")
	algo := flag.String("algo", "hgp", "algorithm: hgp, dual, multilevel, kbgp, greedy, random")
	eps := flag.Float64("eps", 0.5, "demand rounding parameter ε of the tree DP")
	trees := flag.Int("trees", 4, "number of decomposition trees")
	seed := flag.Int64("seed", 1, "random seed")
	refine := flag.Bool("refine", false, "post-process with hierarchy-aware local search")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("missing -in (instance JSON file)")
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, h, err := instio.ReadInstance(r)
	if err != nil {
		return err
	}

	a, err := solve(*algo, g, h, *eps, *trees, *seed)
	if err != nil {
		return err
	}
	if *refine {
		a = baseline.RefineLocal(g, h, a, 1.2, 3)
	}

	cost := metrics.CostLCA(g, h, a)
	fmt.Fprintf(os.Stderr, "algorithm:  %s\n", *algo)
	fmt.Fprintf(os.Stderr, "hierarchy:  %v\n", h)
	fmt.Fprintf(os.Stderr, "vertices:   %d, edges: %d\n", g.N(), g.M())
	fmt.Fprintf(os.Stderr, "cost:       %.6g\n", cost)
	fmt.Fprintf(os.Stderr, "imbalance:  %.4g\n", metrics.Imbalance(g, h, a))
	for j, v := range metrics.Violation(g, h, a) {
		fmt.Fprintf(os.Stderr, "violation level %d: %.4g\n", j, v)
	}
	return instio.WriteAssignment(os.Stdout, a, cost)
}

func solve(algo string, g *graph.Graph, h *hierarchy.Hierarchy, eps float64, trees int, seed int64) (metrics.Assignment, error) {
	rng := rand.New(rand.NewSource(seed))
	switch algo {
	case "hgp":
		res, err := hgp.Solver{Eps: eps, Trees: trees, Seed: seed}.Solve(g, h)
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	case "dual":
		return baseline.DualRecursive(rng, g, h), nil
	case "multilevel":
		return baseline.Multilevel(rng, g, h), nil
	case "kbgp":
		return baseline.KBGPOblivious(rng, g, h), nil
	case "greedy":
		return baseline.GreedyBFS(g, h), nil
	case "random":
		return baseline.Random(rng, g, h), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
