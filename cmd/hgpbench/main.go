// Command hgpbench runs the reproduction's experiment suite (E1–E26,
// F1–F2; see EXPERIMENTS.md) and prints the result tables.
//
// Usage:
//
//	hgpbench [-quick] [-seed N] [-only E5,E6] [-csv] [-workers N]
//	         [-prune] [-json out.json]
//	         [-budget 100ms] [-tier baseline]
//	         [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// -workers bounds the solver's concurrency budget (0 = GOMAXPROCS).
// -prune turns on incumbent portfolio pruning in every pipeline solve;
// tables are identical either way (the pruning identity battery), only
// solve-time columns move. -json additionally writes the tables, with
// per-experiment wall-clock, as one machine-readable JSON document —
// the format benchmark baselines (BENCH_PR5.json, BENCH_PR6.json) are
// recorded in. The document's schema tag is hgpbench/2: relative to
// hgpbench/1 it adds the host's num_cpu and, for experiments that fill
// them (E24), per-tree portfolio outcome records under `trees`.
// Tables are identical at every worker count: each decomposition tree
// draws from its own sub-seeded RNG stream, so only -seed changes the
// numbers. (That per-seed stream changed when intra-solver parallelism
// landed — tables recorded before then differ for the same seed.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hierpart/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	seed := flag.Int64("seed", 1, "random seed (tables are reproducible per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E5,F1); empty = all")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	workers := flag.Int("workers", 0, "solver concurrency budget (0 = GOMAXPROCS for the pipeline); tables are identical at every worker count")
	prune := flag.Bool("prune", false, "incumbent portfolio pruning in pipeline solves; tables are identical either way, only solve-time columns move")
	jsonOut := flag.String("json", "", "also write results as machine-readable JSON to this file")
	budget := flag.Duration("budget", 0, "per-solve wall-clock budget for the E22 anytime ladder (0 = the default sweep)")
	tier := flag.String("tier", "", "restrict the E22 ladder to one rung: full_dp, capped_dp, or baseline (empty = whole ladder)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
	}()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, Prune: *prune, Budget: *budget, Tier: *tier}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	runners := []struct {
		id  string
		run func(experiments.Config) *experiments.Table
	}{
		{"E1", experiments.E1TreeDPOptimality},
		{"E2", experiments.E2CostForms},
		{"E3", experiments.E3ViolationBound},
		{"E4", experiments.E4ApproxRatio},
		{"E5", experiments.E5VsBaselines},
		{"E6", experiments.E6StreamThroughput},
		{"E7", experiments.E7TreeDistortion},
		{"E8", experiments.E8DPScaling},
		{"E9", experiments.E9CMSweep},
		{"E10", experiments.E10KBGPConsistency},
		{"E11", experiments.E11AblationDP},
		{"E12", experiments.E12AblationTrees},
		{"E13", experiments.E13AblationRefinement},
		{"E14", experiments.E14EmbeddingCongestion},
		{"E15", experiments.E15DESStability},
		{"E16", experiments.E16AblationFlowRefine},
		{"E17", experiments.E17AblationStrategy},
		{"E18", experiments.E18DynamicRepartition},
		{"E19", experiments.E19EpsSweep},
		{"E20", experiments.E20AblationPruning},
		{"E21", experiments.E21AtScale},
		{"E22", experiments.E22AnytimeLadder},
		{"E23", experiments.E23WarmRestart},
		{"E24", experiments.E24MultiCoreMatrix},
		{"E25", experiments.E25CanonCache},
		{"E26", experiments.E26IncrementalRepartition},
		{"F1", experiments.F1BadSetSplit},
		{"F2", experiments.F2ActiveSets},
	}
	report := jsonReport{
		Schema: schemaVersion, Seed: *seed, Quick: *quick,
		Workers: *workers, Prune: *prune,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		tab := r.run(cfg)
		wall := time.Since(start)
		if *csvOut {
			if err := tab.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "hgpbench:", err)
				os.Exit(1)
			}
		} else {
			fmt.Print(tab.Format())
			fmt.Printf("   (%s in %s)\n\n", r.id, wall.Round(time.Millisecond))
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: tab.ID, Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows,
			Notes: tab.Notes, WallMS: float64(wall.Microseconds()) / 1000,
			Trees: tab.Trees,
		})
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "hgpbench: no experiments matched -only filter")
		os.Exit(2)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
	}
}

// schemaVersion tags the -json document. Consumers (the CI bench jobs,
// recorded baselines like BENCH_PR5.json and BENCH_PR6.json) key on it;
// bump it only when the document shape changes, and record the delta in
// the package comment. hgpbench/2 added num_cpu and per-experiment
// `trees` records.
const schemaVersion = "hgpbench/2"

// jsonReport is the -json output document: the run's configuration plus
// every table it produced, with per-experiment wall-clock. Rows stay
// strings (exactly the cells the text table shows) so the document is
// stable across schema-free float formatting differences.
type jsonReport struct {
	Schema      string           `json:"schema"` // schemaVersion
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick"`
	Workers     int              `json:"workers"`
	Prune       bool             `json:"prune"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID      string                    `json:"id"`
	Title   string                    `json:"title"`
	Columns []string                  `json:"columns"`
	Rows    [][]string                `json:"rows"`
	Notes   string                    `json:"notes,omitempty"`
	WallMS  float64                   `json:"wall_ms"`
	Trees   []experiments.TreeOutcome `json:"trees,omitempty"`
}
