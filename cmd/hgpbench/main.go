// Command hgpbench runs the reproduction's experiment suite (E1–E23,
// F1–F2; see EXPERIMENTS.md) and prints the result tables.
//
// Usage:
//
//	hgpbench [-quick] [-seed N] [-only E5,E6] [-csv] [-workers N]
//	         [-budget 100ms] [-tier baseline]
//	         [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// -workers bounds the solver's concurrency budget (0 = GOMAXPROCS).
// Tables are identical at every worker count: each decomposition tree
// draws from its own sub-seeded RNG stream, so only -seed changes the
// numbers. (That per-seed stream changed when intra-solver parallelism
// landed — tables recorded before then differ for the same seed.)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hierpart/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	seed := flag.Int64("seed", 1, "random seed (tables are reproducible per seed)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E5,F1); empty = all")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	workers := flag.Int("workers", 0, "solver concurrency budget (0 = GOMAXPROCS for the pipeline); tables are identical at every worker count")
	budget := flag.Duration("budget", 0, "per-solve wall-clock budget for the E22 anytime ladder (0 = the default sweep)")
	tier := flag.String("tier", "", "restrict the E22 ladder to one rung: full_dp, capped_dp, or baseline (empty = whole ladder)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hgpbench:", err)
			os.Exit(1)
		}
	}()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, Budget: *budget, Tier: *tier}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	runners := []struct {
		id  string
		run func(experiments.Config) *experiments.Table
	}{
		{"E1", experiments.E1TreeDPOptimality},
		{"E2", experiments.E2CostForms},
		{"E3", experiments.E3ViolationBound},
		{"E4", experiments.E4ApproxRatio},
		{"E5", experiments.E5VsBaselines},
		{"E6", experiments.E6StreamThroughput},
		{"E7", experiments.E7TreeDistortion},
		{"E8", experiments.E8DPScaling},
		{"E9", experiments.E9CMSweep},
		{"E10", experiments.E10KBGPConsistency},
		{"E11", experiments.E11AblationDP},
		{"E12", experiments.E12AblationTrees},
		{"E13", experiments.E13AblationRefinement},
		{"E14", experiments.E14EmbeddingCongestion},
		{"E15", experiments.E15DESStability},
		{"E16", experiments.E16AblationFlowRefine},
		{"E17", experiments.E17AblationStrategy},
		{"E18", experiments.E18DynamicRepartition},
		{"E19", experiments.E19EpsSweep},
		{"E20", experiments.E20AblationPruning},
		{"E21", experiments.E21AtScale},
		{"E22", experiments.E22AnytimeLadder},
		{"E23", experiments.E23WarmRestart},
		{"F1", experiments.F1BadSetSplit},
		{"F2", experiments.F2ActiveSets},
	}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		tab := r.run(cfg)
		if *csvOut {
			if err := tab.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "hgpbench:", err)
				os.Exit(1)
			}
		} else {
			fmt.Print(tab.Format())
			fmt.Printf("   (%s in %s)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "hgpbench: no experiments matched -only filter")
		os.Exit(2)
	}
}
