package main

import (
	"encoding/json"
	"testing"

	"hierpart/internal/experiments"
)

// The -json document is a contract: CI's bench jobs and the recorded
// baselines (BENCH_PR5.json was hgpbench/1, BENCH_PR6.json is
// hgpbench/2) key on the schema tag. This test fails when the tag or
// the hgpbench/2 field set drifts without a deliberate bump.
func TestJSONSchemaVersion(t *testing.T) {
	if schemaVersion != "hgpbench/2" {
		t.Fatalf("schemaVersion = %q; bumping it is a consumer-visible change — "+
			"update this test, the package comment, and the CI bench jobs together", schemaVersion)
	}
	report := jsonReport{
		Schema: schemaVersion, Seed: 1, GOMAXPROCS: 4, NumCPU: 4,
		Experiments: []jsonExperiment{{
			ID: "E24", Title: "t", Columns: []string{"n"}, Rows: [][]string{{"64"}},
			WallMS: 1.5,
			Trees: []experiments.TreeOutcome{
				{Config: "wW-on-racing", N: 64, Tree: 0, Outcome: "pruned", WallMS: 0.5, AbortFrac: 0.25},
			},
		}},
	}
	buf, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != "hgpbench/2" {
		t.Fatalf("schema field = %v", doc["schema"])
	}
	if _, ok := doc["num_cpu"]; !ok {
		t.Fatalf("hgpbench/2 document missing num_cpu: %s", buf)
	}
	exps := doc["experiments"].([]interface{})
	exp := exps[0].(map[string]interface{})
	trees, ok := exp["trees"].([]interface{})
	if !ok || len(trees) != 1 {
		t.Fatalf("hgpbench/2 experiment missing trees records: %s", buf)
	}
	rec := trees[0].(map[string]interface{})
	for _, key := range []string{"config", "n", "tree", "outcome", "wall_ms", "abort_frac"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("tree record missing %q: %v", key, rec)
		}
	}
	// An experiment with no portfolio keeps the document lean: the
	// `trees` key must be omitted, not emitted as null/[].
	plain, err := json.Marshal(jsonExperiment{ID: "E1", Columns: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	var pd map[string]interface{}
	if err := json.Unmarshal(plain, &pd); err != nil {
		t.Fatal(err)
	}
	if _, present := pd["trees"]; present {
		t.Fatalf("empty trees must be omitted: %s", plain)
	}
}
