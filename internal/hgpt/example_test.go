package hgpt_test

import (
	"fmt"

	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/tree"
)

// HGPT on a star of four half-demand jobs over a 2×2 hierarchy: the
// whole job set fits one socket (total demand 2 = CP(1)), so only the
// core level splits — and the DP cuts the two cheap edges, not the
// expensive ones.
func ExampleSolver_Solve() {
	t := tree.New()
	weights := []float64{1, 1, 8, 8} // two cheap leaves, two expensive
	for _, w := range weights {
		l := t.AddChild(t.Root(), w)
		t.SetDemand(l, 0.5)
	}
	h := hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})
	sol, err := hgpt.Solver{Eps: 0.5}.Solve(t, h)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("relaxed optimum (DP): %.0f\n", sol.DPCost)
	fmt.Printf("strict cost after repacking: %.0f\n", sol.Cost)
	fmt.Println("level-1 sets:", len(sol.Strict.Levels[1]))
	fmt.Println("level-2 sets:", len(sol.Strict.Levels[2]))
	// Output:
	// relaxed optimum (DP): 4
	// strict cost after repacking: 4
	// level-1 sets: 1
	// level-2 sets: 2
}
