package hgpt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierpart/internal/hierarchy"
	"hierpart/internal/laminar"
	"hierpart/internal/telemetry"
	"hierpart/internal/tree"
)

// Solver configures the HGPT algorithm.
type Solver struct {
	// Eps is the demand-rounding parameter ε of §3: demands are scaled
	// to integer multiples of ε/n. Smaller values round more finely but
	// enlarge the DP state space as D = Θ(n²/ε). Zero means 0.5.
	Eps float64
	// MaxStates aborts the run with an error when the cumulative DP
	// table size exceeds it — a guard against pathological instances
	// (many distinct demands at small ε on tall hierarchies). Zero means
	// unlimited.
	MaxStates int
	// Workers bounds the number of goroutines the DP scheduler uses to
	// solve sibling subtrees concurrently and to shard large child-table
	// cross-products (see scheduler.go). Zero or 1 means sequential.
	// Results are bit-identical at every worker count: equal-cost merge
	// candidates resolve by the canonical entryLess order, which is
	// independent of evaluation order.
	Workers int

	// The two fields below disable the corrections this reproduction
	// had to make to the paper's literal text (DESIGN.md §5.0). They
	// exist ONLY for the ablation experiment E11 — production callers
	// must leave them false.

	// AblateLiteralEq4 charges cut edges exactly as Equation (4) prints
	// them: once, for the closed child-side set — omitting the charge
	// for the boundary of the active region containing v.
	AblateLiteralEq4 bool
	// AblateNoZeroRegions forbids zero-demand mirror regions (the
	// paper's "D = 0 ⇒ no active set" reading), removing the solver's
	// ability to route a set's mirror through leaf-free subtrees.
	AblateNoZeroRegions bool
	// DisablePruning turns off dominance pruning of DP tables (see
	// prune.go). Pruning never changes the optimum — the flag exists for
	// the E20 ablation that measures its effect on state counts.
	DisablePruning bool

	// Bound, when non-nil, is an incumbent cost ceiling: DP entries
	// whose partial objective strictly exceeds its current value are
	// dropped at insertion (ties are kept), because per-level merge
	// increments are never negative — Δ(k) = (cm(k−1)−cm(k))/2 ≥ 0 on a
	// non-increasing cm — so a partial above the bound can only grow.
	// When filtering under a finite ceiling empties a table (or leaves
	// no valid root signature), the solve aborts with a *BoundError
	// wrapping ErrBoundExceeded instead of finishing a tree that cannot
	// beat the incumbent.
	//
	// The bound is RE-READ at the run's existing poll points — once per
	// table, once per sharded node — so a shared bound tightened by a
	// concurrent tree (internal/hgp's parallel portfolio) bites mid-DP.
	// Because CostBound is monotone non-increasing and children complete
	// before their parents, a run that completes is still bit-identical
	// to its unbounded solve at every worker count (see CostBound); only
	// whether it completes — and the surviving States count — can depend
	// on when the bound tightened. A bound that stays +Inf for the whole
	// run is bit-identical to no bound.
	Bound *CostBound

	// Reuse, when non-nil, serves per-node tables cached from a previous
	// solve by structural subtree hash and repopulates the cache with
	// this solve's tables on success — the incremental repartitioning
	// path (see TableCache). Reuse composes with Bound: a cached table
	// is the full unbounded table for its subtree (a superset of what a
	// bounded run would build), so serving it under a bound is sound —
	// superfluous entries are filtered at the parent merges, and the
	// completed-run bit-identity invariant is unchanged. Repopulation,
	// however, only happens on unbounded runs: bound-filtered tables are
	// schedule-dependent subsets and must never enter the cache.
	Reuse *TableCache
}

// Solution is the result of solving HGPT on a tree.
type Solution struct {
	// Assignment maps every leaf of the input tree to a hierarchy leaf.
	Assignment map[int]int
	// Relaxed is the optimal RHGPT family found by the DP (leaf IDs are
	// input-tree leaves; no H-nodes, refinement width unbounded).
	Relaxed *laminar.Family
	// Strict is the repacked HGPT family (Theorem 5): refinement width
	// ≤ DEG(j) and H-nodes assigned at every level.
	Strict *laminar.Family
	// DPCost is the optimal relaxed cost computed by the DP in scaled
	// capacity space.
	DPCost float64
	// Cost is the Equation (3) cost of the final strict family on the
	// input tree (never more than DPCost: repacking merges only).
	Cost float64
	// Unit is the demand scaling unit ε/n.
	Unit float64
	// ScaledTotal is D, the total scaled demand, which drives DP size.
	ScaledTotal int
	// States is the total number of DP table entries created (experiment
	// E8 measures how it scales with n, D, and h). Tables served from a
	// Solver.Reuse cache count their entries exactly as a fresh run
	// would, so States — and MaxStates trips — are identical warm or
	// cold.
	States int
	// TablesReused and TablesComputed partition the binarized tree's
	// nodes by whether their table came from the Solver.Reuse cache or
	// was computed this run (both zero when Reuse is nil).
	TablesReused   int
	TablesComputed int
}

type entry struct {
	cost   float64
	s1, s2 uint64
	j1, j2 int8
	kind   byte // 0 = leaf, 1 = one child, 2 = two children
}

// entryLess is the canonical order among equal-cost entries.
func entryLess(a, b entry) bool {
	if a.s1 != b.s1 {
		return a.s1 < b.s1
	}
	if a.s2 != b.s2 {
		return a.s2 < b.s2
	}
	if a.j1 != b.j1 {
		return a.j1 < b.j1
	}
	return a.j2 < b.j2
}

// sigCodec packs a signature (levels 1..h) into a uint64 key.
type sigCodec struct {
	h    int
	bits uint
	mask uint64
}

func newSigCodec(h, maxVal int) (sigCodec, error) {
	bits := uint(1)
	for 1<<bits <= maxVal {
		bits++
	}
	if uint(h)*bits > 64 {
		return sigCodec{}, fmt.Errorf("hgpt: signature space too large: %d levels × %d bits > 64 (reduce n or increase ε)", h, bits)
	}
	return sigCodec{h: h, bits: bits, mask: 1<<bits - 1}, nil
}

// encode packs sig[1..h] (index 0 ignored).
func (c sigCodec) encode(sig []int) uint64 {
	var k uint64
	for j := 1; j <= c.h; j++ {
		k = k<<c.bits | uint64(sig[j])
	}
	return k
}

// decode unpacks into out[1..h]; out must have length h+1.
func (c sigCodec) decode(k uint64, out []int) {
	for j := c.h; j >= 1; j-- {
		out[j] = int(k & c.mask)
		k >>= c.bits
	}
	out[0] = 0
}

// Solve partitions the leaves of t across the leaves of H. The tree may
// have arbitrary fanout (it is binarized internally with infinite-weight
// dummy edges, which no finite-cost solution cuts) and leaf demands in
// (0, 1]. It returns an error when a single leaf demand exceeds leaf
// capacity, or when the scaled state space cannot be encoded.
// Cancellable callers should use SolveContext.
func (s Solver) Solve(t *tree.Tree, H *hierarchy.Hierarchy) (*Solution, error) {
	return s.SolveContext(context.Background(), t, H)
}

// SolveContext is Solve with cancellation: the DP stops at the next
// table completion (or shard completion, under the concurrent
// scheduler) once ctx is done and returns the context's error, so a
// dead client or an expired deadline stops burning the worker budget
// mid-solve. On success the DP duration is recorded in
// telemetry.Default under phase_dp_seconds.
func (s Solver) SolveContext(ctx context.Context, t *tree.Tree, H *hierarchy.Hierarchy) (*Solution, error) {
	start := time.Now()
	dp, origOf, err := s.newRun(t, H)
	if err != nil {
		return nil, err
	}
	// Reuse lookups are sound under a bound: a cached table is the full
	// unbounded (dominance-pruned) table for its subtree, a superset of
	// what a bounded run would build, and superfluous entries are
	// filtered at the parent merges by the same effBound logic. Only
	// repopulation stays gated to unbounded runs (below).
	if s.Reuse != nil {
		dp.attachReuse(s.Reuse, !s.DisablePruning)
	}
	tabs, states, err := dp.runTables(ctx, s.Workers, s.MaxStates, !s.DisablePruning)
	if err != nil {
		return nil, err
	}
	bt, h, codec := dp.bt, dp.h, dp.codec

	root := bt.Root()
	bestKey, bestCost := uint64(0), math.Inf(1)
	found := false
	sig := make([]int, h+1)
	for k, e := range tabs[root] {
		// A zero-demand region at the root would be a mirror piece that
		// belongs to no set: such signatures cannot be completed.
		codec.decode(k, sig)
		valid := true
		for j := 1; j <= h; j++ {
			if sig[j] == 1 {
				valid = false
				break
			}
		}
		// Tie-break by key so the chosen solution does not depend on map
		// iteration order (results must be deterministic per seed).
		if valid && (e.cost < bestCost || (e.cost == bestCost && found && k < bestKey)) {
			bestKey, bestCost = k, e.cost
			found = true
		}
	}
	if math.IsInf(bestCost, 1) {
		if !math.IsInf(dp.minApplied(), 1) {
			// A finite ceiling was applied somewhere: every completion was
			// filtered by the incumbent bound (or, corner case, the tree
			// was infeasible to begin with — see ErrBoundExceeded). A
			// bound source that stayed +Inf for the whole run never
			// filtered anything and falls through to the infeasible error.
			return nil, dp.boundErr(bt.N())
		}
		return nil, errors.New("hgpt: no feasible relaxed solution (demand exceeds total capacity)")
	}

	relaxedBT := dp.reconstruct(tabs, bestKey)
	relaxed := relabelFamily(relaxedBT, t, origOf)
	strict := Repack(relaxed, H)
	assignment, err := strict.LeafAssignment()
	if err != nil {
		return nil, err
	}

	telemetry.ObserveDuration("phase_dp_seconds", time.Since(start))
	reused, computed := 0, 0
	if s.Reuse != nil {
		if s.Bound == nil {
			// Bound-filtered tables are schedule-dependent subsets, not
			// pure subtree optima, so only unbounded runs refresh the
			// cache generation; bounded runs consume but never write.
			s.Reuse.repopulate(dp, tabs)
		}
		reused = int(dp.reused.Load())
		computed = bt.N() - reused
	}
	return &Solution{
		Assignment:     assignment,
		Relaxed:        relaxed,
		Strict:         strict,
		DPCost:         bestCost,
		Cost:           FamilyCost(t, H, strict),
		Unit:           dp.unit,
		ScaledTotal:    dp.total,
		States:         states,
		TablesReused:   reused,
		TablesComputed: computed,
	}, nil
}

type dpRun struct {
	bt            *tree.Tree
	h             int
	codec         sigCodec
	capS          []int
	delta         []float64
	du            []int // scaled leaf demand, indexed by binarized node ID
	unit          float64
	total         int
	boundSrc      *CostBound // live incumbent ceiling (nil = unbounded)
	literalEq4    bool       // ablation: Equation (4) verbatim
	noZeroRegions bool       // ablation: forbid zero-demand mirror regions

	// applied tracks (as float bits) the tightest bound value loadBound
	// has returned: the fact an abort proves (optimum > minApplied), and
	// the discriminator between "bound exceeded" and "infeasible" at the
	// root. Atomic because scheduler workers load concurrently.
	applied atomic.Uint64

	// Table-reuse state (see reuse.go): per-node structural hashes, the
	// run identity the hashes are valid under, the previous generation's
	// tables (nil = cold or identity mismatch), and the hit counter.
	// reused is atomic because scheduler workers hit concurrently.
	hashes    []string
	reuseSig  string
	reuseTabs map[string]map[uint64]entry
	reused    atomic.Int64

	// scratch pools the per-merge signature buffers so the DP inner loop
	// allocates nothing per child-signature pair (shared safely by the
	// concurrent scheduler: each borrower holds a distinct buffer).
	scratch sync.Pool
}

type dpScratch struct {
	sig    []int
	parent []int
}

// newRun scales the instance and assembles the immutable DP context
// shared by the sequential walk and the concurrent scheduler. The
// second return value is the binarized→original node map.
func (s Solver) newRun(t *tree.Tree, H *hierarchy.Hierarchy) (*dpRun, []int, error) {
	eps := s.Eps
	if eps == 0 {
		eps = 0.5
	}
	if eps < 0 {
		return nil, nil, errors.New("hgpt: Eps must be positive")
	}
	h := H.Height()

	n := len(t.Leaves())
	if n == 0 {
		return nil, nil, errors.New("hgpt: tree has no leaves")
	}

	bt, origOf := t.Binarize()
	leaves := bt.Leaves()
	unit := eps / float64(n)

	// Scaled integer demands and capacities.
	// The 1e-9 guard keeps exact multiples of the unit exact despite
	// binary floating point (0.7/0.1 = 6.999…), so that demands which
	// are representable round-trip losslessly.
	du := make([]int, bt.N())
	total := 0
	for _, l := range leaves {
		d := int(bt.Demand(l)/unit + 1e-9)
		if d < 1 {
			d = 1
		}
		du[l] = d
		total += d
	}
	capS := make([]int, h+1)
	for j := 1; j <= h; j++ {
		capS[j] = int(H.Cap(j)/unit + 1e-9)
	}
	for _, l := range leaves {
		if du[l] > capS[h] {
			return nil, nil, fmt.Errorf("hgpt: leaf demand %v exceeds leaf capacity after scaling", bt.Demand(l))
		}
	}

	// Per-level encoded values: 0 = no region, 1 = region with demand 0,
	// d+1 = region with demand d. Hence the alphabet tops out at total+1.
	codec, err := newSigCodec(h, total+1)
	if err != nil {
		return nil, nil, err
	}
	delta := make([]float64, h+1)
	for j := 1; j <= h; j++ {
		delta[j] = (H.CM(j-1) - H.CM(j)) / 2
	}

	dp := &dpRun{
		bt: bt, h: h, codec: codec, capS: capS, delta: delta, du: du,
		unit: unit, total: total, boundSrc: s.Bound,
		literalEq4: s.AblateLiteralEq4, noZeroRegions: s.AblateNoZeroRegions,
	}
	// No bound value applied yet: the tracker starts at +Inf and records
	// every live value the run filters under (see loadBound).
	dp.applied.Store(math.Float64bits(math.Inf(1)))
	dp.scratch.New = func() any {
		return &dpScratch{sig: make([]int, h+1), parent: make([]int, h+1)}
	}
	return dp, origOf, nil
}

// putEntry installs e under key, keeping the lexicographic minimum of
// (cost, s1, s2, j1, j2). Equal-cost ties break on the backpointer tuple
// so the table's contents never depend on evaluation order: the whole
// pipeline stays deterministic per seed even when subtrees solve
// concurrently and cross-products are sharded across workers.
func putEntry(out map[uint64]entry, key uint64, e entry) {
	if math.IsInf(e.cost, 1) || math.IsNaN(e.cost) {
		return
	}
	old, ok := out[key]
	if !ok || e.cost < old.cost || (e.cost == old.cost && entryLess(e, old)) {
		out[key] = e
	}
}

// mergeTables folds src into dst under the putEntry rule. Folding the
// per-worker shard tables in any order yields the same dst: putEntry
// realizes a minimum under a strict total order, which is commutative
// and associative.
func mergeTables(dst, src map[uint64]entry) {
	for k, e := range src {
		old, ok := dst[k]
		if !ok || e.cost < old.cost || (e.cost == old.cost && entryLess(e, old)) {
			dst[k] = e
		}
	}
}

// decTab is a DP table decoded into flat parallel slices: the merge
// loops read each child signature once instead of re-decoding it for
// every pair of the cross-product.
type decTab struct {
	keys  []uint64
	costs []float64
	sigs  []int // stride h+1; row i is sigs[i*(h+1) : (i+1)*(h+1)]
	depth []int // region depth per row (see regionDepth)
}

func (d *dpRun) decodeTab(tab map[uint64]entry) *decTab {
	stride := d.h + 1
	t := &decTab{
		keys:  make([]uint64, 0, len(tab)),
		costs: make([]float64, 0, len(tab)),
		sigs:  make([]int, len(tab)*stride),
		depth: make([]int, 0, len(tab)),
	}
	i := 0
	for k, e := range tab {
		t.keys = append(t.keys, k)
		t.costs = append(t.costs, e.cost)
		row := t.sigs[i*stride : (i+1)*stride]
		d.codec.decode(k, row)
		t.depth = append(t.depth, regionDepth(row))
		i++
	}
	return t
}

// regionDepth returns the deepest level at which the signature has a
// region. Regions always occupy a level prefix 1..m: leaves open a
// region at every level, and a merge's level-k region exists iff a
// child region merges through (k ≤ jᵢ, itself prefix-bounded by the
// child's own depth) or a spontaneous region covers it (k ≤ sp) — all
// unions of prefixes. The merge loops exploit this: cut thresholds
// j > m are indistinguishable from j = m (no region to keep or cut at
// the extra levels), and entryLess already canonicalizes equal-cost
// winners to the smallest threshold, so iterating j ≤ m (and skipping
// sp values whose spontaneous prefix is swallowed by the merged one)
// drops only candidates that lose — or exactly tie with identical
// backpointers — leaving every table bit-identical.
func regionDepth(sig []int) int {
	m := len(sig) - 1
	for m >= 1 && sig[m] == 0 {
		m--
	}
	return m
}

// table computes node v's DP table. effBound is the entry ceiling for
// this node: the incumbent bound minus an admissible lower bound on the
// cost every completion must still pay in subtrees disjoint from v
// (futureMin; +Inf ceiling when unbounded). Tightening the ceiling per
// node never changes the solve's outcome — see the invariant note on
// futureMin in scheduler.go.
func (d *dpRun) table(v int, tabs []map[uint64]entry, effBound float64) map[uint64]entry {
	h := d.h
	if d.bt.IsLeaf(v) {
		sc := d.scratch.Get().(*dpScratch)
		sig := sc.sig
		sig[0] = 0
		for j := 1; j <= h; j++ {
			sig[j] = d.du[v] + 1 // region carrying the leaf's demand
		}
		out := map[uint64]entry{d.codec.encode(sig): {kind: 0}}
		d.scratch.Put(sc)
		return out
	}

	kids := d.bt.Children(v)
	if len(kids) == 1 {
		return d.oneChildTable(kids[0], tabs[kids[0]], effBound)
	}
	if len(kids) != 2 {
		panic("hgpt: tree not binarized")
	}
	c1, c2 := kids[0], kids[1]
	t1, t2 := d.decodeTab(tabs[c1]), d.decodeTab(tabs[c2])
	out := make(map[uint64]entry, presize(len(t1.keys), len(t2.keys)))
	d.crossInto(out, t1, d.bt.EdgeWeight(c1), 0, len(t1.keys), t2, d.bt.EdgeWeight(c2), effBound)
	return out
}

// presize estimates a two-child table's cardinality for map pre-sizing:
// merged tables usually land near the larger child's size, not near the
// pair count.
func presize(n1, n2 int) int {
	if n2 > n1 {
		n1 = n2
	}
	return 2 * n1
}

// oneChildTable merges a single child table upward (c1 is v's only
// child, tab its table).
func (d *dpRun) oneChildTable(c1 int, tab map[uint64]entry, effBound float64) map[uint64]entry {
	h := d.h
	w1 := d.bt.EdgeWeight(c1)
	out := make(map[uint64]entry, 2*len(tab))
	sc := d.scratch.Get().(*dpScratch)
	s1, parent := sc.sig, sc.parent
	maxSp := h
	if d.noZeroRegions {
		maxSp = 0
	}
	for k1, e1 := range tab {
		d.codec.decode(k1, s1)
		// j1 = deepest level at which the child edge is kept;
		// sp = deepest level with a spontaneously opened region at v.
		// Thresholds past the child's region depth are equivalent to the
		// depth itself, and spontaneous prefixes swallowed by the kept
		// child region (sp ≤ j1) duplicate sp = 0 — see regionDepth.
		m1 := regionDepth(s1)
		for j1 := 0; j1 <= m1; j1++ {
			for sp := 0; sp <= maxSp; {
				if j1 == m1 && sp == 0 {
					// Keeping the whole region prefix with no spontaneous
					// region leaves the signature unchanged at zero cost
					// (every level either merges or stays empty) — reuse
					// the child's key instead of re-encoding.
					putEntry(out, k1, entry{cost: e1.cost, s1: k1, j1: int8(m1), kind: 1})
					sp = j1 + 1
					continue
				}
				cost, ok := d.mergeLevel(parent, w1, s1, j1, sp, nil, 0, 0)
				// Partials strictly above the node's ceiling are dropped
				// (ties kept): merge increments are never negative and the
				// futureMin term is admissible, so they cannot complete
				// under the incumbent. +Inf ceiling keeps all.
				if ok && e1.cost+cost <= effBound {
					putEntry(out, d.codec.encode(parent), entry{
						cost: e1.cost + cost,
						s1:   k1, j1: int8(j1), kind: 1,
					})
				}
				if sp == 0 {
					sp = j1 + 1
				} else {
					sp++
				}
			}
		}
	}
	d.scratch.Put(sc)
	return out
}

// crossInto merges rows [lo, hi) of child table t1 against all of t2,
// writing parent entries into out. The scheduler shards large nodes by
// splitting the [0, len(t1.keys)) row range across workers; the row
// partition never changes the merged result because putEntry keeps a
// total-order minimum per key.
func (d *dpRun) crossInto(out map[uint64]entry, t1 *decTab, w1 float64, lo, hi int, t2 *decTab, w2 float64, effBound float64) {
	h := d.h
	stride := h + 1
	maxSp := h
	if d.noZeroRegions {
		maxSp = 0
	}
	sc := d.scratch.Get().(*dpScratch)
	parent := sc.parent
	for i1 := lo; i1 < hi; i1++ {
		s1 := t1.sigs[i1*stride : (i1+1)*stride]
		k1, c1 := t1.keys[i1], t1.costs[i1]
		m1 := t1.depth[i1]
		for i2 := range t2.keys {
			s2 := t2.sigs[i2*stride : (i2+1)*stride]
			base := c1 + t2.costs[i2]
			k2 := t2.keys[i2]
			m2 := t2.depth[i2]
			// Cut thresholds past each child's region depth duplicate the
			// depth itself, and spontaneous prefixes swallowed by the kept
			// child regions (sp ≤ max(j1, j2)) duplicate sp = 0 — see
			// regionDepth. Skipping them changes nothing in the tables.
			for j1 := 0; j1 <= m1; j1++ {
				for j2 := 0; j2 <= m2; j2++ {
					p := j1
					if j2 > p {
						p = j2
					}
					for sp := 0; sp <= maxSp; {
						cost, ok := d.mergeLevel(parent, w1, s1, j1, sp, s2, w2, j2)
						// Ceiling filter mirrors oneChildTable: drop partials
						// strictly above the node's ceiling, keep ties.
						if ok && base+cost <= effBound {
							putEntry(out, d.codec.encode(parent), entry{
								cost: base + cost,
								s1:   k1, s2: k2, j1: int8(j1), j2: int8(j2), kind: 2,
							})
						}
						if sp == 0 {
							sp = p + 1
						} else {
							sp++
						}
					}
				}
			}
		}
	}
	d.scratch.Put(sc)
}

// mergeLevel derives the parent signature for the child states s1 (and
// s2 when non-nil) under cut thresholds j1, j2 and spontaneous-region
// depth sp, writing it into parent and returning the boundary cost. It
// returns ok=false when the combination is invalid: a zero-demand region
// cannot be cut off (its mirror component would contain no member leaf)
// and merged demands must respect the scaled capacities.
//
// Per-level charging: a child edge carries no charge at level k only
// when the child's region merges through it (k ≤ jᵢ and a region is
// present below). Otherwise it is charged Δ(k)·w once if it closes a
// demand-carrying child set (boundary of the closed mirror) and once
// more if the parent has a level-k region (boundary of the region
// containing v) — Δ(k) = (cm(k−1)−cm(k))/2 being the per-side share of
// the Equation (3) objective.
func (d *dpRun) mergeLevel(parent []int, w1 float64, s1 []int, j1, sp int, s2 []int, w2 float64, j2 int) (float64, bool) {
	var cost float64
	for k := 1; k <= d.h; k++ {
		x1 := s1[k]
		kept1 := k <= j1
		if !kept1 && x1 == 1 {
			return 0, false // cutting off a zero-demand region
		}
		merged1 := kept1 && x1 >= 1
		flag := merged1 || k <= sp
		pd := 0
		if merged1 {
			pd = x1 - 1
		}

		var x2 int
		var merged2 bool
		if s2 != nil {
			x2 = s2[k]
			kept2 := k <= j2
			if !kept2 && x2 == 1 {
				return 0, false
			}
			merged2 = kept2 && x2 >= 1
			flag = flag || merged2
			if merged2 {
				pd += x2 - 1
			}
		}

		if pd > d.capS[k] {
			return 0, false
		}
		if flag {
			parent[k] = pd + 1
		} else {
			parent[k] = 0
		}

		if dl := d.delta[k]; dl != 0 {
			if !merged1 {
				if !kept1 && x1 > 1 {
					cost += w1 * dl // closed child set boundary
				}
				if flag && !d.literalEq4 {
					cost += w1 * dl // parent region boundary
				}
			}
			if s2 != nil && !merged2 {
				if k > j2 && x2 > 1 {
					cost += w2 * dl
				}
				if flag && !d.literalEq4 {
					cost += w2 * dl
				}
			}
		}
	}
	parent[0] = 0
	return cost, true
}

// reconstruct walks the backpointers from the root's best signature and
// emits the laminar family of the optimal relaxed solution, with leaf
// IDs of the binarized tree.
func (d *dpRun) reconstruct(tabs []map[uint64]entry, rootKey uint64) *laminar.Family {
	fam := laminar.NewFamily(d.h)
	close := func(level int, set []int) {
		if len(set) == 0 {
			return
		}
		fam.Add(level, laminar.NewSet(set, 0)) // demand filled during relabel
	}

	var rec func(v int, key uint64) [][]int
	rec = func(v int, key uint64) [][]int {
		e, ok := tabs[v][key]
		if !ok {
			panic("hgpt: broken backpointer")
		}
		active := make([][]int, d.h+1)
		switch e.kind {
		case 0:
			for j := 1; j <= d.h; j++ {
				active[j] = []int{v}
			}
		case 1:
			c1 := d.bt.Children(v)[0]
			a1 := rec(c1, e.s1)
			for k := 1; k <= d.h; k++ {
				if k > int(e.j1) {
					close(k, a1[k])
				} else {
					active[k] = a1[k]
				}
			}
		case 2:
			kids := d.bt.Children(v)
			a1 := rec(kids[0], e.s1)
			a2 := rec(kids[1], e.s2)
			j1, j2 := int(e.j1), int(e.j2)
			for k := 1; k <= d.h; k++ {
				if k > j1 {
					close(k, a1[k])
				}
				if k > j2 {
					close(k, a2[k])
				}
				switch {
				case k <= j1 && k <= j2:
					active[k] = append(append([]int{}, a1[k]...), a2[k]...)
				case k <= j1:
					active[k] = a1[k]
				case k <= j2:
					active[k] = a2[k]
				}
			}
		}
		return active
	}

	rootActive := rec(d.bt.Root(), rootKey)
	for k := 1; k <= d.h; k++ {
		close(k, rootActive[k])
	}
	all := d.bt.Leaves()
	fam.Levels[0] = []*laminar.Set{laminar.NewSet(all, 0)}
	return fam
}

// relabelFamily converts a family over binarized-tree leaves into one
// over original-tree leaves and fills in true demands.
func relabelFamily(fam *laminar.Family, t *tree.Tree, origOf []int) *laminar.Family {
	out := laminar.NewFamily(fam.Height())
	for j, level := range fam.Levels {
		for _, s := range level {
			leaves := make([]int, len(s.Leaves))
			var dem float64
			for i, l := range s.Leaves {
				leaves[i] = origOf[l]
				dem += t.Demand(origOf[l])
			}
			out.Add(j, laminar.NewSet(leaves, dem))
		}
	}
	return out
}

// FamilyCost evaluates the Equation (3) objective of a solution family
// on tree t: for every level j ≥ 1 and every Level-(j) set S, the
// minimum tree cut separating S contributes
// w(CUT_T(S)) · (cm(j−1) − cm(j)) / 2.
func FamilyCost(t *tree.Tree, H *hierarchy.Hierarchy, fam *laminar.Family) float64 {
	var c float64
	for j := 1; j <= H.Height(); j++ {
		delta := (H.CM(j-1) - H.CM(j)) / 2
		if delta == 0 {
			continue
		}
		for _, s := range fam.Levels[j] {
			in := make(map[int]bool, len(s.Leaves))
			for _, l := range s.Leaves {
				in[l] = true
			}
			c += t.CutLeafSetOf(in).Weight * delta
		}
	}
	return c
}

// AssignmentFamily builds the mirror family of a leaf placement
// (Lemma 3): the Level-(j) sets group leaves by the Level-(j) ancestor
// of their assigned hierarchy leaf.
func AssignmentFamily(t *tree.Tree, H *hierarchy.Hierarchy, assign map[int]int) *laminar.Family {
	fam := laminar.NewFamily(H.Height())
	for j := 0; j <= H.Height(); j++ {
		groups := map[int][]int{}
		for leaf, hl := range assign {
			a := H.AncestorAt(hl, j)
			groups[a] = append(groups[a], leaf)
		}
		idxs := make([]int, 0, len(groups))
		for a := range groups {
			idxs = append(idxs, a)
		}
		sort.Ints(idxs)
		for _, a := range idxs {
			var dem float64
			for _, l := range groups[a] {
				dem += t.Demand(l)
			}
			set := laminar.NewSet(groups[a], dem)
			set.HNode = a
			fam.Add(j, set)
		}
	}
	return fam
}

// AssignmentCost is the HGPT objective of a leaf placement: the
// Equation (3) cost of its mirror family.
func AssignmentCost(t *tree.Tree, H *hierarchy.Hierarchy, assign map[int]int) float64 {
	return FamilyCost(t, H, AssignmentFamily(t, H, assign))
}
