package hgpt

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/hierarchy"
)

// TestSolveWorkersBitIdentical: the concurrent scheduler must reproduce
// the sequential solver bit for bit — costs, state counts, assignments,
// and both families — at every worker count, across tree shapes and
// hierarchies. Sharding is forced down to tiny tables so the
// cross-product merge path is exercised even on fuzz-sized instances.
func TestSolveWorkersBitIdentical(t *testing.T) {
	old := shardMinPairs
	shardMinPairs = 1
	defer func() { shardMinPairs = old }()

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		tr := fuzzTree(rng, 8)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		base, err := Solver{Eps: 0.5, Workers: 1}.Solve(tr, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range []int{2, 4, 8} {
			got, err := Solver{Eps: 0.5, Workers: w}.Solve(tr, h)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			if got.DPCost != base.DPCost || got.Cost != base.Cost ||
				got.States != base.States || got.Unit != base.Unit ||
				got.ScaledTotal != base.ScaledTotal {
				t.Fatalf("trial %d workers %d: scalars differ: %+v vs %+v", trial, w, got, base)
			}
			if !reflect.DeepEqual(got.Assignment, base.Assignment) {
				t.Fatalf("trial %d workers %d: assignment differs", trial, w)
			}
			if !reflect.DeepEqual(got.Relaxed, base.Relaxed) {
				t.Fatalf("trial %d workers %d: relaxed family differs", trial, w)
			}
			if !reflect.DeepEqual(got.Strict, base.Strict) {
				t.Fatalf("trial %d workers %d: strict family differs", trial, w)
			}
		}
	}
}

// TestShardedCrossMatchesSequential fuzzes the sharded cross-product
// merge directly against the sequential per-node tables: for random
// instances, runTables with forced sharding must produce byte-identical
// tables (same keys, same entries, same backpointers) at every node.
func TestShardedCrossMatchesSequential(t *testing.T) {
	old := shardMinPairs
	shardMinPairs = 1
	defer func() { shardMinPairs = old }()

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		tr := fuzzTree(rng, 10)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		s := Solver{Eps: 0.5}
		dpSeq, _, err := s.newRun(tr, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Pruning off so every merge candidate survives into the
		// comparison, not just the Pareto frontier.
		seqTabs, seqStates, err := dpSeq.runTables(context.Background(), 1, 0, false)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range []int{2, 3, 8} {
			dpPar, _, err := s.newRun(tr, h)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			parTabs, parStates, err := dpPar.runTables(context.Background(), w, 0, false)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			if seqStates != parStates {
				t.Fatalf("trial %d workers %d: states %d vs %d", trial, w, parStates, seqStates)
			}
			for v := range seqTabs {
				if !reflect.DeepEqual(parTabs[v], seqTabs[v]) {
					t.Fatalf("trial %d workers %d: table at node %d differs:\npar %v\nseq %v",
						trial, w, v, parTabs[v], seqTabs[v])
				}
			}
		}
	}
}

// exhaustiveTable is a reference merge that enumerates the FULL
// (j1, j2, sp) combo space — no regionDepth reduction, no fast paths.
// The production loops skip combinations proven equivalent to a
// retained one (cut thresholds past the region depth, spontaneous
// prefixes swallowed by kept child regions); this oracle pins that
// proof: both must build bit-identical tables.
func exhaustiveTable(d *dpRun, v int, tabs []map[uint64]entry) map[uint64]entry {
	h := d.h
	if d.bt.IsLeaf(v) {
		return d.table(v, tabs, d.loadBound())
	}
	maxSp := h
	if d.noZeroRegions {
		maxSp = 0
	}
	parent := make([]int, h+1)
	out := map[uint64]entry{}
	kids := d.bt.Children(v)
	if len(kids) == 1 {
		c1 := kids[0]
		w1 := d.bt.EdgeWeight(c1)
		s1 := make([]int, h+1)
		for k1, e1 := range tabs[c1] {
			d.codec.decode(k1, s1)
			for j1 := 0; j1 <= h; j1++ {
				for sp := 0; sp <= maxSp; sp++ {
					cost, ok := d.mergeLevel(parent, w1, s1, j1, sp, nil, 0, 0)
					if !ok {
						continue
					}
					putEntry(out, d.codec.encode(parent), entry{
						cost: e1.cost + cost, s1: k1, j1: int8(j1), kind: 1,
					})
				}
			}
		}
		return out
	}
	c1, c2 := kids[0], kids[1]
	w1, w2 := d.bt.EdgeWeight(c1), d.bt.EdgeWeight(c2)
	s1, s2 := make([]int, h+1), make([]int, h+1)
	for k1, e1 := range tabs[c1] {
		d.codec.decode(k1, s1)
		for k2, e2 := range tabs[c2] {
			d.codec.decode(k2, s2)
			for j1 := 0; j1 <= h; j1++ {
				for j2 := 0; j2 <= h; j2++ {
					for sp := 0; sp <= maxSp; sp++ {
						cost, ok := d.mergeLevel(parent, w1, s1, j1, sp, s2, w2, j2)
						if !ok {
							continue
						}
						putEntry(out, d.codec.encode(parent), entry{
							cost: e1.cost + e2.cost + cost,
							s1:   k1, s2: k2, j1: int8(j1), j2: int8(j2), kind: 2,
						})
					}
				}
			}
		}
	}
	return out
}

// TestReducedMergeMatchesExhaustive fuzzes the production merge loops
// (region-depth-capped thresholds, deduplicated spontaneous depths,
// unchanged-signature fast path) against the exhaustive reference at
// every node of every instance, with pruning off so full tables are
// compared. Run across the ablation flags too, since they change which
// combos are legal.
func TestReducedMergeMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		tr := fuzzTree(rng, 9)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		for _, s := range []Solver{
			{Eps: 0.5},
			{Eps: 0.5, AblateNoZeroRegions: true},
			{Eps: 0.5, AblateLiteralEq4: true},
		} {
			d, _, err := s.newRun(tr, h)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got, _, err := d.runTables(context.Background(), 1, 0, false)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			dRef, _, err := s.newRun(tr, h)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := make([]map[uint64]entry, dRef.bt.N())
			for _, v := range dRef.bt.PostOrder() {
				want[v] = exhaustiveTable(dRef, v, want)
			}
			for v := range want {
				if !reflect.DeepEqual(got[v], want[v]) {
					t.Fatalf("trial %d solver %+v: node %d table differs from exhaustive reference:\ngot  %v\nwant %v",
						trial, s, v, got[v], want[v])
				}
			}
		}
	}
}

// TestWorkersMaxStatesGuard: the budget guard trips under the concurrent
// scheduler too, and an over-budget instance errors at every worker
// count.
func TestWorkersMaxStatesGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := gen.RandomTree(rng, 40, 5, 0.05, 0.95)
	h := hierarchy.MustNew([]int{4, 2}, []float64{5, 2, 0})
	for _, w := range []int{1, 2, 4, 8} {
		if _, err := (Solver{Eps: 0.25, MaxStates: 100, Workers: w}).Solve(tr, h); err == nil {
			t.Fatalf("workers %d: tiny state budget must trip", w)
		}
	}
}
