package hgpt

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hierpart/internal/faultinject"
)

// Concurrent DP scheduling. The binarized tree's tables form a
// dependency DAG (each node needs only its children's tables), so the
// post-order walk of the sequential solver over-serializes: sibling
// subtrees are independent. runTables replaces the walk with a
// dependency-counting scheduler — every node carries a countdown of
// unfinished children, leaves start ready, and a node is enqueued the
// moment its last child completes. On top of that, the cross-product
// merge at a large two-child node (the O(|tab(c1)|·|tab(c2)|·h²) hot
// spot) is sharded by rows of the first child's table into per-worker
// partial tables, folded back together with mergeTables.
//
// Determinism: a table's content is the per-key minimum of merge
// candidates under the strict total order (cost, s1, s2, j1, j2), and
// both sibling interleaving and row sharding only change the order in
// which candidates are examined — never the candidate set. Results are
// therefore bit-identical at every worker count (asserted by
// TestSolveWorkersBitIdentical and FuzzShardedCross-style batteries).

// shardMinPairs is the |tab(c1)|·|tab(c2)| pair count above which a
// two-child merge is sharded across workers; below it the shard
// bookkeeping costs more than the merge. Variable only so tests can
// force sharding on tiny tables.
var shardMinPairs = 2048

// runTables computes the per-node DP tables of the binarized tree with
// up to `workers` goroutines, returning the tables and the total state
// count. workers ≤ 1 runs the plain sequential post-order walk.
// Cancellation is polled once per completed table (and per shard under
// the scheduler): the granularity of one node's merge.
func (d *dpRun) runTables(ctx context.Context, workers, maxStates int, pruneOn bool) ([]map[uint64]entry, int, error) {
	if workers <= 1 {
		tabs := make([]map[uint64]entry, d.bt.N())
		states := 0
		// futureMin bookkeeping (see the invariant note below): the sum of
		// minimum entry costs over completed-but-unmerged tables, and the
		// per-node minima needed to exclude a node's own children from its
		// snapshot. Only maintained when a bound source is attached.
		var pendSum float64
		var mins []float64
		if d.hasBound() {
			mins = make([]float64, d.bt.N())
		}
		done := 0
		for _, v := range d.bt.PostOrder() {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			// Warm-cache hit: the previous generation's table is served
			// verbatim (already pruned; never mutated). Under a bound the
			// futureMin bookkeeping still runs: a reused table is the full
			// unbounded table for its subtree, so its minimum is the same
			// admissible lower bound a fresh computation would yield.
			if tab, ok := d.reuseLookup(v); ok {
				tabs[v] = tab
				if mins != nil {
					m := tabMinCost(tab)
					childSum := 0.0
					for _, c := range d.bt.Children(v) {
						childSum += mins[c]
					}
					mins[v] = m
					pendSum += m - childSum
				}
				done++
				states += len(tab)
				if maxStates > 0 && states > maxStates {
					return nil, 0, budgetErr(states, maxStates)
				}
				continue
			}
			// Live bound: re-read the incumbent once per table, so a bound
			// shared with concurrent trees bites from the next table on.
			effBound := d.loadBound()
			if mins != nil {
				childSum := 0.0
				for _, c := range d.bt.Children(v) {
					childSum += mins[c]
				}
				effBound -= pendSum - childSum
			}
			tab, err := d.safeTable(ctx, v, tabs, effBound)
			if err != nil {
				return nil, 0, err
			}
			tabs[v] = tab
			if pruneOn {
				d.prune(tabs[v])
			}
			if len(tabs[v]) == 0 && !math.IsInf(effBound, 1) {
				return nil, 0, d.boundErr(done)
			}
			if mins != nil {
				m := tabMinCost(tab)
				childSum := 0.0
				for _, c := range d.bt.Children(v) {
					childSum += mins[c]
				}
				mins[v] = m
				pendSum += m - childSum
			}
			done++
			states += len(tabs[v])
			if maxStates > 0 && states > maxStates {
				return nil, 0, budgetErr(states, maxStates)
			}
		}
		return tabs, states, nil
	}

	n := d.bt.N()
	s := &tableSched{
		d:         d,
		ctx:       ctx,
		tabs:      make([]map[uint64]entry, n),
		pending:   make([]int, n),
		remaining: n,
		workers:   workers,
		maxStates: maxStates,
		pruneOn:   pruneOn,
	}
	if d.hasBound() {
		s.mins = make([]float64, n)
	}
	s.cond = sync.NewCond(&s.mu)
	for v := 0; v < n; v++ {
		s.pending[v] = len(d.bt.Children(v))
	}
	s.mu.Lock()
	for v := 0; v < n; v++ {
		if s.pending[v] == 0 {
			s.queue = append(s.queue, s.nodeTask(v))
		}
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.loop()
		}()
	}
	wg.Wait()
	if s.err != nil {
		return nil, 0, s.err
	}
	return s.tabs, s.states, nil
}

func budgetErr(states, maxStates int) error {
	return fmt.Errorf("hgpt: DP state budget exceeded (%d > %d); increase Eps or MaxStates", states, maxStates)
}

// safeTable computes node v's table with the per-table fault hook and
// panic containment: a panic below (a DP bug, or an injected fault)
// becomes an error instead of unwinding the caller — under the
// concurrent scheduler that caller is a worker goroutine whose unwind
// would kill the whole process.
func (d *dpRun) safeTable(ctx context.Context, v int, tabs []map[uint64]entry, effBound float64) (tab map[uint64]entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hgpt: panic computing table for node %d: %v", v, r)
		}
	}()
	if err := faultinject.Fire(ctx, faultinject.HgptTable); err != nil {
		return nil, err
	}
	return d.table(v, tabs, effBound), nil
}

// tableSched is the dependency-counting scheduler state. tabs[v] is
// written exactly once, before pending[parent(v)] is decremented under
// mu, so readers of a ready node's child tables never race.
type tableSched struct {
	d         *dpRun
	ctx       context.Context
	tabs      []map[uint64]entry
	workers   int
	maxStates int
	pruneOn   bool

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []func()
	stop      bool
	err       error
	states    int
	remaining int   // nodes whose table is not yet complete
	pending   []int // unfinished children per node

	// futureMin bookkeeping, maintained only when an incumbent bound
	// source is attached (mins == nil otherwise). pendSum is the sum of
	// minimum entry costs over completed tables not yet replaced by their
	// parent's table; mins[v] is node v's table minimum. When node v's
	// table is built, every table counted in pendSum other than v's own
	// children belongs to a subtree disjoint from v (descendants were
	// replaced when their parents completed), and each such subtree
	// contributes at least its table minimum to any root completion —
	// costs are additive across merged children and merge increments are
	// never negative. So liveBound - (pendSum - Σ childMins) is an
	// admissible per-node entry ceiling: it can only drop entries no
	// ≤-bound completion uses.
	//
	// Invariant (why results stay bit-identical even though snapshots are
	// schedule-dependent): within one node all candidates see the same
	// ceiling, so drops are a cost-suffix of each signature slot — a
	// surviving slot holds exactly its unpruned minimum entry. Any entry
	// on a completion that finishes ≤ bound satisfies cost + futureMin ≤
	// bound under every admissible snapshot, so it survives every
	// schedule; slots that differ across schedules are only those no
	// ≤-bound completion can use. The root table (futureMin = 0) and the
	// winning backpointer chain are therefore schedule-independent, and
	// under a STATIC bound B a tree completes iff its unpruned DP optimum
	// is ≤ B. Only the surviving-state count of bound-affected tables
	// varies with worker count. pendSum is non-decreasing (a parent's
	// minimum is at least the sum of its children's), so a stale snapshot
	// only under-filters — never unsoundly over-filters.
	//
	// LIVE bound extension (concurrent portfolio): the bound value is
	// re-read per table, so different tables of one run may filter under
	// different values b₁ ≥ b₂ ≥ … (CostBound is monotone non-increasing
	// in time). Two facts keep this sound and reducible:
	//
	//   1. Abort ⇒ optimum > min(bᵢ). If the unpruned optimum were ≤
	//      every applied value, the induction above protects its whole
	//      backpointer chain through every filter, so no table on it can
	//      empty and the root keeps a valid completion.
	//   2. Completion ⇒ bit-identical to the unbounded solve. Children
	//      load their ceilings before their ancestors do (a node becomes
	//      ready only after its children complete), so along any
	//      root-to-leaf chain the applied values are non-increasing
	//      upward: b_child ≥ b_root. A surviving root completion c'
	//      passed the root filter, so optimum ≤ c' ≤ b_root ≤ b_v for
	//      every chain node v — the optimum's chain survived every
	//      earlier, looser filter too, and the slot-minimum invariant
	//      makes the winning chain exactly the unbounded one.
	//
	// What the live bound does NOT keep schedule-independent is WHETHER a
	// given run aborts (min(bᵢ) depends on when concurrent trees
	// tightened the shared bound) and the States count. The portfolio's
	// post-hoc reduction (internal/hgp/portfolio.go) restores a
	// deterministic pruned set from fact 1 + the static-bound iff above.
	pendSum float64
	mins    []float64
}

// tabMinCost returns the minimum entry cost of a table (+Inf if empty).
func tabMinCost(tab map[uint64]entry) float64 {
	m := math.Inf(1)
	for _, e := range tab {
		if e.cost < m {
			m = e.cost
		}
	}
	return m
}

// effBoundFor snapshots node v's entry ceiling: the live incumbent
// bound (re-read here, once per node) minus the pending-minima sum,
// excluding v's own children (their costs are already accumulated in
// the entries being filtered).
func (s *tableSched) effBoundFor(v int) float64 {
	b := s.d.loadBound()
	if s.mins == nil {
		return b
	}
	s.mu.Lock()
	childSum := 0.0
	for _, c := range s.d.bt.Children(v) {
		childSum += s.mins[c]
	}
	eff := b - (s.pendSum - childSum)
	s.mu.Unlock()
	return eff
}

func (s *tableSched) loop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stop {
			s.cond.Wait()
		}
		if s.stop {
			s.mu.Unlock()
			return
		}
		// LIFO: freshly enqueued shards of the same node stay cache-hot.
		t := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.mu.Unlock()
		s.run(t)
	}
}

// run executes one task with panic containment: an unwinding worker
// goroutine would kill the process, so a panic (DP bug or injected
// fault) is converted into the run's error and the pool stops.
func (s *tableSched) run(t func()) {
	defer func() {
		if r := recover(); r != nil {
			s.fail(fmt.Errorf("hgpt: panic in DP task: %v", r))
		}
	}()
	t()
}

// fail records err as the run's error (first one wins) and stops the
// pool.
func (s *tableSched) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.stop = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// enqueue appends tasks and wakes enough workers to take them.
func (s *tableSched) enqueue(tasks ...func()) {
	s.mu.Lock()
	s.queue = append(s.queue, tasks...)
	s.mu.Unlock()
	if len(tasks) == 1 {
		s.cond.Signal()
	} else {
		s.cond.Broadcast()
	}
}

// cancelled reports whether the run's context is done, and on the first
// observation records the context error and stops the pool. Every task
// polls it before starting work, so cancellation latency is bounded by
// the longest single node merge (or shard, when sharded).
func (s *tableSched) cancelled() bool {
	err := s.ctx.Err()
	if err == nil {
		return false
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.stop = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// nodeTask computes node v's table, sharding the two-child cross-product
// when it is large enough to amortize the split.
func (s *tableSched) nodeTask(v int) func() {
	return func() {
		if s.cancelled() {
			return
		}
		d := s.d
		// Warm-cache hit: serve the previous generation's table verbatim
		// (already pruned, immutable — complete must not re-prune it).
		if tab, ok := d.reuseLookup(v); ok {
			s.complete(v, tab, math.Inf(1), true)
			return
		}
		kids := d.bt.Children(v)
		if len(kids) == 2 {
			pairs := len(s.tabs[kids[0]]) * len(s.tabs[kids[1]])
			if pairs >= shardMinPairs {
				s.shardNode(v, kids[0], kids[1])
				return
			}
		}
		eff := s.effBoundFor(v)
		tab, err := d.safeTable(s.ctx, v, s.tabs, eff)
		if err != nil {
			s.fail(err)
			return
		}
		s.complete(v, tab, eff, false)
	}
}

// shardNode splits the rows of c1's decoded table into one chunk per
// worker and enqueues a shard task per chunk. Each shard merges its row
// range into a private partial table; the last shard to finish folds
// the partials together and completes the node.
func (s *tableSched) shardNode(v, c1, c2 int) {
	d := s.d
	t1, t2 := d.decodeTab(s.tabs[c1]), d.decodeTab(s.tabs[c2])
	w1, w2 := d.bt.EdgeWeight(c1), d.bt.EdgeWeight(c2)
	// One ceiling snapshot for all shards of v: every candidate of a
	// signature slot must see the same ceiling (see the invariant note).
	effBound := s.effBoundFor(v)
	shards := s.workers
	if shards > len(t1.keys) {
		shards = len(t1.keys)
	}
	partials := make([]map[uint64]entry, shards)
	left := int32(shards)
	chunk := (len(t1.keys) + shards - 1) / shards
	tasks := make([]func(), 0, shards)
	for i := 0; i < shards; i++ {
		i := i
		lo := i * chunk
		hi := lo + chunk
		if hi > len(t1.keys) {
			hi = len(t1.keys)
		}
		tasks = append(tasks, func() {
			if s.cancelled() {
				return
			}
			if err := faultinject.Fire(s.ctx, faultinject.HgptTable); err != nil {
				s.fail(err)
				return
			}
			out := make(map[uint64]entry, presize(hi-lo, len(t2.keys)))
			d.crossInto(out, t1, w1, lo, hi, t2, w2, effBound)
			partials[i] = out
			if atomic.AddInt32(&left, -1) == 0 {
				final := partials[0]
				for _, p := range partials[1:] {
					mergeTables(final, p)
				}
				s.complete(v, final, effBound, false)
			}
		})
	}
	s.enqueue(tasks...)
}

// complete prunes and records node v's finished table, propagates the
// dependency count to the parent, and stops the pool on completion or
// on a tripped state budget. eff is the ceiling v's table was filtered
// under (the effBoundFor snapshot), needed to classify an empty table.
// reused tables arrive already pruned and are shared with the cache —
// they must not be pruned (mutated) again.
func (s *tableSched) complete(v int, tab map[uint64]entry, eff float64, reused bool) {
	if s.pruneOn && !reused {
		s.d.prune(tab)
	}
	// An empty table under a finite ceiling means every partial for this
	// subtree costs strictly more than the incumbent; nothing downstream
	// can recover, so the whole run aborts. An empty table under a +Inf
	// ceiling (bound attached but never tightened) is genuine
	// infeasibility and falls through to the root's no-solution error.
	if len(tab) == 0 && !math.IsInf(eff, 1) {
		s.mu.Lock()
		done := s.d.bt.N() - s.remaining
		s.mu.Unlock()
		s.fail(s.d.boundErr(done))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.tabs[v] = tab
	if s.mins != nil {
		m := tabMinCost(tab)
		childSum := 0.0
		for _, c := range s.d.bt.Children(v) {
			childSum += s.mins[c]
		}
		s.mins[v] = m
		s.pendSum += m - childSum
	}
	s.states += len(tab)
	if s.maxStates > 0 && s.states > s.maxStates {
		s.err = budgetErr(s.states, s.maxStates)
		s.stop = true
		s.cond.Broadcast()
		return
	}
	s.remaining--
	if s.remaining == 0 {
		s.stop = true
		s.cond.Broadcast()
		return
	}
	if p := s.d.bt.Parent(v); p >= 0 {
		s.pending[p]--
		if s.pending[p] == 0 {
			s.queue = append(s.queue, s.nodeTask(p))
			s.cond.Signal()
		}
	}
}
