package hgpt

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// TableCache holds the per-node DP tables of a previous solve, keyed by
// a structural hash of the binarized subtree each table summarizes. A
// subsequent solve over a repaired decomposition tree (Solver.Reuse)
// looks nodes up by the same hash: subtrees untouched by the repair
// hash identically, so their tables are served verbatim and the DP
// re-runs only on the dirty subtrees and their ancestor chains — the
// exact dirty-table set, discovered by content rather than bookkeeping.
//
// Soundness: a node's table is a pure function of (the subtree below it
// including child edge weights, the scaled leaf demands, and the run
// parameters captured in the cache's run signature) whenever no
// incumbent bound filters entries — bounds make tables depend on
// cross-tree timing, so Solver.Reuse is ignored when Solver.Bound is
// set. Reused tables are immutable: the solver never prunes or merges
// into them, and counts their states exactly as a fresh run would, so a
// warm solve is bit-identical to a cold solve over the same tree
// (Solution fields, States, and MaxStates behavior included — the
// oracle battery in reuse_test.go pins this).
//
// A TableCache is owned by one solve at a time (the hgpd session store
// serializes solves per session); it is not safe for concurrent use.
type TableCache struct {
	sig    string
	tables map[string]map[uint64]entry
}

// NewTableCache returns an empty cache.
func NewTableCache() *TableCache { return &TableCache{} }

// Len returns the number of cached tables (0 for an empty or nil cache).
func (c *TableCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.tables)
}

// runIdentity fingerprints every run parameter a table's content depends
// on besides the subtree itself: the hierarchy shape (h, scaled
// capacities, per-level cost increments), the demand scaling unit, the
// signature encoding width, the ablation switches, and whether dominance
// pruning ran. Caches recorded under a different identity are ignored
// wholesale rather than risking a stale hit.
func (d *dpRun) runIdentity(pruneOn bool) string {
	hh := sha256.New()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		hh.Write(buf[:])
	}
	put(uint64(d.h))
	for _, c := range d.capS {
		put(uint64(c))
	}
	for _, dl := range d.delta {
		put(math.Float64bits(dl))
	}
	put(math.Float64bits(d.unit))
	put(uint64(d.codec.bits))
	flags := uint64(0)
	if d.literalEq4 {
		flags |= 1
	}
	if d.noZeroRegions {
		flags |= 2
	}
	if pruneOn {
		flags |= 4
	}
	put(flags)
	return string(hh.Sum(nil))
}

// subtreeHashes computes, bottom-up, a structural hash per binarized
// node: leaves hash their scaled demand, internal nodes fold each child's
// hash with its edge weight. Node IDs and leaf labels are deliberately
// absent — a repair renumbers nodes, and table contents depend on
// neither.
func (d *dpRun) subtreeHashes() []string {
	hs := make([]string, d.bt.N())
	var buf [8]byte
	for _, v := range d.bt.PostOrder() {
		hh := sha256.New()
		if d.bt.IsLeaf(v) {
			hh.Write([]byte{'L'})
			binary.LittleEndian.PutUint64(buf[:], uint64(d.du[v]))
			hh.Write(buf[:])
		} else {
			hh.Write([]byte{'I'})
			for _, c := range d.bt.Children(v) {
				hh.Write([]byte(hs[c]))
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.bt.EdgeWeight(c)))
				hh.Write(buf[:])
			}
		}
		hs[v] = string(hh.Sum(nil))
	}
	return hs
}

// attachReuse wires a warm cache into the run: hashes are always
// computed (the post-solve repopulation needs them), and the previous
// generation's tables are consulted only when the run identity matches.
func (d *dpRun) attachReuse(c *TableCache, pruneOn bool) {
	d.hashes = d.subtreeHashes()
	d.reuseSig = d.runIdentity(pruneOn)
	if c.sig == d.reuseSig && len(c.tables) > 0 {
		d.reuseTabs = c.tables
	}
}

// reuseLookup serves node v's table from the previous generation, if
// present. A hit is immutable — callers must not prune or mutate it.
func (d *dpRun) reuseLookup(v int) (map[uint64]entry, bool) {
	if d.reuseTabs == nil {
		return nil, false
	}
	tab, ok := d.reuseTabs[d.hashes[v]]
	if ok {
		d.reused.Add(1)
	}
	return tab, ok
}

// repopulate replaces the cache's generation with this solve's tables.
// Identical subtrees within one tree share a hash; their tables are
// bit-identical (same deterministic function of the same inputs), so
// either copy serves.
func (c *TableCache) repopulate(d *dpRun, tabs []map[uint64]entry) {
	c.sig = d.reuseSig
	c.tables = make(map[string]map[uint64]entry, len(tabs))
	for v, tab := range tabs {
		c.tables[d.hashes[v]] = tab
	}
}
