package hgpt

import (
	"math"
	"math/rand"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/hierarchy"
	"hierpart/internal/laminar"
	"hierpart/internal/tree"
)

// fuzzHierarchies cover heights 1..3, mixed degrees, tied and strict
// cost multipliers.
var fuzzHierarchies = []*hierarchy.Hierarchy{
	hierarchy.FlatKWay(2),
	hierarchy.FlatKWay(5),
	hierarchy.MustNew([]int{2, 3}, []float64{7, 2, 0}),
	hierarchy.MustNew([]int{3, 2}, []float64{4, 4, 0}),
	hierarchy.MustNew([]int{2, 2, 2}, []float64{9, 5, 2, 0}),
	hierarchy.MustNew([]int{2, 2, 3}, []float64{6, 6, 6, 0}),
}

// fuzzTree draws a random tree with exact-multiple demands so ε = 0.5
// scaling is lossless.
func fuzzTree(rng *rand.Rand, maxLeaves int) *tree.Tree {
	for {
		tr := gen.RandomTree(rng, 2+rng.Intn(2*maxLeaves), 9, 0.1, 0.9)
		leaves := tr.Leaves()
		if len(leaves) < 2 || len(leaves) > maxLeaves {
			continue
		}
		q := 2 * len(leaves)
		for _, l := range leaves {
			tr.SetDemand(l, float64(1+rng.Intn(q))/float64(q))
		}
		return tr
	}
}

// TestSolveInvariantBattery fuzzes the solver across tree shapes and
// hierarchies and checks every structural contract at once.
func TestSolveInvariantBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const eps = 0.5
	for trial := 0; trial < 120; trial++ {
		tr := fuzzTree(rng, 8)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		sol, err := Solver{Eps: eps}.Solve(tr, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		leaves := tr.Leaves()

		// 1. Assignment covers every leaf with an in-range H-leaf.
		if len(sol.Assignment) != len(leaves) {
			t.Fatalf("trial %d: %d assigned, want %d", trial, len(sol.Assignment), len(leaves))
		}
		for _, l := range leaves {
			hl, ok := sol.Assignment[l]
			if !ok || hl < 0 || hl >= h.Leaves() {
				t.Fatalf("trial %d: leaf %d assigned to %d", trial, l, hl)
			}
		}

		// 2. Relaxed family validates under (1+ε) capacity slack. When
		// the instance is overloaded (total demand F·CP(0), F > 1), the
		// level-0 set is the whole instance and the per-level repacking
		// bound becomes (1+ε)(F+j) — the Theorem 5 recursion started
		// from V(0) = F·CP(0).
		overload := tr.TotalDemand() / h.Cap(0)
		if overload < 1 {
			overload = 1
		}
		capRel := make([]float64, h.Height()+1)
		capStrict := make([]float64, h.Height()+1)
		for j := range capRel {
			capRel[j] = 1 + eps
			capStrict[j] = (1 + eps) * (overload + float64(j))
		}
		capRel[0] = (1 + eps) * overload
		if err := sol.Relaxed.Validate(h, leaves, tr.Demand, laminar.Options{
			Relaxed: true, CapFactor: capRel,
		}); err != nil {
			t.Fatalf("trial %d relaxed: %v", trial, err)
		}

		// 3. Strict family validates under Theorem 5 bounds with H-nodes.
		if err := sol.Strict.Validate(h, leaves, tr.Demand, laminar.Options{
			CapFactor: capStrict, CheckHNodes: true,
		}); err != nil {
			t.Fatalf("trial %d strict: %v", trial, err)
		}

		// 4. Repacking never raises cost; DP cost matches the relaxed
		//    family's Equation (3) evaluation (lossless scaling).
		if sol.Cost > sol.DPCost+1e-9 {
			t.Fatalf("trial %d: strict cost %v > DP cost %v", trial, sol.Cost, sol.DPCost)
		}
		if rc := FamilyCost(tr, h, sol.Relaxed); math.Abs(rc-sol.DPCost) > 1e-6 {
			t.Fatalf("trial %d: relaxed family cost %v != DP cost %v", trial, rc, sol.DPCost)
		}

		// 5. The assignment's own mirror cost never beats the strict
		//    family cost by more than tie-breaking noise (the assignment
		//    realizes the strict family).
		ac := AssignmentCost(tr, h, sol.Assignment)
		if ac > sol.Cost+1e-9 {
			t.Fatalf("trial %d: assignment cost %v > strict family cost %v", trial, ac, sol.Cost)
		}
	}
}

// TestAblatedSolversStillStructurallySound: the E11 ablation variants
// compute wrong costs by design, but their solutions must still be
// structurally valid families.
func TestAblatedSolversStillStructurallySound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const eps = 0.5
	variants := []Solver{
		{Eps: eps, AblateLiteralEq4: true},
		{Eps: eps, AblateNoZeroRegions: true},
	}
	for trial := 0; trial < 30; trial++ {
		tr := fuzzTree(rng, 6)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		for vi, s := range variants {
			sol, err := s.Solve(tr, h)
			if err != nil {
				t.Fatalf("trial %d variant %d: %v", trial, vi, err)
			}
			overload := tr.TotalDemand() / h.Cap(0)
			if overload < 1 {
				overload = 1
			}
			capRel := make([]float64, h.Height()+1)
			for j := range capRel {
				capRel[j] = 1 + eps
			}
			capRel[0] = (1 + eps) * overload
			if err := sol.Relaxed.Validate(h, tr.Leaves(), tr.Demand, laminar.Options{
				Relaxed: true, CapFactor: capRel,
			}); err != nil {
				t.Fatalf("trial %d variant %d: %v", trial, vi, err)
			}
		}
	}
}

// TestMaxStatesGuard: the state budget aborts cleanly.
func TestMaxStatesGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := gen.RandomTree(rng, 40, 5, 0.05, 0.95)
	h := hierarchy.MustNew([]int{4, 2}, []float64{5, 2, 0})
	_, err := Solver{Eps: 0.25, MaxStates: 100}.Solve(tr, h)
	if err == nil {
		t.Fatal("tiny state budget must trip")
	}
}

// TestDeterministicAcrossRuns: identical inputs give identical solutions
// (tie-breaking is canonical, independent of map iteration order).
func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := fuzzTree(rng, 8)
	h := hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})
	a, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		b, err := Solver{Eps: 0.5}.Solve(tr, h)
		if err != nil {
			t.Fatal(err)
		}
		if a.DPCost != b.DPCost || a.Cost != b.Cost {
			t.Fatalf("run %d: costs differ", run)
		}
		for l, hl := range a.Assignment {
			if b.Assignment[l] != hl {
				t.Fatalf("run %d: assignment differs at leaf %d", run, l)
			}
		}
	}
}
