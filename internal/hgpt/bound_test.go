package hgpt

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hierpart/internal/hierarchy"
)

func TestCostBoundTighten(t *testing.T) {
	b := NewCostBound()
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("fresh bound = %v, want +Inf", b.Load())
	}
	b.Tighten(5)
	b.Tighten(7) // larger: ignored
	if b.Load() != 5 {
		t.Fatalf("bound = %v, want 5", b.Load())
	}
	b.Tighten(math.NaN()) // NaN: ignored
	if b.Load() != 5 {
		t.Fatalf("bound after NaN = %v, want 5", b.Load())
	}
	b.Tighten(2)
	if b.Load() != 2 {
		t.Fatalf("bound = %v, want 2", b.Load())
	}
}

// TestBoundInfIsNoOp: a +Inf bound must be bit-identical to no bound on
// randomized instances at several worker counts.
func TestBoundInfIsNoOp(t *testing.T) {
	old := shardMinPairs
	shardMinPairs = 1
	defer func() { shardMinPairs = old }()

	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		tr := fuzzTree(rng, 8)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		base, err := Solver{Eps: 0.5}.Solve(tr, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range []int{1, 4} {
			got, err := Solver{Eps: 0.5, Workers: w, Bound: NewCostBound()}.Solve(tr, h)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, w, err)
			}
			if got.DPCost != base.DPCost || got.Cost != base.Cost || got.States != base.States {
				t.Fatalf("trial %d workers %d: scalars differ with +Inf bound: %+v vs %+v",
					trial, w, got, base)
			}
			if !reflect.DeepEqual(got.Assignment, base.Assignment) {
				t.Fatalf("trial %d workers %d: assignment differs with +Inf bound", trial, w)
			}
		}
	}
}

// TestBoundAtOptimumKeepsSolution: ties with the bound are kept, so a
// bound set exactly at the optimum must reproduce the unbounded result.
func TestBoundAtOptimumKeepsSolution(t *testing.T) {
	tr := star([2]float64{3, 1}, [2]float64{5, 1})
	h := hierarchy.FlatKWay(2)
	base, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	b := NewCostBound()
	b.Tighten(base.DPCost)
	got, err := Solver{Eps: 0.5, Bound: b}.Solve(tr, h)
	if err != nil {
		t.Fatalf("bound == optimum must still solve: %v", err)
	}
	if got.DPCost != base.DPCost || !reflect.DeepEqual(got.Assignment, base.Assignment) {
		t.Fatalf("bounded-at-optimum solution differs: %+v vs %+v", got, base)
	}
}

// TestBoundBelowOptimumAborts: a bound strictly below the optimum must
// yield ErrBoundExceeded — deterministically at every worker count.
func TestBoundBelowOptimumAborts(t *testing.T) {
	old := shardMinPairs
	shardMinPairs = 1
	defer func() { shardMinPairs = old }()

	tr := star([2]float64{3, 1}, [2]float64{5, 1})
	h := hierarchy.FlatKWay(2)
	base, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if base.DPCost <= 0 {
		t.Fatalf("test instance must have positive optimum, got %v", base.DPCost)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b := NewCostBound()
		b.Tighten(base.DPCost / 2)
		_, err := Solver{Eps: 0.5, Workers: w, Bound: b}.Solve(tr, h)
		if !errors.Is(err, ErrBoundExceeded) {
			t.Fatalf("workers %d: err = %v, want ErrBoundExceeded", w, err)
		}
	}
}

// TestBoundAbortsAcrossFuzzedInstances: for random instances, solving
// with a bound strictly below the instance's own optimum always reports
// ErrBoundExceeded, and a bound at the optimum always reproduces the
// unbounded solution — the two sides of the strict-> filter.
func TestBoundAbortsAcrossFuzzedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		tr := fuzzTree(rng, 8)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		base, err := Solver{Eps: 0.5}.Solve(tr, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bAt := NewCostBound()
		bAt.Tighten(base.DPCost)
		got, err := Solver{Eps: 0.5, Bound: bAt}.Solve(tr, h)
		if err != nil {
			t.Fatalf("trial %d bound-at-optimum: %v", trial, err)
		}
		if got.DPCost != base.DPCost || !reflect.DeepEqual(got.Assignment, base.Assignment) {
			t.Fatalf("trial %d: bounded-at-optimum differs", trial)
		}
		if base.DPCost == 0 {
			continue // cannot set a bound strictly below a zero optimum
		}
		bBelow := NewCostBound()
		bBelow.Tighten(base.DPCost * 0.999)
		if _, err := (Solver{Eps: 0.5, Bound: bBelow}).Solve(tr, h); !errors.Is(err, ErrBoundExceeded) {
			t.Fatalf("trial %d bound-below-optimum: err = %v, want ErrBoundExceeded", trial, err)
		}
	}
}
