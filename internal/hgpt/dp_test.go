package hgpt

import (
	"math"
	"testing"

	"hierpart/internal/hierarchy"
	"hierpart/internal/laminar"
	"hierpart/internal/tree"
)

// star returns a root with leaves of the given (weight, demand) pairs.
func star(wd ...[2]float64) *tree.Tree {
	t := tree.New()
	for _, p := range wd {
		l := t.AddChild(0, p[0])
		t.SetDemand(l, p[1])
	}
	return t
}

func TestSigCodecRoundTrip(t *testing.T) {
	c, err := newSigCodec(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	sig := []int{0, 100, 37, 0}
	k := c.encode(sig)
	out := make([]int, 4)
	c.decode(k, out)
	for j := 1; j <= 3; j++ {
		if out[j] != sig[j] {
			t.Fatalf("decode = %v, want %v", out, sig)
		}
	}
}

func TestSigCodecTooLarge(t *testing.T) {
	if _, err := newSigCodec(8, 1<<20); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestSolveTwoLeavesFlat(t *testing.T) {
	// Two unit-demand leaves, k=2: must be separated. Both singleton
	// sets' minimum cuts use the cheaper edge (w=3) — the mirror of the
	// second set absorbs the root — so the optimum is (3+3)·cm(0)/2 = 3.
	tr := star([2]float64{3, 1}, [2]float64{5, 1})
	h := hierarchy.FlatKWay(2)
	sol, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0; math.Abs(sol.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", sol.Cost, want)
	}
	if len(sol.Assignment) != 2 {
		t.Fatalf("assignment = %v", sol.Assignment)
	}
	if sol.Assignment[1] == sol.Assignment[2] {
		t.Fatal("unit-demand leaves must land on distinct H-leaves")
	}
}

func TestSolveCoLocationWhenRoomy(t *testing.T) {
	// Two light leaves fit one H-leaf: zero cost.
	tr := star([2]float64{3, 0.25}, [2]float64{5, 0.25})
	h := hierarchy.FlatKWay(2)
	sol, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("cost = %v, want 0", sol.Cost)
	}
	if sol.Assignment[1] != sol.Assignment[2] {
		t.Fatal("light leaves should co-locate")
	}
}

func TestSolveOverloadAbsorbedAsViolation(t *testing.T) {
	// 3 unit demands on 2 leaves: the relaxed problem is still feasible
	// (three singleton Level-1 sets), and repacking doubles up one leaf —
	// exactly the (1+h) = 2 violation Theorem 5 permits.
	tr := star([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	h := hierarchy.FlatKWay(2)
	sol, err := Solver{}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	loads := map[int]float64{}
	for leaf, hl := range sol.Assignment {
		loads[hl] += tr.Demand(leaf)
	}
	worst := 0.0
	for _, d := range loads {
		if d > worst {
			worst = d
		}
	}
	if worst > 2 {
		t.Fatalf("leaf load %v exceeds the (1+h)=2 bound", worst)
	}
	if worst <= 1 {
		t.Fatalf("leaf load %v: overload must force a violation", worst)
	}
}

func TestSolveLeafTooBig(t *testing.T) {
	// A single demand above leaf capacity is genuinely infeasible.
	tr := tree.New()
	l := tr.AddChild(0, 1)
	tr.SetDemand(l, 1.0)
	h := hierarchy.MustNew([]int{2, 2}, []float64{4, 1, 0})
	// Demand 1.0 fits capacity 1 exactly: fine.
	if _, err := (Solver{}).Solve(tr, h); err != nil {
		t.Fatal(err)
	}
	tr.SetDemand(l, 1.5)
	if _, err := (Solver{}).Solve(tr, h); err == nil {
		t.Fatal("demand 1.5 on unit leaves must be infeasible")
	}
}

func TestSolveSingleLeaf(t *testing.T) {
	tr := tree.New()
	l := tr.AddChild(0, 1)
	tr.SetDemand(l, 0.7)
	h := hierarchy.MustNew([]int{2, 2}, []float64{4, 1, 0})
	sol, err := Solver{}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 || len(sol.Assignment) != 1 {
		t.Fatalf("solution = %+v", sol)
	}
}

func TestSolvePrefersCheapSeparation(t *testing.T) {
	// Caterpillar: two tightly-bound pairs with a weak middle link.
	//   root -1000- a: leaves a1 a2 (w 1000 each, d 0.5)
	//   root -1- b: leaves b1 b2 (w 1000 each, d 0.5)
	// k=2 with unit caps: each pair fits one leaf exactly; the optimal
	// split cuts only the weak structure around the root.
	tr := tree.New()
	a := tr.AddChild(0, 1000)
	b := tr.AddChild(0, 1)
	a1 := tr.AddChild(a, 1000)
	a2 := tr.AddChild(a, 1000)
	b1 := tr.AddChild(b, 1000)
	b2 := tr.AddChild(b, 1000)
	for _, l := range []int{a1, a2, b1, b2} {
		tr.SetDemand(l, 0.5)
	}
	h := hierarchy.FlatKWay(2)
	sol, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assignment[a1] != sol.Assignment[a2] || sol.Assignment[b1] != sol.Assignment[b2] {
		t.Fatalf("pairs split apart: %v", sol.Assignment)
	}
	if sol.Assignment[a1] == sol.Assignment[b1] {
		t.Fatal("pairs must land on different leaves")
	}
	// Optimal cut: edge root-b (w 1) on the b side and edge root-a
	// (w 1000)? No: CUT({b1,b2}) = {root-b} (w 1) and
	// CUT({a1,a2}) = {root-a}?? root-a has w 1000, but the minimum cut
	// separating {a1,a2} is min(1000, 1) = the root-b edge... both
	// mirror cuts can use the same cheap edge: cost = (1+1)·(1-0)/2 = 1.
	if math.Abs(sol.Cost-1) > 1e-9 {
		t.Fatalf("cost = %v, want 1", sol.Cost)
	}
}

func TestRelaxedFamilyValidates(t *testing.T) {
	tr := star([2]float64{2, 0.5}, [2]float64{3, 0.5}, [2]float64{4, 0.5}, [2]float64{5, 0.5})
	h := hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})
	sol, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.5
	capF := make([]float64, h.Height()+1)
	for j := range capF {
		capF[j] = 1 + eps
	}
	err = sol.Relaxed.Validate(h, tr.Leaves(), tr.Demand, laminar.Options{
		Relaxed: true, CapFactor: capF,
	})
	if err != nil {
		t.Fatalf("relaxed family invalid: %v", err)
	}
	// Strict family: Theorem 5 bound (1+ε)(1+j), H-nodes checked.
	for j := range capF {
		capF[j] = (1 + eps) * float64(1+j)
	}
	err = sol.Strict.Validate(h, tr.Leaves(), tr.Demand, laminar.Options{
		CapFactor: capF, CheckHNodes: true,
	})
	if err != nil {
		t.Fatalf("strict family invalid: %v", err)
	}
}

func TestFamilyCostMatchesDP(t *testing.T) {
	// With exactly-representable demands (multiples of ε/n), the DP cost
	// must equal the Equation (3) cost of the reconstructed relaxed
	// family.
	tr := star([2]float64{2, 0.25}, [2]float64{7, 0.5}, [2]float64{1, 0.75}, [2]float64{4, 0.5})
	h := hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})
	sol, err := Solver{Eps: 0.5}.Solve(tr, h) // unit = 0.5/4 = 1/8
	if err != nil {
		t.Fatal(err)
	}
	relCost := FamilyCost(tr, h, sol.Relaxed)
	if math.Abs(relCost-sol.DPCost) > 1e-9 {
		t.Fatalf("family cost %v != DP cost %v", relCost, sol.DPCost)
	}
	if sol.Cost > sol.DPCost+1e-9 {
		t.Fatalf("strict cost %v exceeds DP cost %v (merging must not raise cost)", sol.Cost, sol.DPCost)
	}
}

func TestAssignmentFamilyAndCost(t *testing.T) {
	tr := star([2]float64{2, 0.5}, [2]float64{3, 0.5})
	h := hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})
	// Leaves 1, 2 (tree) → H-leaves 0, 2 (different sockets).
	assign := map[int]int{1: 0, 2: 2}
	fam := AssignmentFamily(tr, h, assign)
	if err := fam.Validate(h, tr.Leaves(), tr.Demand, laminar.Options{CheckHNodes: true}); err != nil {
		t.Fatal(err)
	}
	// Separated at levels 1 and 2. Both singleton minimum cuts use the
	// cheaper edge (w=2), the second set's mirror absorbing the root:
	// cost = (2+2)·(6-2)/2 + (2+2)·(2-0)/2 = 8 + 4 = 12.
	if got := AssignmentCost(tr, h, assign); math.Abs(got-12) > 1e-9 {
		t.Fatalf("cost = %v, want 12", got)
	}
	// Same socket, different leaves: only level-2 separation:
	// cost = (2+2)·(2-0)/2 = 4.
	assign = map[int]int{1: 0, 2: 1}
	if got := AssignmentCost(tr, h, assign); math.Abs(got-4) > 1e-9 {
		t.Fatalf("cost = %v, want 4", got)
	}
}

func TestStatesReported(t *testing.T) {
	tr := star([2]float64{1, 0.5}, [2]float64{1, 0.5}, [2]float64{1, 0.5})
	h := hierarchy.FlatKWay(3)
	sol, err := Solver{}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if sol.States <= 0 || sol.ScaledTotal <= 0 || sol.Unit <= 0 {
		t.Fatalf("stats not populated: %+v", sol)
	}
}

func TestEpsNegative(t *testing.T) {
	tr := star([2]float64{1, 0.5})
	if _, err := (Solver{Eps: -1}).Solve(tr, hierarchy.FlatKWay(1)); err == nil {
		t.Fatal("negative Eps must error")
	}
}
