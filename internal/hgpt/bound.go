package hgpt

import (
	"errors"
	"math"
	"sync/atomic"
)

// ErrBoundExceeded is returned by Solve/SolveContext when an active
// CostBound proves the tree cannot beat the caller's incumbent: every
// completion of the DP would cost strictly more than the bound. The
// portfolio solver (internal/hgp) maps this sentinel to a pruned tree
// (+Inf in Result.PerTreeCosts) rather than an errored one (NaN).
//
// One documented corner: a tree that is genuinely infeasible (demand
// exceeds total capacity) also surfaces as ErrBoundExceeded when a
// finite bound is active, because an empty DP table cannot distinguish
// "all partials filtered" from "no partials existed". Callers that need
// the distinction must re-solve without a bound.
var ErrBoundExceeded = errors.New("hgpt: cost bound exceeded (tree cannot beat incumbent)")

// CostBound publishes a monotonically non-increasing cost ceiling to
// DP runs. The zero value is NOT usable (it reads as bound 0, pruning
// everything) — construct with NewCostBound, which starts at +Inf.
//
// Concurrency: Tighten/Load are atomic, so a bound may be shared across
// goroutines. Determinism note: each DP run snapshots the bound ONCE at
// start (see Solver.Bound), so tightening mid-run never changes that
// run's outcome — the set of table entries a run produces depends only
// on the snapshot, keeping results independent of scheduler timing.
type CostBound struct {
	bits atomic.Uint64
}

// NewCostBound returns a bound initialized to +Inf (no pruning).
func NewCostBound() *CostBound {
	b := &CostBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Tighten lowers the bound to v if v is smaller; larger values are
// ignored, so the bound only ever decreases. NaN is ignored.
func (b *CostBound) Tighten(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current bound.
func (b *CostBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// bounded reports whether this run carries a finite cost bound.
func (d *dpRun) bounded() bool {
	return !math.IsInf(d.bound, 1)
}
