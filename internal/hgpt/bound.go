package hgpt

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrBoundExceeded is returned by Solve/SolveContext when an active
// CostBound proves the tree cannot beat the caller's incumbent: every
// completion of the DP would cost strictly more than the bound. The
// portfolio solver (internal/hgp) maps this sentinel to a pruned tree
// (+Inf in Result.PerTreeCosts) rather than an errored one (NaN).
//
// Aborts carry a *BoundError (match with errors.Is against this
// sentinel, or errors.As to read the abort detail): MinApplied is the
// tightest bound value the run actually filtered under, which is the
// fact an abort proves — the tree's unbounded DP optimum strictly
// exceeds MinApplied. Under a shared live bound (concurrent portfolio)
// different runs of the same tree observe different MinApplied values,
// so the caller's determinism reduction uses it to decide whether the
// abort also holds under the schedule-independent sequential bound.
//
// One documented corner: a tree that is genuinely infeasible (demand
// exceeds total capacity) also surfaces as ErrBoundExceeded when a
// finite bound was applied, because an empty DP table cannot
// distinguish "all partials filtered" from "no partials existed".
// Callers that need the distinction must re-solve without a bound.
var ErrBoundExceeded = errors.New("hgpt: cost bound exceeded (tree cannot beat incumbent)")

// BoundError is the concrete error of a bound abort. It wraps
// ErrBoundExceeded (errors.Is matches) and records what the abort
// proved and how far the DP ran before proving it.
type BoundError struct {
	// MinApplied is the tightest incumbent value this run filtered
	// under; the abort proves the tree's unbounded DP optimum is
	// strictly greater than it.
	MinApplied float64
	// TablesDone / TablesTotal locate the abort: how many of the
	// binarized tree's DP tables had completed when the bound emptied
	// one (the "abort depth" — small values mean the bound bit early,
	// near the leaves; values near 1 mean the tree was almost fully
	// solved before it was proven hopeless).
	TablesDone, TablesTotal int
}

func (e *BoundError) Error() string {
	return fmt.Sprintf("%v (optimum > %g; aborted after %d/%d tables)",
		ErrBoundExceeded, e.MinApplied, e.TablesDone, e.TablesTotal)
}

func (e *BoundError) Unwrap() error { return ErrBoundExceeded }

// CostBound publishes a monotonically non-increasing cost ceiling to
// DP runs. The zero value is NOT usable (it reads as bound 0, pruning
// everything) — construct with NewCostBound, which starts at +Inf.
//
// Concurrency: Tighten/Load are atomic, so a bound may be shared across
// goroutines — including runs already in flight. A run RE-READS the
// bound at its existing poll points (once per table, or per shard batch
// under the concurrent scheduler), so tightening mid-run makes every
// in-flight DP filter harder from its next table on. Determinism note:
// because the bound only ever decreases over time and a table's
// children always complete (and so loaded their ceilings) before it
// does, a run that COMPLETES still returns a result bit-identical to
// its unbounded solve — any surviving completion ≤ the root's ceiling
// implies the true optimum also survived every earlier, looser filter.
// Only whether a run completes (and, on abort, how early) depends on
// timing; callers that need a schedule-independent pruned set
// re-validate aborts against a pure-function bound (see the
// determinism reduction in internal/hgp/portfolio.go).
type CostBound struct {
	bits atomic.Uint64
}

// NewCostBound returns a bound initialized to +Inf (no pruning).
func NewCostBound() *CostBound {
	b := &CostBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Tighten lowers the bound to v if v is smaller; larger values are
// ignored, so the bound only ever decreases. NaN is ignored.
func (b *CostBound) Tighten(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current bound.
func (b *CostBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// hasBound reports whether this run carries a bound source at all. The
// source may still read +Inf (no incumbent yet) — per-table ceilings
// decide actual filtering.
func (d *dpRun) hasBound() bool {
	return d.boundSrc != nil
}

// loadBound re-reads the live incumbent bound and records it in the
// run's applied-minimum tracker. Called once per table (and once per
// sharded node, so all shards of a node share one ceiling snapshot —
// the per-node invariant in scheduler.go requires it).
func (d *dpRun) loadBound() float64 {
	if d.boundSrc == nil {
		return math.Inf(1)
	}
	v := d.boundSrc.Load()
	for {
		old := d.applied.Load()
		if math.Float64frombits(old) <= v {
			return v
		}
		if d.applied.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}

// minApplied returns the tightest bound value this run has loaded
// (+Inf when unbounded or never tightened).
func (d *dpRun) minApplied() float64 {
	return math.Float64frombits(d.applied.Load())
}

// boundErr builds the typed abort error for this run.
func (d *dpRun) boundErr(tablesDone int) error {
	return &BoundError{
		MinApplied:  d.minApplied(),
		TablesDone:  tablesDone,
		TablesTotal: d.bt.N(),
	}
}
