package hgpt

import (
	"math/rand"
	"reflect"
	"testing"

	"hierpart/internal/hierarchy"
	"hierpart/internal/tree"
)

// sameSolution asserts bit-identity of everything a caller can observe
// except the reuse counters themselves.
func sameSolution(t *testing.T, tag string, got, want *Solution) {
	t.Helper()
	if got.DPCost != want.DPCost || got.Cost != want.Cost ||
		got.States != want.States || got.Unit != want.Unit ||
		got.ScaledTotal != want.ScaledTotal {
		t.Fatalf("%s: scalars differ:\n got  %+v\n want %+v", tag, got, want)
	}
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Fatalf("%s: assignment differs", tag)
	}
	if !reflect.DeepEqual(got.Relaxed, want.Relaxed) {
		t.Fatalf("%s: relaxed family differs", tag)
	}
	if !reflect.DeepEqual(got.Strict, want.Strict) {
		t.Fatalf("%s: strict family differs", tag)
	}
}

// TestReuseWarmSolveBitIdentical: a warm re-solve of the SAME tree must
// hit the cache at every node and reproduce the cold solution bit for
// bit, at every worker count, across fuzzed trees and hierarchies.
func TestReuseWarmSolveBitIdentical(t *testing.T) {
	old := shardMinPairs
	shardMinPairs = 1
	defer func() { shardMinPairs = old }()

	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		tr := fuzzTree(rng, 8)
		h := fuzzHierarchies[trial%len(fuzzHierarchies)]
		cold, err := Solver{Eps: 0.5}.Solve(tr, h)
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		for _, w := range []int{1, 4} {
			cache := NewTableCache()
			first, err := Solver{Eps: 0.5, Workers: w, Reuse: cache}.Solve(tr, h)
			if err != nil {
				t.Fatalf("trial %d workers %d: prime: %v", trial, w, err)
			}
			sameSolution(t, "prime", first, cold)
			if first.TablesReused != 0 || first.TablesComputed == 0 {
				t.Fatalf("trial %d: cold cache reported reuse: %+v", trial, first)
			}
			if cache.Len() == 0 {
				t.Fatalf("trial %d: cache not repopulated", trial)
			}
			warm, err := Solver{Eps: 0.5, Workers: w, Reuse: cache}.Solve(tr, h)
			if err != nil {
				t.Fatalf("trial %d workers %d: warm: %v", trial, w, err)
			}
			sameSolution(t, "warm", warm, cold)
			if warm.TablesComputed != 0 {
				t.Fatalf("trial %d workers %d: warm solve recomputed %d tables",
					trial, w, warm.TablesComputed)
			}
		}
	}
}

// reuseTestTree builds a balanced-ish tree whose leaves carry demand d.
func reuseTestTree(leaves int, d float64) *tree.Tree {
	tr := tree.New()
	level := []int{tr.Root()}
	for len(level) < leaves {
		var next []int
		for _, v := range level {
			next = append(next, tr.AddChild(v, 2), tr.AddChild(v, 3))
		}
		level = next
	}
	for _, v := range level {
		tr.SetDemand(v, d)
	}
	return tr
}

// TestReuseLocalEditDirtiesOnlyChain: reweighting one subtree edge must
// recompute only that node's ancestor chain — every disjoint subtree
// hits the cache — and the result must equal a from-scratch solve of the
// edited tree.
func TestReuseLocalEditDirtiesOnlyChain(t *testing.T) {
	h := hierarchy.NUMASockets(2, 4)
	build := func(w float64) *tree.Tree {
		tr := reuseTestTree(16, 0.5)
		// Rebuild with one edge weight changed: tree is append-only, so
		// construct an identical tree and vary the last leaf's edge.
		out := tree.New()
		var rec func(src, dst int)
		rec = func(src, dst int) {
			for _, c := range tr.Children(src) {
				ew := tr.EdgeWeight(c)
				if c == tr.N()-1 {
					ew = w
				}
				nc := out.AddChild(dst, ew)
				if tr.IsLeaf(c) {
					out.SetDemand(nc, tr.Demand(c))
				}
				rec(c, nc)
			}
		}
		rec(tr.Root(), out.Root())
		return out
	}

	cache := NewTableCache()
	base := build(3)
	if _, err := (Solver{Eps: 0.5, Reuse: cache}).Solve(base, h); err != nil {
		t.Fatalf("prime: %v", err)
	}
	edited := build(7)
	warm, err := Solver{Eps: 0.5, Reuse: cache}.Solve(edited, h)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	cold, err := Solver{Eps: 0.5}.Solve(edited, h)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	sameSolution(t, "edited", warm, cold)
	if warm.TablesReused == 0 {
		t.Fatal("local edit reused nothing")
	}
	if warm.TablesComputed == 0 || warm.TablesComputed >= warm.TablesReused {
		t.Fatalf("local edit should recompute only the ancestor chain: computed %d, reused %d",
			warm.TablesComputed, warm.TablesReused)
	}
}

// TestReuseMaxStatesParity: a warm solve must trip MaxStates exactly
// when a cold solve does — reused tables count their states in full.
func TestReuseMaxStatesParity(t *testing.T) {
	h := hierarchy.NUMASockets(2, 4)
	tr := reuseTestTree(16, 0.5)
	cold, err := Solver{Eps: 0.5}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTableCache()
	if _, err := (Solver{Eps: 0.5, Reuse: cache}).Solve(tr, h); err != nil {
		t.Fatal(err)
	}
	budget := cold.States - 1
	_, errWarm := Solver{Eps: 0.5, MaxStates: budget, Reuse: cache}.Solve(tr, h)
	_, errCold := Solver{Eps: 0.5, MaxStates: budget}.Solve(tr, h)
	if (errWarm == nil) != (errCold == nil) {
		t.Fatalf("MaxStates parity broken: warm err %v, cold err %v", errWarm, errCold)
	}
	if errCold == nil {
		t.Fatal("expected budget trip")
	}
}

// TestReuseIdentityMismatch: a cache primed under different run
// parameters must be ignored wholesale, not served stale.
func TestReuseIdentityMismatch(t *testing.T) {
	tr := reuseTestTree(8, 0.5)
	h1 := hierarchy.NUMASockets(2, 4)
	h2 := hierarchy.NUMASockets(4, 2)

	cache := NewTableCache()
	if _, err := (Solver{Eps: 0.5, Reuse: cache}).Solve(tr, h1); err != nil {
		t.Fatal(err)
	}
	// Different hierarchy: identity differs, zero reuse, correct result.
	got, err := Solver{Eps: 0.5, Reuse: cache}.Solve(tr, h2)
	if err != nil {
		t.Fatal(err)
	}
	if got.TablesReused != 0 {
		t.Fatalf("stale cache served %d tables across hierarchies", got.TablesReused)
	}
	cold, err := Solver{Eps: 0.5}.Solve(tr, h2)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "h2", got, cold)

	// Different Eps on the same hierarchy: also an identity change.
	cache2 := NewTableCache()
	if _, err := (Solver{Eps: 0.5, Reuse: cache2}).Solve(tr, h1); err != nil {
		t.Fatal(err)
	}
	got2, err := Solver{Eps: 0.25, Reuse: cache2}.Solve(tr, h1)
	if err != nil {
		t.Fatal(err)
	}
	if got2.TablesReused != 0 {
		t.Fatalf("stale cache served %d tables across Eps", got2.TablesReused)
	}
}

// TestReuseUnderBound: Reuse composes with Bound — cached tables are
// full unbounded subtree tables, so lookups are served and the bounded
// warm result matches the bounded cold result bit-for-bit. But
// bound-filtered tables are schedule-dependent subsets, so a bounded
// run must never repopulate the cache.
func TestReuseUnderBound(t *testing.T) {
	tr := reuseTestTree(8, 0.5)
	h := hierarchy.NUMASockets(2, 4)
	cache := NewTableCache()

	// Bounded cold run with an empty cache: nothing to reuse, and the
	// filtered tables must not be written back.
	b := NewCostBound()
	got, err := Solver{Eps: 0.5, Reuse: cache, Bound: b}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if got.TablesReused != 0 {
		t.Fatalf("empty cache produced reuse hits: %+v", got)
	}
	if cache.Len() != 0 {
		t.Fatal("bounded solve repopulated the cache")
	}

	// Populate via an unbounded run, then solve again under a bound set
	// exactly at the optimum: every table is served warm and the result
	// is bit-identical to the unbounded solve.
	cold, err := Solver{Eps: 0.5, Reuse: cache}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("unbounded solve did not populate the cache")
	}
	gen := cache.Len()
	b2 := NewCostBound()
	b2.Tighten(cold.DPCost)
	warm, err := Solver{Eps: 0.5, Reuse: cache, Bound: b2}.Solve(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "bounded warm", warm, cold)
	if warm.TablesReused == 0 {
		t.Fatalf("bounded warm solve served no cached tables: %+v", warm)
	}
	if cache.Len() != gen {
		t.Fatalf("bounded warm solve mutated the cache: %d -> %d entries", gen, cache.Len())
	}

	// A fully-warm run never filters (every table is served verbatim), so
	// even a bound below the optimum completes — with the exact unbounded
	// solution. The bound is an accelerator for recomputed tables, not a
	// gate on reused ones.
	b3 := NewCostBound()
	b3.Tighten(cold.DPCost - 1)
	warm3, err := Solver{Eps: 0.5, Reuse: cache, Bound: b3}.Solve(tr, h)
	if err != nil {
		t.Fatalf("sub-optimal bound on fully-warm solve: %v", err)
	}
	sameSolution(t, "fully-warm sub-optimal bound", warm3, cold)
}

// TestReuseDemandChangeInvalidatesChain: changing one leaf demand must
// miss exactly that leaf's chain and match the cold solve. The new
// demand is chosen so the total scaled demand stays in the same
// power-of-two bracket (codec.bits unchanged); a change that widens or
// narrows the signature encoding invalidates the whole cache instead —
// see TestReuseDemandChangeCodecWidth.
func TestReuseDemandChangeInvalidatesChain(t *testing.T) {
	h := hierarchy.NUMASockets(2, 4)
	build := func(d float64) *tree.Tree {
		tr := reuseTestTree(16, 0.5)
		tr.SetDemand(tr.N()-1, d)
		return tr
	}
	cache := NewTableCache()
	if _, err := (Solver{Eps: 0.5, Reuse: cache}).Solve(build(0.5), h); err != nil {
		t.Fatal(err)
	}
	warm, err := Solver{Eps: 0.5, Reuse: cache}.Solve(build(0.75), h)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solver{Eps: 0.5}.Solve(build(0.75), h)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "demand", warm, cold)
	if warm.TablesReused == 0 || warm.TablesComputed == 0 {
		t.Fatalf("demand change should dirty only one chain: %+v", warm)
	}
}

// TestReuseDemandChangeCodecWidth: a demand delta that shrinks the total
// scaled demand across a power-of-two boundary changes the signature
// encoding width, so the cache must be ignored wholesale — and the warm
// solve must still be bit-identical to cold.
func TestReuseDemandChangeCodecWidth(t *testing.T) {
	h := hierarchy.NUMASockets(2, 4)
	build := func(d float64) *tree.Tree {
		tr := reuseTestTree(16, 0.5)
		tr.SetDemand(tr.N()-1, d)
		return tr
	}
	cache := NewTableCache()
	if _, err := (Solver{Eps: 0.5, Reuse: cache}).Solve(build(0.5), h); err != nil {
		t.Fatal(err)
	}
	warm, err := Solver{Eps: 0.5, Reuse: cache}.Solve(build(0.25), h)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solver{Eps: 0.5}.Solve(build(0.25), h)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "codec-width", warm, cold)
	if warm.TablesReused != 0 {
		t.Fatalf("codec-width change served %d stale tables", warm.TablesReused)
	}
}

func TestTableCacheNilLen(t *testing.T) {
	var c *TableCache
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}
