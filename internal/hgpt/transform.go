package hgpt

import (
	"sort"

	"hierpart/internal/hierarchy"
	"hierpart/internal/laminar"
)

// Repack transforms a relaxed solution family (Definition 4, unbounded
// refinement width) into a strict HGPT solution (Definition 3) per
// Theorem 5: processing levels top-down, the Level-(j+1) child sets of
// each Level-(j) set are packed into at most DEG(j) groups by
// longest-processing-time (largest demand to the least-loaded group),
// each group becoming one Level-(j+1) set assigned to one child H-node.
//
// Packing guarantees max group ≤ total/DEG(j) + max item, which yields
// the (1+j) per-level capacity violation of Theorem 5; merging sets can
// only lower the Equation (3) cost because the union of two separating
// cuts separates the merged set.
func Repack(fam *laminar.Family, H *hierarchy.Hierarchy) *laminar.Family {
	h := fam.Height()
	out := laminar.NewFamily(h)
	rootSrc := fam.Levels[0][0]
	root := laminar.NewSet(rootSrc.Leaves, rootSrc.Demand)
	root.HNode = 0
	out.Add(0, root)
	cur := []*laminar.Set{root}

	for j := 0; j < h; j++ {
		owner := map[int]int{}
		for i, s := range fam.Levels[j+1] {
			for _, l := range s.Leaves {
				owner[l] = i
			}
		}
		var next []*laminar.Set
		for _, p := range cur {
			// Distinct relaxed child sets under p, in first-seen order of
			// p's (sorted) leaves for determinism.
			seen := map[int]bool{}
			var items []*laminar.Set
			for _, l := range p.Leaves {
				ci := owner[l]
				if !seen[ci] {
					seen[ci] = true
					items = append(items, fam.Levels[j+1][ci])
				}
			}
			sort.SliceStable(items, func(a, b int) bool {
				return items[a].Demand > items[b].Demand
			})
			deg := H.Deg(j)
			binLoad := make([]float64, deg)
			binLeaves := make([][]int, deg)
			for _, it := range items {
				best := 0
				for b := 1; b < deg; b++ {
					if binLoad[b] < binLoad[best] {
						best = b
					}
				}
				binLoad[best] += it.Demand
				binLeaves[best] = append(binLeaves[best], it.Leaves...)
			}
			for b := 0; b < deg; b++ {
				if len(binLeaves[b]) == 0 {
					continue
				}
				ns := laminar.NewSet(binLeaves[b], binLoad[b])
				ns.HNode = p.HNode*deg + b
				next = append(next, ns)
			}
		}
		out.Levels[j+1] = next
		cur = next
	}
	return out
}
