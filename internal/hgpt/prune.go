package hgpt

import (
	"sort"
)

// Dominance pruning. Within a table, an entry A is dominated by B when
// both have the same per-level region class (none / zero-demand region /
// demand-carrying region), B's open demands are componentwise ≤ A's, and
// B costs no more: any completion of A is a completion of B — the class
// pattern fixes every validity rule and boundary charge the parent
// merges apply, and smaller open demand only loosens capacity checks.
// Dropping dominated entries therefore cannot change the optimum; what
// it changes is the table size, which the merge step multiplies
// (experiment E20 measures the effect, and the brute-force batteries of
// internal/exact pin the exactness).
//
// Pruning is exact per class-pattern group: a prefix-minimum sweep for
// one demand dimension, a Fenwick-tree sweep for two, and the
// two-dimensional sweep within equal-third-demand buckets for three or
// more (sound but partial beyond two dimensions).

// pruneRec is one table entry in pruning form: its key, the demands of
// its demand-carrying levels, and its cost.
type pruneRec struct {
	key  uint64
	dems []int
	cost float64
}

// prune removes dominated entries from tab in place.
func (d *dpRun) prune(tab map[uint64]entry) {
	if len(tab) < 2 {
		return
	}
	groups := map[uint64][]pruneRec{}
	sc := d.scratch.Get().(*dpScratch)
	sig := sc.sig
	// One backing array for every record's demand vector: at most h
	// demand-carrying levels per entry, so the capacity below is exact
	// and append never reallocates (keeping earlier sub-slices valid).
	backing := make([]int, 0, d.h*len(tab))
	for k, e := range tab {
		d.codec.decode(k, sig)
		// Class pattern: 0 = none, 1 = zero-demand region, 2 = demand.
		var pat uint64
		start := len(backing)
		for j := 1; j <= d.h; j++ {
			switch {
			case sig[j] == 0:
				pat = pat*3 + 0
			case sig[j] == 1:
				pat = pat*3 + 1
			default:
				pat = pat*3 + 2
				backing = append(backing, sig[j])
			}
		}
		groups[pat] = append(groups[pat], pruneRec{key: k, dems: backing[start:len(backing):len(backing)], cost: e.cost})
	}
	d.scratch.Put(sc)

	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		dims := len(g[0].dems)
		switch dims {
		case 0:
			// Identical signatures are unique per map; dims 0 means a
			// single possible signature — nothing to prune.
		case 1:
			sort.Slice(g, func(a, b int) bool {
				if g[a].dems[0] != g[b].dems[0] {
					return g[a].dems[0] < g[b].dems[0]
				}
				return g[a].cost < g[b].cost
			})
			best := g[0].cost
			for i := 1; i < len(g); i++ {
				if g[i].cost >= best {
					delete(tab, g[i].key)
				} else {
					best = g[i].cost
				}
			}
		default:
			// Bucket by the demands beyond the first two (equal-bucket
			// dominance only — sound, partial), then 2-D sweep on
			// (dems[0], dems[1]) with a Fenwick prefix-min over dems[1].
			// Demands fit the signature codec's per-level bit width, so
			// packing dems[2:] the same way yields a collision-free
			// uint64 bucket key without string building.
			buckets := map[uint64][]pruneRec{}
			for _, r := range g {
				var key uint64
				for _, x := range r.dems[2:] {
					key = key<<d.codec.bits | uint64(x)
				}
				buckets[key] = append(buckets[key], r)
			}
			for _, b := range buckets {
				prune2D(tab, b)
			}
		}
	}
}

// prune2D removes entries dominated in (dems[0], dems[1], cost).
func prune2D(tab map[uint64]entry, g []pruneRec) {
	if len(g) < 2 {
		return
	}
	// Coordinate-compress the second dimension.
	ys := make([]int, len(g))
	for i, r := range g {
		ys[i] = r.dems[1]
	}
	sort.Ints(ys)
	ys = dedupInts(ys)
	rank := func(y int) int { return sort.SearchInts(ys, y) }

	fw := newMinFenwick(len(ys))
	sort.Slice(g, func(a, b int) bool {
		if g[a].dems[0] != g[b].dems[0] {
			return g[a].dems[0] < g[b].dems[0]
		}
		if g[a].dems[1] != g[b].dems[1] {
			return g[a].dems[1] < g[b].dems[1]
		}
		return g[a].cost < g[b].cost
	})
	for _, r := range g {
		rk := rank(r.dems[1])
		if fw.prefixMin(rk) <= r.cost {
			delete(tab, r.key)
			continue
		}
		fw.update(rk, r.cost)
	}
}

func dedupInts(a []int) []int {
	out := a[:0]
	for i, x := range a {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// minFenwick supports prefix-minimum queries and point updates.
type minFenwick struct {
	n int
	t []float64
}

func newMinFenwick(n int) *minFenwick {
	t := make([]float64, n+1)
	for i := range t {
		t[i] = inf
	}
	return &minFenwick{n: n, t: t}
}

const inf = 1e308

// update lowers the value at 0-based index i to at most v.
func (f *minFenwick) update(i int, v float64) {
	for i++; i <= f.n; i += i & (-i) {
		if v < f.t[i] {
			f.t[i] = v
		}
	}
}

// prefixMin returns the minimum over indices [0, i] (0-based, inclusive).
func (f *minFenwick) prefixMin(i int) float64 {
	min := inf
	for i++; i > 0; i -= i & (-i) {
		if f.t[i] < min {
			min = f.t[i]
		}
	}
	return min
}
