package hgpt

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/hierarchy"
)

// A cancelled context must stop the DP — under both the sequential walk
// and the concurrent scheduler — instead of completing the solve.
func TestSolveContextCancelled(t *testing.T) {
	tr := gen.RandomTree(rand.New(rand.NewSource(5)), 24, 4, 0.05, 0.3)
	H := hierarchy.MustNew([]int{2, 4}, []float64{8, 2, 0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Solver{Eps: 0.5, Workers: workers}.SolveContext(ctx, tr, H)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// SolveContext with a live context must agree exactly with Solve.
func TestSolveContextMatchesSolve(t *testing.T) {
	tr := gen.RandomTree(rand.New(rand.NewSource(9)), 16, 4, 0.05, 0.3)
	H := hierarchy.MustNew([]int{2, 4}, []float64{8, 2, 0})
	s := Solver{Eps: 0.5}
	want, err := s.Solve(tr, H)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SolveContext(context.Background(), tr, H)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.DPCost != want.DPCost || got.States != want.States {
		t.Fatalf("SolveContext (%v,%v,%d) != Solve (%v,%v,%d)",
			got.Cost, got.DPCost, got.States, want.Cost, want.DPCost, want.States)
	}
	for leaf, hl := range want.Assignment {
		if got.Assignment[leaf] != hl {
			t.Fatalf("assignment diverged at leaf %d", leaf)
		}
	}
}

// Cancellation mid-run under the scheduler must not deadlock: cancel
// from another goroutine while a forced-sharding solve runs.
func TestSolveContextCancelMidRun(t *testing.T) {
	old := shardMinPairs
	shardMinPairs = 1 // force the sharded path
	defer func() { shardMinPairs = old }()

	tr := gen.RandomTree(rand.New(rand.NewSource(17)), 40, 4, 0.02, 0.1)
	H := hierarchy.MustNew([]int{2, 2, 4}, []float64{16, 8, 2, 0})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Solver{Eps: 0.25, Workers: 4}.SolveContext(ctx, tr, H)
		done <- err
	}()
	cancel()
	// Either the solve won the race and finished, or it reports the
	// cancellation; both are fine — the test is that it returns at all
	// (no deadlock) and never reports a different error.
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}
