// Package hgpt implements the paper's core contribution: hierarchical
// graph partitioning on trees (HGPT, §3). The solver runs the signature
// dynamic program of Theorem 4 over the relaxed problem (RHGPT,
// Definition 4), reconstructs the optimal nice solution (Definition 6,
// Theorem 3), and repacks it into a strict HGPT solution per Theorem 5,
// violating Level-(j) capacities by at most (1+ε)(1+j).
//
// The DP state at a tree node v is the signature (D⁽¹⁾, …, D⁽ʰ⁾): the
// scaled demand of the (v, j)-active set at every hierarchy level j
// (Definition 8). Children tables are merged with the (j₁, j₂)-consistent
// rule of Definition 9, paying boundary costs derived from Equation (4)
// for every level at which a child edge is cut. Instead of looping over
// all parent signatures and searching for consistent child pairs (the
// paper's O(D^{2h+2}) bound), the implementation loops over realized
// child signature pairs and derives the unique parent signature, keeping
// tables sparse.
//
// Two refinements over the paper's literal presentation were required
// for the computed optimum to match the brute-force Equation (3) optimum
// (both verified against exhaustive search in internal/exact):
//
//  1. A cut child edge charges (cm(k−1)−cm(k))/2 once for the closed
//     child-side set AND once more when the merged Level-(k) active
//     region still contains v — the edge then lies on that region's
//     boundary too (Lemma 4 forces the two mirrors apart). Equation (4)
//     as printed charges only the child side.
//  2. Definition 8 ties "active set exists" to D > 0, but a minimum cut
//     (Definition 5) may route a set's mirror through a subtree holding
//     none of its leaves, when the interior edges are cheaper than the
//     subtree's root edge. The signature alphabet here therefore
//     distinguishes, per level, "no region", "region with zero demand"
//     (such an incursion), and "region with demand D". Zero-demand
//     regions may open spontaneously at internal nodes and must merge
//     upward — cutting them off is invalid (a mirror component with no
//     member leaf cannot exist).
//
// Main entry points: a Solver value configures ε, the worker budget,
// and the state cap; Solve runs the DP on a tree and hierarchy,
// SolveContext does the same under a context.Context, and both return a
// Solution (leaf assignment, relaxed cost, state diagnostics).
// FamilyCost, AssignmentFamily, and AssignmentCost bridge to the
// laminar-family view used by the structural tests.
package hgpt
