package treedecomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/mincut"
)

// mincutGlobal is a shorthand for the Stoer–Wagner global cut value.
func mincutGlobal(g *graph.Graph) float64 { return mincut.Global(g).Weight }

func TestBuildStructure(t *testing.T) {
	g := gen.Grid(4, 4, 1)
	gen.UniformDemands(rand.New(rand.NewSource(1)), g, 0.1, 0.9)
	d := Build(g, Options{Trees: 3, Seed: 7})
	if len(d.Trees) != 3 {
		t.Fatalf("got %d trees", len(d.Trees))
	}
	for ti, dt := range d.Trees {
		if err := dt.T.Validate(); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		leaves := dt.T.Leaves()
		if len(leaves) != g.N() {
			t.Fatalf("tree %d: %d leaves, want %d", ti, len(leaves), g.N())
		}
		// m_V restricted to leaves is a bijection onto V(G), demands match.
		seen := map[int]bool{}
		for _, l := range leaves {
			v := dt.T.Label(l)
			if v < 0 || v >= g.N() || seen[v] {
				t.Fatalf("tree %d: bad leaf label %d", ti, v)
			}
			seen[v] = true
			if dt.T.Demand(l) != g.Demand(v) {
				t.Fatalf("tree %d: leaf demand mismatch for vertex %d", ti, v)
			}
			if dt.LeafOf[v] != l {
				t.Fatalf("tree %d: LeafOf[%d] = %d, want %d", ti, v, dt.LeafOf[v], l)
			}
		}
		// Binary internal nodes (recursive bisection).
		if mc := dt.T.MaxChildren(); mc > 2 {
			t.Fatalf("tree %d: max children %d", ti, mc)
		}
	}
}

// clusterOf collects the graph vertices under a tree node.
func clusterOf(dt *DecompTree, node int) map[int]bool {
	out := map[int]bool{}
	var rec func(v int)
	rec = func(v int) {
		if dt.T.IsLeaf(v) {
			out[dt.T.Label(v)] = true
			return
		}
		for _, c := range dt.T.Children(v) {
			rec(c)
		}
	}
	rec(node)
	return out
}

// TestEdgeWeightsAreBoundaries: w_T(e) must equal the graph boundary of
// the child cluster — the §4 definition that makes Proposition 1 hold.
func TestEdgeWeightsAreBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(rng, 24, 0.15, 5)
	d := Build(g, Options{Trees: 2, Seed: 9})
	for ti, dt := range d.Trees {
		for v := 1; v < dt.T.N(); v++ {
			want := g.CutWeightSet(clusterOf(dt, v))
			if got := dt.T.EdgeWeight(v); math.Abs(got-want) > 1e-9 {
				t.Fatalf("tree %d node %d: edge weight %v != boundary %v", ti, v, got, want)
			}
		}
	}
}

// TestProposition1: the minimum tree cut separating any vertex subset
// dominates the graph boundary of that subset.
func TestProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyi(rng, 14, 0.25, 4)
	d := Build(g, Options{Trees: 2, Seed: 11})
	f := func(mask uint16) bool {
		s := map[int]bool{}
		for v := 0; v < g.N(); v++ {
			if mask&(1<<uint(v)) != 0 {
				s[v] = true
			}
		}
		if len(s) == 0 || len(s) == g.N() {
			return true
		}
		for _, dt := range d.Trees {
			if dt.CutDistortion(g, s) < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// sameDecomp reports whether two decompositions are bit-identical:
// equal shapes, edge weights, labels, demands, and leaf maps.
func sameDecomp(t *testing.T, a, b *Decomposition) {
	t.Helper()
	if len(a.Trees) != len(b.Trees) {
		t.Fatalf("tree counts differ: %d vs %d", len(a.Trees), len(b.Trees))
	}
	for i := range a.Trees {
		ta, tb := a.Trees[i].T, b.Trees[i].T
		if ta.N() != tb.N() {
			t.Fatalf("tree %d: node counts differ: %d vs %d", i, ta.N(), tb.N())
		}
		for v := 0; v < ta.N(); v++ {
			if ta.Label(v) != tb.Label(v) || ta.Demand(v) != tb.Demand(v) {
				t.Fatalf("tree %d node %d: label/demand differ", i, v)
			}
			if v > 0 && (ta.Parent(v) != tb.Parent(v) || ta.EdgeWeight(v) != tb.EdgeWeight(v)) {
				t.Fatalf("tree %d node %d: structure differs", i, v)
			}
		}
		for v, la := range a.Trees[i].LeafOf {
			if b.Trees[i].LeafOf[v] != la {
				t.Fatalf("tree %d: LeafOf[%d] differs", i, v)
			}
		}
	}
}

// TestBuildWorkersBitIdentical: the per-tree sub-seed derivation makes
// the distribution independent of the build schedule — every worker
// count, for every splitting strategy, must emit identical trees.
func TestBuildWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := gen.Community(rng, 3, 8, 0.6, 0.05, 8, 1)
	gen.UniformDemands(rng, g, 0.1, 0.9)
	for _, strat := range []Strategy{BalancedBisection, MinCutSplit, FRT} {
		base := Build(g, Options{Trees: 6, Seed: 23, Strategy: strat, Workers: 1})
		for _, w := range []int{2, 4, 8} {
			got := Build(g, Options{Trees: 6, Seed: 23, Strategy: strat, Workers: w})
			sameDecomp(t, base, got)
		}
	}
	// FlowRefine shares the builder RNG through a different path; cover
	// it too.
	base := Build(g, Options{Trees: 4, Seed: 29, FlowRefine: true, Workers: 1})
	for _, w := range []int{2, 4, 8} {
		sameDecomp(t, base, Build(g, Options{Trees: 4, Seed: 29, FlowRefine: true, Workers: w}))
	}
}

func TestSeedDeterminism(t *testing.T) {
	g := gen.Torus(4, 4, 2)
	a := Build(g, Options{Trees: 2, Seed: 42})
	b := Build(g, Options{Trees: 2, Seed: 42})
	for i := range a.Trees {
		if a.Trees[i].T.N() != b.Trees[i].T.N() {
			t.Fatal("same seed gave different trees")
		}
		for v := 1; v < a.Trees[i].T.N(); v++ {
			if a.Trees[i].T.EdgeWeight(v) != b.Trees[i].T.EdgeWeight(v) ||
				a.Trees[i].T.Label(v) != b.Trees[i].T.Label(v) {
				t.Fatal("same seed gave different trees")
			}
		}
	}
	c := Build(g, Options{Trees: 1, Seed: 43})
	same := a.Trees[0].T.N() == c.Trees[0].T.N()
	if same {
		for v := 1; v < c.Trees[0].T.N(); v++ {
			if a.Trees[0].T.Label(v) != c.Trees[0].T.Label(v) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical trees (vanishingly unlikely)")
	}
}

func TestSingletonAndTinyGraphs(t *testing.T) {
	g := graph.New(1)
	g.SetDemand(0, 0.5)
	d := Build(g, Options{})
	dt := d.Trees[0]
	if dt.T.N() != 1 || dt.T.Label(0) != 0 || dt.T.Demand(0) != 0.5 {
		t.Fatalf("singleton tree wrong: %+v", dt.T)
	}
	g2 := graph.New(2)
	g2.AddEdge(0, 1, 3)
	d2 := Build(g2, Options{})
	if got := len(d2.Trees[0].T.Leaves()); got != 2 {
		t.Fatalf("2-vertex tree has %d leaves", got)
	}
	// Both tree edges have boundary weight 3.
	for v := 1; v < d2.Trees[0].T.N(); v++ {
		if d2.Trees[0].T.EdgeWeight(v) != 3 {
			t.Fatalf("edge weight %v, want 3", d2.Trees[0].T.EdgeWeight(v))
		}
	}
}

// TestCommunityGraphSplitQuality: on a planted 2-community graph the
// first bisection should usually recover the communities (weak check:
// top split boundary well below worst-case).
func TestCommunityGraphSplitQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.Community(rng, 2, 10, 0.7, 0.02, 10, 1)
	d := Build(g, Options{Trees: 4, Seed: 13})
	// The planted inter-community cut weight:
	planted := map[int]bool{}
	for i := 0; i < 10; i++ {
		planted[i] = true
	}
	plantedCut := g.CutWeightSet(planted)
	bestTop := math.Inf(1)
	for _, dt := range d.Trees {
		topChild := dt.T.Children(dt.T.Root())[0]
		if w := dt.T.EdgeWeight(topChild); w < bestTop {
			bestTop = w
		}
	}
	if bestTop > plantedCut*3 {
		t.Fatalf("best top-level cut %v far above planted cut %v", bestTop, plantedCut)
	}
}

func TestCutDistortionDegenerate(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 2)
	// Vertex 2 disconnected: boundary({2}) = 0 in G but trees always cut.
	d := Build(g, Options{Seed: 1})
	if got := d.Trees[0].CutDistortion(g, map[int]bool{2: true}); got != 1 && !math.IsInf(got, 1) {
		// Boundary of the {2} cluster is 0 in G, so the tree edge weight
		// is also 0 → distortion 1. Either outcome is acceptable
		// depending on where the bisection placed vertex 2.
		t.Fatalf("distortion = %v", got)
	}
	if got := d.Trees[0].CutDistortion(g, nil); got != 1 {
		t.Fatalf("empty set distortion = %v", got)
	}
}

// TestFlowRefineImprovesOrMatches: with identical seeds, the flow-refined
// build's top-level cut is never worse than the FM-only build's on a
// community graph, and all structural invariants still hold.
func TestFlowRefineImprovesOrMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.Community(rng, 2, 12, 0.5, 0.05, 8, 1)
	plain := Build(g, Options{Trees: 3, Seed: 17})
	refined := Build(g, Options{Trees: 3, Seed: 17, FlowRefine: true})
	var plainTop, refinedTop float64
	for i := range plain.Trees {
		if err := refined.Trees[i].T.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := len(refined.Trees[i].T.Leaves()); got != g.N() {
			t.Fatalf("refined tree %d has %d leaves", i, got)
		}
		plainTop += plain.Trees[i].T.EdgeWeight(plain.Trees[i].T.Children(0)[0])
		refinedTop += refined.Trees[i].T.EdgeWeight(refined.Trees[i].T.Children(0)[0])
	}
	if refinedTop > plainTop+1e-9 {
		t.Fatalf("flow refinement worsened top cuts: %v vs %v", refinedTop, plainTop)
	}
}

// TestFlowRefineUnsticksFM: a barbell where the FM balance window traps
// the greedy refinement but the corridor flow finds the bottleneck.
func TestFlowRefineUnsticksFM(t *testing.T) {
	// Two cliques of 6 joined by a single weight-1 edge; heavy clique
	// edges mean single moves across a bad initial split are all
	// negative-gain, while the min cut is obvious.
	g := graph.New(12)
	for side := 0; side < 2; side++ {
		base := side * 6
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				g.AddEdge(base+i, base+j, 10)
			}
		}
	}
	g.AddEdge(5, 6, 1)
	found := false
	for seed := int64(0); seed < 8; seed++ {
		dec := Build(g, Options{Trees: 1, Seed: seed, FlowRefine: true})
		top := dec.Trees[0].T.EdgeWeight(dec.Trees[0].T.Children(0)[0])
		if top == 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("flow refinement never found the weight-1 bottleneck across 8 seeds")
	}
}

// TestMinCutSplitStrategy: trees remain structurally valid, Proposition 1
// still holds, and on a two-community graph the FIRST split is exactly
// the global min cut.
func TestMinCutSplitStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.Community(rng, 2, 8, 0.8, 0.02, 10, 1)
	d := Build(g, Options{Trees: 1, Seed: 3, Strategy: MinCutSplit})
	dt := d.Trees[0]
	if err := dt.T.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(dt.T.Leaves()); got != g.N() {
		t.Fatalf("%d leaves, want %d", got, g.N())
	}
	// The top split's boundary equals the global min cut.
	topChild := dt.T.Children(dt.T.Root())[0]
	if want := mincutGlobal(g); math.Abs(dt.T.EdgeWeight(topChild)-want) > 1e-9 {
		t.Fatalf("top split weight %v != global min cut %v", dt.T.EdgeWeight(topChild), want)
	}
	// Proposition 1 on random subsets.
	for trial := 0; trial < 50; trial++ {
		s := map[int]bool{}
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.4 {
				s[v] = true
			}
		}
		if len(s) == 0 || len(s) == g.N() {
			continue
		}
		if dt.CutDistortion(g, s) < 1-1e-9 {
			t.Fatal("Proposition 1 violated by MinCutSplit tree")
		}
	}
}

// TestFRTStrategy: the FRT decomposition is structurally valid, covers
// all vertices, keeps Proposition 1 (boundary edge weights), and on a
// community graph tends to keep communities together near the top.
func TestFRTStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.Community(rng, 2, 8, 0.8, 0.02, 10, 1)
	d := Build(g, Options{Trees: 2, Seed: 5, Strategy: FRT})
	for ti, dt := range d.Trees {
		if err := dt.T.Validate(); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		if got := len(dt.T.Leaves()); got != g.N() {
			t.Fatalf("tree %d: %d leaves", ti, got)
		}
		// Edge weights are cluster boundaries.
		for v := 1; v < dt.T.N(); v++ {
			want := g.CutWeightSet(clusterOf(dt, v))
			if math.Abs(dt.T.EdgeWeight(v)-want) > 1e-9 {
				t.Fatalf("tree %d node %d: weight %v != boundary %v", ti, v, dt.T.EdgeWeight(v), want)
			}
		}
		// Proposition 1 on random subsets.
		for trial := 0; trial < 40; trial++ {
			s := map[int]bool{}
			for v := 0; v < g.N(); v++ {
				if rng.Float64() < 0.4 {
					s[v] = true
				}
			}
			if len(s) == 0 || len(s) == g.N() {
				continue
			}
			if dt.CutDistortion(g, s) < 1-1e-9 {
				t.Fatal("Proposition 1 violated by FRT tree")
			}
		}
	}
}

func TestFRTSingleton(t *testing.T) {
	g := graph.New(1)
	g.SetDemand(0, 0.4)
	d := Build(g, Options{Strategy: FRT})
	if d.Trees[0].T.N() != 1 || d.Trees[0].T.Demand(0) != 0.4 {
		t.Fatal("singleton FRT tree wrong")
	}
}
