package treedecomp

import (
	"math"

	"hierpart/internal/graph"
)

// Mapping materializes the paper's m_V and m_E functions (§4) for one
// decomposition tree: every tree node gets a representative graph
// vertex, and every tree edge gets a path in G connecting the two
// representatives. Together with the tree's edge weights this yields the
// congestion view of Theorem 6: routing each tree edge's weight along
// its path loads the graph's edges.
type Mapping struct {
	// Rep[t] is m_V(t): the representative graph vertex of tree node t.
	// For leaves it is the leaf's own vertex (the required bijection).
	Rep []int
	// Path[t] is m_E of the edge (parent(t), t): a vertex sequence in G
	// from Rep[parent(t)] to Rep[t]. Path[root] is nil. Paths are empty
	// (not nil) when the endpoints coincide.
	Path [][]int
}

// BuildMapping computes m_V and m_E for the tree over graph g. Internal
// representatives are chosen as the smallest-ID vertex of the node's
// cluster (deterministic); paths are hop-shortest via BFS. Tree edges
// whose endpoints' representatives are disconnected in g keep a nil
// path (possible only for disconnected graphs).
func (d *DecompTree) BuildMapping(g *graph.Graph) *Mapping {
	n := d.T.N()
	m := &Mapping{Rep: make([]int, n), Path: make([][]int, n)}
	// Representatives bottom-up: a leaf is its vertex; an internal node
	// inherits the smallest representative among its children.
	for _, t := range d.T.PostOrder() {
		if d.T.IsLeaf(t) {
			m.Rep[t] = d.T.Label(t)
			continue
		}
		best := -1
		for _, c := range d.T.Children(t) {
			if best == -1 || m.Rep[c] < best {
				best = m.Rep[c]
			}
		}
		m.Rep[t] = best
	}
	for t := 1; t < n; t++ {
		m.Path[t] = bfsPath(g, m.Rep[d.T.Parent(t)], m.Rep[t])
	}
	return m
}

// bfsPath returns a hop-shortest path from s to t (inclusive), an empty
// slice when s == t, or nil when unreachable.
func bfsPath(g *graph.Graph, s, t int) []int {
	if s == t {
		return []int{}
	}
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == t {
			break
		}
		for _, u := range g.SortedNeighbors(v) {
			if prev[u] == -1 {
				prev[u] = v
				queue = append(queue, u)
			}
		}
	}
	if prev[t] == -1 {
		return nil
	}
	var rev []int
	for v := t; v != s; v = prev[v] {
		rev = append(rev, v)
	}
	rev = append(rev, s)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Congestion routes every tree edge's weight w_T(e) along its mapped
// path and returns the maximum relative load over graph edges
// (load / capacity, capacity = edge weight) — the quantity Theorem 6
// bounds by O(log n) for Räcke's distribution. Returns 0 for trees with
// no routable edges.
func (d *DecompTree) Congestion(g *graph.Graph, m *Mapping) float64 {
	load := map[[2]int]float64{}
	for t := 1; t < d.T.N(); t++ {
		w := d.T.EdgeWeight(t)
		p := m.Path[t]
		if w == 0 || len(p) < 2 {
			continue
		}
		for i := 1; i < len(p); i++ {
			a, b := p[i-1], p[i]
			if a > b {
				a, b = b, a
			}
			load[[2]int{a, b}] += w
		}
	}
	worst := 0.0
	for e, l := range load {
		cap := g.Weight(e[0], e[1])
		if cap == 0 {
			return math.Inf(1) // routed over a non-edge: broken path
		}
		if r := l / cap; r > worst {
			worst = r
		}
	}
	return worst
}
