package treedecomp

import (
	"math"
	"math/rand"
	"sort"

	"hierpart/internal/graph"
	"hierpart/internal/tree"
)

// buildFRT constructs a decomposition tree by the
// Fakcharoenphol–Rao–Talwar random hierarchical decomposition over the
// inverse-weight shortest-path metric (heavily-communicating vertices
// are close): draw a random vertex permutation π and a random scale
// β ∈ [1, 2); at each level, with geometrically shrinking radius r,
// every vertex is labeled by the first vertex in π-order within distance
// β·r and clusters split by label. The chain of partitions is laminar by
// construction; FRT guarantees O(log n) expected distance distortion on
// the metric, which experiment E17 relates to the cut distortion the
// pipeline actually cares about. Tree edge weights remain graph
// boundaries, so Proposition 1 is unconditional.
func buildFRT(g *graph.Graph, rng *rand.Rand) *DecompTree {
	n := g.N()
	dt := &DecompTree{
		T:      tree.New(),
		LeafOf: make([]int, n),
	}
	if n == 1 {
		dt.T.SetLabel(0, 0)
		dt.T.SetDemand(0, g.Demand(0))
		dt.LeafOf[0] = 0
		return dt
	}

	// All-pairs distances under the inverse-weight metric.
	dist := make([][]float64, n)
	maxD, minD := 0.0, math.Inf(1)
	for v := 0; v < n; v++ {
		dist[v] = g.ShortestPaths(v, graph.InverseWeightLength)
		for u, d := range dist[v] {
			if u == v || math.IsInf(d, 1) {
				continue
			}
			if d > maxD {
				maxD = d
			}
			if d < minD && d > 0 {
				minD = d
			}
		}
	}
	if maxD == 0 { // no finite distances at all: split arbitrarily
		maxD, minD = 1, 1
	}

	pi := rng.Perm(n)
	beta := 1 + rng.Float64()

	// label(v, r): the first π-vertex within distance r of v (v itself
	// qualifies at radius ≥ 0, so the recursion always terminates).
	label := func(v int, r float64) int {
		for _, u := range pi {
			if dist[u][v] <= r {
				return u
			}
		}
		return v
	}

	// Descend radii from the diameter to below the minimum distance,
	// splitting every current cluster by label and compressing levels
	// that do not split a cluster.
	var attach func(node int, cluster []int, r float64)
	attach = func(node int, cluster []int, r float64) {
		if len(cluster) == 1 {
			v := cluster[0]
			dt.T.SetLabel(node, v)
			dt.T.SetDemand(node, g.Demand(v))
			dt.LeafOf[v] = node
			return
		}
		// Shrink the radius until the cluster actually splits; below the
		// minimum pairwise distance every vertex labels itself.
		for {
			groups := map[int][]int{}
			for _, v := range cluster {
				groups[label(v, beta*r)] = append(groups[label(v, beta*r)], v)
			}
			if len(groups) > 1 {
				keys := make([]int, 0, len(groups))
				for k := range groups {
					keys = append(keys, k)
				}
				sort.Ints(keys)
				for _, k := range keys {
					part := groups[k]
					sort.Ints(part)
					in := make(map[int]bool, len(part))
					for _, v := range part {
						in[v] = true
					}
					w := g.CutWeight(func(v int) bool { return in[v] })
					child := dt.T.AddChild(node, w)
					attach(child, part, r/2)
				}
				return
			}
			r /= 2
			if r < minD/4 {
				// Identical coordinates (zero-distance pair cannot occur
				// with positive lengths, but guard anyway): peel one off.
				first := cluster[:1]
				rest := cluster[1:]
				for _, part := range [][]int{first, rest} {
					in := make(map[int]bool, len(part))
					for _, v := range part {
						in[v] = true
					}
					w := g.CutWeight(func(v int) bool { return in[v] })
					child := dt.T.AddChild(node, w)
					attach(child, part, r)
				}
				return
			}
		}
	}

	all := make([]int, n)
	for v := range all {
		all[v] = v
	}
	attach(dt.T.Root(), all, maxD)
	return dt
}
