package treedecomp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hierpart/internal/gen"
)

// BuildContext with a background context must emit exactly the trees
// Build emits — the context plumbing may not perturb the RNG streams.
func TestBuildContextMatchesBuild(t *testing.T) {
	g := gen.Community(rand.New(rand.NewSource(3)), 4, 8, 0.5, 0.05, 8, 1)
	gen.UniformDemands(rand.New(rand.NewSource(4)), g, 0.1, 0.9)
	opt := Options{Trees: 3, Seed: 7, FMPasses: 2}

	want := Build(g, opt)
	got, err := BuildContext(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trees) != len(want.Trees) {
		t.Fatalf("tree count %d != %d", len(got.Trees), len(want.Trees))
	}
	for i := range got.Trees {
		a, b := got.Trees[i], want.Trees[i]
		if a.T.N() != b.T.N() {
			t.Fatalf("tree %d: node count %d != %d", i, a.T.N(), b.T.N())
		}
		for v := range a.LeafOf {
			if a.LeafOf[v] != b.LeafOf[v] {
				t.Fatalf("tree %d: LeafOf[%d] = %d != %d", i, v, a.LeafOf[v], b.LeafOf[v])
			}
		}
	}
}

func TestBuildContextCancelled(t *testing.T) {
	g := gen.Grid(12, 12, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := BuildContext(ctx, g, Options{Trees: 4, Seed: 1, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestBuildContextExpiredDeadlineReturnsPromptly(t *testing.T) {
	g := gen.Grid(16, 16, 1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := BuildContext(ctx, g, Options{Trees: 8, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("expired-deadline build took %v, want prompt return", el)
	}
}

func TestBuildContextEmptyGraphError(t *testing.T) {
	if _, err := BuildContext(context.Background(), gen.Grid(0, 0, 1), Options{}); err == nil {
		t.Fatal("want error for empty graph")
	}
}
