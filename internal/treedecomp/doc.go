// Package treedecomp embeds a graph into a distribution of decomposition
// trees (§4 of the paper). A decomposition tree T is a hierarchical
// partition of V(G): every tree node is a vertex cluster, leaves are
// single vertices (the node mapping m_V restricted to leaves is the
// bijection the paper requires), and the weight of the edge between a
// cluster and its parent is the total graph weight leaving the cluster —
// exactly the definition under Theorem 6, which makes Proposition 1
// (tree cuts dominate graph cuts) hold by construction for every tree
// this package emits.
//
// Substitution note (documented in DESIGN.md): the paper invokes Räcke's
// optimal congestion-minimizing decomposition (STOC'08), which guarantees
// O(log n) expected cut distortion. Reproducing that machinery
// (multiplicative-weight updates over exponentially many trees) is out of
// scope; instead the distribution is built from randomized recursive
// balanced bisection (BFS-grown seed regions refined with
// Fiduccia–Mattheyses-style moves). The downstream HGPT dynamic program
// is oblivious to the tree's origin, and the realized distortion is
// measured empirically by experiment E7 rather than assumed.
//
// Main entry points: Build constructs a Decomposition (a set of
// DecompTrees with their leaf bijections) from Options; BuildContext is
// the same under a context.Context (deadline/cancellation — what hgpd
// uses). Each tree is built from an independent sub-seeded RNG stream,
// so the distribution is a pure function of the Options and independent
// of the worker count — the property that makes caching decompositions
// by (graph, Options) hash sound.
package treedecomp
