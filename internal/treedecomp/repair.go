package treedecomp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"hierpart/internal/faultinject"
	"hierpart/internal/graph"
	"hierpart/internal/telemetry"
	"hierpart/internal/tree"
)

// DeltaOp enumerates the graph mutations the incremental path accepts.
type DeltaOp int

const (
	// DeltaAddEdge inserts a new edge {U, V} with weight Weight. The
	// edge must not already exist (reweight an existing edge instead).
	DeltaAddEdge DeltaOp = iota
	// DeltaRemoveEdge deletes the existing edge {U, V}; Weight is ignored.
	DeltaRemoveEdge
	// DeltaReweightEdge replaces the weight of the existing edge {U, V}
	// with Weight (> 0). Reweights never change which cuts exist, so the
	// repair keeps every tree's structure verbatim and refreshes only the
	// boundary weights on the two leaf-to-LCA paths — the only clusters
	// whose cut the edge crosses.
	DeltaReweightEdge
	// DeltaReweightVertex sets the demand of vertex U to Weight (≥ 0);
	// V is ignored. Demands do not participate in cut structure, so this
	// delta dirties no decomposition subtree — only the DP tables along
	// the vertex's leaf-to-root chains.
	DeltaReweightVertex
)

// String names the op for logs and error messages.
func (op DeltaOp) String() string {
	switch op {
	case DeltaAddEdge:
		return "add_edge"
	case DeltaRemoveEdge:
		return "remove_edge"
	case DeltaReweightEdge:
		return "reweight_edge"
	case DeltaReweightVertex:
		return "reweight_vertex"
	}
	return fmt.Sprintf("DeltaOp(%d)", int(op))
}

// Delta is one graph mutation. Edge ops read U, V, and (except removal)
// Weight; DeltaReweightVertex reads U and Weight.
type Delta struct {
	Op     DeltaOp
	U, V   int
	Weight float64
}

// structural reports whether the delta can change which cuts exist
// (edge insertion/removal). Reweights — edge or vertex — never do: a
// reweighted edge crosses exactly the cuts it crossed before, only the
// crossing weight moves.
func (d Delta) structural() bool {
	return d.Op == DeltaAddEdge || d.Op == DeltaRemoveEdge
}

// Apply mutates g with the deltas in order, validating each against the
// evolving graph. On error the graph may be partially mutated — apply
// deltas to a scratch clone and swap on success (the hgpd session store
// does exactly this).
func Apply(g *graph.Graph, deltas []Delta) error {
	for i, d := range deltas {
		if err := applyOne(g, d); err != nil {
			return fmt.Errorf("delta #%d (%s): %w", i, d.Op, err)
		}
	}
	return nil
}

func applyOne(g *graph.Graph, d Delta) error {
	n := g.N()
	if d.U < 0 || d.U >= n {
		return fmt.Errorf("vertex %d out of range [0,%d)", d.U, n)
	}
	switch d.Op {
	case DeltaReweightVertex:
		if d.Weight < 0 || d.Weight != d.Weight {
			return fmt.Errorf("invalid demand %v", d.Weight)
		}
		g.SetDemand(d.U, d.Weight)
		return nil
	case DeltaAddEdge, DeltaRemoveEdge, DeltaReweightEdge:
		if d.V < 0 || d.V >= n {
			return fmt.Errorf("vertex %d out of range [0,%d)", d.V, n)
		}
		if d.U == d.V {
			return fmt.Errorf("self-loop on vertex %d", d.U)
		}
	}
	switch d.Op {
	case DeltaAddEdge:
		if g.HasEdge(d.U, d.V) {
			return fmt.Errorf("edge %d-%d already exists", d.U, d.V)
		}
		if d.Weight <= 0 || d.Weight != d.Weight {
			return fmt.Errorf("invalid edge weight %v", d.Weight)
		}
		g.AddEdge(d.U, d.V, d.Weight)
	case DeltaRemoveEdge:
		if !g.RemoveEdge(d.U, d.V) {
			return fmt.Errorf("edge %d-%d does not exist", d.U, d.V)
		}
	case DeltaReweightEdge:
		if !g.HasEdge(d.U, d.V) {
			return fmt.Errorf("edge %d-%d does not exist", d.U, d.V)
		}
		if d.Weight <= 0 || d.Weight != d.Weight {
			return fmt.Errorf("invalid edge weight %v", d.Weight)
		}
		g.SetEdgeWeight(d.U, d.V, d.Weight)
	default:
		return fmt.Errorf("unknown op %d", int(d.Op))
	}
	return nil
}

// RepairStats reports how much of the old decomposition a Repair reused.
type RepairStats struct {
	// Trees is the number of decomposition trees processed.
	Trees int
	// DirtySubtrees counts the minimal subtrees that were rebuilt.
	DirtySubtrees int
	// NodesReused and NodesRebuilt partition the nodes of the repaired
	// trees by whether they were copied verbatim from the old tree or
	// produced by a fresh split recursion.
	NodesReused  int
	NodesRebuilt int
	// NodesReweighted counts reused nodes whose boundary weight was
	// recomputed from the new graph because a reweighted edge crosses
	// their cut (a subset of NodesReused; structure still copied).
	NodesReweighted int
	// TreeReweightUp[i] is the total boundary-weight increase over tree
	// i's reweighted nodes: Σ max(0, new − old). TreeStructural[i]
	// reports whether any subtree of tree i was rebuilt (a structural
	// delta, or the FRT whole-tree rebuild). DemandsChanged reports
	// whether any delta touched a vertex demand. Together these certify
	// a warm-solve cost ceiling: when TreeStructural[i] and
	// DemandsChanged are both false, the previous solve's optimal
	// relaxed family is still feasible on repaired tree i (structure and
	// demands unchanged), and a tree edge of weight w is charged at most
	// twice per hierarchy level — Σ_k 2·Δ(k) = CM(0) − CM(h) — so the
	// new tree optimum is at most
	// prevDPCost_i + TreeReweightUp[i]·(CM(0) − CM(h)).
	// See hgp.WarmBoundsAfterRepair.
	TreeReweightUp []float64
	TreeStructural []bool
	DemandsChanged bool
}

// ReusedFrac returns the fraction of output tree nodes copied verbatim.
func (s *RepairStats) ReusedFrac() float64 {
	total := s.NodesReused + s.NodesRebuilt
	if total == 0 {
		return 0
	}
	return float64(s.NodesReused) / float64(total)
}

// Repair produces a decomposition of g — the graph *after* the deltas
// were applied — by surgically rebuilding only the subtrees of dec whose
// cut structure a delta could have touched, and copying every other
// subtree verbatim (leaf demands refreshed from g).
//
// The minimal dirty subtree for an edge insertion/removal on {u, v} is
// the one rooted at LCA_T(leaf(u), leaf(v)): every tree node outside it
// has either both endpoints or neither inside its cluster, so its
// boundary weight — the tree edge weight Proposition 1 relies on — is
// unchanged. Ancestor splits were optimized under the old weights; that
// staleness is a quality (not correctness) effect, quantified by
// experiment E26.
//
// Edge reweights are cheaper still: they cannot change which cuts
// exist, so no subtree is rebuilt at all. The tree structure is copied
// verbatim and only the nodes on the two leaf-to-LCA paths — the
// clusters whose cut the edge crosses — get their boundary weight
// recomputed exactly from the new graph. Demand-only deltas dirty
// nothing structurally.
//
// Dirty subtrees are rebuilt with the same split recursion as Build
// under a fresh deterministic RNG derived from (opt.Seed, tree index,
// epoch) — the same per-tree sub-seed derivation as Build folded with
// the caller's epoch (the session graph version), so a repair is
// reproducible without replaying Build's RNG stream (RNGStreamVersion
// is untouched). A repaired decomposition is therefore a valid sample,
// not bit-identical to a cold Build of g.
//
// The FRT strategy's cut structure depends on global shortest-path
// distances, so any structural delta rebuilds FRT trees whole — correct
// but with no reuse; the serving path uses BalancedBisection.
//
// dec must describe a graph with the same vertex count as g (vertex
// additions/removals need a cold Build). dec is not mutated.
func Repair(ctx context.Context, g *graph.Graph, dec *Decomposition, deltas []Delta, opt Options, epoch int64) (*Decomposition, *RepairStats, error) {
	if g.N() == 0 {
		return nil, nil, errors.New("empty graph")
	}
	if dec == nil || len(dec.Trees) == 0 {
		return nil, nil, errors.New("treedecomp: repair of empty decomposition")
	}
	start := time.Now()
	var dirtyEdges, reweightEdges [][2]int
	demandsChanged := false
	for i, d := range deltas {
		if d.Op == DeltaReweightVertex {
			if d.U < 0 || d.U >= g.N() {
				return nil, nil, fmt.Errorf("treedecomp: delta #%d: vertex %d out of range", i, d.U)
			}
			demandsChanged = true
			continue
		}
		if d.U < 0 || d.U >= g.N() || d.V < 0 || d.V >= g.N() || d.U == d.V {
			return nil, nil, fmt.Errorf("treedecomp: delta #%d: bad edge %d-%d", i, d.U, d.V)
		}
		if d.structural() {
			dirtyEdges = append(dirtyEdges, [2]int{d.U, d.V})
		} else {
			reweightEdges = append(reweightEdges, [2]int{d.U, d.V})
		}
	}

	nTrees := len(dec.Trees)
	passes := opt.FMPasses
	if passes == 0 {
		passes = 4
	}
	// Reproduce Build's up-front per-tree sub-seeds, then fold the epoch
	// in so successive repairs of the same session draw fresh streams.
	seedRNG := rand.New(rand.NewSource(opt.Seed))
	seeds := make([]int64, nTrees)
	for i := range seeds {
		seeds[i] = mixSeed(seedRNG.Int63(), epoch)
	}

	out := &Decomposition{Trees: make([]*DecompTree, nTrees)}
	stats := &RepairStats{
		Trees:          nTrees,
		TreeReweightUp: make([]float64, nTrees),
		TreeStructural: make([]bool, nTrees),
		DemandsChanged: demandsChanged,
	}
	for i, old := range dec.Trees {
		if len(old.LeafOf) != g.N() {
			return nil, nil, fmt.Errorf("treedecomp: tree %d describes %d vertices, graph has %d (vertex deltas need a cold build)", i, len(old.LeafOf), g.N())
		}
		nt, err := repairOne(ctx, g, old, i, dirtyEdges, reweightEdges, rand.New(rand.NewSource(seeds[i])), passes, opt, stats)
		if err != nil {
			return nil, nil, fmt.Errorf("treedecomp: tree %d: %w", i, err)
		}
		out.Trees[i] = nt
	}
	telemetry.ObserveDuration("phase_repair_seconds", time.Since(start))
	return out, stats, nil
}

// mixSeed folds an epoch into a tree sub-seed deterministically.
func mixSeed(seed, epoch int64) int64 {
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(epoch))
	h.Write(b[:])
	return int64(h.Sum64() >> 1)
}

func repairOne(ctx context.Context, g *graph.Graph, old *DecompTree, ti int, dirtyEdges, reweightEdges [][2]int, rng *rand.Rand, passes int, opt Options, stats *RepairStats) (*DecompTree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// FRT cut structure is a function of global distances: a single edge
	// delta — reweights included — perturbs shortest paths arbitrarily
	// far away, so localized repair would be unsound. Rebuild whole
	// (demand-only deltas still copy: FRT structure ignores demands).
	if opt.Strategy == FRT && len(dirtyEdges)+len(reweightEdges) > 0 {
		if err := faultinject.Fire(ctx, faultinject.DecompRepair); err != nil {
			return nil, err
		}
		stats.DirtySubtrees++
		stats.TreeStructural[ti] = true
		dt := buildFRT(g, rng)
		stats.NodesRebuilt += dt.T.N()
		return dt, nil
	}

	dirty := dirtyRoots(old, dirtyEdges)
	wdirty := reweightPathNodes(old, reweightEdges)
	if len(wdirty) > 0 {
		if err := faultinject.Fire(ctx, faultinject.DecompRepair); err != nil {
			return nil, err
		}
	}
	nt := &DecompTree{T: tree.New(), LeafOf: make([]int, g.N())}
	b := &builder{ctx: ctx, g: g, rng: rng, passes: passes, flowRef: opt.FlowRefine, strat: opt.Strategy, dt: nt}

	var walk func(oldNode, newNode int) error
	walk = func(oldNode, newNode int) error {
		if dirty[oldNode] {
			if err := faultinject.Fire(ctx, faultinject.DecompRepair); err != nil {
				return err
			}
			stats.DirtySubtrees++
			stats.TreeStructural[ti] = true
			before := nt.T.N()
			if err := b.attach(newNode, subtreeVertices(old, oldNode)); err != nil {
				return err
			}
			stats.NodesRebuilt += nt.T.N() - before + 1 // +1: the dirty root itself
			return nil
		}
		stats.NodesReused++
		if old.T.IsLeaf(oldNode) {
			v := old.T.Label(oldNode)
			nt.T.SetLabel(newNode, v)
			nt.T.SetDemand(newNode, g.Demand(v)) // refresh: demand deltas land here
			nt.LeafOf[v] = newNode
			return nil
		}
		for _, c := range old.T.Children(oldNode) {
			// Boundary weights of clean nodes are unchanged by construction
			// (both delta endpoints sit on one side of every clean cut), so
			// the old edge weight is exact for the new graph. Nodes whose
			// cut a reweighted edge crosses get their boundary recomputed
			// exactly from the new graph instead.
			w := old.T.EdgeWeight(c)
			if wdirty[c] {
				w = graphBoundary(g, subtreeVertices(old, c))
				stats.NodesReweighted++
				if up := w - old.T.EdgeWeight(c); up > 0 {
					stats.TreeReweightUp[ti] += up
				}
			}
			nc := nt.T.AddChild(newNode, w)
			if err := walk(c, nc); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(old.T.Root(), nt.T.Root()); err != nil {
		return nil, err
	}
	return nt, nil
}

// reweightPathNodes marks every old-tree node whose cluster contains
// exactly one endpoint of a reweighted edge — the nodes on the two
// leaf-to-LCA paths, LCA excluded (it contains both endpoints, so its
// boundary is untouched). These are precisely the clusters whose cut
// the edge crosses, hence the only boundary weights a reweight moves.
func reweightPathNodes(old *DecompTree, reweightEdges [][2]int) map[int]bool {
	if len(reweightEdges) == 0 {
		return nil
	}
	t := old.T
	depth := make([]int, t.N())
	for v := 1; v < t.N(); v++ {
		depth[v] = depth[t.Parent(v)] + 1
	}
	marked := map[int]bool{}
	for _, e := range reweightEdges {
		a, b := old.LeafOf[e[0]], old.LeafOf[e[1]]
		for depth[a] > depth[b] {
			marked[a] = true
			a = t.Parent(a)
		}
		for depth[b] > depth[a] {
			marked[b] = true
			b = t.Parent(b)
		}
		for a != b {
			marked[a], marked[b] = true, true
			a, b = t.Parent(a), t.Parent(b)
		}
	}
	return marked
}

// graphBoundary returns the exact total weight leaving the vertex set
// in g (the tree edge weight contract checkDecompValid pins).
func graphBoundary(g *graph.Graph, vs []int) float64 {
	in := make([]bool, g.N())
	for _, v := range vs {
		in[v] = true
	}
	return g.CutWeight(func(v int) bool { return in[v] })
}

// dirtyRoots marks the minimal antichain of old-tree nodes whose
// subtrees a structural delta dirties: per edge the LCA of its two
// endpoint leaves, with nested roots collapsed into their outermost
// ancestor.
func dirtyRoots(old *DecompTree, dirtyEdges [][2]int) map[int]bool {
	if len(dirtyEdges) == 0 {
		return nil
	}
	t := old.T
	depth := make([]int, t.N())
	for v := 1; v < t.N(); v++ {
		depth[v] = depth[t.Parent(v)] + 1
	}
	lca := func(a, b int) int {
		for depth[a] > depth[b] {
			a = t.Parent(a)
		}
		for depth[b] > depth[a] {
			b = t.Parent(b)
		}
		for a != b {
			a, b = t.Parent(a), t.Parent(b)
		}
		return a
	}
	roots := map[int]bool{}
	for _, e := range dirtyEdges {
		roots[lca(old.LeafOf[e[0]], old.LeafOf[e[1]])] = true
	}
	// Antichain reduction: drop roots nested under other roots.
	for r := range roots {
		for p := t.Parent(r); p >= 0; p = t.Parent(p) {
			if roots[p] {
				delete(roots, r)
				break
			}
		}
	}
	return roots
}

// subtreeVertices returns the sorted graph vertices under a tree node.
func subtreeVertices(dt *DecompTree, node int) []int {
	var vs []int
	stack := []int{node}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if dt.T.IsLeaf(v) {
			vs = append(vs, dt.T.Label(v))
			continue
		}
		stack = append(stack, dt.T.Children(v)...)
	}
	sort.Ints(vs)
	return vs
}
