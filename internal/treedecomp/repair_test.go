package treedecomp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"hierpart/internal/faultinject"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
)

// applyToClone clones g, applies the deltas, and fails the test on error.
func applyToClone(t *testing.T, g *graph.Graph, deltas []Delta) *graph.Graph {
	t.Helper()
	c := g.Clone()
	if err := Apply(c, deltas); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("post-delta graph invalid: %v", err)
	}
	return c
}

// checkDecompValid asserts the structural contract a solve relies on:
// valid trees, a correct LeafOf bijection, demands matching the graph,
// and every tree edge weight equal to the exact graph boundary of its
// child cluster (Proposition 1's precondition).
func checkDecompValid(t *testing.T, g *graph.Graph, d *Decomposition) {
	t.Helper()
	for i, dt := range d.Trees {
		if err := dt.T.Validate(); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if len(dt.LeafOf) != g.N() {
			t.Fatalf("tree %d: LeafOf has %d entries, want %d", i, len(dt.LeafOf), g.N())
		}
		seen := map[int]bool{}
		for v := 0; v < g.N(); v++ {
			leaf := dt.LeafOf[v]
			if !dt.T.IsLeaf(leaf) || dt.T.Label(leaf) != v {
				t.Fatalf("tree %d: LeafOf[%d]=%d is not v's leaf", i, v, leaf)
			}
			if seen[leaf] {
				t.Fatalf("tree %d: leaf %d mapped twice", i, leaf)
			}
			seen[leaf] = true
			if got, want := dt.T.Demand(leaf), g.Demand(v); got != want {
				t.Fatalf("tree %d vertex %d: leaf demand %v, graph demand %v", i, v, got, want)
			}
		}
		for v := 1; v < dt.T.N(); v++ {
			in := clusterOf(dt, v)
			want := g.CutWeightSet(in)
			if got := dt.T.EdgeWeight(v); got != want {
				t.Fatalf("tree %d node %d: edge weight %v, boundary %v", i, v, got, want)
			}
		}
	}
}

func TestRepairValidAcrossDeltaKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.Community(rng, 4, 12, 0.5, 0.05, 6, 1)
	gen.UniformDemands(rng, g, 0.5, 1.5)
	opt := Options{Trees: 4, Seed: 42, Workers: 1}
	dec := Build(g, opt)

	es := g.Edges()
	cases := []struct {
		name   string
		deltas []Delta
	}{
		{"reweight_one_edge", []Delta{{Op: DeltaReweightEdge, U: es[3].U, V: es[3].V, Weight: es[3].Weight * 3}}},
		{"remove_one_edge", []Delta{{Op: DeltaRemoveEdge, U: es[5].U, V: es[5].V}}},
		{"add_one_edge", []Delta{{Op: DeltaAddEdge, U: 0, V: g.N() - 1, Weight: 2.5}}},
		{"demand_only", []Delta{{Op: DeltaReweightVertex, U: 7, Weight: 9}}},
		{"mixed_batch", []Delta{
			{Op: DeltaReweightEdge, U: es[0].U, V: es[0].V, Weight: 0.25},
			{Op: DeltaRemoveEdge, U: es[9].U, V: es[9].V},
			{Op: DeltaAddEdge, U: 1, V: g.N() - 2, Weight: 1.25},
			{Op: DeltaReweightVertex, U: 3, Weight: 0.1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gNew := applyToClone(t, g, tc.deltas)
			rep, stats, err := Repair(context.Background(), gNew, dec, tc.deltas, opt, 1)
			if err != nil {
				t.Fatalf("Repair: %v", err)
			}
			checkDecompValid(t, gNew, rep)
			if stats.Trees != opt.Trees {
				t.Fatalf("stats.Trees = %d, want %d", stats.Trees, opt.Trees)
			}
			structural := false
			for _, d := range tc.deltas {
				structural = structural || d.structural()
			}
			if structural && stats.DirtySubtrees == 0 {
				t.Fatalf("structural deltas repaired no subtree: %+v", stats)
			}
			if !structural && (stats.DirtySubtrees != 0 || stats.NodesRebuilt != 0) {
				t.Fatalf("demand-only delta rebuilt nodes: %+v", stats)
			}
		})
	}
}

// TestRepairReusesCleanSubtrees pins the minimality claim: a single
// edge reweight rebuilds nothing — every tree keeps its structure
// verbatim, and only the boundary weights on the two leaf-to-LCA paths
// are refreshed from the new graph.
func TestRepairReusesCleanSubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.Community(rng, 8, 8, 0.6, 0.02, 8, 1)
	gen.EqualDemands(g, 1)
	opt := Options{Trees: 4, Seed: 5, Workers: 1}
	dec := Build(g, opt)

	// Reweight an intra-block edge: endpoints are communication-heavy
	// neighbors, so their per-tree LCA should sit deep in the tree.
	var d Delta
	for _, e := range g.Edges() {
		if e.U/8 == e.V/8 {
			d = Delta{Op: DeltaReweightEdge, U: e.U, V: e.V, Weight: e.Weight * 2}
			break
		}
	}
	gNew := applyToClone(t, g, []Delta{d})
	rep, stats, err := Repair(context.Background(), gNew, dec, []Delta{d}, opt, 1)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	checkDecompValid(t, gNew, rep)
	if stats.NodesRebuilt != 0 || stats.DirtySubtrees != 0 {
		t.Fatalf("single-edge reweight rebuilt nodes: %+v", stats)
	}
	if frac := stats.ReusedFrac(); frac != 1 {
		t.Fatalf("single-edge reweight reused only %.2f of nodes (%+v)", frac, stats)
	}
	if stats.NodesReweighted == 0 {
		t.Fatalf("reweight crossed no cut: %+v", stats)
	}
	// Structure must be copied bit-identically: same node count, same
	// parents, same labels — only path boundary weights may move.
	for i := range rep.Trees {
		ta, tb := dec.Trees[i].T, rep.Trees[i].T
		if ta.N() != tb.N() {
			t.Fatalf("tree %d: node count changed %d -> %d", i, ta.N(), tb.N())
		}
		for v := 0; v < ta.N(); v++ {
			if ta.Label(v) != tb.Label(v) {
				t.Fatalf("tree %d node %d: label changed", i, v)
			}
			if v > 0 && ta.Parent(v) != tb.Parent(v) {
				t.Fatalf("tree %d node %d: parent changed", i, v)
			}
		}
	}
}

func TestRepairDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(rng, 48, 0.12, 4)
	gen.UniformDemands(rng, g, 0.5, 1)
	opt := Options{Trees: 3, Seed: 9, Workers: 1}
	dec := Build(g, opt)
	es := g.Edges()
	deltas := []Delta{{Op: DeltaReweightEdge, U: es[1].U, V: es[1].V, Weight: 7}}
	gNew := applyToClone(t, g, deltas)

	a, _, err := Repair(context.Background(), gNew, dec, deltas, opt, 4)
	if err != nil {
		t.Fatalf("Repair a: %v", err)
	}
	b, _, err := Repair(context.Background(), gNew, dec, deltas, opt, 4)
	if err != nil {
		t.Fatalf("Repair b: %v", err)
	}
	sameDecomp(t, a, b)

	// A different epoch redraws the dirty subtrees from a fresh stream —
	// the clean parts still match the original decomposition verbatim.
	c, _, err := Repair(context.Background(), gNew, dec, deltas, opt, 5)
	if err != nil {
		t.Fatalf("Repair c: %v", err)
	}
	checkDecompValid(t, gNew, c)
}

// TestRepairDemandOnlyKeepsStructure: demand deltas must copy structure
// bit-identically with only leaf demands refreshed.
func TestRepairDemandOnlyKeepsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.Grid(6, 6, 2)
	gen.UniformDemands(rng, g, 1, 2)
	opt := Options{Trees: 2, Seed: 13, Workers: 1}
	dec := Build(g, opt)
	deltas := []Delta{{Op: DeltaReweightVertex, U: 17, Weight: 5}}
	gNew := applyToClone(t, g, deltas)

	rep, _, err := Repair(context.Background(), gNew, dec, deltas, opt, 1)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	for i := range rep.Trees {
		ta, tb := dec.Trees[i].T, rep.Trees[i].T
		if ta.N() != tb.N() {
			t.Fatalf("tree %d: node count changed %d -> %d", i, ta.N(), tb.N())
		}
		for v := 0; v < ta.N(); v++ {
			if ta.Label(v) != tb.Label(v) {
				t.Fatalf("tree %d node %d: label changed", i, v)
			}
			if v > 0 && (ta.Parent(v) != tb.Parent(v) || ta.EdgeWeight(v) != tb.EdgeWeight(v)) {
				t.Fatalf("tree %d node %d: structure changed", i, v)
			}
		}
	}
	if got := rep.Trees[0].T.Demand(rep.Trees[0].LeafOf[17]); got != 5 {
		t.Fatalf("demand not refreshed: %v", got)
	}
	checkDecompValid(t, gNew, rep)
}

func TestRepairFRTRebuildsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ErdosRenyi(rng, 24, 0.2, 3)
	gen.EqualDemands(g, 1)
	opt := Options{Trees: 2, Seed: 31, Strategy: FRT, Workers: 1}
	dec := Build(g, opt)
	es := g.Edges()
	deltas := []Delta{{Op: DeltaReweightEdge, U: es[0].U, V: es[0].V, Weight: 9}}
	gNew := applyToClone(t, g, deltas)
	rep, stats, err := Repair(context.Background(), gNew, dec, deltas, opt, 1)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	checkDecompValid(t, gNew, rep)
	if stats.NodesReused != 0 {
		t.Fatalf("FRT repair reused %d nodes; distances are global, must rebuild whole", stats.NodesReused)
	}
}

func TestRepairRejectsVertexCountMismatch(t *testing.T) {
	g := gen.Grid(4, 4, 1)
	gen.EqualDemands(g, 1)
	opt := Options{Trees: 1, Seed: 1, Workers: 1}
	dec := Build(g, opt)
	g2 := g.Clone()
	g2.AddVertex(1)
	if _, _, err := Repair(context.Background(), g2, dec, nil, opt, 1); err == nil {
		t.Fatal("Repair accepted a decomposition for a different vertex count")
	}
}

func TestRepairFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.ErdosRenyi(rng, 32, 0.15, 3)
	gen.EqualDemands(g, 1)
	opt := Options{Trees: 2, Seed: 17, Workers: 1}
	dec := Build(g, opt)
	es := g.Edges()
	deltas := []Delta{{Op: DeltaReweightEdge, U: es[2].U, V: es[2].V, Weight: 8}}
	gNew := applyToClone(t, g, deltas)

	boom := errors.New("boom")
	in := faultinject.New(1).On(faultinject.DecompRepair, faultinject.Fault{Prob: 1, Err: boom})
	restore := faultinject.Activate(in)
	defer restore()
	if _, _, err := Repair(context.Background(), gNew, dec, deltas, opt, 1); !errors.Is(err, boom) {
		t.Fatalf("Repair error = %v, want injected fault", err)
	}
	if in.Visits(faultinject.DecompRepair) == 0 {
		t.Fatal("DecompRepair point never consulted")
	}
}

func TestApplyValidation(t *testing.T) {
	g := gen.Grid(3, 3, 1)
	bad := [][]Delta{
		{{Op: DeltaAddEdge, U: 0, V: 1, Weight: 1}},                            // exists
		{{Op: DeltaAddEdge, U: 0, V: 4, Weight: 0}},                            // zero weight
		{{Op: DeltaAddEdge, U: 0, V: 4, Weight: math.NaN()}},                   // NaN
		{{Op: DeltaRemoveEdge, U: 0, V: 8}},                                    // absent
		{{Op: DeltaReweightEdge, U: 0, V: 8, Weight: 1}},                       // absent
		{{Op: DeltaReweightEdge, U: 0, V: 1, Weight: -1}},                      // negative
		{{Op: DeltaReweightVertex, U: 99, Weight: 1}},                          // out of range
		{{Op: DeltaReweightVertex, U: 0, Weight: -2}},                          // negative demand
		{{Op: DeltaAddEdge, U: 2, V: 2, Weight: 1}},                            // self-loop
		{{Op: DeltaOp(99), U: 0, V: 1, Weight: 1}},                             // unknown op
		{{Op: DeltaRemoveEdge, U: 0, V: 1}, {Op: DeltaRemoveEdge, U: 0, V: 1}}, // double remove
	}
	for i, deltas := range bad {
		if err := Apply(g.Clone(), deltas); err == nil {
			t.Fatalf("case %d: Apply accepted invalid deltas %+v", i, deltas)
		}
	}
	// A valid batch that exercises every op in sequence.
	ok := []Delta{
		{Op: DeltaRemoveEdge, U: 0, V: 1},
		{Op: DeltaAddEdge, U: 0, V: 1, Weight: 3},
		{Op: DeltaReweightEdge, U: 0, V: 1, Weight: 4},
		{Op: DeltaReweightVertex, U: 5, Weight: 2},
	}
	c := g.Clone()
	if err := Apply(c, ok); err != nil {
		t.Fatalf("Apply valid batch: %v", err)
	}
	if c.Weight(0, 1) != 4 || c.Demand(5) != 2 {
		t.Fatal("deltas not applied")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
