package treedecomp

import (
	"sort"

	"hierpart/internal/flow"
	"hierpart/internal/graph"
)

// flowRefine improves a bisection of a cluster with a corridor max-flow
// (the technique KaFFPa-style partitioners use on top of FM): vertices
// within two hops of the current cut form a corridor; everything deeper
// on each side is contracted into a terminal; the minimum s-t cut inside
// the corridor is the cheapest cut reachable without moving the far
// interiors. The result is adopted only when it lowers the cut weight
// and keeps both sides within [minFrac, maxFrac] of the cluster weight.
//
// side maps cluster vertices to true (left) / false (right) and is
// updated in place on success. Reports whether a change was made.
func flowRefine(g *graph.Graph, cluster []int, side map[int]bool, wgt func(int) float64, totalW, minFrac, maxFrac float64) bool {
	inCluster := make(map[int]bool, len(cluster))
	for _, v := range cluster {
		inCluster[v] = true
	}
	// Current cut weight and boundary vertices.
	var cutW float64
	boundary := map[int]bool{}
	for _, v := range cluster {
		g.Neighbors(v, func(u int, w float64) {
			if inCluster[u] && side[u] != side[v] {
				boundary[v] = true
				if v < u {
					cutW += w
				}
			}
		})
	}
	if len(boundary) == 0 {
		return false
	}
	// Corridor: vertices within 2 hops of the boundary (inside cluster).
	corridor := map[int]bool{}
	frontier := make([]int, 0, len(boundary))
	for v := range boundary {
		corridor[v] = true
		frontier = append(frontier, v)
	}
	sort.Ints(frontier)
	for hop := 0; hop < 2; hop++ {
		var next []int
		for _, v := range frontier {
			g.Neighbors(v, func(u int, _ float64) {
				if inCluster[u] && !corridor[u] {
					corridor[u] = true
					next = append(next, u)
				}
			})
		}
		sort.Ints(next)
		frontier = next
	}

	// Network: corridor vertices plus two terminals. IDs: 0 = source
	// (contracted deep-left), 1 = sink (contracted deep-right),
	// 2.. = corridor.
	id := map[int]int{}
	var order []int
	for _, v := range cluster {
		if corridor[v] {
			id[v] = 2 + len(order)
			order = append(order, v)
		}
	}
	net := flow.NewNetwork(2 + len(order))
	for _, v := range order {
		g.Neighbors(v, func(u int, w float64) {
			if !inCluster[u] {
				return
			}
			if corridor[u] {
				if v < u {
					net.AddEdge(id[v], id[u], w)
				}
				return
			}
			// Edge to a contracted interior.
			if side[u] {
				net.AddEdge(0, id[v], w)
			} else {
				net.AddEdge(id[v], 1, w)
			}
		})
	}
	newCut := net.MaxFlow(0, 1)
	if newCut >= cutW-1e-12 {
		return false
	}
	srcSide := net.MinCutSide(0)

	// Tentative new sides: interiors keep theirs, corridor follows flow.
	newSide := func(v int) bool {
		if corridor[v] {
			return srcSide[id[v]]
		}
		return side[v]
	}
	var leftW float64
	leftCount := 0
	for _, v := range cluster {
		if newSide(v) {
			leftW += wgt(v)
			leftCount++
		}
	}
	if leftW < totalW*minFrac || leftW > totalW*maxFrac ||
		leftCount == 0 || leftCount == len(cluster) {
		return false
	}
	for _, v := range cluster {
		side[v] = newSide(v)
	}
	return true
}
