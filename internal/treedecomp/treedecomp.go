package treedecomp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"hierpart/internal/faultinject"
	"hierpart/internal/fm"
	"hierpart/internal/graph"
	"hierpart/internal/mincut"
	"hierpart/internal/telemetry"
	"hierpart/internal/tree"
)

// RNGStreamVersion identifies the per-seed randomness stream of Build:
// two builds with equal Options produce bit-identical decompositions
// only when they ran under the same stream version. Bump it whenever
// the mapping from (Seed, Options) to the emitted tree distribution
// changes (the per-tree sub-seed derivation, the bisection RNG
// consumption order, …). Persistent caches of decompositions key their
// snapshots on this so a binary with a different stream never serves
// another version's trees as its own (internal/cache/diskstore).
//
// Version history: 1 = seed-chained tree RNGs (PR 0); 2 = per-tree
// sub-seeded streams + sorted BarabasiAlbert attachment iteration
// (PR 1).
const RNGStreamVersion = 2

// Strategy selects how clusters are split during tree construction.
type Strategy int

const (
	// BalancedBisection (default) grows a BFS region to half the demand
	// and refines it with Fiduccia–Mattheyses — balanced, shallow trees.
	BalancedBisection Strategy = iota
	// MinCutSplit divides every cluster along its global minimum cut
	// (Stoer–Wagner), ignoring balance: cut-faithful but potentially
	// deep, unbalanced trees. Experiment E17 compares the strategies.
	MinCutSplit
	// FRT builds the Fakcharoenphol–Rao–Talwar random hierarchical
	// decomposition over the inverse-weight shortest-path metric —
	// the classic O(log n)-distortion tree-metric construction.
	FRT
)

// Options configures Build.
type Options struct {
	// Trees is the number of decomposition trees in the distribution
	// (each gets multiplier 1/Trees). Zero means 1.
	Trees int
	// Seed makes the randomized bisections reproducible.
	Seed int64
	// FMPasses is the number of refinement sweeps per bisection.
	// Zero means 4.
	FMPasses int
	// FlowRefine additionally polishes each bisection with a corridor
	// max-flow cut (see flowRefine) — slower, usually lower tree-edge
	// weights (ablation E16 quantifies the trade).
	FlowRefine bool
	// Strategy selects the cluster-splitting rule.
	Strategy Strategy
	// Workers bounds the number of trees built concurrently. Zero means
	// GOMAXPROCS; 1 forces sequential construction. Tree i's randomness
	// comes from a sub-seed derived up front from Seed, so the emitted
	// distribution is identical at every worker count.
	Workers int
}

// DecompTree is one decomposition tree of G.
type DecompTree struct {
	// T is the tree: leaves carry the demand of their graph vertex and
	// their Label is the graph vertex ID (the paper's m_V bijection).
	T *tree.Tree
	// LeafOf maps each graph vertex to its leaf node in T (the paper's
	// m'_V, the inverse of m_V on leaves).
	LeafOf []int
}

// Decomposition is a uniform distribution over decomposition trees.
type Decomposition struct {
	Trees []*DecompTree
}

// Build constructs opt.Trees randomized decomposition trees of g on a
// worker pool (see Options.Workers). Every tree draws from its own
// sub-seeded RNG, derived from opt.Seed before any construction starts:
// tree i's randomness no longer depends on trees 0..i−1, which is what
// makes the build order — and therefore the worker count — irrelevant
// to the result. It panics if g has no vertices. Cancellable callers
// (servers with per-request deadlines) should use BuildContext instead.
func Build(g *graph.Graph, opt Options) *Decomposition {
	d, err := BuildContext(context.Background(), g, opt)
	if err != nil {
		// Background contexts never cancel, so the only error is the
		// empty-graph precondition — keep Build's historical contract.
		panic("treedecomp: " + err.Error())
	}
	return d
}

// BuildContext is Build with cancellation: construction stops at the
// next cluster split once ctx is done and the context's error is
// returned, so a caller whose deadline expired (or whose client hung
// up) stops burning CPU mid-decomposition. An empty graph is an error
// rather than a panic. On success the build duration is recorded in
// telemetry.Default under phase_decompose_seconds.
func BuildContext(ctx context.Context, g *graph.Graph, opt Options) (*Decomposition, error) {
	if g.N() == 0 {
		return nil, errors.New("empty graph")
	}
	start := time.Now()
	nTrees := opt.Trees
	if nTrees == 0 {
		nTrees = 1
	}
	passes := opt.FMPasses
	if passes == 0 {
		passes = 4
	}
	seedRNG := rand.New(rand.NewSource(opt.Seed))
	seeds := make([]int64, nTrees)
	for i := range seeds {
		seeds[i] = seedRNG.Int63()
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nTrees {
		workers = nTrees
	}
	d := &Decomposition{Trees: make([]*DecompTree, nTrees)}
	errs := make([]error, nTrees)
	build := func(i int) {
		// A panic while building one tree (a construction bug, or an
		// injected fault) must not kill the process when trees build on
		// worker goroutines — it surfaces as that tree's error instead.
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("treedecomp: tree %d: panic: %v", i, r)
			}
		}()
		d.Trees[i], errs[i] = buildOne(ctx, g, rand.New(rand.NewSource(seeds[i])), passes, opt.FlowRefine, opt.Strategy)
	}
	if workers == 1 {
		for i := 0; i < nTrees; i++ {
			build(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					build(i)
				}
			}()
		}
		for i := 0; i < nTrees; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	telemetry.ObserveDuration("phase_decompose_seconds", time.Since(start))
	return d, nil
}

func buildOne(ctx context.Context, g *graph.Graph, rng *rand.Rand, passes int, flowRef bool, strat Strategy) (*DecompTree, error) {
	if strat == FRT {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Fire(ctx, faultinject.TreedecompSplit); err != nil {
			return nil, err
		}
		return buildFRT(g, rng), nil
	}
	dt := &DecompTree{
		T:      tree.New(),
		LeafOf: make([]int, g.N()),
	}
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	b := &builder{ctx: ctx, g: g, rng: rng, passes: passes, flowRef: flowRef, strat: strat, dt: dt}
	if err := b.attach(dt.T.Root(), all); err != nil {
		return nil, err
	}
	return dt, nil
}

type builder struct {
	ctx     context.Context
	g       *graph.Graph
	rng     *rand.Rand
	passes  int
	flowRef bool
	strat   Strategy
	dt      *DecompTree
}

// attach populates the subtree rooted at the (already created) tree node
// for the given cluster. For singleton clusters the node *is* the leaf;
// callers create child nodes with the correct boundary edge weight.
// Cancellation is polled once per cluster, the unit of bisection work.
func (b *builder) attach(node int, cluster []int) error {
	if err := b.ctx.Err(); err != nil {
		return err
	}
	if err := faultinject.Fire(b.ctx, faultinject.TreedecompSplit); err != nil {
		return err
	}
	if len(cluster) == 1 {
		v := cluster[0]
		b.dt.T.SetLabel(node, v)
		b.dt.T.SetDemand(node, b.g.Demand(v))
		b.dt.LeafOf[v] = node
		return nil
	}
	left, right := b.bisect(cluster)
	for _, part := range [][]int{left, right} {
		w := b.boundary(part)
		child := b.dt.T.AddChild(node, w)
		if err := b.attach(child, part); err != nil {
			return err
		}
	}
	return nil
}

// boundary returns the total graph weight leaving the vertex set.
func (b *builder) boundary(part []int) float64 {
	in := make(map[int]bool, len(part))
	for _, v := range part {
		in[v] = true
	}
	return b.g.CutWeight(func(v int) bool { return in[v] })
}

// bisect splits a cluster into two non-empty parts of roughly equal
// demand with small internal cut: a BFS region grown from a random seed
// to half the demand, refined by gain-driven single-vertex moves.
func (b *builder) bisect(cluster []int) (left, right []int) {
	if len(cluster) == 2 {
		return cluster[:1], cluster[1:]
	}
	if b.strat == MinCutSplit {
		return b.minCutSplit(cluster)
	}
	inCluster := make(map[int]bool, len(cluster))
	var totalDemand float64
	for _, v := range cluster {
		inCluster[v] = true
		totalDemand += b.g.Demand(v)
	}
	// Weight per vertex for balancing: demand, or 1 if demands are zero.
	wgt := func(v int) float64 {
		if totalDemand == 0 {
			return 1
		}
		return b.g.Demand(v)
	}
	totalW := totalDemand
	if totalW == 0 {
		totalW = float64(len(cluster))
	}

	// BFS growth from a random seed.
	side := make(map[int]bool, len(cluster)) // true = left
	seed := cluster[b.rng.Intn(len(cluster))]
	var leftW float64
	queue := []int{seed}
	visited := map[int]bool{seed: true}
	for len(queue) > 0 && leftW < totalW/2 {
		v := queue[0]
		queue = queue[1:]
		if leftW+wgt(v) > totalW*0.75 {
			continue
		}
		side[v] = true
		leftW += wgt(v)
		for _, u := range b.g.SortedNeighbors(v) {
			if inCluster[u] && !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
		if len(queue) == 0 {
			// Disconnected cluster: restart BFS from an unvisited vertex.
			for _, u := range cluster {
				if !visited[u] && leftW < totalW/2 {
					visited[u] = true
					queue = append(queue, u)
					break
				}
			}
		}
	}
	b.ensureNonEmpty(cluster, side)

	// Fiduccia–Mattheyses refinement: best-gain moves with tentative
	// negative-gain exploration and best-prefix rollback (internal/fm).
	fm.Refine(b.g, cluster, side, wgt, fm.Config{
		MinFrac: 0.25, MaxFrac: 0.75, Passes: b.passes,
	})
	b.ensureNonEmpty(cluster, side)

	if b.flowRef {
		// Corridor max-flow polish; repeat while it keeps improving
		// (bounded — each round strictly lowers the cut weight).
		for round := 0; round < 4; round++ {
			if !flowRefine(b.g, cluster, side, wgt, totalW, 0.25, 0.75) {
				break
			}
		}
		b.ensureNonEmpty(cluster, side)
	}

	for _, v := range cluster {
		if side[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	sort.Ints(left)
	sort.Ints(right)
	return left, right
}

// ensureNonEmpty guarantees both sides of a bisection are inhabited.
func (b *builder) ensureNonEmpty(cluster []int, side map[int]bool) {
	nLeft := 0
	for _, v := range cluster {
		if side[v] {
			nLeft++
		}
	}
	if nLeft == 0 {
		side[cluster[b.rng.Intn(len(cluster))]] = true
	} else if nLeft == len(cluster) {
		side[cluster[b.rng.Intn(len(cluster))]] = false
	}
}

// CutDistortion measures, for the leaf set corresponding to the vertex
// set S, the ratio between the tree's minimum separating cut and the
// graph boundary of S. Proposition 1 guarantees the result is ≥ 1
// (up to floating-point noise); its distribution over random S is the
// subject of experiment E7.
func (d *DecompTree) CutDistortion(g *graph.Graph, s map[int]bool) float64 {
	if len(s) == 0 {
		return 1
	}
	leafSet := map[int]bool{}
	for v := range s {
		leafSet[d.LeafOf[v]] = true
	}
	tw := d.T.CutLeafSetOf(leafSet).Weight
	gw := g.CutWeightSet(s)
	if gw == 0 {
		if tw == 0 {
			return 1
		}
		return math.Inf(1) // S free in G but not in T (disconnected graph)
	}
	return tw / gw
}

// minCutSplit divides a cluster along the global minimum cut of its
// induced subgraph (MinCutSplit strategy), falling back to a singleton
// split when the cut is degenerate.
func (b *builder) minCutSplit(cluster []int) (left, right []int) {
	sub, orig := b.g.InducedSubgraph(cluster)
	res := mincut.Global(sub)
	if len(res.Side) == 0 || len(res.Side) == len(cluster) {
		return cluster[:1], cluster[1:]
	}
	inLeft := map[int]bool{}
	for _, v := range res.Side {
		inLeft[orig[v]] = true
	}
	for _, v := range cluster {
		if inLeft[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	sort.Ints(left)
	sort.Ints(right)
	return left, right
}
