package treedecomp

import (
	"math"
	"math/rand"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
)

func TestBuildMappingBasics(t *testing.T) {
	g := gen.Grid(3, 3, 1)
	d := Build(g, Options{Trees: 1, Seed: 2})
	dt := d.Trees[0]
	m := dt.BuildMapping(g)
	// Leaf representatives are the leaf labels (the m_V bijection).
	for _, l := range dt.T.Leaves() {
		if m.Rep[l] != dt.T.Label(l) {
			t.Fatalf("leaf %d rep %d != label %d", l, m.Rep[l], dt.T.Label(l))
		}
	}
	// Root has no path; every other node has a valid path between reps.
	if m.Path[dt.T.Root()] != nil {
		t.Fatal("root must have nil path")
	}
	for v := 1; v < dt.T.N(); v++ {
		p := m.Path[v]
		pr := m.Rep[dt.T.Parent(v)]
		if pr == m.Rep[v] {
			if len(p) != 0 {
				t.Fatalf("node %d: same-rep path should be empty, got %v", v, p)
			}
			continue
		}
		if p == nil {
			t.Fatalf("node %d: nil path in connected graph", v)
		}
		if p[0] != pr || p[len(p)-1] != m.Rep[v] {
			t.Fatalf("node %d: path %v does not join %d→%d", v, p, pr, m.Rep[v])
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("node %d: path uses non-edge %d-%d", v, p[i-1], p[i])
			}
		}
	}
}

func TestCongestionFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.ErdosRenyi(rng, 20, 0.2, 4)
	d := Build(g, Options{Trees: 2, Seed: 6})
	for _, dt := range d.Trees {
		m := dt.BuildMapping(g)
		c := dt.Congestion(g, m)
		if math.IsInf(c, 1) || c <= 0 {
			t.Fatalf("congestion = %v, want finite positive", c)
		}
	}
}

func TestBFSPath(t *testing.T) {
	// Path graph 0-1-2-3.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	p := bfsPath(g, 0, 3)
	want := []int{0, 1, 2, 3}
	if len(p) != 4 {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if got := bfsPath(g, 2, 2); len(got) != 0 || got == nil {
		t.Fatalf("self path = %v, want empty non-nil", got)
	}
	g2 := graph.New(3)
	g2.AddEdge(0, 1, 1)
	if bfsPath(g2, 0, 2) != nil {
		t.Fatal("unreachable target must give nil")
	}
}

func TestCongestionDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	d := Build(g, Options{Trees: 1, Seed: 1})
	dt := d.Trees[0]
	m := dt.BuildMapping(g)
	// Some tree edge must bridge the components; its weight is 0
	// (empty boundary), so it contributes no load — congestion stays
	// finite or the path is nil and skipped.
	c := dt.Congestion(g, m)
	if math.IsNaN(c) {
		t.Fatalf("congestion = %v", c)
	}
}
