package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a weighted undirected graph with per-vertex demands.
// The zero value is an empty graph; use New to pre-size.
type Graph struct {
	demands []float64
	adj     []map[int]float64 // adj[u][v] = weight
	nbr     [][]int           // neighbors of u in first-insertion order
	m       int               // number of distinct edges
}

// New returns a graph with n vertices, no edges, and zero demands.
func New(n int) *Graph {
	g := &Graph{
		demands: make([]float64, n),
		adj:     make([]map[int]float64, n),
		nbr:     make([][]int, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.demands) }

// M returns the number of distinct edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends a vertex with the given demand and returns its ID.
func (g *Graph) AddVertex(demand float64) int {
	g.demands = append(g.demands, demand)
	g.adj = append(g.adj, make(map[int]float64))
	g.nbr = append(g.nbr, nil)
	return len(g.demands) - 1
}

// SetDemand sets the demand of vertex v.
func (g *Graph) SetDemand(v int, d float64) {
	g.check(v)
	g.demands[v] = d
}

// Demand returns the demand of vertex v.
func (g *Graph) Demand(v int) float64 {
	g.check(v)
	return g.demands[v]
}

// TotalDemand returns the sum of all vertex demands.
func (g *Graph) TotalDemand() float64 {
	var s float64
	for _, d := range g.demands {
		s += d
	}
	return s
}

// AddEdge adds weight w to the edge {u, v}, creating it if absent.
// It panics on self-loops, out-of-range vertices, or negative weight.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	if _, ok := g.adj[u][v]; !ok {
		g.m++
		g.nbr[u] = append(g.nbr[u], v)
		g.nbr[v] = append(g.nbr[v], u)
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

// SetEdgeWeight sets the weight of edge {u, v} to exactly w, creating
// the edge if absent. Unlike AddEdge it replaces rather than
// accumulates. It panics on self-loops, out-of-range vertices, or a
// non-positive or NaN weight (use RemoveEdge to delete an edge).
func (g *Graph) SetEdgeWeight(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if w <= 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	if _, ok := g.adj[u][v]; !ok {
		g.m++
		g.nbr[u] = append(g.nbr[u], v)
		g.nbr[v] = append(g.nbr[v], u)
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// RemoveEdge deletes the edge {u, v} and reports whether it existed.
// Neighbor lists keep their remaining insertion order, so downstream
// deterministic float sums stay reproducible for the surviving edges.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.nbr[u] = dropNeighbor(g.nbr[u], v)
	g.nbr[v] = dropNeighbor(g.nbr[v], u)
	g.m--
	return true
}

// dropNeighbor removes the first occurrence of x, preserving order.
func dropNeighbor(ns []int, x int) []int {
	for i, n := range ns {
		if n == x {
			return append(ns[:i], ns[i+1:]...)
		}
	}
	return ns
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of edge {u, v}, or 0 if the edge is absent.
func (g *Graph) Weight(u, v int) float64 {
	if !g.HasEdge(u, v) {
		return 0
	}
	return g.adj[u][v]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// WeightedDegree returns the total weight of edges incident to v,
// summed in deterministic (insertion) order.
func (g *Graph) WeightedDegree(v int) float64 {
	g.check(v)
	var s float64
	for _, u := range g.nbr[v] {
		s += g.adj[v][u]
	}
	return s
}

// Neighbors calls fn for every neighbor of v with the edge weight, in
// first-insertion order — a deterministic order, so floating-point sums
// over a vertex's edges are bit-reproducible across runs (map iteration
// would not be).
func (g *Graph) Neighbors(v int, fn func(u int, w float64)) {
	g.check(v)
	for _, u := range g.nbr[v] {
		fn(u, g.adj[v][u])
	}
}

// SortedNeighbors returns the neighbors of v in ascending vertex order.
func (g *Graph) SortedNeighbors(v int) []int {
	g.check(v)
	ns := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Ints(ns)
	return ns
}

// Edges returns all edges with U < V, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v, Weight: w})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// TotalWeight returns the sum of all edge weights, in deterministic
// (per-vertex insertion) order.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for u := range g.adj {
		for _, v := range g.nbr[u] {
			if u < v {
				s += g.adj[u][v]
			}
		}
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	copy(c.demands, g.demands)
	for u := range g.adj {
		for v, w := range g.adj[u] {
			c.adj[u][v] = w
		}
		c.nbr[u] = append([]int(nil), g.nbr[u]...)
	}
	c.m = g.m
	return c
}

// CutWeight returns w(CUT(P)): the total weight of edges with exactly one
// endpoint in the vertex set P (given as a membership predicate over IDs).
// Summation order is deterministic (insertion-ordered neighbor lists), so
// repeated calls return bit-identical results — downstream tree edge
// weights and DP costs stay reproducible despite float non-associativity.
func (g *Graph) CutWeight(inP func(v int) bool) float64 {
	var s float64
	for u := range g.adj {
		if !inP(u) {
			continue
		}
		for _, v := range g.nbr[u] {
			if !inP(v) {
				s += g.adj[u][v]
			}
		}
	}
	return s
}

// CutWeightSet is CutWeight for an explicit vertex set.
func (g *Graph) CutWeightSet(p map[int]bool) float64 {
	return g.CutWeight(func(v int) bool { return p[v] })
}

// Components returns the connected components as sorted vertex slices,
// ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether g has at most one connected component.
func (g *Graph) Connected() bool {
	return g.N() == 0 || len(g.Components()) == 1
}

// InducedSubgraph returns the subgraph induced by the given vertices and
// a mapping from new IDs to original IDs. Vertices keep their demands.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	orig := append([]int(nil), vs...)
	sort.Ints(orig)
	idx := make(map[int]int, len(orig))
	for i, v := range orig {
		g.check(v)
		idx[v] = i
	}
	sub := New(len(orig))
	for i, v := range orig {
		sub.demands[i] = g.demands[v]
	}
	for i, v := range orig {
		// Insertion-ordered iteration keeps the subgraph's own neighbor
		// order (and thus downstream float sums) deterministic.
		for _, u := range g.nbr[v] {
			if j, ok := idx[u]; ok && i < j {
				sub.AddEdge(i, j, g.adj[v][u])
			}
		}
	}
	return sub, orig
}

// Validate checks internal invariants, returning a descriptive error if
// any is broken. It is intended for tests and debugging.
func (g *Graph) Validate() error {
	if len(g.adj) != len(g.demands) {
		return fmt.Errorf("graph: adj/demand length mismatch %d != %d", len(g.adj), len(g.demands))
	}
	count := 0
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("graph: edge %d-%d out of range", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			back, ok := g.adj[v][u]
			if !ok {
				return fmt.Errorf("graph: edge %d-%d missing reverse entry", u, v)
			}
			if back != w {
				return fmt.Errorf("graph: asymmetric weight on %d-%d: %v vs %v", u, v, w, back)
			}
			if w < 0 || math.IsNaN(w) {
				return fmt.Errorf("graph: invalid weight %v on %d-%d", w, u, v)
			}
			if u < v {
				count++
			}
		}
	}
	if count != g.m {
		return fmt.Errorf("graph: edge count mismatch: counted %d, recorded %d", count, g.m)
	}
	for v, d := range g.demands {
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("graph: invalid demand %v at vertex %d", d, v)
		}
	}
	for u := range g.nbr {
		if len(g.nbr[u]) != len(g.adj[u]) {
			return fmt.Errorf("graph: neighbor list of %d has %d entries, adjacency %d", u, len(g.nbr[u]), len(g.adj[u]))
		}
		for _, v := range g.nbr[u] {
			if _, ok := g.adj[u][v]; !ok {
				return fmt.Errorf("graph: neighbor list of %d contains %d not in adjacency", u, v)
			}
		}
	}
	return nil
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.N() {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.N()))
	}
}
