// Package graph provides the weighted undirected graph type used
// throughout the hierarchical graph partitioning library.
//
// Vertices are dense integer IDs 0..N-1. Each vertex carries a demand
// (the CPU load of the task it models) and each edge carries a
// non-negative weight (communication volume). Parallel edges are merged
// on insertion; self-loops are rejected because they never contribute to
// any cut.
//
// Main entry points: New builds a Graph; AddEdge/SetDemand populate it;
// Edges returns a deterministic sorted edge list (the canonical form
// the decomposition cache hashes); ToCSR converts to a compact
// read-only CSR for the solver hot paths; WriteDOT renders Graphviz
// output for debugging.
package graph
