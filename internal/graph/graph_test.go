package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got N=%d M=%d, want 5, 0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeMergesParallel(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (parallel edges merged)", g.M())
	}
	if w := g.Weight(0, 1); w != 5 {
		t.Fatalf("weight = %v, want 5", w)
	}
	if w := g.Weight(1, 0); w != 5 {
		t.Fatalf("reverse weight = %v, want 5", w)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name    string
		u, v    int
		w       float64
		wantMsg string
	}{
		{"self-loop", 1, 1, 1, "self-loop"},
		{"negative", 0, 1, -1, "invalid edge weight"},
		{"out of range", 0, 9, 1, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic")
				}
				if !strings.Contains(r.(string), c.wantMsg) {
					t.Fatalf("panic %q does not contain %q", r, c.wantMsg)
				}
			}()
			g := New(3)
			g.AddEdge(c.u, c.v, c.w)
		})
	}
}

func TestDemands(t *testing.T) {
	g := New(2)
	g.SetDemand(0, 0.25)
	g.SetDemand(1, 0.5)
	if d := g.Demand(0); d != 0.25 {
		t.Fatalf("demand(0) = %v", d)
	}
	if td := g.TotalDemand(); td != 0.75 {
		t.Fatalf("total demand = %v", td)
	}
	v := g.AddVertex(1.0)
	if v != 2 || g.N() != 3 || g.Demand(2) != 1.0 {
		t.Fatalf("AddVertex: v=%d N=%d d=%v", v, g.N(), g.Demand(2))
	}
}

func TestEdgesSortedAndTotalWeight(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 4)
	es := g.Edges()
	want := []Edge{{0, 1, 2}, {1, 3, 4}, {2, 3, 1}}
	if len(es) != len(want) {
		t.Fatalf("got %d edges, want %d", len(es), len(want))
	}
	for i := range es {
		if es[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, es[i], want[i])
		}
	}
	if tw := g.TotalWeight(); tw != 7 {
		t.Fatalf("total weight = %v, want 7", tw)
	}
}

func TestCutWeight(t *testing.T) {
	// Path 0-1-2-3 with weights 1, 2, 3.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	got := g.CutWeightSet(map[int]bool{0: true, 1: true})
	if got != 2 {
		t.Fatalf("cut({0,1}) = %v, want 2", got)
	}
	if got := g.CutWeightSet(map[int]bool{}); got != 0 {
		t.Fatalf("cut(∅) = %v, want 0", got)
	}
	all := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if got := g.CutWeightSet(all); got != 0 {
		t.Fatalf("cut(V) = %v, want 0", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(4, 5, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	wantFirst := []int{0, 1, 2}
	for i, v := range wantFirst {
		if comps[0][i] != v {
			t.Fatalf("component 0 = %v, want %v", comps[0], wantFirst)
		}
	}
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	if !g.Connected() {
		t.Fatal("graph should now be connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.SetDemand(1, 0.5)
	g.SetDemand(3, 0.75)
	g.AddEdge(1, 3, 2)
	g.AddEdge(1, 2, 7) // 2 excluded: edge must drop
	g.AddEdge(3, 4, 1) // 4 excluded
	sub, orig := g.InducedSubgraph([]int{3, 1})
	if sub.N() != 2 || sub.M() != 1 {
		t.Fatalf("sub N=%d M=%d, want 2, 1", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 {
		t.Fatalf("orig = %v, want [1 3]", orig)
	}
	if sub.Demand(0) != 0.5 || sub.Demand(1) != 0.75 {
		t.Fatalf("demands not carried: %v %v", sub.Demand(0), sub.Demand(1))
	}
	if sub.Weight(0, 1) != 2 {
		t.Fatalf("weight = %v, want 2", sub.Weight(0, 1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.SetDemand(2, 0.5)
	c := g.Clone()
	c.AddEdge(1, 2, 5)
	c.SetDemand(2, 0.9)
	if g.M() != 1 || g.Demand(2) != 0.5 {
		t.Fatal("mutating clone affected original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSR(t *testing.T) {
	g := New(4)
	g.SetDemand(0, 0.1)
	g.AddEdge(0, 2, 3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	c := g.ToCSR()
	if c.N() != 4 {
		t.Fatalf("CSR N = %d", c.N())
	}
	adj, w := c.Row(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 || w[0] != 1 || w[1] != 3 {
		t.Fatalf("row 0 = %v %v", adj, w)
	}
	if c.Demand[0] != 0.1 {
		t.Fatalf("CSR demand = %v", c.Demand[0])
	}
	adj3, _ := c.Row(3)
	if len(adj3) != 1 || adj3[0] != 2 {
		t.Fatalf("row 3 = %v", adj3)
	}
}

func TestSortedNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	ns := g.SortedNeighbors(2)
	want := []int{0, 3, 4}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", ns, want)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1.5)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "g", func(v int) int { return v % 2 }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"graph \"g\"", "0 -- 1", "1.5", "group=1"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, out)
		}
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		g.SetDemand(v, rng.Float64())
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1+rng.Float64()*9)
			}
		}
	}
	return g
}

// Property: for any vertex subset P, cut(P) == cut(V \ P).
func TestCutComplementSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, mask uint16) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 12, 0.3)
		inP := func(v int) bool { return mask&(1<<uint(v)) != 0 }
		notP := func(v int) bool { return !inP(v) }
		a, b := g.CutWeight(inP), g.CutWeight(notP)
		diff := a - b
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum over singleton cuts equals twice the total weight.
func TestSingletonCutSum(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 10, 0.4)
		var s float64
		for v := 0; v < g.N(); v++ {
			vv := v
			s += g.CutWeight(func(u int) bool { return u == vv })
		}
		diff := s - 2*g.TotalWeight()
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Validate passes for every randomly constructed graph.
func TestValidateRandom(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 15, 0.3)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDegree(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	if wd := g.WeightedDegree(0); wd != 5 {
		t.Fatalf("weighted degree = %v, want 5", wd)
	}
	if d := g.Degree(0); d != 2 {
		t.Fatalf("degree = %d, want 2", d)
	}
}

func TestShortestPaths(t *testing.T) {
	// Path 0-1-2 with weights 2 and 4: inverse lengths 0.5 and 0.25.
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 4)
	d := g.ShortestPaths(0, InverseWeightLength)
	if d[0] != 0 || d[1] != 0.5 || d[2] != 0.75 {
		t.Fatalf("distances = %v", d)
	}
	if !math.IsInf(d[3], 1) {
		t.Fatalf("unreachable vertex distance = %v", d[3])
	}
	// Heavier edge = shorter: direct light edge loses to a heavy detour.
	g2 := New(3)
	g2.AddEdge(0, 2, 1)  // length 1
	g2.AddEdge(0, 1, 10) // length 0.1
	g2.AddEdge(1, 2, 10) // length 0.1
	d2 := g2.ShortestPaths(0, InverseWeightLength)
	if math.Abs(d2[2]-0.2) > 1e-12 {
		t.Fatalf("detour distance = %v, want 0.2", d2[2])
	}
}

func TestInverseWeightLength(t *testing.T) {
	if InverseWeightLength(4) != 0.25 {
		t.Fatal("1/4 expected")
	}
	if !math.IsInf(InverseWeightLength(0), 1) {
		t.Fatal("zero weight must be infinite length")
	}
}
