package graph

import (
	"container/heap"
	"math"
)

// ShortestPaths runs Dijkstra from src and returns the distance to every
// vertex. Edge lengths are derived from edge weights by the length
// function (e.g. func(w float64) float64 { return 1 / w } to make
// heavily-communicating vertices close); lengths must be non-negative,
// and +Inf lengths are treated as absent edges. Unreachable vertices get
// +Inf.
func (g *Graph) ShortestPaths(src int, length func(w float64) float64) []float64 {
	g.check(src)
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		g.Neighbors(it.v, func(u int, w float64) {
			l := length(w)
			if l < 0 || math.IsNaN(l) {
				panic("graph: negative or NaN edge length")
			}
			if math.IsInf(l, 1) {
				return
			}
			if nd := it.d + l; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		})
	}
	return dist
}

// InverseWeightLength is the standard length function for communication
// graphs: the more two tasks talk, the closer they are.
func InverseWeightLength(w float64) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	return 1 / w
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
