package graph

import (
	"math/rand"
	"testing"
)

func benchRandom(n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(1))
	g := New(n)
	for v := 0; v < n; v++ {
		g.SetDemand(v, rng.Float64())
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1+rng.Float64()*9)
			}
		}
	}
	return g
}

func BenchmarkCutWeight(b *testing.B) {
	g := benchRandom(256, 0.1)
	inP := func(v int) bool { return v%2 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CutWeight(inP)
	}
}

func BenchmarkToCSR(b *testing.B) {
	g := benchRandom(256, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ToCSR()
	}
}

func BenchmarkEdges(b *testing.B) {
	g := benchRandom(256, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Edges()
	}
}

func BenchmarkComponents(b *testing.B) {
	g := benchRandom(512, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components()
	}
}

func BenchmarkInducedSubgraph(b *testing.B) {
	g := benchRandom(256, 0.1)
	vs := make([]int, 0, 128)
	for v := 0; v < 256; v += 2 {
		vs = append(vs, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InducedSubgraph(vs)
	}
}
