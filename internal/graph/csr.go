package graph

// CSR is a compressed sparse row snapshot of a Graph, suitable for the
// tight traversal loops in the flow and partitioning heuristics. It is a
// read-only view: mutating the source graph does not update the CSR.
type CSR struct {
	// Off has length N+1; the neighbors of vertex v are
	// Adj[Off[v]:Off[v+1]] with weights W[Off[v]:Off[v+1]].
	Off []int
	Adj []int
	W   []float64
	// Demand[v] is the demand of vertex v.
	Demand []float64
}

// ToCSR builds a CSR snapshot of g. Within each row, neighbors appear in
// ascending vertex order so traversals are deterministic.
func (g *Graph) ToCSR() *CSR {
	n := g.N()
	c := &CSR{
		Off:    make([]int, n+1),
		Demand: append([]float64(nil), g.demands...),
	}
	for v := 0; v < n; v++ {
		c.Off[v+1] = c.Off[v] + g.Degree(v)
	}
	c.Adj = make([]int, c.Off[n])
	c.W = make([]float64, c.Off[n])
	for v := 0; v < n; v++ {
		at := c.Off[v]
		for _, u := range g.SortedNeighbors(v) {
			c.Adj[at] = u
			c.W[at] = g.adj[v][u]
			at++
		}
	}
	return c
}

// N returns the number of vertices in the snapshot.
func (c *CSR) N() int { return len(c.Off) - 1 }

// Row returns the neighbor IDs and weights of vertex v.
func (c *CSR) Row(v int) ([]int, []float64) {
	return c.Adj[c.Off[v]:c.Off[v+1]], c.W[c.Off[v]:c.Off[v+1]]
}
