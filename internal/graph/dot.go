package graph

import (
	"fmt"
	"io"
)

// WriteDOT writes g in Graphviz DOT format. If part is non-nil it must
// map each vertex to a part label used to color-group the output.
func (g *Graph) WriteDOT(w io.Writer, name string, part func(v int) int) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if part != nil {
			if _, err := fmt.Fprintf(w, "  %d [label=\"%d (d=%.3g)\", group=%d];\n", v, v, g.demands[v], part(v)); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "  %d [label=\"%d (d=%.3g)\"];\n", v, v, g.demands[v]); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  %d -- %d [label=\"%.3g\"];\n", e.U, e.V, e.Weight); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
