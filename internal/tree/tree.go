package tree

import (
	"fmt"
	"math"
)

// Tree is a rooted tree. Node 0 is always the root. Nodes are appended
// with AddChild and never removed. The zero value is not usable; call New.
type Tree struct {
	parent   []int     // parent[0] == -1
	wParent  []float64 // weight of the edge to the parent; wParent[0] unused
	children [][]int
	demand   []float64 // leaf demand (0 for internal nodes)
	label    []int     // external label (e.g. graph vertex ID), -1 if none
}

// New returns a tree consisting of only the root (node 0).
func New() *Tree {
	return &Tree{
		parent:   []int{-1},
		wParent:  []float64{math.NaN()},
		children: [][]int{nil},
		demand:   []float64{0},
		label:    []int{-1},
	}
}

// AddChild appends a new node under parent with the given edge weight
// (use math.Inf(1) for dummy edges) and returns its ID.
func (t *Tree) AddChild(parent int, w float64) int {
	t.check(parent)
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("tree: invalid edge weight %v", w))
	}
	id := len(t.parent)
	t.parent = append(t.parent, parent)
	t.wParent = append(t.wParent, w)
	t.children = append(t.children, nil)
	t.demand = append(t.demand, 0)
	t.label = append(t.label, -1)
	t.children[parent] = append(t.children[parent], id)
	return id
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root node ID (always 0).
func (t *Tree) Root() int { return 0 }

// Parent returns the parent of v (-1 for the root).
func (t *Tree) Parent(v int) int { t.check(v); return t.parent[v] }

// EdgeWeight returns the weight of the edge from v to its parent.
// It panics for the root.
func (t *Tree) EdgeWeight(v int) float64 {
	t.check(v)
	if v == 0 {
		panic("tree: root has no parent edge")
	}
	return t.wParent[v]
}

// Children returns the children of v (do not mutate).
func (t *Tree) Children(v int) []int { t.check(v); return t.children[v] }

// IsLeaf reports whether v has no children. Note that a root with no
// children counts as a leaf of a single-node tree.
func (t *Tree) IsLeaf(v int) bool { t.check(v); return len(t.children[v]) == 0 }

// SetDemand sets the demand of a leaf. It panics for internal nodes.
func (t *Tree) SetDemand(v int, d float64) {
	t.check(v)
	if !t.IsLeaf(v) {
		panic(fmt.Sprintf("tree: node %d is internal, cannot carry demand", v))
	}
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("tree: invalid demand %v", d))
	}
	t.demand[v] = d
}

// Demand returns the demand of v (0 for internal nodes).
func (t *Tree) Demand(v int) float64 { t.check(v); return t.demand[v] }

// SetLabel attaches an external integer label (such as the graph vertex
// a decomposition-tree node maps to) to v.
func (t *Tree) SetLabel(v, l int) { t.check(v); t.label[v] = l }

// Label returns the external label of v, or -1 if unset.
func (t *Tree) Label(v int) int { t.check(v); return t.label[v] }

// Leaves returns the leaf IDs in increasing order.
func (t *Tree) Leaves() []int {
	var ls []int
	for v := 0; v < t.N(); v++ {
		if t.IsLeaf(v) {
			ls = append(ls, v)
		}
	}
	return ls
}

// TotalDemand returns the sum of all leaf demands.
func (t *Tree) TotalDemand() float64 {
	var s float64
	for _, d := range t.demand {
		s += d
	}
	return s
}

// PostOrder returns all node IDs in post-order (children before parents),
// ending with the root.
func (t *Tree) PostOrder() []int {
	order := make([]int, 0, t.N())
	var rec func(v int)
	rec = func(v int) {
		for _, c := range t.children[v] {
			rec(c)
		}
		order = append(order, v)
	}
	rec(0)
	return order
}

// MaxChildren returns the maximum number of children over all nodes.
func (t *Tree) MaxChildren() int {
	m := 0
	for _, cs := range t.children {
		if len(cs) > m {
			m = len(cs)
		}
	}
	return m
}

// Validate checks structural invariants.
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 || t.parent[0] != -1 {
		return fmt.Errorf("tree: bad root")
	}
	for v := 1; v < n; v++ {
		p := t.parent[v]
		if p < 0 || p >= v {
			return fmt.Errorf("tree: node %d has parent %d (must precede it)", v, p)
		}
		found := false
		for _, c := range t.children[p] {
			if c == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tree: node %d missing from children of %d", v, p)
		}
		if t.wParent[v] < 0 || math.IsNaN(t.wParent[v]) {
			return fmt.Errorf("tree: node %d has invalid parent-edge weight %v", v, t.wParent[v])
		}
	}
	for v := 0; v < n; v++ {
		if !t.IsLeaf(v) && t.demand[v] != 0 {
			return fmt.Errorf("tree: internal node %d has demand %v", v, t.demand[v])
		}
	}
	return nil
}

func (t *Tree) check(v int) {
	if v < 0 || v >= len(t.parent) {
		panic(fmt.Sprintf("tree: node %d out of range [0,%d)", v, len(t.parent)))
	}
}

// Binarize returns a tree in which every node has at most two children,
// obtained by inserting binary spines of dummy nodes connected with
// +Inf-weight edges (§3 of the paper: infinite edges are never cut, so
// solutions are preserved exactly). The second return value maps each
// node of the new tree back to the original node it represents (dummy
// nodes map to the original parent they expand).
func (t *Tree) Binarize() (*Tree, []int) {
	bt := New()
	origOf := []int{0}
	bt.label[0] = t.label[0]

	// attach[v] = node of bt under which the next child of original node v
	// should be attached.
	var rec func(origNode, btNode int)
	rec = func(origNode, btNode int) {
		cs := t.children[origNode]
		attach := btNode
		for i, c := range cs {
			// If more than one child remains and attach already has a
			// child, extend the spine with a dummy node.
			if i >= 1 && len(cs)-i >= 2 {
				d := bt.AddChild(attach, math.Inf(1))
				origOf = append(origOf, origNode)
				attach = d
			}
			nc := bt.AddChild(attach, t.wParent[c])
			origOf = append(origOf, c)
			bt.label[nc] = t.label[c]
			if t.IsLeaf(c) {
				bt.SetDemand(nc, t.demand[c])
			}
			rec(c, nc)
		}
	}
	rec(0, 0)
	return bt, origOf
}
