// Package tree provides the rooted, edge-weighted tree type shared by
// the HGPT dynamic program (§3 of the paper) and the decomposition-tree
// embedding (§4). Leaves carry demands (they are the jobs); edges carry
// non-negative weights, with +Inf permitted for the dummy edges
// introduced by binarisation and by the node→leaf reduction.
//
// Main entry points: New and AddChild build a Tree; Binarize produces
// the binary form the DP requires; CutLeafSet computes the minimum cut
// separating a leaf set (Definition 5), the primitive behind the
// mirror-cost evaluations.
package tree
