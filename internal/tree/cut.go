package tree

import (
	"fmt"
	"math"
)

// CutResult describes CUT_T(S) for a leaf subset S (Definition 5 of the
// paper): the minimum-weight edge set separating the leaves of S from
// all other leaves, tie-broken by the smallest mirror set N(S) and then
// canonically (lower-numbered nodes are preferentially excluded).
type CutResult struct {
	// Weight is w(CUT_T(S)); +Inf if S can only be separated by cutting
	// an infinite (dummy) edge.
	Weight float64
	// InMirror[v] reports whether node v belongs to the mirror set N(S):
	// the union of components of T∖CUT_T(S) containing a node of S.
	InMirror []bool
	// CutEdges lists the child endpoints of the cut edges (each edge is
	// identified by its lower endpoint), sorted ascending.
	CutEdges []int
	// MirrorSize is the number of nodes in N(S).
	MirrorSize int
}

// CutLeafSet computes CUT_T(S) by a two-label tree DP: each node is on
// the S side (label 1) or the complement side (label 0); leaves are
// forced by membership in S and each edge whose endpoints disagree is
// cut. Costs are compared lexicographically by (weight, |N(S)|), which
// realizes Definition 5's tie-breaking; remaining ties prefer label 0,
// giving a canonical result.
func (t *Tree) CutLeafSet(inS func(leaf int) bool) CutResult {
	n := t.N()
	const nlabels = 2
	cost := make([][nlabels]float64, n)
	size := make([][nlabels]int, n) // number of label-1 nodes in subtree
	choice := make([][nlabels][]byte, n)

	order := t.PostOrder()
	for _, v := range order {
		if t.IsLeaf(v) {
			if inS(v) {
				cost[v][0] = math.Inf(1)
				cost[v][1] = 0
				size[v][1] = 1
			} else {
				cost[v][0] = 0
				cost[v][1] = math.Inf(1)
				size[v][1] = 1
			}
			continue
		}
		for s := 0; s < nlabels; s++ {
			var c float64
			var sz int
			if s == 1 {
				sz = 1
			}
			picks := make([]byte, len(t.children[v]))
			for i, ch := range t.children[v] {
				// Child label 0 vs 1: cut edge iff labels differ.
				c0 := cost[ch][0]
				c1 := cost[ch][1]
				w := t.wParent[ch]
				if s == 0 {
					c1 = addInf(c1, w)
				} else {
					c0 = addInf(c0, w)
				}
				if c1 < c0 || (c1 == c0 && size[ch][1] < size[ch][0]) {
					picks[i] = 1
					c = addInf(c, c1)
					sz += size[ch][1]
				} else {
					picks[i] = 0
					c = addInf(c, c0)
					sz += size[ch][0]
				}
			}
			cost[v][s] = c
			size[v][s] = sz
			choice[v][s] = picks
		}
	}

	root := t.Root()
	rootLabel := 0
	if cost[root][1] < cost[root][0] ||
		(cost[root][1] == cost[root][0] && size[root][1] < size[root][0]) {
		rootLabel = 1
	}

	res := CutResult{
		Weight:   cost[root][rootLabel],
		InMirror: make([]bool, n),
	}
	// Reconstruct labels top-down.
	labels := make([]byte, n)
	labels[root] = byte(rootLabel)
	var rec func(v int)
	rec = func(v int) {
		if t.IsLeaf(v) {
			return
		}
		picks := choice[v][labels[v]]
		for i, ch := range t.children[v] {
			labels[ch] = picks[i]
			rec(ch)
		}
	}
	rec(root)
	for v := 0; v < n; v++ {
		if labels[v] == 1 {
			res.InMirror[v] = true
			res.MirrorSize++
		}
		if v != root && labels[v] != labels[t.parent[v]] {
			res.CutEdges = append(res.CutEdges, v)
		}
	}
	return res
}

// CutLeafSetOf is CutLeafSet for an explicit leaf set. It panics if the
// set contains a non-leaf node.
func (t *Tree) CutLeafSetOf(s map[int]bool) CutResult {
	for v := range s {
		if !t.IsLeaf(v) {
			panic(fmt.Sprintf("tree: CutLeafSetOf: node %d is not a leaf", v))
		}
	}
	return t.CutLeafSet(func(leaf int) bool { return s[leaf] })
}

// addInf is a + b with the convention Inf + Inf = Inf (avoids NaN from
// Inf - Inf elsewhere; plain float64 addition already satisfies this,
// the helper just documents intent).
func addInf(a, b float64) float64 { return a + b }
