package tree

import (
	"math/rand"
	"testing"
)

func benchTree(n int) (*Tree, map[int]bool) {
	rng := rand.New(rand.NewSource(1))
	t := New()
	for t.N() < n {
		t.AddChild(rng.Intn(t.N()), 1+rng.Float64()*9)
	}
	s := map[int]bool{}
	for _, l := range t.Leaves() {
		if rng.Float64() < 0.5 {
			s[l] = true
		}
	}
	return t, s
}

func BenchmarkCutLeafSet(b *testing.B) {
	t, s := benchTree(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.CutLeafSetOf(s)
	}
}

func BenchmarkBinarize(b *testing.B) {
	t, _ := benchTree(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Binarize()
	}
}

func BenchmarkPostOrder(b *testing.B) {
	t, _ := benchTree(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.PostOrder()
	}
}
