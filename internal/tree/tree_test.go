package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// star builds a root with n leaf children of the given edge weights.
func star(ws ...float64) *Tree {
	t := New()
	for _, w := range ws {
		t.AddChild(0, w)
	}
	return t
}

func TestBasicStructure(t *testing.T) {
	tr := New()
	a := tr.AddChild(0, 2)
	b := tr.AddChild(0, 3)
	c := tr.AddChild(a, 1)
	if tr.N() != 4 {
		t.Fatalf("N = %d", tr.N())
	}
	if tr.Parent(c) != a || tr.Parent(a) != 0 || tr.Parent(0) != -1 {
		t.Fatal("parents wrong")
	}
	if tr.EdgeWeight(b) != 3 || tr.EdgeWeight(c) != 1 {
		t.Fatal("edge weights wrong")
	}
	if tr.IsLeaf(a) || !tr.IsLeaf(b) || !tr.IsLeaf(c) {
		t.Fatal("leaf detection wrong")
	}
	ls := tr.Leaves()
	if len(ls) != 2 || ls[0] != b || ls[1] != c {
		t.Fatalf("leaves = %v", ls)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDemandsAndLabels(t *testing.T) {
	tr := star(1, 1)
	tr.SetDemand(1, 0.5)
	tr.SetLabel(2, 42)
	if tr.Demand(1) != 0.5 || tr.Demand(2) != 0 {
		t.Fatal("demands wrong")
	}
	if tr.Label(2) != 42 || tr.Label(1) != -1 {
		t.Fatal("labels wrong")
	}
	if tr.TotalDemand() != 0.5 {
		t.Fatalf("total demand = %v", tr.TotalDemand())
	}
}

func TestSetDemandPanics(t *testing.T) {
	tr := New()
	tr.AddChild(0, 1)
	for name, fn := range map[string]func(){
		"internal": func() { tr.SetDemand(0, 1) },
		"negative": func() { tr.SetDemand(1, -1) },
		"rootEdge": func() { tr.EdgeWeight(0) },
		"badWeight": func() {
			tt := New()
			tt.AddChild(0, -2)
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestPostOrder(t *testing.T) {
	tr := New()
	a := tr.AddChild(0, 1)
	b := tr.AddChild(0, 1)
	c := tr.AddChild(a, 1)
	order := tr.PostOrder()
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if len(order) != 4 || order[len(order)-1] != 0 {
		t.Fatalf("post-order = %v", order)
	}
	if pos[c] > pos[a] || pos[a] > pos[0] || pos[b] > pos[0] {
		t.Fatalf("post-order violates child-before-parent: %v", order)
	}
}

func TestBinarize(t *testing.T) {
	// Root with 4 leaf children; demands 1..4, labels 10..13.
	tr := star(1, 2, 3, 4)
	for i := 1; i <= 4; i++ {
		tr.SetDemand(i, float64(i))
		tr.SetLabel(i, 9+i)
	}
	bt, origOf := tr.Binarize()
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if bt.MaxChildren() > 2 {
		t.Fatalf("binarized tree has node with %d children", bt.MaxChildren())
	}
	// Leaves, demands, and labels must be preserved.
	leaves := bt.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("got %d leaves, want 4", len(leaves))
	}
	var demandSum float64
	seenLabels := map[int]bool{}
	for _, l := range leaves {
		demandSum += bt.Demand(l)
		seenLabels[bt.Label(l)] = true
		if orig := origOf[l]; tr.Demand(orig) != bt.Demand(l) {
			t.Fatalf("leaf %d: demand mismatch with original %d", l, orig)
		}
	}
	if demandSum != 10 {
		t.Fatalf("demand sum = %v, want 10", demandSum)
	}
	for i := 10; i <= 13; i++ {
		if !seenLabels[i] {
			t.Fatalf("label %d lost in binarization", i)
		}
	}
	// Dummy edges are infinite; real edges keep their weight.
	wantWeights := map[float64]int{1: 1, 2: 1, 3: 1, 4: 1}
	infEdges := 0
	for v := 1; v < bt.N(); v++ {
		w := bt.EdgeWeight(v)
		if math.IsInf(w, 1) {
			infEdges++
		} else {
			wantWeights[w]--
		}
	}
	for w, c := range wantWeights {
		if c != 0 {
			t.Fatalf("edge weight %v count off by %d", w, c)
		}
	}
	if infEdges != bt.N()-1-4 {
		t.Fatalf("got %d infinite edges, want %d", infEdges, bt.N()-1-4)
	}
}

func TestBinarizeDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	// Random tree with fanouts up to 5.
	frontier := []int{0}
	for len(frontier) > 0 && tr.N() < 40 {
		v := frontier[0]
		frontier = frontier[1:]
		kids := rng.Intn(6)
		for i := 0; i < kids && tr.N() < 40; i++ {
			c := tr.AddChild(v, 1+rng.Float64())
			frontier = append(frontier, c)
		}
	}
	for _, l := range tr.Leaves() {
		tr.SetDemand(l, rng.Float64())
	}
	bt, origOf := tr.Binarize()
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if bt.MaxChildren() > 2 {
		t.Fatalf("max children = %d", bt.MaxChildren())
	}
	if len(bt.Leaves()) != len(tr.Leaves()) {
		t.Fatalf("leaf count changed: %d vs %d", len(bt.Leaves()), len(tr.Leaves()))
	}
	if math.Abs(bt.TotalDemand()-tr.TotalDemand()) > 1e-12 {
		t.Fatalf("total demand changed")
	}
	if len(origOf) != bt.N() {
		t.Fatalf("origOf length %d != N %d", len(origOf), bt.N())
	}
}

func TestCutLeafSetPath(t *testing.T) {
	// Root - a - b(leaf d=?), root - c(leaf). Separate {b} from {c}.
	tr := New()
	a := tr.AddChild(0, 5)
	b := tr.AddChild(a, 2)
	c := tr.AddChild(0, 7)
	res := tr.CutLeafSetOf(map[int]bool{b: true})
	if res.Weight != 2 {
		t.Fatalf("cut weight = %v, want 2 (cut the cheapest separating edge)", res.Weight)
	}
	if !res.InMirror[b] || res.InMirror[c] || res.InMirror[0] {
		t.Fatalf("mirror = %v", res.InMirror)
	}
	// Tie-breaking: N(S) should be as small as possible: just {b}.
	if res.MirrorSize != 1 {
		t.Fatalf("mirror size = %d, want 1", res.MirrorSize)
	}
	if len(res.CutEdges) != 1 || res.CutEdges[0] != b {
		t.Fatalf("cut edges = %v", res.CutEdges)
	}
}

func TestCutLeafSetChoosesCheaperSide(t *testing.T) {
	// Star with leaves of edge weights 1, 10: separating leaf 2 (w=10)
	// should cut edge of weight 1+... wait: separating {2} from {1}
	// can cut edge to 1 (w=1, mirror {2, root}) or edge to 2 (w=10).
	tr := star(1, 10)
	res := tr.CutLeafSetOf(map[int]bool{2: true})
	if res.Weight != 1 {
		t.Fatalf("weight = %v, want 1", res.Weight)
	}
	if !res.InMirror[2] || !res.InMirror[0] || res.InMirror[1] {
		t.Fatalf("mirror = %v, want root on S side", res.InMirror)
	}
}

func TestCutLeafSetEmptyAndFull(t *testing.T) {
	tr := star(3, 4, 5)
	empty := tr.CutLeafSetOf(map[int]bool{})
	if empty.Weight != 0 || empty.MirrorSize != 0 {
		t.Fatalf("empty cut: %+v", empty)
	}
	full := tr.CutLeafSetOf(map[int]bool{1: true, 2: true, 3: true})
	if full.Weight != 0 {
		t.Fatalf("full cut weight = %v, want 0", full.Weight)
	}
	if full.MirrorSize != 4 {
		t.Fatalf("full mirror size = %d, want all nodes", full.MirrorSize)
	}
}

func TestCutLeafSetInfiniteEdges(t *testing.T) {
	// Two leaves joined to the root by infinite edges: separating them
	// costs +Inf.
	tr := star(math.Inf(1), math.Inf(1))
	res := tr.CutLeafSetOf(map[int]bool{1: true})
	if !math.IsInf(res.Weight, 1) {
		t.Fatalf("weight = %v, want +Inf", res.Weight)
	}
}

func TestCutLeafSetOfPanicsOnInternal(t *testing.T) {
	tr := New()
	a := tr.AddChild(0, 1)
	tr.AddChild(a, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.CutLeafSetOf(map[int]bool{a: true})
}

// randomTree builds a random tree with about n nodes and random weights.
func randomTree(rng *rand.Rand, n int) *Tree {
	tr := New()
	for tr.N() < n {
		p := rng.Intn(tr.N())
		tr.AddChild(p, 1+rng.Float64()*9)
	}
	return tr
}

// bruteCut enumerates all 2^internal labelings to find the minimum cut
// weight separating S leaves from non-S leaves.
func bruteCut(tr *Tree, inS map[int]bool) float64 {
	var internal []int
	labels := make([]byte, tr.N())
	for v := 0; v < tr.N(); v++ {
		if tr.IsLeaf(v) {
			if inS[v] {
				labels[v] = 1
			}
		} else {
			internal = append(internal, v)
		}
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<uint(len(internal)); mask++ {
		for i, v := range internal {
			labels[v] = byte(mask >> uint(i) & 1)
		}
		var c float64
		for v := 1; v < tr.N(); v++ {
			if labels[v] != labels[tr.Parent(v)] {
				c += tr.EdgeWeight(v)
			}
		}
		if c < best {
			best = c
		}
	}
	return best
}

// Property: the cut DP matches brute force on random small trees and
// random leaf subsets.
func TestCutLeafSetMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3+rng.Intn(10))
		inS := map[int]bool{}
		for _, l := range tr.Leaves() {
			if rng.Float64() < 0.5 {
				inS[l] = true
			}
		}
		got := tr.CutLeafSetOf(inS)
		want := bruteCut(tr, inS)
		if math.Abs(got.Weight-want) > 1e-9 {
			return false
		}
		// The reported cut edges must sum to the weight and their removal
		// must realize the mirror partition.
		var sum float64
		for _, v := range got.CutEdges {
			sum += tr.EdgeWeight(v)
		}
		if math.Abs(sum-got.Weight) > 1e-9 {
			return false
		}
		// Mirror contains exactly the S leaves among leaves.
		for _, l := range tr.Leaves() {
			if got.InMirror[l] != inS[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: binarization preserves CUT weights for every leaf subset.
func TestBinarizePreservesCuts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 3+rng.Intn(8))
		bt, origOf := tr.Binarize()
		// Map original leaves to binarized leaves.
		leafOf := map[int]int{}
		for _, l := range bt.Leaves() {
			leafOf[origOf[l]] = l
		}
		inS := map[int]bool{}
		for _, l := range tr.Leaves() {
			if rng.Float64() < 0.5 {
				inS[l] = true
			}
		}
		binS := map[int]bool{}
		for l := range inS {
			binS[leafOf[l]] = true
		}
		a := tr.CutLeafSetOf(inS).Weight
		b := bt.CutLeafSetOf(binS).Weight
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
