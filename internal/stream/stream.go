package stream

import (
	"fmt"
	"math"
	"math/rand"

	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// DirEdge is a directed operator channel carrying Rate messages per
// second at nominal input rate.
type DirEdge struct {
	From, To int
	Rate     float64
}

// Topology is a stream-processing operator graph.
type Topology struct {
	// Names labels each operator (for reports).
	Names []string
	// Demand is the CPU fraction each operator needs at nominal rate.
	Demand []float64
	// Edges are the directed channels.
	Edges []DirEdge
}

// N returns the number of operators.
func (t *Topology) N() int { return len(t.Names) }

// addOp appends an operator.
func (t *Topology) addOp(name string, demand float64) int {
	t.Names = append(t.Names, name)
	t.Demand = append(t.Demand, demand)
	return len(t.Names) - 1
}

// connect adds a channel.
func (t *Topology) connect(from, to int, rate float64) {
	t.Edges = append(t.Edges, DirEdge{From: from, To: to, Rate: rate})
}

// CommGraph converts the topology into the undirected weighted task
// graph that the partitioners consume: vertex demands are CPU demands
// and edge weights are total message rates between operator pairs.
func (t *Topology) CommGraph() *graph.Graph {
	g := graph.New(t.N())
	for v, d := range t.Demand {
		g.SetDemand(v, d)
	}
	for _, e := range t.Edges {
		if e.From != e.To {
			g.AddEdge(e.From, e.To, e.Rate)
		}
	}
	return g
}

// Pipeline builds a linear chain of stages, each stage replicated
// `width` ways with shuffle (all-to-all) channels between consecutive
// stages. Demands and per-channel rates are uniform in the given ranges.
func Pipeline(rng *rand.Rand, stages, width int, dLo, dHi, rate float64) *Topology {
	if stages < 1 || width < 1 {
		panic("stream: Pipeline needs stages ≥ 1 and width ≥ 1")
	}
	t := &Topology{}
	prev := make([]int, 0, width)
	for s := 0; s < stages; s++ {
		cur := make([]int, 0, width)
		for w := 0; w < width; w++ {
			cur = append(cur, t.addOp(fmt.Sprintf("stage%d[%d]", s, w), dLo+rng.Float64()*(dHi-dLo)))
		}
		for _, p := range prev {
			for _, c := range cur {
				t.connect(p, c, rate/float64(width))
			}
		}
		prev = cur
	}
	return t
}

// FanInAggregation builds the classic ingest→parse→aggregate→sink shape:
// `sources` ingest operators each feeding a private parser, parsers
// shuffled into `aggs` aggregators, all aggregators into one sink.
// Parser→aggregator traffic dominates (rate), ingest→parse is heavier
// still (3·rate), aggregator→sink is light (rate/10).
func FanInAggregation(rng *rand.Rand, sources, aggs int, dLo, dHi, rate float64) *Topology {
	if sources < 1 || aggs < 1 {
		panic("stream: FanInAggregation needs sources ≥ 1 and aggs ≥ 1")
	}
	t := &Topology{}
	sink := t.addOp("sink", dLo+rng.Float64()*(dHi-dLo))
	var aggIDs []int
	for a := 0; a < aggs; a++ {
		id := t.addOp(fmt.Sprintf("agg[%d]", a), dLo+rng.Float64()*(dHi-dLo))
		aggIDs = append(aggIDs, id)
		t.connect(id, sink, rate/10)
	}
	for s := 0; s < sources; s++ {
		src := t.addOp(fmt.Sprintf("src[%d]", s), dLo+rng.Float64()*(dHi-dLo))
		parse := t.addOp(fmt.Sprintf("parse[%d]", s), dLo+rng.Float64()*(dHi-dLo))
		t.connect(src, parse, 3*rate)
		for _, a := range aggIDs {
			t.connect(parse, a, rate/float64(aggs))
		}
	}
	return t
}

// Diamond builds `lanes` independent split→(two parallel ops)→merge
// diamonds chained behind a common source, a latency-sensitive shape
// common in enrichment pipelines.
func Diamond(rng *rand.Rand, lanes int, dLo, dHi, rate float64) *Topology {
	if lanes < 1 {
		panic("stream: Diamond needs lanes ≥ 1")
	}
	t := &Topology{}
	src := t.addOp("source", dLo+rng.Float64()*(dHi-dLo))
	for l := 0; l < lanes; l++ {
		split := t.addOp(fmt.Sprintf("split[%d]", l), dLo+rng.Float64()*(dHi-dLo))
		a := t.addOp(fmt.Sprintf("enrichA[%d]", l), dLo+rng.Float64()*(dHi-dLo))
		b := t.addOp(fmt.Sprintf("enrichB[%d]", l), dLo+rng.Float64()*(dHi-dLo))
		merge := t.addOp(fmt.Sprintf("merge[%d]", l), dLo+rng.Float64()*(dHi-dLo))
		t.connect(src, split, rate/float64(lanes))
		t.connect(split, a, rate/float64(2*lanes))
		t.connect(split, b, rate/float64(2*lanes))
		t.connect(a, merge, rate/float64(2*lanes))
		t.connect(b, merge, rate/float64(2*lanes))
	}
	return t
}

// WordCount builds the canonical splitter→counter shuffle: `splitters`
// tokenizers all-to-all into `counters` keyed reducers, counters into a
// single reporter — the benchmark topology of Storm-like systems.
func WordCount(rng *rand.Rand, splitters, counters int, dLo, dHi, rate float64) *Topology {
	if splitters < 1 || counters < 1 {
		panic("stream: WordCount needs splitters ≥ 1 and counters ≥ 1")
	}
	t := &Topology{}
	report := t.addOp("report", dLo+rng.Float64()*(dHi-dLo))
	var cnt []int
	for c := 0; c < counters; c++ {
		id := t.addOp(fmt.Sprintf("count[%d]", c), dLo+rng.Float64()*(dHi-dLo))
		cnt = append(cnt, id)
		t.connect(id, report, rate/20)
	}
	for s := 0; s < splitters; s++ {
		sp := t.addOp(fmt.Sprintf("split[%d]", s), dLo+rng.Float64()*(dHi-dLo))
		for _, c := range cnt {
			t.connect(sp, c, rate/float64(counters))
		}
	}
	return t
}

// JoinTree builds a binary tree of stream-stream joins over `inputs`
// leaf streams (inputs must be a power of two ≥ 2).
func JoinTree(rng *rand.Rand, inputs int, dLo, dHi, rate float64) *Topology {
	if inputs < 2 || inputs&(inputs-1) != 0 {
		panic("stream: JoinTree needs a power-of-two inputs ≥ 2")
	}
	t := &Topology{}
	level := make([]int, 0, inputs)
	for i := 0; i < inputs; i++ {
		level = append(level, t.addOp(fmt.Sprintf("in[%d]", i), dLo+rng.Float64()*(dHi-dLo)))
	}
	depth := 0
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += 2 {
			j := t.addOp(fmt.Sprintf("join%d[%d]", depth, i/2), dLo+rng.Float64()*(dHi-dLo))
			t.connect(level[i], j, rate)
			t.connect(level[i+1], j, rate)
			next = append(next, j)
		}
		level = next
		depth++
		rate /= 2 // joins reduce volume
	}
	return t
}

// Model converts hierarchy cost multipliers into per-message CPU
// overhead for the throughput simulation.
type Model struct {
	// OverheadPerMsg is the CPU fraction consumed on BOTH endpoint cores
	// per message per unit of cost multiplier. Zero means 1e-4 (so a
	// rate-100 channel across a cm-25 boundary adds 0.25 core).
	OverheadPerMsg float64
}

func (m Model) overhead() float64 {
	if m.OverheadPerMsg == 0 {
		return 1e-4
	}
	return m.OverheadPerMsg
}

// Throughput returns the largest input-rate multiplier λ the placement
// sustains: every core's load (base demand plus communication overhead,
// both proportional to λ) must stay within its unit capacity, so
// λ = 1 / max core load at nominal rate. Co-located endpoints pay
// cm(h) (zero for normalized hierarchies).
func (m Model) Throughput(t *Topology, H *hierarchy.Hierarchy, a metrics.Assignment) float64 {
	if len(a) != t.N() {
		panic("stream: assignment size mismatch")
	}
	loads := make([]float64, H.Leaves())
	for v, l := range a {
		if l < 0 || l >= H.Leaves() {
			panic(fmt.Sprintf("stream: operator %d unassigned or out of range (%d)", v, l))
		}
		loads[l] += t.Demand[v]
	}
	ovh := m.overhead()
	for _, e := range t.Edges {
		cm := H.CM(H.LCALevel(a[e.From], a[e.To]))
		loads[a[e.From]] += e.Rate * cm * ovh
		loads[a[e.To]] += e.Rate * cm * ovh
	}
	worst := 0.0
	for _, l := range loads {
		if l > worst {
			worst = l
		}
	}
	if worst == 0 {
		return math.Inf(1)
	}
	return 1 / worst
}

// AvgMsgCost returns the rate-weighted average per-message communication
// cost of a placement — the latency proxy reported by experiment E6.
func AvgMsgCost(t *Topology, H *hierarchy.Hierarchy, a metrics.Assignment) float64 {
	var num, den float64
	for _, e := range t.Edges {
		num += e.Rate * H.CM(H.LCALevel(a[e.From], a[e.To]))
		den += e.Rate
	}
	if den == 0 {
		return 0
	}
	return num / den
}
