package stream_test

import (
	"fmt"
	"math/rand"

	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/stream"
)

// The analytic throughput model: a hot two-operator chain sustains more
// input the closer its operators sit in the hierarchy.
func ExampleModel_Throughput() {
	topo := stream.Pipeline(rand.New(rand.NewSource(1)), 2, 1, 0.3, 0.3, 100)
	h := hierarchy.NUMASockets(2, 2) // cm = [20 4 0]
	m := stream.Model{OverheadPerMsg: 1e-3}

	sameSocket := metrics.Assignment{0, 1}
	crossSocket := metrics.Assignment{0, 2}
	fmt.Printf("same socket:  λ = %.3f\n", m.Throughput(topo, h, sameSocket))
	fmt.Printf("cross socket: λ = %.3f\n", m.Throughput(topo, h, crossSocket))
	// Output:
	// same socket:  λ = 1.429
	// cross socket: λ = 0.435
}
