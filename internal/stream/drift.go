package stream

import (
	"math"
	"math/rand"
)

// Drift returns a copy of the topology after one epoch of workload
// drift: every channel rate and operator demand is scaled by an
// independent multiplicative factor drawn uniformly from
// [1−vol, 1+vol]. Demands are quantized to 1/16 steps (capacity
// estimators report coarse numbers) and clamped to (0, 1]. Production
// traces being proprietary, this random walk stands in for the
// rate/load churn a stream warehouse observes between re-planning
// intervals.
func Drift(rng *rand.Rand, t *Topology, vol float64) *Topology {
	out := &Topology{
		Names:  append([]string(nil), t.Names...),
		Demand: make([]float64, len(t.Demand)),
		Edges:  make([]DirEdge, len(t.Edges)),
	}
	for v, d := range t.Demand {
		nd := d * (1 - vol + 2*vol*rng.Float64())
		nd = math.Ceil(nd*16) / 16
		if nd <= 0 {
			nd = 1.0 / 16
		}
		if nd > 1 {
			nd = 1
		}
		out.Demand[v] = nd
	}
	for i, e := range t.Edges {
		out.Edges[i] = DirEdge{
			From: e.From,
			To:   e.To,
			Rate: e.Rate * (1 - vol + 2*vol*rng.Float64()),
		}
	}
	return out
}
