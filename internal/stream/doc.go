// Package stream models the parallelized data-stream-processing systems
// that motivate the paper (§1: TidalRace at AT&T, IBM InfoSphere,
// Storm): a DAG of operators with CPU demands and message rates, pinned
// onto a hierarchical machine. Because production traces are
// proprietary, the package generates the canonical topology shapes those
// systems run — pipelines, fan-out/fan-in aggregation, diamonds,
// word-count-style shuffles, and join trees — and provides an analytic
// throughput simulator whose communication overhead grows with the
// hierarchy distance between the endpoints' cores, which is exactly the
// quantity the HGP objective minimizes (experiment E6).
//
// Main entry points: Pipeline, FanInAggregation, Diamond, WordCount,
// and JoinTree build a Topology; Topology.CommGraph lowers it to the HGP
// input; Simulate runs the discrete-event simulator (SimConfig →
// SimResult), MaxStableRate binary-searches the saturation throughput,
// and Drift perturbs a topology for the dynamic-repartitioning
// experiments.
package stream
