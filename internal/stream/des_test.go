package stream

import (
	"math/rand"
	"testing"

	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// twoOpChain builds src → sink with the given demands and rate.
func twoOpChain(dSrc, dSink, rate float64) *Topology {
	p := &Topology{}
	a := p.addOp("src", dSrc)
	b := p.addOp("sink", dSink)
	p.connect(a, b, rate)
	return p
}

func TestSimulateDeliversAtNominalRate(t *testing.T) {
	p := twoOpChain(0.2, 0.2, 50)
	h := hierarchy.NUMASockets(2, 2)
	res := Simulate(p, h, metrics.Assignment{0, 1}, SimConfig{
		Rate: 1, Duration: 20, Model: Model{OverheadPerMsg: 1e-4}, Seed: 1,
	})
	if !res.Stable {
		t.Fatalf("nominal rate should be stable: %+v", res)
	}
	// 50 msg/s for 18 post-warmup seconds ≈ 900 deliveries.
	if res.Delivered < 800 || res.Delivered > 1000 {
		t.Fatalf("delivered = %d, want ≈900", res.Delivered)
	}
	if res.Throughput < 40 || res.Throughput > 60 {
		t.Fatalf("throughput = %v, want ≈50", res.Throughput)
	}
	if res.MeanLatency <= 0 || res.P95Latency < res.MeanLatency {
		t.Fatalf("latency stats inconsistent: %+v", res)
	}
}

func TestSimulateOverloadIsUnstable(t *testing.T) {
	p := twoOpChain(0.4, 0.4, 50)
	h := hierarchy.NUMASockets(2, 2)
	a := metrics.Assignment{0, 1}
	cfg := SimConfig{Duration: 20, Model: Model{OverheadPerMsg: 1e-4}, Seed: 1}
	cfg.Rate = 1
	if res := Simulate(p, h, a, cfg); !res.Stable {
		t.Fatalf("40%% utilization must be stable: %+v", res)
	}
	cfg.Rate = 4 // 160% demand on each core
	if res := Simulate(p, h, a, cfg); res.Stable {
		t.Fatalf("4× overload must be unstable: %+v", res)
	}
}

func TestSimulateCrossSocketCostsLatency(t *testing.T) {
	// A hot channel: co-socket placement must deliver lower latency than
	// cross-socket under the same load.
	p := twoOpChain(0.3, 0.3, 200)
	h := hierarchy.NUMASockets(2, 2) // cm [20 4 0]
	cfg := SimConfig{Rate: 1, Duration: 10, Model: Model{OverheadPerMsg: 5e-4}, Seed: 2}
	same := Simulate(p, h, metrics.Assignment{0, 1}, cfg)
	cross := Simulate(p, h, metrics.Assignment{0, 2}, cfg)
	if !same.Stable {
		t.Fatalf("same-socket run unstable: %+v", same)
	}
	if same.MeanLatency >= cross.MeanLatency {
		t.Fatalf("same-socket latency %v not below cross-socket %v", same.MeanLatency, cross.MeanLatency)
	}
}

func TestMaxStableRateOrdering(t *testing.T) {
	// The DES's stability limit should rank placements like the analytic
	// model does on a communication-heavy chain.
	p := twoOpChain(0.25, 0.25, 100)
	h := hierarchy.NUMASockets(2, 2)
	cfg := SimConfig{Duration: 8, Model: Model{OverheadPerMsg: 1e-3}, Seed: 3}
	same := MaxStableRate(p, h, metrics.Assignment{0, 1}, cfg, 0.25, 16, 8)
	cross := MaxStableRate(p, h, metrics.Assignment{0, 2}, cfg, 0.25, 16, 8)
	if same <= cross {
		t.Fatalf("same-socket limit %v not above cross-socket %v", same, cross)
	}
	m := Model{OverheadPerMsg: 1e-3}
	if (m.Throughput(p, h, metrics.Assignment{0, 1}) > m.Throughput(p, h, metrics.Assignment{0, 2})) !=
		(same > cross) {
		t.Fatal("DES and analytic model disagree on ordering")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := FanInAggregation(rng, 3, 2, 0.1, 0.3, 30)
	h := hierarchy.NUMASockets(2, 4)
	a := metrics.Assignment{}
	for v := 0; v < p.N(); v++ {
		a = append(a, v%h.Leaves())
	}
	cfg := SimConfig{Rate: 1, Duration: 5, Seed: 9}
	r1 := Simulate(p, h, a, cfg)
	r2 := Simulate(p, h, a, cfg)
	if r1 != r2 {
		t.Fatalf("same seed differs: %+v vs %+v", r1, r2)
	}
	cfg.Seed = 10
	r3 := Simulate(p, h, a, cfg)
	if r1 == r3 {
		t.Fatal("different seeds should differ in jitter")
	}
}

func TestSimulatePanics(t *testing.T) {
	p := twoOpChain(0.1, 0.1, 10)
	h := hierarchy.FlatKWay(2)
	for name, fn := range map[string]func(){
		"short assignment": func() { Simulate(p, h, metrics.Assignment{0}, SimConfig{Rate: 1}) },
		"zero rate":        func() { Simulate(p, h, metrics.Assignment{0, 1}, SimConfig{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSimulateFanOutThinning(t *testing.T) {
	// One splitter into 4 counters with equal rates: deliveries should
	// spread across all counters (each is a sink).
	rng := rand.New(rand.NewSource(6))
	p := WordCount(rng, 1, 4, 0.05, 0.1, 40)
	// Strip the reporter edges so counters are sinks? WordCount wires
	// counters → report; deliveries land at the report op. Just check
	// the run completes and delivers.
	h := hierarchy.NUMASockets(2, 4)
	a := metrics.Assignment{}
	for v := 0; v < p.N(); v++ {
		a = append(a, v%h.Leaves())
	}
	res := Simulate(p, h, a, SimConfig{Rate: 1, Duration: 10, Seed: 7})
	if res.Delivered == 0 {
		t.Fatalf("no deliveries: %+v", res)
	}
}
