package stream

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// The discrete-event simulator complements the analytic Model: instead
// of comparing steady-state utilizations it actually runs the topology —
// sources emit messages, every operator's work is serialized through the
// core it is pinned to (FIFO), and each traversed channel charges both
// endpoint cores per-message CPU overhead proportional to the hierarchy
// distance of the placement. Latency, queueing, and the stability limit
// emerge rather than being assumed, which is what makes placements that
// look similar in aggregate cost behave differently under load.

// SimConfig parameterizes a simulation run.
type SimConfig struct {
	// Rate scales every channel's nominal message rate (the λ of the
	// analytic model). 1.0 reproduces nominal load.
	Rate float64
	// Duration is the simulated time horizon in seconds. Zero means 10.
	Duration float64
	// Warmup discards messages completed before this time. Zero means
	// 10% of Duration.
	Warmup float64
	// Model supplies the per-message CPU overhead per cm unit.
	Model Model
	// Seed drives arrival jitter; runs are deterministic per seed.
	Seed int64
}

// SimResult summarizes a run.
type SimResult struct {
	// Delivered is the number of messages that reached a sink (an
	// operator with no outgoing channels) after warmup.
	Delivered int
	// Throughput is Delivered per simulated second after warmup.
	Throughput float64
	// MeanLatency and P95Latency are source-to-sink delays in seconds.
	MeanLatency, P95Latency float64
	// MaxQueueDelay is the longest any message waited for its core
	// before service began — growth across Rate values reveals the
	// stability limit.
	MaxQueueDelay float64
	// Stable reports whether every core's backlog at the horizon is
	// small relative to the messages it processed (an unstable core
	// keeps accumulating work).
	Stable bool
}

// event is a scheduled simulator occurrence.
type event struct {
	at   float64
	seq  int64 // tie-break for determinism
	kind byte  // 'a' = arrival of a message at an operator, 'g' = source generation
	op   int   // operator
	msg  *message
}

type message struct {
	born float64 // time it left its source
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulate runs the topology under the placement. Per message, operator
// v consumes Demand[v]/inRate(v) CPU-seconds of its core (so at Rate 1
// its utilization is exactly its demand), plus cm·OverheadPerMsg on both
// endpoint cores per traversed channel. Each core serializes all work
// pinned to it. Messages fan out on every outgoing channel with
// probability rate-proportional routing preserved in expectation by
// thinning. It panics on malformed placements.
func Simulate(t *Topology, H *hierarchy.Hierarchy, a metrics.Assignment, cfg SimConfig) SimResult {
	if len(a) != t.N() {
		panic("stream: assignment size mismatch")
	}
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("stream: bad rate %v", cfg.Rate))
	}
	duration := cfg.Duration
	if duration == 0 {
		duration = 10
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = duration / 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ovh := cfg.Model.overhead()

	// Static structure: per-operator outgoing channels, nominal input
	// rates, and source detection.
	outs := make([][]DirEdge, t.N())
	inRate := make([]float64, t.N())
	for _, e := range t.Edges {
		outs[e.From] = append(outs[e.From], e)
		inRate[e.To] += e.Rate
	}
	var sources []int
	genRate := make([]float64, t.N())
	for v := 0; v < t.N(); v++ {
		if inRate[v] == 0 && len(outs[v]) > 0 {
			sources = append(sources, v)
			for _, e := range outs[v] {
				genRate[v] += e.Rate
			}
		}
	}
	// Per-message service work of operator v (CPU-seconds on its core):
	// demand divided by its nominal total message rate so that at
	// cfg.Rate = 1 the operator's utilization equals its demand. The
	// forwarding probability of channel e is e.Rate over the operator's
	// reference rate, which models both shuffle splitting (a message
	// goes to ONE of k equal channels) and selectivity (an aggregator
	// emits fewer messages than it absorbs).
	work := make([]float64, t.N())
	fwdProb := make([][]float64, t.N())
	for v := 0; v < t.N(); v++ {
		r := inRate[v]
		if r == 0 {
			r = genRate[v]
		}
		if r > 0 {
			work[v] = t.Demand[v] / r
		}
		fwdProb[v] = make([]float64, len(outs[v]))
		for i, e := range outs[v] {
			if r > 0 {
				fwdProb[v][i] = e.Rate / r
			}
		}
	}

	// Core state: the time each core becomes free.
	coreFree := make([]float64, H.Leaves())
	processed := make([]int, H.Leaves())
	maxQueueDelay := 0.0

	var q eventQueue
	var seq int64
	push := func(at float64, kind byte, op int, msg *message) {
		seq++
		heap.Push(&q, &event{at: at, seq: seq, kind: kind, op: op, msg: msg})
	}
	// Prime the sources with jittered phase.
	for _, s := range sources {
		push(rng.Float64()/(genRate[s]*cfg.Rate), 'g', s, nil)
	}

	var latencies []float64
	delivered := 0

	for q.Len() > 0 {
		ev := heap.Pop(&q).(*event)
		if ev.at > duration {
			break
		}
		switch ev.kind {
		case 'g':
			// A source emits one message per outgoing channel share and
			// reschedules itself.
			m := &message{born: ev.at}
			core := a[ev.op]
			start := math.Max(ev.at, coreFree[core])
			finish := start + work[ev.op]*1 // source processing
			coreFree[core] = finish
			processed[core]++
			forward(outs[ev.op], fwdProb[ev.op], H, a, m, finish, ovh, coreFree, rng, push)
			next := ev.at + 1/(genRate[ev.op]*cfg.Rate)
			push(next, 'g', ev.op, nil)
		case 'a':
			core := a[ev.op]
			start := math.Max(ev.at, coreFree[core])
			if wait := start - ev.at; wait > maxQueueDelay {
				maxQueueDelay = wait
			}
			finish := start + work[ev.op]
			coreFree[core] = finish
			processed[core]++
			if len(outs[ev.op]) == 0 {
				// Sink: record delivery.
				if finish >= warmup {
					delivered++
					latencies = append(latencies, finish-ev.msg.born)
				}
			} else {
				forward(outs[ev.op], fwdProb[ev.op], H, a, ev.msg, finish, ovh, coreFree, rng, push)
			}
		}
	}

	res := SimResult{
		Delivered:     delivered,
		Throughput:    float64(delivered) / (duration - warmup),
		MaxQueueDelay: maxQueueDelay,
		Stable:        true,
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / float64(len(latencies))
		res.P95Latency = latencies[int(float64(len(latencies))*0.95)]
	}
	// Stability: a core whose pending work horizon extends far past the
	// simulated end is drowning.
	for c, free := range coreFree {
		if processed[c] > 0 && free > duration*1.5 {
			res.Stable = false
		}
	}
	return res
}

// forward routes a processed message along each outgoing channel with
// its forwarding probability (shuffle splitting and selectivity), at
// time now, charging communication overhead to both endpoint cores and
// scheduling arrival events with hierarchy-distance transit delay.
func forward(outs []DirEdge, prob []float64, H *hierarchy.Hierarchy, a metrics.Assignment, m *message,
	now, ovh float64, coreFree []float64, rng *rand.Rand, push func(float64, byte, int, *message)) {
	for i, e := range outs {
		if p := prob[i]; p < 1 && rng.Float64() > p {
			continue
		}
		cm := H.CM(H.LCALevel(a[e.From], a[e.To]))
		over := cm * ovh
		coreFree[a[e.From]] += over
		coreFree[a[e.To]] += over
		push(now+over, 'a', e.To, m)
	}
}

// MaxStableRate binary-searches the largest rate multiplier at which the
// simulation stays stable, between lo and hi (hi unstable ⇒ search
// works; if hi is stable it is returned).
func MaxStableRate(t *Topology, H *hierarchy.Hierarchy, a metrics.Assignment, cfg SimConfig, lo, hi float64, iters int) float64 {
	probe := func(rate float64) bool {
		c := cfg
		c.Rate = rate
		return Simulate(t, H, a, c).Stable
	}
	if probe(hi) {
		return hi
	}
	if !probe(lo) {
		return 0
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
