package stream

import (
	"math/rand"
	"testing"

	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func benchSetup() (*Topology, *hierarchy.Hierarchy, metrics.Assignment) {
	rng := rand.New(rand.NewSource(1))
	topo := FanInAggregation(rng, 8, 4, 0.2, 0.5, 40)
	h := hierarchy.NUMASockets(4, 4)
	a := metrics.NewAssignment(topo.N())
	for v := range a {
		a[v] = v % h.Leaves()
	}
	return topo, h, a
}

func BenchmarkAnalyticThroughput(b *testing.B) {
	topo, h, a := benchSetup()
	m := Model{OverheadPerMsg: 1e-3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Throughput(topo, h, a)
	}
}

func BenchmarkSimulate(b *testing.B) {
	topo, h, a := benchSetup()
	cfg := SimConfig{Rate: 0.5, Duration: 5, Model: Model{OverheadPerMsg: 1e-3}, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(topo, h, a, cfg)
	}
}
