package stream

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestPipelineShape(t *testing.T) {
	p := Pipeline(rng(), 3, 2, 0.1, 0.2, 100)
	if p.N() != 6 {
		t.Fatalf("N = %d, want 6", p.N())
	}
	// 2 stage gaps × 2×2 shuffle = 8 channels.
	if len(p.Edges) != 8 {
		t.Fatalf("edges = %d, want 8", len(p.Edges))
	}
	g := p.CommGraph()
	if g.N() != 6 || g.M() != 8 {
		t.Fatalf("comm graph N=%d M=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if d := g.Demand(v); d < 0.1 || d > 0.2 {
			t.Fatalf("demand %v out of range", d)
		}
	}
}

func TestFanInAggregationShape(t *testing.T) {
	p := FanInAggregation(rng(), 4, 2, 0.05, 0.1, 50)
	// sink + 2 aggs + 4×(src+parse) = 11 operators.
	if p.N() != 11 {
		t.Fatalf("N = %d, want 11", p.N())
	}
	// channels: 2 agg→sink + 4 src→parse + 4×2 parse→agg = 14.
	if len(p.Edges) != 14 {
		t.Fatalf("edges = %d, want 14", len(p.Edges))
	}
	if !strings.HasPrefix(p.Names[0], "sink") {
		t.Fatalf("names = %v", p.Names[:3])
	}
}

func TestDiamondAndWordCountAndJoinTree(t *testing.T) {
	d := Diamond(rng(), 3, 0.1, 0.1, 60)
	if d.N() != 1+3*4 || len(d.Edges) != 3*5 {
		t.Fatalf("diamond N=%d E=%d", d.N(), len(d.Edges))
	}
	w := WordCount(rng(), 3, 4, 0.1, 0.1, 80)
	if w.N() != 1+4+3 || len(w.Edges) != 4+3*4 {
		t.Fatalf("wordcount N=%d E=%d", w.N(), len(w.Edges))
	}
	j := JoinTree(rng(), 4, 0.1, 0.1, 40)
	// 4 inputs + 2 joins + 1 join = 7 ops; edges 4 + 2 = 6.
	if j.N() != 7 || len(j.Edges) != 6 {
		t.Fatalf("jointree N=%d E=%d", j.N(), len(j.Edges))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("JoinTree must reject non-power-of-two")
		}
	}()
	JoinTree(rng(), 3, 0.1, 0.1, 1)
}

func TestThroughputPrefersColocation(t *testing.T) {
	// Two operators with a hot channel on a 2-socket machine: same
	// socket (adjacent cores) must beat cross-socket.
	p := &Topology{}
	a := p.addOp("a", 0.3)
	b := p.addOp("b", 0.3)
	p.connect(a, b, 100)
	h := hierarchy.NUMASockets(2, 2) // cm [20 4 0], 4 leaves
	m := Model{OverheadPerMsg: 1e-3}

	sameCore := metrics.Assignment{0, 0}
	sameSocket := metrics.Assignment{0, 1}
	crossSocket := metrics.Assignment{0, 2}

	tpCore := m.Throughput(p, h, sameCore)
	tpSock := m.Throughput(p, h, sameSocket)
	tpCross := m.Throughput(p, h, crossSocket)
	if !(tpCore > tpSock && tpSock > tpCross) {
		t.Fatalf("throughputs not ordered: core %v socket %v cross %v", tpCore, tpSock, tpCross)
	}
	// Hand numbers: same core: load 0.6 → 1/0.6. Same socket: each core
	// 0.3 + 100·4·1e-3 = 0.7 → 1/0.7. Cross: 0.3 + 100·20·1e-3 = 2.3.
	if math.Abs(tpCore-1/0.6) > 1e-9 || math.Abs(tpSock-1/0.7) > 1e-9 || math.Abs(tpCross-1/2.3) > 1e-9 {
		t.Fatalf("throughput values wrong: %v %v %v", tpCore, tpSock, tpCross)
	}
}

func TestAvgMsgCost(t *testing.T) {
	p := &Topology{}
	a := p.addOp("a", 0.1)
	b := p.addOp("b", 0.1)
	c := p.addOp("c", 0.1)
	p.connect(a, b, 10) // will be co-socket: cm 4
	p.connect(b, c, 30) // will be cross-socket: cm 20
	h := hierarchy.NUMASockets(2, 2)
	assign := metrics.Assignment{0, 1, 2}
	want := (10*4.0 + 30*20.0) / 40.0
	if got := AvgMsgCost(p, h, assign); math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg msg cost = %v, want %v", got, want)
	}
	empty := &Topology{}
	empty.addOp("x", 0.1)
	if got := AvgMsgCost(empty, h, metrics.Assignment{0}); got != 0 {
		t.Fatalf("edgeless topology cost = %v", got)
	}
}

func TestThroughputPanics(t *testing.T) {
	p := Pipeline(rng(), 2, 1, 0.1, 0.1, 10)
	h := hierarchy.FlatKWay(2)
	m := Model{}
	for name, fn := range map[string]func(){
		"size":       func() { m.Throughput(p, h, metrics.Assignment{0}) },
		"unassigned": func() { m.Throughput(p, h, metrics.Assignment{0, -1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// TestHGPPlacementBeatsNaive: end-to-end E6 smoke. When CPU demands are
// high enough that tasks cannot simply pile onto one core, the paper's
// placement — which minimizes hierarchy-weighted communication while
// respecting capacity — should sustain more input rate than a
// round-robin spread that pays cross-socket overhead on hot channels.
func TestHGPPlacementBeatsNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := FanInAggregation(r, 8, 4, 0.35, 0.6, 40)
	g := p.CommGraph()
	h := hierarchy.NUMASockets(4, 4)
	res, err := hgp.Solver{Trees: 4, Seed: 2}.Solve(g, h)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin spread: balanced but hierarchy-oblivious.
	spread := metrics.NewAssignment(p.N())
	for v := range spread {
		spread[v] = v % h.Leaves()
	}
	m := Model{OverheadPerMsg: 1e-3}
	tpHGP := m.Throughput(p, h, res.Assignment)
	tpSpread := m.Throughput(p, h, spread)
	if tpHGP < tpSpread {
		t.Fatalf("HGP throughput %v below round-robin %v", tpHGP, tpSpread)
	}
	// The latency proxy must improve too.
	if AvgMsgCost(p, h, res.Assignment) > AvgMsgCost(p, h, spread) {
		t.Fatal("HGP placement has worse average message cost than round-robin")
	}
}
