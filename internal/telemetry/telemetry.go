package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down (queue depth,
// in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram bucket upper bounds, in
// seconds, used by Registry.Histogram: exponential from 100µs to ~100s,
// sized for solve latencies that span tiny cached hits to multi-second
// cold DP runs.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram is a fixed-bucket histogram with atomic counts. Observe is
// lock-free; rendering reads are racy-but-monotone (each bucket count
// is individually consistent), which is the standard trade for
// scrape-style metrics.
type Histogram struct {
	bounds []float64 // bucket upper bounds, ascending; +Inf implied
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (an implicit +Inf bucket is appended).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations ≤ UpperBound (Prometheus "le" semantics).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the overflow bucket's bound as the string "+Inf"
// (Prometheus convention) — encoding/json rejects infinite float64s.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if string(raw.LE) == `"+Inf"` {
		b.UpperBound = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.UpperBound)
}

// HistogramSnapshot is a point-in-time JSON-friendly view of a
// Histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot renders the histogram with cumulative buckets and
// bucket-interpolated quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	cum := int64(0)
	s.Buckets = make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
	}
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P99 = s.quantile(0.99)
	return s
}

// quantile estimates the q-quantile from cumulative buckets by linear
// interpolation inside the bucket that crosses rank q·count (the
// Prometheus histogram_quantile estimator).
func (s HistogramSnapshot) quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	prevCum, prevUB := int64(0), 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return prevUB // best effort: lower bound of the overflow bucket
			}
			in := b.Count - prevCum
			if in == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prevCum)) / float64(in)
			return prevUB + (b.UpperBound-prevUB)*frac
		}
		prevCum, prevUB = b.Count, b.UpperBound
	}
	return prevUB
}

// Registry is a named collection of instruments. Get-or-create
// accessors take a lock only on first use of a name; the returned
// instruments are lock-free.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Default is the process-wide registry that library phase hooks
// (treedecomp, hgpt, hgp) and the server record into.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DropGauge removes the gauge registered under name. It exists for
// series tied to an entity that can cease to exist — a cluster peer
// removed by a membership reload — which must disappear from scrapes
// instead of lingering at a stale value forever. Dropping an
// unregistered name is a no-op; a *Gauge handed out before the drop
// keeps working but no longer renders.
func (r *Registry) DropGauge(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gauges, name)
}

// Histogram returns the histogram registered under name, creating it
// with DefaultLatencyBuckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(DefaultLatencyBuckets)
		r.hists[name] = h
	}
	return h
}

// Series renders a labeled series name — `name{k1="v1",k2="v2"}` —
// from alternating key/value pairs, with the labels sorted by key so
// every call site produces the same series string for the same label
// set (the registry stores labeled instruments under their full series
// name, so two spellings of one label set would silently become two
// instruments). Values are quoted with %q, matching what
// WritePrometheus expects to pass through verbatim. An odd trailing
// label key is ignored; no labels returns name unchanged.
func Series(name string, labels ...string) string {
	n := len(labels) / 2
	if n == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, n)
	for i := 0; i < n; i++ {
		pairs[i] = kv{labels[2*i], labels[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// ObserveDuration records d, in seconds, into the named histogram of
// the Default registry — the hook the solver pipeline calls to expose
// phase timings (phase_decompose_seconds, phase_dp_seconds, …).
func ObserveDuration(name string, d time.Duration) {
	Default.Histogram(name).Observe(d.Seconds())
}

// Snapshot is a point-in-time JSON-friendly view of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument currently registered.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counts {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), instruments sorted by name so the
// output is diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	// Labeled instruments are registered under their full series name
	// (`degraded_total{tier="baseline"}`); the TYPE header must name the
	// metric family — the part before the label set — and appear once per
	// family. Sorting groups a family's series together, so emitting the
	// header on each family change is enough.
	typed := map[string]bool{}
	typeLine := func(name, kind string) {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			p("# TYPE %s %s\n", base, kind)
		}
	}
	for _, n := range sortedKeys(snap.Counters) {
		typeLine(n, "counter")
		p("%s %d\n", n, snap.Counters[n])
	}
	for _, n := range sortedKeys(snap.Gauges) {
		typeLine(n, "gauge")
		p("%s %d\n", n, snap.Gauges[n])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := snap.Histograms[n]
		p("# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			p("%s_bucket{le=%q} %d\n", n, le, b.Count)
		}
		p("%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	return err
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
