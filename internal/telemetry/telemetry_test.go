package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-9 {
		t.Fatalf("sum = %g, want 106.5", h.Sum())
	}
	s := h.Snapshot()
	wantCum := []int64{1, 3, 4, 5} // ≤1, ≤2, ≤4, ≤Inf
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
	// rank(p50) = 2.5 lands in the (1,2] bucket.
	if s.P50 <= 1 || s.P50 > 2 {
		t.Fatalf("p50 = %g, want in (1,2]", s.P50)
	}
	// rank(p99) = 4.95 lands in the overflow bucket → clamps to its lower bound.
	if s.P99 != 4 {
		t.Fatalf("p99 = %g, want 4 (overflow clamp)", s.P99)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := NewHistogram([]float64{1}).Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestObserveDurationDefault(t *testing.T) {
	name := "test_observe_duration_seconds"
	before := Default.Histogram(name).Count()
	ObserveDuration(name, 3*time.Millisecond)
	h := Default.Histogram(name)
	if h.Count() != before+1 {
		t.Fatalf("count = %d, want %d", h.Count(), before+1)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_depth").Set(-2)
	r.Histogram("c_seconds").Observe(0.003)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3\n",
		"# TYPE b_depth gauge\nb_depth -2\n",
		"# TYPE c_seconds histogram\n",
		`c_seconds_bucket{le="+Inf"} 1`,
		"c_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if math.Abs(r.Histogram("h").Sum()-8.0) > 1e-6 {
		t.Fatalf("histogram sum = %g, want 8", r.Histogram("h").Sum())
	}
}

func TestSeries(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
		want   string
	}{
		{"peer_fetch_total", []string{"outcome", "hit"}, `peer_fetch_total{outcome="hit"}`},
		{"x_total", nil, "x_total"},
		{"x_total", []string{"b", "2", "a", "1"}, `x_total{a="1",b="2"}`},
		{"x_total", []string{"peer", `http://127.0.0.1:8080`}, `x_total{peer="http://127.0.0.1:8080"}`},
		{"x_total", []string{"k", "v", "dangling"}, `x_total{k="v"}`},
	}
	for _, tc := range cases {
		if got := Series(tc.name, tc.labels...); got != tc.want {
			t.Errorf("Series(%q, %v) = %q, want %q", tc.name, tc.labels, got, tc.want)
		}
	}
	// Series output must match the hand-rolled %q formatting the server
	// already uses for its labeled counters, so both spellings land on
	// the same instrument.
	if got, want := Series("shed_total", "reason", "queue_full"), fmt.Sprintf("shed_total{reason=%q}", "queue_full"); got != want {
		t.Fatalf("Series = %q, want %q", got, want)
	}
}

// TestSeriesPrometheusFamilyGrouping pins that Series-named instruments
// render under one TYPE header per family.
func TestSeriesPrometheusFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Series("peer_fetch_total", "outcome", "hit")).Add(2)
	r.Counter(Series("peer_fetch_total", "outcome", "error")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE peer_fetch_total counter") != 1 {
		t.Fatalf("want exactly one TYPE header for the family:\n%s", out)
	}
	for _, want := range []string{`peer_fetch_total{outcome="hit"} 2`, `peer_fetch_total{outcome="error"} 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
