// Package telemetry is the repo's observability layer: allocation-free
// atomic counters, gauges, and fixed-bucket histograms collected in a
// Registry and rendered as JSON (for GET /v1/stats) or Prometheus text
// exposition format (for scrapers).
//
// The paper proves worst-case bounds (Theorems 1–5) but a serving
// deployment needs *realized* behaviour: how long the decomposition
// embed (§4) and the signature DP (§3) actually take per request, how
// often the decomposition cache hits, how deep the admission queue
// runs. Instruments here are recorded from inside internal/treedecomp
// and internal/hgpt (phase timings) and from internal/server (request
// accounting), so production observability matches what the benchmark
// suite measures offline.
//
// Main entry points: Default (the process-wide Registry), the
// Registry.Counter / Registry.Gauge / Registry.Histogram get-or-create
// accessors, ObserveDuration for phase timings, Registry.Snapshot for
// JSON, and Registry.WritePrometheus for the text format. All
// instruments are safe for concurrent use and never block the hot path
// (lock-free atomics after creation).
package telemetry
