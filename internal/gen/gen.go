package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"hierpart/internal/graph"
	"hierpart/internal/tree"
)

// Grid returns the rows×cols grid graph with all edge weights w.
// Vertex (r, c) has ID r*cols + c.
func Grid(rows, cols int, w float64) *graph.Graph {
	g := graph.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1, w)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols, w)
			}
		}
	}
	return g
}

// Torus returns the rows×cols torus (grid with wraparound) with all edge
// weights w. Requires rows, cols ≥ 3 so wrap edges are distinct.
func Torus(rows, cols int, w float64) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("gen: torus needs dims ≥ 3, got %d×%d", rows, cols))
	}
	g := graph.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			g.AddEdge(v, r*cols+(c+1)%cols, w)
			g.AddEdge(v, ((r+1)%rows)*cols+c, w)
		}
	}
	return g
}

// ErdosRenyi returns G(n, p) with uniform random edge weights in
// [1, maxW]. A spanning cycle is added first so the graph is always
// connected (weight 1 edges), which partitioning experiments require.
func ErdosRenyi(rng *rand.Rand, n int, p, maxW float64) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (v-u != 1) && !(u == 0 && v == n-1) && rng.Float64() < p {
				g.AddEdge(u, v, 1+rng.Float64()*(maxW-1))
			}
		}
	}
	return g
}

// BarabasiAlbert returns a power-law graph grown by preferential
// attachment: each new vertex attaches to m existing vertices chosen
// proportionally to degree. Edge weights are uniform in [1, maxW].
func BarabasiAlbert(rng *rand.Rand, n, m int, maxW float64) *graph.Graph {
	if n < m+1 || m < 1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n > m ≥ 1, got n=%d m=%d", n, m))
	}
	g := graph.New(n)
	// Seed clique of m+1 vertices.
	var targets []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.AddEdge(u, v, 1+rng.Float64()*(maxW-1))
			targets = append(targets, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		// Sorted iteration: ranging over the map directly would draw the
		// weight randomness and grow `targets` in a per-run order, making
		// the graph nondeterministic for a fixed seed.
		picks := make([]int, 0, m)
		for u := range chosen {
			picks = append(picks, u)
		}
		sort.Ints(picks)
		for _, u := range picks {
			g.AddEdge(v, u, 1+rng.Float64()*(maxW-1))
			targets = append(targets, u, v)
		}
	}
	return g
}

// Community returns a planted-partition graph: parts blocks of size
// blockSize; intra-block edges appear with probability pIn and weight
// wIn, inter-block edges with probability pOut and weight wOut. A cycle
// through each block and a cycle over block representatives keep the
// graph connected.
func Community(rng *rand.Rand, parts, blockSize int, pIn, pOut, wIn, wOut float64) *graph.Graph {
	n := parts * blockSize
	g := graph.New(n)
	for b := 0; b < parts; b++ {
		base := b * blockSize
		for i := 0; i < blockSize; i++ {
			if blockSize > 1 {
				g.AddEdge(base+i, base+(i+1)%blockSize, wIn)
			}
			for j := i + 1; j < blockSize; j++ {
				if !adjacentInCycle(i, j, blockSize) && rng.Float64() < pIn {
					g.AddEdge(base+i, base+j, wIn)
				}
			}
		}
	}
	for b := 0; b < parts; b++ {
		if parts > 1 {
			g.AddEdge(b*blockSize, ((b+1)%parts)*blockSize, wOut)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/blockSize != v/blockSize && rng.Float64() < pOut && !g.HasEdge(u, v) {
				g.AddEdge(u, v, wOut)
			}
		}
	}
	return g
}

func adjacentInCycle(i, j, n int) bool {
	if n <= 1 {
		return false
	}
	d := j - i
	if d < 0 {
		d = -d
	}
	return d == 1 || d == n-1
}

// UniformDemands assigns each vertex a demand drawn uniformly from
// [lo, hi].
func UniformDemands(rng *rand.Rand, g *graph.Graph, lo, hi float64) {
	for v := 0; v < g.N(); v++ {
		g.SetDemand(v, lo+rng.Float64()*(hi-lo))
	}
}

// EqualDemands assigns every vertex demand d.
func EqualDemands(g *graph.Graph, d float64) {
	for v := 0; v < g.N(); v++ {
		g.SetDemand(v, d)
	}
}

// RandomTree returns a random rooted tree with n nodes: each new node
// attaches to a uniformly random existing node. Edge weights are uniform
// in [1, maxW]; every leaf receives a uniform demand in [dLo, dHi].
func RandomTree(rng *rand.Rand, n int, maxW, dLo, dHi float64) *tree.Tree {
	if n < 1 {
		panic("gen: RandomTree needs n ≥ 1")
	}
	t := tree.New()
	for t.N() < n {
		p := rng.Intn(t.N())
		t.AddChild(p, 1+rng.Float64()*(maxW-1))
	}
	for _, l := range t.Leaves() {
		t.SetDemand(l, dLo+rng.Float64()*(dHi-dLo))
	}
	return t
}

// Caterpillar returns a caterpillar tree: a spine of the given length
// with legs leaf children per spine node. Spine edges have weight
// spineW, leg edges weight legW, and every leaf demand d.
func Caterpillar(spine, legs int, spineW, legW, d float64) *tree.Tree {
	if spine < 1 || legs < 1 {
		panic("gen: Caterpillar needs spine ≥ 1 and legs ≥ 1")
	}
	t := tree.New()
	cur := t.Root()
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			leaf := t.AddChild(cur, legW)
			t.SetDemand(leaf, d)
		}
		if s+1 < spine {
			cur = t.AddChild(cur, spineW)
		}
	}
	return t
}

// BalancedTree returns a complete tree of the given height where every
// internal node has fanout children; leaves all carry demand d and all
// edges weight w.
func BalancedTree(height, fanout int, w, d float64) *tree.Tree {
	if height < 1 || fanout < 1 {
		panic("gen: BalancedTree needs height ≥ 1 and fanout ≥ 1")
	}
	t := tree.New()
	level := []int{t.Root()}
	for h := 0; h < height; h++ {
		var next []int
		for _, v := range level {
			for f := 0; f < fanout; f++ {
				next = append(next, t.AddChild(v, w))
			}
		}
		level = next
	}
	for _, l := range level {
		t.SetDemand(l, d)
	}
	return t
}
