package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 2)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid must be connected")
	}
	if g.Weight(0, 1) != 2 || g.Weight(0, 4) != 2 {
		t.Fatal("edge weights wrong")
	}
	if g.HasEdge(3, 4) {
		t.Fatal("grid should not wrap rows")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(3, 3, 1)
	if g.N() != 9 || g.M() != 18 {
		t.Fatalf("N=%d M=%d, want 9, 18", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree = %d, want 4", v, g.Degree(v))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny torus")
		}
	}()
	Torus(2, 3, 1)
}

func TestErdosRenyiConnectedAndSeeded(t *testing.T) {
	g1 := ErdosRenyi(rand.New(rand.NewSource(5)), 30, 0.1, 4)
	g2 := ErdosRenyi(rand.New(rand.NewSource(5)), 30, 0.1, 4)
	if !g1.Connected() {
		t.Fatal("ER graph must be connected (cycle backbone)")
	}
	// Compare the sorted edge lists exactly (summing weights would
	// depend on map iteration order in the last float bits).
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same seed must give identical graphs")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed differs at edge %d: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	g3 := ErdosRenyi(rand.New(rand.NewSource(6)), 30, 0.1, 4)
	same := g1.M() == g3.M()
	if same {
		e3 := g3.Edges()
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := BarabasiAlbert(rng, 50, 2, 3)
	if g.N() != 50 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("BA graph must be connected")
	}
	// Seed clique (3 choose 2) + 2 per new vertex.
	wantM := 3 + 2*(50-3)
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	// Power-law-ish: max degree should far exceed m.
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 5 {
		t.Fatalf("max degree = %d, expected a hub", maxDeg)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= m")
		}
	}()
	BarabasiAlbert(rng, 2, 2, 1)
}

func TestCommunity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Community(rng, 4, 8, 0.6, 0.02, 10, 1)
	if g.N() != 32 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("community graph must be connected")
	}
	// Intra-block weight should dominate: cutting one block out should
	// be much cheaper relative to its internal weight.
	block0 := map[int]bool{}
	for i := 0; i < 8; i++ {
		block0[i] = true
	}
	cut := g.CutWeightSet(block0)
	var internal float64
	for _, e := range g.Edges() {
		if block0[e.U] && block0[e.V] {
			internal += e.Weight
		}
	}
	if internal <= cut {
		t.Fatalf("planted structure too weak: internal %v <= cut %v", internal, cut)
	}
}

func TestDemandHelpers(t *testing.T) {
	g := Grid(2, 2, 1)
	EqualDemands(g, 0.25)
	if g.TotalDemand() != 1 {
		t.Fatalf("total = %v", g.TotalDemand())
	}
	UniformDemands(rand.New(rand.NewSource(1)), g, 0.1, 0.2)
	for v := 0; v < g.N(); v++ {
		if d := g.Demand(v); d < 0.1 || d > 0.2 {
			t.Fatalf("demand %v out of range", d)
		}
	}
}

func TestRandomTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		tr := RandomTree(rng, n, 5, 0.1, 0.9)
		if tr.N() != n || tr.Validate() != nil {
			return false
		}
		for _, l := range tr.Leaves() {
			d := tr.Demand(l)
			if d < 0.1 || d > 0.9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillar(t *testing.T) {
	tr := Caterpillar(3, 2, 5, 1, 0.5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 6 {
		t.Fatalf("leaves = %d, want 6", got)
	}
	if tr.TotalDemand() != 3 {
		t.Fatalf("demand = %v, want 3", tr.TotalDemand())
	}
	// Spine length 3 → 2 spine edges + 6 leg edges + root = 9 nodes.
	if tr.N() != 9 {
		t.Fatalf("N = %d, want 9", tr.N())
	}
}

func TestBalancedTree(t *testing.T) {
	tr := BalancedTree(2, 3, 1, 0.25)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 9 {
		t.Fatalf("leaves = %d, want 9", got)
	}
	if tr.N() != 1+3+9 {
		t.Fatalf("N = %d, want 13", tr.N())
	}
	for _, l := range tr.Leaves() {
		if tr.Demand(l) != 0.25 {
			t.Fatal("leaf demand wrong")
		}
	}
}
