package gen

import (
	"math/rand"
	"reflect"
	"testing"

	"hierpart/internal/graph"
)

// TestGeneratorsDeterministic pins per-seed reproducibility of every
// rng-driven generator: two builds from identical seeds must produce
// identical edge lists and demands. Regression test for a map-iteration
// bug in BarabasiAlbert where the attachment targets were visited in
// nondeterministic order, permuting the weight-randomness stream.
func TestGeneratorsDeterministic(t *testing.T) {
	builders := map[string]func(rng *rand.Rand) *graph.Graph{
		"ErdosRenyi": func(rng *rand.Rand) *graph.Graph {
			return ErdosRenyi(rng, 40, 0.15, 5)
		},
		"BarabasiAlbert": func(rng *rand.Rand) *graph.Graph {
			return BarabasiAlbert(rng, 40, 2, 5)
		},
		"Community": func(rng *rand.Rand) *graph.Graph {
			return Community(rng, 4, 8, 0.6, 0.05, 4, 1)
		},
		"UniformDemands": func(rng *rand.Rand) *graph.Graph {
			g := Grid(5, 5, 1)
			UniformDemands(rng, g, 0.2, 0.9)
			return g
		},
	}
	for name, build := range builders {
		for trial := 0; trial < 10; trial++ {
			a := build(rand.New(rand.NewSource(int64(trial))))
			b := build(rand.New(rand.NewSource(int64(trial))))
			if !reflect.DeepEqual(a.Edges(), b.Edges()) {
				t.Fatalf("%s trial %d: edges differ between identical-seed builds", name, trial)
			}
			for v := 0; v < a.N(); v++ {
				if a.Demand(v) != b.Demand(v) {
					t.Fatalf("%s trial %d: demand of %d differs", name, trial, v)
				}
			}
		}
	}
	for trial := 0; trial < 10; trial++ {
		a := RandomTree(rand.New(rand.NewSource(int64(trial))), 30, 5, 0.1, 0.9)
		b := RandomTree(rand.New(rand.NewSource(int64(trial))), 30, 5, 0.1, 0.9)
		if a.N() != b.N() {
			t.Fatalf("RandomTree trial %d: sizes differ", trial)
		}
		for v := 0; v < a.N(); v++ {
			if a.Parent(v) != b.Parent(v) || a.Demand(v) != b.Demand(v) {
				t.Fatalf("RandomTree trial %d: node %d differs", trial, v)
			}
			if v != a.Root() && a.EdgeWeight(v) != b.EdgeWeight(v) {
				t.Fatalf("RandomTree trial %d: edge weight of %d differs", trial, v)
			}
		}
	}
}
