// Package gen generates the synthetic instances used by the examples,
// tests, and benchmark harness: classic graph families (grids, random
// graphs, power-law graphs, planted communities), random trees for the
// HGPT solver, and stream-processing operator DAGs modeled on the
// workloads that motivate the paper (§1).
//
// Every generator takes an explicit *rand.Rand so experiments are
// reproducible from a seed.
//
// Main entry points: Grid, Torus, ErdosRenyi, BarabasiAlbert, and
// Community build graphs; UniformDemands and EqualDemands populate
// vertex demands; RandomTree, Caterpillar, and BalancedTree build trees
// for the tree-side solvers.
package gen
