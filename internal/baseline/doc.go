// Package baseline implements the comparator placement heuristics the
// paper positions itself against (§1.1): hierarchy-oblivious balanced
// k-way partitioning, SCOTCH-style dual recursive bipartitioning
// (Pellegrini '94), METIS-style multilevel partitioning with
// architecture-aware mapping (Moulitsas–Karypis), plus the trivial
// random and BFS-greedy schedulers that model an OS-like placement, and
// a hierarchy-aware local-search refinement pass usable on any
// assignment. Experiment E5 compares them all against the paper's
// algorithm.
//
// Main entry points: Random, GreedyBFS, KBGPOblivious, DualRecursive,
// and Multilevel each produce a metrics.Assignment from a graph and a
// hierarchy; RefineLocal post-optimizes any assignment under a load
// ceiling.
package baseline
