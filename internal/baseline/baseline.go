package baseline

import (
	"math/rand"
	"sort"

	"hierpart/internal/fm"
	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// Random places each vertex on a uniformly random leaf with enough
// spare capacity, falling back to the least-loaded leaf when none fits —
// the "parallelized OS with no locality" strawman of §1.
func Random(rng *rand.Rand, g *graph.Graph, H *hierarchy.Hierarchy) metrics.Assignment {
	k := H.Leaves()
	loads := make([]float64, k)
	assign := metrics.NewAssignment(g.N())
	for v := 0; v < g.N(); v++ {
		d := g.Demand(v)
		placed := false
		for attempt := 0; attempt < 2*k; attempt++ {
			l := rng.Intn(k)
			if loads[l]+d <= 1+1e-9 {
				assign[v] = l
				loads[l] += d
				placed = true
				break
			}
		}
		if !placed {
			best := 0
			for l := 1; l < k; l++ {
				if loads[l] < loads[best] {
					best = l
				}
			}
			assign[v] = best
			loads[best] += d
		}
	}
	return assign
}

// GreedyBFS walks the graph in BFS order from vertex 0 and fills
// hierarchy leaves left to right, moving on when a leaf is full. It is
// locality-aware only by accident of visit order — a simple admission
// controller a practitioner might write first.
func GreedyBFS(g *graph.Graph, H *hierarchy.Hierarchy) metrics.Assignment {
	k := H.Leaves()
	assign := metrics.NewAssignment(g.N())
	loads := make([]float64, k)
	cur := 0
	place := func(v int) {
		d := g.Demand(v)
		for cur < k-1 && loads[cur]+d > 1+1e-9 {
			cur++
		}
		assign[v] = cur
		loads[cur] += d
	}
	seen := make([]bool, g.N())
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			place(v)
			for _, u := range g.SortedNeighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return assign
}

// KBGPOblivious partitions G into k balanced parts by recursive
// bisection — a classical k-BGP heuristic that minimizes total cut
// weight — and then maps the parts onto the hierarchy leaves in a random
// order, ignoring the hierarchy entirely. The gap between this and the
// hierarchy-aware algorithms is what HGP is about.
func KBGPOblivious(rng *rand.Rand, g *graph.Graph, H *hierarchy.Hierarchy) metrics.Assignment {
	k := H.Leaves()
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	parts := splitK(g, rng, all, k)
	perm := rng.Perm(k)
	assign := metrics.NewAssignment(g.N())
	for pi, part := range parts {
		for _, v := range part {
			assign[v] = perm[pi]
		}
	}
	return assign
}

// DualRecursive is SCOTCH-style dual recursive bipartitioning: the task
// graph and the hierarchy are split in lockstep — at level j a cluster
// assigned to a Level-(j) node is divided into DEG(j) demand-balanced,
// cut-minimizing parts, one per child — so expensive levels of the
// hierarchy are cut first and as lightly as possible.
func DualRecursive(rng *rand.Rand, g *graph.Graph, H *hierarchy.Hierarchy) metrics.Assignment {
	assign := metrics.NewAssignment(g.N())
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	var rec func(cluster []int, level, node int)
	rec = func(cluster []int, level, node int) {
		if len(cluster) == 0 {
			return
		}
		if level == H.Height() {
			for _, v := range cluster {
				assign[v] = node
			}
			return
		}
		parts := splitK(g, rng, cluster, H.Deg(level))
		for i, part := range parts {
			rec(part, level+1, node*H.Deg(level)+i)
		}
	}
	rec(all, 0, 0)
	return assign
}

// Multilevel is a METIS-style scheme: coarsen G by heavy-edge matching
// until it is small, run DualRecursive on the coarse graph, project the
// placement back through the matching hierarchy, and polish with
// hierarchy-aware local refinement at each expansion.
func Multilevel(rng *rand.Rand, g *graph.Graph, H *hierarchy.Hierarchy) metrics.Assignment {
	type levelInfo struct {
		g      *graph.Graph
		coarse []int // vertex -> coarse vertex of the next level
	}
	var levels []levelInfo
	cur := g
	minSize := 2 * H.Leaves()
	if minSize < 16 {
		minSize = 16
	}
	for cur.N() > minSize {
		cg, mapTo := coarsen(cur, rng)
		if cg.N() == cur.N() {
			break
		}
		levels = append(levels, levelInfo{g: cur, coarse: mapTo})
		cur = cg
	}
	assign := DualRecursive(rng, cur, H)
	for i := len(levels) - 1; i >= 0; i-- {
		li := levels[i]
		fine := metrics.NewAssignment(li.g.N())
		for v := 0; v < li.g.N(); v++ {
			fine[v] = assign[li.coarse[v]]
		}
		fine = RefineLocal(li.g, H, fine, 1.05, 2)
		assign = fine
	}
	return assign
}

// coarsen contracts a heavy-edge matching: each vertex pairs with its
// heaviest unmatched neighbor. Coarse demands are sums; parallel edges
// merge. Returns the coarse graph and the fine→coarse map.
func coarsen(g *graph.Graph, rng *rand.Rand) (*graph.Graph, []int) {
	n := g.N()
	order := rng.Perm(n)
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for _, v := range order {
		if mate[v] != -1 {
			continue
		}
		best, bestW := -1, 0.0
		g.Neighbors(v, func(u int, w float64) {
			if mate[u] == -1 && u != v && w > bestW {
				best, bestW = u, w
			}
		})
		if best != -1 {
			mate[v] = best
			mate[best] = v
		} else {
			mate[v] = v
		}
	}
	coarseOf := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if mate[v] == v || mate[v] > v {
			coarseOf[v] = next
			if mate[v] != v {
				coarseOf[mate[v]] = next
			}
			next++
		}
	}
	cg := graph.New(next)
	for v := 0; v < n; v++ {
		cg.SetDemand(coarseOf[v], cg.Demand(coarseOf[v])+g.Demand(v))
	}
	for _, e := range g.Edges() {
		cu, cv := coarseOf[e.U], coarseOf[e.V]
		if cu != cv {
			cg.AddEdge(cu, cv, e.Weight)
		}
	}
	return cg, coarseOf
}

// RefineLocal greedily improves an assignment under the Equation (1)
// cost with two move types per sweep: relocating a single vertex to the
// leaf that most reduces cost (subject to every leaf load staying at or
// below maxLoad), and swapping the leaves of a vertex pair when that
// reduces cost without pushing either leaf further over budget. It never
// worsens the cost and works on any starting assignment — including the
// output of the paper's algorithm (experiment E5 reports both).
func RefineLocal(g *graph.Graph, H *hierarchy.Hierarchy, assign metrics.Assignment, maxLoad float64, passes int) metrics.Assignment {
	out := assign.Clone()
	k := H.Leaves()
	n := g.N()
	loads := make([]float64, k)
	for v, l := range out {
		loads[l] += g.Demand(v)
	}
	// costAt is the cost of v's incident edges if v sat on leaf,
	// excluding any edge to the vertex in `ignore` (used for swaps).
	costAt := func(v, leaf, ignore int) float64 {
		var c float64
		g.Neighbors(v, func(u int, w float64) {
			if u == ignore {
				return
			}
			c += w * H.CM(H.LCALevel(leaf, out[u]))
		})
		return c
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			cur := out[v]
			bestLeaf, bestCost := cur, costAt(v, cur, -1)
			for l := 0; l < k; l++ {
				if l == cur {
					continue
				}
				if loads[l]+g.Demand(v) > maxLoad+1e-9 {
					continue
				}
				if c := costAt(v, l, -1); c < bestCost-1e-12 {
					bestLeaf, bestCost = l, c
				}
			}
			if bestLeaf != cur {
				loads[cur] -= g.Demand(v)
				loads[bestLeaf] += g.Demand(v)
				out[v] = bestLeaf
				improved = true
			}
		}
		// Swap pass: exchange the leaves of u and v when profitable and
		// the destination loads do not get worse past the budget.
		for v := 0; v < n; v++ {
			for u := v + 1; u < n; u++ {
				lv, lu := out[v], out[u]
				if lv == lu {
					continue
				}
				dv, du := g.Demand(v), g.Demand(u)
				newLv := loads[lv] - dv + du
				newLu := loads[lu] - du + dv
				if (newLv > maxLoad+1e-9 && newLv > loads[lv]+1e-9) ||
					(newLu > maxLoad+1e-9 && newLu > loads[lu]+1e-9) {
					continue
				}
				vuEdge := g.Weight(v, u) * H.CM(H.LCALevel(lv, lu)) // unchanged by swap
				before := costAt(v, lv, u) + costAt(u, lu, v) + vuEdge
				after := costAt(v, lu, u) + costAt(u, lv, v) + vuEdge
				if after < before-1e-12 {
					out[v], out[u] = lu, lv
					loads[lv], loads[lu] = newLv, newLu
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return out
}

// splitK divides a vertex set into k demand-balanced, cut-minimizing
// parts by recursive proportional bisection. Parts may be empty when the
// set has fewer than k vertices.
func splitK(g *graph.Graph, rng *rand.Rand, cluster []int, k int) [][]int {
	if k == 1 {
		return [][]int{cluster}
	}
	k1 := k / 2
	frac := float64(k1) / float64(k)
	left, right := proportionalBisect(g, rng, cluster, frac)
	parts := splitK(g, rng, left, k1)
	return append(parts, splitK(g, rng, right, k-k1)...)
}

// proportionalBisect splits cluster so the left side holds about frac of
// the total demand, minimizing the internal cut via BFS growth plus
// gain-driven refinement (Fiduccia–Mattheyses style single moves).
func proportionalBisect(g *graph.Graph, rng *rand.Rand, cluster []int, frac float64) (left, right []int) {
	if len(cluster) == 0 {
		return nil, nil
	}
	if len(cluster) == 1 {
		if frac >= 0.5 {
			return cluster, nil
		}
		return nil, cluster
	}
	inCluster := make(map[int]bool, len(cluster))
	var total float64
	for _, v := range cluster {
		inCluster[v] = true
		total += g.Demand(v)
	}
	wgt := func(v int) float64 {
		if total == 0 {
			return 1
		}
		return g.Demand(v)
	}
	totalW := total
	if totalW == 0 {
		totalW = float64(len(cluster))
	}
	target := totalW * frac
	tol := totalW * 0.1
	if t2 := totalW / float64(2*len(cluster)); t2 > tol {
		tol = t2
	}

	side := make(map[int]bool, len(cluster))
	var leftW float64
	seed := cluster[rng.Intn(len(cluster))]
	queue := []int{seed}
	visited := map[int]bool{seed: true}
	for len(queue) > 0 && leftW < target {
		v := queue[0]
		queue = queue[1:]
		side[v] = true
		leftW += wgt(v)
		for _, u := range g.SortedNeighbors(v) {
			if inCluster[u] && !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
		if len(queue) == 0 {
			for _, u := range cluster {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
					break
				}
			}
		}
	}

	// Fiduccia–Mattheyses refinement around the proportional target.
	minFrac := (target - tol) / totalW
	maxFrac := (target + tol) / totalW
	if minFrac < 0 {
		minFrac = 0
	}
	if maxFrac > 1 {
		maxFrac = 1
	}
	fm.Refine(g, cluster, side, wgt, fm.Config{MinFrac: minFrac, MaxFrac: maxFrac, Passes: 4})

	for _, v := range cluster {
		if side[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Guard degenerate outcomes: both parts must be inhabited when the
	// fraction calls for it.
	if len(left) == 0 && frac > 0 {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	if len(right) == 0 && frac < 1 {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	sort.Ints(left)
	sort.Ints(right)
	return left, right
}
