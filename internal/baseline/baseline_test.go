package baseline

import (
	"math/rand"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func testGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := gen.ErdosRenyi(rng, n, 0.2, 5)
	gen.UniformDemands(rng, g, 0.1, 0.5)
	return g
}

func checkComplete(t *testing.T, g *graph.Graph, h *hierarchy.Hierarchy, a metrics.Assignment, name string) {
	t.Helper()
	if err := a.Validate(g, h); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestAllBaselinesProduceValidAssignments(t *testing.T) {
	g := testGraph(1, 24)
	h := hierarchy.MustNew([]int{2, 2, 2}, []float64{9, 3, 1, 0})
	rng := rand.New(rand.NewSource(2))
	checkComplete(t, g, h, Random(rng, g, h), "Random")
	checkComplete(t, g, h, GreedyBFS(g, h), "GreedyBFS")
	checkComplete(t, g, h, KBGPOblivious(rng, g, h), "KBGPOblivious")
	checkComplete(t, g, h, DualRecursive(rng, g, h), "DualRecursive")
	checkComplete(t, g, h, Multilevel(rng, g, h), "Multilevel")
}

func TestRandomRespectsCapacityWhenPossible(t *testing.T) {
	g := graph.New(8)
	gen.EqualDemands(g, 0.5)
	h := hierarchy.FlatKWay(4) // 8 halves on 4 leaves: exact fit
	a := Random(rand.New(rand.NewSource(3)), g, h)
	if v := metrics.MaxViolation(g, h, a); v > 1+1e-9 {
		t.Fatalf("violation = %v on an exactly-fitting instance", v)
	}
}

func TestGreedyBFSBalances(t *testing.T) {
	g := gen.Grid(4, 4, 1)
	gen.EqualDemands(g, 0.25)
	h := hierarchy.FlatKWay(4)
	a := GreedyBFS(g, h)
	if v := metrics.MaxViolation(g, h, a); v > 1+1e-9 {
		t.Fatalf("violation = %v", v)
	}
	loads := metrics.LeafLoads(g, h, a)
	for l, d := range loads {
		if d == 0 {
			t.Fatalf("leaf %d empty: %v", l, loads)
		}
	}
}

func TestKBGPObliviousBalanced(t *testing.T) {
	g := testGraph(5, 32)
	gen.EqualDemands(g, 1.0/8.0)
	h := hierarchy.MustNew([]int{2, 2}, []float64{5, 1, 0})
	a := KBGPOblivious(rand.New(rand.NewSource(7)), g, h)
	if im := metrics.Imbalance(g, h, a); im > 1.8 {
		t.Fatalf("imbalance = %v, want near 1", im)
	}
}

func TestDualRecursiveBeatsObliviousOnCommunities(t *testing.T) {
	// 4 planted communities on a 2×2 hierarchy with steep cm: the
	// hierarchy-aware dual recursion should do no worse than the
	// oblivious mapping on average (and usually far better).
	rng := rand.New(rand.NewSource(11))
	h := hierarchy.MustNew([]int{2, 2}, []float64{50, 5, 0})
	var dualTotal, oblTotal float64
	for trial := 0; trial < 8; trial++ {
		g := gen.Community(rng, 4, 6, 0.7, 0.03, 10, 1)
		gen.EqualDemands(g, 1.0/6.0)
		dual := DualRecursive(rng, g, h)
		obl := KBGPOblivious(rng, g, h)
		dualTotal += metrics.CostLCA(g, h, dual)
		oblTotal += metrics.CostLCA(g, h, obl)
	}
	if dualTotal > oblTotal {
		t.Fatalf("dual recursive %v worse than oblivious %v in aggregate", dualTotal, oblTotal)
	}
}

func TestRefineLocalNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := hierarchy.MustNew([]int{2, 2}, []float64{8, 2, 0})
	for trial := 0; trial < 10; trial++ {
		g := testGraph(int64(trial), 16)
		start := Random(rng, g, h)
		before := metrics.CostLCA(g, h, start)
		refined := RefineLocal(g, h, start, 1.1, 4)
		after := metrics.CostLCA(g, h, refined)
		if after > before+1e-9 {
			t.Fatalf("refinement worsened cost: %v -> %v", before, after)
		}
		// Load budget respected for vertices that moved.
		loads := metrics.LeafLoads(g, h, refined)
		startLoads := metrics.LeafLoads(g, h, start)
		for l := range loads {
			if loads[l] > 1.1+1e-9 && loads[l] > startLoads[l]+1e-9 {
				t.Fatalf("refinement overfilled leaf %d: %v", l, loads[l])
			}
		}
	}
}

func TestRefineLocalImprovesObviousMistake(t *testing.T) {
	// Two heavy pairs placed crosswise: refinement must fix it.
	g := graph.New(4)
	gen.EqualDemands(g, 0.5)
	g.AddEdge(0, 1, 100)
	g.AddEdge(2, 3, 100)
	h := hierarchy.FlatKWay(2)
	bad := metrics.Assignment{0, 1, 0, 1}
	refined := RefineLocal(g, h, bad, 1.0, 4)
	if got := metrics.CostLCA(g, h, refined); got != 0 {
		t.Fatalf("refined cost = %v, want 0 (assignment %v)", got, refined)
	}
}

func TestCoarsenPreservesTotals(t *testing.T) {
	g := testGraph(17, 30)
	cg, mapTo := coarsen(g, rand.New(rand.NewSource(1)))
	if cg.N() >= g.N() {
		t.Fatalf("coarsening did not shrink: %d -> %d", g.N(), cg.N())
	}
	var fineD, coarseD float64
	for v := 0; v < g.N(); v++ {
		fineD += g.Demand(v)
		if mapTo[v] < 0 || mapTo[v] >= cg.N() {
			t.Fatalf("bad coarse map %v", mapTo[v])
		}
	}
	for v := 0; v < cg.N(); v++ {
		coarseD += cg.Demand(v)
	}
	if diff := fineD - coarseD; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("demand not preserved: %v vs %v", fineD, coarseD)
	}
	// Cut weights between coarse parts equal summed fine weights.
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitKCountsAndCoverage(t *testing.T) {
	g := testGraph(19, 20)
	rng := rand.New(rand.NewSource(2))
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	parts := splitK(g, rng, all, 5)
	if len(parts) != 5 {
		t.Fatalf("got %d parts", len(parts))
	}
	seen := map[int]bool{}
	for _, p := range parts {
		for _, v := range p {
			if seen[v] {
				t.Fatalf("vertex %d in two parts", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("parts cover %d of %d vertices", len(seen), g.N())
	}
}

func TestMultilevelOnCommunityGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.Community(rng, 4, 16, 0.4, 0.01, 10, 1)
	gen.EqualDemands(g, 1.0/16.0)
	h := hierarchy.MustNew([]int{2, 2}, []float64{50, 5, 0})
	ml := Multilevel(rng, g, h)
	rd := Random(rng, g, h)
	mlCost := metrics.CostLCA(g, h, ml)
	rdCost := metrics.CostLCA(g, h, rd)
	if mlCost >= rdCost {
		t.Fatalf("multilevel (%v) no better than random (%v)", mlCost, rdCost)
	}
}
