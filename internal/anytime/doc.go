// Package anytime is the degradation ladder: a budget-aware
// orchestrator that races the paper's full HGP pipeline against
// progressively cheaper tiers — a state-capped DP over fewer
// decomposition trees, then a k-BGP-style heuristic mapped onto the
// hierarchy — and always returns the best feasible partition found
// before the deadline, annotated with the tier that produced it.
//
// The ladder exists because the bicriteria pipeline is all-or-nothing
// on its own: a deadline or state blowup mid-DP used to surrender
// nothing. With anytime semantics a cancelled full solve yields its
// best-so-far incumbent (hgp.Solver.AllowPartial), and the heuristic
// rung finishes in milliseconds, so a serving path built on this
// package degrades in quality instead of failing.
//
// Main entry points: Solve, Options, Outcome, Tier.
package anytime
