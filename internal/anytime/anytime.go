package anytime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hierpart/internal/baseline"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// Tier identifies one rung of the degradation ladder, ordered from
// highest quality (and cost) to cheapest.
type Tier int

const (
	// TierFullDP is the paper's full pipeline: the requested number of
	// decomposition trees, each solved by the mirror-function DP under
	// the requested state budget.
	TierFullDP Tier = iota
	// TierCappedDP is the same pipeline with its knobs turned down —
	// fewer decomposition trees and a reduced DP state budget — trading
	// distribution quality for a much smaller worst case.
	TierCappedDP
	// TierBaseline is the k-BGP-style heuristic fallback: SCOTCH-style
	// dual recursive bipartitioning mapped directly onto the hierarchy
	// (internal/baseline.DualRecursive), polished with one local
	// refinement pass on small instances. No decomposition, no DP —
	// milliseconds even where the DP takes seconds.
	TierBaseline
	numTiers
)

// String returns the tier's wire name (used in the hgpd response and
// the degraded_total{tier=...} counters).
func (t Tier) String() string {
	switch t {
	case TierFullDP:
		return "full_dp"
	case TierCappedDP:
		return "capped_dp"
	case TierBaseline:
		return "baseline"
	default:
		return fmt.Sprintf("tier_%d", int(t))
	}
}

// ParseTier maps a wire name back to its Tier.
func ParseTier(s string) (Tier, error) {
	for t := TierFullDP; t < numTiers; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("anytime: unknown tier %q", s)
}

// DPFunc executes one DP-based tier. The default runs
// hgp.Solver.SolveContext directly; the hgpd server injects a
// cache-backed (and singleflight-coalesced) implementation instead.
type DPFunc func(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, sv hgp.Solver) (*hgp.Result, error)

// Options configures the ladder.
type Options struct {
	// Solver is the tier-0 (full pipeline) configuration. Its Workers
	// budget is split across the racing tiers: the full tier keeps
	// Workers−1 (at least 1) and the capped tier runs with 1, so the
	// race never oversubscribes the budget by more than the (idle-light)
	// baseline goroutine.
	Solver hgp.Solver
	// SolveDP overrides how DP tiers execute; nil means a direct
	// hgp.SolveContext. The solver passed in always has AllowPartial
	// set, so implementations must propagate it unchanged.
	SolveDP DPFunc
	// CappedTrees is the capped tier's tree count. Zero means
	// min(2, full trees). The capped trees are a prefix of the full
	// tier's (sub-seed derivation is positional), so its quality is a
	// strict subset, never a different distribution.
	CappedTrees int
	// CappedMaxStates is the capped tier's DP state budget. Zero means
	// an eighth of the full budget, or 1<<20 when the full budget is
	// unlimited.
	CappedMaxStates int
	// Only restricts the ladder to a single tier (for experiments and
	// the hgpbench -tier flag). Nil means run the whole ladder.
	Only *Tier
}

func (o Options) cappedTrees() int {
	if o.CappedTrees > 0 {
		return o.CappedTrees
	}
	full := o.Solver.Trees
	if full == 0 {
		full = 4
	}
	if full < 2 {
		return full
	}
	return 2
}

func (o Options) cappedMaxStates() int {
	if o.CappedMaxStates > 0 {
		return o.CappedMaxStates
	}
	if o.Solver.MaxStates == 0 {
		return 1 << 20
	}
	ms := o.Solver.MaxStates / 8
	if ms < 1 {
		ms = 1
	}
	return ms
}

// TierState classifies how a tier's attempt ended.
type TierState string

const (
	// StateWon marks the tier whose result the ladder returned.
	StateWon TierState = "won"
	// StateCompleted marks a tier that produced a full-quality result
	// which lost the selection (a cheaper tier was not needed, or an
	// equal-cost lower tier won the tie).
	StateCompleted TierState = "completed"
	// StatePartial marks a tier cancelled mid-solve that surrendered a
	// best-so-far incumbent.
	StatePartial TierState = "partial"
	// StateFailed marks a tier that returned an error (including
	// cancellation before any incumbent existed).
	StateFailed TierState = "failed"
	// StateSkipped marks a tier the ladder never launched (capped ≡
	// full configuration, or restricted by Options.Only).
	StateSkipped TierState = "skipped"
	// StateSuperseded marks a tier stopped by the race itself: the full
	// tier completed while this one was still running, so its context
	// was cancelled even though the caller's deadline never expired.
	StateSuperseded TierState = "superseded"
)

// TierReport is the post-mortem of one tier's attempt.
type TierReport struct {
	Tier      Tier      `json:"tier"`
	Name      string    `json:"name"`
	State     TierState `json:"state"`
	Cost      float64   `json:"cost,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// Outcome is what the ladder returns: the best feasible partition found
// before the deadline, which tier produced it, and a report per tier.
type Outcome struct {
	// Result is the winning placement. For TierBaseline results,
	// TreeCost/TreeIndex/PerTreeCosts/States are zero values — there is
	// no tree distribution behind them.
	Result *hgp.Result
	// Tier produced Result.
	Tier Tier
	// Degraded reports whether the caller got anything less than the
	// full pipeline's complete answer (a lower tier won, or the full
	// tier surrendered a partial incumbent).
	Degraded bool
	// Reports holds one entry per tier, indexed by Tier.
	Reports [numTiers]TierReport
}

// Solve runs the degradation ladder: the enabled tiers race under ctx,
// cheapest-first results stand in until a better tier completes, and
// the best feasible partition available when the full tier finishes (or
// the deadline expires) is returned. The error is non-nil only when no
// tier produced any valid placement — with the baseline tier enabled
// that cannot happen short of a solver bug, because the baseline rung
// runs to completion even under an expired deadline.
//
// Cancellation latency is bounded by the solver's poll granularity
// (cluster splits, DP tables): every DP tier threads ctx all the way
// down, and a cancelled DP surrenders its best-so-far incumbent via
// hgp.Solver.AllowPartial rather than discarding completed trees.
func Solve(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, opts Options) (*Outcome, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("anytime: empty graph")
	}
	out := &Outcome{}
	for t := TierFullDP; t < numTiers; t++ {
		out.Reports[t] = TierReport{Tier: t, Name: t.String(), State: StateSkipped}
	}

	// raceCtx stops still-running cheaper tiers once the full tier has
	// delivered a complete result they cannot beat.
	raceCtx, stopRace := context.WithCancel(ctx)
	defer stopRace()

	ch := make(chan attempt, int(numTiers))
	launched := 0
	launch := func(t Tier, run func(context.Context) (*hgp.Result, error)) {
		if opts.Only != nil && *opts.Only != t {
			return
		}
		launched++
		tierCtx := context.WithValue(raceCtx, tierCtxKey{}, t)
		go func() {
			start := time.Now()
			res, err := runContained(tierCtx, run)
			ch <- attempt{tier: t, res: res, err: err, elapsed: time.Since(start)}
		}()
	}

	solveDP := opts.SolveDP
	if solveDP == nil {
		solveDP = func(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, sv hgp.Solver) (*hgp.Result, error) {
			return sv.SolveContext(ctx, g, H)
		}
	}

	fullSv := opts.Solver
	fullSv.AllowPartial = true
	// The DP rungs run under a deadline, so they adopt portfolio pruning:
	// the returned placement is bit-identical (pinned by the hgp identity
	// battery) but multi-tree solves finish sooner, which is exactly what
	// a race against the clock wants. Derived below, the capped rung
	// inherits the flag.
	fullSv.Prune = true
	fullTrees := fullSv.Trees
	if fullTrees == 0 {
		fullTrees = 4
	}
	cappedSv := fullSv
	cappedSv.Trees = opts.cappedTrees()
	cappedSv.MaxStates = opts.cappedMaxStates()
	cappedSv.Workers = 1
	if fullSv.Workers > 1 {
		fullSv.Workers--
	}
	// A capped tier identical to (or looser than) the full tier would
	// just duplicate its work.
	cappedDistinct := cappedSv.Trees < fullTrees ||
		(fullSv.MaxStates == 0 || cappedSv.MaxStates < fullSv.MaxStates)

	launch(TierFullDP, func(ctx context.Context) (*hgp.Result, error) {
		return solveDP(ctx, g, H, fullSv)
	})
	if cappedDistinct {
		launch(TierCappedDP, func(ctx context.Context) (*hgp.Result, error) {
			return solveDP(ctx, g, H, cappedSv)
		})
	}
	launch(TierBaseline, func(ctx context.Context) (*hgp.Result, error) {
		return solveBaseline(ctx, g, H, opts.Solver.Seed)
	})
	if launched == 0 {
		return nil, errors.New("anytime: no tier enabled")
	}

	// The selection's feasibility line: the DP tiers guarantee capacity
	// violation ≤ 1+eps, the baseline does not, and a rung that cheats
	// on capacity must never outrank one inside the guarantee on cost
	// alone.
	eps := opts.Solver.Eps
	if eps == 0 {
		eps = 0.5
	}
	feasLimit := 1 + eps + 1e-9

	// Collect every launched tier. There is no abandon-and-leak escape
	// hatch: tiers return promptly after cancellation because ctx is
	// polled at every cluster split and DP table, and stopRace is fired
	// the moment the full tier completes so losers stop burning CPU.
	var best *attempt
	for i := 0; i < launched; i++ {
		a := <-ch
		rep := &out.Reports[a.tier]
		rep.ElapsedMS = float64(a.elapsed.Microseconds()) / 1000
		switch {
		case a.err != nil && ctx.Err() == nil &&
			(errors.Is(a.err, context.Canceled) || errors.Is(a.err, context.DeadlineExceeded)):
			rep.State = StateSuperseded
		case a.err != nil:
			rep.State = StateFailed
			rep.Error = a.err.Error()
		case a.res.Partial:
			rep.State = StatePartial
			rep.Cost = a.res.Cost
		default:
			rep.State = StateCompleted
			rep.Cost = a.res.Cost
		}
		if a.err == nil {
			a := a
			if best == nil || better(&a, best, feasLimit) {
				best = &a
			}
			if a.tier == TierFullDP && !a.res.Partial {
				stopRace()
			}
		}
	}

	if best == nil {
		// Every tier failed. Prefer a real solver error over the bare
		// context error so callers see the root cause.
		var firstErr error
		for t := TierFullDP; t < numTiers; t++ {
			if e := out.Reports[t].Error; e != "" && firstErr == nil {
				firstErr = errors.New(e)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("anytime: no tier finished before deadline: %w", err)
		}
		if firstErr == nil {
			firstErr = errors.New("anytime: all tiers failed")
		}
		return nil, firstErr
	}

	out.Result = best.res
	out.Tier = best.tier
	out.Reports[best.tier].State = StateWon
	out.Degraded = best.tier != TierFullDP || best.res.Partial
	return out, nil
}

type tierCtxKey struct{}

// TierFromContext reports which ladder tier the context belongs to. The
// context handed to each tier's execution (and therefore to
// Options.SolveDP) carries its Tier, so instrumented backends — the
// hgpd server attributing cache hits and phase timings — can tell the
// racing attempts apart without threading extra state.
func TierFromContext(ctx context.Context) (Tier, bool) {
	t, ok := ctx.Value(tierCtxKey{}).(Tier)
	return t, ok
}

// better reports whether a beats b in the selection order: inside the
// solver's (1+eps) capacity guarantee before outside it, then lower
// cost, then complete over partial, then the higher-quality (lower)
// tier. The feasibility rank comes first because the baseline rung has
// no bicriteria guarantee — it can undercut the DP tiers on cost by
// overloading capacity, and that trade must never win.
func better(a, b *attempt, feasLimit float64) bool {
	if af, bf := maxViol(a.res) <= feasLimit, maxViol(b.res) <= feasLimit; af != bf {
		return af
	}
	if a.res.Cost != b.res.Cost {
		return a.res.Cost < b.res.Cost
	}
	if a.res.Partial != b.res.Partial {
		return !a.res.Partial
	}
	return a.tier < b.tier
}

func maxViol(r *hgp.Result) float64 {
	worst := 0.0
	for _, v := range r.Violation {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// attempt is one tier's outcome inside the race.
type attempt struct {
	tier    Tier
	res     *hgp.Result
	err     error
	elapsed time.Duration
}

// runContained executes one tier with panic containment: a panicking
// tier (solver bug, injected fault) reports an error instead of
// unwinding its goroutine and killing the process.
func runContained(ctx context.Context, run func(context.Context) (*hgp.Result, error)) (res *hgp.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("anytime: tier panicked: %v", r)
		}
	}()
	res, err = run(ctx)
	if err == nil && (res == nil || !res.Assignment.Complete()) {
		return nil, errors.New("anytime: tier returned an incomplete placement")
	}
	return res, err
}

// solveBaseline is the cheapest rung: hierarchy-aware dual recursive
// bipartitioning, polished with one bounded local-refinement pass on
// small instances. It is deterministic per seed and — unlike the DP
// tiers — runs to completion even when ctx has already expired: this
// rung is the ladder's floor, the reason "some valid placement" can be
// promised at all, and it finishes in milliseconds on anything the
// serving path admits. Only the optional polish pass yields to an
// expired deadline.
func solveBaseline(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, seed int64) (*hgp.Result, error) {
	rng := rand.New(rand.NewSource(seed))
	assign := baseline.DualRecursive(rng, g, H)
	// The swap pass of RefineLocal is quadratic; keep the polish to
	// instances where it stays in the low milliseconds.
	if g.N() <= 2048 {
		if err := ctx.Err(); err == nil {
			assign = baseline.RefineLocal(g, H, assign, 1.0, 1)
		}
	}
	if err := assign.Validate(g, H); err != nil {
		return nil, fmt.Errorf("anytime: baseline produced invalid placement: %w", err)
	}
	return &hgp.Result{
		Assignment: assign,
		Cost:       metrics.CostLCA(g, H, assign),
		TreeIndex:  -1,
		Violation:  metrics.Violation(g, H, assign),
	}, nil
}
