package anytime

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hierpart/internal/faultinject"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// testInstance is sized so every tier is feasible with slack: total
// demand is half the leaf capacity, so a valid placement always has
// violation ≤ 1.
func testInstance(seed int64, n int) (*graph.Graph, *hierarchy.Hierarchy) {
	rng := rand.New(rand.NewSource(seed))
	g := gen.Community(rng, 4, n/4, 0.4, 0.02, 8, 1)
	for v := 0; v < g.N(); v++ {
		g.SetDemand(v, 0.1)
	}
	return g, hierarchy.NUMASockets(4, n/8)
}

func assertValid(t *testing.T, g *graph.Graph, H *hierarchy.Hierarchy, out *Outcome) {
	t.Helper()
	if out == nil || out.Result == nil {
		t.Fatal("nil outcome")
	}
	if !out.Result.Assignment.Complete() {
		t.Fatalf("tier %s returned incomplete placement", out.Tier)
	}
	if err := out.Result.Assignment.Validate(g, H); err != nil {
		t.Fatalf("tier %s returned invalid placement: %v", out.Tier, err)
	}
	if out.Result.Cost != metrics.CostLCA(g, H, out.Result.Assignment) {
		t.Fatalf("tier %s cost %v inconsistent with assignment", out.Tier, out.Result.Cost)
	}
}

func TestFullTierWinsWithAmpleBudget(t *testing.T) {
	g, H := testInstance(1, 32)
	out, err := Solve(context.Background(), g, H, Options{Solver: hgp.Solver{Trees: 2, Seed: 1, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	assertValid(t, g, H, out)
	if out.Tier != TierFullDP || out.Degraded {
		t.Fatalf("tier = %s degraded=%v, want undegraded full_dp (reports %+v)", out.Tier, out.Degraded, out.Reports)
	}
	if out.Reports[TierFullDP].State != StateWon {
		t.Fatalf("full tier report = %+v, want won", out.Reports[TierFullDP])
	}
	// Full pipeline results must match a direct solve bit-for-bit: the
	// ladder must not perturb the paper pipeline's determinism.
	direct, err := hgp.Solver{Trees: 2, Seed: 1, Workers: 1}.Solve(g, H)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cost != out.Result.Cost {
		t.Fatalf("ladder full result %v != direct solve %v", out.Result.Cost, direct.Cost)
	}
}

func TestExpiredDeadlineStillReturnsBaseline(t *testing.T) {
	g, H := testInstance(2, 32)
	// A deadline that has effectively already passed: DP tiers cannot
	// finish, the heuristic rung must still hand back a placement.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	out, err := Solve(ctx, g, H, Options{Solver: hgp.Solver{Trees: 4, Seed: 1, Workers: 1}})
	if err != nil {
		// The baseline rung ignores the (already expired) deadline by
		// design — it is the ladder's floor — so failure here means the
		// floor gave way.
		t.Fatalf("ladder returned %v under expired deadline, want baseline result", err)
	}
	assertValid(t, g, H, out)
	if !out.Degraded {
		t.Fatal("expired deadline cannot yield an undegraded result")
	}
}

func TestDPFailureFallsBackToBaseline(t *testing.T) {
	boom := errors.New("decomposition exploded")
	in := faultinject.New(3).On(faultinject.TreedecompSplit, faultinject.Fault{Prob: 1, Err: boom})
	t.Cleanup(faultinject.Activate(in))

	g, H := testInstance(3, 32)
	out, err := Solve(context.Background(), g, H, Options{Solver: hgp.Solver{Trees: 2, Seed: 1, Workers: 1}})
	if err != nil {
		t.Fatalf("ladder = %v, want baseline fallback", err)
	}
	assertValid(t, g, H, out)
	if out.Tier != TierBaseline || !out.Degraded {
		t.Fatalf("tier = %s, want baseline (reports %+v)", out.Tier, out.Reports)
	}
	if out.Reports[TierFullDP].State != StateFailed {
		t.Fatalf("full tier state = %s, want failed", out.Reports[TierFullDP].State)
	}
}

func TestOnlyRestrictsLadder(t *testing.T) {
	g, H := testInstance(4, 32)
	only := TierBaseline
	out, err := Solve(context.Background(), g, H, Options{Solver: hgp.Solver{Trees: 2, Seed: 1}, Only: &only})
	if err != nil {
		t.Fatal(err)
	}
	assertValid(t, g, H, out)
	if out.Tier != TierBaseline {
		t.Fatalf("tier = %s, want baseline", out.Tier)
	}
	if st := out.Reports[TierFullDP].State; st != StateSkipped {
		t.Fatalf("full tier state = %s, want skipped", st)
	}

	only = TierFullDP
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := Solve(ctx, g, H, Options{Solver: hgp.Solver{Trees: 2, Seed: 1}, Only: &only}); err == nil {
		t.Fatal("full-only ladder with expired deadline must fail (no fallback rung)")
	}
}

func TestCappedTierDefaults(t *testing.T) {
	o := Options{Solver: hgp.Solver{Trees: 8, MaxStates: 1 << 24}}
	if got := o.cappedTrees(); got != 2 {
		t.Fatalf("cappedTrees = %d, want 2", got)
	}
	if got := o.cappedMaxStates(); got != 1<<21 {
		t.Fatalf("cappedMaxStates = %d, want %d", got, 1<<21)
	}
	o = Options{Solver: hgp.Solver{Trees: 1}}
	if got := o.cappedTrees(); got != 1 {
		t.Fatalf("cappedTrees = %d, want 1", got)
	}
	if got := o.cappedMaxStates(); got != 1<<20 {
		t.Fatalf("cappedMaxStates (unlimited full) = %d, want %d", got, 1<<20)
	}
}

func TestTierNamesRoundTrip(t *testing.T) {
	for tr := TierFullDP; tr < numTiers; tr++ {
		back, err := ParseTier(tr.String())
		if err != nil || back != tr {
			t.Fatalf("ParseTier(%q) = %v, %v", tr.String(), back, err)
		}
	}
	if _, err := ParseTier("bogus"); err == nil {
		t.Fatal("ParseTier must reject unknown names")
	}
}

// A panicking injected DPFunc must not kill the ladder.
func TestTierPanicContained(t *testing.T) {
	g, H := testInstance(5, 32)
	opts := Options{
		Solver: hgp.Solver{Trees: 2, Seed: 1},
		SolveDP: func(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, sv hgp.Solver) (*hgp.Result, error) {
			panic("DP exploded")
		},
	}
	out, err := Solve(context.Background(), g, H, opts)
	if err != nil {
		t.Fatalf("ladder = %v, want baseline fallback after DP panic", err)
	}
	assertValid(t, g, H, out)
	if out.Tier != TierBaseline {
		t.Fatalf("tier = %s, want baseline", out.Tier)
	}
}

// Selection must rank capacity feasibility above cost: a rung outside
// the solver's (1+eps) guarantee never beats one inside it, however
// cheap, and only inside the same feasibility class does cost decide.
func TestBetterPrefersFeasibleOverCheaper(t *testing.T) {
	const feasLimit = 1.5
	mk := func(tier Tier, cost, viol float64, partial bool) *attempt {
		return &attempt{tier: tier, res: &hgp.Result{Cost: cost, Violation: []float64{viol}, Partial: partial}}
	}
	feasible := mk(TierFullDP, 100, 1.2, false)
	cheater := mk(TierBaseline, 50, 2.0, false)
	if better(cheater, feasible, feasLimit) {
		t.Fatal("capacity-violating rung outranked a feasible one on cost")
	}
	if !better(feasible, cheater, feasLimit) {
		t.Fatal("feasible rung must beat a capacity-violating cheaper one")
	}
	// Same feasibility class: cost decides.
	cheapFeasible := mk(TierBaseline, 50, 1.4, false)
	if !better(cheapFeasible, feasible, feasLimit) {
		t.Fatal("within the guarantee, lower cost must win")
	}
	// Equal cost: complete beats partial, then lower tier breaks ties.
	partial := mk(TierFullDP, 50, 1.0, true)
	if !better(cheapFeasible, partial, feasLimit) {
		t.Fatal("complete must beat partial at equal cost")
	}
	if !better(mk(TierFullDP, 50, 1.0, false), cheapFeasible, feasLimit) {
		t.Fatal("at equal cost and state, the higher-quality tier must win")
	}
}
