package experiments

import (
	"context"
	"math"
	"math/rand"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/canon"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/stream"
	"hierpart/internal/treedecomp"
)

// E25CanonCache measures what canonical-form fingerprinting buys the
// serving cache stack under the workload it was built for: a zipf-
// distributed multi-tenant population where each tenant resubmits its
// own streaming-topology instance under fresh vertex relabellings
// (autoscalers and schedulers renumber operators; the graph does not
// change). The experiment replays ONE request schedule through two
// copies of the daemon's cache stack — result LRU, then decomposition
// LRU, then a full build+solve — once with label-sensitive keys
// (canon=off) and once keyed by the canonical fingerprint (canon=on).
//
// A small identity fraction of the schedule resubmits instances with
// their original labelling, so the canon=off baseline's hit ratio is
// nonzero and the lift row is a finite ratio. Every warm hit is also
// re-solved from scratch through the same pipeline and the cost
// compared bit for bit: the max |Δcost| column pins the soundness
// claim that a cache hit is indistinguishable from a miss.
//
// Timing columns are machine-dependent; the hit ratios, the lift row,
// and the zero deviation column are the portable signal.
func E25CanonCache(cfg Config) *Table {
	t := &Table{
		ID:    "E25",
		Title: "Canonical fingerprinting under a zipf multi-tenant relabelled workload",
		Columns: []string{"canon", "tenants", "requests", "hits", "hit ratio",
			"fallbacks", "cold p50 ms", "warm p50 ms", "max |Δcost|"},
		Notes: "expected: canon=on collapses relabelled resubmissions onto shared canonical entries (hit ratio near 1, ≥5× the canon=off identity-only baseline), warm p50 ≪ cold p50, and max |Δcost| exactly 0 (every warm hit re-solved fresh and compared bit for bit)",
	}
	tenants := cfg.pick(8, 16)
	requests := cfg.pick(160, 600)
	h := hierarchy.NUMASockets(4, 4)

	// Tenant base instances: each tenant owns one instance of a rotating
	// streaming topology family, with its own weight/demand stream.
	base := make([]*graph.Graph, tenants)
	for tn := range base {
		trng := rand.New(rand.NewSource(cfg.Seed + 25 + 1000*int64(tn)))
		switch tn % 4 {
		case 0:
			base[tn] = stream.Pipeline(trng, 4, 3, 0.1, 0.4, 64).CommGraph()
		case 1:
			base[tn] = stream.Diamond(trng, 3, 0.1, 0.4, 64).CommGraph()
		case 2:
			base[tn] = stream.FanInAggregation(trng, 4, 2, 0.1, 0.4, 60).CommGraph()
		default:
			base[tn] = stream.WordCount(trng, 3, 3, 0.1, 0.4, 64).CommGraph()
		}
	}

	// One shared request schedule so both cache configurations see the
	// identical stream: (tenant, relabelling) pairs, zipf-hot tenants,
	// one in ten an identity resubmission (mirrors hgpload -workload
	// zipf, and keeps the canon=off hit ratio nonzero).
	type request struct {
		tenant int
		perm   []int // nil = identity resubmission
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 25))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(tenants-1))
	sched := make([]request, requests)
	for i := range sched {
		r := request{tenant: int(zipf.Uint64())}
		if rng.Float64() >= 0.1 {
			r.perm = rng.Perm(base[r.tenant].N())
		}
		sched[i] = r
	}

	sv := hgp.Solver{Eps: 0.5, Trees: 2, Seed: cfg.Seed + 25, Workers: cfg.Workers, Prune: cfg.Prune}
	opts := sv.DecompOptions()
	ctx := context.Background()
	// Nanosecond resolution: the warm path is an LRU get plus a slice
	// translation, well under a microsecond.
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	var ratios [2]float64
	for mode, canonOn := range []bool{false, true} {
		results := cache.New(512)
		decomps := cache.New(256)
		var hits, fallbacks int
		var coldMS, warmMS []float64
		maxDev := 0.0
		fail := false

		for _, req := range sched {
			g := base[req.tenant]
			if req.perm != nil {
				g = canon.Permute(g, req.perm)
			}
			var cn *canon.Form
			gSolve := g
			if canonOn {
				if f, ok := canon.Canonicalize(g); ok {
					cn, gSolve = f, f.Graph
				} else {
					fallbacks++
				}
			}
			var rkey string
			if cn != nil {
				rkey = cache.ResultKeyCanon(cn.Fingerprint, h, opts, sv.Eps, sv.MaxStates)
			} else {
				rkey = cache.ResultKey(g, h, opts, sv.Eps, sv.MaxStates)
			}

			t0 := time.Now()
			if v, ok := results.Get(rkey); ok {
				// Warm path: exactly what the daemon serves — translate the
				// canonical-space assignment through THIS request's perm.
				res := v.(*hgp.Result)
				if cn != nil {
					_ = cn.TranslateAssignment(res.Assignment)
				}
				warmMS = append(warmMS, ms(time.Since(t0)))
				hits++
				// Soundness probe, outside the timed path: re-solve this
				// submission from scratch and demand a bit-identical cost.
				dec, err := treedecomp.BuildContext(ctx, gSolve, opts)
				if err == nil {
					var fresh *hgp.Result
					if fresh, err = sv.SolveDecomposition(ctx, gSolve, h, dec); err == nil {
						if dev := math.Abs(fresh.Cost - res.Cost); dev > maxDev {
							maxDev = dev
						}
					}
				}
				if err != nil {
					t.AddRow(onOff(canonOn), tenants, requests, "probe solve: "+err.Error(), "", "", "", "", "")
					fail = true
					break
				}
				continue
			}

			// Cold path: decomposition LRU, then a full build.
			var dkey string
			if cn != nil {
				dkey = cache.DecompKeyCanon(cn.Fingerprint, opts)
			} else {
				dkey = cache.DecompKey(gSolve, opts)
			}
			var dec *treedecomp.Decomposition
			if v, ok := decomps.Get(dkey); ok {
				dec = v.(*cache.DecompEntry).Dec
			} else {
				dec = treedecomp.Build(gSolve, opts)
				var perm []int
				if cn != nil {
					perm = cn.Perm
				}
				decomps.Add(dkey, &cache.DecompEntry{Dec: dec, Perm: perm})
			}
			res, err := sv.SolveDecomposition(ctx, gSolve, h, dec)
			if err != nil {
				t.AddRow(onOff(canonOn), tenants, requests, "solve: "+err.Error(), "", "", "", "", "")
				fail = true
				break
			}
			results.Add(rkey, res)
			coldMS = append(coldMS, ms(time.Since(t0)))
		}
		if fail {
			continue
		}
		ratios[mode] = float64(hits) / float64(requests)
		coldP50, _ := pctPair(coldMS)
		warmP50, _ := pctPair(warmMS)
		t.AddRow(onOff(canonOn), tenants, requests, hits, ratios[mode],
			fallbacks, coldP50, warmP50, maxDev)
	}
	if ratios[0] > 0 && ratios[1] > 0 {
		t.AddRow("lift", tenants, requests, "", ratios[1]/ratios[0], "", "", "", "")
	}
	return t
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
