package experiments

import (
	"context"
	"math/rand"
	"time"

	"hierpart/internal/anytime"
	"hierpart/internal/gen"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
)

// E22AnytimeLadder measures the degradation ladder: the same instance
// solved under shrinking wall-clock budgets, recording which tier wins,
// its cost relative to the unconstrained full pipeline, and how fast
// the answer came back. The expectation is a graceful quality/latency
// trade: the full pipeline under no budget, capped or partial results
// in the middle, and the heuristic floor — at a bounded cost penalty —
// when the budget is far below the DP's needs.
//
// Config.Budget, when non-zero, replaces the default budget sweep with
// that single deadline (the hgpbench -budget flag); Config.Tier
// restricts the ladder to one rung (-tier).
func E22AnytimeLadder(cfg Config) *Table {
	t := &Table{
		ID:    "E22",
		Title: "Anytime degradation ladder under shrinking budgets",
		Columns: []string{"budget", "tier", "degraded", "partial",
			"trees done", "cost", "vs full", "viol", "elapsed_ms"},
		Notes: "expected: full_dp at generous budgets (ratio 1, viol ≤ 1+eps), capped/partial in between, baseline floor at starvation budgets with a modest cost penalty — and never an error",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 22))
	h := hierarchy.NUMASockets(4, 4)
	scale := cfg.pick(1, 3)
	g := gen.Community(rng, 4, 16*scale, 0.5, 0.02, 10, 1)
	gen.EqualDemands(g, 0.6*float64(h.Leaves())/float64(g.N()))

	sv := hgp.Solver{Eps: 0.25, Trees: 4, Seed: cfg.Seed + 22, Workers: cfg.Workers, Prune: cfg.Prune}
	opts := anytime.Options{Solver: sv}
	if cfg.Tier != "" {
		tier, err := anytime.ParseTier(cfg.Tier)
		if err != nil {
			t.Notes = err.Error()
			return t
		}
		opts.Only = &tier
	}

	// Reference: the unconstrained full pipeline.
	full, err := sv.Solve(g, h)
	if err != nil {
		t.Notes = "full pipeline failed: " + err.Error()
		return t
	}

	budgets := []time.Duration{0, 500 * time.Millisecond, 50 * time.Millisecond, time.Millisecond}
	if cfg.Budget > 0 {
		budgets = []time.Duration{cfg.Budget}
	}
	for _, budget := range budgets {
		ctx := context.Background()
		label := "none"
		if budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			label = budget.String()
			defer cancel()
		}
		start := time.Now()
		out, err := anytime.Solve(ctx, g, h, opts)
		elapsed := time.Since(start)
		if err != nil {
			t.AddRow(label, "error: "+err.Error(), "", "", "", "", "", "", float64(elapsed.Microseconds())/1000)
			continue
		}
		viol := 0.0
		for _, v := range out.Result.Violation {
			if v > viol {
				viol = v
			}
		}
		t.AddRow(label, out.Tier.String(), out.Degraded, out.Result.Partial,
			out.Result.TreesDone, out.Result.Cost, out.Result.Cost/full.Cost,
			viol, float64(elapsed.Microseconds())/1000)
	}
	return t
}
