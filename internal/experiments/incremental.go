package experiments

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/treedecomp"
)

// E26IncrementalRepartition measures what the PR 10 incremental stack —
// decomposition repair (treedecomp.Repair) plus dirty-table DP reuse
// (hgpt.TableCache via hgp.Solver.TreeCaches) — buys over a cold
// rebuild when a live graph takes a small batch of edge reweights.
// This is the offline twin of the daemon's /v1/graphs session path:
// the same repair call, the same warm caches, no HTTP in the way.
//
// For each (n, deltas) cell the experiment builds a community graph,
// solves it once to populate per-tree table caches, applies `deltas`
// random intra-community edge reweights, then times two ways of
// reaching the new placement:
//
//   - incremental: Repair the existing decomposition (edge reweights
//     keep every tree's structure verbatim and recompute only the
//     crossed boundary weights), derive certified per-tree cost
//     ceilings from the previous solve (hgp.WarmBoundsAfterRepair),
//     then re-solve with the warm caches and ceilings attached — clean
//     tables are served from cache and the dirty ancestor chain is
//     recomputed under a bound that prunes everything the previous
//     optimum proves unreachable;
//   - cold: BuildContext from scratch plus a cache-less solve, exactly
//     what the daemon does on a session's first request.
//
// Each timing is the median of `trials` repeats, and every repeat
// rebuilds its caches from scratch so a prior repeat's repopulated
// tables cannot flatter the warm path.
//
// Soundness is pinned per cell, not assumed: the repaired
// decomposition is also solved cold (fresh solver, no caches) and the
// warm assignment compared placement for placement — the `identical`
// column must read true everywhere, making the speedup a pure
// evaluation-order effect. Timing columns are machine-dependent; the
// identical column, the reuse fractions, and the shape of the speedup
// curve (falling as the delta batch grows) are the portable signal.
func E26IncrementalRepartition(cfg Config) *Table {
	t := &Table{
		ID:    "E26",
		Title: "Incremental repartitioning: decomposition repair + dirty-table reuse vs cold rebuild",
		Columns: []string{"n", "deltas", "repair ms", "warm solve ms", "incremental ms",
			"cold ms", "speedup", "nodes reused", "tables reused", "tables dirty", "identical", "fallbacks"},
		Notes: "expected: identical=true and fallbacks=0 in every cell (bounded warm and cache-less cold DP " +
			"over the same repaired decomposition agree placement for placement, and the certified " +
			"ceiling never undershoots the optimum); single-edge reweight >= 10x over cold at n=256; " +
			"speedup falls as the delta batch grows, loosens the ceilings, and dirties more tables",
	}
	sizes := []int{64, 128, 256}
	deltaCounts := []int{1, 4, 16, 64}
	trials := 3
	if cfg.Quick {
		sizes = []int{48, 96}
		deltaCounts = []int{1, 8}
		trials = 1
	}
	h := hierarchy.NUMASockets(4, 4)
	ctx := context.Background()
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + 26 + int64(n)))
		g0 := gen.Community(rng, 4, n/4, 0.5, 0.03, 8, 1)
		gen.EqualDemands(g0, 0.6*float64(h.Leaves())/float64(n))
		// Prune stays off: the portfolio's live bound cannot combine with
		// warm caches — the incremental path uses static certified
		// WarmBounds instead (the session path runs the same way).
		sv := hgp.Solver{Eps: 0.5, Trees: 2, Seed: cfg.Seed + 26, Workers: cfg.Workers}
		opts := sv.DecompOptions()

		for _, k := range deltaCounts {
			deltas := reweightDeltas(rng, g0, k)
			mutated := g0.Clone()
			if err := treedecomp.Apply(mutated, deltas); err != nil {
				t.AddRow(n, k, "apply: "+err.Error(), "", "", "", "", "", "", "", "", "")
				continue
			}

			var repairMS, warmMS, incMS, coldMS []float64
			var reusedFrac, tabReused, tabDirty float64
			identical := true
			fallbacks := 0
			failed := false
			for trial := 0; trial < trials && !failed; trial++ {
				// Fresh session state per repeat: base decomposition plus
				// caches populated by one untimed warm-up solve, mirroring
				// a session's first (cold) request.
				dec0, err := treedecomp.BuildContext(ctx, g0, opts)
				if err == nil {
					caches := make([]*hgpt.TableCache, len(dec0.Trees))
					for i := range caches {
						caches[i] = hgpt.NewTableCache()
					}
					svWarm := sv
					svWarm.TreeCaches = caches

					var base *hgp.Result
					if base, err = svWarm.SolveDecomposition(ctx, g0, h, dec0); err == nil {
						var rep *treedecomp.Decomposition
						var rstats *treedecomp.RepairStats
						t0 := time.Now()
						rep, rstats, err = treedecomp.Repair(ctx, mutated, dec0, deltas, opts, int64(trial))
						// Certified ceilings are part of the incremental path,
						// so their (trivial) derivation is timed with it.
						svWarm.WarmBounds = hgp.WarmBoundsAfterRepair(base.PerTreeDPCosts, h, rstats)
						rMS := ms(time.Since(t0))
						if err == nil {
							var warm *hgp.Result
							t0 = time.Now()
							warm, err = svWarm.SolveDecomposition(ctx, mutated, h, rep)
							wMS := ms(time.Since(t0))
							if err == nil {
								repairMS = append(repairMS, rMS)
								warmMS = append(warmMS, wMS)
								incMS = append(incMS, rMS+wMS)
								reusedFrac = rstats.ReusedFrac()
								tabReused = float64(warm.TablesReused)
								tabDirty = float64(warm.TablesComputed)
								fallbacks += warm.BoundFallbacks

								// Cold leg: full rebuild plus cache-less solve on
								// the mutated graph.
								t0 = time.Now()
								var decC *treedecomp.Decomposition
								if decC, err = treedecomp.BuildContext(ctx, mutated, opts); err == nil {
									_, err = sv.SolveDecomposition(ctx, mutated, h, decC)
								}
								if err == nil {
									coldMS = append(coldMS, ms(time.Since(t0)))

									// Soundness probe, untimed: a cache-less solve
									// over the SAME repaired decomposition must
									// reproduce the warm placement bit for bit.
									if trial == 0 {
										var fresh *hgp.Result
										if fresh, err = sv.SolveDecomposition(ctx, mutated, h, rep); err == nil {
											identical = sameAssignment(warm.Assignment, fresh.Assignment) &&
												math.Abs(warm.Cost-fresh.Cost) == 0
										}
									}
								}
							}
						}
					}
				}
				if err != nil {
					t.AddRow(n, k, "trial: "+err.Error(), "", "", "", "", "", "", "", "", "")
					failed = true
				}
			}
			if failed {
				continue
			}
			inc := median(incMS)
			cold := median(coldMS)
			t.AddRow(n, k, median(repairMS), median(warmMS), inc, cold,
				cold/inc, reusedFrac, tabReused, tabDirty, identical, fallbacks)
		}
	}
	return t
}

// reweightDeltas picks k distinct intra-community edges of g (falling
// back to any edge when fewer exist) and doubles-plus-one their weight.
// Intra-community edges have deep LCAs in the recursive-bisection
// decomposition, which is the workload repair is built for: a stream
// operator's traffic shifts inside its stage far more often than the
// stage topology itself changes.
func reweightDeltas(rng *rand.Rand, g *graph.Graph, k int) []treedecomp.Delta {
	block := g.N() / 4
	edges := g.Edges()
	var intra, inter []int
	for i, e := range edges {
		if e.U/block == e.V/block {
			intra = append(intra, i)
		} else {
			inter = append(inter, i)
		}
	}
	pool := append(intra, inter...)
	if k > len(pool) {
		k = len(pool)
	}
	rng.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })
	rng.Shuffle(len(inter), func(i, j int) { inter[i], inter[j] = inter[j], inter[i] })
	picked := append(append([]int{}, intra...), inter...)[:k]
	out := make([]treedecomp.Delta, 0, k)
	for _, i := range picked {
		e := edges[i]
		out = append(out, treedecomp.Delta{
			Op: treedecomp.DeltaReweightEdge, U: e.U, V: e.V, Weight: e.Weight*2 + 1,
		})
	}
	return out
}

func sameAssignment(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
