// Package experiments implements the evaluation suite of this
// reproduction. The paper (SPAA 2014) is theoretical and reports no
// measurements, so each experiment here validates the *shape* of one of
// its claims — optimality and violation bounds (Theorems 2, 4, 5),
// structural lemmas (Lemmas 2, 4, 5, Observation 1), the embedding
// property (Proposition 1), end-to-end approximation (Theorem 1) — or
// benchmarks the algorithm against the related-work heuristics (§1.1)
// and the stream-placement application (§1). EXPERIMENTS.md records the
// outputs; cmd/hgpbench prints them; bench_test.go wraps each in a
// testing.B target.
//
// Main entry points: the E-numbered functions (E5VsBaselines,
// E6StreamThroughput, E9CMSweep, the E11–E17 ablations,
// E18DynamicRepartition, E21AtScale, …), each taking a Config and
// returning a printable Table; the remaining experiments live in the
// package's tests because their claims are pass/fail rather than
// tabular.
package experiments
