package experiments

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"hierpart/internal/baseline"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/stream"
	"hierpart/internal/treedecomp"
)

// quantizeDemands rounds every demand up to a multiple of q. Few
// distinct demand values keep the signature DP's subset-sum state space
// small — the practical knob the paper's ε-rounding (§3) formalizes.
func quantizeDemands(g *graph.Graph, q float64) {
	for v := 0; v < g.N(); v++ {
		d := g.Demand(v)
		steps := int(d/q + 1 - 1e-9)
		g.SetDemand(v, float64(steps)*q)
	}
}

// E5VsBaselines compares the paper's algorithm (and its locally refined
// variant) against the related-work heuristics on four workload
// families. Cells are mean cost ratios relative to the HGP pipeline
// (> 1 means worse than HGP).
func E5VsBaselines(cfg Config) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Cost vs baselines (ratio to HGP pipeline; >1 = worse)",
		Columns: []string{"workload", "n", "HGP cost", "HGP+refine", "dual-recursive",
			"multilevel", "kBGP-oblivious", "greedy-BFS", "random"},
		Notes: "expected: hierarchy-oblivious ratios well above 1 on structured workloads; refined variants (HGP+refine, multilevel) can beat the bare pipeline as n grows — guarantees vs heuristics",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 20))
	h := hierarchy.NUMASockets(4, 4)
	scale := cfg.pick(1, 2)
	workloads := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"community", func() *graph.Graph {
			g := gen.Community(rng, 4, 8*scale, 0.5, 0.02, 10, 1)
			gen.EqualDemands(g, 0.6*float64(h.Leaves())/float64(32*scale))
			return g
		}},
		{"power-law", func() *graph.Graph {
			g := gen.BarabasiAlbert(rng, 32*scale, 2, 5)
			gen.EqualDemands(g, 0.6*float64(h.Leaves())/float64(32*scale))
			return g
		}},
		{"grid", func() *graph.Graph {
			g := gen.Grid(8, 4*scale, 2)
			gen.EqualDemands(g, 0.6*float64(h.Leaves())/float64(32*scale))
			return g
		}},
		{"stream word-count", func() *graph.Graph {
			topo := stream.WordCount(rng, 12*scale, 16*scale, 0.1, 0.4, 50)
			g := topo.CommGraph()
			quantizeDemands(g, 1.0/8)
			return g
		}},
	}
	trials := cfg.pick(2, 5)
	for _, wl := range workloads {
		var hgpC, refC, dualC, mlC, kbgpC, bfsC, rndC float64
		var n int
		for i := 0; i < trials; i++ {
			g := wl.mk()
			n = g.N()
			res, err := hgp.Solver{Eps: 0.5, Trees: 3, Seed: rng.Int63(), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
			if err != nil {
				continue
			}
			hgpC += res.Cost
			refined := baseline.RefineLocal(g, h, res.Assignment, 1.2, 2)
			refC += metrics.CostLCA(g, h, refined)
			dualC += metrics.CostLCA(g, h, baseline.DualRecursive(rng, g, h))
			mlC += metrics.CostLCA(g, h, baseline.Multilevel(rng, g, h))
			kbgpC += metrics.CostLCA(g, h, baseline.KBGPOblivious(rng, g, h))
			bfsC += metrics.CostLCA(g, h, baseline.GreedyBFS(g, h))
			rndC += metrics.CostLCA(g, h, baseline.Random(rng, g, h))
		}
		t.AddRow(wl.name, n, hgpC/float64(trials),
			metrics.Ratio(refC, hgpC), metrics.Ratio(dualC, hgpC), metrics.Ratio(mlC, hgpC),
			metrics.Ratio(kbgpC, hgpC), metrics.Ratio(bfsC, hgpC), metrics.Ratio(rndC, hgpC))
	}
	return t
}

// E6StreamThroughput reproduces the paper's §1 motivation: pinning
// communicating tasks on nearby cores raises sustainable throughput.
// Reported: input-rate multiplier sustained by each placement policy and
// the rate-weighted average per-message cost (latency proxy).
func E6StreamThroughput(cfg Config) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Stream placement throughput (sustainable input-rate multiplier λ)",
		Columns: []string{"topology", "ops", "λ HGP", "λ dual-rec", "λ multilevel",
			"λ round-robin", "λ random", "msgcost HGP", "msgcost round-robin"},
		Notes: "expected: HGP has the lowest per-message cost everywhere and the highest λ on communication-dominated shapes (fan-in, join tree); on compute-dominated shapes balanced-oblivious placements can sustain more",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 21))
	h := hierarchy.NUMASockets(4, 4)
	model := stream.Model{OverheadPerMsg: 1e-3}
	scale := cfg.pick(1, 2)
	topos := []struct {
		name string
		mk   func() *stream.Topology
	}{
		{"fan-in aggregation", func() *stream.Topology {
			return stream.FanInAggregation(rng, 4*scale, 2*scale, 0.3, 0.6, 40)
		}},
		{"word-count", func() *stream.Topology {
			return stream.WordCount(rng, 4*scale, 6*scale, 0.3, 0.6, 40)
		}},
		{"pipeline", func() *stream.Topology {
			return stream.Pipeline(rng, 4, 3*scale, 0.3, 0.6, 40)
		}},
		{"diamond", func() *stream.Topology {
			return stream.Diamond(rng, 3*scale, 0.3, 0.6, 40)
		}},
		{"join tree", func() *stream.Topology {
			return stream.JoinTree(rng, 8, 0.3, 0.6, 40)
		}},
	}
	for _, tc := range topos {
		topo := tc.mk()
		g := topo.CommGraph()
		res, err := hgp.Solver{Eps: 0.5, Trees: 3, Seed: rng.Int63(), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
		if err != nil {
			t.AddRow(tc.name, topo.N(), "err: "+err.Error())
			continue
		}
		rr := metrics.NewAssignment(topo.N())
		for v := range rr {
			rr[v] = v % h.Leaves()
		}
		dual := baseline.DualRecursive(rng, g, h)
		ml := baseline.Multilevel(rng, g, h)
		rnd := baseline.Random(rng, g, h)
		t.AddRow(tc.name, topo.N(),
			model.Throughput(topo, h, res.Assignment),
			model.Throughput(topo, h, dual),
			model.Throughput(topo, h, ml),
			model.Throughput(topo, h, rr),
			model.Throughput(topo, h, rnd),
			stream.AvgMsgCost(topo, h, res.Assignment),
			stream.AvgMsgCost(topo, h, rr))
	}
	return t
}

// E9CMSweep sweeps the steepness of the cost multipliers on a fixed
// workload: the flatter the hierarchy costs, the less hierarchy
// awareness matters; the crossover locates where HGP starts paying off
// against a hierarchy-oblivious balanced partitioner.
func E9CMSweep(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Benefit of hierarchy awareness vs cm steepness",
		Columns: []string{"cm(0)/cm(1)", "HGP cost", "kBGP-oblivious cost", "oblivious/HGP"},
		Notes:   "expected: ratio grows with steepness; ≈1 when cm is flat",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 22))
	g := gen.Community(rng, 4, 8, 0.5, 0.03, 10, 1)
	gen.EqualDemands(g, 0.5*16.0/32.0)
	trials := cfg.pick(2, 5)
	for _, steep := range []float64{1, 2, 5, 10, 50} {
		h := hierarchy.MustNew([]int{4, 4}, []float64{steep, 1, 0})
		var hgpC, oblC float64
		for i := 0; i < trials; i++ {
			res, err := hgp.Solver{Eps: 0.5, Trees: 3, Seed: rng.Int63(), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
			if err != nil {
				continue
			}
			hgpC += res.Cost
			oblC += metrics.CostLCA(g, h, baseline.KBGPOblivious(rng, g, h))
		}
		t.AddRow(steep, hgpC/float64(trials), oblC/float64(trials), metrics.Ratio(oblC, hgpC))
	}
	return t
}

// E15DESStability runs the discrete-event simulator's stability search
// (binary search on the input-rate multiplier) for each placement
// policy, cross-validating the analytic throughput model of E6 with an
// executed system rather than a utilization formula.
func E15DESStability(cfg Config) *Table {
	t := &Table{
		ID:    "E15",
		Title: "Discrete-event stability limit per placement (max stable rate)",
		Columns: []string{"topology", "ops", "HGP", "dual-recursive", "round-robin",
			"random", "HGP p95 latency @1x"},
		Notes: "expected: same ordering as the analytic λ of E6; latency in simulated seconds",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 50))
	h := hierarchy.NUMASockets(4, 4)
	model := stream.Model{OverheadPerMsg: 1e-3}
	dur := float64(cfg.pick(4, 12))
	topos := []struct {
		name string
		mk   func() *stream.Topology
	}{
		{"fan-in aggregation", func() *stream.Topology {
			return stream.FanInAggregation(rng, 4, 2, 0.3, 0.6, 40)
		}},
		{"join tree", func() *stream.Topology {
			return stream.JoinTree(rng, 8, 0.3, 0.6, 40)
		}},
		{"pipeline", func() *stream.Topology {
			return stream.Pipeline(rng, 4, 3, 0.3, 0.6, 40)
		}},
	}
	for _, tc := range topos {
		topo := tc.mk()
		g := topo.CommGraph()
		res, err := hgp.Solver{Eps: 0.5, Trees: 3, Seed: rng.Int63(), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
		if err != nil {
			t.AddRow(tc.name, topo.N(), "err: "+err.Error())
			continue
		}
		rr := metrics.NewAssignment(topo.N())
		for v := range rr {
			rr[v] = v % h.Leaves()
		}
		simCfg := stream.SimConfig{Duration: dur, Model: model, Seed: 11}
		limit := func(a metrics.Assignment) float64 {
			return stream.MaxStableRate(topo, h, a, simCfg, 0.05, 8, cfg.pick(5, 8))
		}
		oneX := simCfg
		oneX.Rate = 1
		lat := stream.Simulate(topo, h, res.Assignment, oneX).P95Latency
		t.AddRow(tc.name, topo.N(),
			limit(res.Assignment),
			limit(baseline.DualRecursive(rng, g, h)),
			limit(rr),
			limit(baseline.Random(rng, g, h)),
			lat)
	}
	return t
}

// E21AtScale runs the E5 comparison at production-ish sizes (hundreds of
// tasks on a 64-core two-level machine) — the regime dominance pruning
// (E20) opens up for the exact tree DP.
func E21AtScale(cfg Config) *Table {
	t := &Table{
		ID:    "E21",
		Title: "At-scale comparison on 64 cores (ratio to HGP pipeline; >1 = worse)",
		Columns: []string{"n", "HGP cost", "solve time", "HGP+refine", "dual-recursive",
			"multilevel", "kBGP-oblivious", "random", "dp off (8t)", "dp on (8t)", "prune speedup"},
		Notes: "expected: the pipeline stays exact-on-tree and sub-second at n=256; the E5 ordering persists at scale; " +
			"the last three columns A/B incumbent pruning over one prebuilt mixed-strategy 8-tree portfolio " +
			"(2 bisection + 2 min-cut + 4 FRT; median of interleaved repeats)",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 52))
	h := hierarchy.NUMASockets(8, 8)
	sizes := []int{128, 256}
	if cfg.Quick {
		sizes = []int{64}
	}
	for _, n := range sizes {
		g := gen.Community(rng, 8, n/8, 0.3, 0.01, 10, 1)
		for v := 0; v < g.N(); v++ {
			d := 0.05 + 0.3*rng.Float64()
			g.SetDemand(v, quantUp(d, 8))
		}
		start := time.Now()
		res, err := hgp.Solver{Eps: 0.5, Trees: 2, Seed: 3, Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
		el := time.Since(start)
		if err != nil {
			t.AddRow(n, "err: "+err.Error())
			continue
		}
		refined := baseline.RefineLocal(g, h, res.Assignment, 1.2, 2)
		offMed, onMed, abErr := e21PruneAB(cfg, g, h)
		if abErr != nil {
			t.AddRow(n, "err: "+abErr.Error())
			continue
		}
		t.AddRow(n, res.Cost, el.Round(time.Millisecond),
			metrics.Ratio(metrics.CostLCA(g, h, refined), res.Cost),
			metrics.Ratio(metrics.CostLCA(g, h, baseline.DualRecursive(rng, g, h)), res.Cost),
			metrics.Ratio(metrics.CostLCA(g, h, baseline.Multilevel(rng, g, h)), res.Cost),
			metrics.Ratio(metrics.CostLCA(g, h, baseline.KBGPOblivious(rng, g, h)), res.Cost),
			metrics.Ratio(metrics.CostLCA(g, h, baseline.Random(rng, g, h)), res.Cost),
			offMed.Round(time.Millisecond), onMed.Round(time.Millisecond),
			metrics.Ratio(offMed.Seconds(), onMed.Seconds()))
	}
	return t
}

// e21PruneAB times the DP phase with incumbent pruning off and on over
// one prebuilt mixed-strategy portfolio (2 bisection + 2 min-cut + 4
// FRT trees), so the A/B isolates the solver from tree-construction
// noise. The mixed portfolio is the regime pruning targets: FRT trees
// land ~40% above the bisection incumbent here, so their DPs abort
// early, whereas a homogeneous portfolio's mapped costs cluster within
// a few percent and the bound structurally cannot bite. Repeats are
// interleaved (off, on, off, on, …) to decorrelate machine drift, and
// the medians are reported. The placements are bit-identical either
// way (the pruning identity battery); only the wall-clock differs.
func e21PruneAB(cfg Config, g *graph.Graph, h *hierarchy.Hierarchy) (off, on time.Duration, err error) {
	sv := hgp.Solver{Eps: 0.5, Trees: 4, Seed: 3, Workers: cfg.Workers}
	dec := mixedPortfolio(sv, g)
	reps := cfg.pick(1, 5)
	offs := make([]time.Duration, 0, reps)
	ons := make([]time.Duration, 0, reps)
	for r := 0; r < reps; r++ {
		for _, prune := range []bool{false, true} {
			s := sv
			s.Prune = prune
			start := time.Now()
			if _, serr := s.SolveDecomposition(context.Background(), g, h, dec); serr != nil {
				return 0, 0, serr
			}
			if el := time.Since(start); prune {
				ons = append(ons, el)
			} else {
				offs = append(offs, el)
			}
		}
	}
	return medianDuration(offs), medianDuration(ons), nil
}

// mixedPortfolio builds the prebuilt mixed-strategy 8-tree portfolio
// the pruning experiments share (2 bisection + 2 min-cut + 4 FRT): the
// heterogeneous regime where the incumbent bound structurally bites.
// E21's A/B and E24's multi-core matrix solve the same decomposition so
// their numbers compare like for like.
func mixedPortfolio(sv hgp.Solver, g *graph.Graph) *treedecomp.Decomposition {
	dec := &treedecomp.Decomposition{}
	for _, sp := range []struct {
		st treedecomp.Strategy
		k  int
	}{{treedecomp.BalancedBisection, 2}, {treedecomp.MinCutSplit, 2}, {treedecomp.FRT, 4}} {
		opt := sv.DecompOptions()
		opt.Trees = sp.k
		opt.Strategy = sp.st
		d2 := treedecomp.Build(g, opt)
		dec.Trees = append(dec.Trees, d2.Trees...)
	}
	return dec
}

func medianDuration(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// quantUp rounds x up to a multiple of 1/q.
func quantUp(x float64, q int) float64 {
	steps := int(x*float64(q) + 1 - 1e-9)
	return float64(steps) / float64(q)
}
