package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"hierpart/internal/exact"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/tree"
)

// exactScaleTree draws a random tree with at most maxLeaves leaves whose
// demands are exact multiples of 1/(2·leaves), so the ε = 0.5 scaling of
// the DP is lossless and optimality comparisons are exact.
func exactScaleTree(rng *rand.Rand, maxLeaves int) *tree.Tree {
	for {
		tr := gen.RandomTree(rng, 2+rng.Intn(2*maxLeaves), 9, 0.1, 0.9)
		leaves := tr.Leaves()
		if len(leaves) < 2 || len(leaves) > maxLeaves {
			continue
		}
		q := 2 * len(leaves)
		for _, l := range leaves {
			tr.SetDemand(l, float64(1+rng.Intn(q))/float64(q))
		}
		return tr
	}
}

var theoryHierarchies = []struct {
	name string
	h    *hierarchy.Hierarchy
}{
	{"flat k=2", hierarchy.FlatKWay(2)},
	{"flat k=3", hierarchy.FlatKWay(3)},
	{"2x2", hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})},
	{"3x2", hierarchy.MustNew([]int{3, 2}, []float64{4, 1, 0})},
	{"2x2x2", hierarchy.MustNew([]int{2, 2, 2}, []float64{9, 5, 2, 0})},
}

// E1TreeDPOptimality compares the signature DP against the brute-force
// relaxed optimum (Theorem 4: the DP must be exactly optimal).
func E1TreeDPOptimality(cfg Config) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Tree DP vs brute-force relaxed optimum (Theorem 4)",
		Columns: []string{"hierarchy", "trials", "mean ratio", "max ratio", "exact"},
		Notes:   "expected: every ratio 1.0 (DP optimal for RHGPT)",
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := cfg.pick(8, 40)
	for _, hc := range theoryHierarchies {
		var sum, max float64
		exactCnt := 0
		for i := 0; i < trials; i++ {
			tr := exactScaleTree(rng, 5)
			sol, err := hgpt.Solver{Eps: 0.5}.Solve(tr, hc.h)
			if err != nil {
				continue
			}
			want := exact.RHGPTBrute(tr, hc.h)
			r := metrics.Ratio(sol.DPCost, want)
			if want == 0 && sol.DPCost == 0 {
				r = 1
			}
			sum += r
			if r > max {
				max = r
			}
			if math.Abs(sol.DPCost-want) < 1e-6 {
				exactCnt++
			}
		}
		t.AddRow(hc.name, trials, sum/float64(trials), max, frac(exactCnt, trials))
	}
	return t
}

// frac renders "a/b" counts for table cells.
func frac(a, b int) string { return fmt.Sprintf("%d/%d", a, b) }

// E2CostForms checks Lemma 2: the LCA form (Equation 1) and the mirror
// form (Equation 3) of the objective agree on random placements.
func E2CostForms(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Equation (1) vs Equation (3) cost forms (Lemma 2)",
		Columns: []string{"family", "trials", "max rel diff"},
		Notes:   "expected: differences at floating-point noise level",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	trials := cfg.pick(20, 200)
	h := hierarchy.NUMAServer()
	run := func(name string, mk func(r *rand.Rand) *graph.Graph) {
		var worst float64
		for i := 0; i < trials; i++ {
			g := mk(rng)
			a := make(metrics.Assignment, g.N())
			for v := range a {
				a[v] = rng.Intn(h.Leaves())
			}
			lca := metrics.CostLCA(g, h, a)
			mir := metrics.CostMirror(g, h, a)
			d := math.Abs(lca-mir) / (1 + math.Abs(lca))
			if d > worst {
				worst = d
			}
		}
		t.AddRow(name, trials, worst)
	}
	run("erdos-renyi", func(r *rand.Rand) *graph.Graph { return gen.ErdosRenyi(r, 24, 0.2, 5) })
	run("grid 6x4", func(r *rand.Rand) *graph.Graph { return gen.Grid(6, 4, 2) })
	run("power-law", func(r *rand.Rand) *graph.Graph { return gen.BarabasiAlbert(r, 24, 2, 5) })
	return t
}

// E3ViolationBound measures the worst per-level capacity violation of
// the full tree solver on feasible instances (Theorems 2 and 5).
func E3ViolationBound(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Per-level capacity violation vs (1+ε)(1+j) bound (Theorem 5)",
		Columns: []string{"hierarchy", "level", "CP(j)", "worst observed", "bound", "ok"},
		Notes:   "expected: observed ≤ bound at every level (ε = 0.5)",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	trials := cfg.pick(6, 30)
	eps := 0.5
	for _, hc := range theoryHierarchies {
		worst := make([]float64, hc.h.Height()+1)
		for i := 0; i < trials; i++ {
			var tr *tree.Tree
			for {
				tr = exactScaleTree(rng, cfg.pick(6, 10))
				if tr.TotalDemand() <= hc.h.Cap(0) {
					break
				}
			}
			sol, err := hgpt.Solver{Eps: eps}.Solve(tr, hc.h)
			if err != nil {
				continue
			}
			for j := 0; j <= hc.h.Height(); j++ {
				for _, s := range sol.Strict.Levels[j] {
					if r := s.Demand / hc.h.Cap(j); r > worst[j] {
						worst[j] = r
					}
				}
			}
		}
		for j := 0; j <= hc.h.Height(); j++ {
			bound := (1 + eps) * float64(1+j)
			t.AddRow(hc.name, j, hc.h.Cap(j), worst[j], bound, worst[j] <= bound+1e-9)
		}
	}
	return t
}

// E4ApproxRatio measures the end-to-end pipeline against the true HGP
// optimum on tiny graphs (the empirical face of Theorem 1).
func E4ApproxRatio(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "End-to-end cost vs brute-force optimum (Theorem 1 shape)",
		Columns: []string{"family", "hierarchy", "feasible trials", "mean ratio", "max ratio"},
		Notes:   "bicriteria: the pipeline may trade small capacity violations for cost, so ratios can dip below 1",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	trials := cfg.pick(6, 25)
	hs := []struct {
		name string
		h    *hierarchy.Hierarchy
	}{
		{"flat k=4", hierarchy.FlatKWay(4)},
		{"2x2", hierarchy.MustNew([]int{2, 2}, []float64{5, 2, 0})},
	}
	fams := []struct {
		name string
		mk   func(r *rand.Rand) *graph.Graph
	}{
		{"erdos-renyi", func(r *rand.Rand) *graph.Graph { return gen.ErdosRenyi(r, 6, 0.4, 4) }},
		{"grid 2x3", func(r *rand.Rand) *graph.Graph { return gen.Grid(2, 3, 1) }},
	}
	for _, fc := range fams {
		for _, hc := range hs {
			var sum, max float64
			okTrials := 0
			for i := 0; i < trials; i++ {
				g := fc.mk(rng)
				gen.UniformDemands(rng, g, 0.2, 0.6)
				opt, optA := exact.HGPBrute(g, hc.h)
				if optA == nil || opt == 0 {
					continue
				}
				res, err := hgp.Solver{Eps: 0.25, Trees: 4, Seed: rng.Int63(), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, hc.h)
				if err != nil {
					continue
				}
				okTrials++
				r := res.Cost / opt
				sum += r
				if r > max {
					max = r
				}
			}
			if okTrials == 0 {
				t.AddRow(fc.name, hc.name, 0, "-", "-")
				continue
			}
			t.AddRow(fc.name, hc.name, okTrials, sum/float64(okTrials), max)
		}
	}
	return t
}
