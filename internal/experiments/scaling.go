package experiments

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/kbgp"
	"hierpart/internal/metrics"
	"hierpart/internal/tree"
	"hierpart/internal/treedecomp"
)

// E7TreeDistortion measures the cut distortion of the decomposition-tree
// embedding: Proposition 1 guarantees ≥ 1; Räcke's construction would
// bound the expectation by O(log n) — this reports what the randomized
// recursive bisection substitute actually achieves per graph family.
func E7TreeDistortion(cfg Config) *Table {
	t := &Table{
		ID:    "E7",
		Title: "Decomposition-tree cut distortion (Proposition 1 / Räcke substitute)",
		Columns: []string{"family", "n", "subsets", "min", "mean", "p95", "max",
			"mean best-of-4"},
		Notes: "expected: min ≥ 1 always; modest means (the O(log n) regime); best-of-distribution lower",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 30))
	n := cfg.pick(24, 64)
	subsets := cfg.pick(60, 400)
	fams := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"grid", func() *graph.Graph { return gen.Grid(n/4, 4, 1) }},
		{"torus", func() *graph.Graph { return gen.Torus(n/4, 4, 1) }},
		{"erdos-renyi", func() *graph.Graph { return gen.ErdosRenyi(rng, n, 0.15, 4) }},
		{"power-law", func() *graph.Graph { return gen.BarabasiAlbert(rng, n, 2, 4) }},
		{"community", func() *graph.Graph { return gen.Community(rng, 4, n/4, 0.5, 0.03, 8, 1) }},
	}
	for _, fc := range fams {
		g := fc.mk()
		dec := treedecomp.Build(g, treedecomp.Options{Trees: 4, Seed: rng.Int63()})
		var all []float64
		var bestSum float64
		for si := 0; si < subsets; si++ {
			s := map[int]bool{}
			for v := 0; v < g.N(); v++ {
				if rng.Float64() < 0.3 {
					s[v] = true
				}
			}
			if len(s) == 0 || len(s) == g.N() {
				continue
			}
			best := math.Inf(1)
			for _, dt := range dec.Trees {
				d := dt.CutDistortion(g, s)
				all = append(all, d)
				if d < best {
					best = d
				}
			}
			bestSum += best
		}
		sort.Float64s(all)
		var sum float64
		for _, d := range all {
			sum += d
		}
		t.AddRow(fc.name, g.N(), len(all)/4,
			all[0], sum/float64(len(all)), all[int(float64(len(all))*0.95)], all[len(all)-1],
			bestSum/float64(len(all)/4))
	}
	return t
}

// E8DPScaling sweeps the signature DP's state count and wall time over
// leaves n, rounding ε (which drives D ≈ n²/ε), and hierarchy height h —
// the practical face of the paper's O(n·D^{O(h)}) bound.
func E8DPScaling(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Signature DP scaling over n, ε, h",
		Columns: []string{"h", "leaves", "ε", "D", "states", "time"},
		Notes:   "expected: states grow with n and 1/ε and sharply with h",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	// Per-height sweeps: the state space is D^Θ(h), so taller
	// hierarchies get smaller n and coarser ε (the same constant-h
	// caveat the paper attaches to Theorem 1).
	type sweep struct {
		h     *hierarchy.Hierarchy
		sizes []int
		epss  []float64
	}
	sweeps := []sweep{
		{hierarchy.FlatKWay(8), []int{8, 16, 32, 64, 128}, []float64{1, 0.5, 0.25}},
		{hierarchy.MustNew([]int{4, 2}, []float64{5, 2, 0}), []int{8, 16, 32, 64}, []float64{1, 0.5}},
		{hierarchy.MustNew([]int{2, 2, 2}, []float64{9, 5, 2, 0}), []int{8, 16, 32}, []float64{1, 0.5}},
	}
	if cfg.Quick {
		sweeps = []sweep{
			{hierarchy.FlatKWay(8), []int{8, 16}, []float64{1, 0.5}},
			{hierarchy.MustNew([]int{4, 2}, []float64{5, 2, 0}), []int{8, 16}, []float64{1, 0.5}},
		}
	}
	for _, sw := range sweeps {
		for _, n := range sw.sizes {
			tr := gen.BalancedTree(1, n, 1, 0) // star; demands set below
			leaves := tr.Leaves()
			for _, l := range leaves {
				tr.SetDemand(l, 0.1+0.8*rng.Float64())
			}
			for _, eps := range sw.epss {
				start := time.Now()
				sol, err := hgpt.Solver{Eps: eps, MaxStates: 20_000_000, Workers: cfg.Workers}.Solve(tr, sw.h)
				el := time.Since(start)
				if err != nil {
					t.AddRow(sw.h.Height(), n, eps, "-", "-", "state budget")
					continue
				}
				t.AddRow(sw.h.Height(), n, eps, sol.ScaledTotal, sol.States, el.Round(time.Millisecond/10))
			}
		}
	}
	return t
}

// E10KBGPConsistency cross-checks the general signature DP at h = 1
// against the independent single-dimension k-BGP DP on trees beyond
// brute-force reach.
func E10KBGPConsistency(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "h=1 consistency: signature DP vs independent k-BGP DP",
		Columns: []string{"leaves", "trials", "agree", "max abs diff"},
		Notes:   "expected: exact agreement on every instance",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 32))
	trials := cfg.pick(4, 12)
	for _, maxLeaves := range []int{10, 20, 40} {
		agree := 0
		var worst float64
		for i := 0; i < trials; i++ {
			tr := exactScaleTree(rng, maxLeaves)
			h := hierarchy.FlatKWay(8)
			sol, err := hgpt.Solver{Eps: 0.5}.Solve(tr, h)
			if err != nil {
				continue
			}
			got, err := kbgp.TreeOptimal(tr, 0.5)
			if err != nil {
				continue
			}
			d := math.Abs(got - sol.DPCost)
			if d > worst {
				worst = d
			}
			if d < 1e-6 {
				agree++
			}
		}
		t.AddRow(maxLeaves, trials, frac(agree, trials), worst)
	}
	return t
}

// All runs every experiment with the given configuration.
func All(cfg Config) []*Table {
	return []*Table{
		E1TreeDPOptimality(cfg),
		E2CostForms(cfg),
		E3ViolationBound(cfg),
		E4ApproxRatio(cfg),
		E5VsBaselines(cfg),
		E6StreamThroughput(cfg),
		E7TreeDistortion(cfg),
		E8DPScaling(cfg),
		E9CMSweep(cfg),
		E10KBGPConsistency(cfg),
		E11AblationDP(cfg),
		E12AblationTrees(cfg),
		E13AblationRefinement(cfg),
		E14EmbeddingCongestion(cfg),
		E15DESStability(cfg),
		E16AblationFlowRefine(cfg),
		E17AblationStrategy(cfg),
		E18DynamicRepartition(cfg),
		E19EpsSweep(cfg),
		E20AblationPruning(cfg),
		E21AtScale(cfg),
		E22AnytimeLadder(cfg),
		E23WarmRestart(cfg),
		E24MultiCoreMatrix(cfg),
		E25CanonCache(cfg),
		F1BadSetSplit(cfg),
		F2ActiveSets(cfg),
	}
}

// E14EmbeddingCongestion routes each decomposition-tree edge's weight
// along its mapped graph path (m_E of §4) and reports the worst relative
// edge load — the congestion quantity Theorem 6 bounds by O(log n) for
// Räcke's optimal distribution. For the randomized-bisection substitute
// this is a measurement, not a guarantee.
func E14EmbeddingCongestion(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Embedding congestion (Theorem 6 view, m_E routing)",
		Columns: []string{"family", "n", "trees", "min congestion", "mean", "max"},
		Notes:   "diagnostic: single-path m_E routing (not Räcke's fractional multipath) inflates congestion well past O(log n) on expanders — the price of the embedding substitute, measured honestly",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 33))
	n := cfg.pick(24, 64)
	trees := cfg.pick(3, 6)
	fams := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"grid", func() *graph.Graph { return gen.Grid(n/4, 4, 1) }},
		{"torus", func() *graph.Graph { return gen.Torus(n/4, 4, 1) }},
		{"erdos-renyi", func() *graph.Graph { return gen.ErdosRenyi(rng, n, 0.15, 4) }},
		{"power-law", func() *graph.Graph { return gen.BarabasiAlbert(rng, n, 2, 4) }},
		{"community", func() *graph.Graph { return gen.Community(rng, 4, n/4, 0.5, 0.03, 8, 1) }},
	}
	for _, fc := range fams {
		g := fc.mk()
		dec := treedecomp.Build(g, treedecomp.Options{Trees: trees, Seed: rng.Int63()})
		min, max, sum := math.Inf(1), 0.0, 0.0
		for _, dt := range dec.Trees {
			m := dt.BuildMapping(g)
			c := dt.Congestion(g, m)
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
			sum += c
		}
		t.AddRow(fc.name, g.N(), trees, min, sum/float64(trees), max)
	}
	return t
}

// E19EpsSweep sweeps the rounding parameter ε — the knob Theorem 2
// exposes: finer rounding tightens the capacity violation toward (1+j)
// and the cost toward the true relaxed optimum, at a polynomial state
// blow-up (D ≈ n²/ε).
func E19EpsSweep(cfg Config) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Rounding parameter ε: cost / violation / states trade-off",
		Columns: []string{"ε", "mean cost vs ε=0.125", "worst leaf violation", "mean states", "trials"},
		Notes:   "measured: the bicriteria trade made visible — coarse ε under-counts demands, buying LOWER cost at HIGHER leaf violation; fine ε tightens violation toward feasibility while the state count grows, saturating once the instance's demand resolution is fully captured",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 34))
	trials := cfg.pick(4, 10)
	h := hierarchy.MustNew([]int{2, 2}, []float64{6, 2, 0})
	type inst struct{ tr *tree.Tree }
	var instances []inst
	for len(instances) < trials {
		tr := exactScaleTree(rng, cfg.pick(6, 9))
		if tr.TotalDemand() <= h.Cap(0) {
			instances = append(instances, inst{tr})
		}
	}
	epss := []float64{2, 1, 0.5, 0.25, 0.125}
	costs := make([]float64, len(epss))
	states := make([]float64, len(epss))
	worstViol := make([]float64, len(epss))
	for ei, eps := range epss {
		for _, in := range instances {
			sol, err := hgpt.Solver{Eps: eps}.Solve(in.tr, h)
			if err != nil {
				continue
			}
			costs[ei] += sol.Cost
			states[ei] += float64(sol.States)
			for _, set := range sol.Strict.Levels[h.Height()] {
				if v := set.Demand / h.Cap(h.Height()); v > worstViol[ei] {
					worstViol[ei] = v
				}
			}
		}
	}
	base := costs[len(costs)-1]
	for ei, eps := range epss {
		t.AddRow(eps, metrics.Ratio(costs[ei], base), worstViol[ei],
			states[ei]/float64(trials), trials)
	}
	return t
}

// E20AblationPruning measures dominance pruning of the DP tables: state
// count and wall time with and without, plus a per-instance check that
// the optimum is bit-identical (the formal argument for why it must be
// lives in internal/hgpt/prune.go; the brute-force batteries pin it).
func E20AblationPruning(cfg Config) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "Ablation: dominance pruning of DP tables",
		Columns: []string{"h", "leaves", "states (pruned)", "states (full)", "reduction", "time pruned", "time full", "costs equal"},
		Notes:   "expected: identical optima, substantially fewer states on multi-level hierarchies",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 35))
	type sweep struct {
		h     *hierarchy.Hierarchy
		sizes []int
	}
	sweeps := []sweep{
		{hierarchy.FlatKWay(8), []int{16, 32}},
		{hierarchy.MustNew([]int{4, 2}, []float64{5, 2, 0}), []int{16, 32}},
		{hierarchy.MustNew([]int{2, 2, 2}, []float64{9, 5, 2, 0}), []int{8, 16}},
	}
	if cfg.Quick {
		sweeps = sweeps[:2]
		for i := range sweeps {
			sweeps[i].sizes = sweeps[i].sizes[:1]
		}
	}
	for _, sw := range sweeps {
		for _, n := range sw.sizes {
			tr := gen.BalancedTree(1, n, 1, 0)
			for _, l := range tr.Leaves() {
				tr.SetDemand(l, 0.1+0.8*rng.Float64())
			}
			start := time.Now()
			pruned, err1 := hgpt.Solver{Eps: 0.5}.Solve(tr, sw.h)
			tp := time.Since(start)
			start = time.Now()
			full, err2 := hgpt.Solver{Eps: 0.5, DisablePruning: true}.Solve(tr, sw.h)
			tf := time.Since(start)
			if err1 != nil || err2 != nil {
				t.AddRow(sw.h.Height(), n, "-", "-", "-", "-", "-", "err")
				continue
			}
			equal := math.Abs(pruned.DPCost-full.DPCost) < 1e-9
			t.AddRow(sw.h.Height(), n, pruned.States, full.States,
				1-float64(pruned.States)/float64(full.States),
				tp.Round(time.Millisecond/10), tf.Round(time.Millisecond/10), equal)
		}
	}
	return t
}
