package experiments

import (
	"math"
	"math/rand"

	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/tree"
)

// F1BadSetSplit validates Observation 1 / Figure 1: when a leaf set S
// has mirror components both inside and outside SUB(v) while v itself is
// outside the mirror, splitting S into U₁ = S ∩ SUB(v) and
// U₂ = S ∖ SUB(v) keeps the total cut weight unchanged — the structural
// fact behind Theorem 3 (bad sets can be split at no cost).
func F1BadSetSplit(cfg Config) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Bad-set split preserves cut weight (Observation 1 / Fig. 1)",
		Columns: []string{"trials", "split cases found", "cost preserved", "max rel diff"},
		Notes:   "expected: every found case preserved (w(CUT(S)) = w(CUT(U1)) + w(CUT(U2)))",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	trials := cfg.pick(200, 2000)
	found, preserved := 0, 0
	var worst float64
	for i := 0; i < trials; i++ {
		tr := randomWeightedTree(rng, 4+rng.Intn(12))
		leaves := tr.Leaves()
		if len(leaves) < 3 {
			continue
		}
		inS := map[int]bool{}
		for _, l := range leaves {
			if rng.Float64() < 0.5 {
				inS[l] = true
			}
		}
		if len(inS) == 0 || len(inS) == len(leaves) {
			continue
		}
		res := tr.CutLeafSetOf(inS)
		// Find an internal node v outside the mirror whose subtree holds
		// part (not all) of the mirror.
		for v := 1; v < tr.N(); v++ {
			if tr.IsLeaf(v) || res.InMirror[v] {
				continue
			}
			insideMirror, insideS, outsideS := false, map[int]bool{}, map[int]bool{}
			inSub := subtreeSet(tr, v)
			for node := range inSub {
				if res.InMirror[node] {
					insideMirror = true
				}
			}
			for l := range inS {
				if inSub[l] {
					insideS[l] = true
				} else {
					outsideS[l] = true
				}
			}
			if !insideMirror || len(insideS) == 0 || len(outsideS) == 0 {
				continue
			}
			found++
			w1 := tr.CutLeafSetOf(insideS).Weight
			w2 := tr.CutLeafSetOf(outsideS).Weight
			d := math.Abs(w1 + w2 - res.Weight)
			rel := d / (1 + res.Weight)
			if rel > worst {
				worst = rel
			}
			if rel < 1e-9 {
				preserved++
			}
			break // one case per trial keeps the table honest
		}
	}
	t.AddRow(trials, found, frac(preserved, found), worst)
	return t
}

func subtreeSet(tr *tree.Tree, v int) map[int]bool {
	out := map[int]bool{}
	var rec func(u int)
	rec = func(u int) {
		out[u] = true
		for _, c := range tr.Children(u) {
			rec(c)
		}
	}
	rec(v)
	return out
}

// F2ActiveSets validates Lemmas 4 and 5 / Figure 2 on actual solver
// output: within each level of a relaxed solution family the canonical
// mirror sets are pairwise disjoint, and mirrors of nested sets nest.
func F2ActiveSets(cfg Config) *Table {
	t := &Table{
		ID:      "F2",
		Title:   "Mirror disjointness and nesting (Lemmas 4, 5 / Fig. 2)",
		Columns: []string{"hierarchy", "solutions", "disjoint ok", "nesting ok"},
		Notes:   "expected: all ok (mirror structure of nice solutions)",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	sols := cfg.pick(6, 30)
	for _, hc := range theoryHierarchies {
		disjointOK, nestOK := 0, 0
		for i := 0; i < sols; i++ {
			tr := exactScaleTree(rng, 6)
			sol, err := hgpt.Solver{Eps: 0.5}.Solve(tr, hc.h)
			if err != nil {
				continue
			}
			if checkDisjoint(tr, sol) {
				disjointOK++
			}
			if checkNesting(tr, hc.h, sol) {
				nestOK++
			}
		}
		t.AddRow(hc.name, sols, frac(disjointOK, sols), frac(nestOK, sols))
	}
	return t
}

func mirrorOf(tr *tree.Tree, leaves []int) []bool {
	in := map[int]bool{}
	for _, l := range leaves {
		in[l] = true
	}
	return tr.CutLeafSetOf(in).InMirror
}

func checkDisjoint(tr *tree.Tree, sol *hgpt.Solution) bool {
	for j := 1; j < len(sol.Relaxed.Levels); j++ {
		var mirrors [][]bool
		for _, s := range sol.Relaxed.Levels[j] {
			mirrors = append(mirrors, mirrorOf(tr, s.Leaves))
		}
		for a := 0; a < len(mirrors); a++ {
			for b := a + 1; b < len(mirrors); b++ {
				for v := 0; v < tr.N(); v++ {
					if mirrors[a][v] && mirrors[b][v] {
						return false
					}
				}
			}
		}
	}
	return true
}

func checkNesting(tr *tree.Tree, h *hierarchy.Hierarchy, sol *hgpt.Solution) bool {
	// For each pair of adjacent levels, the set containing a leaf at
	// level j+1 is contained in the one at level j; Lemma 5 says its
	// canonical mirror is contained too.
	for j := 1; j < h.Height(); j++ {
		for _, child := range sol.Relaxed.Levels[j+1] {
			// Find the parent set: the level-j set containing child's
			// first leaf.
			var parent []int
			for _, p := range sol.Relaxed.Levels[j] {
				if p.Contains(child.Leaves[0]) {
					parent = p.Leaves
					break
				}
			}
			if parent == nil {
				return false
			}
			mc := mirrorOf(tr, child.Leaves)
			mp := mirrorOf(tr, parent)
			for v := 0; v < tr.N(); v++ {
				if mc[v] && !mp[v] {
					return false
				}
			}
		}
	}
	return true
}

// randomWeightedTree builds a random weighted tree locally (avoids importing
// gen just for this shape, whose leaf demands are irrelevant to F1).
func randomWeightedTree(rng *rand.Rand, n int) *tree.Tree {
	tr := tree.New()
	for tr.N() < n {
		tr.AddChild(rng.Intn(tr.N()), 1+rng.Float64()*9)
	}
	return tr
}
