package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Table is one experiment's result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes explains the expectation the numbers should meet.
	Notes string
	// Trees optionally carries per-tree outcome records from portfolio
	// solves (E24 fills it). Text and CSV rendering ignore it; the
	// hgpbench -json document emits it as the experiment's `trees`
	// field (schema hgpbench/2).
	Trees []TreeOutcome
}

// TreeOutcome is one decomposition tree's execution record from a
// portfolio solve: which bench configuration ran it, whether its DP
// completed, was pruned by the incumbent bound, or failed, how long it
// ran, and — for pruned trees — how far through its tables the DP got
// before the bound aborted it (0 = immediately, 1 = ran to the end).
type TreeOutcome struct {
	Config    string  `json:"config"`
	N         int     `json:"n"`
	Tree      int     `json:"tree"`
	Outcome   string  `json:"outcome"` // "done" | "pruned" | "failed"
	WallMS    float64 `json:"wall_ms"`
	AbortFrac float64 `json:"abort_frac"`
}

// AddRow appends a row, formatting each value with %v (floats get %.4g).
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	if t.Notes != "" {
		fmt.Fprintf(&sb, "-- %s\n", t.Notes)
	}
	return sb.String()
}

// Config controls experiment sizes.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed int64
	// Quick shrinks instance sizes and trial counts for tests and CI.
	Quick bool
	// Workers is the concurrency budget handed to the hgp/hgpt solvers
	// under test (0 = GOMAXPROCS for the pipeline, sequential for bare
	// tree DPs). Tables are identical at every worker count; only the
	// wall-clock changes.
	Workers int
	// Prune turns on incumbent portfolio pruning (hgp.Solver.Prune) in
	// every pipeline solve the suite runs (the hgpbench -prune flag).
	// The identity battery pins pruned results bit-identical to
	// unpruned ones, so tables do not change — only solve-time columns
	// move. E21 additionally reports its own on/off A/B regardless of
	// this flag.
	Prune bool
	// Budget, when non-zero, replaces E22's default deadline sweep with
	// this single per-solve budget (the hgpbench -budget flag). Timing-
	// dependent rows are inherently non-reproducible across machines.
	Budget time.Duration
	// Tier, when non-empty, restricts E22's ladder to one rung
	// ("full_dp", "capped_dp", or "baseline" — the hgpbench -tier flag).
	Tier string
}

func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// WriteCSV emits the table as CSV with an `experiment` column prepended,
// so multiple tables concatenate into one machine-readable stream.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"experiment"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, r...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
