package experiments

import (
	"math"
	"math/rand"
	"time"

	"hierpart/internal/dynamic"
	"hierpart/internal/exact"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
	"hierpart/internal/stream"
	"hierpart/internal/tree"
	"hierpart/internal/treedecomp"
)

// E11AblationDP quantifies the two corrections DESIGN.md §5.0 documents
// by disabling each and comparing the resulting DP cost against the
// brute-force relaxed optimum. The literal Equation (4) charging
// undercounts (claims costs below what any solution achieves); removing
// zero-demand regions overcounts (the DP can then exceed even the
// strict optimum, contradicting Theorem 2).
func E11AblationDP(cfg Config) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Ablation of the two DP corrections (vs brute-force relaxed optimum)",
		Columns: []string{"variant", "trials", "exact", "under-counts", "over-counts",
			"worst ratio"},
		Notes: "expected: corrected DP exact on all; literal Eq.(4) undercounts; no-zero-regions overcounts",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 40))
	trials := cfg.pick(20, 80)
	type variant struct {
		name   string
		solver hgpt.Solver
	}
	variants := []variant{
		{"corrected (this repo)", hgpt.Solver{Eps: 0.5}},
		{"literal Eq.(4)", hgpt.Solver{Eps: 0.5, AblateLiteralEq4: true}},
		{"no zero-demand regions", hgpt.Solver{Eps: 0.5, AblateNoZeroRegions: true}},
		{"both ablated (paper literal)", hgpt.Solver{Eps: 0.5, AblateLiteralEq4: true, AblateNoZeroRegions: true}},
	}
	// Shared instances across variants for a fair comparison.
	type inst struct {
		tr    *tree.Tree
		h     *hierarchy.Hierarchy
		brute float64
	}
	var instances []inst
	for len(instances) < trials {
		tr := exactScaleTree(rng, 5)
		hh := theoryHierarchies[len(instances)%len(theoryHierarchies)].h
		brute := exact.RHGPTBrute(tr, hh)
		if math.IsInf(brute, 1) {
			continue
		}
		instances = append(instances, inst{tr: tr, h: hh, brute: brute})
	}
	for _, v := range variants {
		exactCnt, under, over := 0, 0, 0
		worst := 1.0
		for _, in := range instances {
			sol, err := v.solver.Solve(in.tr, in.h)
			if err != nil {
				continue
			}
			switch {
			case math.Abs(sol.DPCost-in.brute) < 1e-6:
				exactCnt++
			case sol.DPCost < in.brute:
				under++
			default:
				over++
			}
			if in.brute > 0 {
				r := sol.DPCost / in.brute
				if r > worst {
					worst = r
				}
				if 1/r > worst {
					worst = 1 / r
				}
			}
		}
		t.AddRow(v.name, trials, frac(exactCnt, trials), under, over, worst)
	}
	return t
}

// E12AblationTrees sweeps the size of the decomposition-tree
// distribution: more randomized embeddings give the pipeline more
// chances to find one whose cuts align with the instance (Theorem 6
// samples O(|E| log n) trees; in practice a handful suffices).
func E12AblationTrees(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Ablation: number of decomposition trees sampled",
		Columns: []string{"trees", "mean cost", "vs 8 trees", "mean best-tree index"},
		Notes:   "expected: cost non-increasing in the sample size, flattening quickly",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	trials := cfg.pick(3, 8)
	h := hierarchy.NUMASockets(4, 4)
	var graphs []*graph.Graph
	for i := 0; i < trials; i++ {
		g := gen.Community(rng, 4, 8, 0.5, 0.03, 10, 1)
		gen.EqualDemands(g, 0.3)
		graphs = append(graphs, g)
	}
	counts := []int{1, 2, 4, 8}
	costs := make([]float64, len(counts))
	idxSum := make([]float64, len(counts))
	for ci, trees := range counts {
		for ti, g := range graphs {
			res, err := hgp.Solver{Eps: 0.5, Trees: trees, Seed: int64(ti), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
			if err != nil {
				continue
			}
			costs[ci] += res.Cost
			idxSum[ci] += float64(res.TreeIndex)
		}
	}
	base := costs[len(costs)-1]
	for ci, trees := range counts {
		t.AddRow(trees, costs[ci]/float64(trials), costs[ci]/base, idxSum[ci]/float64(trials))
	}
	return t
}

// E13AblationRefinement sweeps the Fiduccia–Mattheyses refinement effort
// of the embedding's bisections: with zero passes the decomposition is a
// raw BFS-region split; each pass lowers the tree-edge weights and with
// them the measured cut distortion and the end cost.
func E13AblationRefinement(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Ablation: embedding refinement passes (FM sweeps per bisection)",
		Columns: []string{"FM passes", "mean distortion", "p95 distortion", "end-to-end cost"},
		Notes:   "expected: refinement saturates almost immediately at these sizes — one FM sweep already finds the local structure BFS growth misses",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	n := cfg.pick(24, 48)
	g := gen.Community(rng, 4, n/4, 0.5, 0.03, 10, 1)
	gen.EqualDemands(g, 0.3)
	h := hierarchy.NUMASockets(4, 4)
	subsets := cfg.pick(50, 200)
	for _, passes := range []int{1, 2, 4, 8} {
		dec := treedecomp.Build(g, treedecomp.Options{Trees: 2, Seed: 5, FMPasses: passes})
		var sum float64
		var all []float64
		for si := 0; si < subsets; si++ {
			s := map[int]bool{}
			for v := 0; v < g.N(); v++ {
				if rng.Float64() < 0.3 {
					s[v] = true
				}
			}
			if len(s) == 0 || len(s) == g.N() {
				continue
			}
			for _, dt := range dec.Trees {
				d := dt.CutDistortion(g, s)
				sum += d
				all = append(all, d)
			}
		}
		sortFloats(all)
		res, err := hgp.Solver{Eps: 0.5, Trees: 2, Seed: 5, FMPasses: passes, Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
		cost := math.NaN()
		if err == nil {
			cost = res.Cost
		}
		t.AddRow(passes, sum/float64(len(all)), all[int(float64(len(all))*0.95)], cost)
	}
	return t
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// cliqueRing builds k cliques of size m (internal weight wIn) joined in
// a ring by single weight-wOut edges — the bottleneck structure greedy
// FM moves cannot cross but a corridor max-flow cut finds.
func cliqueRing(k, m int, wIn, wOut float64) *graph.Graph {
	g := graph.New(k * m)
	for c := 0; c < k; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.AddEdge(base+i, base+j, wIn)
			}
		}
		g.AddEdge(base, ((c+1)%k)*m, wOut)
	}
	return g
}

// E16AblationFlowRefine compares the embedding with and without the
// corridor max-flow polish of each bisection: distortion of the
// resulting trees, end-to-end cost, and build time.
func E16AblationFlowRefine(cfg Config) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Ablation: corridor max-flow polish of embedding bisections",
		Columns: []string{"family", "variant", "mean distortion", "p95", "end-to-end cost", "build time"},
		Notes:   "measured: a null result — BFS+FM already finds the bottlenecks of these families, so the polish changes nothing at ~2× build time; it only pays on adversarial traps (see treedecomp.TestFlowRefineUnsticksFM)",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 43))
	n := cfg.pick(24, 48)
	subsets := cfg.pick(50, 200)
	fams := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"community", func() *graph.Graph { return gen.Community(rng, 4, n/4, 0.5, 0.03, 10, 1) }},
		{"power-law", func() *graph.Graph { return gen.BarabasiAlbert(rng, n, 2, 4) }},
		{"clique ring", func() *graph.Graph { return cliqueRing(4, n/4, 10, 1) }},
	}
	h := hierarchy.NUMASockets(4, 4)
	for _, fc := range fams {
		g := fc.mk()
		gen.EqualDemands(g, 0.3)
		for _, fr := range []bool{false, true} {
			start := time.Now()
			dec := treedecomp.Build(g, treedecomp.Options{Trees: 3, Seed: 7, FlowRefine: fr})
			buildTime := time.Since(start)
			var all []float64
			subRng := rand.New(rand.NewSource(cfg.Seed + 44))
			for si := 0; si < subsets; si++ {
				s := map[int]bool{}
				for v := 0; v < g.N(); v++ {
					if subRng.Float64() < 0.3 {
						s[v] = true
					}
				}
				if len(s) == 0 || len(s) == g.N() {
					continue
				}
				for _, dt := range dec.Trees {
					all = append(all, dt.CutDistortion(g, s))
				}
			}
			sortFloats(all)
			var sum float64
			for _, d := range all {
				sum += d
			}
			res, err := hgp.Solver{Eps: 0.5, Trees: 3, Seed: 7, FlowRefine: fr, Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g, h)
			cost := math.NaN()
			if err == nil {
				cost = res.Cost
			}
			name := "FM only"
			if fr {
				name = "FM + flow"
			}
			t.AddRow(fc.name, name, sum/float64(len(all)),
				all[int(float64(len(all))*0.95)], cost, buildTime.Round(time.Millisecond/10))
		}
	}
	return t
}

// E17AblationStrategy compares the embedding's cluster-splitting
// strategies: balanced FM bisection (shallow trees, bounded depth),
// global-min-cut splitting (cut-faithful, unbalanced), and the FRT
// random hierarchical decomposition over the inverse-weight metric.
// Reported per family: distortion statistics, tree depth, end-to-end
// cost, DP states.
func E17AblationStrategy(cfg Config) *Table {
	t := &Table{
		ID:    "E17",
		Title: "Ablation: embedding split strategy (balanced FM / global min cut / FRT)",
		Columns: []string{"family", "strategy", "mean distortion", "p95", "tree depth",
			"end-to-end cost", "DP states"},
		Notes: "measured: min-cut splitting often lowers the end-to-end cost (its trees represent exactly the cheap cuts solutions use) at the price of much deeper trees and a larger DP; FRT gives the shallowest trees but optimizes distance distortion, not cut distortion; balanced splitting stays the default",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 45))
	n := cfg.pick(24, 48)
	subsets := cfg.pick(50, 200)
	h := hierarchy.NUMASockets(4, 4)
	fams := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"community", func() *graph.Graph { return gen.Community(rng, 4, n/4, 0.5, 0.03, 10, 1) }},
		{"grid", func() *graph.Graph { return gen.Grid(n/4, 4, 2) }},
	}
	for _, fc := range fams {
		g := fc.mk()
		gen.EqualDemands(g, 0.3)
		for _, strat := range []treedecomp.Strategy{treedecomp.BalancedBisection, treedecomp.MinCutSplit, treedecomp.FRT} {
			dec := treedecomp.Build(g, treedecomp.Options{Trees: 2, Seed: 7, Strategy: strat})
			var all []float64
			subRng := rand.New(rand.NewSource(cfg.Seed + 46))
			for si := 0; si < subsets; si++ {
				s := map[int]bool{}
				for v := 0; v < g.N(); v++ {
					if subRng.Float64() < 0.3 {
						s[v] = true
					}
				}
				if len(s) == 0 || len(s) == g.N() {
					continue
				}
				for _, dt := range dec.Trees {
					all = append(all, dt.CutDistortion(g, s))
				}
			}
			sortFloats(all)
			var sum float64
			for _, d := range all {
				sum += d
			}
			depth := 0
			for _, dt := range dec.Trees {
				if d := treeDepth(dt); d > depth {
					depth = d
				}
			}
			name := "balanced FM"
			switch strat {
			case treedecomp.MinCutSplit:
				name = "global min cut"
			case treedecomp.FRT:
				name = "FRT metric"
			}
			// End-to-end: solve each prebuilt tree and keep the best.
			cost, states := math.Inf(1), 0
			for _, dt := range dec.Trees {
				sol, err := hgpt.Solver{Eps: 0.5}.Solve(dt.T, h)
				if err != nil {
					continue
				}
				states += sol.States
				assign := make([]int, g.N())
				for leaf, hl := range sol.Assignment {
					assign[dt.T.Label(leaf)] = hl
				}
				c := costOf(g, h, assign)
				if c < cost {
					cost = c
				}
			}
			t.AddRow(fc.name, name, sum/float64(len(all)),
				all[int(float64(len(all))*0.95)], depth, cost, states)
		}
	}
	return t
}

func treeDepth(dt *treedecomp.DecompTree) int {
	max := 0
	var rec func(v, d int)
	rec = func(v, d int) {
		if d > max {
			max = d
		}
		for _, c := range dt.T.Children(v) {
			rec(c, d+1)
		}
	}
	rec(dt.T.Root(), 0)
	return max
}

func costOf(g *graph.Graph, h *hierarchy.Hierarchy, assign []int) float64 {
	a := make(metrics.Assignment, len(assign))
	copy(a, assign)
	return metrics.CostLCA(g, h, a)
}

// E18DynamicRepartition walks a stream workload through drift epochs and
// compares three re-planning policies per epoch: stay put (keep the
// epoch-0 placement), scratch re-solve (ignore the old placement), and
// the dynamic repartitioner (scratch quality via hierarchy-automorphism
// relabeling, minimum migration via Hungarian subtree matching).
func E18DynamicRepartition(cfg Config) *Table {
	t := &Table{
		ID:    "E18",
		Title: "Dynamic repartitioning under workload drift",
		Columns: []string{"epoch", "stay-put cost", "stay-put violation", "scratch cost",
			"dynamic cost", "scratch moved", "dynamic moved"},
		Notes: "expected: under rate-only drift stay-put stays cost-competitive but drifts out of capacity (violation > 1 with no replanning); dynamic matches the scratch cost exactly at a fraction of its migration",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 51))
	h := hierarchy.NUMASockets(4, 4)
	topo := stream.FanInAggregation(rng, 6, 3, 0.3, 0.55, 40)
	g := topo.CommGraph()
	quantizeDemands(g, 1.0/16)
	solver := hgp.Solver{Eps: 0.5, Trees: 3, Seed: 7, Workers: cfg.Workers, Prune: cfg.Prune}
	base, err := solver.Solve(g, h)
	if err != nil {
		t.AddRow("err: " + err.Error())
		return t
	}
	cur := base.Assignment
	epochs := cfg.pick(3, 6)
	prevTopo := topo
	for epoch := 1; epoch <= epochs; epoch++ {
		prevTopo = stream.Drift(rng, prevTopo, 0.25)
		g2 := prevTopo.CommGraph()
		stay := metrics.CostLCA(g2, h, base.Assignment)
		scratch, err := hgp.Solver{Eps: 0.5, Trees: 3, Seed: int64(100 + epoch), Workers: cfg.Workers, Prune: cfg.Prune}.Solve(g2, h)
		if err != nil {
			t.AddRow(epoch, "err: "+err.Error())
			continue
		}
		dyn, err := dynamic.Replace(g2, h, cur, dynamic.Options{
			Solver: hgp.Solver{Eps: 0.5, Trees: 3, Seed: int64(100 + epoch), Workers: cfg.Workers, Prune: cfg.Prune},
		})
		if err != nil {
			t.AddRow(epoch, "err: "+err.Error())
			continue
		}
		var scratchMoved float64
		for v, l := range scratch.Assignment {
			if l != cur[v] {
				scratchMoved += g2.Demand(v)
			}
		}
		stayViolation := metrics.MaxViolation(g2, h, base.Assignment)
		t.AddRow(epoch, stay, stayViolation, scratch.Cost, dyn.Cost, scratchMoved, dyn.MovedDemand)
		cur = dyn.Assignment
	}
	return t
}
