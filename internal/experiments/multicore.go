package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"hierpart/internal/gen"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// e24Config is one cell of the E24 matrix: a worker budget crossed with
// the pruning mode (off / incumbent bound with trees one at a time /
// incumbent bound with trees racing under the shared atomic bound).
type e24Config struct {
	name    string
	workers int
	prune   bool
	serial  bool // hgp.Solver.SequentialPortfolio
}

// E24MultiCoreMatrix is the multi-core bench matrix over the mixed
// 8-tree E21 portfolio (2 bisection + 2 min-cut + 4 FRT, prebuilt once
// per size so the matrix isolates the DP phase). Five configurations
// per size — the full tree-parallel × node-parallel × prune cross that
// matters:
//
//	w=1 off      sequential baseline, no pruning
//	w=1 on       sequential incumbent pruning (PR 5 behaviour)
//	w=W off      full worker budget, no pruning (node parallelism only)
//	w=W serial   full budget, pruning, trees one at a time (escape hatch)
//	w=W racing   full budget, pruning, trees racing under the shared bound
//
// Repeats are interleaved across all five configurations to decorrelate
// machine drift; medians are reported. "racing speedup" is w=1 on
// divided by w=W racing (what the concurrent portfolio buys over the
// best sequential mode); "racing vs serial" isolates the tree-parallel
// gain from node parallelism. The placements are bit-identical across
// every cell (the concurrent identity battery); only wall-clock and the
// per-tree records differ. Numbers from a single-core host (see the
// report's gomaxprocs/num_cpu fields) show the racing overhead floor,
// not the scaling — CI's multi-core runner regenerates the real matrix.
//
// The last repeat of each pruning configuration also records per-tree
// outcomes (done/pruned/failed, wall time, abort depth fraction) into
// Table.Trees, which hgpbench -json emits as the `trees` field — the
// record of where the bound actually bit.
func E24MultiCoreMatrix(cfg Config) *Table {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID: "E24",
		Title: fmt.Sprintf("Multi-core portfolio matrix on the mixed 8-tree portfolio (W = %d, GOMAXPROCS = %d)",
			w, runtime.GOMAXPROCS(0)),
		Columns: []string{"n", "w=1 off", "w=1 on", "w=W off", "w=W serial", "w=W racing",
			"racing speedup", "racing vs serial", "pruned"},
		Notes: "expected on a multi-core host (W >= 4): racing speedup >= 1.5 at n=256 and racing <= serial; " +
			"on a single core the racing column only shows the shared-bound overhead floor; " +
			"placements are bit-identical in every cell, so only timing columns move",
	}
	configs := []e24Config{
		{name: "w1-off", workers: 1},
		{name: "w1-on", workers: 1, prune: true},
		{name: "wW-off", workers: w},
		{name: "wW-on-serial", workers: w, prune: true, serial: true},
		{name: "wW-on-racing", workers: w, prune: true},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 52))
	h := hierarchy.NUMASockets(8, 8)
	sizes := []int{64, 128, 256}
	if cfg.Quick {
		sizes = []int{64}
	}
	reps := cfg.pick(1, 3)
	for _, n := range sizes {
		g := gen.Community(rng, 8, n/8, 0.3, 0.01, 10, 1)
		for v := 0; v < g.N(); v++ {
			d := 0.05 + 0.3*rng.Float64()
			g.SetDemand(v, quantUp(d, 8))
		}
		base := hgp.Solver{Eps: 0.5, Trees: 4, Seed: 3}
		dec := mixedPortfolio(base, g)

		durs := make(map[string][]time.Duration, len(configs))
		last := make(map[string]*hgp.Result, len(configs))
		var solveErr error
		for r := 0; r < reps && solveErr == nil; r++ {
			for _, c := range configs {
				sv := base
				sv.Workers = c.workers
				sv.Prune = c.prune
				sv.SequentialPortfolio = c.serial
				start := time.Now()
				res, err := sv.SolveDecomposition(context.Background(), g, h, dec)
				el := time.Since(start)
				if err != nil {
					solveErr = fmt.Errorf("%s n=%d: %w", c.name, n, err)
					break
				}
				durs[c.name] = append(durs[c.name], el)
				last[c.name] = res
			}
		}
		if solveErr != nil {
			row := make([]interface{}, len(t.Columns))
			row[0] = n
			row[1] = "err: " + solveErr.Error()
			for i := 2; i < len(row); i++ {
				row[i] = "-"
			}
			t.AddRow(row...)
			continue
		}
		med := func(name string) time.Duration { return medianDuration(durs[name]) }
		racing := med("wW-on-racing")
		t.AddRow(n,
			med("w1-off").Round(time.Millisecond),
			med("w1-on").Round(time.Millisecond),
			med("wW-off").Round(time.Millisecond),
			med("wW-on-serial").Round(time.Millisecond),
			racing.Round(time.Millisecond),
			metrics.Ratio(med("w1-on").Seconds(), racing.Seconds()),
			metrics.Ratio(med("wW-on-serial").Seconds(), racing.Seconds()),
			last["wW-on-racing"].TreesPruned)
		for _, name := range []string{"wW-on-serial", "wW-on-racing"} {
			res := last[name]
			for i, ts := range res.TreeStats {
				t.Trees = append(t.Trees, TreeOutcome{
					Config: name, N: n, Tree: i,
					Outcome: ts.Outcome, WallMS: ts.WallMS, AbortFrac: ts.AbortFrac,
				})
			}
		}
	}
	return t
}
