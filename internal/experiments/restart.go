package experiments

import (
	"context"
	"math/rand"
	"os"
	"sort"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/cache/diskstore"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/telemetry"
	"hierpart/internal/treedecomp"
)

// E23WarmRestart quantifies what the durable decomposition cache buys a
// restarted daemon: the first-request latency when the embedding must be
// built from scratch (cold start) versus when it is reloaded from an
// on-disk snapshot and only the per-tree DPs run (warm restart), across
// the E5/E21 instance families. The expectation is that warm-restart
// first-request latency collapses to roughly the DP phase alone, since
// the snapshot load is a sequential read plus checksum while the embed
// phase it replaces is the pipeline's dominant cost.
//
// Timing rows are machine-dependent; the ratio column is the portable
// signal.
func E23WarmRestart(cfg Config) *Table {
	t := &Table{
		ID:    "E23",
		Title: "Cold-start vs. warm-restart first-request latency",
		Columns: []string{"family", "n", "trials", "cold p50 ms", "cold p99 ms",
			"warm p50 ms", "warm p99 ms", "cold/warm p50"},
		Notes: "expected: warm restarts skip the embed phase, so warm p50 ≈ DP-only latency and the cold/warm ratio grows with instance size; timing rows vary by machine, the ratio is the signal",
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 23))
	h := hierarchy.NUMASockets(4, 4)
	n := 32 * cfg.pick(1, 4)
	trials := cfg.pick(3, 9)

	families := []struct {
		name string
		make func() *graph.Graph
	}{
		{"community", func() *graph.Graph { return gen.Community(rng, 4, n/4, 0.5, 0.03, 8, 1) }},
		{"power-law", func() *graph.Graph { return gen.BarabasiAlbert(rng, n, 2, 4) }},
		{"grid", func() *graph.Graph { return gen.Grid(n/4, 4, 1) }},
	}

	dir, err := os.MkdirTemp("", "hgp-e23-*")
	if err != nil {
		t.Notes = "temp dir: " + err.Error()
		return t
	}
	defer os.RemoveAll(dir)

	for _, fam := range families {
		g := fam.make()
		gen.EqualDemands(g, 0.6*float64(h.Leaves())/float64(g.N()))
		sv := hgp.Solver{Eps: 0.5, Trees: 4, Seed: cfg.Seed + 23, Workers: cfg.Workers, Prune: cfg.Prune}
		opts := sv.DecompOptions()
		key := cache.DecompKey(g, opts)

		// Snapshot once, exactly as the daemon's flusher would.
		store, err := diskstore.Open(dir, 0, telemetry.NewRegistry())
		if err != nil {
			t.AddRow(fam.name, g.N(), 0, "store: "+err.Error(), "", "", "", "")
			continue
		}
		seedDec := treedecomp.Build(g, opts)
		if err := store.Save(key, seedDec, nil); err != nil {
			t.AddRow(fam.name, g.N(), 0, "save: "+err.Error(), "", "", "", "")
			continue
		}

		var coldMS, warmMS []float64
		ctx := context.Background()
		fail := false
		for trial := 0; trial < trials; trial++ {
			// Cold start: the embedding is built before the DP can run.
			t0 := time.Now()
			dec, err := treedecomp.BuildContext(ctx, g, opts)
			if err == nil {
				_, err = sv.SolveDecomposition(ctx, g, h, dec)
			}
			if err != nil {
				t.AddRow(fam.name, g.N(), trial, "cold solve: "+err.Error(), "", "", "", "")
				fail = true
				break
			}
			coldMS = append(coldMS, float64(time.Since(t0).Microseconds())/1000)

			// Warm restart: a fresh store handle (page cache aside, the
			// restarted process's view), load, then the same DP.
			warmStore, err := diskstore.Open(dir, 0, telemetry.NewRegistry())
			if err == nil {
				t0 = time.Now()
				loaded, _, ok := warmStore.Load(key)
				if !ok {
					t.AddRow(fam.name, g.N(), trial, "", "", "snapshot missing", "", "")
					fail = true
					break
				}
				_, err = sv.SolveDecomposition(ctx, g, h, loaded)
			}
			if err != nil {
				t.AddRow(fam.name, g.N(), trial, "", "", "warm solve: "+err.Error(), "", "")
				fail = true
				break
			}
			warmMS = append(warmMS, float64(time.Since(t0).Microseconds())/1000)
		}
		if fail {
			continue
		}
		coldP50, coldP99 := pctPair(coldMS)
		warmP50, warmP99 := pctPair(warmMS)
		ratio := 0.0
		if warmP50 > 0 {
			ratio = coldP50 / warmP50
		}
		t.AddRow(fam.name, g.N(), trials, coldP50, coldP99, warmP50, warmP99, ratio)
	}
	return t
}

// pctPair returns the (p50, p99) of xs; p99 degrades to the max for
// small samples.
func pctPair(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	p99idx := (99*len(s) + 99) / 100 // nearest-rank: ceil(0.99 n)
	if p99idx > len(s) {
		p99idx = len(s)
	}
	return s[len(s)/2], s[p99idx-1]
}
