package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func checkTable(t *testing.T, tab *Table) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" || len(tab.Columns) == 0 {
		t.Fatalf("table metadata incomplete: %+v", tab)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", tab.ID)
	}
	for i, r := range tab.Rows {
		if len(r) != len(tab.Columns) {
			t.Fatalf("%s row %d has %d cells, want %d: %v", tab.ID, i, len(r), len(tab.Columns), r)
		}
	}
	out := tab.Format()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Columns[0]) {
		t.Fatalf("%s: Format output malformed:\n%s", tab.ID, out)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float", s)
	}
	return v
}

func TestE1AllExact(t *testing.T) {
	tab := E1TreeDPOptimality(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if mean := parseF(t, r[2]); mean < 0.999 || mean > 1.001 {
			t.Fatalf("E1 %s: mean ratio %v, want 1.0", r[0], mean)
		}
		// "exact" column must be all trials.
		parts := strings.Split(r[4], "/")
		if parts[0] != parts[1] {
			t.Fatalf("E1 %s: not all exact: %s", r[0], r[4])
		}
	}
}

func TestE2Noise(t *testing.T) {
	tab := E2CostForms(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if d := parseF(t, r[2]); d > 1e-9 {
			t.Fatalf("E2 %s: rel diff %v above noise", r[0], d)
		}
	}
}

func TestE3AllWithinBound(t *testing.T) {
	tab := E3ViolationBound(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if r[5] != "true" {
			t.Fatalf("E3 row %v violates the bound", r)
		}
	}
}

func TestE4Rows(t *testing.T) {
	tab := E4ApproxRatio(quickCfg())
	checkTable(t, tab)
}

func TestE5BaselinesOrdering(t *testing.T) {
	tab := E5VsBaselines(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		// Random should not beat HGP on any workload family.
		if ratio := parseF(t, r[8]); ratio < 0.99 {
			t.Fatalf("E5 %s: random ratio %v < 1", r[0], ratio)
		}
	}
}

func TestE6Throughput(t *testing.T) {
	tab := E6StreamThroughput(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if len(r) < 9 {
			t.Fatalf("E6 row short (solver error?): %v", r)
		}
		hgpTP := parseF(t, r[2])
		rndTP := parseF(t, r[6])
		if hgpTP < rndTP*0.9 {
			t.Fatalf("E6 %s: HGP λ %v well below random %v", r[0], hgpTP, rndTP)
		}
	}
}

func TestE7MinAboveOne(t *testing.T) {
	tab := E7TreeDistortion(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if min := parseF(t, r[3]); min < 1-1e-9 {
			t.Fatalf("E7 %s: min distortion %v < 1 breaks Proposition 1", r[0], min)
		}
	}
}

func TestE8Runs(t *testing.T) {
	tab := E8DPScaling(quickCfg())
	checkTable(t, tab)
}

func TestE9MonotoneBenefit(t *testing.T) {
	tab := E9CMSweep(quickCfg())
	checkTable(t, tab)
	first := parseF(t, tab.Rows[0][3])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][3])
	if last < first {
		t.Fatalf("E9: benefit ratio fell from %v to %v as cm steepened", first, last)
	}
}

func TestE10AllAgree(t *testing.T) {
	tab := E10KBGPConsistency(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		parts := strings.Split(r[2], "/")
		if parts[0] != parts[1] {
			t.Fatalf("E10 leaves=%s: %s agree", r[0], r[2])
		}
	}
}

func TestF1AllPreserved(t *testing.T) {
	tab := F1BadSetSplit(quickCfg())
	checkTable(t, tab)
	r := tab.Rows[0]
	parts := strings.Split(r[2], "/")
	if parts[0] != parts[1] {
		t.Fatalf("F1: only %s splits preserved", r[2])
	}
	found, _ := strconv.Atoi(parts[1])
	if found == 0 {
		t.Fatal("F1: no split cases found — experiment vacuous")
	}
}

func TestF2AllOK(t *testing.T) {
	tab := F2ActiveSets(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		for _, col := range []string{r[2], r[3]} {
			parts := strings.Split(col, "/")
			if parts[0] != parts[1] {
				t.Fatalf("F2 %s: %v", r[0], r)
			}
		}
	}
}

func TestE11AblationShowsBothFailureModes(t *testing.T) {
	tab := E11AblationDP(quickCfg())
	checkTable(t, tab)
	// Row 0: corrected DP must be exact on every instance.
	parts := strings.Split(tab.Rows[0][2], "/")
	if parts[0] != parts[1] {
		t.Fatalf("corrected DP not exact: %v", tab.Rows[0])
	}
	// Literal Eq.(4) must undercount on at least one instance; the
	// no-zero-region variant must overcount on at least one.
	if tab.Rows[1][3] == "0" {
		t.Fatalf("literal Eq.(4) never undercounted: %v", tab.Rows[1])
	}
	if tab.Rows[2][4] == "0" {
		t.Fatalf("no-zero-regions never overcounted: %v", tab.Rows[2])
	}
}

func TestE12TreesMonotone(t *testing.T) {
	tab := E12AblationTrees(quickCfg())
	checkTable(t, tab)
	first := parseF(t, tab.Rows[0][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if last > first*1.001 {
		t.Fatalf("E12: mean cost rose from %v (1 tree) to %v (8 trees)", first, last)
	}
}

func TestE13Runs(t *testing.T) {
	tab := E13AblationRefinement(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if m := parseF(t, r[1]); m < 1-1e-9 {
			t.Fatalf("E13: mean distortion %v < 1", m)
		}
	}
}

func TestE14Congestion(t *testing.T) {
	tab := E14EmbeddingCongestion(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if c := parseF(t, r[3]); c <= 0 {
			t.Fatalf("E14 %s: min congestion %v", r[0], c)
		}
	}
}

func TestE15DESStability(t *testing.T) {
	tab := E15DESStability(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if len(r) < 7 {
			t.Fatalf("E15 row short: %v", r)
		}
		hgpLimit := parseF(t, r[2])
		rndLimit := parseF(t, r[5])
		if hgpLimit <= 0 {
			t.Fatalf("E15 %s: HGP stability limit %v", r[0], hgpLimit)
		}
		if hgpLimit < rndLimit*0.7 {
			t.Fatalf("E15 %s: HGP limit %v far below random %v", r[0], hgpLimit, rndLimit)
		}
	}
}

func TestE16FlowRefine(t *testing.T) {
	tab := E16AblationFlowRefine(quickCfg())
	checkTable(t, tab)
	// Per family: FM+flow mean distortion must not exceed FM-only.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		plain := parseF(t, tab.Rows[i][2])
		flow := parseF(t, tab.Rows[i+1][2])
		if flow > plain*1.05 {
			t.Fatalf("E16 %s: flow polish worsened distortion %v -> %v", tab.Rows[i][0], plain, flow)
		}
	}
}

func TestE17Strategy(t *testing.T) {
	tab := E17AblationStrategy(quickCfg())
	checkTable(t, tab)
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		fmDist := parseF(t, tab.Rows[i][2])
		mcDist := parseF(t, tab.Rows[i+1][2])
		if mcDist > fmDist*1.2 {
			t.Fatalf("E17 %s: min-cut strategy distortion %v much worse than FM %v",
				tab.Rows[i][0], mcDist, fmDist)
		}
		if parseF(t, tab.Rows[i+1][4]) < parseF(t, tab.Rows[i][4]) {
			t.Fatalf("E17 %s: min-cut trees should be at least as deep", tab.Rows[i][0])
		}
		// The FRT row exists and its trees are structurally usable
		// (finite distortion, positive DP states).
		if parseF(t, tab.Rows[i+2][2]) < 1-1e-9 {
			t.Fatalf("E17 %s: FRT distortion below 1", tab.Rows[i][0])
		}
	}
}

func TestE18Dynamic(t *testing.T) {
	tab := E18DynamicRepartition(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if len(r) < 7 {
			t.Fatalf("E18 row short (solver error?): %v", r)
		}
		scratchCost := parseF(t, r[3])
		dynCost := parseF(t, r[4])
		if dynCost > scratchCost+1e-6 {
			t.Fatalf("E18 epoch %s: dynamic cost %v above scratch %v", r[0], dynCost, scratchCost)
		}
		if parseF(t, r[6]) > parseF(t, r[5])+1e-9 {
			t.Fatalf("E18 epoch %s: dynamic moved more than scratch", r[0])
		}
	}
}

func TestE19EpsSweep(t *testing.T) {
	tab := E19EpsSweep(quickCfg())
	checkTable(t, tab)
	// States must not shrink as ε gets finer (rows ordered coarse→fine).
	first := parseF(t, tab.Rows[0][3])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][3])
	if last < first {
		t.Fatalf("E19: states shrank with finer ε: %v -> %v", first, last)
	}
	// The finest ε's violation must not exceed the coarsest's.
	if parseF(t, tab.Rows[len(tab.Rows)-1][2]) > parseF(t, tab.Rows[0][2])+1e-9 {
		t.Fatalf("E19: violation grew as ε shrank")
	}
}

func TestE20Pruning(t *testing.T) {
	tab := E20AblationPruning(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if r[7] != "true" {
			t.Fatalf("E20 row %v: pruning changed the optimum", r)
		}
		if parseF(t, r[2]) > parseF(t, r[3]) {
			t.Fatalf("E20 row %v: pruning increased states", r)
		}
	}
}

func TestE21AtScale(t *testing.T) {
	tab := E21AtScale(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		if len(r) < 8 {
			t.Fatalf("E21 row short: %v", r)
		}
		if ratio := parseF(t, r[7]); ratio < 1 {
			t.Fatalf("E21 n=%s: random beat the pipeline (%v)", r[0], ratio)
		}
	}
}

func TestE22LadderNeverErrors(t *testing.T) {
	tab := E22AnytimeLadder(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		// Every budget row must carry a real tier — the ladder's contract
		// is an answer at any budget, never an error row.
		switch r[1] {
		case "full_dp", "capped_dp", "baseline":
		default:
			t.Fatalf("E22 budget %s: tier %q", r[0], r[1])
		}
		// The winning rung must sit inside the (1+eps) capacity guarantee
		// (eps = 0.25 here): feasibility-first selection must never let a
		// capacity-cheating rung through when a DP tier could finish.
		if v := parseF(t, r[7]); v > 1.25+1e-9 {
			t.Fatalf("E22 budget %s: violation %v beyond 1+eps", r[0], v)
		}
	}
}

func TestE24MultiCoreMatrix(t *testing.T) {
	tab := E24MultiCoreMatrix(quickCfg())
	checkTable(t, tab)
	for _, r := range tab.Rows {
		// Timing columns are machine-dependent; the invariants are that
		// every cell solved (no error rows), the ratios parse positive,
		// and the racing run pruned at least zero trees.
		if strings.HasPrefix(r[1], "err:") {
			t.Fatalf("E24 n=%s errored: %v", r[0], r)
		}
		if parseF(t, r[6]) <= 0 || parseF(t, r[7]) <= 0 {
			t.Fatalf("E24 n=%s: non-positive speedup ratios: %v", r[0], r)
		}
		if parseF(t, r[8]) < 0 {
			t.Fatalf("E24 n=%s: negative pruned count: %v", r[0], r)
		}
	}
	// Per-tree outcome records: the serial and racing pruning configs
	// each contribute one record per portfolio tree (8), for every size.
	want := 2 * 8 * len(tab.Rows)
	if len(tab.Trees) != want {
		t.Fatalf("E24: %d tree records, want %d", len(tab.Trees), want)
	}
	for _, tr := range tab.Trees {
		switch tr.Outcome {
		case "done", "pruned", "failed":
		default:
			t.Fatalf("E24 tree record has outcome %q: %+v", tr.Outcome, tr)
		}
		if tr.WallMS < 0 || tr.AbortFrac < 0 || tr.AbortFrac > 1 {
			t.Fatalf("E24 tree record out of range: %+v", tr)
		}
		if tr.Outcome == "done" && tr.AbortFrac != 1 {
			t.Fatalf("E24 done tree with abort_frac %v: %+v", tr.AbortFrac, tr)
		}
	}
}

func TestE23WarmRestart(t *testing.T) {
	tab := E23WarmRestart(quickCfg())
	checkTable(t, tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("E23: want one row per family, got %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		// Timings are machine-dependent; assert only that every trial
		// completed (no error text in the timing cells) and the latencies
		// are real measurements.
		if parseF(t, r[3]) <= 0 || parseF(t, r[5]) <= 0 {
			t.Fatalf("E23 %s: non-positive latency row %v", r[0], r)
		}
		if parseF(t, r[7]) <= 0 {
			t.Fatalf("E23 %s: cold/warm ratio must be positive: %v", r[0], r)
		}
	}
}

func TestE25CanonCache(t *testing.T) {
	tab := E25CanonCache(quickCfg())
	checkTable(t, tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("E25: want off/on/lift rows, got %d: %v", len(tab.Rows), tab.Rows)
	}
	off, on, lift := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	if off[0] != "off" || on[0] != "on" || lift[0] != "lift" {
		t.Fatalf("E25: unexpected row order: %v", tab.Rows)
	}
	// The acceptance bar: canonical fingerprinting lifts the hit ratio at
	// least 5x over the identity-only baseline, and a cache hit's cost is
	// bit-identical to a fresh solve (the |Δcost| cells print exactly 0).
	if r := parseF(t, lift[4]); r < 5 {
		t.Fatalf("E25: hit-ratio lift %v < 5", r)
	}
	if parseF(t, on[4]) <= parseF(t, off[4]) {
		t.Fatalf("E25: canon=on ratio %s not above canon=off %s", on[4], off[4])
	}
	for _, r := range [][]string{off, on} {
		if r[8] != "0" {
			t.Fatalf("E25 canon=%s: max |Δcost| = %q, want exactly 0", r[0], r[8])
		}
	}
}

func TestAllProducesEveryTable(t *testing.T) {
	tabs := All(quickCfg())
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25", "F1", "F2"}
	if len(tabs) != len(want) {
		t.Fatalf("All returned %d tables", len(tabs))
	}
	for i, id := range want {
		if tabs[i].ID != id {
			t.Fatalf("table %d = %s, want %s", i, tabs[i].ID, id)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{ID: "EX", Title: "x", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "experiment,a,b\nEX,1,2.5\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
