package server

import (
	"container/heap"
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Shed reasons: the machine-readable `shed_reason` field of 429/503/504
// responses and the label of the shed_total{reason=...} counters.
const (
	shedQueueFull       = "queue_full"
	shedDeadlineExpired = "deadline_expired"
	shedBreakerOpen     = "breaker_open"
	shedDraining        = "draining"
)

var (
	errQueueFull = errors.New("server: admission queue full")
	// errShedExpired is returned to a waiter whose deadline passed while
	// it sat in the waiting room: a solve slot was never occupied.
	errShedExpired = errors.New("server: deadline expired in the waiting room")
)

// limiter is the admission gate: a concurrency ceiling plus a bounded,
// deadline-ordered (EDF) waiting room. When adaptive, the ceiling moves
// AIMD-style with observed solve latency vs. deadline headroom — the
// daemon sheds early under sustained overload instead of letting every
// queued request ride to its deadline and time out having occupied
// resources for nothing.
type limiter struct {
	mu      sync.Mutex
	ceiling int // current concurrency ceiling (adaptive: minC ≤ ceiling ≤ maxC)
	minC    int
	maxC    int
	maxWait int // waiting-room bound beyond the running ceiling
	inUse   int
	waiters waiterHeap
	seq     int64

	adaptive bool
	// AIMD state: one additive increase per ceiling-worth of headroomy
	// completions, multiplicative decrease on deadline pressure, rate
	// limited so one burst of misses is one decrease, not many.
	successes    int
	lastDecrease time.Time
	decreaseMin  time.Duration // minimum spacing between decreases

	// now is a test hook.
	now func() time.Time
}

// waiter is one queued request. It owns a ready channel closed exactly
// once, under the limiter lock, with granted/shed recording the verdict.
type waiter struct {
	deadline time.Time
	seq      int64
	ready    chan struct{}
	granted  bool
	shed     bool
	index    int
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq // FIFO among equal deadlines
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	w := old[len(old)-1]
	old[len(old)-1] = nil
	w.index = -1
	*h = old[:len(old)-1]
	return w
}

func newLimiter(maxConcurrent, maxQueue int, adaptive bool) *limiter {
	return &limiter{
		ceiling:     maxConcurrent,
		minC:        1,
		maxC:        maxConcurrent,
		maxWait:     maxQueue,
		adaptive:    adaptive,
		decreaseMin: time.Second,
		now:         time.Now,
	}
}

// acquire obtains a solve slot, waiting in deadline order if the
// ceiling is saturated. It returns nil when a slot is held (pair with
// release), errQueueFull when the waiting room is at capacity,
// errShedExpired when the waiter's deadline passed before a slot freed,
// or ctx.Err() when the context died while waiting.
func (l *limiter) acquire(ctx context.Context) error {
	l.mu.Lock()
	if l.inUse < l.ceiling && len(l.waiters) == 0 {
		l.inUse++
		l.mu.Unlock()
		return nil
	}
	if len(l.waiters) >= l.maxWait {
		l.mu.Unlock()
		return errQueueFull
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		// Deadline-less requests sort last: they can afford to wait.
		deadline = l.now().Add(24 * time.Hour)
	}
	w := &waiter{deadline: deadline, seq: l.seq, ready: make(chan struct{})}
	l.seq++
	heap.Push(&l.waiters, w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		l.mu.Lock()
		defer l.mu.Unlock()
		if w.shed {
			return errShedExpired
		}
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		defer l.mu.Unlock()
		select {
		case <-w.ready:
			// The dispatch raced the cancellation. If a slot was granted
			// it must go back; a shed verdict stands.
			if w.granted {
				l.inUse--
				l.dispatchLocked()
			}
		default:
			if w.index >= 0 {
				heap.Remove(&l.waiters, w.index)
			}
		}
		return ctx.Err()
	}
}

// release returns a slot and dispatches the waiting room.
func (l *limiter) release() {
	l.mu.Lock()
	l.inUse--
	l.dispatchLocked()
	l.mu.Unlock()
}

// dispatchLocked grants free slots in EDF order. A waiter whose deadline
// already passed is shed — woken with a verdict instead of a slot — so
// expired requests never occupy solve capacity ahead of live ones.
func (l *limiter) dispatchLocked() {
	now := l.now()
	for l.inUse < l.ceiling && len(l.waiters) > 0 {
		w := heap.Pop(&l.waiters).(*waiter)
		if now.After(w.deadline) {
			w.shed = true
			close(w.ready)
			continue
		}
		w.granted = true
		l.inUse++
		close(w.ready)
	}
}

// observe feeds one completed solve into the AIMD controller: latency is
// the time the request held its slot, budget its full deadline budget,
// and deadlineMiss whether the deadline expired mid-solve. Headroomy
// completions (latency under half the budget) vote to raise the
// ceiling; a miss — or a completion that consumed over 90% of its
// budget — halves it.
func (l *limiter) observe(latency, budget time.Duration, deadlineMiss bool) {
	if !l.adaptive {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	pressured := deadlineMiss || (budget > 0 && latency > budget*9/10)
	switch {
	case pressured:
		l.successes = 0
		if now := l.now(); now.Sub(l.lastDecrease) >= l.decreaseMin {
			l.lastDecrease = now
			if c := l.ceiling / 2; c >= l.minC {
				l.ceiling = c
			} else {
				l.ceiling = l.minC
			}
		}
	case budget == 0 || latency*2 <= budget:
		l.successes++
		if l.successes >= l.ceiling {
			l.successes = 0
			if l.ceiling < l.maxC {
				l.ceiling++
				l.dispatchLocked()
			}
		}
	}
}

// snapshot reports (ceiling, in-use slots, waiting-room depth).
func (l *limiter) snapshot() (ceiling, inUse, waiting int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ceiling, l.inUse, len(l.waiters)
}

// Breaker states, exported as the breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// breaker is the memory-pressure circuit breaker: when the heap's
// high-water crosses the configured ceiling the daemon stops running
// the memory-hungry DP tiers and serves only the degradation ladder's
// floor rung (or sheds, for no-degrade requests) until pressure
// subsides. Open → half-open transitions probe with a single full
// request; the probe's outcome closes or re-opens the breaker.
type breaker struct {
	maxHeapBytes uint64
	cooldown     time.Duration

	mu         sync.Mutex
	state      int
	openedAt   time.Time
	probing    bool
	trips      int64
	lastSample time.Time
	lastHeap   uint64

	// test hooks
	readHeap func() uint64
	now      func() time.Time
}

// admitMode is the breaker's verdict for one request.
type admitMode int

const (
	// modeNormal: full service.
	modeNormal admitMode = iota
	// modeFloor: serve the ladder-floor tier only (or shed if the
	// request cannot degrade).
	modeFloor
	// modeProbe: full service, and report the outcome via probeDone.
	modeProbe
)

func newBreaker(maxHeapBytes int64, cooldown time.Duration) *breaker {
	if maxHeapBytes <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{
		maxHeapBytes: uint64(maxHeapBytes),
		cooldown:     cooldown,
		readHeap:     liveHeapBytes,
		now:          time.Now,
	}
}

// liveHeapBytes samples the live heap. ReadMemStats stops the world for
// tens of microseconds; the breaker rate-limits calls to it.
func liveHeapBytes() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// heapNow returns a (rate-limited) heap sample.
func (b *breaker) heapNow(force bool) uint64 {
	now := b.now()
	if force || now.Sub(b.lastSample) >= 100*time.Millisecond {
		b.lastHeap = b.readHeap()
		b.lastSample = now
	}
	return b.lastHeap
}

// admit decides how this request may be served.
func (b *breaker) admit() admitMode {
	if b == nil {
		return modeNormal
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if b.heapNow(false) > b.maxHeapBytes {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips++
			return modeFloor
		}
		return modeNormal
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return modeFloor
		}
		b.state = breakerHalfOpen
		b.probing = true
		return modeProbe
	default: // half-open
		if !b.probing {
			// The probe slot is free (its request died before probeDone);
			// claim it.
			b.probing = true
			return modeProbe
		}
		return modeFloor
	}
}

// probeDone reports a probe request's outcome: the breaker closes when
// the probe succeeded and the heap is back under the ceiling, and
// re-opens (restarting the cooldown) otherwise.
func (b *breaker) probeDone(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerHalfOpen {
		return
	}
	b.probing = false
	if ok && b.heapNow(true) <= b.maxHeapBytes {
		b.state = breakerClosed
		return
	}
	b.state = breakerOpen
	b.openedAt = b.now()
}

// snapshot reports (state, trips, cooldown remaining when open).
func (b *breaker) snapshot() (state int, trips int64, retryAfter time.Duration) {
	if b == nil {
		return breakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
			retryAfter = rem
		}
	}
	return b.state, b.trips, retryAfter
}
