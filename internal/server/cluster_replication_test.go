package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hierpart/internal/telemetry"
)

// reqReplicatedOn searches seeds until the request's decomp key has
// exactly the nodes at idxs as its replica set (order-insensitive) —
// the R-way analogue of reqOwnedBy.
func reqReplicatedOn(t *testing.T, nodes []*testNode, idxs ...int) PartitionRequest {
	t.Helper()
	want := map[int]bool{}
	for _, i := range idxs {
		want[i] = true
	}
	for seed := int64(1); seed <= 1000; seed++ {
		req := testRequest()
		req.Seed = seed
		reps := nodes[0].srv.cluster.replicasOf(decompKeyFor(t, req))
		if len(reps) != len(idxs) {
			continue
		}
		match := true
		for _, p := range reps {
			if !want[nodeIndex(nodes, p)] {
				match = false
				break
			}
		}
		if match {
			return req
		}
	}
	t.Fatalf("no seed in 1..1000 replicates exactly on nodes %v", idxs)
	return PartitionRequest{}
}

// waitCounter polls a counter until it reaches at least want.
func waitCounter(t *testing.T, reg *telemetry.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, never reached %d", name, reg.Counter(name).Value(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// With R=2, a build on a non-replica fans out to BOTH replicas: either
// one can then serve the key from its own cache — node loss of one
// replica costs nothing.
func TestClusterReplicatedPushFanOut(t *testing.T) {
	nodes := startTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Replication = 2
	})
	req := reqReplicatedOn(t, nodes, 0, 1)
	key := decompKeyFor(t, req)
	builder := nodes[2]

	resp := decodeResponse(t, postPartition(t, builder.srv.Handler(), req))
	if resp.PeerFetchHit {
		t.Fatal("no replica holds the key yet; this must have been a local build")
	}
	// The fetch walked BOTH replicas before giving up: a definitive miss
	// on the primary says nothing about the secondary.
	if got := labeled(builder.reg, "peer_fetch_total", "outcome", "miss"); got != 2 {
		t.Fatalf("peer_fetch_total{outcome=miss} = %d, want 2 (both replicas consulted)", got)
	}
	waitPushesSettled(t, builder)
	if got := labeled(builder.reg, "peer_push_total", "outcome", "ok"); got != 2 {
		t.Fatalf("peer_push_total{outcome=ok} = %d, want 2 (fan-out to both replicas)", got)
	}
	for _, i := range []int{0, 1} {
		if _, ok := nodes[i].srv.dec.Peek(key); !ok {
			t.Fatalf("replica %d never received the pushed entry", i)
		}
		warm := decodeResponse(t, postPartition(t, nodes[i].srv.Handler(), req))
		if !warm.CacheHit {
			t.Fatalf("replica %d must serve the pushed entry as a local hit: %+v", i, warm)
		}
		if got := nodes[i].reg.Counter("decomp_builds_total").Value(); got != 0 {
			t.Fatalf("replica %d rebuilt despite the push: builds = %d, want 0", i, got)
		}
	}
}

// The replica walk is the failover: with the primary dead, a fetch
// records the error and lands on the secondary — zero rebuilds, the
// exact property R-way replication buys.
func TestClusterReplicaFetchFailover(t *testing.T) {
	nodes := startTestCluster(t, 3, func(i int, cfg *Config) {
		// No gossip: keep the dead primary routable so the walk actually
		// attempts it and fails over, rather than shedding pre-wire.
		cfg.Replication = 2
		cfg.PeerHealthInterval = time.Hour
		cfg.PeerBreakerCooldown = time.Hour
		cfg.PeerTimeout = 500 * time.Millisecond
		cfg.PeerRetries = 0
	})
	req := reqReplicatedOn(t, nodes, 0, 1)
	key := decompKeyFor(t, req)
	reps := nodes[0].srv.cluster.replicasOf(key)
	primary, secondary := nodes[nodeIndex(nodes, reps[0])], nodes[nodeIndex(nodes, reps[1])]
	outsider := nodes[2]

	// Prime on the primary; the push replicates to the secondary.
	postPartition(t, primary.srv.Handler(), req)
	waitPushesSettled(t, primary)
	if _, ok := secondary.srv.dec.Peek(key); !ok {
		t.Fatal("secondary never received the replicated entry")
	}

	primary.ts.Close() // node loss: connections now refuse

	rec := postPartition(t, outsider.srv.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d with dead primary, want 200 via the secondary", rec.Code)
	}
	resp := decodeResponse(t, rec)
	if !resp.PeerFetchHit {
		t.Fatalf("the walk must land on the live secondary: %+v", resp)
	}
	if got := outsider.reg.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("outsider built %d decompositions, want 0 (failover served it)", got)
	}
	if got := labeled(outsider.reg, "peer_fetch_total", "outcome", "error"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=error} = %d, want 1 (the dead primary)", got)
	}
	if got := labeled(outsider.reg, "peer_fetch_total", "outcome", "hit"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=hit} = %d, want 1 (the secondary)", got)
	}
}

// A push whose target is shed by gossip is staged as a hint and
// replayed once the target is routable again: the owner ends up with
// the entry without ever rebuilding it.
func TestClusterHintStagedAndReplayed(t *testing.T) {
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.HintReplayInterval = 50 * time.Millisecond
	})
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, builder := nodes[0], nodes[1]

	// Take the owner off the air (handler-level, so its own client loops
	// keep running) and wait for gossip to shed it.
	owner.swap.h.Store(http.NotFoundHandler())
	deadline := time.Now().Add(5 * time.Second)
	for builder.srv.cluster.routable(owner.url) {
		if time.Now().After(deadline) {
			t.Fatal("owner never shed from routing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	postPartition(t, builder.srv.Handler(), req)
	if got := builder.reg.Counter("hints_staged_total").Value(); got != 1 {
		t.Fatalf("hints_staged_total = %d, want 1 (push to shed owner must stage)", got)
	}
	if got := builder.reg.Gauge("hints_queued").Value(); got != 1 {
		t.Fatalf("hints_queued = %d, want 1", got)
	}
	if got := labeled(builder.reg, "peer_push_total", "outcome", "ok"); got != 0 {
		t.Fatalf("peer_push_total{outcome=ok} = %d, want 0 (nothing was deliverable)", got)
	}

	// Rejoin: gossip restores the owner, the drainer replays the hint.
	owner.swap.h.Store(owner.srv.Handler())
	waitCounter(t, builder.reg, "hints_replayed_total", 1)
	deadline = time.Now().Add(5 * time.Second)
	for builder.reg.Gauge("hints_queued").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("hint queue never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}

	warm := decodeResponse(t, postPartition(t, owner.srv.Handler(), req))
	if !warm.CacheHit {
		t.Fatalf("owner must hit the replayed entry: %+v", warm)
	}
	if got := owner.reg.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("owner rebuilt despite the replay: builds = %d, want 0", got)
	}
	// Replays are handoff traffic, not request-path pushes: the
	// peer_push_total family stays untouched.
	if got := labeled(builder.reg, "peer_push_total", "outcome", "ok"); got != 0 {
		t.Fatalf("peer_push_total{outcome=ok} = %d after replay, want 0", got)
	}
}

// With handoff disabled, anti-entropy is the backstop: a replica that
// missed a push converges by pulling the entry on its repair sweep —
// and the pull stays invisible to the request-path fetch counters.
func TestClusterRepairConvergesMissedPush(t *testing.T) {
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.HintQueueEntries = -1 // no handoff: isolate the repair path
		cfg.RepairInterval = 75 * time.Millisecond
	})
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, builder := nodes[0], nodes[1]

	owner.swap.h.Store(http.NotFoundHandler())
	deadline := time.Now().Add(5 * time.Second)
	for builder.srv.cluster.routable(owner.url) {
		if time.Now().After(deadline) {
			t.Fatal("owner never shed from routing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	postPartition(t, builder.srv.Handler(), req)
	if got := builder.reg.Counter("hints_staged_total").Value(); got != 0 {
		t.Fatalf("hints_staged_total = %d with handoff disabled, want 0", got)
	}

	owner.swap.h.Store(owner.srv.Handler())
	waitCounter(t, owner.reg, "repair_pulled_total", 1)

	warm := decodeResponse(t, postPartition(t, owner.srv.Handler(), req))
	if !warm.CacheHit {
		t.Fatalf("owner must hit the repaired entry: %+v", warm)
	}
	if got := owner.reg.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("owner rebuilt despite repair: builds = %d, want 0", got)
	}
	// Repair pulls bypass peer_fetch_total: that family means "a request
	// needed the wire", and dashboards alarm on it.
	if got := labeled(owner.reg, "peer_fetch_total", "outcome", "hit"); got != 0 {
		t.Fatalf("peer_fetch_total{outcome=hit} = %d, want 0 (repair is not request traffic)", got)
	}
}

// Dynamic membership: a reload atomically swaps the ring on live
// daemons — new peers route and receive pushes immediately, a bad list
// is rejected with the old membership intact, and removed peers drop
// out of stats and routing.
func TestClusterMembershipReload(t *testing.T) {
	// Hand-rolled: startTestCluster's convergence loop assumes every
	// node knows every peer at startup, which is exactly what this test
	// must not assume. Nodes 0 and 1 boot as a two-node cluster; node 2
	// boots already knowing all three (the joining node is configured
	// first, then announced).
	const n = 3
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	nodes := make([]*testNode, n)
	for i := range nodes {
		sw := &swapHandler{}
		sw.h.Store(http.NotFoundHandler())
		ts := httptest.NewServer(sw)
		swaps[i] = sw
		urls[i] = ts.URL
		nodes[i] = &testNode{ts: ts, url: ts.URL, swap: sw}
	}
	for i := range nodes {
		peers := []string{urls[0], urls[1]}
		if i == 2 {
			peers = []string{urls[0], urls[1], urls[2]}
		}
		reg := telemetry.NewRegistry()
		s, err := New(Config{
			Registry:           reg,
			Peers:              peers,
			Self:               urls[i],
			PeerBackoff:        5 * time.Millisecond,
			PeerHealthInterval: 25 * time.Millisecond,
			ResultCacheEntries: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].srv, nodes[i].reg = s, reg
		swaps[i].h.Store(s.Handler())
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = nd.srv.Shutdown(ctx)
			cancel()
			nd.ts.Close()
		}
	})

	// A list without self must be rejected atomically: error out, old
	// membership still in force, no reload counted.
	if err := nodes[0].srv.ReloadPeers([]string{urls[1], urls[2]}); err == nil {
		t.Fatal("reload without self must be rejected")
	}
	if got := nodes[0].reg.Gauge("cluster_peers").Value(); got != 2 {
		t.Fatalf("cluster_peers = %d after rejected reload, want 2", got)
	}
	if got := nodes[0].reg.Counter("membership_reloads_total").Value(); got != 0 {
		t.Fatalf("membership_reloads_total = %d after rejected reload, want 0", got)
	}

	// Announce node 2 to the incumbents.
	for _, i := range []int{0, 1} {
		if err := nodes[i].srv.ReloadPeers(urls); err != nil {
			t.Fatal(err)
		}
		if got := nodes[i].reg.Counter("membership_reloads_total").Value(); got != 1 {
			t.Fatalf("node %d membership_reloads_total = %d, want 1", i, got)
		}
		if got := nodes[i].reg.Gauge("cluster_peers").Value(); got != 3 {
			t.Fatalf("node %d cluster_peers = %d, want 3", i, got)
		}
		if !nodes[i].srv.cluster.routable(urls[2]) {
			t.Fatalf("node %d: freshly added peer must start routable", i)
		}
		if st := nodes[i].srv.cluster.stats(); len(st.Peers) != 3 || st.MembershipReloads != 1 {
			t.Fatalf("node %d stats: %d peer rows, %d reloads; want 3 and 1", i, len(st.Peers), st.MembershipReloads)
		}
	}

	// The new member participates immediately: a key it owns, built on
	// an incumbent, is pushed to it.
	req := reqOwnedBy(t, nodes, 2, decompKeyFor)
	key := decompKeyFor(t, req)
	postPartition(t, nodes[0].srv.Handler(), req)
	waitPushesSettled(t, nodes[0])
	if _, ok := nodes[2].srv.dec.Peek(key); !ok {
		t.Fatal("freshly added peer never received the push")
	}

	// Removal: node 0 drops node 2 — its client, health verdict, and
	// stats row disappear.
	if err := nodes[0].srv.ReloadPeers([]string{urls[0], urls[1]}); err != nil {
		t.Fatal(err)
	}
	if nodes[0].srv.cluster.client(urls[2]) != nil {
		t.Fatal("removed peer must lose its client")
	}
	if got := nodes[0].reg.Gauge("cluster_peers").Value(); got != 2 {
		t.Fatalf("cluster_peers = %d after removal, want 2", got)
	}
	if st := nodes[0].srv.cluster.stats(); len(st.Peers) != 2 || st.MembershipReloads != 2 {
		t.Fatalf("stats after removal: %d peer rows, %d reloads; want 2 and 2", len(st.Peers), st.MembershipReloads)
	}
}

// A single-peer "cluster" (self only) serves everything locally at any
// R: no fetches, no pushes, no wire — the degenerate case must behave
// exactly like a single-node daemon.
func TestClusterSinglePeerCluster(t *testing.T) {
	sw := &swapHandler{}
	sw.h.Store(http.NotFoundHandler())
	ts := httptest.NewServer(sw)
	defer ts.Close()
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Registry:           reg,
		Peers:              []string{ts.URL},
		Self:               ts.URL,
		Replication:        5, // over-asked R clamps to the ring size
		ResultCacheEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = s.Shutdown(ctx)
		cancel()
	})
	sw.h.Store(s.Handler())

	rec := postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := reg.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	for _, o := range fetchOutcomes {
		if got := labeled(reg, "peer_fetch_total", "outcome", string(o)); got != 0 {
			t.Fatalf("peer_fetch_total{outcome=%s} = %d, want 0 (self is every replica)", o, got)
		}
	}
	if got := labeled(reg, "peer_push_total", "outcome", "ok"); got != 0 {
		t.Fatalf("peer_push_total{outcome=ok} = %d, want 0 (fan-out skips self)", got)
	}
	st := s.cluster.stats()
	if !st.Enabled || len(st.Peers) != 1 || !st.Peers[0].Self || !st.Peers[0].Healthy {
		t.Fatalf("single-peer stats diverged: %+v", st)
	}
}

// The anti-entropy digest surface: /v1/peer/keys lists this daemon's
// key digests, behind peer auth and draining like every peer endpoint,
// and both stats and health gossip surface whether auth is on.
func TestClusterPeerKeysEndpoint(t *testing.T) {
	const secret = "keys-secret"
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.PeerSecret = secret
	})
	owner := nodes[0]
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	key := decompKeyFor(t, req)
	postPartition(t, owner.srv.Handler(), req)

	get := func(path string, withSecret bool) *http.Response {
		t.Helper()
		r, _ := http.NewRequest(http.MethodGet, owner.url+path, nil)
		if withSecret {
			r.Header.Set(peerSecretHeader, secret)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Unauthenticated: the key listing is a map of what this daemon
	// holds — it must not leak.
	resp := get("/v1/peer/keys", false)
	var e apiError
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || e.Code != "peer_auth" {
		t.Fatalf("unauthenticated keys: status %d code %q, want 403 peer_auth", resp.StatusCode, e.Code)
	}

	resp = get("/v1/peer/keys", true)
	var view peerKeysView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated keys: status %d, want 200", resp.StatusCode)
	}
	found := false
	for _, k := range view.Decomp {
		if k == key {
			found = true
		}
	}
	if !found {
		t.Fatalf("keys listing %v omits the built key %s", view.Decomp, key[:8])
	}

	// Auth visibility: health gossip and the stats block both say the
	// peer surface is locked, so soaks can assert it end to end.
	resp = get("/v1/peer/health", true)
	var hv peerHealthView
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hv.AuthEnabled {
		t.Fatal("health gossip must report peer_auth_enabled=true")
	}
	rec := httptest.NewRecorder()
	owner.srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Cluster.AuthEnabled {
		t.Fatal("/v1/stats cluster block must report peer_auth_enabled=true")
	}
	if stats.Cluster.Replication != 1 {
		t.Fatalf("stats replication = %d, want 1 (the default)", stats.Cluster.Replication)
	}
	if got := owner.reg.Gauge("peer_auth_enabled").Value(); got != 1 {
		t.Fatalf("peer_auth_enabled gauge = %d, want 1", got)
	}

	// Draining daemons refuse the sweep like every data endpoint.
	owner.srv.Drain()
	resp = get("/v1/peer/keys", true)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("keys on draining daemon: status %d, want 503", resp.StatusCode)
	}
}
