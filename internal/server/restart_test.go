package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hierpart/internal/telemetry"
)

// waitSnapshots polls until dir holds at least n .snap entries.
func waitSnapshots(t *testing.T, dir string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		matches, err := filepath.Glob(filepath.Join(dir, "*.snap"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("state dir has %d snapshots, want >= %d", len(matches), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The restart acceptance path, minus the process boundary (the soak test
// covers that): a request populates the durable cache, a second server
// opened on the same state dir serves the repeat request as a cache hit
// with zero decomposition builds and a byte-identical placement.
func TestServerWarmRestartAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	reg1 := telemetry.NewRegistry()
	s1 := newTestServer(t, Config{StateDir: dir, Registry: reg1})
	first := decodeResponse(t, postPartition(t, s1.Handler(), testRequest()))
	if first.CacheHit {
		t.Fatal("cold request must miss")
	}
	// Shutdown flushes staged entries even though the flusher interval
	// (default 2s) never elapsed.
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitSnapshots(t, dir, 1)

	reg2 := telemetry.NewRegistry()
	s2 := newTestServer(t, Config{StateDir: dir, Registry: reg2})
	t.Cleanup(func() { s2.Shutdown(context.Background()) })
	if got := reg2.Gauge("snapshot_warm_entries").Value(); got != 1 {
		t.Fatalf("snapshot_warm_entries = %d, want 1", got)
	}
	rec := postPartition(t, s2.Handler(), testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("warm request status = %d (body %s)", rec.Code, rec.Body.String())
	}
	warm := decodeResponse(t, rec)
	if !warm.CacheHit {
		t.Fatal("first repeat request after restart must be a cache hit")
	}
	if got := reg2.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("decomp_builds_total = %d after warm restart, want 0", got)
	}
	if got := reg2.Counter("decomp_cache_hits_total").Value(); got != 1 {
		t.Fatalf("decomp_cache_hits_total = %d, want 1", got)
	}
	// The reloaded decomposition is bit-identical, so the (deterministic)
	// DP must reproduce the placement exactly.
	if warm.Cost != first.Cost || fmt.Sprint(warm.Assignment) != fmt.Sprint(first.Assignment) {
		t.Fatalf("warm result diverged across restart: %+v vs %+v", warm, first)
	}
}

// The ungraceful variant: the first server is abandoned without Shutdown
// (a stand-in for SIGKILL — only the background flusher ran). The warm
// entry must still be there.
func TestServerWarmRestartAfterKill(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{StateDir: dir, SnapshotInterval: 10 * time.Millisecond,
		Registry: telemetry.NewRegistry()})
	postPartition(t, s1.Handler(), testRequest())
	waitSnapshots(t, dir, 1)
	// No Shutdown: s1's flusher goroutine is orphaned, like the process
	// it models. (It idles on its ticker; waitGoroutines-based tests
	// take their own baselines, so it cannot fail them.)

	reg2 := telemetry.NewRegistry()
	s2 := newTestServer(t, Config{StateDir: dir, Registry: reg2})
	t.Cleanup(func() { s2.Shutdown(context.Background()) })
	warm := decodeResponse(t, postPartition(t, s2.Handler(), testRequest()))
	if !warm.CacheHit {
		t.Fatal("repeat request after kill+restart must be a cache hit")
	}
	if got := reg2.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("decomp_builds_total = %d, want 0", got)
	}
}

// A corrupt snapshot in the state dir must not prevent startup: the
// entry is skipped (and counted), the request rebuilds, and the rebuilt
// entry replaces the damaged one.
func TestServerRestartSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{StateDir: dir, Registry: telemetry.NewRegistry()})
	postPartition(t, s1.Handler(), testRequest())
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly 1 snapshot, got %v (%v)", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := telemetry.NewRegistry()
	s2 := newTestServer(t, Config{StateDir: dir, Registry: reg2})
	t.Cleanup(func() { s2.Shutdown(context.Background()) })
	if got := reg2.Counter("snapshot_corrupt_total").Value(); got != 1 {
		t.Fatalf("snapshot_corrupt_total = %d, want 1", got)
	}
	if got := reg2.Gauge("snapshot_warm_entries").Value(); got != 0 {
		t.Fatalf("snapshot_warm_entries = %d, want 0", got)
	}
	rec := postPartition(t, s2.Handler(), testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("request after corrupt snapshot = %d", rec.Code)
	}
	if decodeResponse(t, rec).CacheHit {
		t.Fatal("corrupt snapshot must not satisfy the request")
	}
	if got := reg2.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("decomp_builds_total = %d, want 1 (rebuild)", got)
	}
}

// StateDir without caching is a configuration error, reported by New.
func TestStateDirRequiresCaching(t *testing.T) {
	_, err := New(Config{StateDir: t.TempDir(), CacheEntries: -1, Registry: telemetry.NewRegistry()})
	if err == nil {
		t.Fatal("New must reject StateDir with caching disabled")
	}
}
