package server

import (
	"context"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/cache/diskstore"
	"hierpart/internal/faultinject"
	"hierpart/internal/hgp"
	"hierpart/internal/telemetry"
)

// cluster is the daemon's view of its shard group: the HRW ring that
// ranks every cache key's replica set, a peerClient per remote peer
// (retry/backoff/breaker), a health poller that sheds dead/draining/
// overloaded peers at routing time, and the replica-ward push
// machinery that keeps "exactly one build per key cluster-wide" true
// even when a non-replica is the first to see a key.
//
// Replication (R = cfg.Replication, default 1) generalizes PR-era
// single ownership: each key's home is its top-R HRW peers in rank
// order. Fetches walk the replicas rank by rank and succeed if any one
// is alive; pushes fan out to every remote replica. Three healing
// mechanisms close the gaps replication alone leaves:
//
//   - hinted handoff: a push whose target is unroutable (or fails
//     after retries) is staged in a bounded, diskstore-backed hint
//     queue and replayed by the drain loop once health gossip reports
//     the target routable again;
//   - anti-entropy repair: a periodic sweep exchanges key digests over
//     GET /v1/peer/keys and pulls entries this daemon should replicate
//     but lacks, converging replicas after partitions, rejoins, and
//     membership changes (entries are content-addressed and immutable,
//     so repair is conflict-free by construction);
//   - dynamic membership: reload atomically swaps in a new ring
//     (SIGHUP / -peers-file in hgpd), reusing surviving peer clients
//     and their breaker state, and kicks a repair sweep to warm the
//     new replica sets — HRW's minimal-movement property bounds the
//     churn.
//
// Failure philosophy: the cluster is an accelerator, never a
// dependency. Every fetch outcome except a hit falls back to the local
// solve path (singleflight and degradation ladder intact), and every
// push failure costs only a warm-cache opportunity until handoff or
// repair delivers it. A daemon whose whole peer group is dead serves
// exactly like a single-node daemon.
type cluster struct {
	self string
	rep  int // replication factor R; owners() clamps it to ring size
	reg  *telemetry.Registry

	// cfg retains the knobs needed to construct peer clients for
	// members that join via reload.
	cfg Config

	pollInterval   time.Duration
	hintInterval   time.Duration
	repairInterval time.Duration

	// hints is the hinted-handoff queue; nil when handoff is disabled.
	hints *diskstore.HintQueue

	// srv is the owning server, set by startMaintenance before the
	// drain/repair loops run: the sweep needs the local caches to
	// answer "do I already hold this key?" and to store pulled entries.
	srv *Server

	mu sync.Mutex
	// ring and clients are swapped together under mu by reload; the
	// ring itself stays immutable. health holds the last poll's verdict
	// per remote peer — peers start routable (optimistic): a freshly
	// started or freshly added peer should receive fetches immediately,
	// and a dead one is demoted by its first failed poll or by the
	// fetch breaker, whichever fires first.
	ring    *ring
	clients map[string]*peerClient // keyed by peer base URL; self excluded
	health  map[string]bool

	repairKick chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	loopWG   sync.WaitGroup
	pushWG   sync.WaitGroup
}

// validateMembership checks a peer list the way newCluster always has:
// a usable ring, self present, every entry an http(s) base URL. It is
// shared with reload so a bad SIGHUP is rejected atomically — the old
// membership stays in force.
func validateMembership(peers []string, self string) (*ring, error) {
	r, err := newRing(peers)
	if err != nil {
		return nil, err
	}
	if self == "" {
		return nil, fmt.Errorf("cluster: Self is required when Peers is set")
	}
	selfInRing := false
	for _, p := range r.members() {
		if p == self {
			selfInRing = true
			break
		}
	}
	if !selfInRing {
		return nil, fmt.Errorf("cluster: Self %q is not in the peer list", self)
	}
	// A peer entry without an http(s) scheme would fail every health
	// poll and fetch with "unsupported protocol scheme" — a cluster
	// that looks up but sheds every key to local solves forever.
	// Reject it at startup instead of degrading silently.
	for _, p := range r.members() {
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL (want e.g. http://host:port)", p)
		}
	}
	return r, nil
}

func newCluster(cfg Config) (*cluster, error) {
	r, err := validateMembership(cfg.Peers, cfg.Self)
	if err != nil {
		return nil, err
	}
	c := &cluster{
		self:           cfg.Self,
		rep:            cfg.Replication,
		reg:            cfg.Registry,
		cfg:            cfg,
		pollInterval:   cfg.PeerHealthInterval,
		hintInterval:   cfg.HintReplayInterval,
		repairInterval: cfg.RepairInterval,
		ring:           r,
		clients:        map[string]*peerClient{},
		health:         map[string]bool{},
		repairKick:     make(chan struct{}, 1),
		stop:           make(chan struct{}),
	}
	if c.rep < 1 {
		c.rep = 1
	}
	for _, p := range r.members() {
		if p == c.self {
			continue
		}
		c.clients[p] = c.newClient(p)
		c.health[p] = true
		c.reg.Gauge(telemetry.Series("peer_healthy", "peer", p)).Set(1)
		c.reg.Gauge(telemetry.Series("peer_breaker_state", "peer", p)).Set(int64(breakerClosed))
	}
	if cfg.HintQueueEntries >= 0 {
		dir := ""
		if cfg.StateDir != "" {
			// A subdirectory of the snapshot store: listEntries skips
			// directories, so snapshots and hints coexist under one
			// -state-dir without seeing each other's files.
			dir = filepath.Join(cfg.StateDir, "hints")
		}
		hq, err := diskstore.OpenHintQueue(dir, cfg.HintQueueEntries, cfg.Registry)
		if err != nil {
			return nil, err
		}
		c.hints = hq
	}
	// Pre-register the full outcome families at zero: scrapers should
	// never see a series pop into existence mid-flight.
	for _, o := range fetchOutcomes {
		c.reg.Counter(telemetry.Series("peer_fetch_total", "outcome", string(o)))
	}
	c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "ok"))
	c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "error"))
	c.reg.Gauge("peer_push_inflight")
	c.reg.Counter("peer_auth_failures_total")
	c.reg.Counter("repair_sweeps_total")
	c.reg.Counter("repair_pulled_total")
	c.reg.Counter("repair_pull_errors_total")
	c.reg.Counter("membership_reloads_total")
	c.reg.Gauge("cluster_peers").Set(int64(len(r.members())))
	authed := int64(0)
	if cfg.PeerSecret != "" {
		authed = 1
	}
	c.reg.Gauge("peer_auth_enabled").Set(authed)
	c.loopWG.Add(1)
	go c.pollLoop()
	return c, nil
}

// newClient builds the peerClient for one remote peer from the knobs
// the cluster was configured with — shared by startup and reload.
func (c *cluster) newClient(peer string) *peerClient {
	return newPeerClient(peer, c.cfg.PeerTimeout, c.cfg.PeerRetries, c.cfg.PeerBackoff,
		c.cfg.PeerBreakerThreshold, c.cfg.PeerBreakerCooldown, c.cfg.PeerSecret)
}

// startMaintenance wires the cluster to its owning server and starts
// the background healing loops (hint drain, anti-entropy repair). It
// is separate from newCluster because the loops read the server's
// caches, which do not exist yet when the cluster is constructed.
func (c *cluster) startMaintenance(s *Server) {
	c.srv = s
	if c.hints != nil {
		c.loopWG.Add(1)
		go c.drainLoop()
	}
	if c.repairInterval > 0 {
		c.loopWG.Add(1)
		go c.repairLoop()
	}
}

// close stops the background loops and waits for in-flight pushes — a
// graceful shutdown must not abandon goroutines mid-PUT — then flushes
// staged hints so the handoff this daemon owes survives the restart.
func (c *cluster) close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.loopWG.Wait()
	c.pushWG.Wait()
	if c.hints != nil {
		_ = c.hints.FlushPending()
	}
}

// snapshotRing returns the current (immutable) ring.
func (c *cluster) snapshotRing() *ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// client returns the peerClient for peer, nil for self or a peer that
// left the ring.
func (c *cluster) client(peer string) *peerClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[peer]
}

// ownerOf returns the full-ring primary owner of key — replica rank 0.
func (c *cluster) ownerOf(key string) string { return c.snapshotRing().owner(key) }

// replicasOf returns key's replica set in rank order: the top-R HRW
// peers (R clamped to the ring size). Rank 0 is the primary.
func (c *cluster) replicasOf(key string) []string {
	return c.snapshotRing().owners(key, c.rep)
}

// owned reports whether this daemon is one of key's replicas — the
// peers whose caches and snapshot stores are the cluster-wide home for
// it. With R=1 this reduces to "is the single owner", the pre-
// replication behavior.
func (c *cluster) owned(key string) bool {
	for _, p := range c.replicasOf(key) {
		if p == c.self {
			return true
		}
	}
	return false
}

func (c *cluster) countFetch(o fetchOutcome) {
	c.reg.Counter(telemetry.Series("peer_fetch_total", "outcome", string(o))).Inc()
}

// fetchFrom walks key's replicas in rank order and fetches path from
// the first routable one that answers with a validated entry, running
// decode (the entry-layer parser) inside the client's outcome
// classification — one peer_fetch_total row and one breaker verdict
// per peer attempted. Any non-hit outcome walks on to the next
// replica: a definitive miss on one replica says nothing about the
// others (pushes, handoff, or repair may not have converged yet), and
// an error is exactly the node-loss case replication exists for. A nil
// return means "solve locally" — the caller never needs to distinguish
// why. With R=1 the walk visits at most the single owner, the pre-
// replication behavior.
func (c *cluster) fetchFrom(ctx context.Context, key, path string, decode func([]byte) (any, error)) any {
	for _, peer := range c.replicasOf(key) {
		if peer == c.self {
			continue
		}
		pc := c.client(peer)
		if pc == nil {
			continue
		}
		if !c.routable(peer) {
			c.countFetch(outcomePeerUnhealthy)
			continue
		}
		val, outcome := pc.fetch(ctx, path, decode)
		c.countFetch(outcome)
		c.publishBreaker(peer, pc)
		if outcome == outcomeHit {
			return val
		}
	}
	return nil
}

// fetchDecomp asks key's replicas for its decomposition entry. ok is
// true only when a validated entry arrived; every other outcome (miss,
// error, corruption — frame or entry layer — version skew, breaker,
// unhealthy replicas) is a silent fallback to the local build.
func (c *cluster) fetchDecomp(ctx context.Context, key string) (*cache.DecompEntry, bool) {
	v := c.fetchFrom(ctx, key, peerPath(peerKindDecomp, key), decodeDecompPayload)
	if v == nil {
		return nil, false
	}
	return v.(*cache.DecompEntry), true
}

// fetchResult asks key's replicas for a full solve result. A partial
// result is rejected at decode — pushers never send one (the result
// cache holds only complete full-pipeline results), so its appearance
// on the wire is corruption or hostility, and accepting it would let
// the local result cache replay a degraded answer as a full one.
func (c *cluster) fetchResult(ctx context.Context, key string) (*hgp.Result, bool) {
	v := c.fetchFrom(ctx, key, peerPath(peerKindResult, key), decodeResultPayload)
	if v == nil {
		return nil, false
	}
	return v.(*hgp.Result), true
}

// peerKindDecomp and peerKindResult name the two entry kinds the
// /v1/peer data surface carries; the kind is also what a hint records
// so replay can reconstruct the path.
const (
	peerKindDecomp = "decomp"
	peerKindResult = "result"
)

func peerPath(kind, key string) string { return "/v1/peer/" + kind + "/" + key }

// decodeDecompPayload and decodeResultPayload are the entry-layer
// parsers shared by the request-path fetches and the repair sweep.
func decodeDecompPayload(payload []byte) (any, error) {
	dec, perm, err := diskstore.DecodeDecompEntry(payload)
	if err != nil {
		return nil, err
	}
	return &cache.DecompEntry{Dec: dec, Perm: perm}, nil
}

func decodeResultPayload(payload []byte) (any, error) {
	res, err := diskstore.DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	if res.Partial {
		return nil, fmt.Errorf("partial result on the peer wire")
	}
	return res, nil
}

// pushTo PUTs a framed body to every remote replica of key in the
// background. The peer_push_inflight gauge is incremented synchronously
// — before this function returns — so a caller (or test) that polls
// the gauge to zero after issuing requests has a race-free "all pushes
// settled" barrier. A replica that is unroutable at routing time, or
// whose push fails after retries, gets the entry staged as a hint
// instead — delivery is deferred, not abandoned.
func (c *cluster) pushTo(kind, key string, payload []byte) {
	body := diskstore.WrapWire(payload)
	for _, peer := range c.replicasOf(key) {
		if peer == c.self {
			continue
		}
		pc := c.client(peer)
		if pc == nil {
			continue
		}
		if !c.routable(peer) {
			c.stageHint(peer, kind, key, payload)
			continue
		}
		c.reg.Gauge("peer_push_inflight").Add(1)
		c.pushWG.Add(1)
		go func(peer string, pc *peerClient) {
			defer c.pushWG.Done()
			defer c.reg.Gauge("peer_push_inflight").Add(-1)
			ctx, cancel := context.WithTimeout(context.Background(), pushBudget(pc))
			defer cancel()
			if pc.push(ctx, peerPath(kind, key), body) {
				c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "ok")).Inc()
			} else {
				c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "error")).Inc()
				c.stageHint(peer, kind, key, payload)
			}
			c.publishBreaker(peer, pc)
		}(peer, pc)
	}
}

// pushBudget bounds one push operation end to end: every attempt plus
// every backoff sleep.
func pushBudget(pc *peerClient) time.Duration {
	return time.Duration(pc.retries+1) * (pc.timeout + pc.backoff*8)
}

// pushDecomp replicates a locally built decomposition entry to key's
// remote replicas, so the build this daemon just paid for becomes the
// cluster-wide copy instead of being rebuilt wherever routing looks
// for it next.
func (c *cluster) pushDecomp(key string, entry *cache.DecompEntry) {
	c.pushTo(peerKindDecomp, key, diskstore.EncodeDecompEntry(entry.Dec, entry.Perm))
}

// pushResult replicates a full-quality solve result to key's remote
// replicas.
func (c *cluster) pushResult(key string, res *hgp.Result) {
	c.pushTo(peerKindResult, key, diskstore.EncodeResult(res))
}

// stageHint queues an undeliverable push for hinted handoff (a no-op
// when handoff is disabled; anti-entropy remains the backstop).
func (c *cluster) stageHint(peer, kind, key string, payload []byte) {
	if c.hints == nil {
		return
	}
	c.hints.Stage(diskstore.Hint{Peer: peer, Kind: kind, Key: key, Payload: payload})
}

// hintReplayBatch bounds how many hints one drain tick replays per
// peer: a node returning from a long outage absorbs its backlog across
// a few ticks instead of one burst.
const hintReplayBatch = 32

// drainLoop is the hinted-handoff drainer: each tick it persists
// freshly staged hints (snapshot fsync discipline), then replays
// staged hints whose target the health poller reports routable.
func (c *cluster) drainLoop() {
	defer c.loopWG.Done()
	t := time.NewTicker(c.hintInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.drainHints()
	}
}

func (c *cluster) drainHints() {
	_ = c.hints.FlushPending()
	for _, peer := range c.hints.Peers() {
		pc := c.client(peer)
		if pc == nil {
			// The peer left the ring; its hints can never deliver.
			c.hints.DropPeer(peer)
			continue
		}
		if !c.routable(peer) {
			continue
		}
		for _, h := range c.hints.TakeFor(peer, hintReplayBatch) {
			if err := faultinject.Fire(nil, faultinject.HintReplay); err != nil {
				c.hints.Fail(h)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), pushBudget(pc))
			ok := pc.push(ctx, peerPath(h.Kind, h.Key), diskstore.WrapWire(h.Payload))
			cancel()
			c.publishBreaker(peer, pc)
			if !ok {
				// The peer looked healthy but the replay failed: stop
				// hammering it this tick and let gossip re-evaluate.
				c.hints.Fail(h)
				break
			}
			c.hints.Resolve(h)
		}
	}
	_ = c.hints.FlushPending()
}

// repairMaxPulls bounds one anti-entropy sweep: the sweep is a low-rate
// background healer, not a bulk transfer — a freshly blanked replica
// converges over a few sweeps instead of saturating its peers in one.
const repairMaxPulls = 64

// repairLoop runs the anti-entropy sweep on its interval, plus
// immediately when a membership reload kicks it (the sweep doubles as
// the rebalancer that warms newly acquired replica sets).
func (c *cluster) repairLoop() {
	defer c.loopWG.Done()
	t := time.NewTicker(c.repairInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		case <-c.repairKick:
		}
		c.repairSweep()
	}
}

// repairSweep exchanges key digests with every routable remote peer
// (GET /v1/peer/keys — cache keys ARE SHA-256 digests, so the key list
// is the digest list) and pulls entries this daemon should replicate
// but lacks. Pulled bodies run the same frame + entry validation as
// request-path fetches; a rejected body counts as a pull error and the
// key is retried on a later sweep against whichever replica still
// lists it. The per-sweep pull cap keeps the sweep low-rate; remaining
// gaps heal on subsequent sweeps.
func (c *cluster) repairSweep() {
	c.reg.Counter("repair_sweeps_total").Inc()
	pulled := 0
	for _, peer := range c.snapshotRing().members() {
		if peer == c.self || pulled >= repairMaxPulls {
			continue
		}
		pc := c.client(peer)
		if pc == nil || !c.routable(peer) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PeerTimeout)
		view, err := pc.keys(ctx)
		cancel()
		if err != nil {
			c.reg.Counter("repair_pull_errors_total").Inc()
			continue
		}
		pulled += c.repairPull(pc, peerKindDecomp, view.Decomp, repairMaxPulls-pulled)
		pulled += c.repairPull(pc, peerKindResult, view.Result, repairMaxPulls-pulled)
	}
}

// repairPull pulls up to budget missing entries of one kind from one
// peer, returning how many landed.
func (c *cluster) repairPull(pc *peerClient, kind string, keys []string, budget int) int {
	decode, have, store := decodeDecompPayload, c.srv.hasDecompLocal, c.srv.storeDecompLocal
	if kind == peerKindResult {
		decode, have, store = decodeResultPayload, c.srv.hasResultLocal, c.srv.storeResultLocal
	}
	pulled := 0
	for _, key := range keys {
		if pulled >= budget {
			break
		}
		select {
		case <-c.stop:
			return pulled
		default:
		}
		// A peer's key list is unvalidated input: bound what a corrupt
		// or hostile listing can make this daemon do.
		if !validPeerKey(key) {
			continue
		}
		if !c.owned(key) || have(key) {
			continue
		}
		if err := faultinject.Fire(nil, faultinject.RepairPull); err != nil {
			c.reg.Counter("repair_pull_errors_total").Inc()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), pushBudget(pc))
		val, outcome := pc.fetch(ctx, peerPath(kind, key), decode)
		cancel()
		if outcome != outcomeHit {
			c.reg.Counter("repair_pull_errors_total").Inc()
			if outcome == outcomeBreakerOpen || outcome == outcomeError {
				// The peer is struggling; take the rest of its list on
				// a later sweep instead of grinding through it now.
				break
			}
			continue
		}
		store(key, val)
		c.reg.Counter("repair_pulled_total").Inc()
		pulled++
	}
	return pulled
}

// reload atomically replaces the cluster membership: validation first
// (a bad list leaves the old membership untouched), then the ring and
// client set swap under one lock acquisition. Clients of surviving
// peers are reused — their breaker state and health verdicts describe
// the peer, not the membership epoch — new peers start optimistically
// routable exactly like startup, and removed peers' clients, health
// verdicts, gauges, and staged hints are dropped. A repair sweep is
// kicked so newly acquired replica sets warm without waiting for the
// next interval; HRW's minimal-movement property bounds how much there
// is to warm.
func (c *cluster) reload(peers []string) error {
	r, err := validateMembership(peers, c.self)
	if err != nil {
		return err
	}
	var added, removed []string
	c.mu.Lock()
	old := c.clients
	clients := make(map[string]*peerClient, len(r.members()))
	for _, p := range r.members() {
		if p == c.self {
			continue
		}
		if pc, ok := old[p]; ok {
			clients[p] = pc
			continue
		}
		clients[p] = c.newClient(p)
		c.health[p] = true
		added = append(added, p)
	}
	for p := range old {
		if _, ok := clients[p]; !ok {
			delete(c.health, p)
			removed = append(removed, p)
		}
	}
	c.ring, c.clients = r, clients
	c.mu.Unlock()

	for _, p := range added {
		c.reg.Gauge(telemetry.Series("peer_healthy", "peer", p)).Set(1)
		c.reg.Gauge(telemetry.Series("peer_breaker_state", "peer", p)).Set(int64(breakerClosed))
	}
	for _, p := range removed {
		c.reg.DropGauge(telemetry.Series("peer_healthy", "peer", p))
		c.reg.DropGauge(telemetry.Series("peer_breaker_state", "peer", p))
		if c.hints != nil {
			c.hints.DropPeer(p)
		}
	}
	c.reg.Counter("membership_reloads_total").Inc()
	c.reg.Gauge("cluster_peers").Set(int64(len(r.members())))
	select {
	case c.repairKick <- struct{}{}:
	default:
	}
	return nil
}

// routable reports the last poll's verdict for peer (optimistically
// true before the first poll completes).
func (c *cluster) routable(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.health[peer]
}

func (c *cluster) setRoutable(peer string, ok bool) {
	c.mu.Lock()
	if _, member := c.clients[peer]; !member {
		// A poll completing after the peer was reloaded away must not
		// resurrect its verdict or its gauges.
		c.mu.Unlock()
		return
	}
	c.health[peer] = ok
	c.mu.Unlock()
	v := int64(0)
	if ok {
		v = 1
	}
	c.reg.Gauge(telemetry.Series("peer_healthy", "peer", peer)).Set(v)
}

func (c *cluster) publishBreaker(peer string, pc *peerClient) {
	c.reg.Gauge(telemetry.Series("peer_breaker_state", "peer", peer)).Set(int64(pc.brk.snapshot()))
}

// pollLoop gossips each remote peer's /v1/peer/health on the
// configured interval, updating the routing-time shed verdicts. One
// failed or unhealthy poll sheds a peer; one clean poll restores it —
// the fetch breaker provides the hysteresis, the poller provides the
// freshest signal.
func (c *cluster) pollLoop() {
	defer c.loopWG.Done()
	t := time.NewTicker(c.pollInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		snapshot := make(map[string]*peerClient, len(c.clients))
		for peer, pc := range c.clients {
			snapshot[peer] = pc
		}
		c.mu.Unlock()
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for peer, pc := range snapshot {
			wg.Add(1)
			go func(peer string, pc *peerClient) {
				defer wg.Done()
				hv, err := pc.health(ctx)
				c.setRoutable(peer, err == nil && hv.routable())
				c.publishBreaker(peer, pc)
			}(peer, pc)
		}
		wg.Wait()
		cancel()
	}
}

// peerFetchMark is a context-carried flag recording that a request's
// decomposition arrived via cluster peer fetch. It rides the context
// (set by the singleflight winner inside cachedSolve, read by the
// handler when rendering) because solveFunc's signature is part of the
// test seam — several batteries stub s.solve — and widening it for one
// observability bit would churn every stub. The bit is atomic: under
// the anytime ladder the setter may run on a losing tier's goroutine
// that is still winding down when the handler reads.
type peerFetchMark struct{ hit atomic.Bool }

type peerFetchMarkKey struct{}

func withPeerFetchMark(ctx context.Context) (context.Context, *peerFetchMark) {
	m := &peerFetchMark{}
	return context.WithValue(ctx, peerFetchMarkKey{}, m), m
}

// markPeerFetch flags the request that owns ctx, if any. Coalesced
// singleflight waiters share the fetched decomposition but not the
// winner's context, so only the winner's response reports the fetch —
// mirroring how decomp_coalesced_total attributes shared builds.
func markPeerFetch(ctx context.Context) {
	if m, ok := ctx.Value(peerFetchMarkKey{}).(*peerFetchMark); ok {
		m.hit.Store(true)
	}
}

// clusterPeerStats is one peer's row in the stats block.
type clusterPeerStats struct {
	Peer    string `json:"peer"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
	// Breaker is this daemon's fetch breaker toward the peer
	// (0 closed, 1 open, 2 half-open); always 0 for self.
	Breaker int64 `json:"breaker"`
}

// clusterStats is the always-present `cluster` block of /v1/stats.
// With clustering off only Enabled is rendered, so dashboards can key
// on one shape everywhere.
type clusterStats struct {
	Enabled bool   `json:"enabled"`
	Self    string `json:"self,omitempty"`
	// Replication is the configured R; each key lives on its top-R HRW
	// peers (clamped to the cluster size).
	Replication int `json:"replication,omitempty"`
	// AuthEnabled reports whether the /v1/peer surface requires the
	// cluster shared secret — surfaced here (and in the health gossip
	// payload) so operators and soaks can assert it instead of relying
	// on a startup log line.
	AuthEnabled bool               `json:"peer_auth_enabled"`
	Peers       []clusterPeerStats `json:"peers,omitempty"`
	// Fetch outcomes, mirrored from peer_fetch_total{outcome=...}.
	FetchHits      int64 `json:"fetch_hits,omitempty"`
	FetchMisses    int64 `json:"fetch_misses,omitempty"`
	FetchErrors    int64 `json:"fetch_errors,omitempty"`
	FetchRejected  int64 `json:"fetch_rejected,omitempty"` // corrupt + version_mismatch
	FetchShed      int64 `json:"fetch_shed,omitempty"`     // breaker_open + peer_unhealthy
	PushOK         int64 `json:"push_ok,omitempty"`
	PushErrors     int64 `json:"push_errors,omitempty"`
	PushesInflight int64 `json:"pushes_inflight"`
	// Hinted handoff: queue depth plus lifetime staged/replayed/dropped.
	HintsQueued   int64 `json:"hints_queued"`
	HintsStaged   int64 `json:"hints_staged,omitempty"`
	HintsReplayed int64 `json:"hints_replayed,omitempty"`
	HintsDropped  int64 `json:"hints_dropped,omitempty"`
	// Anti-entropy repair sweep totals.
	RepairSweeps     int64 `json:"repair_sweeps,omitempty"`
	RepairPulled     int64 `json:"repair_pulled,omitempty"`
	RepairPullErrors int64 `json:"repair_pull_errors,omitempty"`
	// MembershipReloads counts accepted dynamic membership changes.
	MembershipReloads int64 `json:"membership_reloads,omitempty"`
}

func (c *cluster) stats() clusterStats {
	get := func(o fetchOutcome) int64 {
		return c.reg.Counter(telemetry.Series("peer_fetch_total", "outcome", string(o))).Value()
	}
	cs := clusterStats{
		Enabled:           true,
		Self:              c.self,
		Replication:       c.rep,
		AuthEnabled:       c.cfg.PeerSecret != "",
		FetchHits:         get(outcomeHit),
		FetchMisses:       get(outcomeMiss),
		FetchErrors:       get(outcomeError),
		FetchRejected:     get(outcomeCorrupt) + get(outcomeVersionMismatch),
		FetchShed:         get(outcomeBreakerOpen) + get(outcomePeerUnhealthy),
		PushOK:            c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "ok")).Value(),
		PushErrors:        c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "error")).Value(),
		PushesInflight:    c.reg.Gauge("peer_push_inflight").Value(),
		HintsStaged:       c.reg.Counter("hints_staged_total").Value(),
		HintsReplayed:     c.reg.Counter("hints_replayed_total").Value(),
		HintsDropped:      c.reg.Counter("hints_dropped_total").Value(),
		RepairSweeps:      c.reg.Counter("repair_sweeps_total").Value(),
		RepairPulled:      c.reg.Counter("repair_pulled_total").Value(),
		RepairPullErrors:  c.reg.Counter("repair_pull_errors_total").Value(),
		MembershipReloads: c.reg.Counter("membership_reloads_total").Value(),
	}
	if c.hints != nil {
		cs.HintsQueued = int64(c.hints.Len())
	}
	for _, p := range c.snapshotRing().members() {
		row := clusterPeerStats{Peer: p}
		if p == c.self {
			row.Self = true
			row.Healthy = true
		} else {
			row.Healthy = c.routable(p)
			if pc := c.client(p); pc != nil {
				row.Breaker = int64(pc.brk.snapshot())
			}
		}
		cs.Peers = append(cs.Peers, row)
	}
	return cs
}
