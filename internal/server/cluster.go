package server

import (
	"context"
	"fmt"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/cache/diskstore"
	"hierpart/internal/hgp"
	"hierpart/internal/telemetry"
)

// cluster is the daemon's view of its shard group: the HRW ring that
// gives every cache key one natural owner, a peerClient per remote
// peer (retry/backoff/breaker), a health poller that sheds
// dead/draining/overloaded peers at routing time, and the owner-ward
// push machinery that keeps "exactly one build per key cluster-wide"
// true even when a non-owner is the first to see a key.
//
// Failure philosophy: the cluster is an accelerator, never a
// dependency. Every fetch outcome except a hit falls back to the local
// solve path (singleflight and degradation ladder intact), and every
// push failure costs only a warm-cache opportunity. A daemon whose
// whole peer group is dead serves exactly like a single-node daemon.
type cluster struct {
	self    string
	ring    *ring
	clients map[string]*peerClient // keyed by peer base URL; self excluded
	reg     *telemetry.Registry

	pollInterval time.Duration

	mu sync.Mutex
	// health holds the last poll's verdict per remote peer. Peers start
	// routable (optimistic): a freshly started cluster should fetch
	// immediately, and a dead peer is demoted by its first failed poll
	// or by the fetch breaker, whichever fires first.
	health map[string]bool

	stopOnce sync.Once
	stop     chan struct{}
	pollWG   sync.WaitGroup
	pushWG   sync.WaitGroup
}

func newCluster(cfg Config) (*cluster, error) {
	r, err := newRing(cfg.Peers)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required when Peers is set")
	}
	selfInRing := false
	for _, p := range r.members() {
		if p == cfg.Self {
			selfInRing = true
			break
		}
	}
	if !selfInRing {
		return nil, fmt.Errorf("cluster: Self %q is not in the peer list", cfg.Self)
	}
	// A peer entry without an http(s) scheme would fail every health
	// poll and fetch with "unsupported protocol scheme" — a cluster
	// that looks up but sheds every key to local solves forever.
	// Reject it at startup instead of degrading silently.
	for _, p := range r.members() {
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL (want e.g. http://host:port)", p)
		}
	}
	c := &cluster{
		self:         cfg.Self,
		ring:         r,
		clients:      map[string]*peerClient{},
		reg:          cfg.Registry,
		pollInterval: cfg.PeerHealthInterval,
		health:       map[string]bool{},
		stop:         make(chan struct{}),
	}
	for _, p := range r.members() {
		if p == c.self {
			continue
		}
		c.clients[p] = newPeerClient(p, cfg.PeerTimeout, cfg.PeerRetries, cfg.PeerBackoff, cfg.PeerBreakerThreshold, cfg.PeerBreakerCooldown, cfg.PeerSecret)
		c.health[p] = true
		c.reg.Gauge(telemetry.Series("peer_healthy", "peer", p)).Set(1)
		c.reg.Gauge(telemetry.Series("peer_breaker_state", "peer", p)).Set(int64(breakerClosed))
	}
	// Pre-register the full outcome families at zero: scrapers should
	// never see a series pop into existence mid-flight.
	for _, o := range fetchOutcomes {
		c.reg.Counter(telemetry.Series("peer_fetch_total", "outcome", string(o)))
	}
	c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "ok"))
	c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "error"))
	c.reg.Gauge("peer_push_inflight")
	c.reg.Counter("peer_auth_failures_total")
	c.pollWG.Add(1)
	go c.pollLoop()
	return c, nil
}

// close stops the health poller and waits for in-flight pushes — a
// graceful shutdown must not abandon goroutines mid-PUT.
func (c *cluster) close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.pollWG.Wait()
	c.pushWG.Wait()
}

// ownerOf returns the full-ring owner of key — the peer whose caches
// and snapshot store are the cluster-wide home for it.
func (c *cluster) ownerOf(key string) string { return c.ring.owner(key) }

// owned reports whether this daemon is key's owner.
func (c *cluster) owned(key string) bool { return c.ownerOf(key) == c.self }

func (c *cluster) countFetch(o fetchOutcome) {
	c.reg.Counter(telemetry.Series("peer_fetch_total", "outcome", string(o))).Inc()
}

// fetchFrom resolves key's owner and, when it is a routable remote
// peer, fetches path from it, running decode (the entry-layer parser)
// inside the client's outcome classification — one fetch operation,
// one peer_fetch_total row, one breaker verdict. A nil return means
// "solve locally" — the caller never needs to distinguish why.
func (c *cluster) fetchFrom(ctx context.Context, key, path string, decode func([]byte) (any, error)) any {
	owner := c.ownerOf(key)
	if owner == c.self {
		return nil
	}
	pc := c.clients[owner]
	if pc == nil {
		return nil
	}
	if !c.routable(owner) {
		c.countFetch(outcomePeerUnhealthy)
		return nil
	}
	val, outcome := pc.fetch(ctx, path, decode)
	c.countFetch(outcome)
	c.publishBreaker(owner, pc)
	if outcome != outcomeHit {
		return nil
	}
	return val
}

// fetchDecomp asks key's owner for its decomposition entry. ok is true
// only when a validated entry arrived; every other outcome (miss,
// error, corruption — frame or entry layer — version skew, breaker,
// unhealthy owner) is a silent fallback to the local build.
func (c *cluster) fetchDecomp(ctx context.Context, key string) (*cache.DecompEntry, bool) {
	v := c.fetchFrom(ctx, key, "/v1/peer/decomp/"+key, func(payload []byte) (any, error) {
		dec, perm, err := diskstore.DecodeDecompEntry(payload)
		if err != nil {
			return nil, err
		}
		return &cache.DecompEntry{Dec: dec, Perm: perm}, nil
	})
	if v == nil {
		return nil, false
	}
	return v.(*cache.DecompEntry), true
}

// fetchResult asks key's owner for a full solve result. A partial
// result is rejected at decode — pushers never send one (the result
// cache holds only complete full-pipeline results), so its appearance
// on the wire is corruption or hostility, and accepting it would let
// the local result cache replay a degraded answer as a full one.
func (c *cluster) fetchResult(ctx context.Context, key string) (*hgp.Result, bool) {
	v := c.fetchFrom(ctx, key, "/v1/peer/result/"+key, func(payload []byte) (any, error) {
		res, err := diskstore.DecodeResult(payload)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, fmt.Errorf("partial result on the peer wire")
		}
		return res, nil
	})
	if v == nil {
		return nil, false
	}
	return v.(*hgp.Result), true
}

// pushTo PUTs a framed body to key's owner in the background. The
// peer_push_inflight gauge is incremented synchronously — before this
// function returns — so a caller (or test) that polls the gauge to
// zero after issuing requests has a race-free "all pushes settled"
// barrier.
func (c *cluster) pushTo(key, path string, payload []byte) {
	owner := c.ownerOf(key)
	if owner == c.self {
		return
	}
	pc := c.clients[owner]
	if pc == nil || !c.routable(owner) {
		return
	}
	body := diskstore.WrapWire(payload)
	c.reg.Gauge("peer_push_inflight").Add(1)
	c.pushWG.Add(1)
	go func() {
		defer c.pushWG.Done()
		defer c.reg.Gauge("peer_push_inflight").Add(-1)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(pc.retries+1)*(pc.timeout+pc.backoff*8))
		defer cancel()
		if pc.push(ctx, path, body) {
			c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "ok")).Inc()
		} else {
			c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "error")).Inc()
		}
		c.publishBreaker(owner, pc)
	}()
}

// pushDecomp replicates a locally built decomposition entry to key's
// owner, so the build this daemon just paid for becomes the
// cluster-wide copy instead of being rebuilt when the owner is asked.
func (c *cluster) pushDecomp(key string, entry *cache.DecompEntry) {
	c.pushTo(key, "/v1/peer/decomp/"+key, diskstore.EncodeDecompEntry(entry.Dec, entry.Perm))
}

// pushResult replicates a full-quality solve result to key's owner.
func (c *cluster) pushResult(key string, res *hgp.Result) {
	c.pushTo(key, "/v1/peer/result/"+key, diskstore.EncodeResult(res))
}

// routable reports the last poll's verdict for peer (optimistically
// true before the first poll completes).
func (c *cluster) routable(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.health[peer]
}

func (c *cluster) setRoutable(peer string, ok bool) {
	c.mu.Lock()
	c.health[peer] = ok
	c.mu.Unlock()
	v := int64(0)
	if ok {
		v = 1
	}
	c.reg.Gauge(telemetry.Series("peer_healthy", "peer", peer)).Set(v)
}

func (c *cluster) publishBreaker(peer string, pc *peerClient) {
	c.reg.Gauge(telemetry.Series("peer_breaker_state", "peer", peer)).Set(int64(pc.brk.snapshot()))
}

// pollLoop gossips each remote peer's /v1/peer/health on the
// configured interval, updating the routing-time shed verdicts. One
// failed or unhealthy poll sheds a peer; one clean poll restores it —
// the fetch breaker provides the hysteresis, the poller provides the
// freshest signal.
func (c *cluster) pollLoop() {
	defer c.pollWG.Done()
	t := time.NewTicker(c.pollInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for peer, pc := range c.clients {
			wg.Add(1)
			go func(peer string, pc *peerClient) {
				defer wg.Done()
				hv, err := pc.health(ctx)
				c.setRoutable(peer, err == nil && hv.routable())
				c.publishBreaker(peer, pc)
			}(peer, pc)
		}
		wg.Wait()
		cancel()
	}
}

// peerFetchMark is a context-carried flag recording that a request's
// decomposition arrived via cluster peer fetch. It rides the context
// (set by the singleflight winner inside cachedSolve, read by the
// handler when rendering) because solveFunc's signature is part of the
// test seam — several batteries stub s.solve — and widening it for one
// observability bit would churn every stub. The bit is atomic: under
// the anytime ladder the setter may run on a losing tier's goroutine
// that is still winding down when the handler reads.
type peerFetchMark struct{ hit atomic.Bool }

type peerFetchMarkKey struct{}

func withPeerFetchMark(ctx context.Context) (context.Context, *peerFetchMark) {
	m := &peerFetchMark{}
	return context.WithValue(ctx, peerFetchMarkKey{}, m), m
}

// markPeerFetch flags the request that owns ctx, if any. Coalesced
// singleflight waiters share the fetched decomposition but not the
// winner's context, so only the winner's response reports the fetch —
// mirroring how decomp_coalesced_total attributes shared builds.
func markPeerFetch(ctx context.Context) {
	if m, ok := ctx.Value(peerFetchMarkKey{}).(*peerFetchMark); ok {
		m.hit.Store(true)
	}
}

// clusterPeerStats is one peer's row in the stats block.
type clusterPeerStats struct {
	Peer    string `json:"peer"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
	// Breaker is this daemon's fetch breaker toward the peer
	// (0 closed, 1 open, 2 half-open); always 0 for self.
	Breaker int64 `json:"breaker"`
}

// clusterStats is the always-present `cluster` block of /v1/stats.
// With clustering off only Enabled is rendered, so dashboards can key
// on one shape everywhere.
type clusterStats struct {
	Enabled bool               `json:"enabled"`
	Self    string             `json:"self,omitempty"`
	Peers   []clusterPeerStats `json:"peers,omitempty"`
	// Fetch outcomes, mirrored from peer_fetch_total{outcome=...}.
	FetchHits      int64 `json:"fetch_hits,omitempty"`
	FetchMisses    int64 `json:"fetch_misses,omitempty"`
	FetchErrors    int64 `json:"fetch_errors,omitempty"`
	FetchRejected  int64 `json:"fetch_rejected,omitempty"` // corrupt + version_mismatch
	FetchShed      int64 `json:"fetch_shed,omitempty"`     // breaker_open + peer_unhealthy
	PushOK         int64 `json:"push_ok,omitempty"`
	PushErrors     int64 `json:"push_errors,omitempty"`
	PushesInflight int64 `json:"pushes_inflight"`
}

func (c *cluster) stats() clusterStats {
	get := func(o fetchOutcome) int64 {
		return c.reg.Counter(telemetry.Series("peer_fetch_total", "outcome", string(o))).Value()
	}
	cs := clusterStats{
		Enabled:        true,
		Self:           c.self,
		FetchHits:      get(outcomeHit),
		FetchMisses:    get(outcomeMiss),
		FetchErrors:    get(outcomeError),
		FetchRejected:  get(outcomeCorrupt) + get(outcomeVersionMismatch),
		FetchShed:      get(outcomeBreakerOpen) + get(outcomePeerUnhealthy),
		PushOK:         c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "ok")).Value(),
		PushErrors:     c.reg.Counter(telemetry.Series("peer_push_total", "outcome", "error")).Value(),
		PushesInflight: c.reg.Gauge("peer_push_inflight").Value(),
	}
	for _, p := range c.ring.members() {
		row := clusterPeerStats{Peer: p}
		if p == c.self {
			row.Self = true
			row.Healthy = true
		} else {
			row.Healthy = c.routable(p)
			row.Breaker = int64(c.clients[p].brk.snapshot())
		}
		cs.Peers = append(cs.Peers, row)
	}
	return cs
}
