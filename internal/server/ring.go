package server

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring assigns every cache key one natural owner among a static peer
// list via highest-random-weight (rendezvous) hashing: the owner of a
// key is the peer maximizing hash(peer ‖ key). HRW was chosen over a
// virtual-node token ring because the properties the cluster tests pin
// fall out of the definition instead of needing tuning:
//
//   - order-invariance: the score of (peer, key) ignores every other
//     peer, so any permutation of the peer list yields byte-identical
//     ownership;
//   - minimal movement: removing a peer reassigns exactly the keys it
//     owned (~1/N of the corpus) — every other key's argmax is
//     untouched; adding a peer steals only the keys whose new score
//     beats all incumbents (~1/(N+1));
//   - no token-count / balance tradeoff: with 64-bit scores over
//     SHA-256-derived keys the load split is already even.
//
// A ring is immutable after newRing; routing-time health shedding is
// layered on top via ownerAmong, not by mutating the peer list.
type ring struct {
	peers []string // sorted, deduplicated
}

// newRing builds a ring over the given peer names (base URLs in the
// cluster's usage). Duplicates are collapsed; at least one peer is
// required.
func newRing(peers []string) (*ring, error) {
	seen := map[string]bool{}
	var uniq []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("ring: empty peer name")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("ring: no peers")
	}
	sort.Strings(uniq)
	return &ring{peers: uniq}, nil
}

// score is the HRW weight of key on peer: FNV-1a 64 over
// peer ‖ "\x00" ‖ key. The separator keeps (peer="a", key="bc") and
// (peer="ab", key="c") from colliding. FNV-1a is sufficient here — the
// keys being routed are already hex SHA-256 strings, so the input is
// uniformly distributed and the hash only needs to mix peer identity
// into it, not resist adversarial inputs.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// owner returns the peer owning key: the argmax of score over the full
// peer list, ties broken toward the lexicographically smaller peer
// (deterministic because peers is sorted and the scan keeps the first
// maximum).
func (r *ring) owner(key string) string {
	best := r.peers[0]
	bestScore := score(best, key)
	for _, p := range r.peers[1:] {
		if s := score(p, key); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// ownerAmong returns the owner of key restricted to the given peers —
// the routing-time view where unhealthy peers have been shed. Peers not
// in the ring are ignored; ok is false when no candidate qualifies.
// Restriction preserves HRW's stability: shedding a peer moves only the
// keys that peer owned, exactly like removing it from the ring.
func (r *ring) ownerAmong(key string, alive map[string]bool) (string, bool) {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		if !alive[p] {
			continue
		}
		if s := score(p, key); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best, best != ""
}

// members returns the ring's sorted peer list (shared slice; callers
// must not mutate).
func (r *ring) members() []string { return r.peers }
