package server

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring assigns every cache key one natural owner among a static peer
// list via highest-random-weight (rendezvous) hashing: the owner of a
// key is the peer maximizing hash(peer ‖ key). HRW was chosen over a
// virtual-node token ring because the properties the cluster tests pin
// fall out of the definition instead of needing tuning:
//
//   - order-invariance: the score of (peer, key) ignores every other
//     peer, so any permutation of the peer list yields byte-identical
//     ownership;
//   - minimal movement: removing a peer reassigns exactly the keys it
//     owned (~1/N of the corpus) — every other key's argmax is
//     untouched; adding a peer steals only the keys whose new score
//     beats all incumbents (~1/(N+1));
//   - no token-count / balance tradeoff: with 64-bit scores over
//     SHA-256-derived keys the load split is already even.
//
// A ring is immutable after newRing; routing-time health shedding is
// layered on top via ownerAmong, not by mutating the peer list, and
// dynamic membership swaps in a whole new ring atomically rather than
// editing this one. Replication generalizes the argmax to the top-R
// scores per key (owners), with rank order stable under membership
// change for the same reason single ownership is.
type ring struct {
	peers []string // sorted, deduplicated
}

// newRing builds a ring over the given peer names (base URLs in the
// cluster's usage). Duplicates are collapsed; at least one peer is
// required.
func newRing(peers []string) (*ring, error) {
	seen := map[string]bool{}
	var uniq []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("ring: empty peer name")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("ring: no peers")
	}
	sort.Strings(uniq)
	return &ring{peers: uniq}, nil
}

// score is the HRW weight of key on peer: FNV-1a 64 over
// peer ‖ "\x00" ‖ key. The separator keeps (peer="a", key="bc") and
// (peer="ab", key="c") from colliding. FNV-1a is sufficient here — the
// keys being routed are already hex SHA-256 strings, so the input is
// uniformly distributed and the hash only needs to mix peer identity
// into it, not resist adversarial inputs.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// owner returns the peer owning key: the argmax of score over the full
// peer list, ties broken toward the lexicographically smaller peer
// (deterministic because peers is sorted and the scan keeps the first
// maximum).
func (r *ring) owner(key string) string {
	best := r.peers[0]
	bestScore := score(best, key)
	for _, p := range r.peers[1:] {
		if s := score(p, key); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// owners returns the top-n HRW owners of key in rank order: rank 0 is
// the primary (always equal to owner(key)), rank i the peer with the
// i-th highest score. n is clamped to the ring size, so asking for
// more replicas than the ring holds degrades to full replication
// instead of failing — the behavior the replication flag documents.
//
// Because each peer's score depends only on (peer, key), the ranked
// order is prefix-stable under membership change: removing a peer
// deletes it from the order and promotes everything below it one rank;
// adding a peer inserts it at its score's position and demotes what it
// outranks — no other relative order changes. The replica-rank tests
// pin this, and it is what bounds replica churn on reload to the same
// ~1/N movement the single-owner ring already guarantees.
func (r *ring) owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	type ranked struct {
		peer  string
		score uint64
	}
	all := make([]ranked, len(r.peers))
	for i, p := range r.peers {
		all[i] = ranked{peer: p, score: score(p, key)}
	}
	// Ties break toward the lexicographically smaller peer, matching
	// owner's first-maximum scan over the sorted peer list.
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].peer < all[j].peer
	})
	out := make([]string, n)
	for i := range out {
		out[i] = all[i].peer
	}
	return out
}

// ownerAmong returns the owner of key restricted to the given peers —
// the routing-time view where unhealthy peers have been shed. Peers not
// in the ring are ignored; ok is false when no candidate qualifies.
// Restriction preserves HRW's stability: shedding a peer moves only the
// keys that peer owned, exactly like removing it from the ring.
func (r *ring) ownerAmong(key string, alive map[string]bool) (string, bool) {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		if !alive[p] {
			continue
		}
		if s := score(p, key); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best, best != ""
}

// members returns the ring's sorted peer list (shared slice; callers
// must not mutate).
func (r *ring) members() []string { return r.peers }
