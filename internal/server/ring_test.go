package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// ringCorpus builds a deterministic corpus of n keys shaped exactly
// like production cache keys: hex SHA-256 digests.
func ringCorpus(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("ring-corpus-key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func ringPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return peers
}

func mustRing(t *testing.T, peers []string) *ring {
	t.Helper()
	r, err := newRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Owner assignment must be byte-identical regardless of the order the
// peer list was supplied in: operators hand each daemon the same -peers
// value, but nothing forces them to type it in the same order.
func TestRingOrderInvariance(t *testing.T) {
	peers := ringPeers(5)
	keys := ringCorpus(500)
	base := mustRing(t, peers)
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = base.owner(k)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := mustRing(t, shuffled)
		for i, k := range keys {
			if got := r.owner(k); got != want[i] {
				t.Fatalf("trial %d: owner(%s) = %s under order %v, want %s", trial, k[:8], got, shuffled, want[i])
			}
		}
	}
	// Duplicates in the list must not shift ownership either.
	dup := append(append([]string(nil), peers...), peers[2], peers[0])
	r := mustRing(t, dup)
	for i, k := range keys {
		if got := r.owner(k); got != want[i] {
			t.Fatalf("duplicated list: owner(%s) = %s, want %s", k[:8], got, want[i])
		}
	}
}

// Removing one peer from N must move exactly the keys that peer owned —
// every other key keeps its owner — and the moved fraction must be
// about 1/N. The bounds are pinned loosely enough to be seed-robust
// (binomial with p=1/5 over 2000 keys has σ≈0.9%) but tight enough
// that a broken ring (e.g. modulo hashing, which reshuffles ~all keys)
// fails instantly.
func TestRingRemovalMovesOnlyRemovedPeersKeys(t *testing.T) {
	peers := ringPeers(5)
	keys := ringCorpus(2000)
	full := mustRing(t, peers)
	for _, victim := range peers {
		var survivors []string
		for _, p := range peers {
			if p != victim {
				survivors = append(survivors, p)
			}
		}
		reduced := mustRing(t, survivors)
		moved := 0
		for _, k := range keys {
			before, after := full.owner(k), reduced.owner(k)
			if before == victim {
				moved++
				if after == victim {
					t.Fatalf("key %s still owned by removed peer", k[:8])
				}
				continue
			}
			if after != before {
				t.Fatalf("key %s moved %s → %s though its owner %s survives", k[:8], before, after, before)
			}
		}
		frac := float64(moved) / float64(len(keys))
		if frac < 0.12 || frac > 0.28 {
			t.Fatalf("removing %s moved %.1f%% of keys, want ~20%% (bounds 12–28%%)", victim, 100*frac)
		}
	}
}

// Adding a peer must steal keys only for the new peer — no key may move
// between two incumbent peers — and the stolen fraction must be about
// 1/(N+1).
func TestRingAdditionStealsOnlyForNewPeer(t *testing.T) {
	peers := ringPeers(5)
	keys := ringCorpus(2000)
	old := mustRing(t, peers[:4])
	grown := mustRing(t, peers)
	stolen := 0
	for _, k := range keys {
		before, after := old.owner(k), grown.owner(k)
		if after == before {
			continue
		}
		if after != peers[4] {
			t.Fatalf("key %s moved %s → %s when only %s was added", k[:8], before, after, peers[4])
		}
		stolen++
	}
	frac := float64(stolen) / float64(len(keys))
	if frac < 0.12 || frac > 0.28 {
		t.Fatalf("new peer stole %.1f%% of keys, want ~20%% (bounds 12–28%%)", 100*frac)
	}
}

// The HRW split over SHA-256-shaped keys must be roughly even — a peer
// owning far less or far more than its share would concentrate load.
func TestRingBalance(t *testing.T) {
	peers := ringPeers(5)
	keys := ringCorpus(2000)
	r := mustRing(t, peers)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, p := range peers {
		frac := float64(counts[p]) / float64(len(keys))
		if frac < 0.12 || frac > 0.28 {
			t.Fatalf("peer %s owns %.1f%% of keys, want ~20%% (bounds 12–28%%)", p, 100*frac)
		}
	}
}

// ownerAmong restricted to a subset must agree with a ring built from
// that subset: routing-time shedding behaves exactly like membership
// removal, with the same minimal-movement guarantee.
func TestRingOwnerAmongMatchesReducedRing(t *testing.T) {
	peers := ringPeers(5)
	keys := ringCorpus(300)
	full := mustRing(t, peers)
	alive := map[string]bool{peers[0]: true, peers[2]: true, peers[4]: true}
	reduced := mustRing(t, []string{peers[0], peers[2], peers[4]})
	for _, k := range keys {
		got, ok := full.ownerAmong(k, alive)
		if !ok {
			t.Fatalf("ownerAmong found no owner for %s", k[:8])
		}
		if want := reduced.owner(k); got != want {
			t.Fatalf("ownerAmong(%s) = %s, reduced ring says %s", k[:8], got, want)
		}
	}
	if _, ok := full.ownerAmong(keys[0], map[string]bool{}); ok {
		t.Fatal("ownerAmong with no live peers must report !ok")
	}
	if _, ok := full.ownerAmong(keys[0], map[string]bool{"http://unknown:1": true}); ok {
		t.Fatal("ownerAmong must ignore peers outside the ring")
	}
}

func TestRingRejectsEmptyAndBlank(t *testing.T) {
	if _, err := newRing(nil); err == nil {
		t.Fatal("empty peer list must be rejected")
	}
	if _, err := newRing([]string{"http://a:1", ""}); err == nil {
		t.Fatal("blank peer name must be rejected")
	}
}

// owners(key, 1) must agree with owner(key) — rank 0 IS the single
// owner — and the replica set must be distinct peers in a stable order.
func TestRingOwnersRankZeroIsOwner(t *testing.T) {
	r := mustRing(t, ringPeers(5))
	for _, k := range ringCorpus(300) {
		reps := r.owners(k, 3)
		if len(reps) != 3 {
			t.Fatalf("owners(%s, 3) returned %d peers", k[:8], len(reps))
		}
		if reps[0] != r.owner(k) {
			t.Fatalf("owners(%s)[0] = %s, owner = %s", k[:8], reps[0], r.owner(k))
		}
		seen := map[string]bool{}
		for _, p := range reps {
			if seen[p] {
				t.Fatalf("owners(%s, 3) repeats %s", k[:8], p)
			}
			seen[p] = true
		}
	}
}

// Degenerate and over-asked replica counts must clamp, not fail: a
// single-peer cluster serves every key itself at any R, and R above
// the cluster size means "every peer".
func TestRingOwnersClamps(t *testing.T) {
	solo := mustRing(t, ringPeers(1))
	for _, k := range ringCorpus(20) {
		for _, n := range []int{0, 1, 7} {
			reps := solo.owners(k, n)
			if len(reps) != 1 || reps[0] != solo.members()[0] {
				t.Fatalf("single-peer owners(%s, %d) = %v, want the one peer", k[:8], n, reps)
			}
		}
	}
	r := mustRing(t, ringPeers(3))
	for _, k := range ringCorpus(20) {
		if reps := r.owners(k, 99); len(reps) != 3 {
			t.Fatalf("owners(%s, 99) over 3 peers = %d replicas, want 3 (clamped)", k[:8], len(reps))
		}
	}
}

// The HRW rank order must be prefix-stable under membership change:
// removing a peer deletes it from each key's ranked list without
// reordering the survivors, so a key's replica set after a node loss
// is exactly its old ranked list with the dead peer struck out. This
// is the property that lets hinted handoff and repair reason about
// "the same replicas, minus the failed one".
func TestRingOwnersPrefixStableUnderMembershipChange(t *testing.T) {
	peers := ringPeers(5)
	full := mustRing(t, peers)
	for _, victim := range peers {
		var survivors []string
		for _, p := range peers {
			if p != victim {
				survivors = append(survivors, p)
			}
		}
		reduced := mustRing(t, survivors)
		for _, k := range ringCorpus(300) {
			var want []string
			for _, p := range full.owners(k, len(peers)) {
				if p != victim {
					want = append(want, p)
				}
			}
			got := reduced.owners(k, len(survivors))
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("removing %s reordered owners(%s): got %v, want %v", victim, k[:8], got, want)
				}
			}
			// In particular the R=2 replica set only changes when the
			// victim was in it.
			before := full.owners(k, 2)
			after := reduced.owners(k, 2)
			if before[0] != victim && before[1] != victim {
				if after[0] != before[0] || after[1] != before[1] {
					t.Fatalf("R=2 replicas of %s changed %v → %v though %s was not a replica", k[:8], before, after, victim)
				}
			}
		}
	}
}
