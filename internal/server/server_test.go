package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hierpart/internal/canon"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/instio"
	"hierpart/internal/telemetry"
)

// testRequest is a small 8-vertex instance: two chatty 4-cliques that a
// good partition puts on separate sockets.
func testRequest() PartitionRequest {
	var req PartitionRequest
	req.Hierarchy = instio.HierarchySpec{Deg: []int{2, 4}, CM: []float64{8, 2, 0}}
	req.N = 8
	req.Demands = []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	for b := 0; b < 8; b += 4 {
		for i := b; i < b+4; i++ {
			for j := i + 1; j < b+4; j++ {
				req.Edges = append(req.Edges, [3]float64{float64(i), float64(j), 10})
			}
		}
	}
	req.Edges = append(req.Edges, [3]float64{0, 4, 1})
	req.Seed = 1
	req.Trees = 2
	// These unit tests pin down the no-degrade path's exact semantics
	// (single backend call, precise cache counters, 504 on deadline);
	// the ladder path has its own tests and the chaos battery.
	req.NoDegrade = true
	return req
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postPartition(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/partition", &buf))
	return rec
}

func decodeResponse(t *testing.T, rec *httptest.ResponseRecorder) PartitionResponse {
	t.Helper()
	var resp PartitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return resp
}

func TestPartitionHappyPath(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if len(resp.Assignment) != 8 {
		t.Fatalf("assignment has %d entries, want 8", len(resp.Assignment))
	}
	// The weak 0–4 edge is the only one that should cross sockets:
	// optimal cost is 1·cm(LCA). Whatever the tree draw, the two
	// cliques must land on distinct sockets (4 leaves per socket).
	socket := func(leaf int) int { return leaf / 4 }
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}, {4, 7}} {
		if socket(resp.Assignment[pair[0]]) != socket(resp.Assignment[pair[1]]) {
			t.Fatalf("clique split across sockets: %v", resp.Assignment)
		}
	}
	if resp.Cost <= 0 {
		t.Fatalf("cost = %v, want > 0", resp.Cost)
	}
	if resp.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	if len(resp.PerTreeCosts) != 2 {
		t.Fatalf("per_tree_costs has %d entries, want 2", len(resp.PerTreeCosts))
	}
}

// The acceptance-criteria test: a repeated graph must reuse the cached
// decomposition — hit counter up, decompose phase skipped — and return
// an identical placement.
func TestPartitionWarmCacheSkipsDecomposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg, ResultCacheEntries: -1})

	first := decodeResponse(t, postPartition(t, s.Handler(), testRequest()))
	if first.CacheHit {
		t.Fatal("cold request must miss")
	}
	if reg.Counter("decomp_cache_misses_total").Value() != 1 {
		t.Fatal("cold request must count one miss")
	}

	rec := postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	warm := decodeResponse(t, rec)
	if !warm.CacheHit {
		t.Fatal("repeated graph must hit the decomposition cache")
	}
	if got := reg.Counter("decomp_cache_hits_total").Value(); got != 1 {
		t.Fatalf("cache-hit counter = %d, want 1", got)
	}
	if warm.DecomposeMS != 0 {
		t.Fatalf("decompose_ms = %v on a cache hit, want 0 (phase skipped)", warm.DecomposeMS)
	}
	// Decomposition reuse must not change the answer.
	if warm.Cost != first.Cost || fmt.Sprint(warm.Assignment) != fmt.Sprint(first.Assignment) {
		t.Fatalf("warm result diverged: %v vs %v", warm, first)
	}

	// A different seed is a different distribution: miss.
	req := testRequest()
	req.Seed = 2
	if decodeResponse(t, postPartition(t, s.Handler(), req)).CacheHit {
		t.Fatal("different seed must miss the cache")
	}
}

// Changing only DP parameters (eps) must still reuse the cached
// decomposition: the embed depends on the graph and build options only.
func TestPartitionCacheSharedAcrossEps(t *testing.T) {
	s := newTestServer(t, Config{})
	postPartition(t, s.Handler(), testRequest())
	req := testRequest()
	req.Eps = 0.25
	resp := decodeResponse(t, postPartition(t, s.Handler(), req))
	if !resp.CacheHit {
		t.Fatal("eps change must not invalidate the decomposition cache")
	}
}

func TestPartitionMalformed(t *testing.T) {
	s := newTestServer(t, Config{MaxVertices: 100, MaxEdges: 2})
	cases := []struct {
		name string
		body any
		code int
	}{
		{"invalid json", `{"n": `, http.StatusBadRequest},
		{"unknown field", `{"n": 1, "bogus": true}`, http.StatusBadRequest},
		{"empty graph", `{"hierarchy": {"deg": [2], "cm": [1, 0]}, "n": 0}`, http.StatusBadRequest},
		{"bad hierarchy (increasing cm)", `{"hierarchy": {"deg": [2], "cm": [0, 1]}, "n": 2}`, http.StatusBadRequest},
		{"edge out of range", `{"hierarchy": {"deg": [2], "cm": [1, 0]}, "n": 2, "edges": [[0, 5, 1]]}`, http.StatusBadRequest},
		{"negative timeout", `{"hierarchy": {"deg": [2], "cm": [1, 0]}, "n": 2, "timeout_ms": -1}`, http.StatusBadRequest},
		{"too many vertices", `{"hierarchy": {"deg": [2], "cm": [1, 0]}, "n": 500}`, http.StatusRequestEntityTooLarge},
		{"too many edges", `{"hierarchy": {"deg": [2], "cm": [1, 0]}, "n": 3, "edges": [[0,1,1],[1,2,1],[0,2,1]]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rec := postPartition(t, s.Handler(), tc.body)
		if rec.Code != tc.code {
			t.Fatalf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.code, rec.Body.String())
		}
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code == "" {
			t.Fatalf("%s: error envelope missing: %s", tc.name, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/partition", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", rec.Code)
	}
}

// blockingSolve stubs the solver backend with one that parks until
// release closes (or the context dies), so tests control solve timing.
func blockingSolve(started chan<- struct{}, release <-chan struct{}) solveFunc {
	return func(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, sv hgp.Solver, cn *canon.Form) (*hgp.Result, bool, time.Duration, time.Duration, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return &hgp.Result{Assignment: make([]int, g.N()), PerTreeCosts: []float64{0}}, false, 0, 0, nil
		case <-ctx.Done():
			return nil, false, 0, 0, ctx.Err()
		}
	}
}

func TestPartitionDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Config{})
	s.solve = blockingSolve(nil, nil) // blocks until ctx expires

	req := testRequest()
	req.TimeoutMS = 30
	start := time.Now()
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline response took %v, want prompt", el)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "deadline_exceeded" {
		t.Fatalf("error envelope = %s", rec.Body.String())
	}
}

// An expired deadline must also interrupt a real solve (not just the
// stub): full pipeline, tight budget, large-ish instance.
func TestPartitionDeadlineInterruptsRealSolve(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	var req PartitionRequest
	req.Hierarchy = instio.HierarchySpec{Deg: []int{4, 8, 8}, CM: []float64{16, 8, 2, 0}}
	req.N = 256
	for i := 0; i < 256; i++ {
		req.Demands = append(req.Demands, 0.2)
		if i > 0 {
			req.Edges = append(req.Edges, [3]float64{float64(i - 1), float64(i), 1})
			req.Edges = append(req.Edges, [3]float64{float64(i / 2), float64(i), 2})
		}
	}
	req.Trees = 8
	req.Eps = 0.1
	req.TimeoutMS = 1
	req.NoDegrade = true // a 1ms budget must 504, not degrade to the baseline tier
	start := time.Now()
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("interrupted solve took %v, want prompt return", el)
	}
	if reg.Counter("partition_ok_total").Value() != 0 {
		t.Fatal("solve must not have completed")
	}
}

func TestPartitionQueueFull(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, Registry: reg})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.solve = blockingSolve(started, release)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := postPartition(t, s.Handler(), testRequest())
		if rec.Code != http.StatusOK {
			t.Errorf("occupant status = %d, body %s", rec.Code, rec.Body.String())
		}
	}()
	<-started // the slot is now held

	rec := postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "queue_full" {
		t.Fatalf("error envelope = %s", rec.Body.String())
	}
	if reg.Counter("queue_rejections_total").Value() != 1 {
		t.Fatal("rejection must be counted")
	}

	close(release)
	wg.Wait()

	// With the slot free again, requests are admitted.
	s.solve = s.cachedSolve
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("post-release status = %d", rec.Code)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	s := newTestServer(t, Config{})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.solve = blockingSolve(started, release)

	result := make(chan *httptest.ResponseRecorder, 1)
	go func() { result <- postPartition(t, s.Handler(), testRequest()) }()
	<-started // request is in flight

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Draining: new work is refused…
	deadline := time.After(2 * time.Second)
	for !s.isDraining() {
		select {
		case <-deadline:
			t.Fatal("server never started draining")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d, want 503", rec.Code)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz during drain = %d %s", rec.Code, rec.Body.String())
	}

	// …and Shutdown has not returned while the solve is in flight.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the solve: the in-flight request completes successfully,
	// then Shutdown returns.
	close(release)
	if rec := <-result; rec.Code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200 (drained, not killed)", rec.Code)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown did not return after drain")
	}
}

func TestShutdownTimeout(t *testing.T) {
	s := newTestServer(t, Config{})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.solve = blockingSolve(started, release)
	body, err := json.Marshal(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	go s.Handler().ServeHTTP(httptest.NewRecorder(),
		httptest.NewRequest(http.MethodPost, "/v1/partition", bytes.NewReader(body)))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown must report a tripped drain deadline")
	}
	close(release)
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var h healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || h.Status != "ok" {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestStatsJSONAndPrometheus(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Result caching off: this test pins the decomposition cache's exact
	// counters; the result_cache stats block has its own tests.
	s := newTestServer(t, Config{Registry: reg, ResultCacheEntries: -1})
	postPartition(t, s.Handler(), testRequest())
	postPartition(t, s.Handler(), testRequest())

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding stats: %v (%s)", err, rec.Body.String())
	}
	if st.Cache == nil || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit 1 miss", st.Cache)
	}
	if st.Metrics.Counters["partition_ok_total"] != 2 {
		t.Fatalf("counters = %v", st.Metrics.Counters)
	}
	if hs, ok := st.Metrics.Histograms["request_seconds"]; !ok || hs.Count != 2 {
		t.Fatalf("request_seconds histogram = %+v", st.Metrics.Histograms)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats?format=prometheus", nil))
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE partition_ok_total counter",
		"partition_ok_total 2",
		"# TYPE request_seconds histogram",
		"request_seconds_count 2",
		"decomp_cache_hits_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPprofEndpointMounted(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d", rec.Code)
	}
}

// Concurrent identical requests through the real backend: exercises the
// cache and admission under the race detector.
func TestPartitionConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 2, MaxQueue: 64, ResultCacheEntries: -1})
	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := range codes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = postPartition(t, s.Handler(), testRequest()).Code
		}()
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, c)
		}
	}
	if st := s.dec.Stats(); st.Hits == 0 {
		t.Fatal("concurrent identical requests should have produced cache hits")
	}
}
