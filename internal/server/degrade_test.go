package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hierpart/internal/faultinject"
	"hierpart/internal/telemetry"
)

func getPath(s *Server, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

// ladderRequest is testRequest with the degradation ladder left on.
func ladderRequest() PartitionRequest {
	req := testRequest()
	req.NoDegrade = false
	return req
}

// With an ample budget the ladder is invisible: the full pipeline wins,
// the response is not degraded, and the degradation block says so.
func TestPartitionLadderFullWins(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	rec := postPartition(t, s.Handler(), ladderRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Degradation == nil {
		t.Fatal("ladder response missing degradation block")
	}
	if resp.Degradation.Tier != "full_dp" || resp.Degradation.Degraded {
		t.Fatalf("degradation = %+v, want undegraded full_dp", resp.Degradation)
	}
	if len(resp.Degradation.Tiers) != 3 {
		t.Fatalf("tier reports = %+v, want 3 entries", resp.Degradation.Tiers)
	}
	if got := reg.Counter(`degraded_total{tier="full_dp"}`).Value(); got != 0 {
		t.Fatalf("degraded counter = %d for an undegraded response", got)
	}
	// The ladder must return the same placement as the no-degrade path.
	direct := decodeResponse(t, postPartition(t, s.Handler(), testRequest()))
	if fmt.Sprint(resp.Assignment) != fmt.Sprint(direct.Assignment) {
		t.Fatalf("ladder full_dp placement %v != direct %v", resp.Assignment, direct.Assignment)
	}
}

// When the DP backend cannot finish inside the deadline, the baseline
// rung serves a valid placement with HTTP 200 instead of a 504.
func TestPartitionLadderDegradesToBaseline(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	s.solve = blockingSolve(nil, nil) // DP tiers hang until their ctx dies

	req := ladderRequest()
	req.TimeoutMS = 100
	start := time.Now()
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want degraded 200 (body %s)", rec.Code, rec.Body.String())
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("degraded response took %v, want roughly the deadline", el)
	}
	resp := decodeResponse(t, rec)
	if resp.Degradation == nil || resp.Degradation.Tier != "baseline" || !resp.Degradation.Degraded {
		t.Fatalf("degradation = %+v, want degraded baseline win", resp.Degradation)
	}
	if len(resp.Assignment) != 8 {
		t.Fatalf("assignment has %d entries, want 8", len(resp.Assignment))
	}
	if got := reg.Counter(`degraded_total{tier="baseline"}`).Value(); got != 1 {
		t.Fatalf(`degraded_total{tier="baseline"} = %d, want 1`, got)
	}
	// The per-tier counter must surface through /v1/stats in both formats.
	var st StatsResponse
	if err := json.Unmarshal(getPath(s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Metrics.Counters[`degraded_total{tier="baseline"}`] != 1 {
		t.Fatalf("stats counters missing degraded tier: %v", st.Metrics.Counters)
	}
	prom := getPath(s, "/v1/stats?format=prometheus").Body.String()
	for _, want := range []string{
		"# TYPE degraded_total counter",
		`degraded_total{tier="baseline"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}

// An injected mid-DP panic that takes out every tree surfaces as a 500
// with the panic counter ticked — and the daemon keeps serving.
func TestPartitionSolverPanicIs500AndSurvivable(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	restore := faultinject.Activate(
		faultinject.New(7).On(faultinject.HgptTable, faultinject.Fault{Prob: 1, PanicMsg: "mid-DP"}))
	rec := postPartition(t, s.Handler(), testRequest())
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "solver_panic" {
		t.Fatalf("error envelope = %s, want solver_panic", rec.Body.String())
	}
	if reg.Counter("panics_total").Value() == 0 {
		t.Fatal("panic must be counted")
	}
	// The daemon survived: the same request now succeeds.
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d, daemon did not recover", rec.Code)
	}
}

// A panic on the handler goroutine itself (not inside a solver pool) is
// caught by the recovery middleware.
func TestPartitionHandlerPanicCaughtByMiddleware(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	restore := faultinject.Activate(
		faultinject.New(8).On(faultinject.ServerSolve, faultinject.Fault{Prob: 1, Count: 1, PanicMsg: "handler bug"}))
	defer restore()
	rec := postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "internal_panic" {
		t.Fatalf("error envelope = %s, want internal_panic", rec.Body.String())
	}
	if got := reg.Counter("panics_total").Value(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d, daemon did not recover", rec.Code)
	}
}

// The singleflight satellite: N concurrent identical cache misses run
// exactly one decomposition build; every other request either coalesced
// onto that build or hit the LRU entry it inserted.
func TestPartitionSingleflightExactlyOneBuild(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Result caching off so every request reaches the decomposition
	// layer this test is about.
	s := newTestServer(t, Config{Registry: reg, MaxConcurrent: 8, MaxQueue: 32, ResultCacheEntries: -1})

	// Slow the first build down so the whole herd is in flight while the
	// leader works; the exactly-one-build guarantee itself does not
	// depend on this timing, only the coalesced-vs-hit split does.
	restore := faultinject.Activate(
		faultinject.New(9).On(faultinject.TreedecompSplit,
			faultinject.Fault{Prob: 1, Count: 1, Delay: 300 * time.Millisecond}))
	defer restore()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = postPartition(t, s.Handler(), testRequest()).Code
		}()
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, c)
		}
	}
	if got := reg.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("decomp_builds_total = %d, want exactly 1 for %d identical requests", got, n)
	}
	coalesced := reg.Counter("decomp_coalesced_total").Value()
	hits := reg.Counter("decomp_cache_hits_total").Value()
	if coalesced+hits != n-1 {
		t.Fatalf("coalesced (%d) + hits (%d) = %d, want %d non-leader requests accounted for",
			coalesced, hits, coalesced+hits, n-1)
	}
}
