// Package server implements hgpd's HTTP serving layer: a long-running
// partitioning daemon that amortizes the expensive decomposition embed
// (§4 of the paper) across requests and bounds worst-case work, which
// Feldmann-style hardness results say cannot be eliminated — only
// deadline-bounded and load-shed.
//
// Request lifecycle of POST /v1/partition:
//
//	decode+validate → admission (bounded queue, 429 on overflow)
//	→ per-request deadline (context.Context, 504 on expiry)
//	→ decomposition cache (internal/cache LRU; hit skips §4 entirely)
//	→ per-tree signature DPs (§3, hgp.Solver.SolveDecomposition)
//	→ respond (assignment, costs, per-tree diagnostics, phase timings)
//
// Shutdown is graceful: Drain flips /v1/healthz to "draining" and
// rejects new solves with 503 while Shutdown waits for every in-flight
// solve to finish.
//
// With Config.Peers set the daemon joins a static shard group
// (DESIGN.md §13): a rendezvous-hash ring gives every cache key one
// owner, non-owners fetch the owner's copy over the internal
// /v1/peer/* surface (snapshot wire framing, validated like snapshot
// files) before building, and push their own builds owner-ward.
// Retry/backoff, a per-peer circuit breaker, and health gossip bound
// the cost of dead or draining peers; every fetch failure falls back
// to the local solve path.
//
// Main entry points: New builds a Server from a Config; Server.Handler
// returns the http.Handler exposing /v1/partition, /v1/healthz,
// /v1/stats (JSON or Prometheus text via ?format=prometheus), and
// /debug/pprof/*; Server.Shutdown drains. Observability flows through
// internal/telemetry (request counters, queue gauges, per-phase latency
// histograms). API.md documents the wire format with runnable examples.
package server
