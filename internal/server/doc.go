// Package server implements hgpd's HTTP serving layer: a long-running
// partitioning daemon that amortizes the expensive decomposition embed
// (§4 of the paper) across requests and bounds worst-case work, which
// Feldmann-style hardness results say cannot be eliminated — only
// deadline-bounded and load-shed.
//
// Request lifecycle of POST /v1/partition:
//
//	decode+validate → admission (bounded queue, 429 on overflow)
//	→ per-request deadline (context.Context, 504 on expiry)
//	→ decomposition cache (internal/cache LRU; hit skips §4 entirely)
//	→ per-tree signature DPs (§3, hgp.Solver.SolveDecomposition)
//	→ respond (assignment, costs, per-tree diagnostics, phase timings)
//
// Shutdown is graceful: Drain flips /v1/healthz to "draining" and
// rejects new solves with 503 while Shutdown waits for every in-flight
// solve to finish.
//
// Main entry points: New builds a Server from a Config; Server.Handler
// returns the http.Handler exposing /v1/partition, /v1/healthz,
// /v1/stats (JSON or Prometheus text via ?format=prometheus), and
// /debug/pprof/*; Server.Shutdown drains. Observability flows through
// internal/telemetry (request counters, queue gauges, per-phase latency
// histograms). API.md documents the wire format with runnable examples.
package server
