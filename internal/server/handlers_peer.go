package server

import (
	"crypto/subtle"
	"errors"
	"io"
	"net/http"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/cache/diskstore"
	"hierpart/internal/hgp"
)

// The /v1/peer surface is the cluster's internal wire: peers exchange
// cache entries by key, framed exactly like snapshot files (WrapWire:
// magic, format version, RNG stream version, length, SHA-256). It is
// registered only in cluster mode and is content-addressed — a GET
// returns the entry under the requested key or 404, never a
// computation. Peer handlers participate in drain bookkeeping like
// partition requests: a draining daemon refuses new peer work with 503
// (its peers' health pollers shed it moments later), and an in-flight
// transfer finishes before Shutdown closes the snapshot store.
//
// Trust boundary: the surface shares the public listener, and a cache
// key is a hash of the request that produced it — unrecoverable from
// the entry, so a receiver cannot verify that a pushed payload belongs
// to its key. Structural validation catches corruption, not deceit: a
// client that can reach the port could PUT a valid-but-wrong entry
// under any key and poison answers served cluster-wide. PeerSecret
// closes this: when configured, every peer request must present it
// (checked first, before drain or key validation, in constant time)
// and everything else is 403. Run clusters with a secret unless the
// listen address is genuinely unreachable by untrusted clients.

// authorizePeer enforces the cluster shared secret, when one is
// configured. It returns false with the 403 already written (and a
// peer_auth_failures_total tick) on a missing or wrong secret.
func (s *Server) authorizePeer(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.PeerSecret == "" {
		return true
	}
	got := r.Header.Get(peerSecretHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.PeerSecret)) == 1 {
		return true
	}
	s.reg.Counter("peer_auth_failures_total").Inc()
	s.writeError(w, http.StatusForbidden, "peer_auth",
		"missing or wrong cluster secret ("+peerSecretHeader+")")
	return false
}

// validPeerKey bounds what a peer may ask for: cache keys are hex
// SHA-256 digests, so anything else is a malformed (or hostile)
// request, rejected before touching any cache.
func validPeerKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// admitPeer runs the shared preamble of every peer data endpoint:
// authentication, drain bookkeeping, key validation — in that order.
// It returns the validated key and whether the request may proceed
// (the response has been written when not).
func (s *Server) admitPeer(w http.ResponseWriter, r *http.Request) (string, bool) {
	if !s.authorizePeer(w, r) {
		return "", false
	}
	if !s.admitInflight() {
		s.writeShed(w, http.StatusServiceUnavailable, "draining", shedDraining,
			"daemon is draining; peer traffic re-routes via health gossip", time.Second)
		return "", false
	}
	key := r.PathValue("key")
	if !validPeerKey(key) {
		s.inflight.Done()
		s.writeError(w, http.StatusBadRequest, "bad_key", "peer keys are 64-char lowercase hex digests")
		return "", false
	}
	return key, true
}

func writeWireBody(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(diskstore.WrapWire(payload))
}

// handlePeerDecompGet serves this daemon's copy of a decomposition
// entry. The LRU is consulted with Peek — peer probes must not distort
// the recency order or hit-ratio accounting that describe this
// daemon's own request stream — and falls back to the snapshot store:
// an entry evicted from memory but still on disk is a hit, which is
// what lets a restarted owner serve its keys warm.
func (s *Server) handlePeerDecompGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.admitPeer(w, r)
	if !ok {
		return
	}
	defer s.inflight.Done()
	if v, ok := s.dec.Peek(key); ok {
		entry := v.(*cache.DecompEntry)
		writeWireBody(w, diskstore.EncodeDecompEntry(entry.Dec, entry.Perm))
		return
	}
	if s.store != nil {
		if dec, perm, ok := s.store.Load(key); ok {
			writeWireBody(w, diskstore.EncodeDecompEntry(dec, perm))
			return
		}
	}
	s.writeError(w, http.StatusNotFound, "not_found", "no entry under key")
}

// handlePeerDecompPut accepts an owner-ward push: a peer that built a
// decomposition this daemon owns hands over the entry. The body runs
// the full snapshot validation gauntlet — frame checksum and versions
// (UnwrapWire), then structural entry validation (DecodeDecompEntry:
// true permutation, parent ordering, demand conservation) — and a
// failure at either layer rejects the push exactly as a damaged
// snapshot file is skipped at startup. Accepted entries enter the LRU
// and the snapshot store, so they survive this daemon's restart.
func (s *Server) handlePeerDecompPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.admitPeer(w, r)
	if !ok {
		return
	}
	defer s.inflight.Done()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_body", err.Error())
		return
	}
	payload, err := diskstore.UnwrapWire(raw)
	if err != nil {
		s.rejectPeerBody(w, err)
		return
	}
	dec, perm, err := diskstore.DecodeDecompEntry(payload)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "corrupt_entry", err.Error())
		return
	}
	s.dec.Add(key, &cache.DecompEntry{Dec: dec, Perm: perm})
	if s.store != nil {
		s.store.Enqueue(key, dec, perm)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerResultGet serves a full solve result from the result
// cache. Results are memory-only (no snapshot store), so a restarted
// daemon 404s here until it re-solves — the decomposition path above
// carries the durable state.
func (s *Server) handlePeerResultGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.admitPeer(w, r)
	if !ok {
		return
	}
	defer s.inflight.Done()
	if s.results != nil {
		if v, ok := s.results.Peek(key); ok {
			writeWireBody(w, diskstore.EncodeResult(v.(*hgp.Result)))
			return
		}
	}
	s.writeError(w, http.StatusNotFound, "not_found", "no result under key")
}

// handlePeerResultPut accepts an owner-ward result push, validated
// like a decomposition push (frame, then structural decode). Partial
// results are refused: the result cache holds only complete
// full-pipeline results — pushers never send anything else, so the
// receiver enforces the invariant at the trust boundary rather than
// assuming it. With the result cache disabled the push is acknowledged
// and dropped — the pusher's duty ends at delivery.
func (s *Server) handlePeerResultPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.admitPeer(w, r)
	if !ok {
		return
	}
	defer s.inflight.Done()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_body", err.Error())
		return
	}
	payload, err := diskstore.UnwrapWire(raw)
	if err != nil {
		s.rejectPeerBody(w, err)
		return
	}
	res, err := diskstore.DecodeResult(payload)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "corrupt_entry", err.Error())
		return
	}
	if res.Partial {
		s.writeError(w, http.StatusBadRequest, "partial_result",
			"partial results never enter the result cache; push refused")
		return
	}
	if s.results != nil {
		s.results.Add(key, res)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerKeys serves this daemon's cache key inventory for the
// anti-entropy digest exchange. Like the data endpoints it is gated by
// auth and drain (a draining daemon's inventory is about to leave the
// cluster's working set; repair should pull from a stable replica
// instead), and like the peer GETs it consults memory and disk without
// touching recency order or hit/miss accounting.
func (s *Server) handlePeerKeys(w http.ResponseWriter, r *http.Request) {
	if !s.authorizePeer(w, r) {
		return
	}
	if !s.admitInflight() {
		s.writeShed(w, http.StatusServiceUnavailable, "draining", shedDraining,
			"daemon is draining; peer traffic re-routes via health gossip", time.Second)
		return
	}
	defer s.inflight.Done()
	writeJSON(w, http.StatusOK, s.localKeys())
}

// rejectPeerBody maps a frame validation failure to its rejection:
// version skew is its own code (the pusher can log "upgrade in
// progress" instead of "corruption"), everything else is corruption.
func (s *Server) rejectPeerBody(w http.ResponseWriter, err error) {
	if errors.Is(err, diskstore.ErrVersionMismatch) {
		s.writeError(w, http.StatusBadRequest, "version_mismatch", err.Error())
		return
	}
	s.writeError(w, http.StatusBadRequest, "corrupt_frame", err.Error())
}

// handlePeerHealth is the gossip endpoint: always 200 (once
// authenticated), with the body carrying the routing verdict. Draining is reported distinctly from
// ok — a draining daemon still answers peer fetches for what it holds
// (until drain completes), but peers shed it at routing time so no new
// ownership traffic lands on a daemon that is leaving. The memory
// breaker and waiting-room occupancy ride along so an overloaded peer
// is shed before fetch traffic makes its day worse.
func (s *Server) handlePeerHealth(w http.ResponseWriter, r *http.Request) {
	if !s.authorizePeer(w, r) {
		return
	}
	hv := peerHealthView{
		Status:      "ok",
		QueueDepth:  s.queued.Load(),
		QueueLimit:  int64(s.cfg.MaxConcurrent + s.cfg.MaxQueue),
		AuthEnabled: s.cfg.PeerSecret != "",
	}
	if s.isDraining() {
		hv.Status = "draining"
	}
	if s.brk != nil {
		state, _, _ := s.brk.snapshot()
		hv.Breaker = int64(state)
	}
	writeJSON(w, http.StatusOK, hv)
}
