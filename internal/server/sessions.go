package server

import (
	"container/list"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hierpart/internal/dynamic"
	"hierpart/internal/faultinject"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hgpt"
	"hierpart/internal/hierarchy"
	"hierpart/internal/instio"
	"hierpart/internal/metrics"
	"hierpart/internal/treedecomp"
)

// Graph sessions: the incremental repartitioning surface.
//
// POST /v1/graphs registers a graph once; PATCH /v1/graphs/{id} applies
// small deltas under optimistic versioning; POST /v1/graphs/{id}/partition
// solves the current version incrementally — decomposition repair
// (treedecomp.Repair) rebuilds only the dirty subtrees, the per-tree DP
// reuses every clean table (hgpt.TableCache), and the new placement is
// reconciled against the previous one (dynamic.Diff) so callers see how
// many tasks actually moved. Any fault on the incremental path degrades
// to a cold solve of the same graph version — never an error, never a
// stale answer — counted by cold_fallbacks_total{reason=...}.

// Cold-fallback reasons. Every session solve is either incremental
// (incremental_solves_total) or cold under exactly one of these.
const (
	// coldFirstSolve: the session has never been solved — there is
	// nothing to repair yet.
	coldFirstSolve = "first_solve"
	// coldRestart: the session was reloaded from a snapshot after a
	// restart; decompositions and warm DP tables are deliberately not
	// persisted, so the first post-restart solve rebuilds them.
	coldRestart = "restart"
	// coldVertexChange: a patch added a vertex. Repair requires a
	// stable vertex set, so the next solve rebuilds from scratch.
	coldVertexChange = "vertex_change"
	// coldRepairFailed: treedecomp.Repair returned an error (including
	// an injected decomp.repair fault) — the decomposition is rebuilt
	// whole and the solve proceeds as if the session were fresh.
	coldRepairFailed = "repair_failed"
	// coldSolveFailed: the DP over the repaired decomposition failed;
	// retried once over a from-scratch decomposition.
	coldSolveFailed = "solve_failed"
)

// coldReasons enumerates the label values above so the stats handler
// and metric pre-registration can render every series at zero before
// the first fallback happens.
var coldReasons = []string{coldFirstSolve, coldRestart, coldVertexChange, coldRepairFailed, coldSolveFailed}

// session is one registered graph and everything its incremental solves
// accumulate: the current decomposition, the per-tree warm DP tables,
// the deltas applied since the decomposition was last repaired, and the
// last placement (the "old" side of the migration diff).
//
// session.mu serializes patches and solves on one session — a
// hgpt.TableCache is owned by one solve at a time, and a solve must see
// a consistent (graph, version, pending) triple. The store's own mutex
// covers only the ID map and LRU order; it is never held across a solve.
type session struct {
	mu sync.Mutex

	id string
	// Registration-time parameters, immutable afterwards. sv never has
	// TreeCaches set — the solve path attaches the session's caches to
	// a copy. Prune stays off: the incumbent-bounded portfolio makes DP
	// tables timing-dependent, which would break warm-table soundness.
	spec instio.HierarchySpec
	sv   hgp.Solver

	version int64 // bumped by every accepted PATCH; starts at 1
	g       *graph.Graph
	H       *hierarchy.Hierarchy

	dec     *treedecomp.Decomposition // nil until the first solve (or after restart)
	caches  []*hgpt.TableCache        // one per decomposition tree
	pending []treedecomp.Delta        // deltas since dec was produced
	// needCold forces the next solve to rebuild from scratch (reason in
	// coldReason); set by vertex additions and snapshot reloads.
	needCold   bool
	coldReason string

	lastAssign       metrics.Assignment // placement of the last solve, post-diff
	lastSolveVersion int64              // version lastAssign solved; 0 = never
	// lastDPCosts is the per-tree relaxed DP optimum of the last solve
	// over dec (hgp.Result.PerTreeDPCosts). After a reweight-only
	// repair these certify per-tree warm-solve cost ceilings
	// (hgp.WarmBoundsAfterRepair): the bounded DP prunes everything the
	// previous optimum proves unreachable and still returns the exact
	// new optimum. Reset alongside dec; not persisted (the first
	// post-restart solve is cold anyway).
	lastDPCosts   []float64
	lastResp      *GraphPartitionResponse
	lastMaxMig    int // migration knobs lastResp was computed with
	lastMigWeight float64

	// gone flips when the session is evicted or deleted so a solve that
	// raced the eviction does not resurrect the snapshot file.
	gone atomic.Bool
}

// maxLoad is the per-leaf budget the migration diff must respect: the
// same 1+eps the solver itself guarantees.
func (sess *session) maxLoad() float64 {
	eps := sess.sv.Eps
	if eps == 0 {
		eps = 0.5
	}
	return 1 + eps
}

// sessionStore is the bounded LRU of live sessions. cache.LRU is not
// reused here because eviction must have a side effect (dropping the
// session's snapshot file) and its values would need per-entry locks
// anyway.
type sessionStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*list.Element
	order *list.List // front = most recently used
}

func newSessionStore(capacity int) *sessionStore {
	return &sessionStore{cap: capacity, byID: make(map[string]*list.Element), order: list.New()}
}

// get returns the session and marks it most recently used.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	st.order.MoveToFront(el)
	return el.Value.(*session), true
}

// put inserts a new session and returns any sessions evicted to make
// room (oldest first). The caller drops their snapshot files outside
// the store lock.
func (st *sessionStore) put(sess *session) []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.byID[sess.id] = st.order.PushFront(sess)
	var evicted []*session
	for st.order.Len() > st.cap {
		back := st.order.Back()
		old := back.Value.(*session)
		st.order.Remove(back)
		delete(st.byID, old.id)
		evicted = append(evicted, old)
	}
	return evicted
}

// remove deletes a session by ID.
func (st *sessionStore) remove(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	st.order.Remove(el)
	delete(st.byID, id)
	return el.Value.(*session), true
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// newSessionID draws 8 random bytes as hex — the session namespace is
// per-daemon and unguessable IDs double as a (weak) handle secret.
func newSessionID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// sessionSnap is the JSON payload persisted per session (framed and
// committed by diskstore.SessionStore). It carries exactly what a
// restart needs to resume PATCH/solve semantics: the graph, the
// version, the solver parameters, and the last placement. The
// decomposition and warm DP tables are rebuilt by the first
// post-restart solve (a cold fallback, reason "restart").
type sessionSnap struct {
	ID               string               `json:"id"`
	Version          int64                `json:"version"`
	Hierarchy        instio.HierarchySpec `json:"hierarchy"`
	N                int                  `json:"n"`
	Demands          []float64            `json:"demands"`
	Edges            [][3]float64         `json:"edges"`
	Eps              float64              `json:"eps"`
	Trees            int                  `json:"trees"`
	Seed             int64                `json:"seed"`
	FMPasses         int                  `json:"fm_passes"`
	FlowRefine       bool                 `json:"flow_refine"`
	MaxStates        int                  `json:"max_states"`
	LastAssign       []int                `json:"last_assign,omitempty"`
	LastSolveVersion int64                `json:"last_solve_version,omitempty"`
}

// saveSession persists one session's snapshot synchronously (sess.mu
// held by the caller). Persistence is durability, not correctness: a
// failed save is counted and the session keeps serving from memory.
func (s *Server) saveSession(sess *session) {
	if s.sessStore == nil || sess.gone.Load() {
		return
	}
	snap := sessionSnap{
		ID: sess.id, Version: sess.version, Hierarchy: sess.spec,
		N:   sess.g.N(),
		Eps: sess.sv.Eps, Trees: sess.sv.Trees, Seed: sess.sv.Seed,
		FMPasses: sess.sv.FMPasses, FlowRefine: sess.sv.FlowRefine,
		MaxStates:        sess.sv.MaxStates,
		LastAssign:       sess.lastAssign,
		LastSolveVersion: sess.lastSolveVersion,
	}
	for v := 0; v < sess.g.N(); v++ {
		snap.Demands = append(snap.Demands, sess.g.Demand(v))
	}
	for _, e := range sess.g.Edges() {
		snap.Edges = append(snap.Edges, [3]float64{float64(e.U), float64(e.V), e.Weight})
	}
	payload, err := json.Marshal(snap)
	if err == nil {
		err = s.sessStore.Save(sess.id, payload)
	}
	if err != nil {
		s.reg.Counter("session_snapshot_errors_total").Inc()
	}
}

// dropSession finalizes an evicted or deleted session: marks it gone
// (so a racing solve stops persisting it) and removes its snapshot.
func (s *Server) dropSession(sess *session, evicted bool) {
	sess.gone.Store(true)
	if evicted {
		s.reg.Counter("session_evictions_total").Inc()
	}
	if s.sessStore != nil {
		_ = s.sessStore.Delete(sess.id)
	}
}

// restoreSession rebuilds one session from its snapshot payload during
// warm start. Invalid payloads are skipped (counted by the caller);
// restored sessions are cold (needCold, reason "restart") but keep
// their version and last placement, so the first post-restart solve
// still reports migration churn against the pre-restart placement.
func (s *Server) restoreSession(id string, payload []byte) bool {
	var snap sessionSnap
	if err := json.Unmarshal(payload, &snap); err != nil || snap.ID != id || snap.Version < 1 {
		return false
	}
	inst := instio.Instance{Hierarchy: snap.Hierarchy, N: snap.N, Demands: snap.Demands, Edges: snap.Edges}
	g, H, err := inst.Materialize()
	if err != nil || g.N() == 0 {
		return false
	}
	sess := &session{
		id: id, spec: snap.Hierarchy,
		sv: hgp.Solver{
			Eps: snap.Eps, Trees: snap.Trees, Seed: snap.Seed,
			FMPasses: snap.FMPasses, FlowRefine: snap.FlowRefine,
			Workers: s.cfg.SolverWorkers, MaxStates: snap.MaxStates,
		},
		version: snap.Version, g: g, H: H,
		needCold: true, coldReason: coldRestart,
		lastSolveVersion: snap.LastSolveVersion,
	}
	if len(snap.LastAssign) == g.N() {
		sess.lastAssign = metrics.Assignment(snap.LastAssign)
	} else {
		sess.lastSolveVersion = 0
	}
	for _, old := range s.sessions.put(sess) {
		s.dropSession(old, true)
	}
	return true
}

// GraphCreateRequest is the POST /v1/graphs body: the instance to
// register plus the solver parameters every subsequent solve of this
// session will use (fixed at registration so warm DP tables stay valid
// across solves).
type GraphCreateRequest struct {
	instio.Instance
	Eps        float64 `json:"eps,omitempty"`
	Trees      int     `json:"trees,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	FMPasses   int     `json:"fm_passes,omitempty"`
	FlowRefine bool    `json:"flow_refine,omitempty"`
	MaxStates  int     `json:"max_states,omitempty"`
}

// GraphSessionResponse describes a session: returned by registration
// (201), PATCH (200), and GET (200).
type GraphSessionResponse struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	// IncrementalReady reports whether the next solve can take the
	// incremental path (a decomposition exists and no patch forced a
	// cold rebuild).
	IncrementalReady bool `json:"incremental_ready"`
	// PendingDeltas counts structural deltas awaiting the next repair.
	PendingDeltas int `json:"pending_deltas"`
	// LastSolveVersion is the version the last solve answered; 0 when
	// the session has never been solved.
	LastSolveVersion int64 `json:"last_solve_version"`
}

func sessionView(sess *session) GraphSessionResponse {
	return GraphSessionResponse{
		ID: sess.id, Version: sess.version,
		N: sess.g.N(), M: sess.g.M(),
		IncrementalReady: sess.dec != nil && !sess.needCold,
		PendingDeltas:    len(sess.pending),
		LastSolveVersion: sess.lastSolveVersion,
	}
}

func (s *Server) handleGraphCreate(w http.ResponseWriter, r *http.Request) {
	if !s.admitInflight() {
		s.writeShed(w, http.StatusServiceUnavailable, "draining", shedDraining,
			"daemon is draining; retry against another instance", time.Second)
		return
	}
	defer s.inflight.Done()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req GraphCreateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if req.N > s.cfg.MaxVertices {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("graph has %d vertices, server limit is %d", req.N, s.cfg.MaxVertices))
		return
	}
	if len(req.Edges) > s.cfg.MaxEdges {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("graph has %d edges, server limit is %d", len(req.Edges), s.cfg.MaxEdges))
		return
	}
	g, H, err := req.Instance.Materialize()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_instance", err.Error())
		return
	}
	if g.N() == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_instance", "graph has no vertices")
		return
	}
	if req.Eps < 0 || req.Trees < 0 || req.FMPasses < 0 || req.MaxStates < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "negative solver parameter")
		return
	}
	maxStates := req.MaxStates
	if maxStates == 0 || maxStates > s.cfg.MaxStates {
		maxStates = s.cfg.MaxStates
	}
	sess := &session{
		id: newSessionID(), spec: req.Hierarchy,
		sv: hgp.Solver{
			Eps: req.Eps, Trees: req.Trees, Seed: req.Seed,
			FMPasses: req.FMPasses, FlowRefine: req.FlowRefine,
			Workers: s.cfg.SolverWorkers, MaxStates: maxStates,
		},
		version: 1, g: g, H: H,
	}
	for _, old := range s.sessions.put(sess) {
		s.dropSession(old, true)
	}
	s.reg.Counter("session_registers_total").Inc()
	s.reg.Gauge("sessions_active").Set(int64(s.sessions.len()))
	sess.mu.Lock()
	s.saveSession(sess)
	view := sessionView(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, view)
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", "no such graph session")
		return
	}
	sess.mu.Lock()
	view := sessionView(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.remove(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", "no such graph session")
		return
	}
	s.dropSession(sess, false)
	s.reg.Gauge("sessions_active").Set(int64(s.sessions.len()))
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true, "id": sess.id})
}

// GraphDelta is one mutation in a PATCH body. Ops: "add_edge" (u, v,
// weight), "remove_edge" (u, v), "reweight_edge" (u, v, weight),
// "reweight_vertex" (u, weight = new demand), "add_vertex" (weight =
// demand; forces the next solve cold), "remove_vertex" (u; implemented
// as detach-and-zero so vertex IDs stay stable and the delta remains
// repairable).
type GraphDelta struct {
	Op     string  `json:"op"`
	U      int     `json:"u"`
	V      int     `json:"v,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// GraphPatchRequest is the PATCH /v1/graphs/{id} body. Version must
// equal the session's current version — optimistic concurrency; a
// mismatch is 409 and the session is untouched.
type GraphPatchRequest struct {
	Version int64        `json:"version"`
	Deltas  []GraphDelta `json:"deltas"`
}

// expandDelta translates one wire delta into treedecomp deltas against
// the current scratch graph. add_vertex returns (nil, true, nil): it is
// applied directly and forces a cold rebuild.
func expandDelta(g *graph.Graph, d GraphDelta) ([]treedecomp.Delta, bool, error) {
	switch d.Op {
	case "add_edge":
		return []treedecomp.Delta{{Op: treedecomp.DeltaAddEdge, U: d.U, V: d.V, Weight: d.Weight}}, false, nil
	case "remove_edge":
		return []treedecomp.Delta{{Op: treedecomp.DeltaRemoveEdge, U: d.U, V: d.V}}, false, nil
	case "reweight_edge":
		return []treedecomp.Delta{{Op: treedecomp.DeltaReweightEdge, U: d.U, V: d.V, Weight: d.Weight}}, false, nil
	case "reweight_vertex":
		return []treedecomp.Delta{{Op: treedecomp.DeltaReweightVertex, U: d.U, Weight: d.Weight}}, false, nil
	case "add_vertex":
		if d.Weight < 0 {
			return nil, false, fmt.Errorf("add_vertex: negative demand %g", d.Weight)
		}
		return nil, true, nil
	case "remove_vertex":
		if d.U < 0 || d.U >= g.N() {
			return nil, false, fmt.Errorf("remove_vertex: vertex %d out of range", d.U)
		}
		// Detach-and-zero: drop every incident edge and zero the demand.
		// The vertex ID survives (assignments keep their length, repair
		// keeps its stable leaf set); an isolated zero-demand vertex is
		// placement-neutral.
		var out []treedecomp.Delta
		for _, u := range g.SortedNeighbors(d.U) {
			out = append(out, treedecomp.Delta{Op: treedecomp.DeltaRemoveEdge, U: d.U, V: u})
		}
		out = append(out, treedecomp.Delta{Op: treedecomp.DeltaReweightVertex, U: d.U, Weight: 0})
		return out, false, nil
	default:
		return nil, false, fmt.Errorf("unknown op %q", d.Op)
	}
}

func (s *Server) handleGraphPatch(w http.ResponseWriter, r *http.Request) {
	if !s.admitInflight() {
		s.writeShed(w, http.StatusServiceUnavailable, "draining", shedDraining,
			"daemon is draining; retry against another instance", time.Second)
		return
	}
	defer s.inflight.Done()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req GraphPatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Deltas) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "no deltas")
		return
	}
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", "no such graph session")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if req.Version != sess.version {
		s.reg.Counter("session_conflicts_total").Inc()
		s.writeError(w, http.StatusConflict, "version_conflict",
			fmt.Sprintf("request targets version %d, session is at version %d", req.Version, sess.version))
		return
	}
	if err := faultinject.Fire(r.Context(), faultinject.SessionPatch); err != nil {
		// An injected (or real) patch fault leaves the session exactly as
		// it was: same version, same graph, snapshot untouched.
		s.writeError(w, http.StatusInternalServerError, "patch_failed", err.Error())
		return
	}

	// All deltas apply to a scratch clone and swap in atomically: a bad
	// delta anywhere in the batch rejects the whole PATCH with the
	// session unchanged.
	scratch := sess.g.Clone()
	var repairDeltas []treedecomp.Delta
	vertexChange := false
	for i, d := range req.Deltas {
		expanded, addVertex, err := expandDelta(scratch, d)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_delta",
				fmt.Sprintf("delta #%d: %v", i, err))
			return
		}
		if addVertex {
			scratch.AddVertex(d.Weight)
			vertexChange = true
			continue
		}
		if err := treedecomp.Apply(scratch, expanded); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_delta",
				fmt.Sprintf("delta #%d: %v", i, err))
			return
		}
		repairDeltas = append(repairDeltas, expanded...)
	}

	sess.g = scratch
	sess.version++
	if vertexChange {
		sess.needCold = true
		sess.coldReason = coldVertexChange
		sess.pending = nil // repair can't run across a vertex-set change
	} else if !sess.needCold {
		sess.pending = append(sess.pending, repairDeltas...)
	}
	s.reg.Counter("session_patches_total").Inc()
	s.saveSession(sess)
	writeJSON(w, http.StatusOK, sessionView(sess))
}

// GraphPartitionRequest is the optional POST /v1/graphs/{id}/partition
// body. MaxMigration caps how many tasks may change leaves relative to
// the previous placement (0 = unlimited); MigrationWeight charges each
// moved unit of demand against communication-cost gains during the
// reconciliation refinement.
type GraphPartitionRequest struct {
	TimeoutMS       int     `json:"timeout_ms,omitempty"`
	MaxMigration    int     `json:"max_migration,omitempty"`
	MigrationWeight float64 `json:"migration_weight,omitempty"`
}

// GraphPartitionResponse is the session solve's success body.
type GraphPartitionResponse struct {
	GraphID string `json:"graph_id"`
	Version int64  `json:"version"`
	// Assignment places every vertex on a hierarchy leaf; Cost is its
	// Equation (1) objective, Violation the per-level relative capacity
	// violation.
	Assignment []int     `json:"assignment"`
	Cost       float64   `json:"cost"`
	Violation  []float64 `json:"violation"`
	States     int       `json:"states"`
	// Incremental reports that this solve took the repair path:
	// decomposition repaired in place, warm DP tables consulted. When
	// false ColdReason says why the solve ran cold.
	Incremental bool   `json:"incremental"`
	ColdReason  string `json:"cold_reason,omitempty"`
	// Stored marks a replay of the previous solve: the session version
	// has not changed since, so the stored placement is returned without
	// any solving.
	Stored bool `json:"stored,omitempty"`
	// TablesReused / TablesComputed count warm DP table hits vs tables
	// built this solve; DirtyTableFrac = computed / (computed + reused).
	TablesReused   int     `json:"tables_reused"`
	TablesComputed int     `json:"tables_computed"`
	DirtyTableFrac float64 `json:"dirty_table_frac"`
	// RepairReusedFrac is the fraction of decomposition nodes served
	// from the previous generation by the repair (incremental only).
	RepairReusedFrac float64 `json:"repair_reused_frac,omitempty"`
	// WarmBoundedTrees counts trees this solve ran under a certified
	// cost ceiling from the previous solve (reweight-only incremental
	// path); BoundFallbacks counts trees whose ceiling proved too tight
	// and were re-solved unbounded (expected 0 — the certificate is an
	// upper bound by construction).
	WarmBoundedTrees int `json:"warm_bounded_trees,omitempty"`
	BoundFallbacks   int `json:"bound_fallbacks,omitempty"`
	// MovedTasks / MovedDemand measure churn against the previous
	// placement after reconciliation (0 on a first solve).
	MovedTasks  int     `json:"moved_tasks"`
	MovedDemand float64 `json:"moved_demand"`
	// ElapsedMS is wall clock for the whole request; RepairMS covers
	// decomposition repair (or the cold rebuild), SolveMS the DP.
	ElapsedMS float64 `json:"elapsed_ms"`
	RepairMS  float64 `json:"repair_ms"`
	SolveMS   float64 `json:"solve_ms"`
}

func (s *Server) handleGraphPartition(w http.ResponseWriter, r *http.Request) {
	if !s.admitInflight() {
		s.writeShed(w, http.StatusServiceUnavailable, "draining", shedDraining,
			"daemon is draining; retry against another instance", time.Second)
		return
	}
	defer s.inflight.Done()
	start := time.Now()
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", "no such graph session")
		return
	}
	var req GraphPartitionRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if req.TimeoutMS < 0 || req.MaxMigration < 0 || req.MigrationWeight < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "negative parameter")
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Same admission as /v1/partition: the deadline-ordered waiting
	// room, then a solve slot. Session solves share the daemon's solve
	// capacity with one-shot solves.
	s.reg.Gauge("queue_depth").Set(s.queued.Add(1))
	defer func() { s.reg.Gauge("queue_depth").Set(s.queued.Add(-1)) }()
	if err := s.lim.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.reg.Counter("queue_rejections_total").Inc()
			_, inUse, waiting := s.lim.snapshot()
			s.writeShed(w, http.StatusTooManyRequests, "queue_full", shedQueueFull,
				fmt.Sprintf("admission queue full (%d running + %d waiting)", inUse, waiting), time.Second)
		case errors.Is(err, errShedExpired):
			s.reg.Counter("partition_errors_total").Inc()
			s.reg.Counter("deadline_timeouts_total").Inc()
			s.writeShed(w, http.StatusGatewayTimeout, "deadline_exceeded", shedDeadlineExpired,
				fmt.Sprintf("deadline expired in the waiting room after %s; no solve slot was occupied",
					time.Since(start).Round(time.Millisecond)), 0)
		default:
			s.finishTimeout(w, r, ctx, start, "while queued for a solve slot")
		}
		return
	}
	slotStart := time.Now()
	defer func() {
		held := time.Since(slotStart)
		s.lim.release()
		s.lim.observe(held, timeout, ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded))
	}()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gone.Load() {
		s.writeError(w, http.StatusNotFound, "not_found", "graph session was evicted")
		return
	}

	// Stored replay: nothing changed since the last solve and the
	// migration knobs match — return the stored placement verbatim.
	if sess.lastResp != nil && sess.lastSolveVersion == sess.version &&
		sess.lastMaxMig == req.MaxMigration && sess.lastMigWeight == req.MigrationWeight {
		s.reg.Counter("session_stored_hits_total").Inc()
		resp := *sess.lastResp
		resp.Stored = true
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		resp.RepairMS, resp.SolveMS = 0, 0
		s.reg.Counter("http_status_200_total").Inc()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	resp, err := s.sessionSolve(ctx, sess, req)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.finishTimeout(w, r, ctx, start, "during the session solve")
		case strings.Contains(err.Error(), "state budget exceeded"):
			s.reg.Counter("partition_errors_total").Inc()
			s.writeError(w, http.StatusUnprocessableEntity, "state_budget_exceeded", err.Error())
		default:
			s.reg.Counter("partition_errors_total").Inc()
			s.writeError(w, http.StatusInternalServerError, "solve_failed", err.Error())
		}
		return
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	sess.lastResp = resp
	sess.lastMaxMig, sess.lastMigWeight = req.MaxMigration, req.MigrationWeight
	s.saveSession(sess)
	s.reg.Counter("http_status_200_total").Inc()
	s.reg.Histogram("request_seconds").Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, *resp)
}

// sessionSolve runs one solve of the session's current version
// (sess.mu held). The incremental path — repair the decomposition,
// solve with warm tables — degrades to a cold solve on any failure
// that is not a context cancellation; the caller only ever sees an
// error when the cold path itself fails.
func (s *Server) sessionSolve(ctx context.Context, sess *session, req GraphPartitionRequest) (*GraphPartitionResponse, error) {
	sv := sess.sv // copy; TreeCaches attached below

	incremental := sess.dec != nil && !sess.needCold
	coldReason := ""
	if !incremental {
		coldReason = sess.coldReason
		if coldReason == "" {
			coldReason = coldFirstSolve
		}
	}
	var dec *treedecomp.Decomposition
	var rstats *treedecomp.RepairStats
	repairStart := time.Now()
	if incremental {
		rep, st, err := treedecomp.Repair(ctx, sess.g, sess.dec, sess.pending, sv.DecompOptions(), sess.version)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Mid-repair fault (injected or real): fall back to a cold
			// rebuild of the same graph version. The session's old
			// decomposition is untouched — repair works on copies — so
			// the state stays consistent whatever happens next.
			incremental = false
			coldReason = coldRepairFailed
		} else {
			dec, rstats = rep, st
			// Certified warm bounds: valid only for reweight-only delta
			// batches (WarmBoundsAfterRepair returns nil otherwise), and
			// only against the previous solve's costs over the same
			// decomposition the repair started from.
			sv.WarmBounds = hgp.WarmBoundsAfterRepair(sess.lastDPCosts, sess.H, st)
		}
	}
	if !incremental {
		built, err := treedecomp.BuildContext(ctx, sess.g, sv.DecompOptions())
		if err != nil {
			return nil, err
		}
		dec = built
	}
	repairDur := time.Since(repairStart)

	// The warm table caches live as long as the session; a cold rebuild
	// keeps them — table lookups are content-hashed, so any subtree the
	// rebuild happens to reproduce still hits.
	if len(sess.caches) != len(dec.Trees) {
		sess.caches = make([]*hgpt.TableCache, len(dec.Trees))
		for i := range sess.caches {
			sess.caches[i] = hgpt.NewTableCache()
		}
	}
	sv.TreeCaches = sess.caches

	solveStart := time.Now()
	res, err := sv.SolveDecomposition(ctx, sess.g, sess.H, dec)
	if err != nil && ctx.Err() == nil && incremental {
		// The DP over the repaired decomposition failed: retry cold once.
		incremental = false
		coldReason = coldSolveFailed
		rstats = nil
		sv.WarmBounds = nil // bounds certify the repaired trees, not a rebuild
		built, berr := treedecomp.BuildContext(ctx, sess.g, sv.DecompOptions())
		if berr != nil {
			return nil, berr
		}
		dec = built
		if len(sess.caches) != len(dec.Trees) {
			sess.caches = make([]*hgpt.TableCache, len(dec.Trees))
			for i := range sess.caches {
				sess.caches[i] = hgpt.NewTableCache()
			}
			sv.TreeCaches = sess.caches
		}
		res, err = sv.SolveDecomposition(ctx, sess.g, sess.H, dec)
	}
	if err != nil {
		return nil, err
	}
	solveDur := time.Since(solveStart)

	// Reconcile against the previous placement: relabel subtrees to
	// maximize stay-put demand (cost-preserving), optionally refine
	// under the migration exchange rate, then cap churn at MaxMigration.
	assignment := res.Assignment
	cost := res.Cost
	violation := res.Violation
	movedTasks, movedDemand := 0, 0.0
	if len(sess.lastAssign) == sess.g.N() {
		dres, derr := dynamic.Diff(sess.g, sess.H, sess.lastAssign, res.Assignment, dynamic.Options{
			MigrationWeight: req.MigrationWeight,
			MaxMoves:        req.MaxMigration,
			MaxLoad:         sess.maxLoad(),
		})
		if derr == nil {
			assignment = dres.Assignment
			cost = dres.Cost
			movedTasks, movedDemand = dres.MovedTasks, dres.MovedDemand
			violation = metrics.Violation(sess.g, sess.H, assignment)
		}
	}

	sess.dec = dec
	sess.pending = nil
	sess.needCold = false
	sess.coldReason = ""
	sess.lastAssign = assignment
	sess.lastSolveVersion = sess.version
	sess.lastDPCosts = res.PerTreeDPCosts

	warmBounded := 0
	for _, u := range sv.WarmBounds {
		if !math.IsInf(u, 0) && !math.IsNaN(u) {
			warmBounded++
		}
	}
	if incremental {
		s.reg.Counter("incremental_solves_total").Inc()
	} else {
		s.reg.Counter(fmt.Sprintf("cold_fallbacks_total{reason=%q}", coldReason)).Inc()
	}
	if warmBounded > 0 {
		s.reg.Counter("warm_bounded_solves_total").Inc()
	}
	s.reg.Counter("bound_fallbacks_total").Add(int64(res.BoundFallbacks))
	s.reg.Counter("dirty_tables_total").Add(int64(res.TablesComputed))
	s.reg.Counter("reused_tables_total").Add(int64(res.TablesReused))

	dirtyFrac := 0.0
	if total := res.TablesComputed + res.TablesReused; total > 0 {
		dirtyFrac = float64(res.TablesComputed) / float64(total)
	}
	resp := &GraphPartitionResponse{
		GraphID: sess.id, Version: sess.version,
		Assignment: assignment, Cost: cost, Violation: violation,
		States:      res.States,
		Incremental: incremental, ColdReason: coldReason,
		TablesReused: res.TablesReused, TablesComputed: res.TablesComputed,
		DirtyTableFrac: dirtyFrac,
		MovedTasks:     movedTasks, MovedDemand: movedDemand,
		WarmBoundedTrees: warmBounded, BoundFallbacks: res.BoundFallbacks,
		RepairMS: float64(repairDur.Microseconds()) / 1000,
		SolveMS:  float64(solveDur.Microseconds()) / 1000,
	}
	if rstats != nil {
		resp.RepairReusedFrac = rstats.ReusedFrac()
	}
	return resp, nil
}

// sessionsBlock is the always-present `sessions` block of /v1/stats.
// With sessions disabled (-max-sessions < 0) only Enabled renders
// false and the counters stay zero, so dashboards key on one shape.
type sessionsBlock struct {
	Enabled                bool             `json:"enabled"`
	Active                 int64            `json:"active"`
	Capacity               int              `json:"capacity"`
	RegistersTotal         int64            `json:"registers_total"`
	PatchesTotal           int64            `json:"patches_total"`
	ConflictsTotal         int64            `json:"conflicts_total"`
	EvictionsTotal         int64            `json:"evictions_total"`
	StoredHitsTotal        int64            `json:"stored_hits_total"`
	IncrementalSolvesTotal int64            `json:"incremental_solves_total"`
	WarmBoundedSolvesTotal int64            `json:"warm_bounded_solves_total"`
	BoundFallbacksTotal    int64            `json:"bound_fallbacks_total"`
	ColdFallbacks          map[string]int64 `json:"cold_fallbacks"`
	DirtyTablesTotal       int64            `json:"dirty_tables_total"`
	ReusedTablesTotal      int64            `json:"reused_tables_total"`
}

func (s *Server) sessionsStats() sessionsBlock {
	b := sessionsBlock{
		Enabled:                s.sessions != nil,
		Active:                 s.reg.Gauge("sessions_active").Value(),
		RegistersTotal:         s.reg.Counter("session_registers_total").Value(),
		PatchesTotal:           s.reg.Counter("session_patches_total").Value(),
		ConflictsTotal:         s.reg.Counter("session_conflicts_total").Value(),
		EvictionsTotal:         s.reg.Counter("session_evictions_total").Value(),
		StoredHitsTotal:        s.reg.Counter("session_stored_hits_total").Value(),
		IncrementalSolvesTotal: s.reg.Counter("incremental_solves_total").Value(),
		WarmBoundedSolvesTotal: s.reg.Counter("warm_bounded_solves_total").Value(),
		BoundFallbacksTotal:    s.reg.Counter("bound_fallbacks_total").Value(),
		ColdFallbacks:          map[string]int64{},
		DirtyTablesTotal:       s.reg.Counter("dirty_tables_total").Value(),
		ReusedTablesTotal:      s.reg.Counter("reused_tables_total").Value(),
	}
	if s.sessions != nil {
		b.Capacity = s.sessions.cap
	}
	for _, reason := range coldReasons {
		b.ColdFallbacks[reason] = s.reg.Counter(fmt.Sprintf("cold_fallbacks_total{reason=%q}", reason)).Value()
	}
	return b
}

// registerSessionMetrics pre-registers every session series so scrapers
// see them at zero from the first scrape, enabled or not.
func (s *Server) registerSessionMetrics() {
	s.reg.Counter("incremental_solves_total")
	s.reg.Counter("warm_bounded_solves_total")
	s.reg.Counter("bound_fallbacks_total")
	for _, reason := range coldReasons {
		s.reg.Counter(fmt.Sprintf("cold_fallbacks_total{reason=%q}", reason))
	}
	s.reg.Counter("dirty_tables_total")
	s.reg.Counter("reused_tables_total")
	s.reg.Counter("session_registers_total")
	s.reg.Counter("session_patches_total")
	s.reg.Counter("session_conflicts_total")
	s.reg.Counter("session_evictions_total")
	s.reg.Counter("session_stored_hits_total")
	s.reg.Counter("session_snapshot_errors_total")
	s.reg.Gauge("sessions_active")
}
