package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/cache/diskstore"
	"hierpart/internal/faultinject"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/telemetry"
	"hierpart/internal/treedecomp"
)

// swapHandler lets an httptest server exist (and hand out its URL)
// before the Server that will back it does: Config.Peers needs every
// peer's URL, and each peer's URL only exists once its listener is up.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

type testNode struct {
	srv  *Server
	ts   *httptest.Server
	reg  *telemetry.Registry
	url  string
	swap *swapHandler
}

// startTestCluster brings up n in-process daemons that know each other
// as a shard group. mutate may adjust each node's Config before New.
// The helper blocks until every node's health poller has seen every
// peer healthy (unless the poll interval was mutated out of range), so
// tests start from a converged cluster.
func startTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	swaps := make([]*swapHandler, n)
	peers := make([]string, n)
	for i := range nodes {
		sw := &swapHandler{}
		sw.h.Store(http.NotFoundHandler())
		ts := httptest.NewServer(sw)
		swaps[i] = sw
		peers[i] = ts.URL
		nodes[i] = &testNode{ts: ts, url: ts.URL, swap: sw}
	}
	for i := range nodes {
		reg := telemetry.NewRegistry()
		cfg := Config{
			Registry:           reg,
			Peers:              peers,
			Self:               peers[i],
			PeerBackoff:        5 * time.Millisecond,
			PeerHealthInterval: 25 * time.Millisecond,
			ResultCacheEntries: -1,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].srv, nodes[i].reg = s, reg
		swaps[i].h.Store(s.Handler())
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = nd.srv.Shutdown(ctx)
			cancel()
			nd.ts.Close()
		}
	})
	// Converge: a node may have polled a peer's placeholder handler
	// (404 → unroutable) before that peer's Server was swapped in.
	deadline := time.Now().Add(5 * time.Second)
	for _, nd := range nodes {
		if nd.srv.cfg.PeerHealthInterval > time.Second {
			continue // this test runs without gossip; optimistic state stands
		}
		for _, peer := range peers {
			if peer == nd.url {
				continue
			}
			for !nd.srv.cluster.routable(peer) {
				if time.Now().After(deadline) {
					t.Fatalf("cluster did not converge: %s never saw %s healthy", nd.url, peer)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	return nodes
}

// solverFor mirrors handlePartition's solver construction so tests can
// compute the exact cache keys a request will route on.
func solverFor(req PartitionRequest, cfg Config) hgp.Solver {
	maxStates := req.MaxStates
	if maxStates == 0 || maxStates > cfg.MaxStates {
		maxStates = cfg.MaxStates
	}
	return hgp.Solver{
		Eps: req.Eps, Trees: req.Trees, Seed: req.Seed,
		FMPasses: req.FMPasses, FlowRefine: req.FlowRefine,
		MaxStates: maxStates,
	}
}

func decompKeyFor(t *testing.T, req PartitionRequest) string {
	t.Helper()
	g, _, err := req.Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return cache.DecompKey(g, solverFor(req, Config{}.withDefaults()).DecompOptions())
}

func resultKeyFor(t *testing.T, req PartitionRequest) string {
	t.Helper()
	g, H, err := req.Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	sv := solverFor(req, Config{}.withDefaults())
	return cache.ResultKey(g, H, sv.DecompOptions(), sv.Eps, sv.MaxStates)
}

func nodeIndex(nodes []*testNode, url string) int {
	for i, nd := range nodes {
		if nd.url == url {
			return i
		}
	}
	return -1
}

// reqOwnedBy searches seeds until the request's key (decomp or result,
// per keyFn) is owned by nodes[idx] — ownership is a hash, so tests
// steer it by varying the seed.
func reqOwnedBy(t *testing.T, nodes []*testNode, idx int, keyFn func(*testing.T, PartitionRequest) string) PartitionRequest {
	t.Helper()
	for seed := int64(1); seed <= 300; seed++ {
		req := testRequest()
		req.Seed = seed
		owner := nodes[0].srv.cluster.ownerOf(keyFn(t, req))
		if nodeIndex(nodes, owner) == idx {
			return req
		}
	}
	t.Fatalf("no seed in 1..300 lands on node %d", idx)
	return PartitionRequest{}
}

func labeled(reg *telemetry.Registry, name string, labels ...string) int64 {
	return reg.Counter(telemetry.Series(name, labels...)).Value()
}

// waitPushesSettled polls the node's peer_push_inflight gauge to zero —
// the race-free barrier for "every owner-ward push has completed".
func waitPushesSettled(t *testing.T, nd *testNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for nd.reg.Gauge("peer_push_inflight").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer pushes never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// comparable strips the timing and provenance fields that legitimately
// differ between a locally solved response and a peer-served one; what
// remains must be identical to the bit.
func comparable(r PartitionResponse) PartitionResponse {
	r.ElapsedMS, r.DecomposeMS, r.SolveMS = 0, 0, 0
	r.CacheHit, r.ResultCacheHit, r.PeerFetchHit, r.CanonHit = false, false, false, false
	r.Degradation = nil
	return r
}

// A non-owner's miss is served over the wire from the owner's cache:
// one build cluster-wide, bit-identical answers, and the fetched entry
// re-serves locally afterwards.
func TestClusterPeerFetchServesNonOwner(t *testing.T) {
	nodes := startTestCluster(t, 2, nil)
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, other := nodes[0], nodes[1]

	first := decodeResponse(t, postPartition(t, owner.srv.Handler(), req))
	if first.PeerFetchHit {
		t.Fatal("owner's own build must not report a peer fetch")
	}
	if got := owner.reg.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("owner builds = %d, want 1", got)
	}

	rec := postPartition(t, other.srv.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	fetched := decodeResponse(t, rec)
	if !fetched.PeerFetchHit {
		t.Fatalf("non-owner must serve via peer fetch: %+v", fetched)
	}
	if fetched.CacheHit {
		t.Fatal("peer fetch must not masquerade as a local cache hit")
	}
	if !reflect.DeepEqual(comparable(fetched), comparable(first)) {
		t.Fatalf("peer-fetched response diverged:\n%+v\n%+v", comparable(fetched), comparable(first))
	}
	if got := other.reg.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("non-owner built %d decompositions, want 0 (fetched instead)", got)
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "hit"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=hit} = %d, want 1", got)
	}
	// The fetched entry now lives in the non-owner's LRU: a repeat is a
	// plain local hit, no second fetch.
	again := decodeResponse(t, postPartition(t, other.srv.Handler(), req))
	if !again.CacheHit || again.PeerFetchHit {
		t.Fatalf("repeat after fetch: CacheHit=%v PeerFetchHit=%v, want true/false", again.CacheHit, again.PeerFetchHit)
	}
	// Serving the fetch must not distort the owner's cache accounting:
	// Peek is invisible to hits/misses, so the owner still shows only
	// its own cold request (one miss, zero hits).
	if st := owner.srv.dec.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("owner LRU hits/misses = %d/%d, want 0/1 (peer serve must use Peek)", st.Hits, st.Misses)
	}
}

// A non-owner that builds (because the owner had nothing) pushes the
// entry owner-ward, so the owner later serves it from its own cache:
// still one build cluster-wide, just initiated on the "wrong" node.
func TestClusterNonOwnerBuildPushesToOwner(t *testing.T) {
	nodes := startTestCluster(t, 2, nil)
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, other := nodes[0], nodes[1]

	first := decodeResponse(t, postPartition(t, other.srv.Handler(), req))
	if first.PeerFetchHit {
		t.Fatal("owner had nothing; this must have been a local build")
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "miss"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=miss} = %d, want 1 (owner was consulted)", got)
	}
	if got := other.reg.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("non-owner builds = %d, want 1", got)
	}
	waitPushesSettled(t, other)
	if got := labeled(other.reg, "peer_push_total", "outcome", "ok"); got != 1 {
		t.Fatalf("peer_push_total{outcome=ok} = %d, want 1", got)
	}

	warm := decodeResponse(t, postPartition(t, owner.srv.Handler(), req))
	if !warm.CacheHit {
		t.Fatal("owner must hit the pushed entry")
	}
	if got := owner.reg.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("owner rebuilt despite the push: builds = %d, want 0", got)
	}
	if !reflect.DeepEqual(comparable(warm), comparable(first)) {
		t.Fatalf("pushed entry produced a different answer:\n%+v\n%+v", comparable(warm), comparable(first))
	}
}

// An injected corrupt body must be rejected like a damaged snapshot
// file and degrade to the local build — one miss counted, one build,
// a 200 answer, no double accounting.
func TestClusterCorruptPeerBodyFallsBackToLocalBuild(t *testing.T) {
	nodes := startTestCluster(t, 2, nil)
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, other := nodes[0], nodes[1]
	postPartition(t, owner.srv.Handler(), req) // prime the owner

	inj := faultinject.New(1).On(faultinject.PeerFetch, faultinject.Fault{Prob: 1, Count: 1, CorruptBody: true})
	t.Cleanup(faultinject.Activate(inj))

	rec := postPartition(t, other.srv.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.PeerFetchHit {
		t.Fatal("a corrupted fetch must not count as a peer hit")
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "corrupt"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=corrupt} = %d, want 1", got)
	}
	if got := inj.Fires(faultinject.PeerFetch); got != 1 {
		t.Fatalf("injector fired %d times, want 1", got)
	}
	if got := other.reg.Counter("decomp_cache_misses_total").Value(); got != 1 {
		t.Fatalf("decomp_cache_misses_total = %d, want exactly 1 (no double count on fallback)", got)
	}
	if got := other.reg.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("fallback must build locally exactly once, got %d", got)
	}
}

// A dead owner costs retries once, then the per-peer breaker fast-fails
// fetches for its cooldown — and the daemon keeps answering from local
// builds throughout.
func TestClusterDeadPeerOpensBreaker(t *testing.T) {
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		// No gossip, long breaker: this test isolates the breaker path
		// from routing-time health shedding.
		cfg.PeerHealthInterval = time.Hour
		cfg.PeerBreakerCooldown = time.Hour
		cfg.PeerTimeout = 500 * time.Millisecond
		cfg.PeerRetries = 1
	})
	owner, other := nodes[0], nodes[1]
	owner.ts.Close() // SIGKILL stand-in: connections now refuse

	req1 := reqOwnedBy(t, nodes, 0, decompKeyFor)
	rec := postPartition(t, other.srv.Handler(), req1)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d with dead owner, want 200 via local fallback", rec.Code)
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "error"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=error} = %d, want 1", got)
	}
	// retries+1 = 2 consecutive failures < threshold 3: one more fetch
	// (a different key, same dead owner) crosses it.
	var req2 PartitionRequest
	for seed := int64(301); ; seed++ {
		req2 = testRequest()
		req2.Seed = seed
		if other.srv.cluster.ownerOf(decompKeyFor(t, req2)) == owner.url {
			break
		}
	}
	postPartition(t, other.srv.Handler(), req2)
	if got := other.srv.cluster.clients[owner.url].brk.snapshot(); got != breakerOpen {
		t.Fatalf("peer breaker state = %d after repeated failures, want open", got)
	}
	// Third key: the fetch must fast-fail without touching the wire.
	var req3 PartitionRequest
	for seed := int64(601); ; seed++ {
		req3 = testRequest()
		req3.Seed = seed
		if other.srv.cluster.ownerOf(decompKeyFor(t, req3)) == owner.url {
			break
		}
	}
	start := time.Now()
	rec = postPartition(t, other.srv.Handler(), req3)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d under open breaker, want 200", rec.Code)
	}
	if labeled(other.reg, "peer_fetch_total", "outcome", "breaker_open") == 0 {
		t.Fatal("open breaker must be visible in peer_fetch_total{outcome=breaker_open}")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("open-breaker request took %v; fast-fail is the point", elapsed)
	}
}

// Version-skewed peer bytes are rejected exactly like a version-skewed
// snapshot file, on both directions of the wire: a GET response falls
// back to the local build, a PUT is refused with its own error code.
func TestClusterVersionSkewRejected(t *testing.T) {
	// A stub "peer" from a newer/older build: serves frames whose RNG
	// stream version is bumped. Real daemons share this binary's
	// version, so skew must be manufactured.
	skewed := func(payload []byte) []byte {
		raw := diskstore.WrapWire(payload)
		raw[len("HGPSNAP\x01")+4]++ // stream-version field
		return raw
	}
	dec := treedecomp.Build(mustGraph(t), treedecomp.Options{Trees: 1, Seed: 1})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && len(r.URL.Path) > len("/v1/peer/decomp/") {
			w.Write(skewed(diskstore.EncodeDecompEntry(dec, nil)))
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer stub.Close()

	sw := &swapHandler{}
	sw.h.Store(http.NotFoundHandler())
	ts := httptest.NewServer(sw)
	defer ts.Close()
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Registry:           reg,
		Peers:              []string{stub.URL, ts.URL},
		Self:               ts.URL,
		PeerHealthInterval: time.Hour, // stub has no health endpoint; stay optimistic
		ResultCacheEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = s.Shutdown(ctx)
		cancel()
	})
	sw.h.Store(s.Handler())

	// Find a request the stub owns, so the fetch actually goes there.
	var req PartitionRequest
	for seed := int64(1); ; seed++ {
		if seed > 300 {
			t.Fatal("no seed lands on the stub peer")
		}
		req = testRequest()
		req.Seed = seed
		if s.cluster.ownerOf(decompKeyFor(t, req)) == stub.URL {
			break
		}
	}
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via local fallback", rec.Code)
	}
	if got := labeled(reg, "peer_fetch_total", "outcome", "version_mismatch"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=version_mismatch} = %d, want 1", got)
	}

	// PUT direction: the daemon must refuse skewed and corrupt bodies
	// with distinct codes, and accept nothing from either. A fresh key
	// isolates the check from the entry the local fallback just cached.
	key := "ab12" + decompKeyFor(t, req)[4:]
	put := func(body []byte) (*http.Response, apiError) {
		t.Helper()
		preq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/peer/decomp/"+key, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(preq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp, e
	}
	baseLen := s.dec.Len()
	resp, e := put(skewed(diskstore.EncodeDecompEntry(dec, nil)))
	if resp.StatusCode != http.StatusBadRequest || e.Code != "version_mismatch" {
		t.Fatalf("skewed PUT: status %d code %q, want 400 version_mismatch", resp.StatusCode, e.Code)
	}
	good := diskstore.WrapWire(diskstore.EncodeDecompEntry(dec, nil))
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	resp, e = put(bad)
	if resp.StatusCode != http.StatusBadRequest || e.Code != "corrupt_frame" {
		t.Fatalf("corrupt PUT: status %d code %q, want 400 corrupt_frame", resp.StatusCode, e.Code)
	}
	if s.dec.Len() != baseLen {
		t.Fatal("rejected PUTs must not populate the cache")
	}
	// And a healthy PUT lands.
	resp, _ = put(good)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid PUT: status %d, want 204", resp.StatusCode)
	}
	if s.dec.Len() != baseLen+1 {
		t.Fatal("valid PUT must populate the cache")
	}
}

// A draining peer is shed at routing time: gossip reports "draining"
// distinctly from "ok", the poller demotes the peer, and fetches stop
// before they start.
func TestClusterShedsDrainingPeer(t *testing.T) {
	nodes := startTestCluster(t, 2, nil)
	owner, other := nodes[0], nodes[1]

	// Pin the gossip body first: drained daemons must say so.
	getHealth := func(nd *testNode) peerHealthView {
		t.Helper()
		resp, err := http.Get(nd.url + "/v1/peer/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("peer health status = %d, want 200 (the body carries the verdict)", resp.StatusCode)
		}
		var hv peerHealthView
		if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
			t.Fatal(err)
		}
		return hv
	}
	if hv := getHealth(owner); hv.Status != "ok" {
		t.Fatalf("healthy peer reports %q, want ok", hv.Status)
	}
	owner.srv.Drain()
	if hv := getHealth(owner); hv.Status != "draining" {
		t.Fatalf("draining peer reports %q, want draining (distinct from ok)", hv.Status)
	}

	// The poller must demote the owner within a few intervals.
	deadline := time.Now().Add(5 * time.Second)
	for other.srv.cluster.routable(owner.url) {
		if time.Now().After(deadline) {
			t.Fatal("draining peer never shed from routing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	rec := postPartition(t, other.srv.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via local build", rec.Code)
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "peer_unhealthy"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=peer_unhealthy} = %d, want 1", got)
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "error"); got != 0 {
		t.Fatalf("shed fetch must not touch the wire; errors = %d", got)
	}

	// Data endpoints on the draining daemon refuse with 503 + reason.
	resp, err := http.Get(owner.url + "/v1/peer/decomp/" + decompKeyFor(t, req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("peer GET on draining daemon = %d, want 503", resp.StatusCode)
	}
}

// Full solve results travel peer-to-peer too: a result solved on its
// owner is served to a non-owner as a result-cache hit, bit-identical,
// and a non-owner's solve is pushed to the owner.
func TestClusterResultPeerFetchAndPush(t *testing.T) {
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.ResultCacheEntries = 64
	})
	owner, other := nodes[0], nodes[1]

	// Direction 1: owner solves, non-owner fetches.
	req := reqOwnedBy(t, nodes, 0, resultKeyFor)
	first := decodeResponse(t, postPartition(t, owner.srv.Handler(), req))
	rec := postPartition(t, other.srv.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	fetched := decodeResponse(t, rec)
	if !fetched.ResultCacheHit || !fetched.PeerFetchHit {
		t.Fatalf("want a peer-served result-cache hit, got ResultCacheHit=%v PeerFetchHit=%v",
			fetched.ResultCacheHit, fetched.PeerFetchHit)
	}
	if !reflect.DeepEqual(comparable(fetched), comparable(first)) {
		t.Fatalf("peer-served result diverged:\n%+v\n%+v", comparable(fetched), comparable(first))
	}
	if got := other.reg.Counter("decomp_builds_total").Value(); got != 0 {
		t.Fatalf("non-owner ran %d builds for a peer-served result, want 0", got)
	}
	// The fetched result is cached locally: a repeat is a plain hit.
	again := decodeResponse(t, postPartition(t, other.srv.Handler(), req))
	if !again.ResultCacheHit || again.PeerFetchHit {
		t.Fatalf("repeat: ResultCacheHit=%v PeerFetchHit=%v, want true/false", again.ResultCacheHit, again.PeerFetchHit)
	}

	// Direction 2: non-owner solves a key the owner owns; the result is
	// pushed, and the owner answers from cache without solving.
	req2 := reqOwnedBy(t, nodes, 0, resultKeyFor)
	for req2.Seed == req.Seed {
		// Find a different seed also owned by node 0.
		base := req2.Seed
		for seed := base + 1; ; seed++ {
			req2 = testRequest()
			req2.Seed = seed
			if nodeIndex(nodes, nodes[0].srv.cluster.ownerOf(resultKeyFor(t, req2))) == 0 {
				break
			}
		}
	}
	solved := decodeResponse(t, postPartition(t, other.srv.Handler(), req2))
	waitPushesSettled(t, other)
	ownerBuilds := owner.reg.Counter("decomp_builds_total").Value()
	served := decodeResponse(t, postPartition(t, owner.srv.Handler(), req2))
	if !served.ResultCacheHit {
		t.Fatalf("owner must serve the pushed result from cache: %+v", served)
	}
	if got := owner.reg.Counter("decomp_builds_total").Value(); got != ownerBuilds {
		t.Fatal("owner solved despite the pushed result")
	}
	if !reflect.DeepEqual(comparable(served), comparable(solved)) {
		t.Fatalf("pushed result diverged:\n%+v\n%+v", comparable(served), comparable(solved))
	}
}

// The always-present cluster stats block and the single-node shape.
func TestClusterStatsBlock(t *testing.T) {
	nodes := startTestCluster(t, 2, nil)
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	postPartition(t, nodes[0].srv.Handler(), req)
	postPartition(t, nodes[1].srv.Handler(), req)

	rec := httptest.NewRecorder()
	nodes[1].srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Cluster.Enabled {
		t.Fatal("cluster stats must report enabled")
	}
	if stats.Cluster.Self != nodes[1].url {
		t.Fatalf("cluster self = %q, want %q", stats.Cluster.Self, nodes[1].url)
	}
	if len(stats.Cluster.Peers) != 2 {
		t.Fatalf("cluster peers = %d rows, want 2", len(stats.Cluster.Peers))
	}
	if stats.Cluster.FetchHits != 1 {
		t.Fatalf("cluster fetch_hits = %d, want 1", stats.Cluster.FetchHits)
	}
	for _, row := range stats.Cluster.Peers {
		if !row.Healthy {
			t.Fatalf("peer %s reported unhealthy in a healthy cluster", row.Peer)
		}
	}

	// Single-node daemons render the same block, disabled.
	s := newTestServer(t, Config{})
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var solo StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &solo); err != nil {
		t.Fatal(err)
	}
	if solo.Cluster.Enabled {
		t.Fatal("single-node daemon must report cluster disabled")
	}
}

// Config validation: cluster mode demands a self identity inside the
// peer list and a cache to share.
func TestClusterConfigValidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := New(Config{Registry: reg, Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("missing Self must be rejected")
	}
	if _, err := New(Config{Registry: reg, Peers: []string{"http://a:1"}, Self: "http://b:2"}); err == nil {
		t.Fatal("Self outside Peers must be rejected")
	}
	if _, err := New(Config{Registry: reg, Peers: []string{"http://a:1"}, Self: "http://a:1", CacheEntries: -1}); err == nil {
		t.Fatal("cluster mode without caching must be rejected")
	}
	// A scheme-less peer would fail every poll and fetch with
	// "unsupported protocol scheme" — a cluster that sheds every key
	// forever. That misconfiguration must die at startup, not degrade.
	for _, bad := range []string{"a:1", "127.0.0.1:8080", "ftp://a:1", "http://"} {
		if _, err := New(Config{Registry: reg, Peers: []string{bad, "http://b:2"}, Self: "http://b:2"}); err == nil {
			t.Fatalf("peer %q without an http(s) base URL must be rejected", bad)
		}
	}
}

// With a shared secret configured, the peer surface authenticates every
// request: authenticated peers interoperate exactly as before, while a
// client without the secret gets 403 from every peer endpoint and can
// neither read nor poison the caches.
func TestClusterPeerSecretEnforced(t *testing.T) {
	const secret = "soak-test-secret"
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.PeerSecret = secret
	})
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, other := nodes[0], nodes[1]

	// Authenticated path first: the cluster works as without a secret
	// (startTestCluster already proved gossip converges — the pollers
	// authenticate too).
	postPartition(t, owner.srv.Handler(), req)
	fetched := decodeResponse(t, postPartition(t, other.srv.Handler(), req))
	if !fetched.PeerFetchHit {
		t.Fatalf("authenticated peer fetch must work: %+v", fetched)
	}

	key := decompKeyFor(t, req)
	deny := func(method, url string, body []byte, header http.Header) {
		t.Helper()
		var r *http.Request
		if body != nil {
			r, _ = http.NewRequest(method, url, bytes.NewReader(body))
		} else {
			r, _ = http.NewRequest(method, url, nil)
		}
		for k, v := range header {
			r.Header[k] = v
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if resp.StatusCode != http.StatusForbidden || e.Code != "peer_auth" {
			t.Fatalf("%s %s without the secret: status %d code %q, want 403 peer_auth", method, url, resp.StatusCode, e.Code)
		}
	}
	// GET: the entry exists on the owner, but an unauthenticated reader
	// must not see it.
	deny(http.MethodGet, owner.url+"/v1/peer/decomp/"+key, nil, nil)
	// PUT: a structurally valid body under an arbitrary key must bounce
	// off authentication before any validation runs.
	dec := treedecomp.Build(mustGraph(t), treedecomp.Options{Trees: 1, Seed: 1})
	forged := diskstore.WrapWire(diskstore.EncodeDecompEntry(dec, nil))
	forgedKey := "ab12" + key[4:]
	baseLen := owner.srv.dec.Len()
	deny(http.MethodPut, owner.url+"/v1/peer/decomp/"+forgedKey, forged, nil)
	deny(http.MethodPut, owner.url+"/v1/peer/decomp/"+forgedKey, forged,
		http.Header{"X-Hgpd-Peer-Secret": []string{"wrong"}})
	if owner.srv.dec.Len() != baseLen {
		t.Fatal("unauthenticated PUT must not populate the cache")
	}
	// Health gossip is gated too: an unauthenticated prober learns
	// nothing about the daemon's load.
	deny(http.MethodGet, owner.url+"/v1/peer/health", nil, nil)
	if got := owner.reg.Counter("peer_auth_failures_total").Value(); got < 4 {
		t.Fatalf("peer_auth_failures_total = %d, want >= 4", got)
	}
}

// A secret mismatch between peers (half-rotated fleet, operator typo)
// is a deterministic 403: the fetch records one error without burning
// the retry budget, and the request degrades to a local solve.
func TestClusterPeerSecretMismatchFallsBack(t *testing.T) {
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.PeerSecret = "secret-" + string(rune('a'+i)) // distinct per node
		cfg.PeerHealthInterval = time.Hour               // stay optimistic; isolate the fetch path
	})
	req := reqOwnedBy(t, nodes, 0, decompKeyFor)
	owner, other := nodes[0], nodes[1]
	postPartition(t, owner.srv.Handler(), req)

	rec := postPartition(t, other.srv.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via local fallback", rec.Code)
	}
	if resp := decodeResponse(t, rec); resp.PeerFetchHit {
		t.Fatal("a 403ed fetch must not count as a peer hit")
	}
	if got := labeled(other.reg, "peer_fetch_total", "outcome", "error"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=error} = %d, want exactly 1 (403 is deterministic; no retries)", got)
	}
	if got := other.reg.Counter("decomp_builds_total").Value(); got != 1 {
		t.Fatalf("fallback must build locally exactly once, got %d", got)
	}
}

// A pushed result marked Partial violates the result-cache invariant
// (only complete full-pipeline results are cached) and must be refused
// at the trust boundary, not trusted because pushers never send one.
func TestClusterRejectsPartialResultPush(t *testing.T) {
	nodes := startTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.ResultCacheEntries = 64
	})
	owner := nodes[0]
	key := resultKeyFor(t, testRequest())

	partial := &hgp.Result{
		Assignment: []int{0, 1},
		Cost:       1, TreeCost: 1,
		PerTreeCosts: []float64{1},
		Partial:      true,
		TreesDone:    1,
	}
	put := func(res *hgp.Result) (*http.Response, apiError) {
		t.Helper()
		body := diskstore.WrapWire(diskstore.EncodeResult(res))
		preq, _ := http.NewRequest(http.MethodPut, owner.url+"/v1/peer/result/"+key, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(preq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp, e
	}
	resp, e := put(partial)
	if resp.StatusCode != http.StatusBadRequest || e.Code != "partial_result" {
		t.Fatalf("partial push: status %d code %q, want 400 partial_result", resp.StatusCode, e.Code)
	}
	if _, ok := owner.srv.results.Peek(key); ok {
		t.Fatal("rejected partial result must not enter the result cache")
	}
	// The same payload with Partial cleared is a valid push.
	complete := *partial
	complete.Partial = false
	complete.TreesDone = 0
	if resp, e := put(&complete); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("complete push: status %d code %q, want 204", resp.StatusCode, e.Code)
	}
	if _, ok := owner.srv.results.Peek(key); !ok {
		t.Fatal("valid complete push must populate the result cache")
	}
}

// A frame that validates but whose entry payload does not decode is ONE
// corrupt fetch: one peer_fetch_total row (not hit + corrupt), and the
// breaker debited exactly as for a frame-corrupt body.
func TestClusterEntryCorruptFetchCountsOnce(t *testing.T) {
	// A stub "peer" serving well-framed garbage: UnwrapWire passes
	// (checksum and versions are real), DecodeDecompEntry cannot.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/peer/decomp/") {
			w.Write(diskstore.WrapWire([]byte("not a decomposition entry")))
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer stub.Close()

	sw := &swapHandler{}
	sw.h.Store(http.NotFoundHandler())
	ts := httptest.NewServer(sw)
	defer ts.Close()
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Registry:             reg,
		Peers:                []string{stub.URL, ts.URL},
		Self:                 ts.URL,
		PeerHealthInterval:   time.Hour, // stub has no health endpoint; stay optimistic
		PeerBreakerThreshold: 1,         // one corrupt body must open the breaker
		PeerBreakerCooldown:  time.Hour,
		ResultCacheEntries:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = s.Shutdown(ctx)
		cancel()
	})
	sw.h.Store(s.Handler())

	var req PartitionRequest
	for seed := int64(1); ; seed++ {
		if seed > 300 {
			t.Fatal("no seed lands on the stub peer")
		}
		req = testRequest()
		req.Seed = seed
		if s.cluster.ownerOf(decompKeyFor(t, req)) == stub.URL {
			break
		}
	}
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via local fallback", rec.Code)
	}
	if got := labeled(reg, "peer_fetch_total", "outcome", "corrupt"); got != 1 {
		t.Fatalf("peer_fetch_total{outcome=corrupt} = %d, want 1", got)
	}
	if got := labeled(reg, "peer_fetch_total", "outcome", "hit"); got != 0 {
		t.Fatalf("peer_fetch_total{outcome=hit} = %d, want 0 (an entry-corrupt fetch is not a hit)", got)
	}
	if got := s.cluster.clients[stub.URL].brk.snapshot(); got != breakerOpen {
		t.Fatalf("peer breaker state = %d after an entry-corrupt body, want open (corrupt bodies debit the breaker)", got)
	}
}

// A miss storm on one result key costs the owner ONE fetch: concurrent
// identical requests coalesce on the singleflight group before the
// network, so a slow or dying owner pays one round trip, not N.
func TestClusterResultFetchCoalesced(t *testing.T) {
	const storm = 6
	var resultGets atomic.Int64
	release := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/peer/result/") {
			resultGets.Add(1)
			<-release // hold the fetch open until the whole storm is in flight
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer stub.Close()

	sw := &swapHandler{}
	sw.h.Store(http.NotFoundHandler())
	ts := httptest.NewServer(sw)
	defer ts.Close()
	s, err := New(Config{
		Registry:           telemetry.NewRegistry(),
		Peers:              []string{stub.URL, ts.URL},
		Self:               ts.URL,
		PeerHealthInterval: time.Hour,
		ResultCacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = s.Shutdown(ctx)
		cancel()
	})
	sw.h.Store(s.Handler())

	var req PartitionRequest
	for seed := int64(1); ; seed++ {
		if seed > 300 {
			t.Fatal("no seed lands on the stub peer")
		}
		req = testRequest()
		req.Seed = seed
		if s.cluster.ownerOf(resultKeyFor(t, req)) == stub.URL {
			break
		}
	}

	var wg sync.WaitGroup
	codes := make([]int, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postPartition(t, s.Handler(), req).Code
		}(i)
	}
	// Release the held fetch once every storm member has had time to
	// reach the coalescing point; the leader's fetch is still open, so
	// any non-coalesced fetch would already have hit the stub.
	deadline := time.Now().Add(5 * time.Second)
	for resultGets.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("the leader's fetch never reached the stub")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, code)
		}
	}
	if got := resultGets.Load(); got != 1 {
		t.Fatalf("owner saw %d result fetches for one key's miss storm, want 1 (coalesced)", got)
	}
}

func mustGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := testRequest().Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
