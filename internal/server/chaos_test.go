package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hierpart/internal/faultinject"
	"hierpart/internal/metrics"
	"hierpart/internal/telemetry"
)

// waitGoroutines asserts the goroutine count settles back to (near) the
// baseline: solver pools, ladder tiers, and singleflight waiters must
// all terminate once their requests finish. Retries absorb the brief
// tail of goroutines that are mid-exit when a request returns.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
				base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// The chaos battery: the serving path under deterministic injected
// slowdowns, spurious errors, allocation spikes, and mid-DP panics at
// every hook point. The invariants, per the degradation ladder's
// contract: every request gets HTTP 200 with a fully-assigned,
// capacity-feasible partition and a coherent degradation block; the
// deadline is never overshot by more than a poll interval; and no
// goroutines or solve slots leak.
func TestChaosBattery(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Result caching off: warm repeats would otherwise bypass the ladder
	// entirely, and this battery exists to stress the ladder under
	// faults. The result cache has its own httptest suite.
	s := newTestServer(t, Config{Registry: reg, MaxConcurrent: 4, MaxQueue: 64, ResultCacheEntries: -1})
	base := runtime.NumGoroutine()

	injected := errors.New("chaos: injected phase error")
	in := faultinject.New(42).
		On(faultinject.TreedecompSplit, faultinject.Fault{Prob: 0.15, Delay: 5 * time.Millisecond}).
		On(faultinject.TreedecompSplit, faultinject.Fault{Prob: 0.05, Err: injected}).
		On(faultinject.HgptTable, faultinject.Fault{Prob: 0.10, Delay: 2 * time.Millisecond}).
		On(faultinject.HgptTable, faultinject.Fault{Prob: 0.03, PanicMsg: "chaos"}).
		On(faultinject.HgptTable, faultinject.Fault{Prob: 0.05, AllocBytes: 1 << 20}).
		On(faultinject.CacheLookup, faultinject.Fault{Prob: 0.10, Delay: time.Millisecond})
	t.Cleanup(faultinject.Activate(in))

	// The instance has slack: total demand 4.0 over 8 unit leaves, so a
	// capacity-feasible placement always exists for every tier. The DP
	// tiers' bicriteria guarantee is (1+eps) with the default eps = 0.5.
	g, H, err := testRequest().Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}

	const (
		rounds    = 48
		burst     = 8
		timeoutMS = 250
	)
	codes := map[int]int{}
	var mu sync.Mutex
	oneRound := func(seed int64) {
		req := ladderRequest()
		req.Seed = seed // rotate decompositions so cold and warm paths both run
		req.TimeoutMS = timeoutMS
		start := time.Now()
		rec := postPartition(t, s.Handler(), req)
		elapsed := time.Since(start)
		mu.Lock()
		codes[rec.Code]++
		mu.Unlock()
		if rec.Code != http.StatusOK {
			t.Errorf("seed %d: status = %d (body %s)", seed, rec.Code, rec.Body.String())
			return
		}
		// A ladder response may legitimately exceed the deadline by one
		// poll interval (the gap between cancellation checks) while the
		// baseline rung finishes; it must never blow far past it.
		if elapsed > time.Duration(timeoutMS)*time.Millisecond+2*time.Second {
			t.Errorf("seed %d: response took %v against a %dms budget", seed, elapsed, timeoutMS)
		}
		resp := decodeResponse(t, rec)
		a := metrics.Assignment(resp.Assignment)
		if err := a.Validate(g, H); err != nil {
			t.Errorf("seed %d: invalid partition: %v", seed, err)
			return
		}
		if v := metrics.MaxViolation(g, H, a); v > 1.5+1e-9 {
			t.Errorf("seed %d: capacity violation %v beyond the (1+eps) guarantee", seed, v)
		}
		d := resp.Degradation
		if d == nil {
			t.Errorf("seed %d: missing degradation block", seed)
			return
		}
		switch d.Tier {
		case "full_dp", "capped_dp", "baseline":
		default:
			t.Errorf("seed %d: unknown tier %q", seed, d.Tier)
		}
		if d.Degraded != (d.Tier != "full_dp" || d.Partial) {
			t.Errorf("seed %d: incoherent degradation block %+v", seed, d)
		}
	}

	// Sequential rounds, then concurrent bursts: the faults interleave
	// differently but the invariants must hold in both regimes.
	for r := 0; r < rounds/2; r++ {
		oneRound(int64(r % 6))
	}
	var wg sync.WaitGroup
	for r := 0; r < rounds/2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			oneRound(int64(r % burst))
		}()
	}
	wg.Wait()

	if codes[http.StatusGatewayTimeout] != 0 {
		t.Fatalf("got %d 504s; the ladder must degrade, not time out, when any tier can finish", codes[http.StatusGatewayTimeout])
	}
	if codes[http.StatusOK] < rounds*99/100 {
		t.Fatalf("only %d/%d requests returned 200 under chaos: %v", codes[http.StatusOK], rounds, codes)
	}
	// No stuck solve slots or phantom queue entries.
	if _, inUse, waiting := s.lim.snapshot(); inUse != 0 || waiting != 0 {
		t.Fatalf("%d solve slots held, %d waiters queued after the battery", inUse, waiting)
	}
	if q := s.queued.Load(); q != 0 {
		t.Fatalf("queue gauge stuck at %d", q)
	}
	waitGoroutines(t, base)

	// The injector must have actually exercised the hook points — a
	// battery that never fires is vacuous.
	for _, p := range []faultinject.Point{faultinject.TreedecompSplit, faultinject.HgptTable, faultinject.CacheLookup} {
		if in.Visits(p) == 0 {
			t.Errorf("hook point %s was never visited", p)
		}
	}
}

// The cancellation storm: many requests whose clients vanish at random
// moments, racing the solver at every poll point. Run under -race this
// checks for partial-result corruption; afterwards every solve slot
// must be free and a clean request must succeed.
func TestCancellationStorm(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 2, MaxQueue: 64})
	base := runtime.NumGoroutine()

	const storms = 24
	var wg sync.WaitGroup
	for i := 0; i < storms; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := testRequest()
			req.Seed = int64(i % 5)
			req.NoDegrade = i%2 == 0 // storm both serving paths
			body, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%7) * time.Millisecond)
				cancel()
			}()
			rec := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/partition", bytes.NewReader(body)).WithContext(ctx)
			s.Handler().ServeHTTP(rec, r) // must terminate whatever the timing
			switch rec.Code {
			case http.StatusOK, 499:
			default:
				t.Errorf("storm %d: unexpected status %d (body %s)", i, rec.Code, rec.Body.String())
			}
			if rec.Code == http.StatusOK {
				// A 200 that did get produced must still be a complete
				// placement — cancellation must never ship a torn result.
				if resp := decodeResponse(t, rec); len(resp.Assignment) != 8 {
					t.Errorf("storm %d: torn assignment %v", i, resp.Assignment)
				}
			}
		}()
	}
	wg.Wait()

	if _, inUse, waiting := s.lim.snapshot(); inUse != 0 || waiting != 0 {
		t.Fatalf("%d solve slots held, %d waiters queued after the storm", inUse, waiting)
	}
	if q := s.queued.Load(); q != 0 {
		t.Fatalf("queue gauge stuck at %d", q)
	}
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("clean request after the storm: status = %d", rec.Code)
	}
	waitGoroutines(t, base)
}

// The NaN sentinel crosses the API boundary as JSON null: a tree whose
// solve failed is null in per_tree_costs (NaN is unrepresentable in
// JSON), decodes to a nil pointer, and survives a full round trip.
func TestPerTreeCostsNaNSentinelJSONRoundTrip(t *testing.T) {
	restore := faultinject.Activate(
		faultinject.New(11).On(faultinject.HgptTable, faultinject.Fault{Prob: 1, Count: 1, PanicMsg: "one tree dies"}))
	defer restore()

	s := newTestServer(t, Config{})
	req := testRequest()
	req.Trees = 3
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "null") {
		t.Fatalf("failed tree not rendered as JSON null: %s", rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if len(resp.PerTreeCosts) != 3 {
		t.Fatalf("per_tree_costs has %d entries, want 3", len(resp.PerTreeCosts))
	}
	nulls := 0
	for _, c := range resp.PerTreeCosts {
		if c == nil {
			nulls++
		} else if math.IsNaN(*c) || *c < 0 {
			t.Fatalf("present cost %v, want finite non-negative", *c)
		}
	}
	if nulls != 1 {
		t.Fatalf("%d null sentinels, want exactly 1 (the panicked tree)", nulls)
	}
	// Round trip: re-encoding preserves the null (nil pointer → null).
	re, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back PartitionResponse
	if err := json.Unmarshal(re, &back); err != nil {
		t.Fatal(err)
	}
	reNulls := 0
	for _, c := range back.PerTreeCosts {
		if c == nil {
			reNulls++
		}
	}
	if reNulls != 1 {
		t.Fatalf("round trip lost the null sentinel: %d", reNulls)
	}
}
