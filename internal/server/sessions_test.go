package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hierpart/internal/faultinject"
	"hierpart/internal/instio"
	"hierpart/internal/metrics"
	"hierpart/internal/telemetry"
)

// sessionCreateRequest is the session twin of testRequest: the same two
// chatty 4-cliques joined by one weak edge.
func sessionCreateRequest() GraphCreateRequest {
	var req GraphCreateRequest
	req.Hierarchy = instio.HierarchySpec{Deg: []int{2, 4}, CM: []float64{8, 2, 0}}
	req.N = 8
	req.Demands = []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	for b := 0; b < 8; b += 4 {
		for i := b; i < b+4; i++ {
			for j := i + 1; j < b+4; j++ {
				req.Edges = append(req.Edges, [3]float64{float64(i), float64(j), 10})
			}
		}
	}
	req.Edges = append(req.Edges, [3]float64{0, 4, 1})
	req.Seed = 1
	req.Trees = 2
	return req
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, &buf))
	return rec
}

func createSession(t *testing.T, h http.Handler, req GraphCreateRequest) GraphSessionResponse {
	t.Helper()
	rec := doJSON(t, h, http.MethodPost, "/v1/graphs", req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp GraphSessionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" || resp.Version != 1 {
		t.Fatalf("register: bad view %+v", resp)
	}
	return resp
}

func patchSession(t *testing.T, h http.Handler, id string, version int64, deltas ...GraphDelta) GraphSessionResponse {
	t.Helper()
	rec := doJSON(t, h, http.MethodPatch, "/v1/graphs/"+id, GraphPatchRequest{Version: version, Deltas: deltas})
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp GraphSessionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func solveSession(t *testing.T, h http.Handler, id string, body any) GraphPartitionResponse {
	t.Helper()
	rec := doJSON(t, h, http.MethodPost, "/v1/graphs/"+id+"/partition", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("partition: status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp GraphPartitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())

	first := solveSession(t, h, view.ID, nil)
	if first.Incremental || first.ColdReason != coldFirstSolve {
		t.Fatalf("first solve: incremental=%v cold_reason=%q, want cold first_solve", first.Incremental, first.ColdReason)
	}
	if first.MovedTasks != 0 || first.MovedDemand != 0 {
		t.Fatalf("first solve reported churn: %+v", first)
	}
	if len(first.Assignment) != 8 {
		t.Fatalf("assignment has %d entries, want 8", len(first.Assignment))
	}

	// Reweight an intra-clique edge: a single structural delta whose
	// LCA sits deep in the decomposition tree, so repair keeps most
	// nodes and the DP reuses most tables.
	v2 := patchSession(t, h, view.ID, 1, GraphDelta{Op: "reweight_edge", U: 0, V: 1, Weight: 5})
	if v2.Version != 2 || v2.PendingDeltas != 1 || !v2.IncrementalReady {
		t.Fatalf("after patch: %+v", v2)
	}

	second := solveSession(t, h, view.ID, nil)
	if !second.Incremental || second.ColdReason != "" {
		t.Fatalf("second solve: incremental=%v cold_reason=%q, want incremental", second.Incremental, second.ColdReason)
	}
	if second.Version != 2 {
		t.Fatalf("second solve answered version %d, want 2", second.Version)
	}
	if second.TablesReused == 0 {
		t.Fatal("incremental solve reused no DP tables")
	}
	if second.DirtyTableFrac >= 1 {
		t.Fatalf("dirty_table_frac = %v, want < 1", second.DirtyTableFrac)
	}
	if second.RepairReusedFrac <= 0 {
		t.Fatalf("repair_reused_frac = %v, want > 0", second.RepairReusedFrac)
	}

	// The reported cost must be the Equation (1) cost of the reported
	// assignment on the patched graph.
	req := sessionCreateRequest()
	req.Edges[0][2] = 5 // the {0,1} edge is appended first
	g, H, err := req.Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.CostLCA(g, H, metrics.Assignment(second.Assignment))
	if got != second.Cost {
		t.Fatalf("cost = %v, CostLCA of assignment = %v", second.Cost, got)
	}

	// Nothing changed since: the solve replays from the stored response.
	replay := solveSession(t, h, view.ID, nil)
	if !replay.Stored {
		t.Fatal("repeat solve at the same version was not a stored replay")
	}
	if fmt.Sprint(replay.Assignment) != fmt.Sprint(second.Assignment) {
		t.Fatalf("stored replay differs: %v vs %v", replay.Assignment, second.Assignment)
	}

	// Delete, then every route 404s.
	if rec := doJSON(t, h, http.MethodDelete, "/v1/graphs/"+view.ID, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: status = %d", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodGet, "/v1/graphs/"+view.ID, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: status = %d", rec.Code)
	}
}

func TestSessionPatchConflict409(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())

	rec := doJSON(t, h, http.MethodPatch, "/v1/graphs/"+view.ID, GraphPatchRequest{
		Version: 7, Deltas: []GraphDelta{{Op: "reweight_edge", U: 0, V: 4, Weight: 3}},
	})
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale patch: status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var apiErr apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr.Code != "version_conflict" {
		t.Fatalf("stale patch: body = %s", rec.Body.String())
	}
	if got := reg.Counter("session_conflicts_total").Value(); got != 1 {
		t.Fatalf("session_conflicts_total = %d, want 1", got)
	}

	// The conflict left the session untouched: the correctly-versioned
	// patch still applies.
	if rec := doJSON(t, h, http.MethodGet, "/v1/graphs/"+view.ID, nil); rec.Code != http.StatusOK {
		t.Fatal("session vanished after conflict")
	}
	v2 := patchSession(t, h, view.ID, 1, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 3})
	if v2.Version != 2 {
		t.Fatalf("version = %d, want 2", v2.Version)
	}
}

func TestSessionPatchValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())

	cases := []struct {
		name   string
		deltas []GraphDelta
	}{
		{"unknown op", []GraphDelta{{Op: "frobnicate", U: 0}}},
		{"add existing edge", []GraphDelta{{Op: "add_edge", U: 0, V: 4, Weight: 1}}},
		{"remove missing edge", []GraphDelta{{Op: "remove_edge", U: 0, V: 7}}},
		{"vertex out of range", []GraphDelta{{Op: "reweight_vertex", U: 99, Weight: 1}}},
		{"negative demand", []GraphDelta{{Op: "add_vertex", Weight: -1}}},
		{"bad op after good op", []GraphDelta{
			{Op: "reweight_edge", U: 0, V: 4, Weight: 9},
			{Op: "remove_edge", U: 0, V: 7},
		}},
		{"empty batch", nil},
	}
	for _, tc := range cases {
		rec := doJSON(t, h, http.MethodPatch, "/v1/graphs/"+view.ID, GraphPatchRequest{Version: 1, Deltas: tc.deltas})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, body = %s", tc.name, rec.Code, rec.Body.String())
		}
		// Bad batches are atomic: version never moved, even when the
		// batch's first delta was valid.
		var viewNow GraphSessionResponse
		got := doJSON(t, h, http.MethodGet, "/v1/graphs/"+view.ID, nil)
		if err := json.Unmarshal(got.Body.Bytes(), &viewNow); err != nil || viewNow.Version != 1 {
			t.Fatalf("%s: session moved to %+v", tc.name, viewNow)
		}
	}
}

func TestSessionNotFound(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/graphs/deadbeef"},
		{http.MethodDelete, "/v1/graphs/deadbeef"},
		{http.MethodPost, "/v1/graphs/deadbeef/partition"},
	} {
		rec := doJSON(t, h, probe.method, probe.path, nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s %s: status = %d", probe.method, probe.path, rec.Code)
		}
	}
	rec := doJSON(t, h, http.MethodPatch, "/v1/graphs/deadbeef", GraphPatchRequest{
		Version: 1, Deltas: []GraphDelta{{Op: "reweight_vertex", U: 0, Weight: 1}},
	})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("patch unknown: status = %d", rec.Code)
	}
}

// TestSessionPatchFaultLeavesSessionConsistent pins the session.patch
// fault point: an injected fault rejects the PATCH with 500 and the
// session keeps its version and graph exactly as they were.
func TestSessionPatchFaultLeavesSessionConsistent(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())

	injected := errors.New("injected patch fault")
	restore := faultinject.Activate(faultinject.New(1).
		On(faultinject.SessionPatch, faultinject.Fault{Prob: 1, Err: injected}))
	rec := doJSON(t, h, http.MethodPatch, "/v1/graphs/"+view.ID, GraphPatchRequest{
		Version: 1, Deltas: []GraphDelta{{Op: "reweight_edge", U: 0, V: 4, Weight: 5}},
	})
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted patch: status = %d, body = %s", rec.Code, rec.Body.String())
	}

	// Version unchanged, and the same patch (same optimistic version)
	// applies cleanly now that the fault is gone.
	v2 := patchSession(t, h, view.ID, 1, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 5})
	if v2.Version != 2 {
		t.Fatalf("version = %d, want 2", v2.Version)
	}
}

// TestSessionRepairFaultFallsBackCold pins the decomp.repair fault
// point end to end: a mid-repair fault must degrade the solve to a
// cold rebuild of the same session version — a 200 with
// cold_reason=repair_failed, never an error, never a stale version.
func TestSessionRepairFaultFallsBackCold(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())
	solveSession(t, h, view.ID, nil) // warm: dec + tables exist
	patchSession(t, h, view.ID, 1, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 4})

	injected := errors.New("injected repair fault")
	restore := faultinject.Activate(faultinject.New(1).
		On(faultinject.DecompRepair, faultinject.Fault{Prob: 1, Err: injected}))
	resp := solveSession(t, h, view.ID, nil)
	restore()
	if resp.Incremental || resp.ColdReason != coldRepairFailed {
		t.Fatalf("faulted repair: incremental=%v cold_reason=%q, want cold repair_failed", resp.Incremental, resp.ColdReason)
	}
	if resp.Version != 2 {
		t.Fatalf("faulted repair answered version %d, want 2", resp.Version)
	}
	if got := reg.Counter(`cold_fallbacks_total{reason="repair_failed"}`).Value(); got != 1 {
		t.Fatalf("cold_fallbacks_total{repair_failed} = %d, want 1", got)
	}

	// The fallback repaired the session's state wholesale: the next
	// patched solve is incremental again.
	patchSession(t, h, view.ID, 2, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 6})
	after := solveSession(t, h, view.ID, nil)
	if !after.Incremental {
		t.Fatalf("post-fault solve not incremental: %+v", after)
	}
}

// TestSessionVertexChangeForcesCold: adding a vertex cannot be repaired
// (the leaf set changes), so the next solve runs cold under
// reason=vertex_change — and subsequent edge patches are incremental
// again.
func TestSessionVertexChangeForcesCold(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())
	solveSession(t, h, view.ID, nil)

	v2 := patchSession(t, h, view.ID, 1,
		GraphDelta{Op: "add_vertex", Weight: 0.25},
		GraphDelta{Op: "add_edge", U: 8, V: 0, Weight: 3})
	if v2.N != 9 || v2.IncrementalReady {
		t.Fatalf("after add_vertex: %+v", v2)
	}
	resp := solveSession(t, h, view.ID, nil)
	if resp.Incremental || resp.ColdReason != coldVertexChange {
		t.Fatalf("solve after add_vertex: incremental=%v cold_reason=%q", resp.Incremental, resp.ColdReason)
	}
	if len(resp.Assignment) != 9 {
		t.Fatalf("assignment has %d entries, want 9", len(resp.Assignment))
	}

	// remove_vertex detaches and zeroes — repairable, IDs stable.
	v3 := patchSession(t, h, view.ID, 2, GraphDelta{Op: "remove_vertex", U: 8})
	if v3.N != 9 || !v3.IncrementalReady {
		t.Fatalf("after remove_vertex: %+v", v3)
	}
	resp2 := solveSession(t, h, view.ID, nil)
	if !resp2.Incremental {
		t.Fatalf("solve after remove_vertex: %+v", resp2)
	}
}

// TestSessionMaxMigrationCapsMoves: the max_migration knob bounds churn
// against the previous placement, and moved accounting is reported.
func TestSessionMaxMigrationCapsMoves(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())
	solveSession(t, h, view.ID, nil)

	// Invert the structure: make the weak edge dominant so the optimal
	// placement changes substantially.
	deltas := []GraphDelta{{Op: "reweight_edge", U: 0, V: 4, Weight: 100}}
	patchSession(t, h, view.ID, 1, deltas...)

	uncapped := solveSession(t, h, view.ID, GraphPartitionRequest{})
	if uncapped.MovedTasks == 0 {
		t.Skip("structure change moved nothing; nothing to cap")
	}
	// Re-solve the same version with a tighter cap: allowed because the
	// migration knobs differ (no stored replay).
	capped := solveSession(t, h, view.ID, GraphPartitionRequest{MaxMigration: 1})
	if capped.Stored {
		t.Fatal("capped solve replayed the uncapped response")
	}
	if capped.MovedTasks > uncapped.MovedTasks {
		t.Fatalf("cap increased churn: %d > %d", capped.MovedTasks, uncapped.MovedTasks)
	}
}

func TestSessionEvictionLRU(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{MaxSessions: 2, Registry: reg})
	h := s.Handler()
	a := createSession(t, h, sessionCreateRequest())
	b := createSession(t, h, sessionCreateRequest())
	// Touch a so b is the LRU victim when c arrives.
	if rec := doJSON(t, h, http.MethodGet, "/v1/graphs/"+a.ID, nil); rec.Code != http.StatusOK {
		t.Fatal("touch a")
	}
	c := createSession(t, h, sessionCreateRequest())

	if rec := doJSON(t, h, http.MethodGet, "/v1/graphs/"+b.ID, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("b should have been evicted, got %d", rec.Code)
	}
	for _, id := range []string{a.ID, c.ID} {
		if rec := doJSON(t, h, http.MethodGet, "/v1/graphs/"+id, nil); rec.Code != http.StatusOK {
			t.Fatalf("session %s missing after eviction", id)
		}
	}
	if got := reg.Counter("session_evictions_total").Value(); got != 1 {
		t.Fatalf("session_evictions_total = %d, want 1", got)
	}
	if got := reg.Gauge("sessions_active").Value(); got != 2 {
		t.Fatalf("sessions_active = %d, want 2", got)
	}
}

func TestSessionsDisabled(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: -1})
	h := s.Handler()
	rec := doJSON(t, h, http.MethodPost, "/v1/graphs", sessionCreateRequest())
	if rec.Code != http.StatusNotFound {
		t.Fatalf("sessions disabled: POST /v1/graphs = %d, want 404", rec.Code)
	}
	stats := doJSON(t, h, http.MethodGet, "/v1/stats", nil)
	var resp StatsResponse
	if err := json.Unmarshal(stats.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sessions.Enabled {
		t.Fatal("stats report sessions enabled with -max-sessions < 0")
	}
}

// TestSessionStatsBlock: the sessions block is always present and its
// counters track the lifecycle.
func TestSessionStatsBlock(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())
	solveSession(t, h, view.ID, nil)
	patchSession(t, h, view.ID, 1, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 2})
	solveSession(t, h, view.ID, nil)

	var resp StatsResponse
	rec := doJSON(t, h, http.MethodGet, "/v1/stats", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	sb := resp.Sessions
	if !sb.Enabled || sb.Active != 1 || sb.RegistersTotal != 1 || sb.PatchesTotal != 1 {
		t.Fatalf("sessions block: %+v", sb)
	}
	if sb.IncrementalSolvesTotal != 1 || sb.ColdFallbacks[coldFirstSolve] != 1 {
		t.Fatalf("solve split: %+v", sb)
	}
	if sb.ReusedTablesTotal == 0 || sb.DirtyTablesTotal == 0 {
		t.Fatalf("table accounting: %+v", sb)
	}
}

// TestSessionWarmRestart: sessions survive an unclean restart via the
// StateDir snapshots — same ID, same version, same optimistic
// concurrency — and the first post-restart solve runs cold under
// reason=restart while still reporting churn against the pre-restart
// placement.
func TestSessionWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{StateDir: dir})
	h1 := s1.Handler()
	view := createSession(t, h1, sessionCreateRequest())
	before := solveSession(t, h1, view.ID, nil)
	patchSession(t, h1, view.ID, 1, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 3})
	// No Shutdown: simulate SIGKILL. Session saves are synchronous, so
	// the snapshot is already durable.

	s2 := newTestServer(t, Config{StateDir: dir})
	h2 := s2.Handler()
	rec := doJSON(t, h2, http.MethodGet, "/v1/graphs/"+view.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("session lost across restart: %d", rec.Code)
	}
	var reloaded GraphSessionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &reloaded); err != nil {
		t.Fatal(err)
	}
	if reloaded.Version != 2 || reloaded.IncrementalReady {
		t.Fatalf("reloaded view: %+v", reloaded)
	}

	// Stale version still 409s after restart.
	stale := doJSON(t, h2, http.MethodPatch, "/v1/graphs/"+view.ID, GraphPatchRequest{
		Version: 1, Deltas: []GraphDelta{{Op: "reweight_vertex", U: 0, Weight: 1}},
	})
	if stale.Code != http.StatusConflict {
		t.Fatalf("stale patch after restart: %d", stale.Code)
	}

	resp := solveSession(t, h2, view.ID, nil)
	if resp.Incremental || resp.ColdReason != coldRestart {
		t.Fatalf("post-restart solve: incremental=%v cold_reason=%q", resp.Incremental, resp.ColdReason)
	}
	if resp.Version != 2 {
		t.Fatalf("post-restart solve answered version %d, want 2", resp.Version)
	}
	_ = before
	// And the session keeps working: patch + incremental solve.
	patchSession(t, h2, view.ID, 2, GraphDelta{Op: "reweight_edge", U: 0, V: 4, Weight: 5})
	after := solveSession(t, h2, view.ID, nil)
	if !after.Incremental {
		t.Fatalf("second post-restart solve not incremental: %+v", after)
	}
}

// TestSessionConcurrentChurn hammers one session with concurrent
// patches (retrying on 409), solves, reads, and a competing register
// stream under -race. Invariant: every accepted patch bumps the
// version exactly once, and the final version equals 1 + accepted.
func TestSessionConcurrentChurn(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 4})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())

	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			version := int64(1)
			for i := 0; i < 6; i++ {
				weight := float64(2 + w + i)
				rec := doJSON(t, h, http.MethodPatch, "/v1/graphs/"+view.ID, GraphPatchRequest{
					Version: version,
					Deltas:  []GraphDelta{{Op: "reweight_edge", U: 0, V: 4, Weight: weight}},
				})
				switch rec.Code {
				case http.StatusOK:
					var v GraphSessionResponse
					_ = json.Unmarshal(rec.Body.Bytes(), &v)
					version = v.Version
					mu.Lock()
					accepted++
					mu.Unlock()
				case http.StatusConflict:
					var g GraphSessionResponse
					got := doJSON(t, h, http.MethodGet, "/v1/graphs/"+view.ID, nil)
					_ = json.Unmarshal(got.Body.Bytes(), &g)
					version = g.Version
				default:
					t.Errorf("patch: unexpected status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				rec := doJSON(t, h, http.MethodPost, "/v1/graphs/"+view.ID+"/partition", nil)
				if rec.Code != http.StatusOK {
					t.Errorf("partition: status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			other := createSession(t, h, sessionCreateRequest())
			doJSON(t, h, http.MethodDelete, "/v1/graphs/"+other.ID, nil)
		}
	}()
	wg.Wait()

	var final GraphSessionResponse
	rec := doJSON(t, h, http.MethodGet, "/v1/graphs/"+view.ID, nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &final); err != nil {
		t.Fatal(err)
	}
	if final.Version != int64(1+accepted) {
		t.Fatalf("final version %d, want 1+%d accepted patches", final.Version, accepted)
	}
}

// TestSessionWarmBoundedSolve pins the certified-bound fast path: a
// reweight-only patch lets every tree solve under a cost ceiling
// derived from the previous solve (warm_bounded_trees == trees, no
// fallbacks), while a structural or demand-touching batch invalidates
// the certificate and solves unbounded — still incremental, still
// correct, just without the pruning accelerator.
func TestSessionWarmBoundedSolve(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	view := createSession(t, h, sessionCreateRequest())

	first := solveSession(t, h, view.ID, nil)
	if first.WarmBoundedTrees != 0 {
		t.Fatalf("first (cold) solve reported warm bounds: %+v", first)
	}

	// Reweight-only batch: both trees certified.
	patchSession(t, h, view.ID, 1,
		GraphDelta{Op: "reweight_edge", U: 0, V: 1, Weight: 5},
		GraphDelta{Op: "reweight_edge", U: 4, V: 5, Weight: 12})
	second := solveSession(t, h, view.ID, nil)
	if !second.Incremental {
		t.Fatalf("reweight solve not incremental: %+v", second)
	}
	if second.WarmBoundedTrees != 2 {
		t.Fatalf("warm_bounded_trees = %d, want 2", second.WarmBoundedTrees)
	}
	if second.BoundFallbacks != 0 {
		t.Fatalf("certified bound fell back %d times, want 0", second.BoundFallbacks)
	}
	// The bounded placement must cost exactly its own CostLCA on the
	// patched graph (the response invariant the lifecycle test pins for
	// the unbounded path).
	req := sessionCreateRequest()
	req.Edges[0][2] = 5
	req.Edges[6][2] = 12 // {4,5} is the 7th edge appended (after clique 0's six)
	g, H, err := req.Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.CostLCA(g, H, metrics.Assignment(second.Assignment)); got != second.Cost {
		t.Fatalf("cost = %v, CostLCA of assignment = %v", second.Cost, got)
	}

	// Structural delta in the batch: no certificate, unbounded solve.
	patchSession(t, h, view.ID, 2,
		GraphDelta{Op: "reweight_edge", U: 2, V: 3, Weight: 7},
		GraphDelta{Op: "add_edge", U: 1, V: 5, Weight: 2})
	third := solveSession(t, h, view.ID, nil)
	if !third.Incremental {
		t.Fatalf("structural solve not incremental: %+v", third)
	}
	if third.WarmBoundedTrees != 0 {
		t.Fatalf("structural batch still warm-bounded: %+v", third)
	}

	// Demand change: feasibility of the previous family is no longer
	// guaranteed, so again no certificate.
	patchSession(t, h, view.ID, 3, GraphDelta{Op: "reweight_vertex", U: 0, Weight: 0.25})
	fourth := solveSession(t, h, view.ID, nil)
	if !fourth.Incremental || fourth.WarmBoundedTrees != 0 {
		t.Fatalf("demand batch: incremental=%v warm_bounded_trees=%d, want incremental unbounded",
			fourth.Incremental, fourth.WarmBoundedTrees)
	}

	// Back to pure reweights: the certificate chains off the previous
	// bounded solve's exact optimum.
	patchSession(t, h, view.ID, 4, GraphDelta{Op: "reweight_edge", U: 0, V: 1, Weight: 9})
	fifth := solveSession(t, h, view.ID, nil)
	if fifth.WarmBoundedTrees != 2 || fifth.BoundFallbacks != 0 {
		t.Fatalf("chained reweight solve: %+v", fifth)
	}

	stats := s.sessionsStats()
	if stats.WarmBoundedSolvesTotal != 2 {
		t.Fatalf("warm_bounded_solves_total = %d, want 2", stats.WarmBoundedSolvesTotal)
	}
	if stats.BoundFallbacksTotal != 0 {
		t.Fatalf("bound_fallbacks_total = %d, want 0", stats.BoundFallbacksTotal)
	}
}
