package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hierpart/internal/instio"
	"hierpart/internal/telemetry"
)

// heavyRequest is a 32-vertex no-degrade instance big enough that a real
// solve costs visible wall-clock: four dense 8-cliques joined by a weak
// ring, so the decomposition and DP both do real work.
func heavyRequest() PartitionRequest {
	var req PartitionRequest
	req.Hierarchy = instio.HierarchySpec{Deg: []int{2, 4}, CM: []float64{8, 2, 0}}
	req.N = 32
	for i := 0; i < 32; i++ {
		req.Demands = append(req.Demands, 0.1)
	}
	for b := 0; b < 32; b += 8 {
		for i := b; i < b+8; i++ {
			for j := i + 1; j < b+8; j++ {
				req.Edges = append(req.Edges, [3]float64{float64(i), float64(j), 10})
			}
		}
	}
	for b := 0; b < 32; b += 8 {
		req.Edges = append(req.Edges, [3]float64{float64(b), float64((b + 8) % 32), 1})
	}
	req.Seed = 1
	req.Trees = 3
	req.NoDegrade = true
	return req
}

// The acceptance criterion for the result cache: a repeat of an
// identical request is answered from memory — marked result_cache_hit,
// bit-identical to the cold answer, with zero decompose/solve time and
// at least a 10x wall-clock win.
func TestResultCacheWarmRepeatIsTenTimesFaster(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	req := heavyRequest()
	coldStart := time.Now()
	coldRec := postPartition(t, s.Handler(), req)
	coldDur := time.Since(coldStart)
	if coldRec.Code != http.StatusOK {
		t.Fatalf("cold status = %d, body = %s", coldRec.Code, coldRec.Body.String())
	}
	cold := decodeResponse(t, coldRec)
	if cold.ResultCacheHit {
		t.Fatal("cold request must not be a result-cache hit")
	}

	// Min over a few repeats: the point is the steady-state warm cost,
	// not one unlucky scheduler hiccup on a loaded box.
	warmDur := time.Hour
	var warm PartitionResponse
	for i := 0; i < 3; i++ {
		warmStart := time.Now()
		warmRec := postPartition(t, s.Handler(), req)
		d := time.Since(warmStart)
		if warmRec.Code != http.StatusOK {
			t.Fatalf("warm status = %d, body = %s", warmRec.Code, warmRec.Body.String())
		}
		warm = decodeResponse(t, warmRec)
		if !warm.ResultCacheHit {
			t.Fatalf("warm repeat %d not served from the result cache", i)
		}
		if d < warmDur {
			warmDur = d
		}
	}

	// The cached answer is the cold answer, verbatim.
	if fmt.Sprint(warm.Assignment) != fmt.Sprint(cold.Assignment) {
		t.Fatalf("warm assignment %v != cold %v", warm.Assignment, cold.Assignment)
	}
	if warm.Cost != cold.Cost || warm.TreeCost != cold.TreeCost || warm.TreeIndex != cold.TreeIndex {
		t.Fatalf("warm (cost %v, tree_cost %v, tree %d) != cold (%v, %v, %d)",
			warm.Cost, warm.TreeCost, warm.TreeIndex, cold.Cost, cold.TreeCost, cold.TreeIndex)
	}
	// A hit never touched the decomposition cache or the DP.
	if warm.CacheHit || warm.DecomposeMS != 0 || warm.SolveMS != 0 {
		t.Fatalf("warm hit reports cache_hit=%v decompose_ms=%v solve_ms=%v, want false/0/0",
			warm.CacheHit, warm.DecomposeMS, warm.SolveMS)
	}

	if coldDur < 10*warmDur {
		t.Fatalf("warm repeat %v is only %.1fx faster than cold %v, want >= 10x",
			warmDur, float64(coldDur)/float64(warmDur), coldDur)
	}

	if got := reg.Counter("result_cache_hits_total").Value(); got != 3 {
		t.Fatalf("result_cache_hits_total = %d, want 3", got)
	}
	if got := reg.Counter("result_cache_misses_total").Value(); got != 1 {
		t.Fatalf("result_cache_misses_total = %d, want 1", got)
	}
	if got := reg.Counter("result_cache_inserts_total").Value(); got != 1 {
		t.Fatalf("result_cache_inserts_total = %d, want 1", got)
	}
}

// Any parameter that shapes the answer must miss the cache; a repeat of
// each changed request then hits its own entry.
func TestResultCacheInvalidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	warmUp := func(req PartitionRequest) {
		if rec := postPartition(t, s.Handler(), req); rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
		}
	}
	warmUp(testRequest())

	variants := map[string]PartitionRequest{}
	base := testRequest()
	v := base
	v.Eps = 0.7
	variants["eps"] = v
	v = base
	v.Trees = 3
	variants["trees"] = v
	v = base
	v.Seed = 99
	variants["seed"] = v
	v = base
	v.FMPasses = 2
	variants["fm_passes"] = v
	v = base
	v.MaxStates = 1_000_000
	variants["max_states"] = v
	v = base
	v.Hierarchy = instio.HierarchySpec{Deg: []int{2, 4}, CM: []float64{16, 2, 0}}
	variants["hierarchy_cm"] = v

	for name, req := range variants {
		resp := decodeResponse(t, postPartition(t, s.Handler(), req))
		if resp.ResultCacheHit {
			t.Fatalf("changed %s must miss the result cache", name)
		}
		resp = decodeResponse(t, postPartition(t, s.Handler(), req))
		if !resp.ResultCacheHit {
			t.Fatalf("repeat of changed %s must hit the result cache", name)
		}
	}

	// And the unchanged base request still hits its original entry.
	resp := decodeResponse(t, postPartition(t, s.Handler(), testRequest()))
	if !resp.ResultCacheHit {
		t.Fatal("unchanged repeat must hit the result cache")
	}
}

// A degraded ladder answer never enters the result cache: the next
// caller with a working backend gets the full-quality solve, not a
// replay of the baseline placement.
func TestResultCacheSkipsDegradedResults(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	real := s.solve
	s.solve = blockingSolve(nil, nil) // DP tiers hang until their ctx dies
	req := ladderRequest()
	req.TimeoutMS = 100
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Degradation == nil || !resp.Degradation.Degraded {
		t.Fatalf("degradation = %+v, want a degraded baseline win", resp.Degradation)
	}
	if got := reg.Counter("result_cache_inserts_total").Value(); got != 0 {
		t.Fatalf("degraded result was inserted into the result cache (inserts = %d)", got)
	}

	// Backend restored: the identical request must re-solve, not hit.
	s.solve = real
	req.TimeoutMS = 0
	resp = decodeResponse(t, postPartition(t, s.Handler(), req))
	if resp.ResultCacheHit {
		t.Fatal("repeat after a degraded answer must not be a result-cache hit")
	}
	if resp.Degradation == nil || resp.Degradation.Tier != "full_dp" || resp.Degradation.Degraded {
		t.Fatalf("degradation = %+v, want undegraded full_dp", resp.Degradation)
	}
	if got := reg.Counter("result_cache_inserts_total").Value(); got != 1 {
		t.Fatalf("result_cache_inserts_total = %d, want 1 after the full-quality solve", got)
	}
	// Now the full-quality answer is cached.
	if resp = decodeResponse(t, postPartition(t, s.Handler(), req)); !resp.ResultCacheHit {
		t.Fatal("repeat of the full-quality solve must hit")
	}
}

// The result_cache stats block and its counters surface through
// /v1/stats in both output formats.
func TestResultCacheStatsBlock(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	for i := 0; i < 2; i++ {
		if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
		}
	}

	var st StatsResponse
	if err := json.Unmarshal(getPath(s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ResultCache == nil {
		t.Fatal("stats missing result_cache block")
	}
	if st.ResultCache.Hits != 1 || st.ResultCache.Misses != 1 || st.ResultCache.Len != 1 {
		t.Fatalf("result_cache stats = %+v, want 1 hit / 1 miss / 1 entry", st.ResultCache)
	}
	if st.ResultCache.Capacity != 256 {
		t.Fatalf("result_cache capacity = %d, want the 256 default", st.ResultCache.Capacity)
	}
	if st.ResultCache.HitRatio != 0.5 {
		t.Fatalf("result_cache hit_ratio = %v, want 0.5", st.ResultCache.HitRatio)
	}
	if st.Metrics.Counters["result_cache_hits_total"] != 1 ||
		st.Metrics.Counters["result_cache_misses_total"] != 1 ||
		st.Metrics.Counters["result_cache_inserts_total"] != 1 {
		t.Fatalf("result-cache counters missing from metrics: %v", st.Metrics.Counters)
	}
	prom := getPath(s, "/v1/stats?format=prometheus").Body.String()
	for _, want := range []string{
		"result_cache_hits_total 1",
		"result_cache_misses_total 1",
		"result_cache_inserts_total 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}

	// Disabled cache: no block, no counters ticked.
	s2 := newTestServer(t, Config{Registry: telemetry.NewRegistry(), ResultCacheEntries: -1})
	if rec := postPartition(t, s2.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var st2 StatsResponse
	if err := json.Unmarshal(getPath(s2, "/v1/stats").Body.Bytes(), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ResultCache != nil {
		t.Fatalf("disabled result cache still reports a stats block: %+v", st2.ResultCache)
	}
}

// Identical concurrent misses coalesce onto one solve: every
// non-leader is accounted for as either coalesced (joined the flight)
// or a hit (arrived after the leader populated the cache).
func TestResultCacheCoalescesConcurrentRepeats(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg, MaxConcurrent: 8, MaxQueue: 32})

	started := make(chan struct{}, 16)
	release := make(chan struct{})
	s.solve = blockingSolve(started, release)

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = postPartition(t, s.Handler(), testRequest()).Code
		}()
	}
	// Let the leader enter the solve and the rest of the herd pile up in
	// the flight, then release everyone at once.
	<-started
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, c)
		}
	}
	// Drain the started channel: total sends = number of real solves.
	solves := 1
	for {
		select {
		case <-started:
			solves++
			continue
		default:
		}
		break
	}
	coalesced := reg.Counter("result_coalesced_total").Value()
	hits := reg.Counter("result_cache_hits_total").Value()
	if int(coalesced+hits)+solves != n {
		t.Fatalf("coalesced (%d) + hits (%d) + solves (%d) = %d, want %d requests accounted for",
			coalesced, hits, solves, int(coalesced+hits)+solves, n)
	}
	if solves != 1 {
		t.Fatalf("backend solved %d times for %d identical concurrent requests, want 1", solves, n)
	}
}
