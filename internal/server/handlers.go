package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"hierpart/internal/anytime"
	"hierpart/internal/cache"
	"hierpart/internal/canon"
	"hierpart/internal/faultinject"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/instio"
	"hierpart/internal/telemetry"
)

// PartitionRequest is the POST /v1/partition body: an instio.Instance
// (graph + hierarchy + cost multipliers) plus solver parameters and an
// optional per-request deadline. Zero-valued solver fields take the
// hgp.Solver defaults (Eps 0.5, Trees 4, FMPasses 4).
type PartitionRequest struct {
	instio.Instance
	Eps        float64 `json:"eps,omitempty"`
	Trees      int     `json:"trees,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	FMPasses   int     `json:"fm_passes,omitempty"`
	FlowRefine bool    `json:"flow_refine,omitempty"`
	MaxStates  int     `json:"max_states,omitempty"`
	// TimeoutMS bounds this request's wall-clock budget; 0 uses the
	// server default, values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoDegrade opts this request out of the degradation ladder: only
	// the full pipeline runs, and a missed deadline is a 504 rather
	// than a degraded 200. Use it when a lower-quality placement is
	// worse than no placement (e.g. offline jobs that will simply
	// retry with a bigger budget).
	NoDegrade bool `json:"no_degrade,omitempty"`
}

// PartitionResponse is the POST /v1/partition success body.
type PartitionResponse struct {
	// Assignment places every graph vertex on a hierarchy leaf.
	Assignment []int `json:"assignment"`
	// Cost is the Equation (1) objective of the placement on G.
	Cost float64 `json:"cost"`
	// TreeCost is the winning tree's Equation (3) cost (≥ Cost for
	// normalized cm, Proposition 1).
	TreeCost float64 `json:"tree_cost"`
	// TreeIndex identifies the winning decomposition tree.
	TreeIndex int `json:"tree_index"`
	// PerTreeCosts is the mapped cost of every tree's solution; null
	// marks a tree that produced no cost — either its solve failed (NaN
	// in hgp.Result.PerTreeCosts) or the portfolio's incumbent bound
	// pruned it (+Inf); neither sentinel is representable in JSON.
	// TreesPruned says how many nulls are prunes rather than failures.
	PerTreeCosts []*float64 `json:"per_tree_costs"`
	// TreesPruned counts trees skipped by portfolio pruning (their
	// finished placements provably could not have won); omitted when
	// zero.
	TreesPruned int `json:"trees_pruned,omitempty"`
	// Violation is the per-level relative capacity violation.
	Violation []float64 `json:"violation"`
	// States is the total DP state count across trees.
	States int `json:"states"`
	// CacheHit reports whether the decomposition came from the LRU —
	// when true the embed phase was skipped entirely.
	CacheHit bool `json:"cache_hit"`
	// ResultCacheHit reports that the entire solve was answered from the
	// full-result cache: no admission, no decomposition, no DP. CacheHit
	// is false on such responses (the decomposition cache was never
	// consulted), and DecomposeMS/SolveMS are 0.
	ResultCacheHit bool `json:"result_cache_hit,omitempty"`
	// PeerFetchHit reports that the answer's expensive artifact came
	// over the wire from its cluster owner instead of local work: the
	// decomposition (CacheHit false — the local LRU missed) or, with
	// ResultCacheHit true, the entire result. Bodies are bit-identical
	// to the locally produced equivalent; this flag is observability,
	// not a quality marker. Coalesced waiters behind a fetching request
	// do not set it.
	PeerFetchHit bool `json:"peer_fetch_hit,omitempty"`
	// CanonHit reports that this request canonicalized (-canon) and was
	// answered from a cache keyed by the label-invariant fingerprint —
	// either a decomposition hit (CacheHit) or a full-result hit
	// (ResultCacheHit). The hit may have been written by a different
	// user's isomorphic submission; the assignment was translated back
	// through this request's own permutation.
	CanonHit bool `json:"canon_hit,omitempty"`
	// ElapsedMS, DecomposeMS, SolveMS are wall-clock phase timings;
	// DecomposeMS is 0 on a cache hit. For a ladder response they
	// describe the winning tier (0/0 for a baseline win — that tier
	// has no decompose or DP phase).
	ElapsedMS   float64 `json:"elapsed_ms"`
	DecomposeMS float64 `json:"decompose_ms"`
	SolveMS     float64 `json:"solve_ms"`
	// Degradation reports how the anytime ladder resolved this request;
	// omitted when the request opted out with no_degrade (or the daemon
	// disables degradation).
	Degradation *DegradationResponse `json:"degradation,omitempty"`
}

// DegradationResponse is the `degradation` block of a ladder response:
// which tier produced the placement, whether that is a degradation from
// the full pipeline, and the per-tier post-mortems.
type DegradationResponse struct {
	// Tier names the rung that produced the returned placement:
	// "full_dp", "capped_dp", or "baseline".
	Tier string `json:"tier"`
	// Degraded is true when the caller got anything less than the full
	// pipeline's complete answer.
	Degraded bool `json:"degraded"`
	// Partial marks a full_dp result assembled from the trees that
	// finished before the deadline (TreesDone of them) rather than all
	// requested trees.
	Partial   bool `json:"partial,omitempty"`
	TreesDone int  `json:"trees_done,omitempty"`
	// Tiers holds one report per ladder rung, in tier order.
	Tiers []anytime.TierReport `json:"tiers"`
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	if !s.admitInflight() {
		s.writeShed(w, http.StatusServiceUnavailable, "draining", shedDraining,
			"daemon is draining; retry against another instance", time.Second)
		return
	}
	defer s.inflight.Done()
	start := time.Now()
	s.reg.Counter("partition_requests_total").Inc()

	// Decode and validate before consuming any queue capacity: malformed
	// requests must not push well-formed ones into load shedding.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req PartitionRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if req.N > s.cfg.MaxVertices {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("graph has %d vertices, server limit is %d", req.N, s.cfg.MaxVertices))
		return
	}
	if len(req.Edges) > s.cfg.MaxEdges {
		s.writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("graph has %d edges, server limit is %d", len(req.Edges), s.cfg.MaxEdges))
		return
	}
	g, H, err := req.Instance.Materialize()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_instance", err.Error())
		return
	}
	if g.N() == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_instance", "graph has no vertices")
		return
	}
	if req.Eps < 0 || req.Trees < 0 || req.FMPasses < 0 || req.MaxStates < 0 || req.TimeoutMS < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "negative solver parameter")
		return
	}

	maxStates := req.MaxStates
	if maxStates == 0 || maxStates > s.cfg.MaxStates {
		maxStates = s.cfg.MaxStates
	}
	sv := hgp.Solver{
		Eps: req.Eps, Trees: req.Trees, Seed: req.Seed,
		FMPasses: req.FMPasses, FlowRefine: req.FlowRefine,
		Workers: s.cfg.SolverWorkers, MaxStates: maxStates,
		SequentialPortfolio: s.cfg.SerialPortfolio,
	}

	// Canonicalization: map the submission to its canonical vertex
	// ordering so every cache below keys on the label-invariant
	// fingerprint and the solver runs in canonical space. A refusal
	// (large automorphism class, exhausted tie-break budget) falls back
	// to the label-sensitive keys — a missed cross-user hit, never a
	// wrong one.
	var cn *canon.Form
	gSolve := g
	if s.cfg.Canon {
		s.reg.Counter("canon_attempts_total").Inc()
		if f, ok := canon.Canonicalize(g); ok {
			s.reg.Counter("canon_ok_total").Inc()
			cn = f
			gSolve = f.Graph
		} else {
			s.reg.Counter("canon_fallback_total").Inc()
		}
	}

	// Result-cache precheck, before any admission cost is paid: a repeat
	// of a completed full-quality solve is served straight from memory —
	// no breaker probe, no queue slot, no decomposition, no DP. The key
	// (cache.ResultKey, or cache.ResultKeyCanon once canonicalized)
	// covers everything that shapes the returned placement; Workers is
	// excluded because results are bit-identical at every worker count.
	var rkey string
	if s.results != nil {
		if cn != nil {
			rkey = cache.ResultKeyCanon(cn.Fingerprint, H, sv.DecompOptions(), sv.Eps, sv.MaxStates)
		} else {
			rkey = cache.ResultKey(g, H, sv.DecompOptions(), sv.Eps, sv.MaxStates)
		}
		if v, ok := s.results.Get(rkey); ok {
			s.reg.Counter("result_cache_hits_total").Inc()
			s.writePartitionOK(w, start, v.(*hgp.Result), false, true, false, 0, 0, nil, cn)
			return
		}
		s.reg.Counter("result_cache_misses_total").Inc()
		// Cluster mode: the key's owner may have solved this exact
		// request already. A validated peer result is inserted locally
		// (repeat requests here become plain result-cache hits) and
		// rendered through the same path as a local result-cache hit,
		// so the body is bit-identical to one. Any failure — miss,
		// dead owner, corrupt frame — falls through to a local solve.
		// The fetch runs inside the singleflight group (keyed apart from
		// the solve coalescing below) so a miss storm on one key costs
		// the owner one network round trip, not N concurrent fetches
		// each paying timeout × retries against a slow peer.
		if s.cluster != nil {
			v, shared, ferr := s.rflight.Do(r.Context(), rkey+"|peerfetch", func() (any, error) {
				res, ok := s.cluster.fetchResult(r.Context(), rkey)
				if !ok {
					return (*hgp.Result)(nil), nil
				}
				s.results.Add(rkey, res)
				return res, nil
			})
			if ferr == nil {
				if res, _ := v.(*hgp.Result); res != nil {
					// Coalesced waiters share the fetched result, but only
					// the fetching request reports peer_fetch_hit —
					// mirroring the decomposition path's attribution.
					s.writePartitionOK(w, start, res, false, true, !shared, 0, 0, nil, cn)
					return
				}
			}
		}
	}

	// Per-request deadline, also cancelled when the client disconnects:
	// a dead client stops burning the worker budget (the context is
	// threaded through treedecomp.BuildContext and the hgpt scheduler),
	// and the limiter orders its waiting room by this deadline.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ctx, pfm := withPeerFetchMark(ctx)

	// The memory-pressure breaker decides the service mode before any
	// solve capacity is spent: floor-only service while open, a single
	// full-service probe when half-open.
	mode := s.brk.admit()
	s.publishBreakerGauges()
	// A probe must settle on every exit path: if it is shed before the
	// solve (queue full, deadline expired while queued, client cancel,
	// injected fault) and probeDone never ran, the half-open slot would
	// leak and the breaker could never close — floor-only service until
	// restart. The deferred settlement reports failure unless the solve
	// path already settled with its real outcome.
	probeSettled := false
	settleProbe := func(ok bool) {
		if probeSettled {
			return
		}
		probeSettled = true
		s.brk.probeDone(ok)
		s.publishBreakerGauges()
	}
	if mode == modeProbe {
		defer settleProbe(false)
	}
	if mode == modeFloor && (req.NoDegrade || s.cfg.DisableDegradation) {
		_, _, retry := s.brk.snapshot()
		s.writeShed(w, http.StatusServiceUnavailable, "breaker_open", shedBreakerOpen,
			"memory pressure: full-service requests are shed while the breaker is open", retry)
		return
	}

	// Admission: the deadline-ordered waiting room, then a solve slot.
	// The queue gauge counts requests past decode, waiting or running.
	s.reg.Gauge("queue_depth").Set(s.queued.Add(1))
	defer func() { s.reg.Gauge("queue_depth").Set(s.queued.Add(-1)) }()
	if err := s.lim.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.reg.Counter("queue_rejections_total").Inc()
			_, inUse, waiting := s.lim.snapshot()
			s.writeShed(w, http.StatusTooManyRequests, "queue_full", shedQueueFull,
				fmt.Sprintf("admission queue full (%d running + %d waiting)", inUse, waiting), time.Second)
		case errors.Is(err, errShedExpired):
			s.reg.Counter("partition_errors_total").Inc()
			s.reg.Counter("deadline_timeouts_total").Inc()
			s.writeShed(w, http.StatusGatewayTimeout, "deadline_exceeded", shedDeadlineExpired,
				fmt.Sprintf("deadline expired in the waiting room after %s; no solve slot was occupied",
					time.Since(start).Round(time.Millisecond)), 0)
		default:
			s.finishTimeout(w, r, ctx, start, "while queued for a solve slot")
		}
		return
	}
	slotStart := time.Now()
	defer func() {
		held := time.Since(slotStart)
		s.lim.release()
		s.lim.observe(held, timeout, ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded))
		ceiling, _, _ := s.lim.snapshot()
		s.reg.Gauge("limiter_ceiling").Set(int64(ceiling))
	}()

	if err := faultinject.Fire(ctx, faultinject.ServerSolve); err != nil {
		s.reg.Counter("partition_errors_total").Inc()
		s.writeError(w, http.StatusInternalServerError, "solve_failed", err.Error())
		return
	}

	noDegrade := req.NoDegrade || s.cfg.DisableDegradation
	runSolve := func() (*solveOutcome, error) {
		oc := &solveOutcome{}
		if noDegrade {
			res, hit, dd, sd, serr := s.solve(ctx, gSolve, H, sv, cn)
			if serr != nil {
				return nil, serr
			}
			oc.res, oc.cacheHit, oc.decompDur, oc.solveDur = res, hit, dd, sd
		} else {
			ladderOpts := anytime.Options{Solver: sv}
			if mode == modeFloor {
				// Breaker open: run only the ladder's floor rung. The baseline
				// tier allocates no DP tables, so serving it degrades quality
				// instead of deepening the memory pressure that tripped us.
				floor := anytime.TierBaseline
				ladderOpts.Only = &floor
				s.reg.Counter("breaker_floor_served_total").Inc()
			}
			// The ladder path: full pipeline, capped DP, and the heuristic
			// baseline race under the request's deadline; the best feasible
			// placement available wins. The DP tiers run through s.solve so
			// they share the decomposition cache and singleflight group;
			// TierFromContext attributes each backend call's cache outcome
			// and phase timings to its tier, so the response reports the
			// winning tier's numbers.
			type tierPhases struct {
				hit          bool
				decomp, slve time.Duration
			}
			var phaseMu sync.Mutex
			phases := map[anytime.Tier]tierPhases{}
			ladderOpts.SolveDP = func(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, sv hgp.Solver) (*hgp.Result, error) {
				r, hit, d, sd, serr := s.solve(ctx, g, H, sv, cn)
				if tier, ok := anytime.TierFromContext(ctx); ok && serr == nil {
					phaseMu.Lock()
					phases[tier] = tierPhases{hit: hit, decomp: d, slve: sd}
					phaseMu.Unlock()
				}
				return r, serr
			}
			out, serr := anytime.Solve(ctx, gSolve, H, ladderOpts)
			if serr != nil {
				return nil, serr
			}
			oc.res = out.Result
			phaseMu.Lock()
			ph := phases[out.Tier]
			phaseMu.Unlock()
			oc.cacheHit, oc.decompDur, oc.solveDur = ph.hit, ph.decomp, ph.slve
			oc.degResp = &DegradationResponse{
				Tier:      out.Tier.String(),
				Degraded:  out.Degraded,
				Partial:   oc.res.Partial,
				TreesDone: oc.res.TreesDone,
				Tiers:     out.Reports[:],
			}
			if out.Degraded {
				s.reg.Counter(fmt.Sprintf("degraded_total{tier=%q}", out.Tier.String())).Inc()
			}
			oc.degraded = out.Degraded || out.Tier != anytime.TierFullDP
		}
		// Only complete full-pipeline results enter the result cache: a
		// degraded or partial placement must not be replayed to callers
		// who would have gotten the full answer.
		if s.results != nil && !oc.degraded && !oc.res.Partial {
			s.results.Add(rkey, oc.res)
			s.reg.Counter("result_cache_inserts_total").Inc()
			if s.cluster != nil {
				// Replicate the full-quality result to the key's
				// remote replicas (the fan-out skips self) so the next
				// submission of this request anywhere in the cluster
				// finds it where routing looks. Degraded and partial
				// results never travel, for the same reason they never
				// enter the local result cache.
				s.cluster.pushResult(rkey, oc.res)
			}
		}
		return oc, nil
	}

	var oc *solveOutcome
	if s.results != nil && mode != modeFloor {
		// Coalesce identical concurrent misses, keyed per degradation
		// mode (a no-degrade caller must never be handed a ladder
		// outcome, and vice versa). Every waiter holds its own admission
		// slot; only the DP work is shared.
		sfKey := rkey + "|ladder"
		if noDegrade {
			sfKey = rkey + "|nd"
		}
		var v any
		var shared bool
		v, shared, err = s.rflight.Do(ctx, sfKey, func() (any, error) { return runSolve() })
		if err == nil {
			oc = v.(*solveOutcome)
			if shared {
				s.reg.Counter("result_coalesced_total").Inc()
			}
		}
	} else {
		oc, err = runSolve()
	}
	if mode == modeProbe {
		// Half-open probe: a successful full-service request (with the
		// heap back under the ceiling) closes the breaker; anything else
		// re-opens it and restarts the cooldown.
		settleProbe(err == nil)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.finishTimeout(w, r, ctx, start, "during the solve")
		case strings.Contains(err.Error(), "state budget exceeded"):
			s.reg.Counter("partition_errors_total").Inc()
			s.writeError(w, http.StatusUnprocessableEntity, "state_budget_exceeded", err.Error())
		case strings.Contains(err.Error(), "panic"):
			// The solver pools contain panics into errors (one bad tree
			// degrades, all trees failing surfaces here); count them so
			// an injected or real mid-DP panic is observable.
			s.reg.Counter("panics_total").Inc()
			s.reg.Counter("partition_errors_total").Inc()
			s.writeError(w, http.StatusInternalServerError, "solver_panic", err.Error())
		default:
			s.reg.Counter("partition_errors_total").Inc()
			s.writeError(w, http.StatusInternalServerError, "solve_failed", err.Error())
		}
		return
	}

	s.writePartitionOK(w, start, oc.res, oc.cacheHit, false, pfm.hit.Load(), oc.decompDur, oc.solveDur, oc.degResp, cn)
}

// solveOutcome bundles one completed solve so identical concurrent
// requests can share it through the singleflight group.
type solveOutcome struct {
	res                 *hgp.Result
	cacheHit            bool
	decompDur, solveDur time.Duration
	degResp             *DegradationResponse
	degraded            bool
}

// writePartitionOK renders a successful solve. NaN per-tree costs
// (errored trees) and +Inf (pruned trees) both become null — neither is
// representable in JSON; TreesPruned carries the distinction. The solve
// latency histogram only sees real solves: a result-cache hit did no
// solving and would drag the distribution toward zero.
//
// With a canonical form (cn non-nil) res lives in canonical space —
// possibly shared with other requests through the caches — so the
// assignment is translated back through this request's own permutation
// into a FRESH slice before rendering; the cached result is never
// mutated. Cost, violations, and per-tree costs are label-invariant
// and pass through untouched.
func (s *Server) writePartitionOK(w http.ResponseWriter, start time.Time, res *hgp.Result, cacheHit, resultHit, peerFetch bool, decompDur, solveDur time.Duration, degResp *DegradationResponse, cn *canon.Form) {
	perTree := make([]*float64, len(res.PerTreeCosts))
	for i, c := range res.PerTreeCosts {
		if !math.IsNaN(c) && !math.IsInf(c, 1) {
			c := c
			perTree[i] = &c
		}
	}
	assignment := res.Assignment
	canonHit := false
	if cn != nil {
		assignment = cn.TranslateAssignment(res.Assignment)
		// A peer fetch under -canon is a cache hit keyed by the
		// label-invariant fingerprint — the owner's entry may have been
		// written by a different user's isomorphic submission — so it
		// counts as a canon hit like any local one.
		if cacheHit || resultHit || peerFetch {
			canonHit = true
			s.reg.Counter("canon_hits_total").Inc()
		}
	}
	elapsed := time.Since(start)
	s.reg.Counter("partition_ok_total").Inc()
	s.reg.Counter("http_status_200_total").Inc()
	s.reg.Histogram("request_seconds").Observe(elapsed.Seconds())
	if !resultHit {
		s.reg.Histogram("solve_seconds").Observe(solveDur.Seconds())
	}
	writeJSON(w, http.StatusOK, PartitionResponse{
		Assignment:     assignment,
		Cost:           res.Cost,
		TreeCost:       res.TreeCost,
		TreeIndex:      res.TreeIndex,
		PerTreeCosts:   perTree,
		TreesPruned:    res.TreesPruned,
		Violation:      res.Violation,
		States:         res.States,
		CacheHit:       cacheHit,
		ResultCacheHit: resultHit,
		PeerFetchHit:   peerFetch,
		CanonHit:       canonHit,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
		DecomposeMS:    float64(decompDur.Microseconds()) / 1000,
		SolveMS:        float64(solveDur.Microseconds()) / 1000,
		Degradation:    degResp,
	})
}

// finishTimeout classifies a context failure: a tripped per-request
// deadline is 504 (the daemon gave up inside its budget), a client that
// went away gets a best-effort 499-style close (the response will not
// be read anyway).
func (s *Server) finishTimeout(w http.ResponseWriter, r *http.Request, ctx context.Context, start time.Time, where string) {
	s.reg.Counter("partition_errors_total").Inc()
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.reg.Counter("deadline_timeouts_total").Inc()
		s.writeError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			fmt.Sprintf("deadline expired %s after %s", where, time.Since(start).Round(time.Millisecond)))
		return
	}
	// Client cancelled: nothing useful to send; record and close.
	s.reg.Counter("client_cancelled_total").Inc()
	s.writeError(w, 499, "client_closed_request", "client went away "+where)
}

// healthzResponse is the GET /v1/healthz body.
type healthzResponse struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET required")
		return
	}
	st, code := "ok", http.StatusOK
	if s.isDraining() {
		st, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthzResponse{Status: st, UptimeSeconds: s.uptime()})
}

// StatsResponse is the GET /v1/stats JSON body.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Queue         struct {
		Depth       int64 `json:"depth"`
		Concurrency int   `json:"concurrency"` // configured ceiling (MaxConcurrent)
		Capacity    int   `json:"capacity"`    // waiting room beyond Concurrency
		Ceiling     int   `json:"ceiling"`     // current (AIMD-adjusted) ceiling
		InUse       int   `json:"in_use"`      // solve slots held right now
		Waiting     int   `json:"waiting"`     // waiting-room occupancy
		Adaptive    bool  `json:"adaptive"`
	} `json:"queue"`
	Breaker   *breakerStats  `json:"breaker,omitempty"`   // omitted when the breaker is disabled
	Snapshots *snapshotStats `json:"snapshots,omitempty"` // omitted when the cache is memory-only
	Cache     *cacheStats    `json:"cache,omitempty"`     // omitted when caching is disabled
	// ResultCache is the full-result cache's accounting; omitted when
	// disabled. Hits here are whole solves never run.
	ResultCache *cacheStats `json:"result_cache,omitempty"`
	// Portfolio is the tree-portfolio accounting: incumbent pruning and
	// tree-level concurrency across all solves. Always present.
	Portfolio portfolioBlock `json:"portfolio"`
	// Canon is the canonical-fingerprinting accounting. Always present;
	// Enabled mirrors the -canon flag and the counters stay zero while
	// it is off.
	Canon canonBlock `json:"canon"`
	// Cluster is the shard-group accounting: membership health, fetch
	// breakers, and fetch/push outcome totals. Always present; with
	// clustering off only {"enabled": false} is rendered, so dashboards
	// key on one shape everywhere.
	Cluster clusterStats `json:"cluster"`
	// Sessions is the graph-session (incremental repartitioning)
	// accounting: active sessions, patch/conflict totals, and the
	// incremental-vs-cold solve split. Always present; Enabled is false
	// when -max-sessions is negative.
	Sessions sessionsBlock      `json:"sessions"`
	Metrics  telemetry.Snapshot `json:"metrics"`
}

// canonBlock is the `canon` block of /v1/stats. Attempts split into ok
// (canonicalized; label-invariant keys used) and fallback (refused;
// label-sensitive keys used). HitsTotal counts responses answered from
// a canonically-keyed cache — the cross-user reuse the fingerprint
// exists to create.
type canonBlock struct {
	Enabled        bool  `json:"enabled"`
	AttemptsTotal  int64 `json:"attempts_total"`
	OKTotal        int64 `json:"ok_total"`
	FallbackTotal  int64 `json:"fallback_total"`
	CanonHitsTotal int64 `json:"hits_total"`
}

// portfolioBlock is the `portfolio` block of /v1/stats. The counters
// aggregate over real solves only (result-cache hits run no portfolio);
// ParallelTrees is the most recent solve's tree-level worker count.
type portfolioBlock struct {
	TreesPrunedTotal      int64 `json:"trees_pruned_total"`
	ParallelTrees         int64 `json:"parallel_trees"`
	ParallelSolvesTotal   int64 `json:"parallel_solves_total"`
	SequentialSolvesTotal int64 `json:"sequential_solves_total"`
	// SerialForced reports the -serial-portfolio escape hatch: when
	// true, every pruned portfolio runs trees one at a time.
	SerialForced bool `json:"serial_forced"`
}

// breakerStats is the `breaker` block of /v1/stats.
type breakerStats struct {
	State             string  `json:"state"` // "closed", "open", or "half_open"
	Trips             int64   `json:"trips"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"` // cooldown remaining when open
}

// snapshotStats is the `snapshots` block of /v1/stats: the on-disk
// durability of the decomposition cache.
type snapshotStats struct {
	Entries          int     `json:"entries"`
	Bytes            int64   `json:"bytes"`
	Pending          int     `json:"pending"` // staged, not yet flushed
	LastFlushAgeSecs float64 `json:"last_flush_age_seconds,omitempty"`
}

func breakerStateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

type cacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Len       int     `json:"len"`
	Capacity  int     `json:"capacity"`
	HitRatio  float64 `json:"hit_ratio"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET required")
		return
	}
	// Mirror cache accounting into gauges so both output formats (and
	// any scraper) see it.
	if s.dec != nil {
		cs := s.dec.Stats()
		s.reg.Gauge("decomp_cache_len").Set(int64(cs.Len))
		s.reg.Gauge("decomp_cache_evictions").Set(cs.Evictions)
	}
	ceiling, inUse, waiting := s.lim.snapshot()
	s.reg.Gauge("limiter_ceiling").Set(int64(ceiling))
	s.reg.Gauge("limiter_in_use").Set(int64(inUse))
	s.reg.Gauge("limiter_waiting").Set(int64(waiting))
	s.publishBreakerGauges()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
		return
	}
	resp := StatsResponse{UptimeSeconds: s.uptime(), Metrics: s.reg.Snapshot()}
	resp.Queue.Depth = s.queued.Load()
	resp.Queue.Concurrency = s.cfg.MaxConcurrent
	resp.Queue.Capacity = s.cfg.MaxQueue
	resp.Queue.Ceiling, resp.Queue.InUse, resp.Queue.Waiting = s.lim.snapshot()
	resp.Queue.Adaptive = s.cfg.Adaptive
	if s.brk != nil {
		state, trips, retry := s.brk.snapshot()
		resp.Breaker = &breakerStats{
			State: breakerStateName(state), Trips: trips,
			RetryAfterSeconds: retry.Seconds(),
		}
	}
	if s.store != nil {
		ds := s.store.Stats()
		resp.Snapshots = &snapshotStats{
			Entries: ds.Entries, Bytes: ds.Bytes, Pending: ds.Pending,
		}
		if !ds.LastFlush.IsZero() {
			resp.Snapshots.LastFlushAgeSecs = time.Since(ds.LastFlush).Seconds()
		}
	}
	if s.dec != nil {
		cs := s.dec.Stats()
		resp.Cache = &cacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Len: cs.Len, Capacity: cs.Capacity, HitRatio: cs.HitRatio,
		}
	}
	if s.results != nil {
		rs := s.results.Stats()
		resp.ResultCache = &cacheStats{
			Hits: rs.Hits, Misses: rs.Misses, Evictions: rs.Evictions,
			Len: rs.Len, Capacity: rs.Capacity, HitRatio: rs.HitRatio,
		}
	}
	resp.Portfolio = portfolioBlock{
		TreesPrunedTotal:      s.reg.Counter("trees_pruned_total").Value(),
		ParallelTrees:         s.reg.Gauge("portfolio_parallel_trees").Value(),
		ParallelSolvesTotal:   s.reg.Counter("portfolio_parallel_solves_total").Value(),
		SequentialSolvesTotal: s.reg.Counter("portfolio_sequential_solves_total").Value(),
		SerialForced:          s.cfg.SerialPortfolio,
	}
	resp.Canon = canonBlock{
		Enabled:        s.cfg.Canon,
		AttemptsTotal:  s.reg.Counter("canon_attempts_total").Value(),
		OKTotal:        s.reg.Counter("canon_ok_total").Value(),
		FallbackTotal:  s.reg.Counter("canon_fallback_total").Value(),
		CanonHitsTotal: s.reg.Counter("canon_hits_total").Value(),
	}
	if s.cluster != nil {
		resp.Cluster = s.cluster.stats()
	}
	resp.Sessions = s.sessionsStats()
	writeJSON(w, http.StatusOK, resp)
}
