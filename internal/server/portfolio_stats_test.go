package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"hierpart/internal/telemetry"
)

// The portfolio stats block (ISSUE 6 satellite): /v1/stats carries a
// `portfolio` object in JSON and the portfolio series in Prometheus
// text, pre-registered at zero so scrapers see them before the first
// solve.
func TestPortfolioStatsBlock(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg, SolverWorkers: 4})

	// Before any solve: the block exists, everything is zero, and the
	// Prometheus series are already registered.
	var st StatsResponse
	if err := json.Unmarshal(getPath(s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Portfolio.TreesPrunedTotal != 0 || st.Portfolio.ParallelSolvesTotal != 0 ||
		st.Portfolio.SequentialSolvesTotal != 0 || st.Portfolio.SerialForced {
		t.Fatalf("pre-solve portfolio block not zero: %+v", st.Portfolio)
	}
	prom := getPath(s, "/v1/stats?format=prometheus").Body.String()
	for _, want := range []string{
		"trees_pruned_total 0",
		"portfolio_parallel_trees 0",
		"portfolio_parallel_solves_total 0",
		"portfolio_sequential_solves_total 0",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing pre-registered %q:\n%s", want, prom)
		}
	}

	// One solve with a 4-worker budget over 2 trees: trees race two
	// abreast, so the solve counts as parallel and the gauge reports 2.
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(getPath(s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Portfolio.ParallelTrees != 2 {
		t.Fatalf("parallel_trees = %d, want 2 (4 workers over 2 trees)", st.Portfolio.ParallelTrees)
	}
	if st.Portfolio.ParallelSolvesTotal != 1 || st.Portfolio.SequentialSolvesTotal != 0 {
		t.Fatalf("solve counters = %d parallel / %d sequential, want 1 / 0",
			st.Portfolio.ParallelSolvesTotal, st.Portfolio.SequentialSolvesTotal)
	}
	prom = getPath(s, "/v1/stats?format=prometheus").Body.String()
	if !strings.Contains(prom, "portfolio_parallel_trees 2") {
		t.Fatalf("prometheus output missing portfolio_parallel_trees 2:\n%s", prom)
	}

	// A result-cache hit runs no portfolio: counters must not move.
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(getPath(s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Portfolio.ParallelSolvesTotal != 1 {
		t.Fatalf("result-cache hit moved parallel_solves_total to %d", st.Portfolio.ParallelSolvesTotal)
	}
}

// TestSerialPortfolioFlag: Config.SerialPortfolio (hgpd
// -serial-portfolio) surfaces in the stats block and forces one-at-a-
// time trees on every solve that prunes; a single-worker budget
// reports a sequential solve either way.
func TestSerialPortfolioFlag(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg, SolverWorkers: 1, SerialPortfolio: true})
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var st StatsResponse
	if err := json.Unmarshal(getPath(s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Portfolio.SerialForced {
		t.Fatal("serial_forced missing from the stats block")
	}
	if st.Portfolio.ParallelTrees != 1 || st.Portfolio.SequentialSolvesTotal != 1 {
		t.Fatalf("portfolio block = %+v, want parallel_trees 1, sequential_solves_total 1", st.Portfolio)
	}
}
