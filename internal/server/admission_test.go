package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hierpart/internal/faultinject"
	"hierpart/internal/telemetry"
)

// waitWaiting polls until the limiter's waiting room holds n requests.
func waitWaiting(t *testing.T, l *limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, waiting := l.snapshot(); waiting == n {
			return
		}
		if time.Now().After(deadline) {
			_, _, waiting := l.snapshot()
			t.Fatalf("waiting room stuck at %d, want %d", waiting, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The waiting room is EDF: with one slot and three queued requests, the
// slot is granted in deadline order regardless of arrival order.
func TestLimiterEDFOrder(t *testing.T) {
	l := newLimiter(1, 10, false)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	base := time.Now()
	// Arrival order deliberately scrambles deadline order.
	deadlines := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	order := make(chan int, len(deadlines))
	var wg sync.WaitGroup
	for i, d := range deadlines {
		i, d := i, d
		ctx, cancel := context.WithDeadline(context.Background(), base.Add(d))
		defer cancel()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			l.release()
		}()
		// Serialize arrival so seq numbers match arrival order.
		waitWaiting(t, l, i+1)
	}

	l.release()
	wg.Wait()
	close(order)
	var got []int
	for i := range order {
		got = append(got, i)
	}
	want := []int{1, 2, 0} // 10s, 20s, 30s deadlines
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

// A waiter whose deadline passes while queued is shed at dispatch — it
// never occupies a slot — and surfaces errShedExpired.
func TestLimiterShedsExpiredWaiter(t *testing.T) {
	l := newLimiter(1, 10, false)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The waiter's ctx deadline is far enough out that ctx.Done never
	// fires; the fake clock below makes dispatch see it as expired.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	got := make(chan error, 1)
	go func() { got <- l.acquire(ctx) }()
	waitWaiting(t, l, 1)

	l.mu.Lock()
	l.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	l.mu.Unlock()
	l.release()

	select {
	case err := <-got:
		if !errors.Is(err, errShedExpired) {
			t.Fatalf("acquire = %v, want errShedExpired", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shed waiter never woke")
	}
	if ceiling, inUse, waiting := l.snapshot(); ceiling != 1 || inUse != 0 || waiting != 0 {
		t.Fatalf("limiter state after shed = (%d, %d, %d), want (1, 0, 0)", ceiling, inUse, waiting)
	}
}

func TestLimiterQueueFull(t *testing.T) {
	l := newLimiter(1, 0, false)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire with no waiting room = %v, want errQueueFull", err)
	}
}

// AIMD: deadline pressure halves the ceiling (rate-limited to one
// decrease per window), a ceiling-worth of headroomy completions raises
// it by one, and the ceiling stays within [1, maxC].
func TestLimiterAIMD(t *testing.T) {
	l := newLimiter(8, 10, true)
	clock := time.Unix(1000, 0)
	l.now = func() time.Time { return clock }

	budget := time.Second
	l.observe(budget, budget, true) // miss → halve
	if c, _, _ := l.snapshot(); c != 4 {
		t.Fatalf("ceiling after first decrease = %d, want 4", c)
	}
	l.observe(budget, budget, true) // within the rate-limit window: no-op
	if c, _, _ := l.snapshot(); c != 4 {
		t.Fatalf("ceiling must not halve twice in one window, got %d", c)
	}
	clock = clock.Add(2 * time.Second)
	l.observe(budget*95/100, budget, false) // >90% of budget counts as pressure
	if c, _, _ := l.snapshot(); c != 2 {
		t.Fatalf("ceiling after near-deadline completion = %d, want 2", c)
	}
	clock = clock.Add(2 * time.Second)
	l.observe(budget, budget, true)
	clock = clock.Add(2 * time.Second)
	l.observe(budget, budget, true)
	if c, _, _ := l.snapshot(); c != 1 {
		t.Fatalf("ceiling must floor at 1, got %d", c)
	}

	// Additive increase: one +1 per ceiling-worth of headroomy solves.
	l.observe(budget/10, budget, false)
	if c, _, _ := l.snapshot(); c != 2 {
		t.Fatalf("ceiling after 1 headroomy solve at ceiling 1 = %d, want 2", c)
	}
	l.observe(budget/10, budget, false)
	if c, _, _ := l.snapshot(); c != 2 {
		t.Fatalf("ceiling must need 2 headroomy solves at ceiling 2, got %d", c)
	}
	l.observe(budget/10, budget, false)
	if c, _, _ := l.snapshot(); c != 3 {
		t.Fatalf("ceiling after 2 headroomy solves = %d, want 3", c)
	}

	// Non-adaptive limiters never move.
	fixed := newLimiter(4, 10, false)
	fixed.observe(budget, budget, true)
	if c, _, _ := fixed.snapshot(); c != 4 {
		t.Fatalf("non-adaptive ceiling moved to %d", c)
	}
}

// The breaker walks closed → open → half-open (single probe) → closed,
// and a failed probe re-opens it with a fresh cooldown.
func TestBreakerStateMachine(t *testing.T) {
	heap := uint64(2000)
	clock := time.Unix(1000, 0)
	b := newBreaker(1000, 100*time.Millisecond)
	b.readHeap = func() uint64 { return heap }
	b.now = func() time.Time { return clock }

	if got := b.admit(); got != modeFloor {
		t.Fatalf("admit over the ceiling = %v, want modeFloor", got)
	}
	if state, trips, retry := b.snapshot(); state != breakerOpen || trips != 1 || retry <= 0 {
		t.Fatalf("after trip: state=%d trips=%d retry=%v", state, trips, retry)
	}
	if got := b.admit(); got != modeFloor {
		t.Fatalf("admit during cooldown = %v, want modeFloor", got)
	}

	clock = clock.Add(150 * time.Millisecond)
	if got := b.admit(); got != modeProbe {
		t.Fatalf("admit after cooldown = %v, want modeProbe", got)
	}
	// Only one probe at a time: concurrent admits stay on the floor.
	if got := b.admit(); got != modeFloor {
		t.Fatalf("second admit during probe = %v, want modeFloor", got)
	}

	// Probe fails → re-open, cooldown restarts.
	b.probeDone(false)
	if state, _, _ := b.snapshot(); state != breakerOpen {
		t.Fatalf("state after failed probe = %d, want open", state)
	}
	clock = clock.Add(150 * time.Millisecond)
	if got := b.admit(); got != modeProbe {
		t.Fatalf("re-probe after failed probe = %v, want modeProbe", got)
	}

	// Probe succeeds but the heap is still high → re-open.
	b.probeDone(true)
	if state, _, _ := b.snapshot(); state != breakerOpen {
		t.Fatalf("state after probe with high heap = %d, want open", state)
	}

	// Heap subsides → successful probe closes the breaker.
	heap = 500
	clock = clock.Add(150 * time.Millisecond)
	if got := b.admit(); got != modeProbe {
		t.Fatalf("final probe = %v, want modeProbe", got)
	}
	b.probeDone(true)
	if state, _, _ := b.snapshot(); state != breakerClosed {
		t.Fatalf("state after recovery = %d, want closed", state)
	}
	if got := b.admit(); got != modeNormal {
		t.Fatalf("admit after recovery = %v, want modeNormal", got)
	}
}

// A nil breaker (MaxHeapBytes 0) is a no-op: full service always.
func TestBreakerDisabled(t *testing.T) {
	if b := newBreaker(0, time.Second); b != nil {
		t.Fatal("zero threshold must disable the breaker")
	}
	var b *breaker
	if got := b.admit(); got != modeNormal {
		t.Fatalf("nil breaker admit = %v, want modeNormal", got)
	}
	b.probeDone(true) // must not panic
}

// Queue-full sheds carry the machine-readable plumbing: Retry-After
// header, shed_reason field, and a shed_total{reason} tick.
func TestShedResponsePlumbing(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, Registry: reg})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.solve = blockingSolve(started, release)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postPartition(t, s.Handler(), testRequest())
	}()
	<-started

	rec := postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Fatal("429 must carry a Retry-After header")
	}
	body := rec.Body.String()
	if want := `"shed_reason": "queue_full"`; !strings.Contains(body, want) {
		t.Fatalf("body missing %s: %s", want, body)
	}
	if got := reg.Counter(`shed_total{reason="queue_full"}`).Value(); got != 1 {
		t.Fatalf("shed_total{reason=queue_full} = %d, want 1", got)
	}
	close(release)
	<-done

	// Draining sheds are tagged too.
	s.Drain()
	rec = postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"shed_reason": "draining"`) {
		t.Fatalf("draining shed = %d %s", rec.Code, rec.Body.String())
	}
	if got := reg.Counter(`shed_total{reason="draining"}`).Value(); got != 1 {
		t.Fatalf("shed_total{reason=draining} = %d, want 1", got)
	}
}

// An open breaker floors degradable requests onto the ladder's baseline
// tier (HTTP 200, tier "baseline") and sheds no-degrade requests with a
// 503 carrying breaker_open; once pressure subsides a half-open probe
// restores full service.
func TestBreakerFloorsAndRecovers(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg, MaxHeapBytes: 1000, BreakerCooldown: 50 * time.Millisecond})
	heap := uint64(2000)
	var mu sync.Mutex
	s.brk.readHeap = func() uint64 { mu.Lock(); defer mu.Unlock(); return heap }

	// Degradable request while tripped: 200 from the floor tier.
	req := testRequest()
	req.NoDegrade = false
	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("floored request status = %d (body %s)", rec.Code, rec.Body.String())
	}
	if resp := decodeResponse(t, rec); resp.Degradation == nil || resp.Degradation.Tier != "baseline" {
		t.Fatalf("floored request must come from the baseline tier: %+v", resp.Degradation)
	}
	if reg.Counter("breaker_floor_served_total").Value() == 0 {
		t.Fatal("floor service not counted")
	}

	// No-degrade request while open: 503 with the breaker tag.
	rec = postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-degrade under breaker = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"shed_reason": "breaker_open"`) {
		t.Fatalf("503 body missing breaker_open: %s", rec.Body.String())
	}

	// Pressure subsides; after the cooldown the next request probes and
	// closes the breaker, restoring full service.
	mu.Lock()
	heap = 100
	mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	rec = postPartition(t, s.Handler(), testRequest())
	if rec.Code != http.StatusOK {
		t.Fatalf("probe request status = %d (body %s)", rec.Code, rec.Body.String())
	}
	if state, _, _ := s.brk.snapshot(); state != breakerClosed {
		t.Fatalf("breaker state after successful probe = %d, want closed", state)
	}
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d", rec.Code)
	}
}

// A half-open probe request that dies before the solve (here: an
// injected ServerSolve fault; the same applies to queue-full sheds,
// waiting-room deadline expiry, and client cancels) must still settle
// the probe. If the probing flag leaked, the breaker could never close
// and the daemon would serve floor-only responses until restart.
func TestBreakerProbeSettlesOnEarlyExit(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg, MaxHeapBytes: 1000, BreakerCooldown: 30 * time.Millisecond})
	heap := uint64(2000)
	var mu sync.Mutex
	s.brk.readHeap = func() uint64 { mu.Lock(); defer mu.Unlock(); return heap }

	// Trip the breaker (no-degrade request → 503 breaker_open).
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("trip request = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}

	// Pressure subsides; after the cooldown the next request is the
	// probe — and it dies before the solve on an injected fault.
	mu.Lock()
	heap = 100
	mu.Unlock()
	time.Sleep(40 * time.Millisecond)
	restore := faultinject.Activate(faultinject.New(1).
		On(faultinject.ServerSolve, faultinject.Fault{Prob: 1, Count: 1, Err: errors.New("injected")}))
	defer restore()
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted probe = %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}

	// The dead probe must have settled as a failure: breaker re-opened
	// with a fresh cooldown, not half-open with the probe slot leaked.
	if state, _, _ := s.brk.snapshot(); state != breakerOpen {
		t.Fatalf("state after dead probe = %d, want open", state)
	}

	// After the next cooldown a fresh probe runs and closes the breaker.
	time.Sleep(40 * time.Millisecond)
	if rec := postPartition(t, s.Handler(), testRequest()); rec.Code != http.StatusOK {
		t.Fatalf("recovery probe = %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
	if state, _, _ := s.brk.snapshot(); state != breakerClosed {
		t.Fatalf("state after recovery probe = %d, want closed", state)
	}
}

// The stats endpoint surfaces the limiter and breaker blocks.
func TestStatsReportsAdmissionState(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 3, MaxQueue: 7, Adaptive: true, MaxHeapBytes: 1 << 40})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	body := rec.Body.String()
	for _, want := range []string{`"ceiling": 3`, `"adaptive": true`, `"state": "closed"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("stats missing %s:\n%s", want, body)
		}
	}
}
