package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hierpart/internal/cache"
	"hierpart/internal/cache/diskstore"
	"hierpart/internal/canon"
	"hierpart/internal/faultinject"
	"hierpart/internal/graph"
	"hierpart/internal/hgp"
	"hierpart/internal/hierarchy"
	"hierpart/internal/telemetry"
	"hierpart/internal/treedecomp"
)

// Config tunes the daemon. The zero value is serviceable: defaults are
// filled in by New.
type Config struct {
	// MaxConcurrent is the number of solves running simultaneously.
	// Zero means GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue is how many admitted requests may wait for a solve slot
	// beyond the MaxConcurrent running ones; past that the daemon sheds
	// load with 429. Zero means 64; negative means no waiting room.
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms.
	// Zero means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request deadline regardless of what the
	// request asks for. Zero means 5m.
	MaxTimeout time.Duration
	// CacheEntries bounds the decomposition LRU. Zero means 128;
	// negative disables caching.
	CacheEntries int
	// ResultCacheEntries bounds the full-result LRU: a repeat request
	// (same instance, hierarchy, and solver parameters) is answered from
	// memory, skipping decomposition AND the DP. Zero means 256;
	// negative disables. Workers is deliberately not part of the key —
	// results are bit-identical at every worker count — so retuning
	// concurrency never cools this cache. Results are memory-only (no
	// StateDir snapshotting): they are cheap to recompute from a warm
	// decomposition cache, and small enough that holding them on disk
	// buys little.
	ResultCacheEntries int
	// Canon enables canonical-form graph fingerprinting (hgpd -canon):
	// each submission is mapped to its canonical vertex ordering
	// (internal/canon), both caches key on the label-invariant
	// fingerprint, the solver runs in canonical space, and the placement
	// is translated back through the request's own permutation before
	// answering. Isomorphic submissions from different users then share
	// cache entries. Graphs that refuse to canonicalize (large
	// automorphism classes, exhausted search budget) fall back to the
	// label-sensitive keys, counted by canon_fallback_total.
	Canon bool
	// SolverWorkers is the per-solve concurrency budget
	// (hgp.Solver.Workers). Zero means GOMAXPROCS.
	SolverWorkers int
	// SerialPortfolio forces the pruned tree portfolio to run trees one
	// at a time (hgp.Solver.SequentialPortfolio) instead of racing them
	// under a shared incumbent bound. Results are bit-identical either
	// way; this is an operational escape hatch (and A/B knob) for the
	// concurrent portfolio, surfaced as hgpd -serial-portfolio.
	SerialPortfolio bool
	// MaxStates caps the DP state budget per request; requests may ask
	// for less but never more. Zero means 50 million (a guard against
	// pathological instances, not a tuning knob).
	MaxStates int
	// MaxVertices rejects oversized graphs at decode time with 413.
	// Zero means 100000.
	MaxVertices int
	// MaxEdges rejects oversized edge lists at decode time with 413,
	// before any admission cost is paid. Zero means 2 million.
	MaxEdges int
	// MaxBodyBytes bounds the request body. Zero means 64 MiB.
	MaxBodyBytes int64
	// DisableDegradation turns the anytime ladder off daemon-wide:
	// every request runs only the full pipeline and a missed deadline
	// is a 504 instead of a degraded 200. Individual requests opt out
	// with the no_degrade field; this flag is for fleets that prefer
	// fail-fast semantics everywhere.
	DisableDegradation bool
	// StateDir, when non-empty, makes the decomposition cache durable:
	// entries are snapshotted to this directory by a background flusher
	// and loaded back on startup, so a killed-and-restarted daemon
	// serves its first repeat request from a warm cache. Requires
	// caching to be enabled.
	StateDir string
	// SnapshotInterval is how often the background flusher writes staged
	// cache entries to StateDir. Zero means 2s.
	SnapshotInterval time.Duration
	// Adaptive enables the AIMD concurrency limiter: the solve ceiling
	// starts at MaxConcurrent and moves with observed solve latency vs.
	// deadline headroom (halve under deadline pressure, +1 per
	// ceiling-worth of headroomy completions). Off, the ceiling is
	// pinned at MaxConcurrent.
	Adaptive bool
	// MaxHeapBytes arms the memory-pressure circuit breaker: when the
	// live heap exceeds it the daemon serves only the degradation
	// ladder's floor tier (sheding no-degrade requests with 503) until
	// pressure subsides, probing half-open after BreakerCooldown. Zero
	// disables the breaker.
	MaxHeapBytes int64
	// BreakerCooldown is how long the breaker stays open before a
	// half-open probe. Zero means 2s.
	BreakerCooldown time.Duration
	// Peers, when non-empty, turns on cluster mode: the full static
	// membership of the shard group as base URLs (including this
	// daemon's own, which must equal Self). Every cache key is owned by
	// exactly one peer under rendezvous hashing; non-owners fetch from
	// the owner on a local miss and push locally built entries back to
	// it. Requires caching (CacheEntries > 0).
	Peers []string
	// Self is this daemon's own entry in Peers — the base URL other
	// peers reach it at.
	Self string
	// PeerSecret, when non-empty, authenticates the internal /v1/peer/*
	// surface: every request against it must carry the secret in the
	// X-Hgpd-Peer-Secret header (compared in constant time; wrong or
	// missing is 403), and this daemon's own peer clients attach it to
	// every fetch, push, and health poll. All members of a shard group
	// must share one value. Empty leaves the surface unauthenticated —
	// acceptable ONLY when the listen address is unreachable by
	// untrusted clients: the peer PUT endpoints accept cache entries
	// under any key (keys are hashes of the originating request, so a
	// receiver cannot tie a payload back to its key), and a hostile
	// writer could poison answers served cluster-wide.
	PeerSecret string
	// PeerTimeout bounds each peer-fetch attempt. Zero means 2s.
	PeerTimeout time.Duration
	// PeerRetries is how many times a failed peer fetch is retried
	// (attempts = retries + 1). Zero means 2; negative means none.
	PeerRetries int
	// PeerBackoff is the base of the jittered exponential backoff
	// between retries. Zero means 50ms.
	PeerBackoff time.Duration
	// PeerBreakerThreshold opens a peer's fetch breaker after this many
	// consecutive failures. Zero means 3.
	PeerBreakerThreshold int
	// PeerBreakerCooldown is how long an open peer breaker fast-fails
	// before a half-open probe. Zero means 2s.
	PeerBreakerCooldown time.Duration
	// PeerHealthInterval is how often the health poller gossips
	// /v1/peer/health. Zero means 1s.
	PeerHealthInterval time.Duration
	// Replication is R, the number of peers that home each cache key —
	// its top-R rendezvous-hash owners, clamped to the cluster size.
	// Fetches walk the replicas in rank order (any live one serves);
	// pushes fan out to all of them. Zero means 1: single ownership,
	// the pre-replication behavior, bit-identical routing included.
	Replication int
	// HintQueueEntries bounds the hinted-handoff queue: pushes whose
	// target replica is down are staged (durably, under StateDir) and
	// replayed when health gossip reports the peer back. Zero means
	// 512; negative disables handoff (anti-entropy still heals).
	HintQueueEntries int
	// HintReplayInterval is how often the handoff drainer persists and
	// replays staged hints. Zero means 2s.
	HintReplayInterval time.Duration
	// RepairInterval is how often the anti-entropy sweep exchanges key
	// digests with peers (GET /v1/peer/keys) and pulls entries this
	// daemon should replicate but lacks. Zero means 30s; negative
	// disables repair.
	RepairInterval time.Duration
	// MaxSessions bounds the graph-session LRU (the /v1/graphs
	// incremental repartitioning surface): registrations beyond it evict
	// the least recently used session (and its snapshot). Zero means 64;
	// negative disables sessions (the /v1/graphs routes are not
	// registered). Sessions are snapshotted under StateDir/sessions when
	// StateDir is set, and reloaded on startup — reloaded sessions solve
	// cold once (decompositions and warm DP tables are not persisted).
	MaxSessions int
	// Registry receives the daemon's metrics. Nil means
	// telemetry.Default.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 256
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 50_000_000
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 100_000
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 2_000_000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 2 * time.Second
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.PeerRetries == 0 {
		c.PeerRetries = 2
	}
	if c.PeerRetries < 0 {
		c.PeerRetries = 0
	}
	if c.PeerBackoff <= 0 {
		c.PeerBackoff = 50 * time.Millisecond
	}
	if c.PeerBreakerThreshold <= 0 {
		c.PeerBreakerThreshold = 3
	}
	if c.PeerBreakerCooldown <= 0 {
		c.PeerBreakerCooldown = 2 * time.Second
	}
	if c.PeerHealthInterval <= 0 {
		c.PeerHealthInterval = time.Second
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.HintQueueEntries == 0 {
		c.HintQueueEntries = 512
	}
	if c.HintReplayInterval <= 0 {
		c.HintReplayInterval = 2 * time.Second
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 30 * time.Second
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Server is the daemon state: admission limiter, circuit breaker,
// decomposition cache (and its on-disk snapshot store), metrics
// registry, and drain bookkeeping.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	dec *cache.LRU // nil when caching is disabled
	// results holds full solve results by cache.ResultKey; nil when
	// disabled. A hit skips admission, decomposition, and the DP.
	results *cache.LRU
	// flight coalesces concurrent decomposition builds for the same
	// cache key: a miss storm runs one build, not N.
	flight cache.Group
	// rflight coalesces concurrent identical solves (same result key and
	// degradation mode): a repeat storm behind a cold result cache runs
	// one solve, not N.
	rflight cache.Group
	// lim gates solves: concurrency ceiling (AIMD-adaptive when
	// cfg.Adaptive) plus a deadline-ordered waiting room.
	lim *limiter
	// brk is the memory-pressure circuit breaker; nil when disabled.
	brk *breaker
	// store snapshots cache entries to cfg.StateDir; nil when the cache
	// is memory-only.
	store *diskstore.Store
	// sessions is the graph-session LRU (/v1/graphs); nil when sessions
	// are disabled. sessStore persists session snapshots under
	// StateDir/sessions; nil when memory-only.
	sessions  *sessionStore
	sessStore *diskstore.SessionStore
	// cluster is the shard-group state (ring, peer clients, health
	// poller); nil outside cluster mode.
	cluster *cluster
	start   time.Time
	mux     *http.ServeMux

	queued atomic.Int64

	// drainMu orders the draining flag against the in-flight WaitGroup:
	// handlers take the read side to (check draining, Add) atomically,
	// Shutdown takes the write side to (set draining) before Wait, so
	// Add can never race Wait.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	// solve is the solving backend; tests stub it to control timing.
	solve solveFunc
}

// solveFunc runs one partition solve. g is the graph to solve — the
// request's canonical form when cn is non-nil, the submission as-is
// otherwise; cn only selects the cache-key family (label-invariant vs
// label-sensitive). It reports the result, whether the decomposition
// came from the cache, and the decompose/solve phase durations.
type solveFunc func(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, s hgp.Solver, cn *canon.Form) (res *hgp.Result, cacheHit bool, decompose, solve time.Duration, err error)

// New builds a Server. Call Handler to obtain its http.Handler. The
// error is non-nil only when Config.StateDir cannot be prepared (or is
// set with caching disabled); a damaged snapshot inside a healthy
// directory is skipped, never fatal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Registry,
		lim:   newLimiter(cfg.MaxConcurrent, cfg.MaxQueue, cfg.Adaptive),
		brk:   newBreaker(cfg.MaxHeapBytes, cfg.BreakerCooldown),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	if cfg.CacheEntries > 0 {
		s.dec = cache.New(cfg.CacheEntries)
	}
	if cfg.ResultCacheEntries > 0 {
		s.results = cache.New(cfg.ResultCacheEntries)
	}
	if cfg.StateDir != "" {
		if s.dec == nil {
			return nil, fmt.Errorf("server: StateDir requires caching (CacheEntries > 0)")
		}
		store, err := diskstore.Open(cfg.StateDir, cfg.CacheEntries, s.reg)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.store = store
		s.warmStart()
		store.StartFlusher(cfg.SnapshotInterval)
	}
	s.reg.Gauge("limiter_ceiling").Set(int64(cfg.MaxConcurrent))
	// Pre-register the portfolio metrics so they appear (at zero) in the
	// Prometheus text and /v1/stats before the first pruned solve runs —
	// scrapers should never see a series pop into existence mid-flight.
	s.reg.Counter("trees_pruned_total")
	s.reg.Counter("portfolio_parallel_solves_total")
	s.reg.Counter("portfolio_sequential_solves_total")
	s.reg.Gauge("portfolio_parallel_trees")
	// Same for the canonicalization series: present at zero from the
	// first scrape, whether or not -canon is set.
	s.reg.Counter("canon_attempts_total")
	s.reg.Counter("canon_ok_total")
	s.reg.Counter("canon_fallback_total")
	s.reg.Counter("canon_hits_total")
	if len(cfg.Peers) > 0 {
		if s.dec == nil {
			return nil, fmt.Errorf("server: cluster mode requires caching (CacheEntries > 0)")
		}
		cl, err := newCluster(cfg)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.cluster = cl
		// The internal peer surface exists only in cluster mode: a
		// single-node daemon exposes no routes that replay cache
		// internals.
		s.mux.HandleFunc("GET /v1/peer/decomp/{key}", s.handlePeerDecompGet)
		s.mux.HandleFunc("PUT /v1/peer/decomp/{key}", s.handlePeerDecompPut)
		s.mux.HandleFunc("GET /v1/peer/result/{key}", s.handlePeerResultGet)
		s.mux.HandleFunc("PUT /v1/peer/result/{key}", s.handlePeerResultPut)
		s.mux.HandleFunc("GET /v1/peer/health", s.handlePeerHealth)
		s.mux.HandleFunc("GET /v1/peer/keys", s.handlePeerKeys)
		// The healing loops (hint drain, anti-entropy repair) read the
		// server's caches, so they start only after both sides exist.
		cl.startMaintenance(s)
	}
	s.registerSessionMetrics()
	if cfg.MaxSessions > 0 {
		s.sessions = newSessionStore(cfg.MaxSessions)
		if cfg.StateDir != "" {
			ss, err := diskstore.OpenSessions(filepath.Join(cfg.StateDir, "sessions"))
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			s.sessStore = ss
			// Reload persisted sessions (lexicographic ID order). A
			// payload the store validated but the server cannot
			// materialize is dropped and counted alongside the store's
			// own skips.
			skipped, _ := ss.LoadAll(func(id string, payload []byte) {
				if !s.restoreSession(id, payload) {
					_ = ss.Delete(id)
					s.reg.Counter("session_snapshot_errors_total").Inc()
				}
			})
			s.reg.Gauge("session_snapshots_skipped").Set(int64(skipped))
			s.reg.Gauge("sessions_active").Set(int64(s.sessions.len()))
		}
		s.mux.HandleFunc("POST /v1/graphs", s.handleGraphCreate)
		s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphGet)
		s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleGraphDelete)
		s.mux.HandleFunc("PATCH /v1/graphs/{id}", s.handleGraphPatch)
		s.mux.HandleFunc("POST /v1/graphs/{id}/partition", s.handleGraphPartition)
	}
	s.solve = s.cachedSolve
	s.mux.HandleFunc("/v1/partition", s.handlePartition)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// warmStart loads the snapshot store into the decomposition LRU, oldest
// first so the LRU's recency order matches the snapshot generation's.
// Invalid entries were already skipped (and counted) by the store.
func (s *Server) warmStart() {
	type kv struct {
		key   string
		entry *cache.DecompEntry
	}
	var entries []kv
	if err := s.store.LoadAll(s.cfg.CacheEntries, func(key string, d *treedecomp.Decomposition, perm []int) {
		entries = append(entries, kv{key, &cache.DecompEntry{Dec: d, Perm: perm}})
	}); err != nil {
		return
	}
	for i := len(entries) - 1; i >= 0; i-- {
		s.dec.Add(entries[i].key, entries[i].entry)
	}
	s.reg.Gauge("snapshot_warm_entries").Set(int64(len(entries)))
}

// Handler returns the daemon's http.Handler: the route mux wrapped in
// panic recovery, so a panicking handler produces a 500 (and a
// panics_total tick) instead of killing the connection — and, combined
// with the recover containment inside the solver pools, a panicking
// solve never kills the daemon.
func (s *Server) Handler() http.Handler { return s.recoverPanics(s.mux) }

func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // net/http's own abort sentinel; not ours to swallow
				}
				s.reg.Counter("panics_total").Inc()
				s.writeError(w, http.StatusInternalServerError, "internal_panic",
					fmt.Sprintf("internal panic: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Drain flips the daemon into draining mode: /v1/healthz reports
// "draining" (so load balancers stop routing here) and new partition
// requests are refused with 503. In-flight solves continue.
func (s *Server) Drain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

// Shutdown drains the daemon and blocks until every in-flight solve has
// finished or ctx expires, then flushes and closes the snapshot store
// (staged cache entries survive a graceful restart even when the
// flusher's interval never elapsed). It does not close listeners — pair
// it with http.Server.Shutdown, which stops accepting connections.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
	if s.cluster != nil {
		// Stops the health poller and waits out in-flight owner-ward
		// pushes; entries this daemon built still reach their owners.
		s.cluster.close()
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// admitInflight registers the request with the drain bookkeeping,
// returning false when the daemon is draining.
func (s *Server) admitInflight() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// cachedSolve is the production solve backend: look the decomposition
// up in the LRU by canonical key, build (and insert) on a miss —
// coalescing concurrent identical misses into one build via the
// singleflight group — then run the per-tree DPs on it. With a
// canonical form (cn non-nil) the LRU and snapshot store key on the
// label-invariant fingerprint and g is the canonical graph, so
// isomorphic submissions share one entry; the stored DecompEntry
// carries the writing request's permutation as provenance.
func (s *Server) cachedSolve(ctx context.Context, g *graph.Graph, H *hierarchy.Hierarchy, sv hgp.Solver, cn *canon.Form) (*hgp.Result, bool, time.Duration, time.Duration, error) {
	if err := faultinject.Fire(ctx, faultinject.CacheLookup); err != nil {
		return nil, false, 0, 0, err
	}
	opts := sv.DecompOptions()
	var (
		dec       *treedecomp.Decomposition
		cacheHit  bool
		decompDur time.Duration
	)
	if s.dec != nil {
		var key string
		if cn != nil {
			key = cache.DecompKeyCanon(cn.Fingerprint, opts)
		} else {
			key = cache.DecompKey(g, opts)
		}
		if v, ok := s.dec.Get(key); ok {
			dec = v.(*cache.DecompEntry).Dec
			cacheHit = true
			s.reg.Counter("decomp_cache_hits_total").Inc()
		} else {
			s.reg.Counter("decomp_cache_misses_total").Inc()
			t0 := time.Now()
			v, shared, err := s.flight.Do(ctx, key, func() (any, error) {
				// Cluster mode: before paying for a build, walk the
				// key's replicas (rank order, skipping self) for a
				// copy. The fetch sits INSIDE the singleflight closure
				// so a miss storm coalesces into one network round
				// trip, exactly as it coalesces into one build. Any
				// fetch outcome other than a validated hit falls
				// through to the local build — the cluster
				// accelerates, never gates.
				if s.cluster != nil {
					if entry, ok := s.cluster.fetchDecomp(ctx, key); ok {
						s.dec.Add(key, entry)
						if s.store != nil {
							// Persist the fetched entry locally too: a
							// restart of THIS daemon warm-starts with
							// it, and if the owner later dies this
							// daemon serves its keys from disk.
							s.store.Enqueue(key, entry.Dec, entry.Perm)
						}
						markPeerFetch(ctx)
						return entry.Dec, nil
					}
				}
				built, err := treedecomp.BuildContext(ctx, g, opts)
				if err != nil {
					return nil, err
				}
				s.reg.Counter("decomp_builds_total").Inc()
				var perm []int
				if cn != nil {
					perm = cn.Perm
				}
				entry := &cache.DecompEntry{Dec: built, Perm: perm}
				s.dec.Add(key, entry)
				if s.store != nil {
					// Stage for the background flusher: the expensive
					// build outlives this process.
					s.store.Enqueue(key, built, perm)
				}
				if s.cluster != nil {
					// Replicate the freshly built entry to the key's
					// remote replica set in the background (the fan-out
					// skips self, so this is a no-op when this daemon is
					// the sole replica). Without the push, whichever
					// replica routing consults next would rebuild the
					// same decomposition and "one build per key
					// cluster-wide" would not hold; a replica that is
					// down right now gets its copy via hinted handoff
					// instead.
					s.cluster.pushDecomp(key, entry)
				}
				return built, nil
			})
			if err != nil {
				return nil, false, 0, 0, err
			}
			decompDur = time.Since(t0)
			dec = v.(*treedecomp.Decomposition)
			if shared {
				s.reg.Counter("decomp_coalesced_total").Inc()
			}
		}
	} else {
		t0 := time.Now()
		built, err := treedecomp.BuildContext(ctx, g, opts)
		if err != nil {
			return nil, false, 0, 0, err
		}
		decompDur = time.Since(t0)
		dec = built
	}

	t0 := time.Now()
	res, err := sv.SolveDecomposition(ctx, g, H, dec)
	if err != nil {
		return nil, cacheHit, decompDur, time.Since(t0), err
	}
	s.publishPortfolioMetrics(res)
	return res, cacheHit, decompDur, time.Since(t0), nil
}

// publishPortfolioMetrics mirrors one completed solve's portfolio
// outcome into the registry (the `portfolio` block of /v1/stats and
// the Prometheus text): how many trees the incumbent bound pruned,
// and whether trees ran concurrently (ParallelTrees > 1) or one at a
// time. Result-cache hits never pass through here — these series count
// real solves only.
func (s *Server) publishPortfolioMetrics(res *hgp.Result) {
	if res.TreesPruned > 0 {
		s.reg.Counter("trees_pruned_total").Add(int64(res.TreesPruned))
	}
	s.reg.Gauge("portfolio_parallel_trees").Set(int64(res.ParallelTrees))
	if res.ParallelTrees > 1 {
		s.reg.Counter("portfolio_parallel_solves_total").Inc()
	} else {
		s.reg.Counter("portfolio_sequential_solves_total").Inc()
	}
}

func (s *Server) uptime() float64 { return time.Since(s.start).Seconds() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error envelope of every non-2xx response.
// ShedReason is present only on load-shedding responses (429/503/504):
// a machine-readable tag clients can branch on without parsing Error.
type apiError struct {
	Error      string `json:"error"`
	Code       string `json:"code"`
	ShedReason string `json:"shed_reason,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.reg.Counter(fmt.Sprintf("http_status_%d_total", status)).Inc()
	writeJSON(w, status, apiError{Error: msg, Code: code})
}

// writeShed emits a load-shedding response: the uniform error envelope
// plus shed_reason, a Retry-After hint (whole seconds, rounded up) when
// one is known, and a shed_total{reason=...} tick.
func (s *Server) writeShed(w http.ResponseWriter, status int, code, reason, msg string, retryAfter time.Duration) {
	s.reg.Counter(fmt.Sprintf("shed_total{reason=%q}", reason)).Inc()
	s.reg.Counter(fmt.Sprintf("http_status_%d_total", status)).Inc()
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, apiError{Error: msg, Code: code, ShedReason: reason})
}

// localKeys reports this daemon's cache key inventory for the
// anti-entropy digest exchange: decomposition keys are the union of
// the LRU and the snapshot store (an entry evicted from memory but
// still on disk is servable, so it belongs in the digest), result keys
// come from the memory-only result cache. Slices are always non-nil so
// the JSON body renders arrays, not nulls.
func (s *Server) localKeys() peerKeysView {
	view := peerKeysView{Decomp: []string{}, Result: []string{}}
	seen := map[string]bool{}
	if s.dec != nil {
		for _, k := range s.dec.Keys() {
			seen[k] = true
			view.Decomp = append(view.Decomp, k)
		}
	}
	if s.store != nil {
		for _, k := range s.store.Keys() {
			if !seen[k] {
				view.Decomp = append(view.Decomp, k)
			}
		}
	}
	if s.results != nil {
		view.Result = append(view.Result, s.results.Keys()...)
	}
	return view
}

// hasDecompLocal reports whether this daemon already holds key's
// decomposition in memory or on disk — the repair sweep's "missing?"
// predicate.
func (s *Server) hasDecompLocal(key string) bool {
	if s.dec != nil {
		if _, ok := s.dec.Peek(key); ok {
			return true
		}
	}
	return s.store != nil && s.store.Has(key)
}

// storeDecompLocal lands a repair-pulled decomposition entry exactly
// where an accepted peer push lands one: the LRU and the snapshot
// store.
func (s *Server) storeDecompLocal(key string, v any) {
	entry := v.(*cache.DecompEntry)
	s.dec.Add(key, entry)
	if s.store != nil {
		s.store.Enqueue(key, entry.Dec, entry.Perm)
	}
}

func (s *Server) hasResultLocal(key string) bool {
	if s.results == nil {
		// No result cache: report "have" so repair never pulls what it
		// could not store.
		return true
	}
	_, ok := s.results.Peek(key)
	return ok
}

func (s *Server) storeResultLocal(key string, v any) {
	if s.results != nil {
		s.results.Add(key, v.(*hgp.Result))
	}
}

// ReloadPeers atomically replaces the cluster membership (hgpd calls
// this on SIGHUP or a -peers-file change). Validation failures leave
// the old membership in force; Self must remain a member.
func (s *Server) ReloadPeers(peers []string) error {
	if s.cluster == nil {
		return fmt.Errorf("server: not in cluster mode")
	}
	return s.cluster.reload(peers)
}

// publishBreakerGauges mirrors the breaker into the registry so both
// stats formats see its state transitions as they happen.
func (s *Server) publishBreakerGauges() {
	if s.brk == nil {
		return
	}
	state, trips, _ := s.brk.snapshot()
	s.reg.Gauge("breaker_state").Set(int64(state))
	s.reg.Gauge("breaker_trips").Set(trips)
}
