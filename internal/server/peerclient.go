package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"hierpart/internal/cache/diskstore"
	"hierpart/internal/faultinject"
)

// fetchOutcome classifies one peer-fetch operation for the
// peer_fetch_total{outcome=...} family. Every fetch ends in exactly one
// outcome, and every outcome except outcomeHit degrades to the local
// solve path.
type fetchOutcome string

const (
	outcomeHit             fetchOutcome = "hit"
	outcomeMiss            fetchOutcome = "miss"
	outcomeError           fetchOutcome = "error"
	outcomeCorrupt         fetchOutcome = "corrupt"
	outcomeVersionMismatch fetchOutcome = "version_mismatch"
	outcomeBreakerOpen     fetchOutcome = "breaker_open"
	outcomePeerUnhealthy   fetchOutcome = "peer_unhealthy"
)

// fetchOutcomes lists every outcome, for pre-registering the counter
// family at zero.
var fetchOutcomes = []fetchOutcome{
	outcomeHit, outcomeMiss, outcomeError, outcomeCorrupt,
	outcomeVersionMismatch, outcomeBreakerOpen, outcomePeerUnhealthy,
}

// peerBreaker is a per-peer consecutive-failure circuit breaker for the
// fetch path. Unlike the daemon's memory breaker (a resource guard),
// this one guards latency: once a peer has failed threshold fetches in
// a row, further fetches fast-fail to the local solve path for the
// cooldown instead of paying timeout × retries against a dead socket.
// After the cooldown one half-open probe is admitted; its success
// closes the breaker, its failure re-opens it for another cooldown.
// States reuse the daemon breaker encoding (0 closed, 1 open, 2
// half-open) so both families read the same on a dashboard.
type peerBreaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       int
	consecutive int
	openedAt    time.Time
	probing     bool
}

// allow reports whether a fetch may proceed, transitioning open →
// half-open when the cooldown has elapsed. In half-open only one probe
// is admitted at a time.
func (b *peerBreaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed fetch (hit or definitive miss — the peer
// answered), closing the breaker.
func (b *peerBreaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// failure records a failed fetch, opening the breaker when the
// consecutive-failure threshold is reached (immediately when the
// failure was a half-open probe).
func (b *peerBreaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.state == breakerHalfOpen
	b.probing = false
	b.consecutive++
	if wasProbe || b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

func (b *peerBreaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// peerHealthView is the body of GET /v1/peer/health — the signal the
// health poller uses to shed a peer at routing time before any fetch
// is attempted against it.
type peerHealthView struct {
	// Status is "ok" or "draining". A draining peer still answers peer
	// fetches for what it holds, but routing sheds it so no new
	// ownership traffic lands on a daemon that is leaving.
	Status string `json:"status"`
	// Breaker is the peer's memory-breaker state (0 closed, 1 open, 2
	// half-open). An open breaker means the peer is shedding its own
	// load; routing treats it as unhealthy rather than adding fetches.
	Breaker int64 `json:"breaker"`
	// QueueDepth and QueueLimit describe the peer's waiting room; a
	// full queue marks the peer overloaded.
	QueueDepth int64 `json:"queue_depth"`
	QueueLimit int64 `json:"queue_limit"`
	// AuthEnabled reports whether the peer's /v1/peer surface requires
	// the cluster shared secret. Informational, not part of the routing
	// verdict: an operator (or soak assertion) reading gossip can spot a
	// node that rebooted without its secret before an attacker does.
	AuthEnabled bool `json:"peer_auth_enabled"`
}

// routable reports whether a peer in this state should receive fetch
// traffic: reachable (the caller established that), not draining, not
// under memory pressure, waiting room not saturated.
func (h peerHealthView) routable() bool {
	if h.Status != "ok" {
		return false
	}
	if h.Breaker == breakerOpen {
		return false
	}
	if h.QueueLimit > 0 && h.QueueDepth >= h.QueueLimit {
		return false
	}
	return true
}

// peerSecretHeader carries the cluster shared secret on every request
// a peer client issues against another daemon's /v1/peer surface.
const peerSecretHeader = "X-Hgpd-Peer-Secret"

// peerClient talks to one peer's internal /v1/peer surface: bounded
// per-attempt timeouts, bounded retries with jittered exponential
// backoff, and a circuit breaker so a dead peer costs one cooldown, not
// timeout × retries per key.
type peerClient struct {
	base    string // peer base URL, no trailing slash
	hc      *http.Client
	timeout time.Duration // per attempt
	retries int           // attempts = retries + 1
	backoff time.Duration // base; attempt i sleeps base·2^i·jitter
	secret  string        // cluster shared secret; empty = unauthenticated
	brk     *peerBreaker
}

func newPeerClient(base string, timeout time.Duration, retries int, backoff time.Duration, brkThreshold int, brkCooldown time.Duration, secret string) *peerClient {
	return &peerClient{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		timeout: timeout,
		retries: retries,
		backoff: backoff,
		secret:  secret,
		brk:     &peerBreaker{threshold: brkThreshold, cooldown: brkCooldown},
	}
}

// authorize attaches the cluster shared secret, when one is configured.
func (pc *peerClient) authorize(req *http.Request) {
	if pc.secret != "" {
		req.Header.Set(peerSecretHeader, pc.secret)
	}
}

// sleepBackoff waits out the attempt'th backoff (base·2^attempt scaled
// by a jitter factor in [0.5, 1.5)), returning early with ctx's error
// if the context dies first. Jitter decorrelates the retry schedules of
// peers that failed at the same instant — a daemon kill makes every
// in-flight fetch fail together, and without jitter their retries would
// keep arriving together.
func (pc *peerClient) sleepBackoff(ctx context.Context, attempt int) error {
	d := time.Duration(float64(pc.backoff) * float64(int(1)<<attempt) * (0.5 + rand.Float64()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maxPeerBody bounds how many bytes fetch will read from a peer
// response — a corrupted length field or a misbehaving peer must not
// balloon memory. Matches the daemon's default request-body bound.
const maxPeerBody = 64 << 20

// fetch GETs path from the peer, validates the wire frame, and runs
// decode (the entry-layer parser) on the stripped payload — every
// fetch operation ends in exactly one outcome, classified here, so
// peer_fetch_total rows and breaker verdicts match fetch operations
// one-to-one. Outcomes:
//
//   - hit: 200 with a frame that passed checksum + version validation
//     AND whose payload decode accepted; returns the decoded value;
//   - miss: 404 — the peer answered definitively, no retry, breaker
//     credit (the peer is alive);
//   - version_mismatch / corrupt: the body failed frame validation
//     exactly like a damaged snapshot file, or the frame verified but
//     the entry-layer decode rejected the payload; deterministic, so
//     no retry, but the breaker debits the peer either way;
//   - error: transport errors, timeouts, auth rejections, and 5xx/503
//     exhausted the retry budget;
//   - breaker_open: the fetch was never attempted.
//
// The faultinject.PeerFetch hook fires after the body is read and
// before validation, so injected corruption exercises the same
// rejection path real bit rot would.
func (pc *peerClient) fetch(ctx context.Context, path string, decode func([]byte) (any, error)) (any, fetchOutcome) {
	if !pc.brk.allow() {
		return nil, outcomeBreakerOpen
	}
	for attempt := 0; ; attempt++ {
		val, outcome, retryable := pc.fetchOnce(ctx, path, decode)
		switch outcome {
		case outcomeHit, outcomeMiss:
			pc.brk.success()
			return val, outcome
		}
		pc.brk.failure()
		if !retryable || attempt >= pc.retries {
			return nil, outcome
		}
		// Re-consult the breaker between attempts: this failure may
		// have opened it (e.g. another goroutine's failures landed
		// concurrently), and retrying through an open breaker would
		// defeat its fast-fail purpose.
		if !pc.brk.allow() {
			return nil, outcomeBreakerOpen
		}
		if err := pc.sleepBackoff(ctx, attempt); err != nil {
			return nil, outcomeError
		}
	}
}

// fetchOnce runs a single fetch attempt under the per-attempt timeout.
func (pc *peerClient) fetchOnce(ctx context.Context, path string, decode func([]byte) (any, error)) (val any, outcome fetchOutcome, retryable bool) {
	actx, cancel := context.WithTimeout(ctx, pc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, pc.base+path, nil)
	if err != nil {
		return nil, outcomeError, false
	}
	pc.authorize(req)
	resp, err := pc.hc.Do(req)
	if err != nil {
		return nil, outcomeError, true
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, outcomeMiss, false
	case resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden:
		// Secret mismatch: a configuration error, deterministic until an
		// operator intervenes — retrying the same credential cannot help.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, outcomeError, false
	case resp.StatusCode != http.StatusOK:
		// 503 (draining, breaker) and 5xx: the peer may recover within
		// the retry budget.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, outcomeError, true
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil {
		return nil, outcomeError, true
	}
	if len(raw) > maxPeerBody {
		return nil, outcomeCorrupt, false
	}
	raw, err = faultinject.FireBody(actx, faultinject.PeerFetch, raw)
	if err != nil {
		return nil, outcomeError, true
	}
	payload, err := diskstore.UnwrapWire(raw)
	switch {
	case isVersionMismatch(err):
		return nil, outcomeVersionMismatch, false
	case err != nil:
		return nil, outcomeCorrupt, false
	}
	// Entry layer: the frame verified, now the payload must parse into a
	// structurally valid entry. A failure here is the same verdict as a
	// damaged snapshot file — corrupt, breaker debited by the caller.
	if val, err = decode(payload); err != nil {
		return nil, outcomeCorrupt, false
	}
	return val, outcomeHit, false
}

func isVersionMismatch(err error) bool {
	return errors.Is(err, diskstore.ErrVersionMismatch)
}

// push PUTs a wire-framed body to path on the peer — the owner-ward
// replication of an entry this daemon built for a key it does not own.
// Pushes share the fetch path's timeout/retry/backoff discipline and
// breaker (a peer too sick to serve fetches is too sick to absorb
// pushes), but a failed push is only a lost warm-cache opportunity: the
// owner rebuilds on its next request for the key.
func (pc *peerClient) push(ctx context.Context, path string, body []byte) bool {
	if !pc.brk.allow() {
		return false
	}
	for attempt := 0; ; attempt++ {
		ok, retryable := pc.pushOnce(ctx, path, body)
		if ok {
			pc.brk.success()
			return true
		}
		pc.brk.failure()
		if !retryable || attempt >= pc.retries {
			return false
		}
		if !pc.brk.allow() {
			return false
		}
		if err := pc.sleepBackoff(ctx, attempt); err != nil {
			return false
		}
	}
}

func (pc *peerClient) pushOnce(ctx context.Context, path string, body []byte) (ok, retryable bool) {
	actx, cancel := context.WithTimeout(ctx, pc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPut, pc.base+path, bytes.NewReader(body))
	if err != nil {
		return false, false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	pc.authorize(req)
	resp, err := pc.hc.Do(req)
	if err != nil {
		return false, true
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
		return true, false
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		return false, true
	default:
		// 4xx: the peer rejected the body (validation failure) —
		// retrying the same bytes cannot succeed.
		return false, false
	}
}

// peerKeysView is the body of GET /v1/peer/keys: the peer's current
// cache key inventory, split by entry kind. Cache keys ARE SHA-256
// digests of the content that produced them, so this listing doubles
// as the digest exchange of the anti-entropy protocol — two replicas
// comparing key sets is exactly a Merkle-leaf comparison without the
// tree.
type peerKeysView struct {
	Decomp []string `json:"decomp"`
	Result []string `json:"result"`
}

// maxPeerKeysBody bounds the key-listing response: 64-char keys plus
// JSON overhead put even a 100k-entry inventory well under this.
const maxPeerKeysBody = 16 << 20

// keys GETs the peer's key inventory with a single attempt — the
// repair sweep runs on an interval, so a failed exchange just waits
// for the next sweep.
func (pc *peerClient) keys(ctx context.Context) (peerKeysView, error) {
	actx, cancel := context.WithTimeout(ctx, pc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, pc.base+"/v1/peer/keys", nil)
	if err != nil {
		return peerKeysView{}, err
	}
	pc.authorize(req)
	resp, err := pc.hc.Do(req)
	if err != nil {
		return peerKeysView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return peerKeysView{}, fmt.Errorf("peer keys: status %d", resp.StatusCode)
	}
	var kv peerKeysView
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerKeysBody)).Decode(&kv); err != nil {
		return peerKeysView{}, err
	}
	return kv, nil
}

// health GETs the peer's /v1/peer/health with a single short attempt —
// the poller runs on an interval, so retrying inside one poll would
// only delay the next.
func (pc *peerClient) health(ctx context.Context) (peerHealthView, error) {
	actx, cancel := context.WithTimeout(ctx, pc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, pc.base+"/v1/peer/health", nil)
	if err != nil {
		return peerHealthView{}, err
	}
	pc.authorize(req)
	resp, err := pc.hc.Do(req)
	if err != nil {
		return peerHealthView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return peerHealthView{}, fmt.Errorf("peer health: status %d", resp.StatusCode)
	}
	var hv peerHealthView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hv); err != nil {
		return peerHealthView{}, err
	}
	return hv, nil
}
