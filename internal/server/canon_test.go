package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"hierpart/internal/metrics"
	"hierpart/internal/telemetry"
)

// permutedRequest relabels testRequest's instance through perm: vertex
// v becomes perm[v]. The result is isomorphic — exactly the relabelled
// resubmission the canonical fingerprint exists to catch.
func permutedRequest(perm []int) PartitionRequest {
	base := testRequest()
	var req PartitionRequest
	req.Hierarchy = base.Hierarchy
	req.N = base.N
	req.Demands = make([]float64, base.N)
	for v, d := range base.Demands {
		req.Demands[perm[v]] = d
	}
	for _, e := range base.Edges {
		req.Edges = append(req.Edges, [3]float64{float64(perm[int(e[0])]), float64(perm[int(e[1])]), e[2]})
	}
	req.Seed, req.Trees, req.NoDegrade = base.Seed, base.Trees, base.NoDegrade
	return req
}

// checkTranslated materializes the request's own instance and verifies
// the response's assignment is a valid placement there whose recomputed
// Equation (1) cost equals the response cost BIT FOR BIT (the test
// instance's weights and cost multipliers are dyadic, so summation
// order cannot move an ulp).
func checkTranslated(t *testing.T, req PartitionRequest, resp PartitionResponse) {
	t.Helper()
	g, H, err := req.Instance.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Assignment(resp.Assignment).Validate(g, H); err != nil {
		t.Fatalf("translated assignment invalid on the submission's own labels: %v", err)
	}
	if got := metrics.CostLCA(g, H, resp.Assignment); math.Float64bits(got) != math.Float64bits(resp.Cost) {
		t.Fatalf("recomputed cost %v != response cost %v (must be bit-identical)", got, resp.Cost)
	}
}

func getStats(t *testing.T, h http.Handler) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCanonCrossUserResultCacheHit is the tentpole end to end: with
// -canon, a relabelled resubmission of a solved instance is answered
// from the full-result cache (canon_hit true), its assignment is
// translated back through its own permutation, and its cost is
// bit-identical to the first submission's — both are the same
// canonical-space solve.
func TestCanonCrossUserResultCacheHit(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Canon: true, Registry: reg})

	first := testRequest()
	rec := postPartition(t, s.Handler(), first)
	if rec.Code != http.StatusOK {
		t.Fatalf("first status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp1 := decodeResponse(t, rec)
	if resp1.CanonHit || resp1.ResultCacheHit {
		t.Fatalf("first submission must be a cold miss: %+v", resp1)
	}
	checkTranslated(t, first, resp1)

	perm := rand.New(rand.NewSource(5)).Perm(first.N)
	second := permutedRequest(perm)
	rec = postPartition(t, s.Handler(), second)
	if rec.Code != http.StatusOK {
		t.Fatalf("second status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp2 := decodeResponse(t, rec)
	if !resp2.ResultCacheHit {
		t.Fatalf("relabelled resubmission must hit the result cache: %+v", resp2)
	}
	if !resp2.CanonHit {
		t.Fatal("result-cache hit through the canonical key must set canon_hit")
	}
	if math.Float64bits(resp2.Cost) != math.Float64bits(resp1.Cost) {
		t.Fatalf("costs diverge across relabelling: %v vs %v", resp2.Cost, resp1.Cost)
	}
	checkTranslated(t, second, resp2)

	if got := reg.Counter("canon_attempts_total").Value(); got != 2 {
		t.Fatalf("canon_attempts_total = %d, want 2", got)
	}
	if got := reg.Counter("canon_ok_total").Value(); got != 2 {
		t.Fatalf("canon_ok_total = %d, want 2", got)
	}
	if got := reg.Counter("canon_fallback_total").Value(); got != 0 {
		t.Fatalf("canon_fallback_total = %d, want 0", got)
	}
	if got := reg.Counter("canon_hits_total").Value(); got != 1 {
		t.Fatalf("canon_hits_total = %d, want 1", got)
	}

	st := getStats(t, s.Handler())
	if !st.Canon.Enabled || st.Canon.AttemptsTotal != 2 || st.Canon.OKTotal != 2 ||
		st.Canon.FallbackTotal != 0 || st.Canon.CanonHitsTotal != 1 {
		t.Fatalf("stats canon block = %+v", st.Canon)
	}
}

// With the result cache disabled, the relabelled resubmission still
// reuses the expensive artifact: the canonical-space decomposition.
func TestCanonDecompCacheHit(t *testing.T) {
	s := newTestServer(t, Config{Canon: true, ResultCacheEntries: -1})

	first := testRequest()
	rec := postPartition(t, s.Handler(), first)
	if rec.Code != http.StatusOK {
		t.Fatalf("first status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp1 := decodeResponse(t, rec)
	if resp1.CacheHit || resp1.CanonHit {
		t.Fatalf("first submission must be a cold miss: %+v", resp1)
	}

	perm := rand.New(rand.NewSource(6)).Perm(first.N)
	second := permutedRequest(perm)
	rec = postPartition(t, s.Handler(), second)
	if rec.Code != http.StatusOK {
		t.Fatalf("second status = %d, body = %s", rec.Code, rec.Body.String())
	}
	resp2 := decodeResponse(t, rec)
	if !resp2.CacheHit {
		t.Fatalf("relabelled resubmission must hit the decomposition cache: %+v", resp2)
	}
	if !resp2.CanonHit {
		t.Fatal("decomposition hit through the canonical key must set canon_hit")
	}
	if math.Float64bits(resp2.Cost) != math.Float64bits(resp1.Cost) {
		t.Fatalf("costs diverge across relabelling: %v vs %v", resp2.Cost, resp1.Cost)
	}
	checkTranslated(t, second, resp2)
}

// Without -canon nothing changes: relabelled submissions miss (the
// label-sensitive keys differ), canon_hit never appears, and the stats
// block reports disabled with zero counters.
func TestCanonOffRelabelledMisses(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})

	first := testRequest()
	if rec := postPartition(t, s.Handler(), first); rec.Code != http.StatusOK {
		t.Fatalf("first status = %d", rec.Code)
	}
	perm := rand.New(rand.NewSource(7)).Perm(first.N)
	rec := postPartition(t, s.Handler(), permutedRequest(perm))
	if rec.Code != http.StatusOK {
		t.Fatalf("second status = %d", rec.Code)
	}
	resp := decodeResponse(t, rec)
	if resp.CanonHit || resp.ResultCacheHit || resp.CacheHit {
		t.Fatalf("canon off: relabelled resubmission must miss every cache: %+v", resp)
	}
	if got := reg.Counter("canon_attempts_total").Value(); got != 0 {
		t.Fatalf("canon_attempts_total = %d, want 0 with canon off", got)
	}
	st := getStats(t, s.Handler())
	if st.Canon.Enabled || st.Canon.AttemptsTotal != 0 {
		t.Fatalf("stats canon block = %+v, want disabled zeros", st.Canon)
	}
}

// A graph that refuses to canonicalize (C16: its stable partition is
// one 16-vertex class, over MaxClass) falls back to the label-sensitive
// keys — the request still succeeds, identical resubmissions still hit,
// and canon_hit stays false because the hit was not label-invariant.
func TestCanonFallbackServesLabelSensitive(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, Config{Canon: true, Registry: reg})

	var req PartitionRequest
	req.Hierarchy = testRequest().Hierarchy
	req.N = 16
	req.Demands = make([]float64, 16)
	for v := 0; v < 16; v++ {
		req.Demands[v] = 0.25
		req.Edges = append(req.Edges, [3]float64{float64(v), float64((v + 1) % 16), 1})
	}
	req.Seed, req.Trees, req.NoDegrade = 1, 2, true

	rec := postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	if got := reg.Counter("canon_fallback_total").Value(); got != 1 {
		t.Fatalf("canon_fallback_total = %d, want 1", got)
	}

	rec = postPartition(t, s.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat status = %d", rec.Code)
	}
	resp := decodeResponse(t, rec)
	if !resp.ResultCacheHit {
		t.Fatal("identical resubmission must still hit through the label-sensitive key")
	}
	if resp.CanonHit {
		t.Fatal("a label-sensitive hit must not claim canon_hit")
	}
}
