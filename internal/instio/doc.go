// Package instio reads and writes problem instances: a plain-text edge
// list for graphs (with demands), a METIS-like adjacency format, and a
// JSON instance format bundling a graph with its hierarchy — the formats
// spoken by the cmd/ tools and the hgpd HTTP API.
//
// Main entry points: ReadGraph/WriteGraph (plain text),
// ReadMETIS/WriteMETIS, and ReadInstance/WriteInstance (JSON). The
// Instance type is the JSON schema; Instance.Materialize validates a
// decoded instance and constructs its graph and hierarchy, which is how
// the hgpd request body (which embeds an Instance) shares this
// package's validation. WriteAssignment emits a solved placement.
package instio
