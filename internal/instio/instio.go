package instio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

// WriteGraph writes g in the plain-text format:
//
//	n <vertices>
//	d <vertex> <demand>      (omitted when demand is 0)
//	e <u> <v> <weight>
//
// Lines starting with '#' are comments.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		if d := g.Demand(v); d != 0 {
			fmt.Fprintf(bw, "d %d %g\n", v, d)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d %g\n", e.U, e.V, e.Weight)
	}
	return bw.Flush()
}

// ReadGraph parses the plain-text format written by WriteGraph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *graph.Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if len(fields) != 2 {
				return nil, fmt.Errorf("instio: line %d: n needs one argument", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("instio: line %d: bad vertex count %q", line, fields[1])
			}
			g = graph.New(n)
		case "d":
			if g == nil {
				return nil, fmt.Errorf("instio: line %d: 'd' before 'n'", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("instio: line %d: d needs two arguments", line)
			}
			v, err1 := strconv.Atoi(fields[1])
			d, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || v < 0 || v >= g.N() {
				return nil, fmt.Errorf("instio: line %d: bad demand line", line)
			}
			g.SetDemand(v, d)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("instio: line %d: 'e' before 'n'", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("instio: line %d: e needs three arguments", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("instio: line %d: bad edge line", line)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() || u == v || w < 0 {
				return nil, fmt.Errorf("instio: line %d: invalid edge %d-%d (%v)", line, u, v, w)
			}
			g.AddEdge(u, v, w)
		default:
			return nil, fmt.Errorf("instio: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("instio: missing 'n' line")
	}
	return g, nil
}

// WriteMETIS writes g in a METIS-like adjacency format with vertex and
// edge weights (header flag 011). Unlike strict METIS, weights may be
// fractional. Vertex IDs are 1-based in the file.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d 011\n", g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "%g", g.Demand(v))
		for _, u := range g.SortedNeighbors(v) {
			fmt.Fprintf(bw, " %d %g", u+1, g.Weight(v, u))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadMETIS parses the format written by WriteMETIS (header flags 011,
// 001, or 0/none; fractional weights permitted).
func ReadMETIS(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("instio: empty METIS file")
	}
	header := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(header) < 2 {
		return nil, fmt.Errorf("instio: bad METIS header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("instio: bad vertex count %q", header[0])
	}
	flags := "000"
	if len(header) >= 3 {
		flags = header[2]
	}
	hasVW := len(flags) >= 2 && flags[len(flags)-2] == '1'
	hasEW := flags[len(flags)-1] == '1'

	g := graph.New(n)
	for v := 0; v < n; v++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("instio: METIS file truncated at vertex %d", v+1)
		}
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		i := 0
		if hasVW {
			if len(fields) == 0 {
				return nil, fmt.Errorf("instio: vertex %d: missing weight", v+1)
			}
			d, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("instio: vertex %d: bad weight %q", v+1, fields[0])
			}
			g.SetDemand(v, d)
			i = 1
		}
		for i < len(fields) {
			u, err := strconv.Atoi(fields[i])
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("instio: vertex %d: bad neighbor %q", v+1, fields[i])
			}
			i++
			w := 1.0
			if hasEW {
				if i >= len(fields) {
					return nil, fmt.Errorf("instio: vertex %d: missing edge weight", v+1)
				}
				w, err = strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("instio: vertex %d: bad edge weight %q", v+1, fields[i])
				}
				i++
			}
			if u-1 > v { // add each undirected edge once
				g.AddEdge(v, u-1, w)
			}
		}
	}
	return g, sc.Err()
}

// HierarchySpec is the JSON form of a hierarchy.
type HierarchySpec struct {
	Deg []int     `json:"deg"`
	CM  []float64 `json:"cm"`
}

// Instance bundles a graph and a hierarchy in one JSON document.
type Instance struct {
	Hierarchy HierarchySpec `json:"hierarchy"`
	N         int           `json:"n"`
	Demands   []float64     `json:"demands"`
	Edges     [][3]float64  `json:"edges"` // [u, v, w]
}

// WriteInstance writes the instance JSON for (g, h).
func WriteInstance(w io.Writer, g *graph.Graph, h *hierarchy.Hierarchy) error {
	inst := Instance{N: g.N()}
	for j := 0; j < h.Height(); j++ {
		inst.Hierarchy.Deg = append(inst.Hierarchy.Deg, h.Deg(j))
	}
	for j := 0; j <= h.Height(); j++ {
		inst.Hierarchy.CM = append(inst.Hierarchy.CM, h.CM(j))
	}
	for v := 0; v < g.N(); v++ {
		inst.Demands = append(inst.Demands, g.Demand(v))
	}
	for _, e := range g.Edges() {
		inst.Edges = append(inst.Edges, [3]float64{float64(e.U), float64(e.V), e.Weight})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(inst)
}

// ReadInstance parses the instance JSON.
func ReadInstance(r io.Reader) (*graph.Graph, *hierarchy.Hierarchy, error) {
	var inst Instance
	if err := json.NewDecoder(r).Decode(&inst); err != nil {
		return nil, nil, fmt.Errorf("instio: %w", err)
	}
	return inst.Materialize()
}

// Materialize validates the decoded instance and constructs its graph
// and hierarchy — the shared path behind ReadInstance and callers that
// embed an Instance inside a larger JSON document (the hgpd request
// body).
func (inst Instance) Materialize() (*graph.Graph, *hierarchy.Hierarchy, error) {
	h, err := hierarchy.New(inst.Hierarchy.Deg, inst.Hierarchy.CM)
	if err != nil {
		return nil, nil, err
	}
	if inst.N < 0 || len(inst.Demands) > inst.N {
		return nil, nil, fmt.Errorf("instio: inconsistent instance sizes")
	}
	g := graph.New(inst.N)
	for v, d := range inst.Demands {
		if d < 0 {
			return nil, nil, fmt.Errorf("instio: negative demand at vertex %d", v)
		}
		g.SetDemand(v, d)
	}
	for i, e := range inst.Edges {
		u, v, w := int(e[0]), int(e[1]), e[2]
		if u < 0 || u >= inst.N || v < 0 || v >= inst.N || u == v || w < 0 {
			return nil, nil, fmt.Errorf("instio: bad edge #%d: %v", i, e)
		}
		g.AddEdge(u, v, w)
	}
	return g, h, nil
}

// WriteAssignment writes a placement as JSON: {"assignment": [...leaf per
// vertex], "cost": c}.
func WriteAssignment(w io.Writer, a metrics.Assignment, cost float64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Assignment []int   `json:"assignment"`
		Cost       float64 `json:"cost"`
	}{Assignment: a, Cost: cost})
}
