package instio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/metrics"
)

func sampleGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(7))
	g := gen.ErdosRenyi(rng, 12, 0.3, 5)
	gen.UniformDemands(rng, g, 0.1, 0.9)
	return g
}

func graphsEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		da, db := a.Demand(v), b.Demand(v)
		if da != db {
			t.Fatalf("demand mismatch at %d: %v vs %v", v, da, db)
		}
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"no n":          "e 0 1 2\n",
		"bad n":         "n x\n",
		"oob demand":    "n 2\nd 5 0.5\n",
		"self loop":     "n 2\ne 0 0 1\n",
		"neg weight":    "n 2\ne 0 1 -2\n",
		"unknown":       "n 2\nz 1\n",
		"short e":       "n 2\ne 0 1\n",
		"missing all n": "# only comment\n",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(text)); err == nil {
				t.Fatalf("expected error for %q", text)
			}
		})
	}
	// Comments and blank lines are fine.
	g, err := ReadGraph(strings.NewReader("# hi\n\nn 2\ne 0 1 3\n"))
	if err != nil || g.M() != 1 {
		t.Fatalf("comment handling broken: %v", err)
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestReadMETISPlainFormat(t *testing.T) {
	// Standard unweighted METIS: 3 vertices in a path.
	text := "3 2\n2\n1 3\n2\n"
	g, err := ReadMETIS(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Weight(0, 1) != 1 || g.Weight(1, 2) != 1 {
		t.Fatalf("parsed graph wrong: N=%d M=%d", g.N(), g.M())
	}
}

func TestReadMETISErrors(t *testing.T) {
	for name, text := range map[string]string{
		"empty":        "",
		"short header": "3\n",
		"truncated":    "3 2 011\n0.5 2 1\n",
		"bad neighbor": "2 1 001\n9 1\n1 1\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadMETIS(strings.NewReader(text)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	g := sampleGraph()
	h := hierarchy.MustNew([]int{2, 3}, []float64{9, 2, 0})
	var buf bytes.Buffer
	if err := WriteInstance(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	g2, h2, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if h2.Height() != 2 || h2.Deg(0) != 2 || h2.Deg(1) != 3 || h2.CM(0) != 9 {
		t.Fatalf("hierarchy mismatch: %v", h2)
	}
}

func TestReadInstanceErrors(t *testing.T) {
	for name, text := range map[string]string{
		"garbage":    "{",
		"bad h":      `{"hierarchy":{"deg":[0],"cm":[1,0]},"n":1}`,
		"bad edge":   `{"hierarchy":{"deg":[2],"cm":[1,0]},"n":2,"edges":[[0,5,1]]}`,
		"neg demand": `{"hierarchy":{"deg":[2],"cm":[1,0]},"n":1,"demands":[-1]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadInstance(strings.NewReader(text)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestWriteAssignment(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, metrics.Assignment{1, 0, 2}, 12.5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"assignment"`, `"cost"`, "12.5"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output %q missing %q", out, frag)
		}
	}
}
