package mincut

import (
	"math"

	"hierpart/internal/flow"
	"hierpart/internal/graph"
)

// GHTree is a Gomory–Hu (cut-equivalent) tree of a graph: a tree on the
// same vertex set such that for every pair (u, v) the minimum u-v cut in
// the graph equals the lightest edge on the tree path between them, and
// removing that edge induces a minimum separating bipartition.
type GHTree struct {
	// Parent[v] is v's tree parent; Parent[0] = -1 (vertex 0 is the root).
	Parent []int
	// Weight[v] is the capacity of the edge (v, Parent[v]); Weight[0]
	// is unused.
	Weight []float64
}

// GomoryHu builds a cut-equivalent tree with Gusfield's algorithm:
// n−1 max-flow computations on the original graph, no contractions.
// The graph must have at least one vertex.
func GomoryHu(g *graph.Graph) *GHTree {
	n := g.N()
	if n == 0 {
		panic("mincut: GomoryHu on empty graph")
	}
	t := &GHTree{
		Parent: make([]int, n),
		Weight: make([]float64, n),
	}
	t.Parent[0] = -1
	for i := 1; i < n; i++ {
		net := flow.NewNetwork(n)
		for _, e := range g.Edges() {
			net.AddEdge(e.U, e.V, e.Weight)
		}
		t.Weight[i] = net.MaxFlow(i, t.Parent[i])
		side := net.MinCutSide(i)
		for j := i + 1; j < n; j++ {
			if side[j] && t.Parent[j] == t.Parent[i] {
				t.Parent[j] = i
			}
		}
	}
	return t
}

// MinCut returns the minimum cut value between u and v: the lightest
// edge weight on the tree path. u and v must differ.
func (t *GHTree) MinCut(u, v int) float64 {
	if u == v {
		panic("mincut: MinCut of a vertex with itself")
	}
	depth := t.depths()
	min := math.Inf(1)
	for u != v {
		if depth[u] < depth[v] {
			u, v = v, u
		}
		if t.Weight[u] < min {
			min = t.Weight[u]
		}
		u = t.Parent[u]
	}
	return min
}

func (t *GHTree) depths() []int {
	n := len(t.Parent)
	d := make([]int, n)
	for v := range d {
		d[v] = -1
	}
	var depthOf func(v int) int
	depthOf = func(v int) int {
		if t.Parent[v] == -1 {
			return 0
		}
		if d[v] >= 0 {
			return d[v]
		}
		d[v] = depthOf(t.Parent[v]) + 1
		return d[v]
	}
	for v := 0; v < n; v++ {
		d[v] = depthOf(v)
	}
	return d
}

// GlobalFromGH returns the global minimum cut value implied by the tree
// (the lightest tree edge) — it must agree with Stoer–Wagner.
func (t *GHTree) GlobalFromGH() float64 {
	min := math.Inf(1)
	for v := 1; v < len(t.Parent); v++ {
		if t.Weight[v] < min {
			min = t.Weight[v]
		}
	}
	return min
}
