package mincut

import (
	"math/rand"
	"testing"

	"hierpart/internal/gen"
)

func BenchmarkGlobalStoerWagner(b *testing.B) {
	g := gen.ErdosRenyi(rand.New(rand.NewSource(1)), 96, 0.1, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Global(g)
	}
}

func BenchmarkGomoryHu(b *testing.B) {
	g := gen.ErdosRenyi(rand.New(rand.NewSource(1)), 48, 0.15, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GomoryHu(g)
	}
}
