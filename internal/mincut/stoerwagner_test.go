package mincut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hierpart/internal/graph"
)

func TestTinyGraphs(t *testing.T) {
	if r := Global(graph.New(0)); !math.IsInf(r.Weight, 1) {
		t.Fatalf("empty graph: %+v", r)
	}
	if r := Global(graph.New(1)); !math.IsInf(r.Weight, 1) {
		t.Fatalf("single vertex: %+v", r)
	}
	g := graph.New(2)
	g.AddEdge(0, 1, 3)
	r := Global(g)
	if r.Weight != 3 || len(r.Side) != 1 {
		t.Fatalf("two-vertex graph: %+v", r)
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	r := Global(g)
	if r.Weight != 0 {
		t.Fatalf("disconnected graph weight = %v, want 0", r.Weight)
	}
	if len(r.Side) != 2 {
		t.Fatalf("side = %v", r.Side)
	}
}

func TestDumbbell(t *testing.T) {
	// Two triangles of weight 10 joined by a weight-1 bridge.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1], 10)
	}
	g.AddEdge(2, 3, 1)
	r := Global(g)
	if r.Weight != 1 {
		t.Fatalf("weight = %v, want 1", r.Weight)
	}
	side := map[int]bool{}
	for _, v := range r.Side {
		side[v] = true
	}
	if got := g.CutWeightSet(side); got != 1 {
		t.Fatalf("side %v realizes cut %v, want 1", r.Side, got)
	}
}

// bruteGlobal enumerates all proper subsets.
func bruteGlobal(g *graph.Graph) float64 {
	n := g.N()
	best := math.Inf(1)
	for mask := 1; mask < 1<<uint(n)-1; mask++ {
		c := g.CutWeight(func(v int) bool { return mask&(1<<uint(v)) != 0 })
		if c < best {
			best = c
		}
	}
	return best
}

// Property: Stoer–Wagner equals brute force on random small graphs, and
// the reported side realizes the reported weight.
func TestGlobalMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.6 {
					g.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		r := Global(g)
		want := bruteGlobal(g)
		if math.Abs(r.Weight-want) > 1e-9 {
			return false
		}
		side := map[int]bool{}
		for _, v := range r.Side {
			side[v] = true
		}
		if len(side) == 0 || len(side) == n {
			return false
		}
		return math.Abs(g.CutWeightSet(side)-r.Weight) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSideIsSorted(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 4, 3)
	g.AddEdge(4, 2, 3)
	g.AddEdge(2, 1, 1)
	g.AddEdge(1, 3, 3)
	r := Global(g)
	for i := 1; i < len(r.Side); i++ {
		if r.Side[i-1] >= r.Side[i] {
			t.Fatalf("side not sorted: %v", r.Side)
		}
	}
}
