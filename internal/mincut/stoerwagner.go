package mincut

import (
	"math"

	"hierpart/internal/graph"
)

// Result holds a global minimum cut.
type Result struct {
	// Weight is the weight of the cut; +Inf for graphs with fewer than
	// two vertices (no cut exists).
	Weight float64
	// Side is one shore of the cut as a sorted list of original vertex
	// IDs; empty when Weight is +Inf.
	Side []int
}

// Global computes a global minimum cut of g with the Stoer–Wagner
// algorithm in O(n³) time (n ≤ a few thousand in this library's
// workloads). For a disconnected graph the result has Weight 0 with one
// component as the side.
func Global(g *graph.Graph) Result {
	n := g.N()
	if n < 2 {
		return Result{Weight: math.Inf(1)}
	}
	if comps := g.Components(); len(comps) > 1 {
		return Result{Weight: 0, Side: comps[0]}
	}

	// w[i][j]: contracted adjacency matrix; merged[i]: original vertices
	// represented by supernode i; active: supernodes still alive.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		w[e.U][e.V] += e.Weight
		w[e.V][e.U] += e.Weight
	}
	merged := make([][]int, n)
	for i := range merged {
		merged[i] = []int{i}
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}

	best := Result{Weight: math.Inf(1)}
	for phase := n; phase > 1; phase-- {
		// Maximum adjacency ordering.
		inA := make([]bool, n)
		weightTo := make([]float64, n)
		var prev, last int = -1, -1
		for i := 0; i < phase; i++ {
			sel := -1
			for v := 0; v < n; v++ {
				if active[v] && !inA[v] && (sel == -1 || weightTo[v] > weightTo[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			prev, last = last, sel
			for v := 0; v < n; v++ {
				if active[v] && !inA[v] {
					weightTo[v] += w[sel][v]
				}
			}
		}
		// Cut-of-the-phase: last vertex vs the rest.
		if weightTo[last] < best.Weight {
			best.Weight = weightTo[last]
			best.Side = append([]int(nil), merged[last]...)
		}
		// Merge last into prev.
		for v := 0; v < n; v++ {
			if active[v] && v != prev && v != last {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		merged[prev] = append(merged[prev], merged[last]...)
		active[last] = false
	}
	sortInts(best.Side)
	return best
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
