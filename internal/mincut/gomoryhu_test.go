package mincut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hierpart/internal/flow"
	"hierpart/internal/gen"
	"hierpart/internal/graph"
)

func TestGomoryHuPath(t *testing.T) {
	// Path 0-1-2-3 with weights 5, 1, 7: min cut between 0 and 3 is 1.
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 7)
	gh := GomoryHu(g)
	if got := gh.MinCut(0, 3); got != 1 {
		t.Fatalf("mincut(0,3) = %v, want 1", got)
	}
	if got := gh.MinCut(0, 1); got != 5 {
		t.Fatalf("mincut(0,1) = %v, want 5", got)
	}
	if got := gh.MinCut(2, 3); got != 7 {
		t.Fatalf("mincut(2,3) = %v, want 7", got)
	}
}

// Property: every pairwise min cut from the GH tree equals a direct
// max-flow computation.
func TestGomoryHuMatchesMaxFlow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		g := gen.ErdosRenyi(rng, n, 0.4, 6)
		gh := GomoryHu(g)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				net := flow.NewNetwork(n)
				for _, e := range g.Edges() {
					net.AddEdge(e.U, e.V, e.Weight)
				}
				want := net.MaxFlow(u, v)
				if math.Abs(gh.MinCut(u, v)-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lightest GH tree edge is the global min cut
// (cross-check against Stoer–Wagner).
func TestGomoryHuGlobalMatchesStoerWagner(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 3+rng.Intn(8), 0.5, 5)
		gh := GomoryHu(g)
		sw := Global(g)
		return math.Abs(gh.GlobalFromGH()-sw.Weight) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGomoryHuStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.Community(rng, 2, 6, 0.7, 0.1, 5, 1)
	gh := GomoryHu(g)
	if gh.Parent[0] != -1 {
		t.Fatal("vertex 0 must be the root")
	}
	// Tree must be connected and acyclic: walking parents from any
	// vertex reaches the root within n steps.
	for v := 1; v < g.N(); v++ {
		u, steps := v, 0
		for u != 0 {
			u = gh.Parent[u]
			steps++
			if steps > g.N() {
				t.Fatalf("parent chain from %d does not reach root", v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinCut(v,v) must panic")
		}
	}()
	gh.MinCut(2, 2)
}

func TestGomoryHuEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GomoryHu(graph.New(0))
}
