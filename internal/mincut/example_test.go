package mincut_test

import (
	"fmt"

	"hierpart/internal/graph"
	"hierpart/internal/mincut"
)

// A dumbbell: two heavy triangles joined by a weight-1 bridge. The
// global minimum cut is the bridge.
func ExampleGlobal() {
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1], 10)
	}
	g.AddEdge(2, 3, 1)
	res := mincut.Global(g)
	fmt.Println("weight:", res.Weight)
	fmt.Println("side:", res.Side)
	// Output:
	// weight: 1
	// side: [3 4 5]
}

// The Gomory–Hu tree answers every pairwise min-cut query from n−1
// max-flows.
func ExampleGomoryHu() {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 7)
	gh := mincut.GomoryHu(g)
	fmt.Println("mincut(0,3):", gh.MinCut(0, 3))
	fmt.Println("mincut(2,3):", gh.MinCut(2, 3))
	fmt.Println("global:", gh.GlobalFromGH())
	// Output:
	// mincut(0,3): 1
	// mincut(2,3): 7
	// global: 1
}
