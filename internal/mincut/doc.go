// Package mincut provides the Stoer–Wagner global minimum cut algorithm
// and the Gomory–Hu all-pairs min-cut tree on weighted undirected
// graphs. They are used by the decomposition-tree quality experiments
// (E7) to compare tree cuts against true graph cuts, and as
// verification oracles in tests.
//
// Main entry points: Global (Stoer–Wagner, returning a Result with the
// cut value and one side) and GomoryHu (returning a GHTree answering
// MinCut(u, v) queries and the global minimum via GlobalFromGH).
package mincut
