package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
)

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment(3)
	if a.Complete() {
		t.Fatal("fresh assignment must be incomplete")
	}
	a[0], a[1], a[2] = 0, 1, 0
	if !a.Complete() {
		t.Fatal("assignment should be complete")
	}
	c := a.Clone()
	c[0] = 1
	if a[0] != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestValidate(t *testing.T) {
	g := gen.Grid(1, 3, 1)
	h := hierarchy.FlatKWay(2)
	a := Assignment{0, 1, 2}
	if err := a.Validate(g, h); err == nil {
		t.Fatal("leaf 2 out of range should fail")
	}
	a = Assignment{0, 1}
	if err := a.Validate(g, h); err == nil {
		t.Fatal("length mismatch should fail")
	}
	a = Assignment{0, 1, 1}
	if err := a.Validate(g, h); err != nil {
		t.Fatal(err)
	}
}

func TestCostLCAByHand(t *testing.T) {
	// Path 0-1-2 with weights 3, 5 on H(deg=[2,2], cm=[10,4,1]).
	g := graph.New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 5)
	h := hierarchy.MustNew([]int{2, 2}, []float64{10, 4, 1})
	// Leaves: 0,1 under socket 0; 2,3 under socket 1.
	a := Assignment{0, 1, 2}
	// Edge 0-1: LCA level 1 → cm 4. Edge 1-2: LCA level 0 → cm 10.
	want := 3*4.0 + 5*10.0
	if got := CostLCA(g, h, a); got != want {
		t.Fatalf("CostLCA = %v, want %v", got, want)
	}
	// Same leaf: cm(2) = 1 applies.
	a = Assignment{0, 0, 0}
	if got := CostLCA(g, h, a); got != 8*1.0 {
		t.Fatalf("co-located cost = %v, want 8", got)
	}
}

func TestCostMirrorByHand(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 2)
	h := hierarchy.MustNew([]int{2}, []float64{7, 0})
	a := Assignment{0, 1}
	// Level 1: both singleton parts have boundary 2;
	// cost = (2+2)·(7-0)/2 = 14 = CostLCA (2·7).
	if got := CostMirror(g, h, a); got != 14 {
		t.Fatalf("CostMirror = %v, want 14", got)
	}
	if got := CostLCA(g, h, a); got != 14 {
		t.Fatalf("CostLCA = %v, want 14", got)
	}
}

// Property (Lemma 2): CostLCA == CostMirror for arbitrary graphs,
// hierarchies, and assignments — including unnormalized cm.
func TestLemma2Equality(t *testing.T) {
	hs := []*hierarchy.Hierarchy{
		hierarchy.FlatKWay(4),
		hierarchy.MustNew([]int{2, 3}, []float64{9, 4, 0}),
		hierarchy.MustNew([]int{2, 2, 2}, []float64{8, 8, 3, 1}), // ties + unnormalized
		hierarchy.NUMAServer(),
	}
	f := func(seed int64, hi uint8) bool {
		h := hs[int(hi)%len(hs)]
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 4+rng.Intn(12), 0.3, 5)
		a := make(Assignment, g.N())
		for v := range a {
			a[v] = rng.Intn(h.Leaves())
		}
		lca := CostLCA(g, h, a)
		mir := CostMirror(g, h, a)
		return math.Abs(lca-mir) < 1e-6*(1+math.Abs(lca))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafLoadsAndViolation(t *testing.T) {
	g := graph.New(4)
	for v := 0; v < 4; v++ {
		g.SetDemand(v, 0.6)
	}
	h := hierarchy.MustNew([]int{2, 2}, []float64{2, 1, 0}) // 4 leaves
	a := Assignment{0, 0, 1, 2}
	loads := LeafLoads(g, h, a)
	want := []float64{1.2, 0.6, 0.6, 0}
	for i := range want {
		if math.Abs(loads[i]-want[i]) > 1e-12 {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
	vio := Violation(g, h, a)
	// Level 2 (leaves): worst 1.2/1. Level 1: node0 has 1.8/2=0.9,
	// node1 has 0.6/2=0.3. Level 0: 2.4/4 = 0.6.
	if math.Abs(vio[2]-1.2) > 1e-12 || math.Abs(vio[1]-0.9) > 1e-12 || math.Abs(vio[0]-0.6) > 1e-12 {
		t.Fatalf("violation = %v", vio)
	}
	if math.Abs(MaxViolation(g, h, a)-1.2) > 1e-12 {
		t.Fatalf("max violation = %v", MaxViolation(g, h, a))
	}
}

func TestImbalance(t *testing.T) {
	g := graph.New(2)
	g.SetDemand(0, 1)
	g.SetDemand(1, 1)
	h := hierarchy.FlatKWay(2)
	if got := Imbalance(g, h, Assignment{0, 1}); got != 1 {
		t.Fatalf("balanced imbalance = %v, want 1", got)
	}
	if got := Imbalance(g, h, Assignment{0, 0}); got != 2 {
		t.Fatalf("stacked imbalance = %v, want 2", got)
	}
	empty := graph.New(2)
	if got := Imbalance(empty, h, Assignment{0, 1}); got != 0 {
		t.Fatalf("zero-demand imbalance = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 0) != 1 {
		t.Fatal("0/0 should be 1")
	}
	if !math.IsInf(Ratio(2, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("6/3 should be 2")
	}
}

func TestCostPanicsOnIncomplete(t *testing.T) {
	g := gen.Grid(1, 2, 1)
	h := hierarchy.FlatKWay(2)
	a := NewAssignment(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CostLCA(g, h, a)
}
