package metrics

import (
	"fmt"
	"math"

	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
)

// Assignment maps each graph vertex to the hierarchy leaf it is placed
// on. A value of -1 marks an unassigned vertex, which evaluation
// functions reject.
type Assignment []int

// NewAssignment returns an all-unassigned placement for n vertices.
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	return a
}

// Complete reports whether every vertex is assigned.
func (a Assignment) Complete() bool {
	for _, l := range a {
		if l < 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Validate checks that a assigns every vertex of g to a leaf of h.
func (a Assignment) Validate(g *graph.Graph, h *hierarchy.Hierarchy) error {
	if len(a) != g.N() {
		return fmt.Errorf("metrics: assignment length %d != graph size %d", len(a), g.N())
	}
	for v, l := range a {
		if l < 0 || l >= h.Leaves() {
			return fmt.Errorf("metrics: vertex %d assigned to leaf %d, want [0,%d)", v, l, h.Leaves())
		}
	}
	return nil
}

// CostLCA evaluates the HGP objective in the form of Equation (1):
// each edge (u, v) costs w(u,v) · cm(LCA_H(p(u), p(v))).
func CostLCA(g *graph.Graph, h *hierarchy.Hierarchy, a Assignment) float64 {
	if err := a.Validate(g, h); err != nil {
		panic(err)
	}
	var c float64
	for _, e := range g.Edges() {
		c += e.Weight * h.CM(h.LCALevel(a[e.U], a[e.V]))
	}
	return c
}

// CostMirror evaluates the HGP objective in the mirror-function form of
// Equation (3): for every level j ≥ 1 and every Level-(j) H-node a_H,
// the boundary cut of P(a_H) = {v : p(v) ∈ SUB(a_H)} contributes
// w(CUT(P(a_H))) · (cm(j-1) − cm(j)) / 2. For normalized multipliers
// (cm(h) = 0) this equals CostLCA (Lemma 2); in general they differ by
// cm(h) · totalWeight.
func CostMirror(g *graph.Graph, h *hierarchy.Hierarchy, a Assignment) float64 {
	if err := a.Validate(g, h); err != nil {
		panic(err)
	}
	var c float64
	for j := 1; j <= h.Height(); j++ {
		factor := (h.CM(j-1) - h.CM(j)) / 2
		if factor == 0 {
			continue
		}
		// Accumulate boundary weight per Level-(j) node in one pass.
		cut := make([]float64, h.NumNodes(j))
		for _, e := range g.Edges() {
			au := h.AncestorAt(a[e.U], j)
			av := h.AncestorAt(a[e.V], j)
			if au != av {
				cut[au] += e.Weight
				cut[av] += e.Weight
			}
		}
		for _, w := range cut {
			c += w * factor
		}
	}
	return c + h.CM(h.Height())*g.TotalWeight()
}

// LeafLoads returns the total demand assigned to each hierarchy leaf.
func LeafLoads(g *graph.Graph, h *hierarchy.Hierarchy, a Assignment) []float64 {
	if err := a.Validate(g, h); err != nil {
		panic(err)
	}
	loads := make([]float64, h.Leaves())
	for v, l := range a {
		loads[l] += g.Demand(v)
	}
	return loads
}

// Violation reports the worst relative capacity violation per level:
// result[j] = max over Level-(j) nodes of load/CP(j), for j in [0, h].
// Values ≤ 1 mean the level is within capacity.
func Violation(g *graph.Graph, h *hierarchy.Hierarchy, a Assignment) []float64 {
	loads := LeafLoads(g, h, a)
	out := make([]float64, h.Height()+1)
	for j := 0; j <= h.Height(); j++ {
		node := make([]float64, h.NumNodes(j))
		for l, d := range loads {
			node[h.AncestorAt(l, j)] += d
		}
		worst := 0.0
		for _, d := range node {
			if r := d / h.Cap(j); r > worst {
				worst = r
			}
		}
		out[j] = worst
	}
	return out
}

// MaxViolation returns the largest entry of Violation.
func MaxViolation(g *graph.Graph, h *hierarchy.Hierarchy, a Assignment) float64 {
	worst := 0.0
	for _, v := range Violation(g, h, a) {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Imbalance returns max leaf load divided by average leaf load
// (1.0 = perfectly balanced). Returns 0 for zero total demand.
func Imbalance(g *graph.Graph, h *hierarchy.Hierarchy, a Assignment) float64 {
	loads := LeafLoads(g, h, a)
	var sum, max float64
	for _, d := range loads {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(loads)))
}

// Ratio returns a/b treating the 0/0 case as 1 (equal) and x/0 for
// x > 0 as +Inf. Used for cost comparisons in experiment tables.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}
