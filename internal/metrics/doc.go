// Package metrics defines the placement type shared by all partitioners
// and the evaluation functions of the HGP objective: the LCA cost form
// of Equation (1) and the mirror/cut form of Equation (3), whose
// equality is Lemma 2 of the paper, plus load-balance and capacity
// violation measurements.
//
// Main entry points: Assignment (leaf per vertex, with Validate),
// CostLCA and CostMirror (the two cost forms), LeafLoads, Violation,
// MaxViolation, and Imbalance.
package metrics
