package fm

import (
	"math/rand"
	"testing"

	"hierpart/internal/gen"
)

func BenchmarkRefine(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.Community(rng, 4, 64, 0.1, 0.01, 10, 1)
	cluster := make([]int, g.N())
	for v := range cluster {
		cluster[v] = v
	}
	start := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		start[v] = rng.Float64() < 0.5
	}
	w := func(int) float64 { return 1 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		side := make(map[int]bool, len(start))
		for k, v := range start {
			side[k] = v
		}
		Refine(g, cluster, side, w, Config{})
	}
}
