package fm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hierpart/internal/gen"
	"hierpart/internal/graph"
)

func cutOf(g *graph.Graph, cluster []int, side map[int]bool) float64 {
	in := map[int]bool{}
	for _, v := range cluster {
		in[v] = true
	}
	var c float64
	for _, v := range cluster {
		g.Neighbors(v, func(u int, w float64) {
			if in[u] && v < u && side[u] != side[v] {
				c += w
			}
		})
	}
	return c
}

func unitWeight(int) float64 { return 1 }

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 16, 0.3, 5)
		cluster := make([]int, g.N())
		for v := range cluster {
			cluster[v] = v
		}
		side := map[int]bool{}
		for _, v := range cluster {
			side[v] = rng.Float64() < 0.5
		}
		// Force a feasible start: balance to ~half.
		nTrue := 0
		for _, v := range cluster {
			if side[v] {
				nTrue++
			}
		}
		for _, v := range cluster {
			if nTrue < 4 && !side[v] {
				side[v] = true
				nTrue++
			}
			if nTrue > 12 && side[v] {
				side[v] = false
				nTrue--
			}
		}
		before := cutOf(g, cluster, side)
		Refine(g, cluster, side, unitWeight, Config{})
		after := cutOf(g, cluster, side)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineRespectsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.Community(rng, 2, 10, 0.6, 0.05, 10, 1)
	cluster := make([]int, g.N())
	for v := range cluster {
		cluster[v] = v
	}
	side := map[int]bool{}
	for v := 0; v < 10; v++ {
		side[v] = true
	}
	Refine(g, cluster, side, unitWeight, Config{MinFrac: 0.4, MaxFrac: 0.6})
	nTrue := 0
	for _, v := range cluster {
		if side[v] {
			nTrue++
		}
	}
	if nTrue < 8 || nTrue > 12 {
		t.Fatalf("balance window violated: %d/20 on true side", nTrue)
	}
}

// TestRefineEscapesBarbellTrap: the canonical FM showcase. Start with a
// split that straddles both cliques; every single move has negative
// gain, but the pass mechanism (tentative moves + best prefix) finds the
// weight-1 bottleneck.
func TestRefineEscapesBarbellTrap(t *testing.T) {
	g := graph.New(12)
	for s := 0; s < 2; s++ {
		base := s * 6
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				g.AddEdge(base+i, base+j, 10)
			}
		}
	}
	g.AddEdge(5, 6, 1)
	cluster := make([]int, 12)
	for v := range cluster {
		cluster[v] = v
	}
	// Straddling start: 3 of each clique on each side.
	side := map[int]bool{}
	for _, v := range []int{0, 1, 2, 6, 7, 8} {
		side[v] = true
	}
	before := cutOf(g, cluster, side)
	Refine(g, cluster, side, unitWeight, Config{MinFrac: 0.4, MaxFrac: 0.6})
	after := cutOf(g, cluster, side)
	if after != 1 {
		t.Fatalf("FM stuck: cut %v -> %v, want 1", before, after)
	}
	// Sides must be exactly the cliques.
	for v := 1; v < 6; v++ {
		if side[v] != side[0] {
			t.Fatalf("clique 0 split: %v", side)
		}
	}
	for v := 7; v < 12; v++ {
		if side[v] != side[6] {
			t.Fatalf("clique 1 split: %v", side)
		}
	}
}

// TestRefineMatchesBruteOnTiny: FM should find the optimal balanced
// bisection of small graphs most of the time; verify it never does
// worse than 1.5× optimum across random instances (it is a heuristic,
// but on n=8 with a full pass structure it should be near-exact).
func TestRefineMatchesBruteOnTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	worse := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		g := gen.ErdosRenyi(rng, 8, 0.5, 9)
		cluster := []int{0, 1, 2, 3, 4, 5, 6, 7}
		side := map[int]bool{}
		for v := 0; v < 4; v++ {
			side[v] = true
		}
		// The balance window must admit single moves (classic FM slack of
		// one unit): allow 3..5 vertices per side.
		Refine(g, cluster, side, unitWeight, Config{MinFrac: 0.375, MaxFrac: 0.625})
		got := cutOf(g, cluster, side)
		// Brute force over all windows-feasible bisections.
		best := math.Inf(1)
		for mask := 0; mask < 256; mask++ {
			if pc := popcount(mask); pc < 3 || pc > 5 {
				continue
			}
			s2 := map[int]bool{}
			for v := 0; v < 8; v++ {
				if mask&(1<<uint(v)) != 0 {
					s2[v] = true
				}
			}
			if c := cutOf(g, cluster, s2); c < best {
				best = c
			}
		}
		if got > best+1e-9 {
			worse++
		}
	}
	if worse > trials/4 {
		t.Fatalf("FM missed the optimum on %d/%d tiny instances", worse, trials)
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestRefineIgnoresOutsideCluster(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(3, 4, 100) // outside the cluster
	g.AddEdge(2, 3, 100) // boundary to outside: must not influence
	cluster := []int{0, 1, 2}
	side := map[int]bool{0: true}
	Refine(g, cluster, side, unitWeight, Config{MinFrac: 0.3, MaxFrac: 0.7})
	if side[3] || side[4] || side[5] {
		t.Fatalf("outside vertices touched: %v", side)
	}
}

func TestRefineTrivialCases(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if Refine(g, []int{0}, map[int]bool{0: true}, unitWeight, Config{}) {
		t.Fatal("single-vertex cluster cannot improve")
	}
	zero := func(int) float64 { return 0 }
	if Refine(g, []int{0, 1}, map[int]bool{0: true}, zero, Config{}) {
		t.Fatal("zero-weight cluster must be a no-op")
	}
}
