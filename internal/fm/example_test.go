package fm_test

import (
	"fmt"

	"hierpart/internal/fm"
	"hierpart/internal/graph"
)

// The barbell trap: two heavy cliques joined by a weight-1 edge, started
// from a straddling split. Greedy single moves are all negative-gain,
// but FM's tentative-move pass with best-prefix rollback finds the
// bottleneck.
func ExampleRefine() {
	g := graph.New(12)
	for s := 0; s < 2; s++ {
		base := s * 6
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				g.AddEdge(base+i, base+j, 10)
			}
		}
	}
	g.AddEdge(5, 6, 1)

	cluster := make([]int, 12)
	for v := range cluster {
		cluster[v] = v
	}
	side := map[int]bool{0: true, 1: true, 2: true, 6: true, 7: true, 8: true}
	unit := func(int) float64 { return 1 }

	improved := fm.Refine(g, cluster, side, unit, fm.Config{MinFrac: 0.4, MaxFrac: 0.6})
	var cut float64
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			cut += e.Weight
		}
	}
	fmt.Println("improved:", improved)
	fmt.Println("final cut:", cut)
	// Output:
	// improved: true
	// final cut: 1
}
