package fm

import (
	"container/heap"
	"sort"

	"hierpart/internal/graph"
)

// Config controls Refine.
type Config struct {
	// MinFrac and MaxFrac bound the true-side weight as a fraction of
	// the cluster weight. Zeroes mean [0.25, 0.75].
	MinFrac, MaxFrac float64
	// Passes caps the number of FM passes. Zero means 8.
	Passes int
}

// Refine improves the bisection `side` (vertex → true/false) of the
// given cluster of g in place, minimizing the weight of edges whose
// endpoints disagree, subject to the balance window. Vertices outside
// the cluster are ignored entirely. weight gives each vertex's balance
// contribution. It reports whether the cut weight strictly improved.
func Refine(g *graph.Graph, cluster []int, side map[int]bool, weight func(v int) float64, cfg Config) bool {
	minFrac, maxFrac := cfg.MinFrac, cfg.MaxFrac
	if minFrac == 0 && maxFrac == 0 {
		minFrac, maxFrac = 0.25, 0.75
	}
	passes := cfg.Passes
	if passes == 0 {
		passes = 8
	}
	if len(cluster) < 2 {
		return false
	}

	inCluster := make(map[int]bool, len(cluster))
	var totalW float64
	for _, v := range cluster {
		inCluster[v] = true
		totalW += weight(v)
	}
	if totalW == 0 {
		return false
	}
	lo, hi := totalW*minFrac, totalW*maxFrac

	order := append([]int(nil), cluster...)
	sort.Ints(order)

	cutWeight := func() float64 {
		var c float64
		for _, v := range order {
			g.Neighbors(v, func(u int, w float64) {
				if inCluster[u] && v < u && side[u] != side[v] {
					c += w
				}
			})
		}
		return c
	}

	improvedEver := false
	for pass := 0; pass < passes; pass++ {
		if !onePass(g, order, inCluster, side, weight, lo, hi, cutWeight) {
			break
		}
		improvedEver = true
	}
	return improvedEver
}

// gainItem is a queue entry; stale entries (version mismatch) are
// skipped on pop.
type gainItem struct {
	gain    float64
	v       int
	version int
}

type gainQueue []gainItem

func (q gainQueue) Len() int { return len(q) }
func (q gainQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain // max-heap on gain
	}
	return q[i].v < q[j].v // deterministic tie-break
}
func (q gainQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *gainQueue) Push(x interface{}) { *q = append(*q, x.(gainItem)) }
func (q *gainQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// onePass performs one FM pass and reports whether it strictly lowered
// the cut. side is updated to the best prefix (or left unchanged).
func onePass(g *graph.Graph, order []int, inCluster map[int]bool, side map[int]bool,
	weight func(v int) float64, lo, hi float64, cutWeight func() float64) bool {

	gain := map[int]float64{}
	version := map[int]int{}
	locked := map[int]bool{}
	var q gainQueue

	computeGain := func(v int) float64 {
		var toOwn, toOther float64
		g.Neighbors(v, func(u int, w float64) {
			if !inCluster[u] {
				return
			}
			if side[u] == side[v] {
				toOwn += w
			} else {
				toOther += w
			}
		})
		return toOther - toOwn
	}
	push := func(v int) {
		gain[v] = computeGain(v)
		version[v]++
		heap.Push(&q, gainItem{gain: gain[v], v: v, version: version[v]})
	}

	var trueW float64
	for _, v := range order {
		if side[v] {
			trueW += weight(v)
		}
	}
	for _, v := range order {
		push(v)
	}

	startCut := cutWeight()
	curCut := startCut
	bestCut := startCut
	bestPrefix := 0
	var moves []int

	for q.Len() > 0 {
		// Pop the best unlocked, balance-feasible vertex. Infeasible
		// entries are re-collected and reinserted after the move.
		var deferred []gainItem
		picked := -1
		for q.Len() > 0 {
			it := heap.Pop(&q).(gainItem)
			if locked[it.v] || it.version != version[it.v] {
				continue
			}
			var newTrueW float64
			if side[it.v] {
				newTrueW = trueW - weight(it.v)
			} else {
				newTrueW = trueW + weight(it.v)
			}
			if newTrueW < lo || newTrueW > hi {
				deferred = append(deferred, it)
				continue
			}
			picked = it.v
			break
		}
		for _, it := range deferred {
			heap.Push(&q, it)
		}
		if picked == -1 {
			break
		}

		// Tentatively move picked.
		curCut -= gain[picked]
		if side[picked] {
			trueW -= weight(picked)
		} else {
			trueW += weight(picked)
		}
		side[picked] = !side[picked]
		locked[picked] = true
		moves = append(moves, picked)
		if curCut < bestCut-1e-12 {
			bestCut = curCut
			bestPrefix = len(moves)
		}
		g.Neighbors(picked, func(u int, _ float64) {
			if inCluster[u] && !locked[u] {
				push(u)
			}
		})
	}

	// Roll back to the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		side[moves[i]] = !side[moves[i]]
	}
	return bestCut < startCut-1e-12
}
