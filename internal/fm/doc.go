// Package fm implements the Fiduccia–Mattheyses bisection refinement
// heuristic in its classic form: per pass, every vertex may move once;
// moves are chosen best-gain-first from priority queues even when the
// gain is negative (that is what lets FM climb out of local minima the
// greedy sweeps of simpler refiners cannot leave); at the end of the
// pass the best prefix of the move sequence is kept. Balance is enforced
// as a window on the weight of the "true" side.
//
// The embedding builder (internal/treedecomp) and the partitioning
// baselines use this engine; its own tests pit it against exhaustive
// search on small clusters.
//
// Main entry point: Refine improves a two-sided split of a vertex
// cluster in place, under the balance window and pass budget of a
// Config, and reports whether it changed anything.
package fm
