package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/treedecomp"
)

// LRU is a thread-safe fixed-capacity least-recently-used cache. Get
// promotes, Add inserts or refreshes, and inserting beyond capacity
// evicts the coldest entry.
type LRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key string
	val any
}

// New builds an LRU holding at most capacity entries; capacity < 1 is
// treated as 1.
func New(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the value under key and promotes it to most recently
// used. The second result reports whether the key was present; every
// call counts as a hit or a miss.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts val under key (refreshing the entry if present), evicting
// the least recently used entry when the cache is full.
func (c *LRU) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len returns the current number of entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time view of the cache's accounting.
type Stats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Len       int     `json:"len"`
	Capacity  int     `json:"capacity"`
	HitRatio  float64 `json:"hit_ratio"` // hits / (hits+misses); 0 when unused
}

// Stats returns the cache's hit/miss/eviction counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len(), Capacity: c.cap}
	if total := c.hits + c.misses; total > 0 {
		s.HitRatio = float64(c.hits) / float64(total)
	}
	return s
}

// DecompKey returns the canonical cache key for the decomposition of g
// under opt: a SHA-256 over the vertex count, every vertex demand, the
// sorted (U < V, by (U,V)) edge list, and the option fields that shape
// the emitted tree distribution (Trees, Seed, FMPasses — with the
// solver's effective default of 4 for a zero value — FlowRefine,
// Strategy). Options.Workers is deliberately excluded: the per-tree
// sub-seeded RNG streams make the distribution identical at every
// worker count, so keying on it would only fragment the cache.
func DecompKey(g *graph.Graph, opt treedecomp.Options) string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}

	wInt(int64(g.N()))
	for v := 0; v < g.N(); v++ {
		wFloat(g.Demand(v))
	}
	for _, e := range g.Edges() {
		wInt(int64(e.U))
		wInt(int64(e.V))
		wFloat(e.Weight)
	}

	trees := opt.Trees
	if trees == 0 {
		trees = 1
	}
	passes := opt.FMPasses
	if passes == 0 {
		passes = 4
	}
	wInt(int64(trees))
	wInt(opt.Seed)
	wInt(int64(passes))
	if opt.FlowRefine {
		wInt(1)
	} else {
		wInt(0)
	}
	wInt(int64(opt.Strategy))
	return hex.EncodeToString(h.Sum(nil))
}

// ResultKey returns the canonical cache key for a FULL solve result —
// decomposition plus DP plus gather — so a repeat request can skip both
// phases. It extends DecompKey's identity (graph, tree-distribution
// options) with everything else that determines the returned placement:
// the hierarchy shape (deg and cm level by level) and the solver's Eps
// and MaxStates.
//
// Deliberately excluded, because the returned result is bit-identical
// across them (keying on them would only fragment the cache):
//
//   - Workers — per-tree sub-seeded RNGs and the order-independent DP
//     make every worker count produce the same result;
//   - the portfolio-pruning toggle — the identity battery
//     (hgp.TestPruneIdentityBattery and the at-scale variant) pins
//     pruned results bit-identical to unpruned ones. PerTreeCosts
//     sentinels differ (+Inf for pruned trees), so cached results keep
//     whichever sentinel pattern the first solve produced.
func ResultKey(g *graph.Graph, H *hierarchy.Hierarchy, opt treedecomp.Options, eps float64, maxStates int) string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}

	// Domain-separate from DecompKey so the two key spaces can never
	// collide, then fold in the decomposition identity.
	h.Write([]byte("result\x00"))
	h.Write([]byte(DecompKey(g, opt)))

	wInt(int64(H.Height()))
	for j := 0; j < H.Height(); j++ {
		wInt(int64(H.Deg(j)))
	}
	for j := 0; j <= H.Height(); j++ {
		wFloat(H.CM(j))
	}
	wFloat(eps)
	wInt(int64(maxStates))
	return hex.EncodeToString(h.Sum(nil))
}
