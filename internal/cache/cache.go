package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"

	"hierpart/internal/graph"
	"hierpart/internal/hierarchy"
	"hierpart/internal/treedecomp"
)

// LRU is a thread-safe fixed-capacity least-recently-used cache. Get
// promotes, Add inserts or refreshes, and inserting beyond capacity
// evicts the coldest entry.
type LRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key string
	val any
}

// New builds an LRU holding at most capacity entries; capacity < 1 is
// treated as 1.
func New(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the value under key and promotes it to most recently
// used. The second result reports whether the key was present; every
// call counts as a hit or a miss.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Peek returns the value under key without promoting it and without
// ticking the hit/miss counters. It exists for the cluster peer-serve
// path: a peer probing this daemon for a key it may not hold must not
// distort the serving cache's recency order or its hit-ratio
// accounting, which describe this daemon's own request stream.
func (c *LRU) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// Add inserts val under key (refreshing the entry if present), evicting
// the least recently used entry when the cache is full.
func (c *LRU) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Keys returns a snapshot of the cached keys, most recently used
// first. Like Peek it leaves recency order and hit/miss accounting
// untouched — it exists for the cluster's key-digest exchange
// (GET /v1/peer/keys), where listing must not distort the accounting
// that describes this daemon's own request stream.
func (c *LRU) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}

// Len returns the current number of entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time view of the cache's accounting.
type Stats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Len       int     `json:"len"`
	Capacity  int     `json:"capacity"`
	HitRatio  float64 `json:"hit_ratio"` // hits / (hits+misses); 0 when unused
}

// Stats returns the cache's hit/miss/eviction counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len(), Capacity: c.cap}
	if total := c.hits + c.misses; total > 0 {
		s.HitRatio = float64(c.hits) / float64(total)
	}
	return s
}

// DecompEntry is the value stored in the decomposition cache when the
// server runs with canonicalization enabled: the decomposition of the
// CANONICAL graph plus the orig→canonical permutation of the request
// that wrote the entry. The permutation is provenance — each reader
// translates through its own request's permutation, never the stored
// one — but persisting it lets snapshots round-trip the full entry and
// lets tests pin writer/reader consistency.
type DecompEntry struct {
	Dec  *treedecomp.Decomposition
	Perm []int // orig→canonical mapping of the writing request; nil when canon was off
}

// keyHasher accumulates the canonical little-endian serialization of
// key material shared by all cache-key derivations.
type keyHasher struct {
	h   hash.Hash
	buf [8]byte
}

func newKeyHasher() *keyHasher { return &keyHasher{h: sha256.New()} }

func (k *keyHasher) bytes(b []byte) { k.h.Write(b) }

func (k *keyHasher) int(v int64) {
	binary.LittleEndian.PutUint64(k.buf[:], uint64(v))
	k.h.Write(k.buf[:])
}

func (k *keyHasher) float(v float64) {
	binary.LittleEndian.PutUint64(k.buf[:], math.Float64bits(v))
	k.h.Write(k.buf[:])
}

// options folds in the treedecomp option fields that shape the emitted
// tree distribution (Trees, Seed, FMPasses — with the solver's
// effective default of 4 for a zero value — FlowRefine, Strategy).
// Options.Workers is deliberately excluded: the per-tree sub-seeded RNG
// streams make the distribution identical at every worker count, so
// keying on it would only fragment the cache.
func (k *keyHasher) options(opt treedecomp.Options) {
	trees := opt.Trees
	if trees == 0 {
		trees = 1
	}
	passes := opt.FMPasses
	if passes == 0 {
		passes = 4
	}
	k.int(int64(trees))
	k.int(opt.Seed)
	k.int(int64(passes))
	if opt.FlowRefine {
		k.int(1)
	} else {
		k.int(0)
	}
	k.int(int64(opt.Strategy))
}

// hierarchy folds in the hierarchy shape (deg and cm level by level).
func (k *keyHasher) hierarchy(H *hierarchy.Hierarchy) {
	k.int(int64(H.Height()))
	for j := 0; j < H.Height(); j++ {
		k.int(int64(H.Deg(j)))
	}
	for j := 0; j <= H.Height(); j++ {
		k.float(H.CM(j))
	}
}

func (k *keyHasher) sum() string { return hex.EncodeToString(k.h.Sum(nil)) }

// DecompKey returns the canonical cache key for the decomposition of g
// under opt: a SHA-256 over the vertex count, every vertex demand, the
// sorted (U < V, by (U,V)) edge list, and the option fields that shape
// the emitted tree distribution (see keyHasher.options for the
// included/excluded fields). The key is label-SENSITIVE: vertex-identical
// graphs collide deliberately, relabelled isomorphic graphs miss — see
// DecompKeyCanon for the label-invariant variant.
func DecompKey(g *graph.Graph, opt treedecomp.Options) string {
	k := newKeyHasher()
	k.int(int64(g.N()))
	for v := 0; v < g.N(); v++ {
		k.float(g.Demand(v))
	}
	for _, e := range g.Edges() {
		k.int(int64(e.U))
		k.int(int64(e.V))
		k.float(e.Weight)
	}
	k.options(opt)
	return k.sum()
}

// DecompKeyCanon returns the label-INVARIANT decomposition cache key
// derived from a canon.Form fingerprint: any two isomorphic submissions
// that canonicalize share it, so they share one cached decomposition of
// the canonical graph. The "decomp-canon\x02" prefix domain-separates
// the canonical key space from DecompKey's v1 space — a v1 key can
// never alias a v2 key even though both are hex SHA-256 strings,
// because the fingerprint itself is a hash over a different domain
// ("hgp-canon\x01" + canonical serialization) than DecompKey's raw
// serialization. Soundness: equal fingerprints imply byte-identical
// canonical graphs (the fingerprint hashes the canonical serialization,
// not a WL summary), so a hit hands back a decomposition of exactly the
// graph the reader is solving.
func DecompKeyCanon(fingerprint string, opt treedecomp.Options) string {
	k := newKeyHasher()
	k.bytes([]byte("decomp-canon\x02"))
	k.bytes([]byte(fingerprint))
	k.options(opt)
	return k.sum()
}

// ResultKey returns the canonical cache key for a FULL solve result —
// decomposition plus DP plus gather — so a repeat request can skip both
// phases. It extends DecompKey's identity (graph, tree-distribution
// options) with everything else that determines the returned placement:
// the hierarchy shape (deg and cm level by level) and the solver's Eps
// and MaxStates.
//
// Deliberately excluded, because the returned result is bit-identical
// across them (keying on them would only fragment the cache):
//
//   - Workers — per-tree sub-seeded RNGs and the order-independent DP
//     make every worker count produce the same result;
//   - the portfolio-pruning toggle — the identity battery
//     (hgp.TestPruneIdentityBattery and the at-scale variant) pins
//     pruned results bit-identical to unpruned ones. PerTreeCosts
//     sentinels differ (+Inf for pruned trees), so cached results keep
//     whichever sentinel pattern the first solve produced.
func ResultKey(g *graph.Graph, H *hierarchy.Hierarchy, opt treedecomp.Options, eps float64, maxStates int) string {
	k := newKeyHasher()
	// Domain-separate from DecompKey so the two key spaces can never
	// collide, then fold in the decomposition identity.
	k.bytes([]byte("result\x00"))
	k.bytes([]byte(DecompKey(g, opt)))
	k.hierarchy(H)
	k.float(eps)
	k.int(int64(maxStates))
	return k.sum()
}

// ResultKeyCanon is ResultKey's label-invariant counterpart: it extends
// DecompKeyCanon's identity with the hierarchy shape and the solver's
// Eps and MaxStates, under its own "result-canon\x02" domain. The same
// Workers/Prune exclusions apply (the cached result is the solve of the
// canonical graph, bit-identical across both), and the translation back
// to submission labels is a pure relabelling that cannot change the
// cost — see DESIGN.md §12.
func ResultKeyCanon(fingerprint string, H *hierarchy.Hierarchy, opt treedecomp.Options, eps float64, maxStates int) string {
	k := newKeyHasher()
	k.bytes([]byte("result-canon\x02"))
	k.bytes([]byte(DecompKeyCanon(fingerprint, opt)))
	k.hierarchy(H)
	k.float(eps)
	k.int(int64(maxStates))
	return k.sum()
}
