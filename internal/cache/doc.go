// Package cache provides the caching layer of the hgpd serving stack: a
// thread-safe LRU plus the canonical content hashes that key every
// cache in the daemon.
//
// Building the decomposition tree distribution (§4 of the paper,
// internal/treedecomp) dominates end-to-end solve latency, yet the
// distribution is a pure function of (graph, Trees, Seed, FMPasses,
// FlowRefine, Strategy) — per-tree sub-seeded RNG streams make it
// independent of worker count and build order. That purity is what
// makes caching sound: two requests with the same canonical key receive
// bit-identical tree distributions, so a cache hit skips the embed
// phase entirely without changing the response.
//
// Two key families cover the two artifacts worth reusing:
//
//   - DecompKey / DecompKeyCanon identify a decomposition (the embed
//     phase's output). DecompKey hashes the labelled graph directly —
//     vertex demands plus the sorted edge list, so vertex-identical
//     graphs collide deliberately and relabelled isomorphic graphs
//     miss. DecompKeyCanon instead hashes a label-invariant
//     canonical-form fingerprint from internal/canon, so isomorphic
//     submissions from different users share one entry; the cached
//     value is then a DecompEntry carrying the canonical graph's
//     decomposition plus the writing request's orig→canonical
//     permutation.
//   - ResultKey / ResultKeyCanon identify a FULL solve result
//     (decomposition + DP + gather), extending the decomposition
//     identity with the hierarchy shape and the solver's Eps and
//     MaxStates. Workers and the portfolio-pruning toggle are
//     deliberately excluded from every key: the result is bit-identical
//     across them, so keying on them would only fragment the cache.
//
// Each family occupies its own hash domain ("result\x00",
// "decomp-canon\x02", "result-canon\x02", and DecompKey's raw
// serialization), so the four key spaces can never alias one another.
//
// Main entry points: New builds an LRU of bounded entry count with
// hit/miss/eviction accounting (LRU.Stats); LRU.Get / LRU.Add are the
// lookup and insert.
package cache
