// Package cache provides the decomposition cache of the hgpd serving
// layer: a thread-safe LRU plus a canonical content hash for keying it.
//
// Building the decomposition tree distribution (§4 of the paper,
// internal/treedecomp) dominates end-to-end solve latency, yet the
// distribution is a pure function of (graph, Trees, Seed, FMPasses,
// FlowRefine, Strategy) — per-tree sub-seeded RNG streams make it
// independent of worker count and build order. That purity is what
// makes caching sound: two requests with the same canonical key receive
// bit-identical tree distributions, so a cache hit skips the embed
// phase entirely without changing the response.
//
// Main entry points: New builds an LRU of bounded entry count with
// hit/miss/eviction accounting (LRU.Stats); LRU.Get / LRU.Add are the
// lookup and insert; DecompKey computes the canonical SHA-256 key of a
// graph and its build options (vertex demands and the sorted edge list,
// so vertex-identical graphs collide deliberately and any weight or
// topology change misses).
package cache
