package diskstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hierpart/internal/telemetry"
)

func testHint(peer, key string, payload []byte) Hint {
	return Hint{Peer: peer, Kind: "decomp", Key: key, Payload: payload}
}

// A dir-backed queue must round-trip its hints through a flush and a
// reopen — the restart case where the daemon still owes handoff.
func TestHintQueuePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	q, err := OpenHintQueue(dir, 16, reg)
	if err != nil {
		t.Fatal(err)
	}
	h1 := testHint("http://a:1", "key-one", []byte("payload-one"))
	h2 := testHint("http://b:2", "key-two", []byte("payload-two"))
	if !q.Stage(h1) || !q.Stage(h2) {
		t.Fatal("staging under capacity must succeed")
	}
	if err := q.FlushPending(); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenHintQueue(dir, 16, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 2 {
		t.Fatalf("reopened queue holds %d hints, want 2", q2.Len())
	}
	got := q2.TakeFor("http://a:1", 10)
	if len(got) != 1 || got[0].Key != "key-one" || !bytes.Equal(got[0].Payload, []byte("payload-one")) {
		t.Fatalf("reopened hint diverged: %+v", got)
	}

	// Resolving removes the hint and, after a flush, its file.
	q2.Resolve(got[0])
	if q2.Len() != 1 {
		t.Fatalf("after resolve: len = %d, want 1", q2.Len())
	}
	if err := q2.FlushPending(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	files := 0
	for _, de := range ents {
		if !de.IsDir() {
			files++
		}
	}
	if files != 1 {
		t.Fatalf("after resolve+flush: %d hint files on disk, want 1", files)
	}
}

// The queue is bounded: staging beyond capacity drops the NEW hint
// (the oldest are closest to replay) and counts the drop.
func TestHintQueueBounded(t *testing.T) {
	reg := telemetry.NewRegistry()
	q, err := OpenHintQueue("", 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	q.Stage(testHint("http://a:1", "k1", nil))
	q.Stage(testHint("http://a:1", "k2", nil))
	if q.Stage(testHint("http://a:1", "k3", nil)) {
		t.Fatal("staging past capacity must report the drop")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2 (overflow must not evict staged hints)", q.Len())
	}
	if got := reg.Counter("hints_dropped_total").Value(); got != 1 {
		t.Fatalf("hints_dropped_total = %d, want 1", got)
	}
	// Re-staging an already queued identity is a replacement, never a
	// drop — even at capacity.
	if !q.Stage(testHint("http://a:1", "k1", []byte("fresh"))) {
		t.Fatal("re-staging a queued identity must succeed at capacity")
	}
	if got := q.TakeFor("http://a:1", 10); len(got) != 2 {
		t.Fatalf("TakeFor after replace: %d hints, want 2", len(got))
	}
}

// A damaged hint file gets the snapshot verdict on open: skipped,
// counted as corruption, removed — never a crash, never a bad replay.
func TestHintQueueSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenHintQueue(dir, 16, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	q.Stage(testHint("http://a:1", "good", []byte("ok")))
	if err := q.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef"+hintSuffix), []byte("not a framed hint"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	q2, err := OpenHintQueue(dir, 16, reg)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 1 {
		t.Fatalf("len = %d, want 1 (the good hint only)", q2.Len())
	}
	if got := reg.Counter("snapshot_corrupt_total").Value(); got != 1 {
		t.Fatalf("snapshot_corrupt_total = %d, want 1 (damaged hints get the snapshot verdict)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "deadbeef"+hintSuffix)); !os.IsNotExist(err) {
		t.Fatal("damaged hint file must be removed on open")
	}
}

// A hint whose replay fails deterministically is dropped after its
// attempt budget so the queue cannot wedge on it.
func TestHintQueueDropsAfterMaxAttempts(t *testing.T) {
	reg := telemetry.NewRegistry()
	q, err := OpenHintQueue("", 4, reg)
	if err != nil {
		t.Fatal(err)
	}
	h := testHint("http://a:1", "stubborn", nil)
	q.Stage(h)
	for i := 0; i < hintMaxAttempts; i++ {
		if q.Len() != 1 {
			t.Fatalf("attempt %d: hint vanished early", i)
		}
		q.Fail(h)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d after %d failures, want 0", q.Len(), hintMaxAttempts)
	}
	if got := reg.Counter("hints_dropped_total").Value(); got != 1 {
		t.Fatalf("hints_dropped_total = %d, want 1", got)
	}
	// A successful re-stage starts a fresh attempt budget.
	q.Stage(h)
	q.Fail(h)
	if q.Len() != 1 {
		t.Fatal("one failure after a fresh stage must not drop the hint")
	}
}

// DropPeer discards exactly the departed peer's hints — the membership
// reload case where delivery can never happen.
func TestHintQueueDropPeer(t *testing.T) {
	reg := telemetry.NewRegistry()
	q, err := OpenHintQueue("", 8, reg)
	if err != nil {
		t.Fatal(err)
	}
	q.Stage(testHint("http://gone:1", "k1", nil))
	q.Stage(testHint("http://gone:1", "k2", nil))
	q.Stage(testHint("http://stays:2", "k3", nil))
	q.DropPeer("http://gone:1")
	if q.Len() != 1 {
		t.Fatalf("len = %d after DropPeer, want 1", q.Len())
	}
	if got := q.Peers(); len(got) != 1 || got[0] != "http://stays:2" {
		t.Fatalf("peers after DropPeer = %v, want the survivor only", got)
	}
	if got := reg.Counter("hints_dropped_total").Value(); got != 2 {
		t.Fatalf("hints_dropped_total = %d, want 2", got)
	}
}
